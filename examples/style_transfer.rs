//! The Section 7.3 style-transfer case study: a two-sub-model FBISA network
//! with downsampling, wide (128ch) residual blocks and sub-pixel decoding.
//! Reports per-sub-model timing and the end-to-end Full HD frame rate plus
//! DRAM traffic including the inter-sub-model feature exchange.
//!
//! ```sh
//! cargo run --release --example style_transfer
//! ```

use ecnn_repro::isa::compile::compile;
use ecnn_repro::isa::params::QuantizedModel;
use ecnn_repro::model::zoo;
use ecnn_repro::sim::timing::simulate_frame;
use ecnn_repro::sim::EcnnConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (enc, dec) = zoo::style_transfer();
    let q_enc = QuantizedModel::uniform(&enc);
    let q_dec = QuantizedModel::uniform(&dec);
    let cfg = EcnnConfig::paper();

    // Sub-model 1 consumes 256x256 image blocks (the deep encoder needs
    // large blocks to bound NCR); sub-model 2 consumes the encoder's
    // quarter-resolution output blocks.
    let c_enc = compile(&q_enc, 256)?;
    let c_dec = compile(&q_dec, c_enc.program.do_side)?;
    println!("encoder:\n{}", c_enc.program);
    println!("decoder:\n{}", c_dec.program);

    // Full HD: the encoder output plane is 480x270 (1/4 resolution).
    let enc_frame = simulate_frame(&c_enc, &enc, &cfg, 1920 / 4, 1080 / 4);
    let dec_frame = simulate_frame(&c_dec, &dec, &cfg, 1920, 1080);
    let seconds = enc_frame.seconds_per_frame + dec_frame.seconds_per_frame;
    let fps = 1.0 / seconds;

    // DRAM: both sub-models' DI/DO plus nothing else — the intermediate
    // 128ch quarter-res features ARE the encoder DO / decoder DI streams.
    let bytes_per_frame = enc_frame.di_bytes_per_frame
        + enc_frame.do_bytes_per_frame
        + dec_frame.di_bytes_per_frame
        + dec_frame.do_bytes_per_frame;
    println!("Full HD style transfer: {fps:.1} fps (paper: 29.5 fps)");
    println!(
        "DRAM: {:.2} GB/s at that rate (paper: 1.91 GB/s)",
        bytes_per_frame as f64 * fps / 1e9
    );
    Ok(())
}
