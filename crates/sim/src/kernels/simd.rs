//! Explicit-SIMD variants of the packed conv inner loops, with runtime
//! dispatch and a verifier-licensed narrow (`i32`) accumulation path.
//!
//! # Dispatch ladder
//!
//! [`detect`] probes the CPU once (cached) and returns the best
//! [`SimdLevel`] available: AVX2 → SSE2 on `x86_64`, NEON on `aarch64`,
//! scalar everywhere else. The level is resolved at *plan* time
//! (`BlockPlan` stores it) and threaded into every row kernel, so the
//! per-row dispatch is a predictable match on a plan constant — never a
//! repeated feature probe.
//!
//! # Wide vs narrow lanes
//!
//! Every kernel comes in two accumulator widths:
//!
//! * **wide** (`i64` lanes) — always exact, mirroring the scalar kernels:
//!   AVX2 runs 4×`i64` lanes (`_mm256_mul_epi32` over sign-extended
//!   sources), NEON runs paired `vmlal` widening MACs. SSE2 has no usable
//!   signed 32×32→64 multiply (`_mm_mul_epi32` is SSE4.1), so its wide
//!   path deliberately falls back to the scalar loop.
//! * **narrow** (`i32` lanes, 8-wide on AVX2) — uses *wrapping*
//!   multiply-adds. Two's-complement wrapping arithmetic is exact modulo
//!   2³², so the narrow result is bit-identical to the wide one whenever
//!   the final per-element sum fits `i32` — which is exactly what the
//!   static verifier's interval analysis proves per instruction
//!   (`ecnn_isa::verify::InstrRange::narrow_acc`). The executor only
//!   routes an instruction here when its plan carries that proof;
//!   intermediate wraps (in products or partial sums) are harmless under
//!   the license.
//!
//! The scalar narrow fallbacks use explicit `wrapping_*` ops for the same
//! modular semantics (the dev/test profiles build with
//! `overflow-checks = true`).
//!
//! # Safety
//!
//! This is the single module in the workspace allowed to contain `unsafe`
//! (the crate root relaxes `forbid(unsafe_code)` to `deny`, and CI greps
//! that the keyword appears nowhere else). All unsafe code is of exactly
//! two shapes, each with a `SAFETY` comment at the block:
//!
//! 1. calling a `#[target_feature]` function after [`detect`] confirmed
//!    the feature at runtime;
//! 2. unaligned vector loads/stores whose bounds the surrounding loop
//!    condition establishes (`j + LANES <= n`, with the row-slice length
//!    contracts documented on each public wrapper).
#![allow(unsafe_code)]

use std::sync::OnceLock;

/// The instruction-set tier the row kernels dispatch on. All variants
/// exist on every architecture (so cross-arch code can name them); levels
/// foreign to the compilation target simply fall back to the scalar loop
/// and [`detect`] never returns them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// 256-bit AVX2: 8×`i32` narrow lanes, 4×`i64` wide lanes.
    Avx2,
    /// 128-bit SSE2: 4×`i32` narrow lanes (emulated `mullo`); the wide
    /// path is scalar (no signed 32×32→64 multiply before SSE4.1).
    Sse2,
    /// 128-bit NEON (`aarch64`): 4×`i32` narrow lanes, paired widening
    /// MACs for the wide path.
    Neon,
    /// Portable scalar loops (wrapping ops on the narrow path).
    Scalar,
}

impl SimdLevel {
    /// Stable lower-case name (`"avx2"`, `"sse2"`, `"neon"`, `"scalar"`).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Neon => "neon",
            SimdLevel::Scalar => "scalar",
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Best [`SimdLevel`] this CPU supports, probed once via
/// `is_x86_feature_detected!` / `is_aarch64_feature_detected!` and cached
/// for the process lifetime.
pub fn detect() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
            if is_x86_feature_detected!("sse2") {
                return SimdLevel::Sse2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                return SimdLevel::Neon;
            }
        }
        SimdLevel::Scalar
    })
}

// --------------------------------------------------------------------------
// Scalar fallbacks (also the tail loops of every vector kernel).
// --------------------------------------------------------------------------

fn scalar_row_interior_narrow(acc: &mut [i32], row: &[i16], taps: [i32; 3]) {
    let n = acc.len();
    let (t0, t1, t2) = (taps[0], taps[1], taps[2]);
    let r0 = &row[..n];
    let r1 = &row[1..n + 1];
    let r2 = &row[2..n + 2];
    for (((a, &s0), &s1), &s2) in acc.iter_mut().zip(r0).zip(r1).zip(r2) {
        *a = a
            .wrapping_add(t0.wrapping_mul(s0 as i32))
            .wrapping_add(t1.wrapping_mul(s1 as i32))
            .wrapping_add(t2.wrapping_mul(s2 as i32));
    }
}

fn scalar_ch_mac_narrow(acc: &mut [i32], src: &[i16], w: i32) {
    for (a, &s) in acc.iter_mut().zip(src) {
        *a = a.wrapping_add(w.wrapping_mul(s as i32));
    }
}

fn scalar_ch_mac_wide(acc: &mut [i64], src: &[i16], w: i32) {
    let w = w as i64;
    for (a, &s) in acc.iter_mut().zip(src) {
        *a += w * s as i64;
    }
}

// --------------------------------------------------------------------------
// AVX2 (x86_64)
// --------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    pub unsafe fn row_interior_narrow(acc: &mut [i32], row: &[i16], taps: [i32; 3]) {
        let n = acc.len();
        let (t0, t1, t2) = (
            _mm256_set1_epi32(taps[0]),
            _mm256_set1_epi32(taps[1]),
            _mm256_set1_epi32(taps[2]),
        );
        let mut j = 0usize;
        while j + 8 <= n {
            // SAFETY: `j + 8 <= n` and `row.len() >= n + 2` (wrapper
            // contract), so the three 128-bit source loads at offsets
            // `j..j+8+2` and the 256-bit accumulator load/store at
            // `j..j+8` are all in bounds. Unaligned-access intrinsics.
            unsafe {
                let s0 =
                    _mm256_cvtepi16_epi32(_mm_loadu_si128(row.as_ptr().add(j) as *const __m128i));
                let s1 = _mm256_cvtepi16_epi32(_mm_loadu_si128(
                    row.as_ptr().add(j + 1) as *const __m128i
                ));
                let s2 = _mm256_cvtepi16_epi32(_mm_loadu_si128(
                    row.as_ptr().add(j + 2) as *const __m128i
                ));
                let a = _mm256_loadu_si256(acc.as_ptr().add(j) as *const __m256i);
                let sum = _mm256_add_epi32(
                    _mm256_mullo_epi32(t0, s0),
                    _mm256_add_epi32(_mm256_mullo_epi32(t1, s1), _mm256_mullo_epi32(t2, s2)),
                );
                _mm256_storeu_si256(
                    acc.as_mut_ptr().add(j) as *mut __m256i,
                    _mm256_add_epi32(a, sum),
                );
            }
            j += 8;
        }
        super::scalar_row_interior_narrow(&mut acc[j..], &row[j..], taps);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn row_interior_wide(acc: &mut [i64], row: &[i16], taps: [i32; 3]) {
        let n = acc.len();
        let (t0, t1, t2) = (
            _mm256_set1_epi64x(taps[0] as i64),
            _mm256_set1_epi64x(taps[1] as i64),
            _mm256_set1_epi64x(taps[2] as i64),
        );
        let mut j = 0usize;
        while j + 4 <= n {
            // SAFETY: `j + 4 <= n` and `row.len() >= n + 2`, so the 64-bit
            // source loads at offsets `j..j+4+2` and the 256-bit
            // accumulator load/store at `j..j+4` are in bounds. The
            // sign-extended sources keep each value in their lanes' low 32
            // bits, so `_mm256_mul_epi32` (signed low-32 × low-32 → 64)
            // computes the exact `tap · sample` product.
            unsafe {
                let s0 =
                    _mm256_cvtepi16_epi64(_mm_loadl_epi64(row.as_ptr().add(j) as *const __m128i));
                let s1 = _mm256_cvtepi16_epi64(_mm_loadl_epi64(
                    row.as_ptr().add(j + 1) as *const __m128i
                ));
                let s2 = _mm256_cvtepi16_epi64(_mm_loadl_epi64(
                    row.as_ptr().add(j + 2) as *const __m128i
                ));
                let a = _mm256_loadu_si256(acc.as_ptr().add(j) as *const __m256i);
                let sum = _mm256_add_epi64(
                    _mm256_mul_epi32(t0, s0),
                    _mm256_add_epi64(_mm256_mul_epi32(t1, s1), _mm256_mul_epi32(t2, s2)),
                );
                _mm256_storeu_si256(
                    acc.as_mut_ptr().add(j) as *mut __m256i,
                    _mm256_add_epi64(a, sum),
                );
            }
            j += 4;
        }
        crate::kernels::accum_row_interior(&mut acc[j..], &row[j..], taps);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn ch_mac_narrow(acc: &mut [i32], src: &[i16], w: i32) {
        let n = acc.len().min(src.len());
        let wv = _mm256_set1_epi32(w);
        let mut j = 0usize;
        while j + 8 <= n {
            // SAFETY: `j + 8 <= n <= src.len()` bounds both the 128-bit
            // source load and the 256-bit accumulator load/store.
            unsafe {
                let s =
                    _mm256_cvtepi16_epi32(_mm_loadu_si128(src.as_ptr().add(j) as *const __m128i));
                let a = _mm256_loadu_si256(acc.as_ptr().add(j) as *const __m256i);
                _mm256_storeu_si256(
                    acc.as_mut_ptr().add(j) as *mut __m256i,
                    _mm256_add_epi32(a, _mm256_mullo_epi32(wv, s)),
                );
            }
            j += 8;
        }
        super::scalar_ch_mac_narrow(&mut acc[j..], &src[j..n], w);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn ch_mac_wide(acc: &mut [i64], src: &[i16], w: i32) {
        let n = acc.len().min(src.len());
        let wv = _mm256_set1_epi64x(w as i64);
        let mut j = 0usize;
        while j + 4 <= n {
            // SAFETY: `j + 4 <= n <= src.len()` bounds the 64-bit source
            // load and the 256-bit accumulator load/store; sign-extended
            // sources make `_mm256_mul_epi32` exact (see above).
            unsafe {
                let s =
                    _mm256_cvtepi16_epi64(_mm_loadl_epi64(src.as_ptr().add(j) as *const __m128i));
                let a = _mm256_loadu_si256(acc.as_ptr().add(j) as *const __m256i);
                _mm256_storeu_si256(
                    acc.as_mut_ptr().add(j) as *mut __m256i,
                    _mm256_add_epi64(a, _mm256_mul_epi32(wv, s)),
                );
            }
            j += 4;
        }
        super::scalar_ch_mac_wide(&mut acc[j..], &src[j..n], w);
    }
}

// --------------------------------------------------------------------------
// SSE2 (x86_64 baseline)
// --------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod sse2 {
    use std::arch::x86_64::*;

    /// Sign-extends the low 4 `i16` lanes of `x` to 4 `i32` lanes without
    /// SSE4.1's `cvtepi16_epi32`: self-interleave puts each sample in the
    /// high half of a 32-bit lane, and the arithmetic right shift
    /// sign-extends it down.
    #[target_feature(enable = "sse2")]
    unsafe fn extend_lo_epi16(x: __m128i) -> __m128i {
        _mm_srai_epi32(_mm_unpacklo_epi16(x, x), 16)
    }

    /// SSE2 emulation of `_mm_mullo_epi32` (SSE4.1): the low 32 bits of a
    /// 32×32 product are sign-agnostic, so two unsigned even/odd-lane
    /// `_mm_mul_epu32` passes recombined lane-wise produce exactly the
    /// wrapping signed product the narrow path needs.
    #[target_feature(enable = "sse2")]
    unsafe fn mullo_epi32(a: __m128i, b: __m128i) -> __m128i {
        let even = _mm_mul_epu32(a, b);
        let odd = _mm_mul_epu32(_mm_srli_si128(a, 4), _mm_srli_si128(b, 4));
        _mm_unpacklo_epi32(
            _mm_shuffle_epi32::<0b00_00_10_00>(even),
            _mm_shuffle_epi32::<0b00_00_10_00>(odd),
        )
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn row_interior_narrow(acc: &mut [i32], row: &[i16], taps: [i32; 3]) {
        let n = acc.len();
        let (t0, t1, t2) = (
            _mm_set1_epi32(taps[0]),
            _mm_set1_epi32(taps[1]),
            _mm_set1_epi32(taps[2]),
        );
        let mut j = 0usize;
        while j + 4 <= n {
            // SAFETY: `j + 4 <= n` and `row.len() >= n + 2` bound the
            // 64-bit source loads at `j..j+4+2` and the 128-bit
            // accumulator load/store at `j..j+4`.
            unsafe {
                let s0 = extend_lo_epi16(_mm_loadl_epi64(row.as_ptr().add(j) as *const __m128i));
                let s1 =
                    extend_lo_epi16(_mm_loadl_epi64(row.as_ptr().add(j + 1) as *const __m128i));
                let s2 =
                    extend_lo_epi16(_mm_loadl_epi64(row.as_ptr().add(j + 2) as *const __m128i));
                let a = _mm_loadu_si128(acc.as_ptr().add(j) as *const __m128i);
                let sum = _mm_add_epi32(
                    mullo_epi32(t0, s0),
                    _mm_add_epi32(mullo_epi32(t1, s1), mullo_epi32(t2, s2)),
                );
                _mm_storeu_si128(
                    acc.as_mut_ptr().add(j) as *mut __m128i,
                    _mm_add_epi32(a, sum),
                );
            }
            j += 4;
        }
        super::scalar_row_interior_narrow(&mut acc[j..], &row[j..], taps);
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn ch_mac_narrow(acc: &mut [i32], src: &[i16], w: i32) {
        let n = acc.len().min(src.len());
        let wv = _mm_set1_epi32(w);
        let mut j = 0usize;
        while j + 4 <= n {
            // SAFETY: `j + 4 <= n <= src.len()` bounds the 64-bit source
            // load and the 128-bit accumulator load/store.
            unsafe {
                let s = extend_lo_epi16(_mm_loadl_epi64(src.as_ptr().add(j) as *const __m128i));
                let a = _mm_loadu_si128(acc.as_ptr().add(j) as *const __m128i);
                _mm_storeu_si128(
                    acc.as_mut_ptr().add(j) as *mut __m128i,
                    _mm_add_epi32(a, mullo_epi32(wv, s)),
                );
            }
            j += 4;
        }
        super::scalar_ch_mac_narrow(&mut acc[j..], &src[j..n], w);
    }
}

// --------------------------------------------------------------------------
// NEON (aarch64)
// --------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    #[target_feature(enable = "neon")]
    pub unsafe fn row_interior_narrow(acc: &mut [i32], row: &[i16], taps: [i32; 3]) {
        let n = acc.len();
        let mut j = 0usize;
        while j + 4 <= n {
            // SAFETY: `j + 4 <= n` and `row.len() >= n + 2` bound the
            // 4-lane source loads at `j..j+4+2` and the accumulator
            // load/store at `j..j+4`. NEON MLA wraps modularly, matching
            // the narrow path's licensed semantics.
            unsafe {
                let s0 = vmovl_s16(vld1_s16(row.as_ptr().add(j)));
                let s1 = vmovl_s16(vld1_s16(row.as_ptr().add(j + 1)));
                let s2 = vmovl_s16(vld1_s16(row.as_ptr().add(j + 2)));
                let mut a = vld1q_s32(acc.as_ptr().add(j));
                a = vmlaq_n_s32(a, s0, taps[0]);
                a = vmlaq_n_s32(a, s1, taps[1]);
                a = vmlaq_n_s32(a, s2, taps[2]);
                vst1q_s32(acc.as_mut_ptr().add(j), a);
            }
            j += 4;
        }
        super::scalar_row_interior_narrow(&mut acc[j..], &row[j..], taps);
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn row_interior_wide(acc: &mut [i64], row: &[i16], taps: [i32; 3]) {
        let n = acc.len();
        let mut j = 0usize;
        while j + 4 <= n {
            // SAFETY: same bounds as the narrow kernel; `vmlal_n_s32` is
            // the exact widening 32×32→64 multiply-accumulate.
            unsafe {
                let s0 = vmovl_s16(vld1_s16(row.as_ptr().add(j)));
                let s1 = vmovl_s16(vld1_s16(row.as_ptr().add(j + 1)));
                let s2 = vmovl_s16(vld1_s16(row.as_ptr().add(j + 2)));
                let mut lo = vld1q_s64(acc.as_ptr().add(j));
                let mut hi = vld1q_s64(acc.as_ptr().add(j + 2));
                lo = vmlal_n_s32(lo, vget_low_s32(s0), taps[0]);
                hi = vmlal_n_s32(hi, vget_high_s32(s0), taps[0]);
                lo = vmlal_n_s32(lo, vget_low_s32(s1), taps[1]);
                hi = vmlal_n_s32(hi, vget_high_s32(s1), taps[1]);
                lo = vmlal_n_s32(lo, vget_low_s32(s2), taps[2]);
                hi = vmlal_n_s32(hi, vget_high_s32(s2), taps[2]);
                vst1q_s64(acc.as_mut_ptr().add(j), lo);
                vst1q_s64(acc.as_mut_ptr().add(j + 2), hi);
            }
            j += 4;
        }
        crate::kernels::accum_row_interior(&mut acc[j..], &row[j..], taps);
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn ch_mac_narrow(acc: &mut [i32], src: &[i16], w: i32) {
        let n = acc.len().min(src.len());
        let mut j = 0usize;
        while j + 4 <= n {
            // SAFETY: `j + 4 <= n <= src.len()` bounds both accesses.
            unsafe {
                let s = vmovl_s16(vld1_s16(src.as_ptr().add(j)));
                let a = vld1q_s32(acc.as_ptr().add(j));
                vst1q_s32(acc.as_mut_ptr().add(j), vmlaq_n_s32(a, s, w));
            }
            j += 4;
        }
        super::scalar_ch_mac_narrow(&mut acc[j..], &src[j..n], w);
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn ch_mac_wide(acc: &mut [i64], src: &[i16], w: i32) {
        let n = acc.len().min(src.len());
        let mut j = 0usize;
        while j + 4 <= n {
            // SAFETY: `j + 4 <= n <= src.len()` bounds both accesses.
            unsafe {
                let s = vmovl_s16(vld1_s16(src.as_ptr().add(j)));
                let mut lo = vld1q_s64(acc.as_ptr().add(j));
                let mut hi = vld1q_s64(acc.as_ptr().add(j + 2));
                lo = vmlal_n_s32(lo, vget_low_s32(s), w);
                hi = vmlal_n_s32(hi, vget_high_s32(s), w);
                vst1q_s64(acc.as_mut_ptr().add(j), lo);
                vst1q_s64(acc.as_mut_ptr().add(j + 2), hi);
            }
            j += 4;
        }
        super::scalar_ch_mac_wide(&mut acc[j..], &src[j..n], w);
    }
}

// --------------------------------------------------------------------------
// Safe dispatch wrappers
// --------------------------------------------------------------------------

/// SIMD [`crate::kernels::accum_row_interior`] on `i64` accumulators:
/// `acc[x] += t0·row[x] + t1·row[x+1] + t2·row[x+2]`. `row` must hold at
/// least `acc.len() + 2` samples. Bit-identical to the scalar kernel.
#[inline]
pub fn row_interior_wide(level: SimdLevel, acc: &mut [i64], row: &[i16], taps: [i32; 3]) {
    debug_assert!(row.len() >= acc.len() + 2);
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `level == Avx2` only when `detect` observed AVX2 support
        // on this CPU at runtime.
        SimdLevel::Avx2 => unsafe { avx2::row_interior_wide(acc, row, taps) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: `level == Neon` only when `detect` observed NEON.
        SimdLevel::Neon => unsafe { neon::row_interior_wide(acc, row, taps) },
        // SSE2 has no signed widening multiply; scalar is the wide
        // fallback there and on every non-SIMD target.
        _ => crate::kernels::accum_row_interior(acc, row, taps),
    }
}

/// Narrow (`i32`, wrapping) counterpart of [`row_interior_wide`]. Only
/// exact under the verifier's `narrow_acc` license (final per-element sums
/// fit `i32`); see the module docs.
#[inline]
pub fn row_interior_narrow(level: SimdLevel, acc: &mut [i32], row: &[i16], taps: [i32; 3]) {
    debug_assert!(row.len() >= acc.len() + 2);
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `level == Avx2` only when `detect` observed AVX2.
        SimdLevel::Avx2 => unsafe { avx2::row_interior_narrow(acc, row, taps) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `level == Sse2` only when `detect` observed SSE2.
        SimdLevel::Sse2 => unsafe { sse2::row_interior_narrow(acc, row, taps) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: `level == Neon` only when `detect` observed NEON.
        SimdLevel::Neon => unsafe { neon::row_interior_narrow(acc, row, taps) },
        _ => scalar_row_interior_narrow(acc, row, taps),
    }
}

/// SIMD [`crate::kernels::accum_row_padded`] on `i64` accumulators:
/// same-width `row`/`acc`, border columns peeled scalar (dropping their
/// out-of-image taps), interior span vectorized.
#[inline]
pub fn row_padded_wide(level: SimdLevel, acc: &mut [i64], row: &[i16], taps: [i32; 3]) {
    let n = acc.len();
    debug_assert_eq!(n, row.len());
    let (t0, t1, t2) = (taps[0] as i64, taps[1] as i64, taps[2] as i64);
    if n == 1 {
        acc[0] += t1 * row[0] as i64;
        return;
    }
    acc[0] += t1 * row[0] as i64 + t2 * row[1] as i64;
    if n > 2 {
        // Interior element `x` (1 ≤ x ≤ n-2) reads `row[x-1..x+2]`: an
        // interior pass over `acc[1..n-1]` with the full row (length
        // `(n-2) + 2`) is exactly that window.
        row_interior_wide(level, &mut acc[1..n - 1], row, taps);
    }
    acc[n - 1] += t0 * row[n - 2] as i64 + t1 * row[n - 1] as i64;
}

/// Narrow (`i32`, wrapping) counterpart of [`row_padded_wide`].
#[inline]
pub fn row_padded_narrow(level: SimdLevel, acc: &mut [i32], row: &[i16], taps: [i32; 3]) {
    let n = acc.len();
    debug_assert_eq!(n, row.len());
    let (t0, t1, t2) = (taps[0], taps[1], taps[2]);
    if n == 1 {
        acc[0] = acc[0].wrapping_add(t1.wrapping_mul(row[0] as i32));
        return;
    }
    acc[0] = acc[0]
        .wrapping_add(t1.wrapping_mul(row[0] as i32))
        .wrapping_add(t2.wrapping_mul(row[1] as i32));
    if n > 2 {
        row_interior_narrow(level, &mut acc[1..n - 1], row, taps);
    }
    acc[n - 1] = acc[n - 1]
        .wrapping_add(t0.wrapping_mul(row[n - 2] as i32))
        .wrapping_add(t1.wrapping_mul(row[n - 1] as i32));
}

/// Flat channel-slice multiply-add on `i64` accumulators (the 1×1 stage):
/// `acc[i] += w · src[i]` over `min(acc.len(), src.len())` elements.
#[inline]
pub fn ch_mac_wide(level: SimdLevel, acc: &mut [i64], src: &[i16], w: i32) {
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `level == Avx2` only when `detect` observed AVX2.
        SimdLevel::Avx2 => unsafe { avx2::ch_mac_wide(acc, src, w) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: `level == Neon` only when `detect` observed NEON.
        SimdLevel::Neon => unsafe { neon::ch_mac_wide(acc, src, w) },
        _ => scalar_ch_mac_wide(acc, src, w),
    }
}

/// Narrow (`i32`, wrapping) counterpart of [`ch_mac_wide`].
#[inline]
pub fn ch_mac_narrow(level: SimdLevel, acc: &mut [i32], src: &[i16], w: i32) {
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `level == Avx2` only when `detect` observed AVX2.
        SimdLevel::Avx2 => unsafe { avx2::ch_mac_narrow(acc, src, w) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `level == Sse2` only when `detect` observed SSE2.
        SimdLevel::Sse2 => unsafe { sse2::ch_mac_narrow(acc, src, w) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: `level == Neon` only when `detect` observed NEON.
        SimdLevel::Neon => unsafe { neon::ch_mac_narrow(acc, src, w) },
        _ => scalar_ch_mac_narrow(acc, src, w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every level available on this host, scalar always included.
    fn levels() -> Vec<SimdLevel> {
        let mut ls = vec![SimdLevel::Scalar];
        if detect() != SimdLevel::Scalar {
            ls.push(detect());
        }
        #[cfg(target_arch = "x86_64")]
        if detect() == SimdLevel::Avx2 {
            ls.push(SimdLevel::Sse2);
        }
        ls
    }

    fn row(n: usize, seed: i64) -> Vec<i16> {
        (0..n)
            .map(|i| (((i as i64 * 2654435761 + seed * 97) % 509) - 254) as i16)
            .collect()
    }

    #[test]
    fn interior_matches_scalar_for_all_levels_and_ragged_widths() {
        // Widths straddling every lane count (and far past one vector).
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 64, 100] {
            let r = row(n + 2, n as i64);
            let taps = [7, -1000, 313];
            let mut want64 = vec![5i64; n];
            crate::kernels::accum_row_interior(&mut want64, &r, taps);
            let mut want32 = vec![5i32; n];
            scalar_row_interior_narrow(&mut want32, &r, taps);
            for &l in &levels() {
                let mut a = vec![5i64; n];
                row_interior_wide(l, &mut a, &r, taps);
                assert_eq!(a, want64, "wide level {l} n {n}");
                let mut a = vec![5i32; n];
                row_interior_narrow(l, &mut a, &r, taps);
                assert_eq!(a, want32, "narrow level {l} n {n}");
            }
        }
    }

    #[test]
    fn padded_matches_scalar_for_all_levels_and_edge_widths() {
        for n in [1usize, 2, 3, 4, 5, 8, 9, 17, 33] {
            let r = row(n, n as i64 + 11);
            let taps = [-3, 12, 2];
            let mut want = vec![-9i64; n];
            crate::kernels::accum_row_padded(&mut want, &r, taps);
            for &l in &levels() {
                let mut a = vec![-9i64; n];
                row_padded_wide(l, &mut a, &r, taps);
                assert_eq!(a, want, "wide level {l} n {n}");
                let mut a = vec![-9i32; n];
                row_padded_narrow(l, &mut a, &r, taps);
                let widened: Vec<i64> = a.iter().map(|&v| v as i64).collect();
                assert_eq!(widened, want, "narrow level {l} n {n}");
            }
        }
    }

    #[test]
    fn ch_mac_matches_scalar_for_all_levels() {
        for n in [1usize, 4, 7, 8, 9, 40, 101] {
            let s = row(n, 3);
            let mut want = vec![17i64; n];
            scalar_ch_mac_wide(&mut want, &s, -777);
            for &l in &levels() {
                let mut a = vec![17i64; n];
                ch_mac_wide(l, &mut a, &s, -777);
                assert_eq!(a, want, "wide level {l} n {n}");
                let mut a = vec![17i32; n];
                ch_mac_narrow(l, &mut a, &s, -777);
                let widened: Vec<i64> = a.iter().map(|&v| v as i64).collect();
                assert_eq!(widened, want, "narrow level {l} n {n}");
            }
        }
    }

    #[test]
    fn narrow_wraps_modularly_instead_of_panicking() {
        // Out-of-license inputs must wrap (mod 2^32), never trap — the
        // executor guarantees it only routes proven instructions here, but
        // the kernel itself is total.
        for &l in &levels() {
            let mut a = vec![i32::MAX; 9];
            let src = vec![i16::MAX; 9];
            ch_mac_narrow(l, &mut a, &src, i32::MAX);
            let want = (i32::MAX as i64
                + ((i32::MAX as i64 * i16::MAX as i64) & 0xFFFF_FFFF) as i32 as i64)
                as i32;
            assert!(a.iter().all(|&v| v == want), "level {l}");
        }
    }
}
