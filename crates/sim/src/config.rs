//! Machine configuration constants (paper Table 2).

use serde::{Deserialize, Serialize};

/// eCNN hardware configuration. [`EcnnConfig::paper`] reproduces Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EcnnConfig {
    /// Core clock in Hz (250 MHz).
    pub clock_hz: f64,
    /// Multipliers in the LCONV3×3 engine (32×32 filters × 9 taps × 8 px).
    pub lconv3_multipliers: u64,
    /// Multipliers in the LCONV1×1 engine (32×32 × 8 px).
    pub lconv1_multipliers: u64,
    /// Number of physical block buffers.
    pub block_buffers: usize,
    /// Capacity of each block buffer in bytes (512 KB).
    pub block_buffer_bytes: usize,
    /// Sub-buffer banks per block buffer (Fig. 17).
    pub banks_per_buffer: usize,
    /// Parameter-memory capacity in bytes (1288 KB across 21 memories).
    pub param_memory_bytes: usize,
    /// IDU decode cycles per leaf-module (512 coeffs / 2 per cycle).
    pub idu_cycles_per_leaf: u64,
}

impl EcnnConfig {
    /// The configuration laid out in the paper (Table 2).
    pub const fn paper() -> Self {
        Self {
            clock_hz: 250e6,
            lconv3_multipliers: 32 * 32 * 9 * 8,
            lconv1_multipliers: 32 * 32 * 8,
            block_buffers: 3,
            block_buffer_bytes: 512 * 1024,
            banks_per_buffer: 8,
            param_memory_bytes: 1288 * 1024,
            idu_cycles_per_leaf: 256,
        }
    }

    /// Variant with the parameter memory scaled by `factor` (the object
    /// recognition case study triples it; Section 7.3).
    pub fn with_param_memory_scale(mut self, factor: usize) -> Self {
        self.param_memory_bytes *= factor;
        self
    }

    /// Total multipliers (81,920 on the paper configuration).
    pub fn total_multipliers(&self) -> u64 {
        self.lconv3_multipliers + self.lconv1_multipliers
    }

    /// Peak throughput in TOPS (2 ops per multiplier per cycle).
    pub fn peak_tops(&self) -> f64 {
        self.total_multipliers() as f64 * 2.0 * self.clock_hz / 1e12
    }

    /// Peak throughput of the LCONV3×3 engine alone, in TOPS.
    pub fn lconv3_tops(&self) -> f64 {
        self.lconv3_multipliers as f64 * 2.0 * self.clock_hz / 1e12
    }

    /// Total block-buffer capacity in bytes (3 × 512 KB = 1536 KB).
    pub fn total_bb_bytes(&self) -> usize {
        self.block_buffers * self.block_buffer_bytes
    }
}

impl Default for EcnnConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table2() {
        let c = EcnnConfig::paper();
        assert_eq!(c.total_multipliers(), 81_920);
        // 41 TOPS at 250 MHz.
        assert!((c.peak_tops() - 40.96).abs() < 0.01);
        // LCONV3x3 delivers 90% of inference performance.
        assert!((c.lconv3_tops() / c.peak_tops() - 0.9).abs() < 0.001);
        assert_eq!(c.total_bb_bytes(), 1536 * 1024);
        assert_eq!(c.param_memory_bytes, 1288 * 1024);
    }

    #[test]
    fn param_memory_scaling_for_recognition() {
        let c = EcnnConfig::paper().with_param_memory_scale(3);
        assert_eq!(c.param_memory_bytes, 3 * 1288 * 1024);
    }
}
