//! Block-based truncated-pyramid inference analysis (paper Section 3).
//!
//! Two levels of fidelity are provided:
//!
//! * Closed forms for plain CONV3×3 networks — Eq. (2) for the normalized
//!   bandwidth ratio and Eq. (3) for the normalized computation ratio, both
//!   functions of the depth-input ratio `β = D / x_i`.
//! * An exact per-layer **footprint walk** for arbitrary models (ERNets with
//!   upsamplers, 12ch variants, CV networks), which the closed forms are
//!   property-tested against on plain networks.

use crate::complexity::{op_macs_per_pixel, ChannelMode};
use crate::layer::Op;
use crate::model::Model;
use serde::{Deserialize, Serialize};

/// Eq. (2): normalized bandwidth ratio of the truncated-pyramid flow for a
/// plain CONV3×3 network, `NBR = 1 + 1/(1-2β)²`.
///
/// # Panics
///
/// Panics if `beta` is outside `[0, 0.5)`.
pub fn plain_nbr(beta: f64) -> f64 {
    assert!(
        (0.0..0.5).contains(&beta),
        "β must be in [0, 0.5), got {beta}"
    );
    1.0 + 1.0 / ((1.0 - 2.0 * beta) * (1.0 - 2.0 * beta))
}

/// Eq. (3): normalized computation ratio of the truncated-pyramid flow for a
/// plain CONV3×3 network, `NCR = 1/3 + (2/3)·(1-β)/(1-2β)²`.
///
/// # Panics
///
/// Panics if `beta` is outside `[0, 0.5)`.
pub fn plain_ncr(beta: f64) -> f64 {
    assert!(
        (0.0..0.5).contains(&beta),
        "β must be in [0, 0.5), got {beta}"
    );
    let d = 1.0 - 2.0 * beta;
    1.0 / 3.0 + (2.0 / 3.0) * (1.0 - beta) / (d * d)
}

/// Continuous (f64) footprint walk of a model under the truncated-pyramid
/// inference type: every CONV3×3 trims one pixel per side, shuffles and
/// downsamplers rescale.
///
/// Sizes are *square block side lengths*; `sizes[0]` is the required input
/// block `x_i`, `sizes[len]` is the output block `x_o` (both at their own
/// native resolutions).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FootprintWalk {
    /// Block side at every chain position (index 0 = model input).
    pub sizes: Vec<f64>,
}

impl FootprintWalk {
    /// Walks backward from an output block of side `xo` (at output
    /// resolution) to the required input block.
    ///
    /// Returns `None` if any intermediate size is non-positive (the pyramid
    /// collapses: no valid output pixels for this depth/size combination).
    pub fn backward(model: &Model, xo: f64) -> Option<Self> {
        let mut sizes = vec![0.0; model.len() + 1];
        sizes[model.len()] = xo;
        for (i, layer) in model.layers().iter().enumerate().rev() {
            let out = sizes[i + 1];
            let inp = match layer.op {
                Op::Conv3x3 { .. } | Op::ErModule { .. } => out + 2.0,
                Op::Conv1x1 { .. } => out,
                Op::PixelShuffle { factor } => out / factor as f64,
                Op::PixelUnshuffle { factor } | Op::Downsample { factor, .. } => {
                    out * factor as f64
                }
            };
            if inp <= 0.0 {
                return None;
            }
            sizes[i] = inp;
        }
        if sizes[0] > 0.0 && xo > 0.0 {
            Some(Self { sizes })
        } else {
            None
        }
    }

    /// Walks forward from an input block of side `xi` to the produced output
    /// block. Returns `None` if the pyramid collapses (some size ≤ 0).
    pub fn forward(model: &Model, xi: f64) -> Option<Self> {
        let mut sizes = vec![0.0; model.len() + 1];
        sizes[0] = xi;
        for (i, layer) in model.layers().iter().enumerate() {
            let inp = sizes[i];
            let out = match layer.op {
                Op::Conv3x3 { .. } | Op::ErModule { .. } => inp - 2.0,
                Op::Conv1x1 { .. } => inp,
                Op::PixelShuffle { factor } => inp * factor as f64,
                Op::PixelUnshuffle { factor } | Op::Downsample { factor, .. } => {
                    inp / factor as f64
                }
            };
            if out <= 0.0 {
                return None;
            }
            sizes[i + 1] = out;
        }
        Some(Self { sizes })
    }

    /// Required input block side `x_i`.
    pub fn xi(&self) -> f64 {
        self.sizes[0]
    }

    /// Produced output block side `x_o`.
    pub fn xo(&self) -> f64 {
        *self.sizes.last().expect("walk is nonempty")
    }
}

/// Exact NCR of the block-based flow for `model` with input blocks of side
/// `xi`: (per-block compute) / (intrinsic compute for the same output area).
///
/// Returns `None` if `xi` is too small to produce any output.
pub fn ncr(model: &Model, xi: f64, mode: ChannelMode) -> Option<f64> {
    let walk = FootprintWalk::forward(model, xi)?;
    let scales = model.scale_walk();
    let out_scale = model.output_scale();
    let xo = walk.xo();
    let mut block_ops = 0.0;
    let mut intrinsic_ops = 0.0;
    for (i, layer) in model.layers().iter().enumerate() {
        let macs = op_macs_per_pixel(&layer.op, mode) as f64;
        if macs == 0.0 {
            continue;
        }
        // The layer computes over its *output* tile.
        let tile = walk.sizes[i + 1];
        block_ops += macs * tile * tile;
        // Intrinsically the layer covers the output area scaled to its own
        // resolution.
        let rel = scales[i + 1] / out_scale;
        intrinsic_ops += macs * (xo * rel) * (xo * rel);
    }
    Some(block_ops / intrinsic_ops)
}

/// Exact NBR of the block-based flow: DRAM traffic for input + output blocks
/// over the traffic of the output image alone. `feature_bytes` is the byte
/// width of the streamed I/O samples (1 for the paper's 8-bit images).
///
/// Returns `None` if `xi` is too small to produce any output.
pub fn nbr(model: &Model, xi: f64, feature_bytes: f64) -> Option<f64> {
    let walk = FootprintWalk::forward(model, xi)?;
    let xo = walk.xo();
    let in_bytes = model.in_channels() as f64 * feature_bytes;
    let out_bytes = model.out_channels() as f64 * feature_bytes;
    Some(1.0 + (xi * xi * in_bytes) / (xo * xo * out_bytes))
}

/// Block-buffer capacity needed for an input block of side `xi` holding `c`
/// channels of `bits`-wide features (paper: `C · L · x_i²`).
pub fn buffer_bytes(c: usize, xi: f64, bits: u32) -> f64 {
    c as f64 * xi * xi * bits as f64 / 8.0
}

/// Inverse of [`buffer_bytes`]: the largest block side a buffer supports.
pub fn xi_for_buffer(buffer_bytes: f64, c: usize, bits: u32) -> f64 {
    (buffer_bytes * 8.0 / (c as f64 * bits as f64)).sqrt()
}

/// NCR as a function of block-buffer size (Fig. 5b): sizes the input block
/// from the buffer capacity, then runs the exact NCR walk.
pub fn ncr_vs_buffer(
    model: &Model,
    buffer_bytes: f64,
    feature_channels: usize,
    feature_bits: u32,
    mode: ChannelMode,
) -> Option<f64> {
    let xi = xi_for_buffer(buffer_bytes, feature_channels, feature_bits);
    ncr(model, xi, mode)
}

/// Integer block geometry used by the compiler and the cycle simulator.
///
/// Unlike [`FootprintWalk`] this is exact integer arithmetic and fails
/// loudly when a shuffle/downsample factor does not divide the current
/// block side.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockGeometry {
    /// Block side (square) at every chain position; `sides[0]` is the input
    /// block, `sides[len]` the output block.
    pub sides: Vec<usize>,
}

impl BlockGeometry {
    /// Forward integer walk from input block side `xi`.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error when a factor does not divide the block
    /// side or the pyramid collapses to zero.
    pub fn forward(model: &Model, xi: usize) -> Result<Self, String> {
        let mut sides = Vec::with_capacity(model.len() + 1);
        sides.push(xi);
        for (i, layer) in model.layers().iter().enumerate() {
            let inp = *sides.last().expect("nonempty");
            let out = match layer.op {
                Op::Conv3x3 { .. } | Op::ErModule { .. } => {
                    if inp <= 2 {
                        return Err(format!("layer {i}: block collapses ({inp} ≤ 2)"));
                    }
                    inp - 2
                }
                Op::Conv1x1 { .. } => inp,
                Op::PixelShuffle { factor } => inp * factor,
                Op::PixelUnshuffle { factor } | Op::Downsample { factor, .. } => {
                    if inp % factor != 0 {
                        return Err(format!(
                            "layer {i}: block side {inp} not divisible by {factor}"
                        ));
                    }
                    inp / factor
                }
            };
            sides.push(out);
        }
        Ok(Self { sides })
    }

    /// Input block side.
    pub fn xi(&self) -> usize {
        self.sides[0]
    }

    /// Output block side.
    pub fn xo(&self) -> usize {
        *self.sides.last().expect("nonempty")
    }

    /// Number of blocks needed to tile a `width × height` output image.
    pub fn blocks_for_image(&self, width: usize, height: usize) -> usize {
        let xo = self.xo();
        width.div_ceil(xo) * height.div_ceil(xo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, Layer};
    use crate::model::Model;

    fn plain(depth: usize, channels: usize) -> Model {
        let mut layers = vec![Layer::new(Op::Conv3x3 {
            in_c: channels,
            out_c: channels,
            act: Activation::Relu,
        })];
        for _ in 1..depth {
            layers.push(Layer::new(Op::Conv3x3 {
                in_c: channels,
                out_c: channels,
                act: Activation::Relu,
            }));
        }
        Model::new("plain", channels, channels, layers).unwrap()
    }

    #[test]
    fn closed_form_anchors() {
        // Paper: NBR is 26x at β = 0.4.
        assert!((plain_nbr(0.4) - 26.0).abs() < 1e-9);
        // NCR -> 1 as β -> 0 (no overhead for huge blocks).
        assert!((plain_ncr(1e-9) - 1.0).abs() < 1e-6);
        // At β = 0.4: 1/3 + (2/3)(0.6)/(0.04) = 10.33 — ~90% recompute.
        assert!((plain_ncr(0.4) - (1.0 / 3.0 + 0.4 / 0.04)).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn beta_half_is_rejected() {
        plain_ncr(0.5);
    }

    #[test]
    fn footprint_walk_plain_network() {
        let m = plain(20, 64);
        let w = FootprintWalk::forward(&m, 128.0).unwrap();
        assert_eq!(w.xi(), 128.0);
        assert_eq!(w.xo(), 128.0 - 40.0);
        let b = FootprintWalk::backward(&m, 88.0).unwrap();
        assert_eq!(b.xi(), 128.0);
    }

    #[test]
    fn forward_backward_are_inverse_with_scaling() {
        let layers = vec![
            Layer::new(Op::Conv3x3 {
                in_c: 32,
                out_c: 128,
                act: Activation::None,
            }),
            Layer::new(Op::PixelShuffle { factor: 2 }),
            Layer::new(Op::Conv3x3 {
                in_c: 32,
                out_c: 32,
                act: Activation::None,
            }),
        ];
        let m = Model::new("up", 32, 32, layers).unwrap();
        let f = FootprintWalk::forward(&m, 60.0).unwrap();
        let b = FootprintWalk::backward(&m, f.xo()).unwrap();
        for (a, c) in f.sizes.iter().zip(&b.sizes) {
            assert!((a - c).abs() < 1e-9);
        }
    }

    #[test]
    fn walk_fails_when_pyramid_collapses() {
        let m = plain(20, 64);
        assert!(FootprintWalk::forward(&m, 40.0).is_none()); // 40 - 2*20 = 0
        assert!(FootprintWalk::forward(&m, 41.0).is_some());
    }

    #[test]
    fn exact_ncr_matches_closed_form_on_plain_networks() {
        // Eq. (3) is the continuum limit; the exact discrete sum converges to
        // it for deep networks. Use D=40, xi in a range of betas.
        for &xi in &[160.0, 200.0, 320.0] {
            let m = plain(40, 64);
            let beta = 40.0 / xi;
            let exact = ncr(&m, xi, ChannelMode::Algorithmic).unwrap();
            let closed = plain_ncr(beta);
            let rel = (exact - closed).abs() / closed;
            assert!(rel < 0.05, "xi={xi}: exact {exact} vs closed {closed}");
        }
    }

    #[test]
    fn exact_nbr_matches_closed_form_on_plain_networks() {
        let m = plain(20, 3);
        let xi = 100.0;
        let beta = 20.0 / xi;
        let exact = nbr(&m, xi, 1.0).unwrap();
        // Eq. (2) with xo = xi - 2D exactly.
        assert!((exact - plain_nbr(beta)).abs() < 1e-9);
    }

    #[test]
    fn vdsr_1mb_buffer_gives_ncr_2() {
        // Paper Fig. 5b: "The NCR for the 20-layer VDSR is well controlled as
        // 2× using 1MB block buffers" (64ch, 16-bit features).
        let vdsr = crate::zoo::vdsr();
        let ncr = ncr_vs_buffer(&vdsr, 1024.0 * 1024.0, 64, 16, ChannelMode::Algorithmic).unwrap();
        assert!((ncr - 2.0).abs() < 0.15, "VDSR NCR at 1MB: {ncr}");
    }

    #[test]
    fn srresnet_needs_about_2mb_for_similar_ncr() {
        // Paper Fig. 5b: the 37-layer SRResNet needs ~2MB for NCR ≈ 2×.
        let sr = crate::zoo::srresnet();
        let at2mb =
            ncr_vs_buffer(&sr, 2.0 * 1024.0 * 1024.0, 64, 16, ChannelMode::Algorithmic).unwrap();
        let at1mb = ncr_vs_buffer(&sr, 1024.0 * 1024.0, 64, 16, ChannelMode::Algorithmic).unwrap();
        assert!(at2mb < 3.2, "SRResNet NCR at 2MB: {at2mb}");
        assert!(at1mb > at2mb * 1.5, "NCR must skyrocket for small buffers");
    }

    #[test]
    fn dnernet_b3_nbr_matches_fig21() {
        // DnERNet-B3R1N0 has 6 CONV3x3 layers; xi=128 -> xo=116 ->
        // NBR = 1 + (128/116)^2 ≈ 2.22 (paper: 2.2x for UHD30).
        let m = crate::ernet::ErNetSpec::new(crate::ernet::ErNetTask::Dn, 3, 1, 0)
            .build()
            .unwrap();
        assert_eq!(m.depth_conv3x3(), 6);
        let v = nbr(&m, 128.0, 1.0).unwrap();
        assert!((v - 2.218).abs() < 0.01, "NBR {v}");
    }

    #[test]
    fn integer_geometry_matches_float_walk() {
        let m = plain(5, 32);
        let g = BlockGeometry::forward(&m, 64).unwrap();
        assert_eq!(g.xi(), 64);
        assert_eq!(g.xo(), 54);
        assert_eq!(g.sides.len(), 6);
    }

    #[test]
    fn integer_geometry_rejects_indivisible_factors() {
        let layers = vec![Layer::new(Op::Downsample {
            kind: crate::layer::PoolKind::Max,
            factor: 2,
        })];
        let m = Model::new("d", 32, 32, layers).unwrap();
        assert!(BlockGeometry::forward(&m, 63).is_err());
        assert!(BlockGeometry::forward(&m, 64).is_ok());
    }

    #[test]
    fn blocks_for_image_covers_frame() {
        let m = plain(6, 32);
        let g = BlockGeometry::forward(&m, 128).unwrap();
        assert_eq!(g.xo(), 116);
        // 3840/116 = 33.1 -> 34; 2160/116 = 18.6 -> 19
        assert_eq!(g.blocks_for_image(3840, 2160), 34 * 19);
    }

    #[test]
    fn buffer_sizing_round_trip() {
        let b = buffer_bytes(32, 128.0, 8);
        assert_eq!(b, 512.0 * 1024.0); // 32ch x 128^2 x 1B = 512 KB
        assert!((xi_for_buffer(b, 32, 8) - 128.0).abs() < 1e-9);
    }
}
