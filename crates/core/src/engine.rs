//! The unified engine/backend API: one entry point for eCNN and every
//! comparison flow, plus streaming multi-frame sessions.
//!
//! * [`Workload`] bundles what to run: a quantized model, an input block
//!   size and a [`RealTimeSpec`] target.
//! * [`Backend`] is the capability surface every inference flow implements
//!   (the eCNN simulator here, the frame-based / fused-layer / TPU / Diffy
//!   flows in `ecnn-baselines`): a [`FrameReport`] for any workload, and —
//!   for bit-exact backends — [`Backend::run_image`].
//! * [`EngineBuilder`] is the fluent front door to the eCNN simulator;
//!   [`Engine`] the built instance; [`Session`] a streaming handle that
//!   reuses its block/stitch buffers across frames.
//! * [`EngineError`] is the one structured error type for the whole
//!   surface, with [`std::error::Error::source`] chaining.

use crate::config::EngineConfig;
use crate::faults::FaultPlan;
use crate::report::SystemReport;
use crate::supervise::{DegradeRung, SupervisorCounters};
use crate::tune::{Fingerprint, TuningRecord};
use ecnn_dram::{DramConfig, DramPowerModel};
use ecnn_isa::compile::{compile, CompileError, CompiledProgram};
use ecnn_isa::params::QuantizedModel;
use ecnn_isa::verify::memplan::{cost_model, CostReport};
use ecnn_isa::verify::{verify_compiled, VerifyMode, VerifyReport};
use ecnn_model::ernet::ErNetSpec;
use ecnn_model::{Model, ModelError, RealTimeSpec};
use ecnn_sim::cost::PowerModel;
use ecnn_sim::exec::{execute_with, BlockPlan, ExecError, ExecStats, Kernels, PlanePool};
use ecnn_sim::timing::simulate_frame;
use ecnn_sim::EcnnConfig;
use ecnn_tensor::Tensor;
use std::fmt;

/// What to run: a quantized model bound to a block size and a real-time
/// target. Backends interpret the same workload in their own flow.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The quantized model (carries the IR in `qm.model`).
    pub qm: QuantizedModel,
    /// Input block side for the block-based flow.
    pub block: usize,
    /// Output resolution and frame-rate target.
    pub spec: RealTimeSpec,
    /// Feature width in bits charged by frame-based baselines.
    pub feature_bits: u32,
}

impl Workload {
    /// A workload with the default 16-bit baseline feature width.
    pub fn new(qm: QuantizedModel, block: usize, spec: RealTimeSpec) -> Self {
        Self {
            qm,
            block,
            spec,
            feature_bits: 16,
        }
    }

    /// Builds an ERNet spec with uniform demo parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] for invalid specs.
    pub fn ernet(spec: ErNetSpec, block: usize, rt: RealTimeSpec) -> Result<Self, EngineError> {
        let model = spec.build()?;
        Ok(Self::new(QuantizedModel::uniform(&model), block, rt))
    }

    /// The model IR.
    pub fn model(&self) -> &Model {
        &self.qm.model
    }

    /// Same workload with a different baseline feature width.
    pub fn with_feature_bits(mut self, bits: u32) -> Self {
        self.feature_bits = bits;
        self
    }
}

/// An image whose geometry does not match the deployed program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImageMismatch {
    /// Offered image width in pixels.
    pub width: usize,
    /// Offered image height in pixels.
    pub height: usize,
    /// Offered image channels.
    pub channels: usize,
    /// Channels the deployed model consumes.
    pub expected_channels: usize,
    /// Input block side the program was compiled for.
    pub block: usize,
}

impl fmt::Display for ImageMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "image {}x{} with {} channel(s): model wants {} channel(s) (input blocks {}x{})",
            self.width, self.height, self.channels, self.expected_channels, self.block, self.block
        )
    }
}

/// Errors across the engine/backend surface.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// The builder was missing a required component.
    Missing(&'static str),
    /// A model spec failed to build.
    Model(ModelError),
    /// Compilation failed (infeasible geometry, unsupported op, …).
    Compile(CompileError),
    /// Block execution failed (simulator invariant violation).
    Exec(ExecError),
    /// Static verification rejected the program (see
    /// [`mod@ecnn_isa::verify`]); the report carries the ranked diagnostics.
    Verify(Box<VerifyReport>),
    /// The resolved [`EngineConfig`] is incoherent (zero workers, a
    /// coalesced layout with verification off, a tuning record whose
    /// fingerprint does not match the model/resolution, …): a structured
    /// build-time rejection instead of a silent fallback.
    Config {
        /// Which knob is at fault (`"workers"`, `"coalesce"`,
        /// `"tuning-record"`, …).
        param: &'static str,
        /// Human-readable description of the conflict.
        detail: String,
    },
    /// The image cannot be processed by this deployment.
    Image(ImageMismatch),
    /// The backend does not implement the requested capability.
    Unsupported {
        /// Backend name.
        backend: String,
        /// The capability that was requested (e.g. `"run_image"`).
        capability: &'static str,
    },
    /// A sharded worker failed; carries which shard and which block of the
    /// frame's grid, plus the underlying error.
    Shard {
        /// Worker index within the sharded backend.
        shard: usize,
        /// Row-major index of the failing block in the frame's block grid.
        block: usize,
        /// The error the worker hit.
        source: Box<EngineError>,
    },
    /// A sharded worker panicked (a bug, not an input error).
    Worker {
        /// Worker index within the sharded backend.
        shard: usize,
        /// The panic payload, when it was a `&str` / `String` message —
        /// so post-mortems name the actual panic.
        message: Option<String>,
    },
    /// A band's output failed an integrity check — the corruption-class
    /// failure the supervision layer's degradation ladder reacts to
    /// (today produced only by [`crate::faults`] injection; a real
    /// detector would raise the same variant). The band is never pasted,
    /// so a frame that eventually completes stays bit-identical.
    Corrupt {
        /// First block row of the band whose output was corrupt.
        band: usize,
        /// Kernel family that produced the corrupt output.
        kernels: &'static str,
    },
    /// A pipelined frame failed in flight; carries the frame's submission
    /// index, the worker (shard) that hit the failure and the failing
    /// block of the frame's grid, plus the underlying error.
    Frame {
        /// Submission index of the frame within its [`crate::pipe::AsyncSession`].
        frame: usize,
        /// Worker index within the session's pool.
        shard: usize,
        /// Row-major index of the failing block in the frame's block grid.
        block: usize,
        /// The error the worker hit.
        source: Box<EngineError>,
    },
    /// A frame ticket unknown to the session it was polled on: never
    /// issued there, or its result was already claimed.
    Ticket {
        /// Submission index the ticket names.
        frame: usize,
    },
    /// A band-execution request addressed block rows outside the frame's
    /// grid (or an empty range).
    Rows {
        /// First requested block row.
        start: usize,
        /// One past the last requested block row.
        end: usize,
        /// Block rows the frame's grid actually has.
        available: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Missing(what) => write!(f, "engine builder: missing {what}"),
            EngineError::Model(e) => write!(f, "model: {e}"),
            EngineError::Compile(e) => write!(f, "compile: {e}"),
            EngineError::Exec(e) => write!(f, "execute: {e}"),
            EngineError::Verify(report) => {
                let first = report
                    .errors()
                    .next()
                    .or_else(|| report.diagnostics.first());
                match first {
                    Some(d) => write!(
                        f,
                        "verify: {} finding(s), first: {d}",
                        report.diagnostics.len()
                    ),
                    None => write!(f, "verify: rejected"),
                }
            }
            EngineError::Config { param, detail } => {
                write!(f, "config: {param}: {detail}")
            }
            EngineError::Image(m) => write!(f, "image: {m}"),
            EngineError::Unsupported {
                backend,
                capability,
            } => {
                write!(f, "backend {backend} does not support {capability}")
            }
            EngineError::Shard {
                shard,
                block,
                source,
            } => {
                write!(f, "shard {shard} failed at block {block}: {source}")
            }
            EngineError::Worker { shard, message } => match message {
                Some(msg) => write!(f, "shard {shard} worker panicked: {msg}"),
                None => write!(f, "shard {shard} worker panicked"),
            },
            EngineError::Corrupt { band, kernels } => {
                write!(
                    f,
                    "corrupt band output detected at block row {band} ({kernels} kernels)"
                )
            }
            EngineError::Frame {
                frame,
                shard,
                block,
                source,
            } => {
                write!(
                    f,
                    "frame {frame} failed in flight (shard {shard}, block {block}): {source}"
                )
            }
            EngineError::Ticket { frame } => {
                write!(f, "frame ticket {frame}: unknown or already claimed")
            }
            EngineError::Rows {
                start,
                end,
                available,
            } => {
                write!(
                    f,
                    "block rows {start}..{end} outside the frame grid of {available} row(s)"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Model(e) => Some(e),
            EngineError::Compile(e) => Some(e),
            EngineError::Exec(e) => Some(e),
            EngineError::Shard { source, .. } | EngineError::Frame { source, .. } => {
                Some(&**source)
            }
            _ => None,
        }
    }
}

impl From<ModelError> for EngineError {
    fn from(e: ModelError) -> Self {
        EngineError::Model(e)
    }
}

impl From<CompileError> for EngineError {
    fn from(e: CompileError) -> Self {
        EngineError::Compile(e)
    }
}

impl From<ExecError> for EngineError {
    fn from(e: ExecError) -> Self {
        EngineError::Exec(e)
    }
}

/// Per-image execution statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ImageRunStats {
    /// Blocks executed.
    pub blocks: usize,
    /// Aggregated executor counters.
    pub exec: ExecStats,
    /// Supervision counters for this frame (retries, respawns, deadline
    /// hits, degradations, per-band attempt histogram). All-zero on the
    /// unsupervised paths (serial session, sharded one-shot).
    pub supervisor: SupervisorCounters,
}

impl ImageRunStats {
    fn absorb(&mut self, s: ExecStats, blocks: usize) {
        self.blocks += blocks;
        self.exec.accumulate(&s);
    }

    /// Adds another run's counters into this one (sharded-band merging).
    pub fn merge(&mut self, other: &ImageRunStats) {
        self.absorb(other.exec, other.blocks);
        self.supervisor.absorb(&other.supervisor);
    }
}

/// Backend-agnostic frame-level result: what one inference flow delivers
/// on one workload. Every backend fills the common fields; flow-specific
/// quantities that have no equivalent elsewhere stay `None`.
#[derive(Clone, Debug)]
pub struct FrameReport {
    /// Backend name.
    pub backend: String,
    /// Model name.
    pub workload: String,
    /// The real-time target evaluated against.
    pub spec: RealTimeSpec,
    /// Achievable frames per second.
    pub fps: f64,
    /// Whether `fps` meets the spec.
    pub meets_realtime: bool,
    /// DRAM traffic per output frame, bytes.
    pub dram_bytes_per_frame: f64,
    /// Sustained DRAM bandwidth at the spec-capped rate, bytes/s.
    pub dram_bps: f64,
    /// On-chip SRAM holding features (block buffers, line buffers or
    /// unified buffer), bytes.
    pub feature_sram_bytes: f64,
    /// Power estimate in watts, when the flow models power.
    pub power_w: Option<f64>,
    /// Effective compute throughput in TOPS, when modelled.
    pub tops: Option<f64>,
    /// Datapath utilization in `[0, 1]`, when modelled.
    pub utilization: Option<f64>,
    /// Flow-specific remark (provenance, caveats).
    pub note: String,
}

impl FrameReport {
    /// Header matching [`FrameReport`]'s `Display` row.
    pub fn table_header() -> String {
        format!(
            "{:<12} {:<22} {:>6} {:>8} {:>3} {:>10} {:>10} {:>8} {:>6}",
            "backend", "workload", "spec", "fps", "RT", "DRAM GB/s", "SRAM KB", "power W", "util%"
        )
    }

    /// Renders `reports` as one aligned comparison table.
    pub fn table(reports: &[FrameReport]) -> String {
        let mut s = Self::table_header();
        for r in reports {
            s.push('\n');
            s.push_str(&r.to_string());
        }
        s
    }
}

impl fmt::Display for FrameReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let opt = |v: Option<f64>, mul: f64| match v {
            Some(x) => format!("{:.1}", x * mul),
            None => "-".into(),
        };
        write!(
            f,
            "{:<12} {:<22} {:>6} {:>8.1} {:>3} {:>10.2} {:>10.0} {:>8} {:>6}",
            self.backend,
            self.workload,
            self.spec.name,
            self.fps,
            if self.meets_realtime { "yes" } else { "NO" },
            self.dram_bps / 1e9,
            self.feature_sram_bytes / 1024.0,
            opt(self.power_w, 1.0),
            opt(self.utilization, 100.0),
        )
    }
}

/// One inference flow: the eCNN block-based simulator or any of the
/// comparison baselines. Minimal capability is an analytical
/// [`FrameReport`]; bit-exact flows additionally run real images.
pub trait Backend {
    /// Short stable identifier (`"ecnn"`, `"frame-based"`, `"ecnn[x2]"`,
    /// …).
    fn name(&self) -> &str;

    /// Frame-level throughput / traffic / power for `workload`.
    ///
    /// # Errors
    ///
    /// Backend-specific; the eCNN backend propagates compilation errors.
    fn frame_report(&self, workload: &Workload) -> Result<FrameReport, EngineError>;

    /// Whether [`Backend::run_image`] is implemented.
    fn supports_run_image(&self) -> bool {
        false
    }

    /// Runs one image through the flow bit-exactly, if supported.
    ///
    /// # Errors
    ///
    /// [`EngineError::Unsupported`] unless the backend overrides this.
    fn run_image(
        &self,
        workload: &Workload,
        image: &Tensor<f32>,
    ) -> Result<(Tensor<f32>, ImageRunStats), EngineError> {
        let _ = (workload, image);
        Err(EngineError::Unsupported {
            backend: self.name().to_string(),
            capability: "run_image",
        })
    }

    /// The flow's block-parallel execution capability, when it has one
    /// (`None` for purely analytical flows). [`crate::sharded::ShardedBackend`]
    /// uses this to partition `run_image`'s block grid across workers.
    fn block_parallel(&self) -> Option<&dyn crate::sharded::BlockParallel> {
        None
    }
}

/// Fluent constructor for [`Engine`]: model spec → quantization → block
/// size → real-time spec → machine/power/DRAM models, with paper defaults
/// for everything but the model and block size.
///
/// Every plan-time knob — block size, worker count, kernel family, plane
/// layout, verification mode — resolves into one canonical
/// [`EngineConfig`]; the per-knob setters below are thin sugar over it.
/// Resolution order, weakest first: defaults, a
/// [`TuningRecord`] from
/// [`EngineBuilder::tuned`], the explicit setters (or
/// [`EngineBuilder::engine_config`]), and the `ECNN_*` environment
/// overrides (see [`crate::config`]). [`Engine::config`] returns the
/// resolved value.
#[derive(Clone, Debug, Default)]
pub struct EngineBuilder {
    pub(crate) ernet: Option<ErNetSpec>,
    pub(crate) model: Option<Model>,
    pub(crate) qm: Option<QuantizedModel>,
    pub(crate) block: Option<usize>,
    pub(crate) spec: Option<RealTimeSpec>,
    feature_bits: Option<u32>,
    machine: Option<EcnnConfig>,
    power: Option<PowerModel>,
    dram_power: Option<DramPowerModel>,
    verify: Option<VerifyMode>,
    kernels: Option<Kernels>,
    coalesce: Option<bool>,
    workers: Option<usize>,
    faults: Option<FaultPlan>,
    record: Option<TuningRecord>,
    /// Candidate builds inside the autotuner must be exact: they bypass
    /// the `ECNN_*` environment overrides.
    pub(crate) skip_env: bool,
}

impl EngineBuilder {
    /// Use an ERNet family spec (built during [`EngineBuilder::build`]).
    pub fn ernet(mut self, spec: ErNetSpec) -> Self {
        self.ernet = Some(spec);
        self
    }

    /// Use an already-built model IR (quantized uniformly unless
    /// [`EngineBuilder::quantized`] provides parameters).
    pub fn model(mut self, model: Model) -> Self {
        self.model = Some(model);
        self
    }

    /// Use trained quantized parameters (implies their model).
    pub fn quantized(mut self, qm: QuantizedModel) -> Self {
        self.qm = Some(qm);
        self
    }

    /// Input block side (`xi`).
    pub fn block(mut self, xi: usize) -> Self {
        self.block = Some(xi);
        self
    }

    /// Real-time target; defaults to [`RealTimeSpec::UHD30`].
    pub fn realtime(mut self, spec: RealTimeSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Feature bits charged by frame-based baselines on this workload.
    pub fn feature_bits(mut self, bits: u32) -> Self {
        self.feature_bits = Some(bits);
        self
    }

    /// Machine (hardware) configuration; defaults to
    /// [`EcnnConfig::paper`]. Distinct from the plan-time
    /// [`EngineConfig`]: this describes the modelled silicon, not the
    /// software execution strategy.
    pub fn machine(mut self, config: EcnnConfig) -> Self {
        self.machine = Some(config);
        self
    }

    /// On-chip power model; defaults to [`PowerModel::paper_40nm`].
    pub fn power(mut self, power: PowerModel) -> Self {
        self.power = Some(power);
        self
    }

    /// DRAM power model; defaults to [`DramPowerModel::DDR4_3200`].
    pub fn dram_power(mut self, dram: DramPowerModel) -> Self {
        self.dram_power = Some(dram);
        self
    }

    /// Static-verification mode run at build time; defaults to
    /// [`VerifyMode::Lints`] (hard errors fatal, lints tolerated and
    /// recorded on [`Engine::verify_report`]). [`VerifyMode::Strict`]
    /// also fails the build on lints; [`VerifyMode::Off`] skips the
    /// verifier and the plan cross-check entirely.
    pub fn verify(mut self, mode: VerifyMode) -> Self {
        self.verify = Some(mode);
        self
    }

    /// Accumulation kernels every execution path of this engine runs
    /// ([`Session`], [`crate::pipe::AsyncSession`] workers,
    /// [`crate::sharded::ShardedBackend`] shards). Defaults to
    /// [`Kernels::Simd`] — runtime-dispatched explicit SIMD with the
    /// verifier-licensed narrow path, bit-identical to the other
    /// variants. The `ECNN_KERNELS` environment variable
    /// (`packed|simd|reference`, case-insensitive) overrides whatever is
    /// set here, for ops debugging without a rebuild.
    pub fn kernels(mut self, kernels: Kernels) -> Self {
        self.kernels = Some(kernels);
        self
    }

    /// Whether sessions run the verifier-licensed coalesced plane layout
    /// (lifetime-disjoint planes sharing physical slots; see
    /// `BlockPlan::memory_plan`). Defaults to `true`; output is
    /// bit-identical either way, only the pool's peak resident bytes
    /// differ. `false` forces the keyed one-slot-per-plane layout — for
    /// A/B measurement and as an ops escape hatch. Programs without an
    /// error-free verification always run keyed, regardless of this
    /// knob.
    pub fn coalesce(mut self, on: bool) -> Self {
        self.coalesce = Some(on);
        self
    }

    /// Worker parallelism the engine's auto paths run at:
    /// [`Engine::run_image_auto`] shards by it,
    /// [`Engine::async_session_auto`] sizes its pool with it, and the
    /// autotuner searches over it. Defaults to `1` (serial); zero is a
    /// structured [`EngineError::Config`] at build.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Deterministic fault-injection plan the supervision layer runs
    /// under (see [`crate::faults`]); default none. The `ECNN_FAULTS`
    /// environment variable overrides whatever is set here (and
    /// `ECNN_FAULTS=off` clears it), like the other `ECNN_*` knobs.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets every plan-time knob at once from a resolved
    /// [`EngineConfig`] — equivalent to calling [`EngineBuilder::block`],
    /// [`EngineBuilder::workers`], [`EngineBuilder::kernels`],
    /// [`EngineBuilder::coalesce`], [`EngineBuilder::verify`] and
    /// [`EngineBuilder::faults`] explicitly.
    pub fn engine_config(mut self, cfg: EngineConfig) -> Self {
        self.block = Some(cfg.block);
        self.workers = Some(cfg.workers);
        self.kernels = Some(cfg.kernels);
        self.coalesce = Some(cfg.coalesce);
        self.verify = Some(cfg.verify);
        self.faults = cfg.faults;
        self
    }

    /// Replays a pinned autotuning result: the record's embedded
    /// [`EngineConfig`] becomes the baseline (explicit setters and
    /// `ECNN_*` overrides still win), and [`EngineBuilder::build`]
    /// rejects the build with [`EngineError::Config`] unless the
    /// record's fingerprint matches the resolved model, quantized
    /// parameters and real-time resolution — a record tuned for one
    /// deployment cannot silently misconfigure another.
    pub fn tuned(mut self, record: TuningRecord) -> Self {
        self.record = Some(record);
        self
    }

    /// Compiles the workload and returns a runnable [`Engine`].
    ///
    /// # Errors
    ///
    /// [`EngineError::Missing`] without a model or block size;
    /// [`EngineError::Config`] for an incoherent resolved
    /// [`EngineConfig`] (zero block or workers, `coalesce(true)` with
    /// [`VerifyMode::Off`]) or a tuning-record fingerprint mismatch;
    /// [`EngineError::Model`] / [`EngineError::Compile`] for invalid specs
    /// or infeasible geometry; [`EngineError::Verify`] when the static
    /// verifier rejects the compiled program under the selected
    /// [`VerifyMode`].
    pub fn build(self) -> Result<Engine, EngineError> {
        let qm = match (self.qm, self.model, self.ernet) {
            (Some(qm), _, _) => qm,
            (None, Some(model), _) => QuantizedModel::uniform(&model),
            (None, None, Some(spec)) => QuantizedModel::uniform(&spec.build()?),
            (None, None, None) => return Err(EngineError::Missing("model")),
        };
        // Resolve the canonical plan-time config: defaults ← tuning
        // record ← explicit setters ← ECNN_* environment overrides (the
        // ops escape hatch, so a deployed binary can be steered onto a
        // known-good path without a rebuild).
        let base = self.record.as_ref().map(|r| &r.config);
        let block = self
            .block
            .or(base.map(|c| c.block))
            .ok_or(EngineError::Missing("block size"))?;
        let mut cfg = EngineConfig {
            block,
            workers: self.workers.or(base.map(|c| c.workers)).unwrap_or(1),
            kernels: self
                .kernels
                .or(base.map(|c| c.kernels))
                .unwrap_or(Kernels::Simd),
            coalesce: true, // resolved below, against the verify mode
            verify: self.verify.or(base.map(|c| c.verify)).unwrap_or_default(),
            faults: self
                .faults
                .clone()
                .or_else(|| base.and_then(|c| c.faults.clone())),
        };
        let mut coalesce = self.coalesce.or(base.map(|c| c.coalesce));
        let env = if self.skip_env {
            crate::config::EnvOverrides::default()
        } else {
            EngineConfig::from_env_overrides()
        };
        env.apply(&mut cfg);
        if let Some(c) = env.coalesce {
            coalesce = Some(c);
        }
        // Coherence checks: reject contradictions instead of silently
        // falling back.
        if cfg.block == 0 {
            return Err(EngineError::Config {
                param: "block",
                detail: "block size must be nonzero".into(),
            });
        }
        if cfg.workers == 0 {
            return Err(EngineError::Config {
                param: "workers",
                detail: "worker count must be nonzero (1 = serial)".into(),
            });
        }
        cfg.coalesce = match (coalesce, cfg.verify) {
            (Some(true), VerifyMode::Off) => {
                return Err(EngineError::Config {
                    param: "coalesce",
                    detail: "the coalesced plane layout requires a verification license; \
                             use verify(Lints|Strict) or coalesce(false)"
                        .into(),
                })
            }
            // Unset coalesce with the verifier off resolves to the keyed
            // layout: there is no license to coalesce under.
            (None, VerifyMode::Off) => false,
            (explicit, _) => explicit.unwrap_or(true),
        };
        let mut workload = Workload::new(qm, cfg.block, self.spec.unwrap_or(RealTimeSpec::UHD30));
        if let Some(bits) = self.feature_bits {
            workload = workload.with_feature_bits(bits);
        }
        if let Some(record) = &self.record {
            let fp = Fingerprint::of(&workload.qm, workload.spec);
            if fp != record.fingerprint {
                return Err(EngineError::Config {
                    param: "tuning-record",
                    detail: format!(
                        "fingerprint mismatch: record tuned for {}, building {}",
                        record.fingerprint, fp
                    ),
                });
            }
        }
        let compiled = compile(&workload.qm, workload.block)?;
        // Static verification before planning: a rejected program never
        // reaches the executor.
        let mut report = (cfg.verify != VerifyMode::Off).then(|| verify_compiled(&compiled));
        if let Some(rpt) = &report {
            if rpt.has_errors() {
                return Err(EngineError::Verify(Box::new(rpt.clone())));
            }
        }
        {
            // Plan once up front so structurally invalid programs surface
            // here as a structured error rather than on the first frame —
            // and cross-check the plan's plane table against the
            // verifier's independent derivation (differential oracle).
            let plan = BlockPlan::new(&compiled.program, &compiled.leafs)?;
            if let Some(rpt) = report.as_mut() {
                let divergences = ecnn_sim::exec::crosscheck_plan(&plan, rpt);
                rpt.diagnostics.extend(divergences);
                if !rpt.passes(cfg.verify) {
                    return Err(EngineError::Verify(Box::new(rpt.clone())));
                }
            }
        }
        Ok(Engine {
            machine: self.machine.unwrap_or_else(EcnnConfig::paper),
            power: self.power.unwrap_or_else(PowerModel::paper_40nm),
            dram_power: self.dram_power.unwrap_or(DramPowerModel::DDR4_3200),
            workload,
            compiled,
            verify_report: report,
            resolved: cfg,
            env_notes: env.notes,
        })
    }
}

/// A compiled eCNN workload bound to a machine configuration — the
/// unified entry point replacing `Accelerator::deploy` + `Deployment`.
#[derive(Clone, Debug)]
pub struct Engine {
    machine: EcnnConfig,
    power: PowerModel,
    dram_power: DramPowerModel,
    workload: Workload,
    compiled: CompiledProgram,
    verify_report: Option<VerifyReport>,
    resolved: EngineConfig,
    env_notes: Vec<String>,
}

impl Engine {
    /// Starts a fluent build.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// The resolved plan-time [`EngineConfig`] this engine runs under —
    /// every knob after defaults, tuning record, explicit setters and
    /// `ECNN_*` overrides were folded together. This is the value a
    /// [`TuningRecord`] embeds verbatim.
    pub fn config(&self) -> &EngineConfig {
        &self.resolved
    }

    /// Machine (hardware) configuration — the modelled silicon, distinct
    /// from the plan-time [`Engine::config`].
    pub fn machine(&self) -> &EcnnConfig {
        &self.machine
    }

    /// The `ECNN_*` environment overrides observed at build time (one
    /// note per variable seen, applied or ignored); empty when the
    /// environment set none. Also surfaced in the
    /// [`FrameReport`] note.
    pub fn env_overrides(&self) -> &[String] {
        &self.env_notes
    }

    /// The workload this engine was built for.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The compiled program.
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// The build-time static-verification report (plane table, proven
    /// value ranges, surviving lints). `None` when the engine was built
    /// with [`VerifyMode::Off`].
    pub fn verify_report(&self) -> Option<&VerifyReport> {
        self.verify_report.as_ref()
    }

    /// The kernel selection every session/worker/shard of this engine
    /// executes with (see [`EngineBuilder::kernels`]).
    pub fn kernels(&self) -> Kernels {
        self.resolved.kernels
    }

    /// Whether sessions of this engine run the coalesced plane layout
    /// (see [`EngineBuilder::coalesce`]). `true` only states intent — a
    /// program without an error-free verification still falls back to
    /// the keyed layout at plan time.
    pub fn coalesced(&self) -> bool {
        self.resolved.coalesce
    }

    /// The resolved worker parallelism ([`EngineBuilder::workers`]):
    /// what [`Engine::run_image_auto`] and
    /// [`Engine::async_session_auto`] run at.
    pub fn workers(&self) -> usize {
        self.resolved.workers
    }

    /// The active fault-injection plan, when one is configured and
    /// non-empty (see [`crate::faults`]). `None` — the production case —
    /// means supervised dispatch skips injection entirely.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.resolved.faults.as_ref().filter(|p| !p.is_empty())
    }

    /// The static cost model of the compiled program: exact per-block
    /// MAC / traffic / instruction counts (proven equal to one block
    /// execution's observed [`ExecStats`] work counters), the keyed peak
    /// plane bytes, and — when verification licensed one — the coalesced
    /// [`ecnn_isa::verify::memplan::MemoryPlan`]. Computed on demand from
    /// the build-time verification report (re-verifying only when the
    /// engine was built with [`VerifyMode::Off`]); this is the autotuner's
    /// static ranking signal — no frame needs to run.
    pub fn cost_report(&self) -> CostReport {
        let fresh;
        let report = match &self.verify_report {
            Some(r) => r,
            None => {
                fresh = verify_compiled(&self.compiled);
                &fresh
            }
        };
        cost_model(&self.compiled.program, report)
    }

    /// The source model.
    pub fn model(&self) -> &Model {
        &self.workload.qm.model
    }

    /// The quantized model this engine was built from.
    pub fn quantized_model(&self) -> &QuantizedModel {
        &self.workload.qm
    }

    /// Opens a streaming session that reuses block/stitch buffers across
    /// frames — the hot path for multi-frame traffic.
    pub fn session(&self) -> Session<'_> {
        Session::new(self)
    }

    /// Opens a session executing on an explicit degradation rung —
    /// kernels and plane layout overridden per session, everything else
    /// (program, plan geometry, quantization) unchanged. This is how the
    /// supervisor's workers fall Simd → Packed → Reference and coalesced
    /// → keyed without rebuilding the engine; every rung is
    /// verifier-licensed and bit-identical.
    pub fn session_at(&self, rung: DegradeRung) -> Session<'_> {
        Session::new_with(self, rung.kernels, rung.coalesce)
    }

    /// Opens a pipelined session on `workers` long-lived worker threads:
    /// submitted frames are quantized, executed and stitched as
    /// overlapping band stages, and results come back through poll-based
    /// tickets. Output pixels are bit-identical to [`Session::run_frames`]
    /// at any worker count; see [`crate::pipe::AsyncSession`].
    pub fn async_session(&self, workers: usize) -> crate::pipe::AsyncSession {
        crate::pipe::AsyncSession::new(self, workers)
    }

    /// Opens a pipelined session sized by the engine's resolved worker
    /// count ([`EngineBuilder::workers`], a replayed tuning record, or
    /// `ECNN_WORKERS`) — [`Engine::async_session`] at
    /// [`Engine::workers`].
    pub fn async_session_auto(&self) -> crate::pipe::AsyncSession {
        self.async_session(self.resolved.workers)
    }

    /// Runs a single image through the block pipeline (partition →
    /// recompute → stitch) on the bit-exact simulator.
    ///
    /// One-shot convenience over [`Engine::session`]; streaming callers
    /// should hold a session to amortize buffer allocation.
    ///
    /// # Errors
    ///
    /// [`EngineError::Image`] for geometry mismatches; propagates
    /// simulator errors.
    pub fn run_image(
        &self,
        image: &Tensor<f32>,
    ) -> Result<(Tensor<f32>, ImageRunStats), EngineError> {
        let mut session = self.session();
        session.process(image)?;
        let stats = session.last_frame_stats();
        Ok((session.into_frame().expect("frame processed above"), stats))
    }

    /// Frame-level timing / traffic / power report at the workload's
    /// real-time spec.
    pub fn system_report(&self) -> SystemReport {
        self.system_report_at(self.workload.spec)
    }

    /// Frame-level timing / traffic / power report at an explicit spec.
    pub fn system_report_at(&self, spec: RealTimeSpec) -> SystemReport {
        let frame = simulate_frame(
            &self.compiled,
            &self.workload.qm.model,
            &self.machine,
            spec.width,
            spec.height,
        );
        let power = self.power.evaluate(&frame);
        // DRAM power at the *spec* rate (the processor idles once real-time
        // is met), split read/write by DI/DO shares.
        let target_fps = spec.fps.min(frame.fps);
        let rd = frame.di_bytes_per_frame as f64 * target_fps;
        let wr = frame.do_bytes_per_frame as f64 * target_fps;
        let dram_power = self.dram_power.power(rd, wr);
        let dram_config = DramConfig::minimal_for(rd + wr, 0.55);
        SystemReport {
            spec,
            frame,
            power,
            dram_power,
            dram_config,
            meets_realtime: false, // fixed below
        }
        .finalize()
    }

    /// Output frame dimensions `(out_h, out_w)` for `image`, derived
    /// integer-exactly from the model's rational output scale. This is
    /// the single source of truth every execution path (whole-frame,
    /// band, sharded, pipelined) stitches against: truncating the float
    /// product `dim * output_scale()` can land one pixel short of the
    /// block-grid geometry for non-power-of-two scale denominators.
    ///
    /// # Errors
    ///
    /// [`EngineError::Image`] for geometry mismatches; [`EngineError::Rows`]
    /// when the output would be empty (zero output rows or columns), so
    /// every downstream grid has at least one block row.
    pub fn out_dims(&self, image: &Tensor<f32>) -> Result<(usize, usize), EngineError> {
        let p = &self.compiled.program;
        if image.channels() != p.di_channels {
            return Err(EngineError::Image(ImageMismatch {
                width: image.width(),
                height: image.height(),
                channels: image.channels(),
                expected_channels: p.di_channels,
                block: p.di_side,
            }));
        }
        let (num, den) = self.workload.qm.model.output_scale_rational();
        let out_h = image.height() * num / den;
        let out_w = image.width() * num / den;
        if out_h == 0 || out_w == 0 {
            // A frame with no output blocks: structured error at entry
            // rather than a silent empty grid downstream.
            return Err(EngineError::Rows {
                start: 0,
                end: 0,
                available: 0,
            });
        }
        Ok((out_h, out_w))
    }

    /// Block-grid shape `(rows, cols)` of the output frame for `image` —
    /// the one derivation every partitioned path (sharded, pipelined)
    /// addresses blocks by, each at least 1 whenever [`Engine::out_dims`]
    /// accepts the image.
    ///
    /// # Errors
    ///
    /// [`EngineError::Image`] for geometry mismatches; [`EngineError::Rows`]
    /// for frames whose output grid would be empty.
    pub fn grid_dims(&self, image: &Tensor<f32>) -> Result<(usize, usize), EngineError> {
        let (out_h, out_w) = self.out_dims(image)?;
        let xo = self.compiled.program.do_side;
        Ok((out_h.div_ceil(xo), out_w.div_ceil(xo)))
    }

    /// Number of block rows in the frame grid for `image` — the unit the
    /// sharded backend partitions across workers (see
    /// [`Engine::grid_dims`]).
    ///
    /// # Errors
    ///
    /// As [`Engine::grid_dims`].
    pub fn grid_rows(&self, image: &Tensor<f32>) -> Result<usize, EngineError> {
        Ok(self.grid_dims(image)?.0)
    }

    /// The unified cross-backend view of [`Engine::system_report`].
    pub fn frame_report(&self) -> FrameReport {
        self.frame_report_at(self.workload.spec)
    }

    /// [`Engine::frame_report`] evaluated at an explicit real-time spec
    /// (the sharded backend reports each worker's band this way without
    /// rebuilding the engine).
    pub fn frame_report_at(&self, spec: RealTimeSpec) -> FrameReport {
        let sr = self.system_report_at(spec);
        let cost = self.cost_report();
        let (mem_bytes, mem_mode) = match (&cost.memory, self.resolved.coalesce) {
            (Some(m), true) => (m.peak_bytes, "coalesced"),
            _ => (cost.keyed_peak_bytes, "keyed"),
        };
        let env_note = if self.env_notes.is_empty() {
            String::new()
        } else {
            format!(", env [{}]", self.env_notes.join(", "))
        };
        let fault_note = match self.fault_plan() {
            Some(plan) => format!(", faults [{plan}]"),
            None => String::new(),
        };
        FrameReport {
            backend: "ecnn".into(),
            workload: self.workload.qm.model.name().to_string(),
            spec: sr.spec,
            fps: sr.frame.fps,
            meets_realtime: sr.meets_realtime,
            dram_bytes_per_frame: (sr.frame.di_bytes_per_frame + sr.frame.do_bytes_per_frame)
                as f64,
            dram_bps: sr.dram_bandwidth_bps(),
            feature_sram_bytes: self.machine.total_bb_bytes() as f64,
            power_w: Some(sr.power.total_w() + sr.dram_power.total_mw() / 1e3),
            tops: Some(sr.frame.achieved_tops),
            utilization: Some(sr.frame.lconv3_busy),
            note: format!(
                "block {}x{}, NBR {:.2}, NCR {:.2}, DRAM {}, kernels {}, planes {}KB {}{}{}",
                self.workload.block,
                self.workload.block,
                sr.frame.nbr,
                sr.frame.ncr,
                sr.dram_config.map_or("(none fits)", |c| c.name),
                self.resolved
                    .kernels
                    .variant(ecnn_sim::kernels::simd::detect())
                    .name(),
                mem_bytes.div_ceil(1024),
                mem_mode,
                fault_note,
                env_note,
            ),
        }
    }
}

/// Streaming multi-frame inference over one [`Engine`].
///
/// The session is the per-worker execution context of the plan/execute
/// split: it holds the engine's [`BlockPlan`] plus one [`PlanePool`], and
/// all working buffers — the receptive-field crop, its quantized codes,
/// the dequantized output block, the stitched frame and the pooled planes
/// — are allocated once and reused across blocks *and* frames, so
/// steady-state streaming performs zero per-block allocations (observable
/// via [`ExecStats::planes_allocated`]).
pub struct Session<'e> {
    engine: &'e Engine,
    /// The engine program's execution plan (shape/lifetime of every plane).
    plan: BlockPlan<'e>,
    /// This worker's plane arena.
    pool: PlanePool,
    /// Receptive-field crop scratch, `di_channels × xi × xi`.
    block_f: Tensor<f32>,
    /// Quantized input codes scratch, same shape.
    codes: Tensor<i16>,
    /// Dequantized output block scratch, `do_channels × xo × xo`.
    block_out: Tensor<f32>,
    /// Stitched output frame (allocated on the first frame, resized only
    /// when the input geometry changes).
    frame: Option<Tensor<f32>>,
    frames: usize,
    frame_reallocs: usize,
    /// Row-major grid index of the most recently started block.
    last_block: Option<usize>,
    last_stats: ImageRunStats,
    totals: ImageRunStats,
    /// Kernel selection inherited from the engine at session open.
    kernels: Kernels,
}

impl<'e> Session<'e> {
    fn new(engine: &'e Engine) -> Self {
        Self::new_with(engine, engine.resolved.kernels, engine.resolved.coalesce)
    }

    fn new_with(engine: &'e Engine, kernels: Kernels, coalesce: bool) -> Self {
        let p = &engine.compiled.program;
        let mut plan = BlockPlan::new(&engine.compiled.program, &engine.compiled.leafs)
            .expect("engine build validated the plan");
        if !coalesce {
            plan.force_keyed();
        }
        Self {
            engine,
            plan,
            pool: PlanePool::new(),
            block_f: Tensor::zeros(p.di_channels, p.di_side, p.di_side),
            codes: Tensor::zeros(p.di_channels, p.di_side, p.di_side),
            block_out: Tensor::zeros(p.do_channels, p.do_side, p.do_side),
            frame: None,
            frames: 0,
            frame_reallocs: 0,
            last_block: None,
            last_stats: ImageRunStats::default(),
            totals: ImageRunStats::default(),
            kernels,
        }
    }

    /// The engine this session streams on.
    pub fn engine(&self) -> &Engine {
        self.engine
    }

    /// The kernel selection this session executes with (inherited from
    /// [`Engine::kernels`] at open).
    pub fn kernels(&self) -> Kernels {
        self.kernels
    }

    /// Processes one frame; the returned reference points at the
    /// session-owned stitched frame, valid until the next call.
    ///
    /// # Errors
    ///
    /// [`EngineError::Image`] for geometry mismatches; propagates
    /// simulator errors.
    pub fn process(&mut self, image: &Tensor<f32>) -> Result<&Tensor<f32>, EngineError> {
        let rows = self.grid_rows(image)?;
        self.process_rows(image, 0..rows)
    }

    /// Drains a queue of frames through the session, returning one
    /// stitched output per frame. The batched entry point for
    /// serving-style callers: every frame reuses the session's pooled
    /// buffers, only the returned copies allocate.
    ///
    /// # Errors
    ///
    /// Stops at the first failing frame (outputs of earlier frames are
    /// dropped); see [`Session::process`].
    pub fn run_frames<'a, I>(&mut self, frames: I) -> Result<Vec<Tensor<f32>>, EngineError>
    where
        I: IntoIterator<Item = &'a Tensor<f32>>,
    {
        frames
            .into_iter()
            .map(|f| self.process(f).cloned())
            .collect()
    }

    /// Number of block rows in the frame grid for `image` (see
    /// [`Engine::grid_rows`]).
    ///
    /// # Errors
    ///
    /// [`EngineError::Image`] for geometry mismatches.
    pub fn grid_rows(&self, image: &Tensor<f32>) -> Result<usize, EngineError> {
        self.engine.grid_rows(image)
    }

    /// Processes only the block rows `rows` of `image`'s grid, stitching
    /// them into a band-sized frame — the building block the sharded
    /// backend hands to each worker. Blocks are addressed in the *global*
    /// grid, so a band's pixels are bit-identical to the same rows of a
    /// whole-frame [`Session::process`].
    ///
    /// # Errors
    ///
    /// [`EngineError::Image`] for geometry mismatches, [`EngineError::Rows`]
    /// for an empty or out-of-grid row range; propagates simulator errors
    /// ([`Session::last_block_started`] then names the failing block).
    pub fn process_rows(
        &mut self,
        image: &Tensor<f32>,
        rows: std::ops::Range<usize>,
    ) -> Result<&Tensor<f32>, EngineError> {
        // Cleared up front so a failure before the first block does not
        // leave a previous frame's index in `last_block_started`.
        self.last_block = None;
        let (out_h, out_w) = self.engine.out_dims(image)?;
        let (total_rows, cols) = self.engine.grid_dims(image)?;
        let p = &self.engine.compiled.program;
        let scale = self.engine.workload.qm.model.output_scale();
        let xo = p.do_side;
        let xi = p.di_side;
        if rows.is_empty() || rows.end > total_rows {
            return Err(EngineError::Rows {
                start: rows.start,
                end: rows.end,
                available: total_rows,
            });
        }
        let band_top = rows.start * xo;
        let band_h = (rows.end * xo).min(out_h) - band_top;
        match &self.frame {
            Some(f) if f.shape() == (p.do_channels, band_h, out_w) => {}
            Some(_) => {
                self.frame_reallocs += 1;
                self.frame = Some(Tensor::zeros(p.do_channels, band_h, out_w));
            }
            None => self.frame = Some(Tensor::zeros(p.do_channels, band_h, out_w)),
        }
        let frame = self.frame.as_mut().expect("frame allocated above");
        // Border of the receptive field, in input-image pixels.
        let border = (xi as f64 - xo as f64 / scale) / 2.0;
        // Snapshot the pool counters at frame start (not carried over from
        // the previous frame) so a frame aborted by an executor error
        // cannot leak its partial work into the next frame's delta.
        let mark = self.pool.stats();
        let mut blocks = 0usize;
        for row in rows {
            // rows.end <= ceil(out_h / xo), so by < out_h always holds.
            let by = row * xo;
            let mut bx = 0usize;
            while bx < out_w {
                self.last_block = Some(row * cols + bx / xo);
                // Input-block origin for this output block.
                let iy = (by as f64 / scale - border).round() as isize;
                let ix = (bx as f64 / scale - border).round() as isize;
                image.crop_padded_into(iy, ix, &mut self.block_f);
                self.block_f
                    .map_into(&mut self.codes, |v| p.di_q.quantize(v));
                let out_codes =
                    execute_with(&self.plan, &mut self.pool, &self.codes, self.kernels)?;
                blocks += 1;
                out_codes.map_into(&mut self.block_out, |c| {
                    p.do_q.dequantize(c).clamp(0.0, 1.0)
                });
                frame.paste(&self.block_out, by - band_top, bx);
                bx += xo;
            }
        }
        let delta = self.pool.stats().delta_since(&mark);
        self.last_stats = ImageRunStats::default();
        self.last_stats.absorb(delta, blocks);
        self.totals.absorb(delta, blocks);
        self.frames += 1;
        Ok(self.frame.as_ref().expect("frame allocated above"))
    }

    /// Frames processed so far.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Row-major grid index of the most recently started block — names
    /// the failing block when [`Session::process_rows`] errors.
    pub fn last_block_started(&self) -> Option<usize> {
        self.last_block
    }

    /// Counters of this session's plane pool (cumulative over the whole
    /// session; per-frame deltas are in [`Session::last_frame_stats`]).
    pub fn pool_stats(&self) -> ExecStats {
        self.pool.stats()
    }

    /// Statistics of the most recent frame.
    pub fn last_frame_stats(&self) -> ImageRunStats {
        self.last_stats
    }

    /// Statistics accumulated over every frame of the session.
    pub fn total_stats(&self) -> ImageRunStats {
        self.totals
    }

    /// How often the stitched-frame buffer had to be reallocated after the
    /// first frame (i.e. geometry changes mid-stream). Zero for a steady
    /// stream.
    pub fn frame_reallocs(&self) -> usize {
        self.frame_reallocs
    }

    /// The stitched output of the most recent [`Session::process`] /
    /// [`Session::process_rows`] call (`None` before the first frame) —
    /// lets long-lived workers hand the band onward without cloning it
    /// or consuming the session.
    pub fn last_frame(&self) -> Option<&Tensor<f32>> {
        self.frame.as_ref()
    }

    /// Consumes the session, returning the stitched frame buffer
    /// (`None` before the first [`Session::process`]).
    pub fn into_frame(self) -> Option<Tensor<f32>> {
        self.frame
    }

    /// Raw base addresses of the reused scratch buffers (crop, codes,
    /// output block, frame) — lets tests assert that streaming does not
    /// reallocate between frames.
    #[doc(hidden)]
    pub fn scratch_ptrs(&self) -> (*const f32, *const i16, *const f32, *const f32) {
        (
            self.block_f.as_slice().as_ptr(),
            self.codes.as_slice().as_ptr(),
            self.block_out.as_slice().as_ptr(),
            self.frame
                .as_ref()
                .map_or(std::ptr::null(), |f| f.as_slice().as_ptr()),
        )
    }
}

/// The eCNN simulator as a [`Backend`].
#[derive(Clone, Debug)]
pub struct EcnnBackend {
    config: EcnnConfig,
    power: PowerModel,
    dram_power: DramPowerModel,
    kernels: Option<Kernels>,
    coalesce: Option<bool>,
}

impl EcnnBackend {
    /// The paper's configuration (Table 2 + Table 6 calibration).
    pub fn paper() -> Self {
        Self {
            config: EcnnConfig::paper(),
            power: PowerModel::paper_40nm(),
            dram_power: DramPowerModel::DDR4_3200,
            kernels: None,
            coalesce: None,
        }
    }

    /// Pins the kernel family for every engine this backend builds, so
    /// sharded and pipelined paths that construct sessions internally
    /// (e.g. [`ShardedBackend`](crate::sharded::ShardedBackend)) honor
    /// the choice. Unset, engines follow the usual resolution
    /// (`ECNN_KERNELS` env override, else SIMD dispatch).
    #[must_use]
    pub fn with_kernels(mut self, kernels: Kernels) -> Self {
        self.kernels = Some(kernels);
        self
    }

    /// Pins the plane-layout choice (see [`EngineBuilder::coalesce`]) for
    /// every engine this backend builds, so sharded and pipelined paths
    /// that construct sessions internally honor it. Unset, engines take
    /// the default: the verifier-licensed coalesced layout.
    #[must_use]
    pub fn with_coalesce(mut self, on: bool) -> Self {
        self.coalesce = Some(on);
        self
    }

    /// Builds the engine for `workload` on this machine.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors.
    pub fn engine(&self, workload: &Workload) -> Result<Engine, EngineError> {
        let mut b = Engine::builder()
            .quantized(workload.qm.clone())
            .block(workload.block)
            .realtime(workload.spec)
            .feature_bits(workload.feature_bits)
            .machine(self.config)
            .power(self.power)
            .dram_power(self.dram_power);
        if let Some(k) = self.kernels {
            b = b.kernels(k);
        }
        if let Some(on) = self.coalesce {
            b = b.coalesce(on);
        }
        b.build()
    }
}

impl Default for EcnnBackend {
    fn default() -> Self {
        Self::paper()
    }
}

impl Backend for EcnnBackend {
    fn name(&self) -> &str {
        "ecnn"
    }

    fn frame_report(&self, workload: &Workload) -> Result<FrameReport, EngineError> {
        Ok(self.engine(workload)?.frame_report())
    }

    fn supports_run_image(&self) -> bool {
        true
    }

    fn run_image(
        &self,
        workload: &Workload,
        image: &Tensor<f32>,
    ) -> Result<(Tensor<f32>, ImageRunStats), EngineError> {
        self.engine(workload)?.run_image(image)
    }

    fn block_parallel(&self) -> Option<&dyn crate::sharded::BlockParallel> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnn_model::ernet::ErNetTask;
    use ecnn_tensor::{ImageKind, SyntheticImage};

    fn engine(task: ErNetTask, b: usize, xi: usize) -> Engine {
        Engine::builder()
            .ernet(ErNetSpec::new(task, b, 1, 0))
            .block(xi)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_model_and_block() {
        assert_eq!(
            Engine::builder().block(64).build().unwrap_err(),
            EngineError::Missing("model")
        );
        assert_eq!(
            Engine::builder()
                .ernet(ErNetSpec::new(ErNetTask::Dn, 1, 1, 0))
                .build()
                .unwrap_err(),
            EngineError::Missing("block size")
        );
    }

    #[test]
    fn error_chain_has_sources() {
        // Pyramid collapse: block smaller than the receptive field.
        let err = Engine::builder()
            .ernet(ErNetSpec::new(ErNetTask::Dn, 20, 1, 0))
            .block(8)
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::Compile(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn session_streams_frames_without_reallocating() {
        let eng = engine(ErNetTask::Dn, 1, 40);
        let mut session = eng.session();
        let a = SyntheticImage::new(ImageKind::Mixed, 1).rgb(56, 56);
        let b = SyntheticImage::new(ImageKind::Edges, 2).rgb(56, 56);
        session.process(&a).unwrap();
        let ptrs = session.scratch_ptrs();
        for img in [&b, &a, &b] {
            session.process(img).unwrap();
            assert_eq!(session.scratch_ptrs(), ptrs, "buffers must be reused");
        }
        assert_eq!(session.frames(), 4);
        assert_eq!(session.frame_reallocs(), 0);
        assert!(session.total_stats().blocks > session.last_frame_stats().blocks);
    }

    #[test]
    fn session_matches_one_shot_run_image() {
        let eng = engine(ErNetTask::Dn, 2, 40);
        let img = SyntheticImage::new(ImageKind::Texture, 7).rgb(56, 56);
        let (one_shot, stats) = eng.run_image(&img).unwrap();
        let mut session = eng.session();
        // A different frame first, then the probe: reuse must not leak
        // state across frames.
        let other = SyntheticImage::new(ImageKind::Smooth, 3).rgb(56, 56);
        session.process(&other).unwrap();
        let streamed = session.process(&img).unwrap();
        assert_eq!(streamed, &one_shot);
        let last = session.last_frame_stats();
        assert_eq!(last.blocks, stats.blocks);
        // The work counters match; the pool counters differ by design: the
        // warm session recycles every plane where the one-shot path had to
        // populate a cold arena.
        assert_eq!(last.exec.work(), stats.exec.work());
        assert_eq!(
            last.exec.planes_allocated, 0,
            "warm frames allocate nothing"
        );
        assert!(last.exec.planes_reused > 0);
    }

    #[test]
    fn image_mismatch_is_structured() {
        let eng = engine(ErNetTask::Dn, 1, 32);
        let gray = Tensor::<f32>::zeros(1, 32, 32);
        match eng.run_image(&gray) {
            Err(EngineError::Image(m)) => {
                assert_eq!(m.channels, 1);
                assert_eq!(m.expected_channels, 3);
                assert_eq!(m.block, 32);
            }
            other => panic!("expected image mismatch, got {other:?}"),
        }
    }

    #[test]
    fn ecnn_backend_reports_and_runs() {
        let w = Workload::ernet(
            ErNetSpec::new(ErNetTask::Dn, 3, 1, 0),
            128,
            RealTimeSpec::UHD30,
        )
        .unwrap();
        let be = EcnnBackend::paper();
        assert!(be.supports_run_image());
        let r = be.frame_report(&w).unwrap();
        assert_eq!(r.backend, "ecnn");
        assert!(r.meets_realtime, "fps {}", r.fps);
        assert!(r.power_w.unwrap() > 5.0);
    }
}
