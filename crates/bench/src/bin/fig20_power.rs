//! Fig. 20: power per model (left) and per circuit type (right).

use ecnn_bench::{model_matrix, report_row, section};

fn main() {
    section("Fig. 20 (left): power per (model, spec)");
    println!(
        "{:<24} {:>6} {:>8} {:>8} {:>8} {:>8}",
        "model", "spec", "total W", "3x3 W", "1x1 W", "SRAM W"
    );
    let mut total = 0.0;
    let mut n = 0;
    for (rt, spec, xi) in model_matrix() {
        let r = report_row(spec, xi, rt);
        println!(
            "{:<24} {:>6} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            spec.name(),
            rt.name,
            r.power.total_w(),
            r.power.lconv3_w,
            r.power.lconv1_w,
            r.power.sram_w
        );
        total += r.power.total_w();
        n += 1;
    }
    println!("average: {:.2} W (paper: 6.94 W)", total / n as f64);

    section("Fig. 20 (right): circuit-type breakdown");
    for (rt, spec, xi) in model_matrix().into_iter().take(3) {
        let r = report_row(spec, xi, rt);
        let (comb, seq, sram) = r.power.circuit_fractions();
        println!(
            "{:<24} comb {:>5.1}%  seq {:>5.1}%  SRAM {:>4.1}%",
            spec.name(),
            comb * 100.0,
            seq * 100.0,
            sram * 100.0
        );
    }
    println!("(paper: combinational 82-87%, sequential ~10%, SRAM 3-7%)");
}
