//! The canonical plan-time configuration surface: one serializable
//! [`EngineConfig`] holding every knob the paper tuned by hand.
//!
//! Before this module the knobs were scattered — block size on the
//! builder, kernel family on `EngineBuilder::kernels` /
//! `EcnnBackend::with_kernels` / the `ECNN_KERNELS` env var, plane
//! layout on `coalesce`, worker counts as ad-hoc per-call arguments.
//! [`EngineConfig`] consolidates them into a single value that
//!
//! * the [`EngineBuilder`](crate::engine::EngineBuilder) setters are thin
//!   sugar over (and [`Engine::config`](crate::engine::Engine::config)
//!   returns resolved),
//! * the plan-time autotuner ([`crate::tune`]) searches over and embeds
//!   verbatim in its [`TuningRecord`](crate::tune::TuningRecord),
//! * the documented `ECNN_*` environment namespace overrides in exactly
//!   one place ([`EngineConfig::from_env_overrides`]).
//!
//! # Environment overrides
//!
//! A deployed binary can be steered onto a known-good path without a
//! rebuild through the `ECNN_*` namespace, parsed once at
//! [`EngineBuilder::build`](crate::engine::EngineBuilder::build):
//!
//! | variable        | values                          | overrides            |
//! |-----------------|---------------------------------|----------------------|
//! | `ECNN_KERNELS`  | `simd` \| `packed` \| `reference` | [`EngineConfig::kernels`]  |
//! | `ECNN_COALESCE` | `1`/`true` \| `0`/`false`       | [`EngineConfig::coalesce`] |
//! | `ECNN_WORKERS`  | positive integer                | [`EngineConfig::workers`]  |
//! | `ECNN_VERIFY`   | `off` \| `lints` \| `strict`    | [`EngineConfig::verify`]   |
//! | `ECNN_FAULTS`   | [fault-plan grammar](crate::faults) \| `off` | [`EngineConfig::faults`] |
//!
//! Values are case-insensitive; invalid values are ignored (never
//! fatal) but recorded, and every applied or ignored override is
//! surfaced in the engine's `FrameReport` note so an overridden fleet
//! is observable.

use crate::faults::FaultPlan;
use crate::json::{escape, Json};
use ecnn_isa::verify::VerifyMode;
use ecnn_sim::Kernels;
use std::fmt;

/// Every plan-time knob of an eCNN engine, in one serializable value.
///
/// `PartialEq`/`Eq` make resolved configs directly comparable (the
/// tuning-record round-trip test relies on it); the JSON form is
/// deterministic and stable across releases.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Input block side (`xi`) the program is compiled for.
    pub block: usize,
    /// Worker parallelism sessions of this engine are meant to run at:
    /// the shard count of `Engine::run_image_auto` and the pool size of
    /// `Engine::async_session_auto`. `1` means serial; must be nonzero.
    pub workers: usize,
    /// Accumulation kernel family every execution path runs.
    pub kernels: Kernels,
    /// Whether sessions run the verifier-licensed coalesced plane
    /// layout. Incoherent with [`VerifyMode::Off`] (no license without a
    /// verification): explicitly asking for both is a build error.
    pub coalesce: bool,
    /// Static-verification mode run at build time.
    pub verify: VerifyMode,
    /// Deterministic fault-injection plan the supervision layer runs
    /// under (see [`crate::faults`]). `None` — the default, and what
    /// every production config should carry — injects nothing and is
    /// skipped entirely on the dispatch path.
    pub faults: Option<FaultPlan>,
}

impl EngineConfig {
    /// The default configuration at a given block size: serial, SIMD
    /// kernels, coalesced layout, lint-level verification — exactly what
    /// an un-tuned `Engine::builder().block(xi)` resolves to.
    pub fn new(block: usize) -> Self {
        Self {
            block,
            workers: 1,
            kernels: Kernels::Simd,
            coalesce: true,
            verify: VerifyMode::default(),
            faults: None,
        }
    }

    /// Deterministic single-line JSON encoding, stable key order. The
    /// `faults` key is emitted only when a plan is set, so records
    /// written before fault injection existed stay byte-identical.
    pub fn to_json(&self) -> String {
        let faults = match &self.faults {
            Some(plan) => format!(", \"faults\": {}", escape(&plan.to_string())),
            None => String::new(),
        };
        format!(
            "{{\"block\": {}, \"workers\": {}, \"kernels\": {}, \"coalesce\": {}, \"verify\": {}{}}}",
            self.block,
            self.workers,
            escape(self.kernels.as_str()),
            self.coalesce,
            escape(self.verify.as_str()),
            faults,
        )
    }

    /// Parses the [`EngineConfig::to_json`] encoding.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        Self::from_json_value(&Json::parse(text)?)
    }

    pub(crate) fn from_json_value(v: &Json) -> Result<Self, String> {
        let block = v.require("block")?.as_usize()?;
        let kernels = v.require("kernels")?.as_str()?;
        let verify = v.require("verify")?.as_str()?;
        Ok(Self {
            block,
            workers: v.require("workers")?.as_usize()?,
            kernels: Kernels::parse(kernels)
                .ok_or_else(|| format!("unknown kernels {kernels:?}"))?,
            coalesce: v.require("coalesce")?.as_bool()?,
            verify: VerifyMode::parse(verify)
                .ok_or_else(|| format!("unknown verify mode {verify:?}"))?,
            faults: match v.get("faults") {
                Some(j) => Some(FaultPlan::parse(j.as_str()?).map_err(|e| format!("faults: {e}"))?),
                None => None,
            },
        })
    }

    /// Reads the unified `ECNN_*` override namespace from the process
    /// environment — the single place these variables are parsed (see
    /// the [module docs](self) for the table).
    pub fn from_env_overrides() -> EnvOverrides {
        EnvOverrides::parse(
            [
                "ECNN_KERNELS",
                "ECNN_COALESCE",
                "ECNN_WORKERS",
                "ECNN_VERIFY",
                "ECNN_FAULTS",
            ]
            .into_iter()
            .filter_map(|name| std::env::var(name).ok().map(|v| (name, v))),
        )
    }
}

impl fmt::Display for EngineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block {} workers {} kernels {} {} verify {}",
            self.block,
            self.workers,
            self.kernels.as_str(),
            if self.coalesce { "coalesced" } else { "keyed" },
            self.verify.as_str(),
        )?;
        if let Some(plan) = self.faults.as_ref().filter(|p| !p.is_empty()) {
            write!(f, " faults[{plan}]")?;
        }
        Ok(())
    }
}

/// The parsed `ECNN_*` environment overrides: which knobs were set, and
/// a note per variable seen (applied or ignored) for report surfacing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EnvOverrides {
    /// `ECNN_KERNELS`, when set to a valid kernel name.
    pub kernels: Option<Kernels>,
    /// `ECNN_COALESCE`, when set to a valid boolean.
    pub coalesce: Option<bool>,
    /// `ECNN_WORKERS`, when set to a positive integer.
    pub workers: Option<usize>,
    /// `ECNN_VERIFY`, when set to a valid mode name.
    pub verify: Option<VerifyMode>,
    /// `ECNN_FAULTS`, when set to a valid fault-plan string. `off` /
    /// `none` / the empty string parse to `Some(empty plan)`, which
    /// *overrides* (clears) a plan configured elsewhere — the ops
    /// kill switch for a fault-injection canary.
    pub faults: Option<FaultPlan>,
    /// One human-readable note per `ECNN_*` variable observed, e.g.
    /// `"ECNN_KERNELS=packed"` or `"ECNN_WORKERS=zero ignored (invalid)"`.
    pub notes: Vec<String>,
}

impl EnvOverrides {
    /// Parses `(name, value)` pairs from the `ECNN_*` namespace. Pure —
    /// [`EngineConfig::from_env_overrides`] feeds it the real
    /// environment; tests feed it literals. Unknown names and invalid
    /// values are never fatal: they are recorded in
    /// [`EnvOverrides::notes`] and otherwise ignored, preserving the
    /// historical `ECNN_KERNELS` tolerance.
    pub fn parse<'a, I>(vars: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, String)>,
    {
        let mut o = Self::default();
        for (name, value) in vars {
            let applied = match name {
                "ECNN_KERNELS" => {
                    o.kernels = Kernels::parse(&value);
                    o.kernels.is_some()
                }
                "ECNN_COALESCE" => {
                    o.coalesce = parse_bool(&value);
                    o.coalesce.is_some()
                }
                "ECNN_WORKERS" => {
                    o.workers = value.parse::<usize>().ok().filter(|&n| n > 0);
                    o.workers.is_some()
                }
                "ECNN_VERIFY" => {
                    o.verify = VerifyMode::parse(&value);
                    o.verify.is_some()
                }
                "ECNN_FAULTS" => {
                    o.faults = FaultPlan::parse(&value).ok();
                    o.faults.is_some()
                }
                _ => false,
            };
            if applied {
                o.notes
                    .push(format!("{name}={}", value.to_ascii_lowercase()));
            } else {
                o.notes.push(format!("{name}={value} ignored (invalid)"));
            }
        }
        o
    }

    /// Whether any override knob is set.
    pub fn any(&self) -> bool {
        self.kernels.is_some()
            || self.coalesce.is_some()
            || self.workers.is_some()
            || self.verify.is_some()
            || self.faults.is_some()
    }

    /// Applies the set knobs onto `cfg` (env beats everything else —
    /// the ops escape hatch).
    pub fn apply(&self, cfg: &mut EngineConfig) {
        if let Some(k) = self.kernels {
            cfg.kernels = k;
        }
        if let Some(c) = self.coalesce {
            cfg.coalesce = c;
        }
        if let Some(w) = self.workers {
            cfg.workers = w;
        }
        if let Some(v) = self.verify {
            cfg.verify = v;
        }
        if let Some(p) = &self.faults {
            // An explicitly empty plan ("ECNN_FAULTS=off") clears a plan
            // configured elsewhere; Engine::fault_plan treats it as none.
            cfg.faults = Some(p.clone());
        }
    }
}

fn parse_bool(value: &str) -> Option<bool> {
    match value.to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_json_round_trips() {
        let cfg = EngineConfig {
            block: 128,
            workers: 4,
            kernels: Kernels::Packed,
            coalesce: false,
            verify: VerifyMode::Strict,
            faults: None,
        };
        let json = cfg.to_json();
        assert!(
            !json.contains("faults"),
            "no faults key without a plan (pre-existing records must stay parseable)"
        );
        assert_eq!(EngineConfig::from_json(&json).unwrap(), cfg);
        // Default shape too.
        let d = EngineConfig::new(64);
        assert_eq!(EngineConfig::from_json(&d.to_json()).unwrap(), d);
        // With a plan, the key round-trips through the plan grammar.
        let mut with_plan = EngineConfig::new(64);
        with_plan.faults = Some(FaultPlan::parse("seed=9;panic@250").unwrap());
        let json = with_plan.to_json();
        assert!(json.contains("\"faults\": \"seed=9;panic@250\""));
        assert_eq!(EngineConfig::from_json(&json).unwrap(), with_plan);
        assert!(with_plan.to_string().contains("faults[seed=9;panic@250]"));
    }

    #[test]
    fn config_json_rejects_unknown_tokens() {
        let bad = "{\"block\": 64, \"workers\": 1, \"kernels\": \"cuda\", \
                   \"coalesce\": true, \"verify\": \"lints\"}";
        assert!(EngineConfig::from_json(bad).unwrap_err().contains("cuda"));
        assert!(EngineConfig::from_json("{}").unwrap_err().contains("block"));
        let bad_plan = "{\"block\": 64, \"workers\": 1, \"kernels\": \"simd\", \
                        \"coalesce\": true, \"verify\": \"lints\", \"faults\": \"explode@1\"}";
        assert!(EngineConfig::from_json(bad_plan)
            .unwrap_err()
            .contains("faults"));
    }

    #[test]
    fn env_overrides_parse_the_unified_namespace() {
        let o = EnvOverrides::parse([
            ("ECNN_KERNELS", "Reference".to_string()),
            ("ECNN_COALESCE", "0".to_string()),
            ("ECNN_WORKERS", "4".to_string()),
            ("ECNN_VERIFY", "strict".to_string()),
            ("ECNN_FAULTS", "seed=5;delay@100:ms=3".to_string()),
        ]);
        assert_eq!(o.kernels, Some(Kernels::Reference));
        assert_eq!(o.coalesce, Some(false));
        assert_eq!(o.workers, Some(4));
        assert_eq!(o.verify, Some(VerifyMode::Strict));
        assert_eq!(
            o.faults,
            Some(FaultPlan::parse("seed=5;delay@100:ms=3").unwrap())
        );
        assert!(o.any());
        assert_eq!(o.notes.len(), 5);

        let mut cfg = EngineConfig::new(128);
        o.apply(&mut cfg);
        assert_eq!(cfg.kernels, Kernels::Reference);
        assert!(!cfg.coalesce);
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.verify, VerifyMode::Strict);
        assert!(cfg.faults.is_some());
    }

    #[test]
    fn env_overrides_tolerate_invalid_values() {
        let o = EnvOverrides::parse([
            ("ECNN_KERNELS", "cuda".to_string()),
            ("ECNN_WORKERS", "0".to_string()),
            ("ECNN_VERIFY", "paranoid".to_string()),
            ("ECNN_FAULTS", "explode@10".to_string()),
        ]);
        assert!(!o.any());
        assert_eq!(o.notes.len(), 4);
        assert!(o.notes.iter().all(|n| n.contains("ignored")));
        let mut cfg = EngineConfig::new(128);
        let before = cfg.clone();
        o.apply(&mut cfg);
        assert_eq!(cfg, before, "invalid overrides must not change anything");
    }

    #[test]
    fn env_faults_off_clears_a_configured_plan() {
        let o = EnvOverrides::parse([("ECNN_FAULTS", "off".to_string())]);
        assert!(o.any(), "an explicit off is an override, not a no-op");
        let mut cfg = EngineConfig::new(128);
        cfg.faults = Some(FaultPlan::parse("seed=1;panic@1000").unwrap());
        o.apply(&mut cfg);
        assert_eq!(
            cfg.faults.as_ref().map(FaultPlan::is_empty),
            Some(true),
            "off must clear the plan"
        );
    }
}
