//! Table 3: ERNet training settings — the paper's GPU-scale stages and this
//! reproduction's CPU-scale equivalents.

use ecnn_bench::{bench_scale, section};
use ecnn_nn::schedule::{paper_stages, repro_stages};

fn main() {
    section("Table 3: training settings");
    println!("paper (GPU, DIV2K/Waterloo):");
    for s in paper_stages() {
        println!(
            "  {:<26} patch {:>3}  batch {:>3}  steps {:>7}  lr {:.0e}",
            s.name, s.patch, s.batch, s.steps, s.lr
        );
    }
    println!(
        "\nthis reproduction (CPU, synthetic textures, scale={}):",
        bench_scale()
    );
    for s in repro_stages(bench_scale()) {
        println!(
            "  {:<26} patch {:>3}  batch {:>3}  steps {:>7}  lr {:.0e}",
            s.name, s.patch, s.batch, s.steps, s.lr
        );
    }
}
