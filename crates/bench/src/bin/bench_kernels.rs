//! Kernel perf trajectory: times the eSR-4K single-frame path on every
//! kernel variant — the runtime-dispatched SIMD path (narrow-licensed and
//! forced-wide), the packed flat-slice path and the kept scalar reference
//! — over the same plan, codes and run, and writes `BENCH_kernels.json`
//! with median ns/frame and MAC/s per variant, so later PRs can compare
//! against a recorded baseline.
//!
//! A "frame" here is one full eSR-4K block execution: the engine's
//! UHD30 pick (ERNet SR4, B=17, R=3, N=1) at its 128-pixel input block —
//! the exact workload `Session::process` runs per block on a 4K stream.
//!
//! Flags:
//!
//! * `--reps N` — timed repetitions per variant (default 7 fast / 3
//!   reference; `ECNN_BENCH_REPS` kept as a fallback).
//! * `--variant simd|simd-wide|packed|reference` — run only the named
//!   variant (repeatable; default all).
//! * `--json PATH` — output path (default `BENCH_kernels.json`).

use ecnn_isa::compile::compile;
use ecnn_isa::params::QuantizedModel;
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_sim::exec::{execute_with, quantize_input, BlockPlan, Kernels, PlanePool};
use ecnn_tensor::{ImageKind, SyntheticImage};
use std::time::Instant;

fn median(mut ns: Vec<u128>) -> u128 {
    ns.sort_unstable();
    ns[ns.len() / 2]
}

fn env_reps(default: usize) -> usize {
    std::env::var("ECNN_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

/// CPU features relevant to the dispatch ladder, as detected at runtime.
fn cpu_features() -> Vec<&'static str> {
    let mut f = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            f.push("avx2");
        }
        if is_x86_feature_detected!("sse2") {
            f.push("sse2");
        }
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        f.push("neon");
    }
    f
}

struct Measured {
    name: &'static str,
    median_ns: u128,
    mac_per_s: f64,
    reps: usize,
    narrow_instrs: u64,
    variant_tag: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_kernels [--reps N] [--variant simd|simd-wide|packed|reference]... \
         [--json PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut reps_override: Option<usize> = None;
    let mut only: Vec<String> = Vec::new();
    let mut json_path = String::from("BENCH_kernels.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reps" => {
                reps_override = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&r| r >= 1)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--variant" => only.push(
                args.next()
                    .map(|v| v.to_ascii_lowercase())
                    .unwrap_or_else(|| usage()),
            ),
            "--json" => json_path = args.next().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }
    for v in &only {
        if !matches!(v.as_str(), "simd" | "simd-wide" | "packed" | "reference") {
            eprintln!("unknown variant: {v}");
            usage();
        }
    }

    let spec = ErNetSpec::new(ErNetTask::Sr4, 17, 3, 1);
    let xi = 128usize;
    let m = spec.build().expect("paper model builds");
    let qm = QuantizedModel::uniform(&m);
    let compiled = compile(&qm, xi).expect("paper model compiles");
    let plan = BlockPlan::new(&compiled.program, &compiled.leafs).expect("plan");
    let mut wide_plan = plan.clone();
    wide_plan.force_wide();
    let img = SyntheticImage::new(ImageKind::Mixed, 9).rgb(xi, xi);
    let codes = quantize_input(&img, &compiled.program);

    ecnn_bench::section(&format!("kernel bench: {spec} block {xi}"));
    let features = cpu_features();
    println!(
        "packed parameter cache: {} KiB  simd level: {}  cpu features: [{}]  \
         narrow-licensed instrs: {}/{}",
        plan.packed_bytes() / 1024,
        plan.simd_level(),
        features.join(", "),
        plan.narrow_licensed(),
        compiled.program.instructions.len(),
    );

    let variants: [(&'static str, &BlockPlan<'_>, Kernels, usize); 4] = [
        ("simd", &plan, Kernels::Simd, env_reps(7)),
        ("simd-wide", &wide_plan, Kernels::Simd, env_reps(7)),
        ("packed", &plan, Kernels::Packed, env_reps(7)),
        ("reference", &plan, Kernels::Reference, env_reps(3)),
    ];
    let mut results: Vec<Measured> = Vec::new();
    let mut macs_per_frame = 0u64;
    let mut steady_allocs = u64::MAX;
    let mut params_reused = 0u64;
    for (name, vplan, kind, default_reps) in variants {
        if !only.is_empty() && !only.iter().any(|v| v == name) {
            continue;
        }
        let reps = reps_override.unwrap_or(default_reps);
        let mut pool = PlanePool::new();
        // Warm-up: grows the arena to its peak so timed frames are
        // steady-state.
        execute_with(vplan, &mut pool, &codes, kind).expect("warm-up");
        let warm = pool.stats();
        let mut ns = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t0 = Instant::now();
            let out = execute_with(vplan, &mut pool, &codes, kind).expect("frame");
            ns.push(t0.elapsed().as_nanos());
            std::hint::black_box(out);
        }
        let delta = pool.stats().delta_since(&warm).per_frame(reps as u64);
        macs_per_frame = delta.mac3 + delta.mac1;
        if kind == Kernels::Packed {
            steady_allocs = delta.planes_allocated;
            params_reused = delta.params_reused;
        }
        let med = median(ns);
        let mac_per_s = macs_per_frame as f64 / (med as f64 / 1e9);
        println!(
            "{name:>9}: median {:.3} ms/frame  {:.2} GMAC/s  ({reps} reps, variant {}, \
             narrow instrs/frame {})",
            med as f64 / 1e6,
            mac_per_s / 1e9,
            delta.kernel_variant,
            delta.narrow_instrs,
        );
        results.push(Measured {
            name,
            median_ns: med,
            mac_per_s,
            reps,
            narrow_instrs: delta.narrow_instrs,
            variant_tag: delta.kernel_variant.name().to_string(),
        });
    }

    let find = |n: &str| results.iter().find(|r| r.name == n);
    let ratio = |a: Option<&Measured>, b: Option<&Measured>| -> Option<f64> {
        Some(a?.median_ns as f64 / b?.median_ns as f64)
    };
    let speedup_ref = ratio(find("reference"), find("packed"));
    let speedup_simd = ratio(find("packed"), find("simd"));
    if let Some(s) = speedup_ref {
        println!("packed vs reference: {s:.2}x");
    }
    if let Some(s) = speedup_simd {
        println!(
            "simd vs packed: {s:.2}x  steady-state allocs/frame: {steady_allocs}  \
             packed instructions served/frame: {params_reused}"
        );
    }

    // Hand-rolled JSON (no serializer in the offline vendor set): the old
    // top-level fields are kept verbatim for trajectory comparison, the
    // per-variant objects grow `narrow_instrs_per_frame` + `variant`, and
    // new top-level fields record the dispatch decision.
    let mut json = format!(
        "{{\n  \"bench\": \"esr4k_block_execution\",\n  \"model\": \"{spec}\",\n  \
         \"block\": {xi},\n  \"mac_per_frame\": {macs_per_frame},\n  \
         \"simd_level\": \"{}\",\n  \"cpu_features\": [{}],\n  \
         \"narrow_licensed_instrs\": {},\n  \"program_instrs\": {},\n",
        plan.simd_level(),
        features
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect::<Vec<_>>()
            .join(", "),
        plan.narrow_licensed(),
        compiled.program.instructions.len(),
    );
    for r in &results {
        json.push_str(&format!(
            "  \"{}\": {{ \"median_ns_per_frame\": {}, \"mac_per_s\": {:.0}, \"reps\": {}, \
             \"variant\": \"{}\", \"narrow_instrs_per_frame\": {} }},\n",
            r.name, r.median_ns, r.mac_per_s, r.reps, r.variant_tag, r.narrow_instrs
        ));
    }
    if let Some(s) = speedup_ref {
        json.push_str(&format!("  \"speedup_packed_vs_reference\": {s:.3},\n"));
    }
    if let Some(s) = speedup_simd {
        json.push_str(&format!("  \"speedup_simd_vs_packed\": {s:.3},\n"));
    }
    json.push_str(&format!(
        "  \"steady_state_allocs_per_frame\": {steady_allocs},\n  \
         \"packed_params_reused_per_frame\": {params_reused}\n}}\n"
    ));
    std::fs::write(&json_path, &json).expect("write bench json");
    println!("wrote {json_path}");
}
