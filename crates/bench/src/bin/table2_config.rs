//! Table 2: eCNN configurations.

use ecnn_bench::{section, ECNN_TOPS};
use ecnn_model::RealTimeSpec;
use ecnn_sim::EcnnConfig;

fn main() {
    section("Table 2: eCNN configuration");
    let c = EcnnConfig::paper();
    println!("clock                 : {} MHz", c.clock_hz / 1e6);
    println!("LCONV3x3 multipliers  : {}", c.lconv3_multipliers);
    println!("LCONV1x1 multipliers  : {}", c.lconv1_multipliers);
    println!("total multipliers     : {}", c.total_multipliers());
    println!("peak throughput       : {:.2} TOPS", c.peak_tops());
    println!(
        "block buffers         : {} x {} KB ({} banks each)",
        c.block_buffers,
        c.block_buffer_bytes / 1024,
        c.banks_per_buffer
    );
    println!(
        "parameter memory      : {} KB (21 streams)",
        c.param_memory_bytes / 1024
    );
    println!(
        "IDU decode            : {} cycles per leaf-module",
        c.idu_cycles_per_leaf
    );
    println!("\ncomputation constraints (41 TOPS / pixel rate):");
    for s in RealTimeSpec::ALL {
        println!(
            "  {:>6}: {:>5.0} KOP/pixel",
            s.name,
            s.kop_budget(ECNN_TOPS)
        );
    }
}
