//! Offline stand-in for `rand` 0.8: the exact API surface this workspace
//! uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range}`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! strong and deterministic, but **not** bit-compatible with the real
//! `StdRng` (ChaCha12). Seeded experiments reproduce within this workspace
//! only.

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their "standard" distribution
/// (`[0, 1)` for floats, full range for integers).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 24 mantissa bits -> [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna) — the workspace's deterministic
    /// standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// The prelude, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let u: f32 = a.gen();
            assert!((0.0..1.0).contains(&u));
            let r = a.gen_range(3usize..17);
            assert!((3..17).contains(&r));
            let i = a.gen_range(-255i16..=255);
            assert!((-255..=255).contains(&i));
            let f = a.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
