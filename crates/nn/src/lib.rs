//! Training substrate for the eCNN reproduction.
//!
//! The paper trains ERNets on GPU farms over DIV2K/Waterloo; this crate is
//! the offline, from-scratch CPU equivalent (see DESIGN.md §4): a small but
//! real CNN trainer covering exactly the FBISA-supported layer set, plus the
//! paper's three-stage procedure (Section 4.2/4.3):
//!
//! 1. **Scan** — lightweight training of every candidate from
//!    `ecnn_model::scan` ([`pipeline::scan_stage`]).
//! 2. **Polish** — full training of the picked model.
//! 3. **Quantize + fine-tune** — dynamic fixed-point Q-format search by
//!    L1/L2 error (Eq. 4) and straight-through-estimator fine-tuning with
//!    clipped activations ([`quant`]).
//!
//! Ablation machinery for the motivation figures lives in [`prune`]
//! (magnitude pruning, Fig. 2a) and the depthwise ERNet variants built by
//! [`float_model::FloatModel::edsr_depthwise`] (Fig. 2b).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
pub mod data;
pub mod float_model;
pub mod pipeline;
pub mod prune;
pub mod quant;
pub mod schedule;
pub mod train;

pub use data::{make_dataset, TaskKind};
pub use float_model::{FloatModel, FopKind};
pub use quant::{fixed_forward, quantize, QuantConfig};
pub use train::{eval_psnr, train, TrainConfig, TrainStats};
