//! Fig. 8: SR4ERNet model scan under the three computation constraints
//! (xi = 128). Top panel: the RE-vs-B feasibility frontier. Bottom panel:
//! lightweight-training PSNR of (a subsample of) the candidates.

use ecnn_bench::{bench_scale, section, ECNN_TOPS};
use ecnn_model::ernet::ErNetTask;
use ecnn_model::scan::scan_candidates;
use ecnn_model::RealTimeSpec;
use ecnn_nn::data::TaskKind;
use ecnn_nn::pipeline::{pick_best, scan_stage};
use ecnn_nn::schedule::repro_stages;

fn main() {
    section("Fig. 8 (top): largest feasible RE per B, xi=128");
    println!(
        "{:>4} {:>12} {:>12} {:>12}",
        "B", "UHD30(164)", "HD60(328)", "HD30(655)"
    );
    let frontiers: Vec<Vec<_>> = RealTimeSpec::ALL
        .iter()
        .map(|s| scan_candidates(ErNetTask::Sr4, s.kop_budget(ECNN_TOPS), 128.0, 45))
        .collect();
    for b in (1..=45).step_by(2) {
        let cell = |f: &Vec<ecnn_model::Candidate>| {
            f.iter()
                .find(|c| c.spec.b == b)
                .map_or("-".to_string(), |c| format!("{:.2}", c.re))
        };
        println!(
            "{b:>4} {:>12} {:>12} {:>12}",
            cell(&frontiers[0]),
            cell(&frontiers[1]),
            cell(&frontiers[2])
        );
    }
    for (s, f) in RealTimeSpec::ALL.iter().zip(&frontiers) {
        let max_int = f.iter().map(|c| c.intrinsic_kop).fold(0.0, f64::max);
        let min_int = f.iter().map(|c| c.intrinsic_kop).fold(f64::MAX, f64::min);
        println!(
            "{}: NCR {:.1}-{:.1}x, intrinsic {:.0}-{:.0} KOP/px",
            s.name,
            f.first().map_or(0.0, |c| c.ncr),
            f.last().map_or(0.0, |c| c.ncr),
            max_int,
            min_int
        );
    }

    section("Fig. 8 (bottom): lightweight-training PSNR of scan candidates");
    let stage = &repro_stages(bench_scale())[0];
    // Subsample the frontier (every 8th B) to keep CPU cost bounded; the
    // denoising task trains fastest and exposes the same capacity ordering.
    let scored = scan_stage(
        ErNetTask::Sr4,
        TaskKind::Sr { scale: 4 },
        RealTimeSpec::HD30.kop_budget(ECNN_TOPS),
        128.0,
        17,
        8,
        stage,
        7,
    );
    for s in &scored {
        println!(
            "  {}: RE={:.2} intrinsic={:.0} KOP/px -> {:.2} dB",
            s.candidate.spec, s.candidate.re, s.candidate.intrinsic_kop, s.psnr
        );
    }
    if let Some(best) = pick_best(&scored) {
        println!("picked: {}", best.candidate.spec);
    }
}
