//! The [`Model`] container: a validated chain of layers with I/O metadata.

use crate::layer::{Layer, Op, SkipRef};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised by [`Model::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// A layer's declared input channels disagree with the chain.
    ChannelMismatch {
        /// Index of the offending layer.
        layer: usize,
        /// Channels produced by the previous stage.
        expected: usize,
        /// Channels the layer declares.
        found: usize,
    },
    /// A skip reference points at this or a later layer.
    ForwardSkip {
        /// Index of the offending layer.
        layer: usize,
    },
    /// A skip source has a different channel count or resolution scale than
    /// the layer output it is added to.
    SkipShapeMismatch {
        /// Index of the offending layer.
        layer: usize,
    },
    /// The model has no layers.
    Empty,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ChannelMismatch {
                layer,
                expected,
                found,
            } => write!(
                f,
                "layer {layer}: expects {found} input channels but receives {expected}"
            ),
            ModelError::ForwardSkip { layer } => {
                write!(f, "layer {layer}: skip reference is not strictly earlier")
            }
            ModelError::SkipShapeMismatch { layer } => {
                write!(f, "layer {layer}: skip source shape does not match output")
            }
            ModelError::Empty => write!(f, "model has no layers"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Spatial inference type (FBISA opcode attribute, Section 5.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InferenceKind {
    /// Valid convolutions on recomputed overlapping blocks — the
    /// truncated-pyramid flow of Section 3 (imaging models).
    #[default]
    TruncatedPyramid,
    /// Zero-padded convolutions on a single whole-frame block (the
    /// computer-vision case studies of Section 7.3).
    ZeroPadded,
}

/// A fully-convolutional model: a named, validated layer chain.
///
/// # Example
///
/// ```
/// use ecnn_model::{Activation, Layer, Model, Op};
/// let model = Model::new(
///     "tiny",
///     3,
///     3,
///     vec![
///         Layer::new(Op::Conv3x3 { in_c: 3, out_c: 32, act: Activation::Relu }),
///         Layer::new(Op::Conv3x3 { in_c: 32, out_c: 3, act: Activation::None }),
///     ],
/// )
/// .unwrap();
/// assert_eq!(model.depth_conv3x3(), 2);
/// assert_eq!(model.output_scale(), 1.0);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Model {
    name: String,
    /// Logical input channels (3 for RGB; 12 for unshuffled DnERNet-12ch).
    in_channels: usize,
    /// Logical output channels.
    out_channels: usize,
    layers: Vec<Layer>,
    #[serde(default)]
    inference: InferenceKind,
}

impl Model {
    /// Builds and validates a model.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the chain is empty, channel counts do not
    /// agree, or a skip connection is ill-formed.
    pub fn new(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        layers: Vec<Layer>,
    ) -> Result<Self, ModelError> {
        let m = Self {
            name: name.into(),
            in_channels,
            out_channels,
            layers,
            inference: InferenceKind::TruncatedPyramid,
        };
        m.validate()?;
        Ok(m)
    }

    /// Sets the spatial inference type (default: truncated pyramid).
    #[must_use]
    pub fn with_inference(mut self, kind: InferenceKind) -> Self {
        self.inference = kind;
        self
    }

    /// The spatial inference type used when compiling this model.
    pub fn inference(&self) -> InferenceKind {
        self.inference
    }

    /// Model name (e.g. `SR4ERNet-B34R4N0`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logical input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Logical output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// The layer chain.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the chain is empty (never, for validated models).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Channel count flowing *into* layer `i`.
    pub fn in_channels_at(&self, i: usize) -> usize {
        self.channel_walk()[i]
    }

    /// Channel count flowing *out of* layer `i`.
    pub fn out_channels_at(&self, i: usize) -> usize {
        self.channel_walk()[i + 1]
    }

    /// Channels at every chain position: `walk[0]` is the model input,
    /// `walk[i+1]` is the output of layer `i`.
    pub fn channel_walk(&self) -> Vec<usize> {
        let mut walk = Vec::with_capacity(self.layers.len() + 1);
        walk.push(self.in_channels);
        for layer in &self.layers {
            let prev = *walk.last().expect("walk is nonempty");
            walk.push(layer.op.out_channels(prev));
        }
        walk
    }

    /// Resolution scale at every chain position relative to the input
    /// (`scale[0] = 1`).
    pub fn scale_walk(&self) -> Vec<f64> {
        let mut walk = Vec::with_capacity(self.layers.len() + 1);
        walk.push(1.0);
        for layer in &self.layers {
            let prev = *walk.last().expect("walk is nonempty");
            walk.push(prev * layer.op.scale_factor());
        }
        walk
    }

    /// Output resolution relative to the input (4.0 for SR×4, 1.0 for
    /// denoising).
    pub fn output_scale(&self) -> f64 {
        *self.scale_walk().last().expect("walk is nonempty")
    }

    /// [`Model::output_scale`] as an exact reduced ratio
    /// `(numerator, denominator)`. Every scale-changing op multiplies by
    /// an integer factor or its reciprocal, so the output scale is always
    /// rational; geometry derivations (output frame dimensions, block-grid
    /// counts) must use this rather than truncating `dim * output_scale()`
    /// — for non-power-of-two denominators the float product can land just
    /// below the exact integer and truncate one pixel short.
    pub fn output_scale_rational(&self) -> (usize, usize) {
        let (mut num, mut den) = (1usize, 1usize);
        for layer in &self.layers {
            let (n, d) = layer.op.scale_rational();
            num *= n;
            den *= d;
        }
        let g = gcd(num, den);
        (num / g, den / g)
    }

    /// Total CONV3×3 stage count `D` — the truncated pyramid's depth driver.
    pub fn depth_conv3x3(&self) -> usize {
        self.layers.iter().map(|l| l.op.conv3x3_count()).sum()
    }

    /// Validates channel agreement and skip-connection well-formedness.
    ///
    /// # Errors
    ///
    /// See [`ModelError`].
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.layers.is_empty() {
            return Err(ModelError::Empty);
        }
        let mut channels = self.in_channels;
        let mut scale = 1.0f64;
        // (channels, scale) of every produced tensor; index 0 = input.
        let mut produced: Vec<(usize, f64)> = vec![(self.in_channels, 1.0)];
        for (i, layer) in self.layers.iter().enumerate() {
            if let Some(expect) = layer.op.in_channels() {
                if expect != channels {
                    return Err(ModelError::ChannelMismatch {
                        layer: i,
                        expected: channels,
                        found: expect,
                    });
                }
            }
            channels = layer.op.out_channels(channels);
            scale *= layer.op.scale_factor();
            if let Some(skip) = layer.skip {
                let src = match skip {
                    SkipRef::Input => produced[0],
                    SkipRef::Layer(j) => {
                        if j >= i {
                            return Err(ModelError::ForwardSkip { layer: i });
                        }
                        produced[j + 1]
                    }
                };
                if src != (channels, scale) {
                    return Err(ModelError::SkipShapeMismatch { layer: i });
                }
            }
            produced.push((channels, scale));
        }
        Ok(())
    }

    /// Counts trainable parameters (weights + biases, logical channels).
    pub fn param_count(&self) -> usize {
        let walk = self.channel_walk();
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| match l.op {
                Op::Conv3x3 { in_c, out_c, .. } => {
                    debug_assert_eq!(in_c, walk[i]);
                    in_c * out_c * 9 + out_c
                }
                Op::Conv1x1 { in_c, out_c, .. } => in_c * out_c + out_c,
                Op::ErModule {
                    channels,
                    expansion,
                } => {
                    let wide = channels * expansion;
                    channels * wide * 9 + wide + wide * channels + channels
                }
                _ => 0,
            })
            .sum()
    }
}

/// Greatest common divisor (Euclid); `gcd(n, 0) == n`.
fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({}ch -> {}ch, scale x{}, D={})",
            self.name,
            self.in_channels,
            self.out_channels,
            self.output_scale(),
            self.depth_conv3x3()
        )?;
        for (i, layer) in self.layers.iter().enumerate() {
            write!(f, "  [{i:2}] {}", layer.op)?;
            match layer.skip {
                Some(SkipRef::Input) => writeln!(f, "  (+input)")?,
                Some(SkipRef::Layer(j)) => writeln!(f, "  (+layer {j})")?,
                None => writeln!(f)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, PoolKind};

    fn conv(in_c: usize, out_c: usize) -> Layer {
        Layer::new(Op::Conv3x3 {
            in_c,
            out_c,
            act: Activation::Relu,
        })
    }

    #[test]
    fn valid_chain_passes() {
        let m = Model::new("m", 3, 16, vec![conv(3, 8), conv(8, 16)]).unwrap();
        assert_eq!(m.channel_walk(), vec![3, 8, 16]);
        assert_eq!(m.depth_conv3x3(), 2);
    }

    #[test]
    fn empty_model_rejected() {
        assert_eq!(
            Model::new("m", 3, 3, vec![]).unwrap_err(),
            ModelError::Empty
        );
    }

    #[test]
    fn channel_mismatch_detected() {
        let err = Model::new("m", 3, 16, vec![conv(3, 8), conv(9, 16)]).unwrap_err();
        assert_eq!(
            err,
            ModelError::ChannelMismatch {
                layer: 1,
                expected: 8,
                found: 9
            }
        );
    }

    #[test]
    fn forward_skip_rejected() {
        let l = Layer::with_skip(
            Op::Conv3x3 {
                in_c: 3,
                out_c: 3,
                act: Activation::None,
            },
            SkipRef::Layer(0),
        );
        let err = Model::new("m", 3, 3, vec![l]).unwrap_err();
        assert_eq!(err, ModelError::ForwardSkip { layer: 0 });
    }

    #[test]
    fn skip_channel_mismatch_rejected() {
        // input has 3 channels, layer output has 8 -> inconsistent residual
        let l = Layer::with_skip(
            Op::Conv3x3 {
                in_c: 3,
                out_c: 8,
                act: Activation::None,
            },
            SkipRef::Input,
        );
        let err = Model::new("m", 3, 8, vec![l]).unwrap_err();
        assert_eq!(err, ModelError::SkipShapeMismatch { layer: 0 });
    }

    #[test]
    fn skip_scale_mismatch_rejected() {
        // layer 0: 3 -> 12 channels; layer 1: shuffle to 3ch at 2x; skip from
        // input has matching channels but wrong scale.
        let layers = vec![
            conv(3, 12),
            Layer::with_skip(Op::PixelShuffle { factor: 2 }, SkipRef::Input),
        ];
        let err = Model::new("m", 3, 3, layers).unwrap_err();
        assert_eq!(err, ModelError::SkipShapeMismatch { layer: 1 });
    }

    #[test]
    fn valid_global_residual() {
        // head conv 3->32, body conv 32->32 with skip from head output.
        let layers = vec![
            conv(3, 32),
            Layer::with_skip(
                Op::Conv3x3 {
                    in_c: 32,
                    out_c: 32,
                    act: Activation::None,
                },
                SkipRef::Layer(0),
            ),
        ];
        assert!(Model::new("m", 3, 32, layers).is_ok());
    }

    #[test]
    fn scale_walk_tracks_shuffles() {
        let layers = vec![
            conv(3, 128),
            Layer::new(Op::PixelShuffle { factor: 2 }),
            Layer::new(Op::Downsample {
                kind: PoolKind::Max,
                factor: 2,
            }),
        ];
        let m = Model::new("m", 3, 32, layers).unwrap();
        assert_eq!(m.scale_walk(), vec![1.0, 1.0, 2.0, 1.0]);
        assert_eq!(m.output_scale(), 1.0);
        assert_eq!(m.output_scale_rational(), (1, 1));
    }

    #[test]
    fn rational_scale_is_integer_exact() {
        // A 1/3 downscaler: the rational form maps 9 input rows to
        // exactly 3 output rows by integer division, where the float
        // product `9.0 * output_scale()` depends on how 1/3's rounding
        // error happens to land relative to the truncation boundary.
        let layers = vec![
            conv(3, 3),
            Layer::new(Op::Downsample {
                kind: PoolKind::Stride,
                factor: 3,
            }),
        ];
        let m = Model::new("m", 3, 3, layers).unwrap();
        let (num, den) = m.output_scale_rational();
        assert_eq!((num, den), (1, 3));
        for h in 1..1000usize {
            assert_eq!(h * num / den, h / 3, "height {h}");
        }
        // Compound scales reduce: x2 shuffle then /2 pool is unity.
        let layers = vec![
            conv(3, 12),
            Layer::new(Op::PixelShuffle { factor: 2 }),
            Layer::new(Op::Downsample {
                kind: PoolKind::Max,
                factor: 2,
            }),
        ];
        let m = Model::new("m", 3, 3, layers).unwrap();
        assert_eq!(m.output_scale_rational(), (1, 1));
    }

    #[test]
    fn param_count_matches_hand_calculation() {
        let m = Model::new(
            "m",
            3,
            3,
            vec![
                conv(3, 32), // 3*32*9+32 = 896
                Layer::new(Op::ErModule {
                    channels: 32,
                    expansion: 2,
                }), // 32*64*9+64 + 64*32+32 = 20576
                Layer::new(Op::Conv3x3 {
                    in_c: 32,
                    out_c: 3,
                    act: Activation::None,
                }), // 32*3*9+3 = 867
            ],
        )
        .unwrap();
        assert_eq!(
            m.param_count(),
            896 + (32 * 64 * 9 + 64 + 64 * 32 + 32) + 867
        );
    }

    #[test]
    fn display_lists_layers() {
        let m = Model::new("demo", 3, 8, vec![conv(3, 8)]).unwrap();
        let s = m.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("CONV3x3 3->8"));
    }
}
