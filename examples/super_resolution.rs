//! x4 super-resolution end to end: train a small SR4ERNet, quantize it,
//! deploy on the simulated eCNN and compare PSNR against bilinear scaling.
//!
//! ```sh
//! cargo run --release --example super_resolution
//! ```

use ecnn_repro::core::Engine;
use ecnn_repro::model::ernet::{ErNetSpec, ErNetTask};
use ecnn_repro::model::RealTimeSpec;
use ecnn_repro::nn::data::{make_dataset, TaskKind};
use ecnn_repro::nn::float_model::FloatModel;
use ecnn_repro::nn::quant::{quantize, QuantConfig};
use ecnn_repro::nn::train::{train, TrainConfig};
use ecnn_repro::tensor::image::{downsample_box, upsample_bilinear};
use ecnn_repro::tensor::{psnr, ImageKind, SyntheticImage, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small SR4ERNet (B=2, RE=2) keeps the example fast on CPU.
    let spec = ErNetSpec::new(ErNetTask::Sr4, 2, 2, 0);
    let ir = spec.build()?;
    println!("training {} ({} params)...", spec, ir.param_count());

    let data = make_dataset(TaskKind::Sr { scale: 4 }, 12, 48, 11);
    let mut fm = FloatModel::from_model(&ir, 11);
    train(
        &mut fm,
        &data,
        TrainConfig {
            steps: 400,
            batch: 4,
            lr: 2e-3,
            seed: 1,
            threads: 2,
        },
    );

    let calib: Vec<Tensor<f32>> = data.iter().take(4).map(|s| s.input.clone()).collect();
    let qm = quantize(&fm, &ir, &calib, QuantConfig::default());

    // Deploy and super-resolve a held-out image.
    let dep = Engine::builder()
        .quantized(qm)
        .block(64)
        .realtime(RealTimeSpec::UHD30)
        .build()?;
    let hr = SyntheticImage::new(ImageKind::Texture, 505).rgb(128, 128);
    let lr = downsample_box(&hr, 4);
    let (sr, _) = dep.run_image(&lr)?;
    let bilinear = upsample_bilinear(&lr, 4);
    println!("bilinear x4: {:.2} dB", psnr(&bilinear, &hr, 1.0));
    println!("SR4ERNet on eCNN: {:.2} dB", psnr(&sr, &hr, 1.0));

    println!("{}", dep.system_report());
    Ok(())
}
