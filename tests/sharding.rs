//! Integration tests for the plan/execute split and the sharded backend:
//! parity of the sharded paths against the plain engine, and the plane
//! pool's zero-allocation steady state.

use ecnn_baselines::registry;
use ecnn_core::engine::{Backend, EcnnBackend, Engine, Workload};
use ecnn_core::sharded::ShardedBackend;
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_model::RealTimeSpec;
use ecnn_tensor::{ImageKind, SyntheticImage};

fn workload() -> Workload {
    Workload::ernet(
        ErNetSpec::new(ErNetTask::Dn, 2, 1, 0),
        40,
        RealTimeSpec::HD30,
    )
    .unwrap()
}

fn engine() -> Engine {
    EcnnBackend::paper().engine(&workload()).unwrap()
}

/// The headline parity claim: at N = 1, 2, 4 the sharded backend produces
/// bit-identical output pixels and identical merged report totals vs the
/// plain single-engine path.
#[test]
fn sharded_backend_parity_at_1_2_4() {
    let w = workload();
    let img = SyntheticImage::new(ImageKind::Texture, 23).rgb(72, 96);
    let plain = EcnnBackend::paper();
    let (ref_out, ref_stats) = plain.run_image(&w, &img).unwrap();
    let ref_report = plain.frame_report(&w).unwrap();
    for n in [1usize, 2, 4] {
        let sharded = ShardedBackend::new(EcnnBackend::paper(), n);

        // Pixels: bit-identical (the block grid is partitioned, never
        // recomputed differently).
        let (out, stats) = sharded.run_image(&w, &img).unwrap();
        assert_eq!(out, ref_out, "x{n}: pixels must be bit-identical");
        assert_eq!(stats.blocks, ref_stats.blocks, "x{n}: block totals");
        assert_eq!(
            stats.exec.work(),
            ref_stats.exec.work(),
            "x{n}: per-frame work totals (MACs, bytes, instructions)"
        );

        // Reports: summed totals equal the unsharded report (up to the
        // sub-byte truncation each shard's analytic count applies).
        let merged = sharded.frame_report(&w).unwrap();
        let drift = (merged.dram_bytes_per_frame - ref_report.dram_bytes_per_frame).abs();
        assert!(drift <= 2.0 * n as f64, "x{n}: DRAM bytes drift {drift}");
        assert!(
            merged.fps >= ref_report.fps,
            "x{n}: sharding cannot slow down"
        );
        if n == 1 {
            assert_eq!(merged.fps, ref_report.fps);
            assert_eq!(merged.power_w, ref_report.power_w);
            assert_eq!(merged.feature_sram_bytes, ref_report.feature_sram_bytes);
        }
    }
}

/// Sharding must also hold on upscaling workloads (output grid ≠ input
/// grid) and on frame sizes that do not divide evenly into block rows.
#[test]
fn sharded_parity_on_sr_with_ragged_grid() {
    let w = Workload::ernet(
        ErNetSpec::new(ErNetTask::Sr2, 2, 1, 0),
        32,
        RealTimeSpec::HD30,
    )
    .unwrap();
    // 50x38: neither dimension is a multiple of the 42px output block.
    let img = SyntheticImage::new(ImageKind::Edges, 5).rgb(50, 38);
    let (ref_out, _) = EcnnBackend::paper().run_image(&w, &img).unwrap();
    assert_eq!(ref_out.shape(), (3, 100, 76));
    for n in [2usize, 3, 4] {
        let (out, _) = ShardedBackend::new(EcnnBackend::paper(), n)
            .run_image(&w, &img)
            .unwrap();
        assert_eq!(out, ref_out, "x{n}");
    }
}

/// After the first frame has warmed the plane pool, a multi-frame session
/// performs zero per-block plane allocations — the acceptance criterion
/// for the arena.
#[test]
fn session_pool_allocates_nothing_after_warmup() {
    let eng = engine();
    let mut session = eng.session();
    let frames: Vec<_> = (0..4)
        .map(|seed| SyntheticImage::new(ImageKind::Mixed, seed).rgb(56, 56))
        .collect();
    for (i, frame) in frames.iter().enumerate() {
        session.process(frame).unwrap();
        let exec = session.last_frame_stats().exec;
        if i == 0 {
            assert!(exec.planes_allocated > 0, "first frame populates the arena");
        } else {
            assert_eq!(
                exec.planes_allocated, 0,
                "frame {i}: warm frames must not allocate planes"
            );
            assert!(exec.planes_reused > 0);
        }
    }
    assert_eq!(session.frames(), 4);
}

/// The batched entry point drains a frame queue through one pool and
/// matches per-frame processing bit-exactly.
#[test]
fn run_frames_matches_sequential_processing() {
    let eng = engine();
    let frames: Vec<_> = (0..3)
        .map(|seed| SyntheticImage::new(ImageKind::Smooth, 40 + seed).rgb(56, 56))
        .collect();
    let batched = eng.session().run_frames(frames.iter()).unwrap();
    assert_eq!(batched.len(), 3);
    let mut session = eng.session();
    for (i, frame) in frames.iter().enumerate() {
        let out = session.process(frame).unwrap();
        assert_eq!(&batched[i], out, "frame {i}");
    }
    // The whole batch ran on one warm pool: only the first frame allocated.
    let mut probe = eng.session();
    probe.run_frames(frames.iter()).unwrap();
    assert_eq!(probe.last_frame_stats().exec.planes_allocated, 0);
}

/// The registry's sharded variants run real images through the same
/// unified API as every other backend.
#[test]
fn registry_sharded_variants_run_images() {
    let w = workload();
    let img = SyntheticImage::new(ImageKind::Smooth, 3).rgb(56, 56);
    let (ref_out, _) = EcnnBackend::paper().run_image(&w, &img).unwrap();
    let mut seen = 0;
    for backend in registry() {
        if !backend.name().contains("[x") {
            continue;
        }
        seen += 1;
        assert!(backend.supports_run_image(), "{}", backend.name());
        let (out, _) = backend.run_image(&w, &img).unwrap();
        assert_eq!(out, ref_out, "{}", backend.name());
    }
    assert_eq!(seen, 2, "registry carries the x2 and x4 variants");
}
