//! Integration tests for the pipelined [`AsyncSession`] and the geometry
//! fixes that ride along: async-vs-serial parity at several worker
//! counts, back-pressure, ticket semantics, and the integer-exact output
//! dimensions shared by the serial, sharded and pipelined paths.

use ecnn_core::engine::{EngineError, Workload};
use ecnn_core::pipe::{AsyncSession, FramePoll};
use ecnn_core::sharded::ShardedBackend;
use ecnn_core::{Backend, EcnnBackend, Engine};
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_model::layer::{Activation, Layer, Op, PoolKind};
use ecnn_model::{Model, RealTimeSpec};
use ecnn_tensor::{ImageKind, SyntheticImage, Tensor};

fn engine() -> Engine {
    Engine::builder()
        .ernet(ErNetSpec::new(ErNetTask::Dn, 2, 1, 0))
        .block(40)
        .realtime(RealTimeSpec::HD30)
        .build()
        .unwrap()
}

/// A queue of frames whose geometry changes mid-stream.
fn mixed_resolution_frames() -> Vec<Tensor<f32>> {
    [(56, 56), (72, 96), (56, 72), (96, 56), (56, 56)]
        .iter()
        .enumerate()
        .map(|(seed, &(h, w))| SyntheticImage::new(ImageKind::Mixed, seed as u64).rgb(h, w))
        .collect()
}

/// The tentpole parity claim: `AsyncSession` output is bit-identical to
/// `Session::run_frames` at 1, 2 and 4 workers over a mixed-resolution
/// frame queue, with matching per-frame block and work totals.
#[test]
fn async_session_matches_run_frames_at_1_2_4_workers() {
    let eng = engine();
    let frames = mixed_resolution_frames();
    let serial = eng.session().run_frames(frames.iter()).unwrap();
    for workers in [1usize, 2, 4] {
        let mut session = eng.async_session(workers);
        let tickets: Vec<_> = frames
            .iter()
            .map(|f| session.submit(f.clone()).unwrap())
            .collect();
        assert_eq!(tickets.len(), frames.len());
        assert!(tickets.iter().enumerate().all(|(i, t)| t.frame() == i));
        let results = session.drain().unwrap();
        assert_eq!(results.len(), frames.len());
        for (i, (out, stats)) in results.iter().enumerate() {
            assert_eq!(
                out, &serial[i],
                "x{workers} frame {i}: pixels must be bit-identical"
            );
            let (_, ref_stats) = eng.run_image(&frames[i]).unwrap();
            assert_eq!(stats.blocks, ref_stats.blocks, "x{workers} frame {i}");
            assert_eq!(
                stats.exec.work(),
                ref_stats.exec.work(),
                "x{workers} frame {i}: work totals are band-invariant"
            );
        }
        // Every result was claimed by the drain: the tickets are spent.
        match session.poll(tickets[0]) {
            Err(EngineError::Ticket { frame: 0 }) => {}
            other => panic!("expected a spent ticket, got {other:?}"),
        }
    }
}

/// Polling transitions Pending -> Ready and spends the ticket.
#[test]
fn poll_delivers_each_result_exactly_once() {
    let eng = engine();
    let img = SyntheticImage::new(ImageKind::Texture, 9).rgb(56, 72);
    let (reference, _) = eng.run_image(&img).unwrap();
    let mut session = eng.async_session(2);
    let ticket = session.submit(img).unwrap();
    let (out, stats) = loop {
        match session.poll(ticket).unwrap() {
            FramePoll::Ready(out, stats) => break (out, stats),
            FramePoll::Pending => std::thread::sleep(std::time::Duration::from_millis(1)),
        }
    };
    assert_eq!(out, reference);
    assert!(stats.blocks > 0);
    assert!(matches!(
        session.poll(ticket),
        Err(EngineError::Ticket { frame: 0 })
    ));
    // A ticket the session never issued is rejected too.
    let stray = session.submit(SyntheticImage::new(ImageKind::Smooth, 1).rgb(56, 56));
    let stray = stray.unwrap();
    assert_eq!(stray.frame(), 1);
    let (_, _) = session.wait(stray).unwrap();
}

/// The bounded in-flight window applies back-pressure: with capacity 1 a
/// submit cannot overtake the frame already in the pipeline.
#[test]
fn submit_backpressure_bounds_in_flight_frames() {
    let eng = engine();
    let mut session = AsyncSession::with_capacity(&eng, 2, 1);
    assert_eq!(session.capacity(), 1);
    assert_eq!(session.workers(), 2);
    let frames: Vec<_> = (0..4)
        .map(|s| SyntheticImage::new(ImageKind::Edges, s).rgb(56, 56))
        .collect();
    for frame in &frames {
        session.submit(frame.clone()).unwrap();
        assert!(
            session.in_flight() <= 1,
            "capacity 1 admits at most one in-flight frame"
        );
    }
    let results = session.drain().unwrap();
    assert_eq!(results.len(), 4);
    assert_eq!(session.pending(), 0);
}

/// Bad frames fail synchronously at submit and never occupy the pipeline.
#[test]
fn submit_validates_geometry_up_front() {
    let eng = engine();
    let mut session = eng.async_session(2);
    let gray = Tensor::<f32>::zeros(1, 56, 56);
    assert!(matches!(
        session.submit(gray),
        Err(EngineError::Image(m)) if m.channels == 1 && m.expected_channels == 3
    ));
    assert_eq!(session.in_flight(), 0);
    assert_eq!(session.pending(), 0);
    // The rejected frame consumed no ticket slot: the next valid submit
    // still works and drains clean.
    let ok = session
        .submit(SyntheticImage::new(ImageKind::Smooth, 5).rgb(56, 56))
        .unwrap();
    let (out, _) = session.wait(ok).unwrap();
    assert_eq!(out.shape(), (3, 56, 56));
}

/// Tickets are bound to the session that issued them: redeeming one on
/// another session is a structured error, never another session's frame.
#[test]
fn tickets_do_not_cross_sessions() {
    let eng = engine();
    let mut a = eng.async_session(1);
    let mut b = eng.async_session(1);
    let ticket_a = a
        .submit(SyntheticImage::new(ImageKind::Mixed, 1).rgb(56, 56))
        .unwrap();
    let ticket_b = b
        .submit(SyntheticImage::new(ImageKind::Edges, 2).rgb(56, 56))
        .unwrap();
    // Same frame index, different sessions.
    assert_eq!(ticket_a.frame(), ticket_b.frame());
    assert!(matches!(
        b.poll(ticket_a),
        Err(EngineError::Ticket { frame: 0 })
    ));
    assert!(matches!(
        a.wait(ticket_b),
        Err(EngineError::Ticket { frame: 0 })
    ));
    // The right tickets still redeem on their own sessions.
    a.wait(ticket_a).unwrap();
    b.wait(ticket_b).unwrap();
}

/// An in-flight band failure abandons the frame's remaining bands (the
/// skip path still closes the band accounting — no hang), completes the
/// frame as a structured `EngineError::Frame`, propagates out of `drain`
/// at the failing frame, and leaves later frames claimable.
#[test]
fn in_flight_failure_completes_frame_and_preserves_later_ones() {
    let eng = engine();
    // One worker and a wide-open window: the worker is still busy with
    // frame 0 when the failure is injected into frame 1, so frame 1's
    // bands take the skip path.
    let mut session = AsyncSession::with_capacity(&eng, 1, 8);
    let frames: Vec<_> = (0..3)
        .map(|s| SyntheticImage::new(ImageKind::Mixed, 60 + s).rgb(56, 56))
        .collect();
    let tickets: Vec<_> = frames
        .iter()
        .map(|f| session.submit(f.clone()).unwrap())
        .collect();
    assert!(session.inject_band_failure(
        tickets[1],
        EngineError::Exec(ecnn_sim::exec::ExecError::ReadFromDo)
    ));
    match session.drain() {
        Err(EngineError::Frame { frame, source, .. }) => {
            assert_eq!(frame, 1);
            assert!(matches!(*source, EngineError::Exec(_)));
        }
        other => panic!("expected frame 1 to fail, got {other:?}"),
    }
    // Frame 2 finished normally and is still claimable after the failed
    // drain; frame 0's result was dropped by it (run_frames semantics).
    let (out, _) = session.wait(tickets[2]).unwrap();
    let (reference, _) = eng.run_image(&frames[2]).unwrap();
    assert_eq!(out, reference);
    assert!(matches!(
        session.poll(tickets[0]),
        Err(EngineError::Ticket { frame: 0 })
    ));
}

/// In-flight failures are structured: frame index, shard and block, with
/// a chained source.
#[test]
fn frame_error_carries_frame_shard_and_block() {
    let e = EngineError::Frame {
        frame: 3,
        shard: 1,
        block: 7,
        source: Box::new(EngineError::Rows {
            start: 2,
            end: 4,
            available: 1,
        }),
    };
    let msg = e.to_string();
    assert!(msg.contains("frame 3"), "{msg}");
    assert!(msg.contains("shard 1"), "{msg}");
    assert!(msg.contains("block 7"), "{msg}");
    assert!(std::error::Error::source(&e).is_some());
}

/// A 1/3-downscaler whose output dimensions are only correct when derived
/// integer-exactly (`dim * num / den`), never by truncating the float
/// product.
fn downscale3_engine() -> Engine {
    let layers = vec![
        Layer::new(Op::Conv3x3 {
            in_c: 3,
            out_c: 3,
            act: Activation::Relu,
        }),
        Layer::new(Op::Downsample {
            kind: PoolKind::Stride,
            factor: 3,
        }),
    ];
    let model = Model::new("dn3", 3, 3, layers).unwrap();
    Engine::builder().model(model).block(32).build().unwrap()
}

/// Regression for the sharded output-dimension derivation: on a ragged
/// non-power-of-two frame with a non-power-of-two scale denominator, the
/// serial, sharded and pipelined paths must agree on the integer-exact
/// output geometry and produce bit-identical pixels.
#[test]
fn out_dims_are_integer_exact_on_ragged_non_pow2_frames() {
    let eng = downscale3_engine();
    // 50x38 input at scale 1/3: exactly (16, 12) output pixels — ragged
    // against the 10px output blocks in both dimensions.
    let img = SyntheticImage::new(ImageKind::Mixed, 21).rgb(50, 38);
    assert_eq!(eng.out_dims(&img).unwrap(), (16, 12));
    let (reference, ref_stats) = eng.run_image(&img).unwrap();
    assert_eq!(reference.shape(), (3, 16, 12));
    for n in [2usize, 3] {
        let (out, stats) = eng.run_image_sharded(&img, n).unwrap();
        assert_eq!(out, reference, "x{n} sharded pixels");
        assert_eq!(stats.exec.work(), ref_stats.exec.work(), "x{n} work");
    }
    let mut session = eng.async_session(2);
    let ticket = session.submit(img).unwrap();
    let (out, _) = session.wait(ticket).unwrap();
    assert_eq!(out, reference, "pipelined pixels");
}

/// And the same regression through the ragged SR path the sharded
/// backend ships in the registry.
#[test]
fn sr_ragged_sharded_dims_match_serial() {
    let w = Workload::ernet(
        ErNetSpec::new(ErNetTask::Sr2, 2, 1, 0),
        32,
        RealTimeSpec::HD30,
    )
    .unwrap();
    // 53x41 is odd in both dimensions: x2 output (106, 82) is ragged
    // against the 42px output block.
    let img = SyntheticImage::new(ImageKind::Edges, 31).rgb(53, 41);
    let plain = EcnnBackend::paper();
    let (reference, _) = plain.run_image(&w, &img).unwrap();
    assert_eq!(reference.shape(), (3, 106, 82));
    for n in [2usize, 4] {
        let (out, _) = ShardedBackend::new(EcnnBackend::paper(), n)
            .run_image(&w, &img)
            .unwrap();
        assert_eq!(out, reference, "x{n}");
    }
}

/// Frames with an empty output grid are a structured `Rows` error at
/// entry — on every path — instead of a silent zero-block run.
#[test]
fn empty_output_grid_is_a_structured_error() {
    let eng = downscale3_engine();
    // 2 input rows at scale 1/3: zero output rows.
    let img = SyntheticImage::new(ImageKind::Smooth, 2).rgb(2, 50);
    for err in [
        eng.run_image(&img).unwrap_err(),
        eng.run_image_sharded(&img, 2).unwrap_err(),
        eng.async_session(2).submit(img).unwrap_err(),
    ] {
        match err {
            EngineError::Rows { available, .. } => assert_eq!(available, 0),
            other => panic!("expected an empty-grid Rows error, got {other:?}"),
        }
    }
}
