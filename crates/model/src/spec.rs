//! Real-time throughput specifications (paper Table 2).
//!
//! Each specification fixes an output resolution and frame rate; combined
//! with the processor's 41 TOPS peak it yields the per-pixel operation
//! budget used by the model-scanning procedure: 164 KOP/px for UHD30,
//! 328 KOP/px for HD60 and 655 KOP/px for HD30.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A real-time output specification: resolution × frame rate.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RealTimeSpec {
    /// Human-readable name (`UHD30`, `HD60`, `HD30`).
    pub name: &'static str,
    /// Output width in pixels.
    pub width: usize,
    /// Output height in pixels.
    pub height: usize,
    /// Frames per second.
    pub fps: f64,
}

impl RealTimeSpec {
    /// 4K Ultra-HD at 30 fps.
    pub const UHD30: RealTimeSpec = RealTimeSpec {
        name: "UHD30",
        width: 3840,
        height: 2160,
        fps: 30.0,
    };

    /// Full HD at 60 fps.
    pub const HD60: RealTimeSpec = RealTimeSpec {
        name: "HD60",
        width: 1920,
        height: 1080,
        fps: 60.0,
    };

    /// Full HD at 30 fps.
    pub const HD30: RealTimeSpec = RealTimeSpec {
        name: "HD30",
        width: 1920,
        height: 1080,
        fps: 30.0,
    };

    /// The three specifications evaluated in the paper, fastest first.
    pub const ALL: [RealTimeSpec; 3] = [Self::UHD30, Self::HD60, Self::HD30];

    /// Output pixels per frame.
    pub fn pixels_per_frame(&self) -> f64 {
        (self.width * self.height) as f64
    }

    /// Output pixels per second.
    pub fn pixel_rate(&self) -> f64 {
        self.pixels_per_frame() * self.fps
    }

    /// Per-pixel operation budget in KOP for a processor with `tops` peak
    /// throughput (Fig. 8's three computation constraints with 41 TOPS).
    pub fn kop_budget(&self, tops: f64) -> f64 {
        tops * 1e12 / self.pixel_rate() / 1000.0
    }

    /// Frame period in seconds.
    pub fn frame_period(&self) -> f64 {
        1.0 / self.fps
    }

    /// Raw RGB (3 B/px) output-image bandwidth in bytes/second.
    pub fn output_bandwidth_rgb(&self) -> f64 {
        self.pixel_rate() * 3.0
    }
}

impl fmt::Display for RealTimeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}x{}@{}fps)",
            self.name, self.width, self.height, self.fps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ECNN_TOPS: f64 = 40.96;

    #[test]
    fn budgets_match_paper_constraints() {
        // Paper Fig. 8 / Section 4.2: 164, 328, 655 KOP/pixel.
        assert!((RealTimeSpec::UHD30.kop_budget(ECNN_TOPS) - 164.0).abs() < 1.5);
        assert!((RealTimeSpec::HD60.kop_budget(ECNN_TOPS) - 328.0).abs() < 2.5);
        assert!((RealTimeSpec::HD30.kop_budget(ECNN_TOPS) - 655.0).abs() < 5.0);
    }

    #[test]
    fn pixel_rates() {
        assert_eq!(RealTimeSpec::UHD30.pixel_rate(), 3840.0 * 2160.0 * 30.0);
        assert_eq!(
            RealTimeSpec::HD60.pixel_rate(),
            2.0 * RealTimeSpec::HD30.pixel_rate()
        );
    }

    #[test]
    fn output_bandwidth_matches_fig21_base() {
        // UHD30 RGB output stream: ~746 MB/s (the base the NBR multiplies).
        let bw = RealTimeSpec::UHD30.output_bandwidth_rgb();
        assert!((bw / 1e6 - 746.5).abs() < 1.0, "bw {bw}");
    }

    #[test]
    fn display_format() {
        assert_eq!(RealTimeSpec::HD60.to_string(), "HD60 (1920x1080@60fps)");
    }
}
