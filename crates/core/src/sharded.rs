//! Multi-accelerator sharding over any [`Backend`].
//!
//! The block-based dataflow makes a frame's block grid embarrassingly
//! parallel: no block reads another block's output. [`ShardedBackend`]
//! exploits that by partitioning the grid's block rows across `N` worker
//! threads (crossbeam scoped threads, one [`Session`](crate::engine::Session) — and therefore one
//! plane pool — per shard), executing the shards concurrently, stitching
//! the bands back together in deterministic block order, and merging the
//! per-shard reports:
//!
//! * latency merges as the **max** over shards (cycles = max ⇒ fps = min),
//! * traffic, energy and SRAM merge as the **sum** over shards.
//!
//! Pixels are bit-identical to the single-engine path at any shard count
//! because every worker executes exactly the blocks the whole-frame flow
//! would, against the same full input image (no halo recompute is needed —
//! the receptive-field overlap is already part of each block's crop).
//!
//! Analytical [`FrameReport`]s shard the real-time spec's height at block
//! granularity, so per-shard block counts sum exactly to the unsharded
//! count and summed totals (DRAM bytes per frame, …) match the unsharded
//! report up to the sub-byte truncation each shard's analytic byte count
//! applies independently.

use crate::engine::{
    Backend, EcnnBackend, Engine, EngineError, FrameReport, ImageRunStats, Workload,
};
use ecnn_model::RealTimeSpec;
use ecnn_tensor::Tensor;

/// Capability of flows whose block grid can be partitioned across
/// workers: building the bit-exact [`Engine`] that executes it. The eCNN
/// simulator implements this; analytical baselines do not.
pub trait BlockParallel {
    /// Builds the engine used for sharded block execution of `workload`.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors.
    fn block_engine(&self, workload: &Workload) -> Result<Engine, EngineError>;
}

impl BlockParallel for EcnnBackend {
    fn block_engine(&self, workload: &Workload) -> Result<Engine, EngineError> {
        self.engine(workload)
    }
}

impl Engine {
    /// Runs one image at the engine's resolved worker count
    /// ([`EngineBuilder::workers`](crate::engine::EngineBuilder::workers),
    /// a replayed tuning record, or `ECNN_WORKERS`): serial
    /// [`Engine::run_image`] at `workers == 1`, otherwise
    /// [`Engine::run_image_sharded`] at that count. Bit-identical pixels
    /// either way.
    ///
    /// # Errors
    ///
    /// See [`Engine::run_image_sharded`].
    pub fn run_image_auto(
        &self,
        image: &Tensor<f32>,
    ) -> Result<(Tensor<f32>, ImageRunStats), EngineError> {
        self.run_image_sharded(image, self.config().workers)
    }

    /// Runs one image with the frame's block grid partitioned row-wise
    /// across `shards` worker threads, each executing on its own plane
    /// pool; bands are stitched in deterministic block order and the
    /// per-shard stats merged. Bit-identical pixels and identical summed
    /// [`ImageRunStats`] vs [`Engine::run_image`] at any shard count.
    ///
    /// # Errors
    ///
    /// [`EngineError::Image`] for geometry mismatches;
    /// [`EngineError::Shard`] (with the failing shard and block index) for
    /// worker failures, [`EngineError::Worker`] for worker panics.
    pub fn run_image_sharded(
        &self,
        image: &Tensor<f32>,
        shards: usize,
    ) -> Result<(Tensor<f32>, ImageRunStats), EngineError> {
        // Output geometry comes from the one integer-exact derivation
        // every band stitches against ([`Engine::out_dims`]); a zero-block
        // frame is a structured `Rows` error here, before any worker
        // spawns, so `partition_rows` below only ever sees `rows >= 1`.
        let (out_h, out_w) = self.out_dims(image)?;
        let (rows, cols) = self.grid_dims(image)?;
        let p = &self.compiled().program;
        let xo = p.do_side;
        let n = shards.clamp(1, rows);
        if n == 1 {
            return self.run_image(image);
        }
        let ranges = partition_rows(rows, n);

        let joined = crossbeam::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .cloned()
                .map(|range| {
                    scope.spawn(move |_| {
                        let mut session = self.session();
                        // `map(|_| ())` ends the borrow of the session so
                        // the success path can take the stitched band out
                        // of it instead of cloning a second copy.
                        match session.process_rows(image, range.clone()).map(|_| ()) {
                            Ok(()) => {
                                let stats = session.last_frame_stats();
                                let band = session.into_frame().expect("band stitched just above");
                                Ok((band, stats))
                            }
                            Err(e) => Err((
                                // Block index in the row-major frame grid;
                                // if the worker failed before its first
                                // block, point at the band's first block.
                                session.last_block_started().unwrap_or(range.start * cols),
                                e,
                            )),
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
        })
        .expect("scope itself cannot fail: worker panics are joined");

        let mut frame = Tensor::zeros(p.do_channels, out_h, out_w);
        let mut stats = ImageRunStats::default();
        for (shard, result) in joined.into_iter().enumerate() {
            match result {
                Ok(Ok((band, band_stats))) => {
                    frame.paste(&band, ranges[shard].start * xo, 0);
                    stats.merge(&band_stats);
                }
                Ok(Err((block, e))) => {
                    return Err(EngineError::Shard {
                        shard,
                        block,
                        source: Box::new(e),
                    })
                }
                Err(panic) => {
                    return Err(EngineError::Worker {
                        shard,
                        message: crate::supervise::panic_message(&*panic),
                    })
                }
            }
        }
        Ok((frame, stats))
    }
}

/// Splits `rows` block rows into `min(n, rows)` contiguous, non-empty,
/// near-equal ranges covering `0..rows` (earlier ranges take the
/// remainder). Total over every input: zero rows yield zero ranges —
/// never a single empty one — so a worker can never be handed a band
/// with no blocks; callers that require work reject empty grids up
/// front ([`Engine::out_dims`] returns [`EngineError::Rows`]).
pub fn partition_rows(rows: usize, n: usize) -> Vec<std::ops::Range<usize>> {
    if rows == 0 {
        return Vec::new();
    }
    let n = n.clamp(1, rows);
    let base = rows / n;
    let rem = rows % n;
    let mut start = 0;
    (0..n)
        .map(|i| {
            let len = base + usize::from(i < rem);
            let r = start..start + len;
            start += len;
            r
        })
        .collect()
}

/// Any [`Backend`] partitioned across `N` workers.
///
/// * [`Backend::frame_report`] shards the workload's real-time spec by
///   height (at block-row granularity when the inner flow is
///   [`BlockParallel`], so summed totals match the unsharded report
///   exactly) and merges per-shard reports with cycles = max,
///   traffic/energy/SRAM = sum.
/// * [`Backend::run_image`] partitions the frame's block grid across
///   worker threads via [`Engine::run_image_sharded`] when the inner flow
///   is [`BlockParallel`]; other flows fall back to their own
///   (unsharded) implementation.
pub struct ShardedBackend<B> {
    inner: B,
    shards: usize,
    name: String,
}

impl<B: Backend> ShardedBackend<B> {
    /// Wraps `inner`, partitioning work across `shards` workers. The
    /// backend is named `"{inner}[x{shards}]"`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(inner: B, shards: usize) -> Self {
        assert!(shards > 0, "a sharded backend needs at least one worker");
        let name = format!("{}[x{shards}]", inner.name());
        Self {
            inner,
            shards,
            name,
        }
    }

    /// The wrapped flow.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Number of workers the grid is partitioned across.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Shards `spec`'s height into per-worker bands. With a block side the
    /// bands align to block rows (all but the last are whole multiples of
    /// `granularity`), so per-shard block counts sum exactly to the
    /// unsharded count; without one the raw pixel height is split.
    fn shard_specs(&self, spec: RealTimeSpec, granularity: Option<usize>) -> Vec<RealTimeSpec> {
        let g = granularity.unwrap_or(1).max(1);
        let rows = spec.height.div_ceil(g).max(1);
        let ranges = partition_rows(rows, self.shards.min(rows));
        ranges
            .iter()
            .map(|r| {
                let height = (r.end * g).min(spec.height) - r.start * g;
                RealTimeSpec { height, ..spec }
            })
            .collect()
    }
}

/// Merges per-shard reports: fps = min (cycles = max), DRAM traffic /
/// power / TOPS / SRAM = sum, utilization = max (the binding shard).
fn merge_reports(name: &str, spec: RealTimeSpec, reports: &[FrameReport]) -> FrameReport {
    let first = &reports[0];
    let fps = reports.iter().map(|r| r.fps).fold(f64::INFINITY, f64::min);
    let dram_bytes_per_frame: f64 = reports.iter().map(|r| r.dram_bytes_per_frame).sum();
    let sum_opt = |f: fn(&FrameReport) -> Option<f64>| -> Option<f64> {
        reports.iter().map(f).sum::<Option<f64>>()
    };
    FrameReport {
        backend: name.to_string(),
        workload: first.workload.clone(),
        spec,
        fps,
        meets_realtime: fps >= spec.fps,
        dram_bytes_per_frame,
        dram_bps: dram_bytes_per_frame * spec.fps.min(fps),
        feature_sram_bytes: reports.iter().map(|r| r.feature_sram_bytes).sum(),
        power_w: sum_opt(|r| r.power_w),
        tops: sum_opt(|r| r.tops),
        utilization: reports
            .iter()
            .filter_map(|r| r.utilization)
            .fold(None, |m, u| Some(m.map_or(u, |v: f64| v.max(u)))),
        note: format!(
            "{} shard(s): cycles=max, traffic/energy=sum; per-shard: {}",
            reports.len(),
            first.note
        ),
    }
}

impl<B: Backend + Sync> Backend for ShardedBackend<B> {
    fn name(&self) -> &str {
        &self.name
    }

    fn frame_report(&self, workload: &Workload) -> Result<FrameReport, EngineError> {
        // Block-parallel flows compile once and report every shard band
        // off the same engine, at block-row granularity — so summed
        // per-shard totals equal the unsharded report. Analytical flows
        // split the raw spec height and re-report per band.
        let reports = match self.inner.block_parallel() {
            Some(bp) => {
                let engine = bp.block_engine(workload)?;
                let do_side = engine.compiled().program.do_side;
                self.shard_specs(workload.spec, Some(do_side))
                    .into_iter()
                    .map(|spec| engine.frame_report_at(spec))
                    .collect()
            }
            None => self
                .shard_specs(workload.spec, None)
                .into_iter()
                .map(|spec| {
                    let mut w = workload.clone();
                    w.spec = spec;
                    self.inner.frame_report(&w)
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(merge_reports(&self.name, workload.spec, &reports))
    }

    fn supports_run_image(&self) -> bool {
        self.inner.supports_run_image()
    }

    fn run_image(
        &self,
        workload: &Workload,
        image: &Tensor<f32>,
    ) -> Result<(Tensor<f32>, ImageRunStats), EngineError> {
        match self.inner.block_parallel() {
            Some(bp) => bp
                .block_engine(workload)?
                .run_image_sharded(image, self.shards),
            None => self.inner.run_image(workload, image),
        }
    }

    fn block_parallel(&self) -> Option<&dyn BlockParallel> {
        self.inner.block_parallel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnn_model::ernet::{ErNetSpec, ErNetTask};
    use ecnn_tensor::{ImageKind, SyntheticImage};

    fn workload() -> Workload {
        Workload::ernet(
            ErNetSpec::new(ErNetTask::Dn, 2, 1, 0),
            40,
            RealTimeSpec::HD30,
        )
        .unwrap()
    }

    #[test]
    fn partition_rows_is_exact_and_contiguous() {
        for rows in 1..12 {
            for n in 1..6 {
                let ranges = partition_rows(rows, n);
                assert_eq!(ranges.len(), n.min(rows));
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, rows);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                    assert!(!w[0].is_empty() && !w[1].is_empty());
                }
            }
        }
    }

    #[test]
    fn sharded_names_and_delegation() {
        let b = ShardedBackend::new(EcnnBackend::paper(), 2);
        assert_eq!(b.name(), "ecnn[x2]");
        assert_eq!(b.shards(), 2);
        assert!(b.supports_run_image());
        assert!(b.block_parallel().is_some());
    }

    #[test]
    fn single_shard_report_matches_inner() {
        let w = workload();
        let inner = EcnnBackend::paper().frame_report(&w).unwrap();
        let merged = ShardedBackend::new(EcnnBackend::paper(), 1)
            .frame_report(&w)
            .unwrap();
        assert_eq!(merged.backend, "ecnn[x1]");
        assert_eq!(merged.fps, inner.fps);
        assert_eq!(merged.dram_bytes_per_frame, inner.dram_bytes_per_frame);
        assert_eq!(merged.dram_bps, inner.dram_bps);
        assert_eq!(merged.feature_sram_bytes, inner.feature_sram_bytes);
        assert_eq!(merged.power_w, inner.power_w);
        assert_eq!(merged.utilization, inner.utilization);
        assert_eq!(merged.meets_realtime, inner.meets_realtime);
    }

    #[test]
    fn merged_traffic_totals_are_shard_invariant() {
        let w = workload();
        let inner = EcnnBackend::paper().frame_report(&w).unwrap();
        for n in [2, 4] {
            let merged = ShardedBackend::new(EcnnBackend::paper(), n)
                .frame_report(&w)
                .unwrap();
            // Block-granular shards preserve the traffic total up to the
            // independent sub-byte truncation of each shard's analytic
            // byte count.
            let diff = (merged.dram_bytes_per_frame - inner.dram_bytes_per_frame).abs();
            assert!(
                diff <= 2.0 * n as f64,
                "x{n}: traffic drift {diff} B on {} B",
                inner.dram_bytes_per_frame
            );
            assert!(merged.fps >= inner.fps, "x{n}: sharding cannot slow down");
            assert_eq!(
                merged.feature_sram_bytes,
                inner.feature_sram_bytes * n as f64
            );
        }
    }

    #[test]
    fn worker_failure_carries_shard_and_block() {
        // A geometry mismatch surfaces before any worker spawns; exercise
        // the Shard variant's formatting instead.
        let e = EngineError::Shard {
            shard: 1,
            block: 7,
            source: Box::new(EngineError::Rows {
                start: 3,
                end: 3,
                available: 2,
            }),
        };
        let msg = e.to_string();
        assert!(msg.contains("shard 1"));
        assert!(msg.contains("block 7"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn out_of_grid_rows_are_a_structured_error() {
        let bp = EcnnBackend::paper();
        let engine = bp.block_engine(&workload()).unwrap();
        let img = SyntheticImage::new(ImageKind::Smooth, 1).rgb(56, 56);
        let mut session = engine.session();
        match session.process_rows(&img, 9..12) {
            Err(EngineError::Rows {
                start,
                end,
                available,
            }) => {
                assert_eq!((start, end), (9, 12));
                assert!(available < 9);
            }
            other => {
                let _ = other.map(|_| ());
                panic!("expected a Rows error");
            }
        }
        assert!(matches!(
            session.process_rows(&img, 1..1),
            Err(EngineError::Rows { .. })
        ));
    }

    #[test]
    fn sharded_image_run_is_bit_identical() {
        let w = workload();
        let img = SyntheticImage::new(ImageKind::Mixed, 11).rgb(56, 72);
        let (plain, plain_stats) = EcnnBackend::paper().run_image(&w, &img).unwrap();
        for n in [1, 2, 4] {
            let sharded = ShardedBackend::new(EcnnBackend::paper(), n);
            let (out, stats) = sharded.run_image(&w, &img).unwrap();
            assert_eq!(out, plain, "x{n} pixels must be bit-identical");
            assert_eq!(stats.blocks, plain_stats.blocks, "x{n} block totals");
            // Work totals are shard-invariant (no halo recompute); only
            // the pool counters differ (one cold arena per worker).
            assert_eq!(
                stats.exec.work(),
                plain_stats.exec.work(),
                "x{n} work totals must match"
            );
        }
    }
}
