//! Table 1: FBISA instruction overview.

use ecnn_bench::section;
use ecnn_isa::instr::{Opcode, MAX_LEAF_MODULES};

fn main() {
    section("Table 1: FBISA instruction overview");
    println!(
        "{:<7} {:<10} {:<9} {:<52}",
        "opcode", "3x3 stage", "1x1 stage", "purpose"
    );
    let rows: [(Opcode, &str); 5] = [
        (
            Opcode::Conv,
            "plain CONV3x3; partial sums accumulate across leaf-modules",
        ),
        (
            Opcode::Er,
            "ERModule: expand 3x3 + reduce 1x1 + self residual via srcS",
        ),
        (
            Opcode::Upx2,
            "CONV3x3 with pixel-shuffle write order (x2 upsampling)",
        ),
        (
            Opcode::Dnx2,
            "CONV3x3 with strided/max-pooled write (x2 downsampling)",
        ),
        (
            Opcode::Conv1,
            "CONV1x1 only (classifier heads on the LCONV1x1 engine)",
        ),
    ];
    for (op, why) in rows {
        println!(
            "{:<7} {:<10} {:<9} {:<52}",
            op.mnemonic(),
            if op.has_conv3x3() { "yes" } else { "-" },
            if op.has_conv1x1() { "yes" } else { "-" },
            why
        );
    }
    println!("\nup to {MAX_LEAF_MODULES} leaf-modules per instruction (32ch-to-32ch each)");
    println!("feature operands: src, dst, srcS, dstS over BB0-BB2 + virtual DI/DO FIFOs");
    println!("parameter operand: byte-aligned restart index into the 21 bitstreams");
}
