//! Synthetic training/validation data (the offline stand-in for
//! DIV2K / Waterloo Exploration / Set5 / CBSD68 — see DESIGN.md §4).

use ecnn_tensor::image::{add_gaussian_noise, downsample_box};
use ecnn_tensor::{ImageKind, SyntheticImage, Tensor};
use rand::prelude::*;
use rand::rngs::StdRng;

/// The restoration task a dataset is built for.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TaskKind {
    /// Gaussian denoising at the given σ (paper: 25/255).
    Denoise {
        /// Noise standard deviation on `[0,1]` images.
        sigma: f32,
    },
    /// Single-image super-resolution at an integer scale (2 or 4).
    Sr {
        /// Upscaling factor.
        scale: usize,
    },
}

impl TaskKind {
    /// The paper's σ=25 denoising setting.
    pub fn denoise25() -> Self {
        TaskKind::Denoise {
            sigma: 25.0 / 255.0,
        }
    }
}

/// One training pair: degraded input and clean target.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Model input (LR or noisy), RGB in `[0,1]`.
    pub input: Tensor<f32>,
    /// Ground truth at output resolution.
    pub target: Tensor<f32>,
}

/// Builds `n` samples with `size × size` targets. Content cycles through
/// all [`ImageKind`] families for diversity; fully deterministic in `seed`.
pub fn make_dataset(task: TaskKind, n: usize, size: usize, seed: u64) -> Vec<Sample> {
    let kinds = [
        ImageKind::Mixed,
        ImageKind::Texture,
        ImageKind::Smooth,
        ImageKind::Edges,
    ];
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDA7A);
    (0..n)
        .map(|i| {
            let kind = kinds[i % kinds.len()];
            let target =
                SyntheticImage::new(kind, seed.wrapping_add(i as u64 * 101)).rgb(size, size);
            let input = match task {
                TaskKind::Denoise { sigma } => add_gaussian_noise(&target, sigma, &mut rng),
                TaskKind::Sr { scale } => downsample_box(&target, scale),
            };
            Sample { input, target }
        })
        .collect()
}

/// A labeled classification sample for the recognition case study: the
/// class is the texture family index, the label a one-hot `C×1×1` tensor.
pub fn make_classification_dataset(
    n: usize,
    size: usize,
    classes: usize,
    seed: u64,
) -> Vec<(Tensor<f32>, usize)> {
    let kinds = [
        ImageKind::Smooth,
        ImageKind::Texture,
        ImageKind::Edges,
        ImageKind::Mixed,
    ];
    let classes = classes.min(kinds.len());
    (0..n)
        .map(|i| {
            let class = i % classes;
            let img =
                SyntheticImage::new(kinds[class], seed.wrapping_add(i as u64 * 13)).rgb(size, size);
            (img, class)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnn_tensor::psnr;

    #[test]
    fn denoise_dataset_has_expected_noise_level() {
        let data = make_dataset(TaskKind::denoise25(), 8, 48, 3);
        assert_eq!(data.len(), 8);
        for s in &data {
            assert_eq!(s.input.shape(), s.target.shape());
            let p = psnr(&s.target, &s.input, 1.0);
            assert!(p > 18.0 && p < 24.0, "noisy psnr {p}");
        }
    }

    #[test]
    fn sr_dataset_shapes() {
        let data = make_dataset(TaskKind::Sr { scale: 4 }, 4, 64, 5);
        for s in &data {
            assert_eq!(s.target.shape(), (3, 64, 64));
            assert_eq!(s.input.shape(), (3, 16, 16));
        }
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = make_dataset(TaskKind::denoise25(), 3, 32, 9);
        let b = make_dataset(TaskKind::denoise25(), 3, 32, 9);
        assert_eq!(a[2].input, b[2].input);
        let c = make_dataset(TaskKind::denoise25(), 3, 32, 10);
        assert_ne!(a[2].input, c[2].input);
    }

    #[test]
    fn classification_labels_cycle() {
        let d = make_classification_dataset(8, 16, 4, 1);
        assert_eq!(d[0].1, 0);
        assert_eq!(d[5].1, 1);
        assert_eq!(d.len(), 8);
    }
}
