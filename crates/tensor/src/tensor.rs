//! Dense channel-major (CHW) tensors.
//!
//! [`Tensor`] is deliberately small: the eCNN datapath only needs 3-D feature
//! volumes with channel-major layout (the hardware streams 4×2 pixel tiles of
//! 32 channels, so channel-major keeps tile extraction contiguous per
//! channel). Batching is handled by the training substrate as `Vec<Tensor>`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A dense 3-D tensor in channel-major (CHW) layout.
///
/// `T` is the element type: `f32` for the reference/training path, `i8` for
/// quantized features and weights, `i32` for full-precision accumulators.
///
/// # Example
///
/// ```
/// use ecnn_tensor::Tensor;
/// let mut t = Tensor::<f32>::zeros(2, 3, 4);
/// *t.at_mut(1, 2, 3) = 7.0;
/// assert_eq!(t.at(1, 2, 3), 7.0);
/// assert_eq!(t.shape(), (2, 3, 4));
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor<T = f32> {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<T>,
}

impl<T: fmt::Debug> fmt::Debug for Tensor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tensor")
            .field("channels", &self.channels)
            .field("height", &self.height)
            .field("width", &self.width)
            .field("len", &self.data.len())
            .finish()
    }
}

impl<T: Copy + Default> Tensor<T> {
    /// Creates a tensor filled with `T::default()` (zero for numeric types).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "tensor dimensions must be nonzero: {channels}x{height}x{width}"
        );
        Self {
            channels,
            height,
            width,
            data: vec![T::default(); channels * height * width],
        }
    }

    /// Creates a tensor by evaluating `f(c, y, x)` at every element.
    pub fn from_fn(
        channels: usize,
        height: usize,
        width: usize,
        mut f: impl FnMut(usize, usize, usize) -> T,
    ) -> Self {
        let mut t = Self::zeros(channels, height, width);
        for c in 0..channels {
            for y in 0..height {
                for x in 0..width {
                    *t.at_mut(c, y, x) = f(c, y, x);
                }
            }
        }
        t
    }

    /// Builds a tensor from a flat CHW vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != channels * height * width`.
    pub fn from_vec(channels: usize, height: usize, width: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            channels * height * width,
            "data length does not match shape"
        );
        assert!(channels > 0 && height > 0 && width > 0);
        Self {
            channels,
            height,
            width,
            data,
        }
    }

    /// Extracts the `channels`-deep rectangle with top-left `(y0, x0)` and
    /// size `h×w`, zero-padding (default-padding) out-of-bounds samples.
    ///
    /// Out-of-bounds reads appear when the block-based flow gathers the
    /// receptive field of a border block; the paper's zero-padded inference
    /// type maps to exactly this behaviour.
    pub fn crop_padded(&self, y0: isize, x0: isize, h: usize, w: usize) -> Self {
        let mut out = Self::zeros(self.channels, h, w);
        for c in 0..self.channels {
            for y in 0..h {
                let sy = y0 + y as isize;
                if sy < 0 || sy >= self.height as isize {
                    continue;
                }
                for x in 0..w {
                    let sx = x0 + x as isize;
                    if sx < 0 || sx >= self.width as isize {
                        continue;
                    }
                    *out.at_mut(c, y, x) = self.at(c, sy as usize, sx as usize);
                }
            }
        }
        out
    }

    /// Reshapes the tensor in place to `channels × height × width`, filling
    /// every element with `T::default()`. The backing storage is kept, so
    /// once a buffer has been grown to its peak size no further allocation
    /// happens — the plane-pool arena's recycling primitive.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn reset(&mut self, channels: usize, height: usize, width: usize) {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "tensor dimensions must be nonzero: {channels}x{height}x{width}"
        );
        self.channels = channels;
        self.height = height;
        self.width = width;
        self.data.clear();
        self.data.resize(channels * height * width, T::default());
    }

    /// [`Tensor::reset`] without the zero-fill: surviving elements keep
    /// their previous (stale) values, so this writes nothing beyond any
    /// grown tail. Only for buffers whose every element is about to be
    /// overwritten.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn reset_no_fill(&mut self, channels: usize, height: usize, width: usize) {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "tensor dimensions must be nonzero: {channels}x{height}x{width}"
        );
        self.channels = channels;
        self.height = height;
        self.width = width;
        self.data.resize(channels * height * width, T::default());
    }

    /// [`Tensor::pixel_shuffle`] into a caller-owned buffer, reusing its
    /// storage (the buffer is reshaped to the shuffled geometry; every
    /// element is overwritten).
    ///
    /// # Panics
    ///
    /// Panics if the channel count is not divisible by `s²`.
    pub fn pixel_shuffle_into(&self, s: usize, dst: &mut Tensor<T>) {
        assert!(s > 0 && self.channels.is_multiple_of(s * s));
        let c = self.channels / (s * s);
        dst.reset_no_fill(c, self.height * s, self.width * s);
        for oc in 0..c {
            for y in 0..dst.height {
                for x in 0..dst.width {
                    let (dy, dx) = (y % s, x % s);
                    let ic = oc * s * s + dy * s + dx;
                    *dst.at_mut(oc, y, x) = self.at(ic, y / s, x / s);
                }
            }
        }
    }

    /// [`Tensor::crop_padded`] into a caller-owned buffer: `dst`'s shape
    /// selects the crop size, and its storage is reused — the streaming
    /// session's per-frame hot path.
    pub fn crop_padded_into(&self, y0: isize, x0: isize, dst: &mut Tensor<T>) {
        assert_eq!(
            dst.channels, self.channels,
            "channel mismatch in crop_padded_into"
        );
        let (h, w) = (dst.height, dst.width);
        dst.data.fill(T::default());
        for c in 0..self.channels {
            for y in 0..h {
                let sy = y0 + y as isize;
                if sy < 0 || sy >= self.height as isize {
                    continue;
                }
                for x in 0..w {
                    let sx = x0 + x as isize;
                    if sx < 0 || sx >= self.width as isize {
                        continue;
                    }
                    *dst.at_mut(c, y, x) = self.at(c, sy as usize, sx as usize);
                }
            }
        }
    }

    /// Elementwise [`Tensor::map`] into a caller-owned buffer of the same
    /// shape, reusing its storage.
    pub fn map_into<U: Copy + Default>(&self, dst: &mut Tensor<U>, mut f: impl FnMut(T) -> U) {
        assert_eq!(
            (self.channels, self.height, self.width),
            (dst.channels, dst.height, dst.width),
            "shape mismatch in map_into"
        );
        for (d, &s) in dst.data.iter_mut().zip(&self.data) {
            *d = f(s);
        }
    }

    /// Copies `src` into `self` with its top-left corner at `(y0, x0)`.
    ///
    /// Used by the block stitcher to paste finished output blocks into the
    /// frame. Samples of `src` that fall outside `self` are ignored.
    pub fn paste(&mut self, src: &Tensor<T>, y0: usize, x0: usize) {
        assert_eq!(self.channels, src.channels, "channel mismatch in paste");
        for c in 0..self.channels {
            for y in 0..src.height {
                if y0 + y >= self.height {
                    break;
                }
                for x in 0..src.width {
                    if x0 + x >= self.width {
                        break;
                    }
                    *self.at_mut(c, y0 + y, x0 + x) = src.at(c, y, x);
                }
            }
        }
    }

    /// Returns a new tensor with channels grown (zero-filled) or truncated to
    /// `channels`. The paper pads RGB inputs with 29 zero channels to present
    /// 32-channel features to the datapath.
    pub fn with_channels(&self, channels: usize) -> Self {
        let mut out = Self::zeros(channels, self.height, self.width);
        for c in 0..channels.min(self.channels) {
            for y in 0..self.height {
                for x in 0..self.width {
                    *out.at_mut(c, y, x) = self.at(c, y, x);
                }
            }
        }
        out
    }

    /// Space-to-depth: packs `s×s` spatial neighborhoods into channels
    /// (`C → C·s²`, `H → H/s`, `W → W/s`). This is the "pixel unshuffle" used
    /// by DnERNet-12ch (Appendix A).
    ///
    /// # Panics
    ///
    /// Panics if the spatial dimensions are not divisible by `s`.
    pub fn pixel_unshuffle(&self, s: usize) -> Self {
        assert!(s > 0 && self.height.is_multiple_of(s) && self.width.is_multiple_of(s));
        let (c, h, w) = (self.channels, self.height / s, self.width / s);
        Tensor::from_fn(c * s * s, h, w, |oc, y, x| {
            let ic = oc / (s * s);
            let rem = oc % (s * s);
            let (dy, dx) = (rem / s, rem % s);
            self.at(ic, y * s + dy, x * s + dx)
        })
    }

    /// Depth-to-space: the inverse of [`Tensor::pixel_unshuffle`]
    /// (`C → C/s²`, `H → H·s`, `W → W·s`), i.e. the sub-pixel upsampler used
    /// by the SR heads (Fig. 7).
    ///
    /// # Panics
    ///
    /// Panics if the channel count is not divisible by `s²`.
    pub fn pixel_shuffle(&self, s: usize) -> Self {
        assert!(s > 0 && self.channels.is_multiple_of(s * s));
        let c = self.channels / (s * s);
        Tensor::from_fn(c, self.height * s, self.width * s, |oc, y, x| {
            let (dy, dx) = (y % s, x % s);
            let ic = oc * s * s + dy * s + dx;
            self.at(ic, y / s, x / s)
        })
    }
}

impl<T: Copy> Tensor<T> {
    /// Element at `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds via the index check) if out of bounds.
    #[inline(always)]
    pub fn at(&self, c: usize, y: usize, x: usize) -> T {
        debug_assert!(c < self.channels && y < self.height && x < self.width);
        self.data[(c * self.height + y) * self.width + x]
    }

    /// Mutable element at `(c, y, x)`.
    #[inline(always)]
    pub fn at_mut(&mut self, c: usize, y: usize, x: usize) -> &mut T {
        debug_assert!(c < self.channels && y < self.height && x < self.width);
        &mut self.data[(c * self.height + y) * self.width + x]
    }

    /// Shape as `(channels, height, width)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// Number of channels.
    #[inline]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Spatial height.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Spatial width.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Elements the backing storage can hold without reallocating (≥
    /// [`Tensor::len`]); lets arenas detect whether a [`Tensor::reset`]
    /// will allocate.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Always false: zero-sized tensors cannot be constructed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Flat CHW view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat CHW view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Contiguous row `y` of channel `c`.
    #[inline]
    pub fn row(&self, c: usize, y: usize) -> &[T] {
        let base = (c * self.height + y) * self.width;
        &self.data[base..base + self.width]
    }

    /// Mutable contiguous row `y` of channel `c`.
    #[inline]
    pub fn row_mut(&mut self, c: usize, y: usize) -> &mut [T] {
        let base = (c * self.height + y) * self.width;
        &mut self.data[base..base + self.width]
    }

    /// The contiguous `height × width` slab of channel `c`.
    #[inline]
    pub fn channel(&self, c: usize) -> &[T] {
        let px = self.height * self.width;
        &self.data[c * px..(c + 1) * px]
    }

    /// Mutable contiguous slab of channel `c`.
    #[inline]
    pub fn channel_mut(&mut self, c: usize) -> &mut [T] {
        let px = self.height * self.width;
        &mut self.data[c * px..(c + 1) * px]
    }

    /// Iterator over the contiguous rows of channel `c`, top to bottom.
    #[inline]
    pub fn rows(&self, c: usize) -> std::slice::ChunksExact<'_, T> {
        self.channel(c).chunks_exact(self.width)
    }

    /// Mutable iterator over the rows of channel `c`.
    #[inline]
    pub fn rows_mut(&mut self, c: usize) -> std::slice::ChunksExactMut<'_, T> {
        let width = self.width;
        self.channel_mut(c).chunks_exact_mut(width)
    }

    /// Applies `f` to corresponding rows of `self`'s channel `c` and
    /// `other`'s channel `oc` — the row-sliced form of an elementwise
    /// channel combination (both tensors must share spatial dimensions).
    ///
    /// # Panics
    ///
    /// Panics if the spatial dimensions differ.
    pub fn zip_rows<U: Copy>(
        &mut self,
        c: usize,
        other: &Tensor<U>,
        oc: usize,
        mut f: impl FnMut(&mut [T], &[U]),
    ) {
        assert_eq!(
            (self.height, self.width),
            (other.height, other.width),
            "spatial mismatch in zip_rows"
        );
        for (dst, src) in self.rows_mut(c).zip(other.rows(oc)) {
            f(dst, src);
        }
    }

    /// Consumes the tensor, returning the flat CHW data.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Applies `f` elementwise, producing a tensor of a possibly different
    /// element type.
    pub fn map<U: Copy + Default>(&self, mut f: impl FnMut(T) -> U) -> Tensor<U> {
        Tensor {
            channels: self.channels,
            height: self.height,
            width: self.width,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }
}

impl Tensor<f32> {
    /// Elementwise sum with `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor<f32>) -> Tensor<f32> {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Tensor<f32>) -> Tensor<f32> {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise combination of two same-shaped tensors.
    pub fn zip(&self, other: &Tensor<f32>, mut f: impl FnMut(f32, f32) -> f32) -> Tensor<f32> {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        Tensor {
            channels: self.channels,
            height: self.height,
            width: self.width,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Tensor<f32>) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// In-place scaling by `s`.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Mean of squared elements; the building block of MSE/PSNR.
    pub fn mean_sq(&self) -> f64 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            / self.data.len() as f64
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }
}

/// Generic scalar arithmetic used by the fixed-point reference kernels.
pub trait Scalar:
    Copy + Default + Add<Output = Self> + Sub<Output = Self> + Mul<Output = Self> + AddAssign
{
}
impl<T> Scalar for T where
    T: Copy + Default + Add<Output = T> + Sub<Output = T> + Mul<Output = T> + AddAssign
{
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_index() {
        let mut t = Tensor::<f32>::zeros(2, 3, 4);
        assert_eq!(t.shape(), (2, 3, 4));
        assert_eq!(t.len(), 24);
        *t.at_mut(1, 2, 3) = 5.0;
        assert_eq!(t.at(1, 2, 3), 5.0);
        assert_eq!(t.at(0, 0, 0), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_dim_panics() {
        let _ = Tensor::<f32>::zeros(0, 1, 1);
    }

    #[test]
    fn from_fn_layout_is_chw() {
        let t = Tensor::from_fn(2, 2, 2, |c, y, x| (c * 100 + y * 10 + x) as f32);
        assert_eq!(t.as_slice(), &[0., 1., 10., 11., 100., 101., 110., 111.]);
    }

    #[test]
    fn crop_padded_zero_fills() {
        let t = Tensor::from_fn(1, 4, 4, |_, y, x| (y * 4 + x) as f32);
        let c = t.crop_padded(-1, -1, 3, 3);
        assert_eq!(c.at(0, 0, 0), 0.0); // out of bounds
        assert_eq!(c.at(0, 1, 1), 0.0); // t[0,0]
        assert_eq!(c.at(0, 2, 2), 5.0); // t[1,1]
    }

    #[test]
    fn crop_then_paste_round_trips_interior() {
        let t = Tensor::from_fn(2, 6, 6, |c, y, x| (c * 36 + y * 6 + x) as f32);
        let block = t.crop_padded(2, 3, 3, 2);
        let mut out = Tensor::<f32>::zeros(2, 6, 6);
        out.paste(&block, 2, 3);
        for c in 0..2 {
            for y in 2..5 {
                for x in 3..5 {
                    assert_eq!(out.at(c, y, x), t.at(c, y, x));
                }
            }
        }
    }

    #[test]
    fn paste_clips_at_border() {
        let mut big = Tensor::<f32>::zeros(1, 4, 4);
        let small = Tensor::from_fn(1, 3, 3, |_, _, _| 1.0);
        big.paste(&small, 2, 2);
        assert_eq!(big.at(0, 3, 3), 1.0);
        assert_eq!(big.at(0, 2, 2), 1.0);
        assert_eq!(big.at(0, 1, 1), 0.0);
    }

    #[test]
    fn with_channels_pads_and_truncates() {
        let t = Tensor::from_fn(3, 2, 2, |c, _, _| c as f32);
        let padded = t.with_channels(5);
        assert_eq!(padded.at(2, 0, 0), 2.0);
        assert_eq!(padded.at(4, 1, 1), 0.0);
        let cut = padded.with_channels(2);
        assert_eq!(cut.channels(), 2);
        assert_eq!(cut.at(1, 0, 0), 1.0);
    }

    #[test]
    fn shuffle_unshuffle_round_trip() {
        let t = Tensor::from_fn(3, 4, 6, |c, y, x| (c * 1000 + y * 10 + x) as f32);
        let u = t.pixel_unshuffle(2);
        assert_eq!(u.shape(), (12, 2, 3));
        let back = u.pixel_shuffle(2);
        assert_eq!(back, t);
    }

    #[test]
    fn pixel_shuffle_matches_subpixel_definition() {
        // channel layout: oc*s*s + dy*s + dx
        let t = Tensor::from_fn(4, 1, 1, |c, _, _| c as f32);
        let s = t.pixel_shuffle(2);
        assert_eq!(s.shape(), (1, 2, 2));
        assert_eq!(s.at(0, 0, 0), 0.0);
        assert_eq!(s.at(0, 0, 1), 1.0);
        assert_eq!(s.at(0, 1, 0), 2.0);
        assert_eq!(s.at(0, 1, 1), 3.0);
    }

    #[test]
    fn map_changes_type() {
        let t = Tensor::from_fn(1, 2, 2, |_, y, x| (y * 2 + x) as f32);
        let q: Tensor<i8> = t.map(|v| v as i8);
        assert_eq!(q.at(0, 1, 1), 3i8);
    }

    #[test]
    fn arithmetic_helpers() {
        let a = Tensor::from_fn(1, 2, 2, |_, y, x| (y + x) as f32);
        let b = Tensor::from_fn(1, 2, 2, |_, _, _| 1.0);
        assert_eq!(a.add(&b).at(0, 1, 1), 3.0);
        assert_eq!(a.sub(&b).at(0, 0, 0), -1.0);
        let mut c = a.clone();
        c.add_assign(&b);
        c.scale(2.0);
        assert_eq!(c.at(0, 1, 1), 6.0);
        assert_eq!(b.mean_sq(), 1.0);
        assert_eq!(a.max_abs(), 2.0);
    }

    #[test]
    fn reset_reuses_storage_and_zero_fills() {
        let mut t = Tensor::from_fn(2, 4, 4, |_, _, _| 7.0f32);
        let ptr = t.as_slice().as_ptr();
        let cap = t.capacity();
        t.reset(1, 3, 3);
        assert_eq!(t.shape(), (1, 3, 3));
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(t.as_slice().as_ptr(), ptr, "shrinking must not reallocate");
        assert_eq!(t.capacity(), cap);
        t.reset(2, 4, 4); // back to the peak: capacity suffices
        assert_eq!(t.as_slice().as_ptr(), ptr);
    }

    #[test]
    fn pixel_shuffle_into_matches_allocating_version() {
        let t = Tensor::from_fn(8, 3, 5, |c, y, x| (c * 100 + y * 10 + x) as f32);
        let mut dst = Tensor::<f32>::zeros(1, 1, 1);
        t.pixel_shuffle_into(2, &mut dst);
        assert_eq!(dst, t.pixel_shuffle(2));
    }

    #[test]
    fn row_is_contiguous() {
        let t = Tensor::from_fn(2, 3, 4, |c, y, x| (c * 100 + y * 10 + x) as f32);
        assert_eq!(t.row(1, 2), &[120.0, 121.0, 122.0, 123.0]);
    }

    #[test]
    fn row_mut_and_channel_views() {
        let mut t = Tensor::from_fn(2, 3, 4, |c, y, x| (c * 100 + y * 10 + x) as f32);
        t.row_mut(1, 2).fill(-1.0);
        assert_eq!(t.at(1, 2, 3), -1.0);
        assert_eq!(t.at(1, 1, 3), 113.0, "other rows untouched");
        assert_eq!(t.channel(0).len(), 12);
        assert_eq!(t.channel(1)[2 * 4 + 1], -1.0);
        t.channel_mut(0).fill(7.0);
        assert_eq!(t.at(0, 2, 3), 7.0);
        assert_eq!(t.at(1, 0, 0), 100.0);
    }

    #[test]
    fn rows_iterate_top_to_bottom() {
        let t = Tensor::from_fn(2, 3, 2, |c, y, x| (c * 100 + y * 10 + x) as f32);
        let rows: Vec<&[f32]> = t.rows(1).collect();
        assert_eq!(
            rows,
            vec![&[100.0, 101.0][..], &[110.0, 111.0], &[120.0, 121.0]]
        );
        let mut u = t.clone();
        for (i, row) in u.rows_mut(0).enumerate() {
            row.fill(i as f32);
        }
        assert_eq!(u.at(0, 2, 1), 2.0);
    }

    #[test]
    fn zip_rows_combines_channel_pairs() {
        let mut a = Tensor::from_fn(2, 2, 3, |c, y, x| (c * 100 + y * 10 + x) as f32);
        let b = Tensor::from_fn(1, 2, 3, |_, y, x| (y * 10 + x) as f32 * 2.0);
        a.zip_rows(1, &b, 0, |dst, src| {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        });
        assert_eq!(a.at(1, 1, 2), 112.0 + 24.0);
        assert_eq!(a.at(0, 1, 2), 12.0, "other channels untouched");
    }
}
