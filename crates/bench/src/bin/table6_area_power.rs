//! Table 6: area and power of eCNN (calibrated model — see DESIGN.md §4).

use ecnn_bench::{model_matrix, report_row, section};
use ecnn_sim::cost::AreaReport;

fn main() {
    section("Table 6: area breakdown (TSMC 40 nm)");
    let a = AreaReport::paper_40nm(1.0);
    let t = a.total_mm2();
    println!(
        "LCONV3x3 engine   : {:>6.2} mm2 ({:>4.1}%)",
        a.lconv3_mm2,
        a.lconv3_mm2 / t * 100.0
    );
    println!(
        "LCONV1x1 engine   : {:>6.2} mm2 ({:>4.1}%)",
        a.lconv1_mm2,
        a.lconv1_mm2 / t * 100.0
    );
    println!(
        "block buffers     : {:>6.2} mm2 ({:>4.1}%)",
        a.block_buffers_mm2,
        a.block_buffers_mm2 / t * 100.0
    );
    println!(
        "parameter memory  : {:>6.2} mm2 ({:>4.1}%)",
        a.param_memory_mm2,
        a.param_memory_mm2 / t * 100.0
    );
    println!(
        "other (IDU, glue) : {:>6.2} mm2 ({:>4.1}%)",
        a.other_mm2,
        a.other_mm2 / t * 100.0
    );
    println!("total             : {:>6.2} mm2 (paper: 55.23)", t);
    println!(
        "3x param memory   : {:>6.2} mm2 (paper recognition variant: 63.99)",
        AreaReport::paper_40nm(3.0).total_mm2()
    );

    section("Table 6: average power across the polished models");
    let mut total = 0.0;
    let mut n = 0;
    for (rt, spec, xi) in model_matrix() {
        let r = report_row(spec, xi, rt);
        total += r.power.total_w();
        n += 1;
    }
    println!(
        "average power: {:.2} W (paper: 6.94 W at 0.9 V / 250 MHz)",
        total / n as f64
    );
}
