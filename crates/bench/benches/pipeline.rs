//! Criterion benchmark for the pipelined session: frames/sec over a
//! short queue on the eSR-4K workload (SrERNet x4), comparing the serial
//! `Session::run_frames` baseline against `AsyncSession` at 1, 2 and 4
//! workers.
//!
//! On a multi-core host the 4-worker pipeline overlaps the quantize /
//! execute / stitch stages of neighbouring frames and should clear at
//! least 1.5x the serial frame throughput; on a single hardware thread
//! the async rows measure the (small) pipelining overhead instead.

use criterion::{criterion_group, criterion_main, Criterion};
use ecnn_core::engine::Engine;
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_model::RealTimeSpec;
use ecnn_tensor::{ImageKind, SyntheticImage, Tensor};
use std::hint::black_box;

/// The eSR-4K flow: SrERNet x4 at the UHD30 real-time target. The
/// benchmark frames are small crops (a 2x2 block grid each, so band
/// splitting still engages) because a bit-exact x4-SR block costs
/// hundreds of milliseconds — the pipeline is identical at full 4K,
/// just with proportionally more blocks per frame.
fn engine() -> Engine {
    Engine::builder()
        .ernet(ErNetSpec::new(ErNetTask::Sr4, 1, 1, 0))
        .block(32)
        .realtime(RealTimeSpec::UHD30)
        .build()
        .unwrap()
}

fn frames() -> Vec<Tensor<f32>> {
    (0..3)
        .map(|seed| SyntheticImage::new(ImageKind::Mixed, seed).rgb(32, 48))
        .collect()
}

fn bench_serial_queue(c: &mut Criterion) {
    let eng = engine();
    let queue = frames();
    let mut session = eng.session();
    session.run_frames(queue.iter()).unwrap(); // warm the plane pool
    c.bench_function("pipeline/esr4k_3frames_run_frames", |b| {
        b.iter(|| black_box(session.run_frames(black_box(queue.iter())).unwrap()))
    });
}

fn bench_async_queue(c: &mut Criterion) {
    let eng = engine();
    let queue = frames();
    for workers in [1usize, 2, 4] {
        let mut session = eng.async_session(workers);
        // Warm every worker's pool before measuring.
        for frame in &queue {
            session.submit(frame.clone()).unwrap();
        }
        session.drain().unwrap();
        c.bench_function(&format!("pipeline/esr4k_3frames_async_x{workers}"), |b| {
            b.iter(|| {
                for frame in &queue {
                    session.submit(black_box(frame.clone())).unwrap();
                }
                black_box(session.drain().unwrap())
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serial_queue, bench_async_queue
}
criterion_main!(benches);
