//! Pipelined asynchronous inference sessions.
//!
//! The block-based dataflow streams: the paper's accelerator overlaps
//! block fetch, compute and writeback to sustain real-time 4K rates.
//! [`AsyncSession`] brings that overlap to the serving path. Where
//! [`Session::run_frames`](crate::engine::Session::run_frames) drains its
//! queue strictly serially — frame `i+1` waits until frame `i` is
//! quantized, executed *and* stitched — an `AsyncSession` keeps a small
//! pool of long-lived worker threads (fed through a `crossbeam` MPMC
//! channel), splits every submitted frame into the same block-row bands
//! the sharded backend uses, and lets the stages of different frames
//! overlap: while one worker stitches the tail band of frame `i`, others
//! are already quantizing and executing the head bands of frame `i+1`.
//!
//! A serving-style caller pipelines decode → inference → encode without
//! blocking:
//!
//! 1. [`AsyncSession::submit`] hands a decoded frame in and returns a
//!    [`FrameTicket`] immediately (blocking only when the bounded
//!    in-flight window is full — the back-pressure that keeps a fast
//!    producer from outrunning the executor);
//! 2. [`AsyncSession::poll`] is non-blocking: [`FramePoll::Pending`]
//!    while the frame is in flight, [`FramePoll::Ready`] with the
//!    stitched output and its per-frame [`ImageRunStats`] once done;
//! 3. [`AsyncSession::drain`] waits for everything still in flight and
//!    returns the remaining results in submission order.
//!
//! Output pixels are **bit-identical** to the serial session at any
//! worker count: every band executes exactly the blocks the whole-frame
//! flow would (global grid addressing, same receptive-field crops), and
//! bands land in disjoint rows of the output frame. Per-frame stats are
//! merged from the bands' counters; each worker holds one warm
//! [`Session`](crate::engine::Session) whose plane pool is reused across
//! bands *and* frames, so steady-state pipelining performs zero per-block
//! allocations, exactly like the serial path. In-flight failures surface
//! as [`EngineError::Frame`] carrying the frame's submission index, the
//! worker (shard) and the failing block.

use crate::engine::{Engine, EngineError, ImageRunStats};
use crate::sharded::partition_rows;
use crossbeam::channel::{self, Receiver, Sender};
use ecnn_tensor::Tensor;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Claim check for one submitted frame; redeem it with
/// [`AsyncSession::poll`]. Tickets are cheap copies — the frame index
/// they carry doubles as the submission order — and are bound to the
/// session that issued them: redeeming one elsewhere is a structured
/// [`EngineError::Ticket`], never another session's frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FrameTicket {
    session: u64,
    frame: usize,
}

impl FrameTicket {
    /// Submission index of the frame within its session (0-based).
    pub fn frame(&self) -> usize {
        self.frame
    }
}

/// Result of a non-blocking [`AsyncSession::poll`].
#[derive(Debug)]
pub enum FramePoll {
    /// The frame finished: its stitched output and per-frame stats.
    Ready(Tensor<f32>, ImageRunStats),
    /// The frame is still in flight; poll again later.
    Pending,
}

/// One band of one in-flight frame, as queued to the worker pool.
struct BandTask {
    frame: usize,
    rows: std::ops::Range<usize>,
    /// Block columns of the frame's grid (for naming the failing block
    /// when a worker dies before starting one).
    cols: usize,
    image: Arc<Tensor<f32>>,
}

/// The failure a frame's earliest failing band recorded.
struct Failure {
    band_start: usize,
    shard: usize,
    block: usize,
    source: EngineError,
}

/// Accumulation state of one submitted, not-yet-finished frame.
struct InFlight {
    /// The output frame under assembly, behind its own lock so workers
    /// stitching different frames (or callers polling the session) never
    /// serialize on a band paste — only bands of the *same* frame, whose
    /// pastes target disjoint rows, take turns here.
    out: Arc<Mutex<Tensor<f32>>>,
    stats: ImageRunStats,
    bands_left: usize,
    failure: Option<Failure>,
}

type FrameResult = Result<(Tensor<f32>, ImageRunStats), EngineError>;

#[derive(Default)]
struct State {
    inflight: HashMap<usize, InFlight>,
    done: HashMap<usize, FrameResult>,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled whenever a frame completes (its result moved to `done`).
    frame_done: Condvar,
}

/// A pipelined, poll-based inference session over one [`Engine`].
///
/// Construct via [`Engine::async_session`] (or
/// [`AsyncSession::with_capacity`] to tune the back-pressure window).
/// Dropping the session closes the task channel and joins the workers;
/// queued work is finished first, unclaimed results are discarded.
///
/// See the [module docs](crate::pipe) for the full contract.
pub struct AsyncSession {
    engine: Arc<Engine>,
    shared: Arc<Shared>,
    /// `Some` while the session accepts work; taken on drop to close the
    /// channel and let the workers run out.
    tasks: Option<Sender<BandTask>>,
    workers: Vec<JoinHandle<()>>,
    n_workers: usize,
    capacity: usize,
    /// Distinguishes this session's tickets from every other session's.
    session_id: u64,
    next_frame: usize,
    /// Submitted-but-unclaimed frames, in submission order (for `drain`).
    order: VecDeque<usize>,
}

impl AsyncSession {
    /// Pipelined session on `workers` threads with the default in-flight
    /// window of `2 * workers` frames.
    ///
    /// The engine is cloned once into the session (the worker threads
    /// outlive the borrow a scoped approach could offer) — open one
    /// session per stream and keep it, rather than one per frame.
    pub fn new(engine: &Engine, workers: usize) -> Self {
        let workers = workers.max(1);
        Self::with_capacity(engine, workers, 2 * workers)
    }

    /// Pipelined session with an explicit back-pressure window:
    /// [`AsyncSession::submit`] blocks while `capacity` frames are in
    /// flight (submitted and not yet fully stitched). `capacity == 1`
    /// degenerates to lock-step serial behaviour with band parallelism.
    pub fn with_capacity(engine: &Engine, workers: usize, capacity: usize) -> Self {
        let workers = workers.max(1);
        let engine = Arc::new(engine.clone());
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            frame_done: Condvar::new(),
        });
        let (tx, rx) = channel::unbounded::<BandTask>();
        let handles = (0..workers)
            .map(|worker| {
                let engine = engine.clone();
                let shared = shared.clone();
                let rx = rx.clone();
                std::thread::spawn(move || worker_loop(&engine, &shared, &rx, worker))
            })
            .collect();
        static NEXT_SESSION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        Self {
            engine,
            shared,
            tasks: Some(tx),
            workers: handles,
            n_workers: workers,
            capacity: capacity.max(1),
            session_id: NEXT_SESSION.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            next_frame: 0,
            order: VecDeque::new(),
        }
    }

    /// The engine this session pipelines on.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.n_workers
    }

    /// Back-pressure window: the maximum number of frames in flight.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Frames currently in flight (submitted, not yet finished).
    pub fn in_flight(&self) -> usize {
        self.lock_state().inflight.len()
    }

    /// Submitted frames whose results have not been claimed yet (in
    /// flight or finished-but-unpolled).
    pub fn pending(&self) -> usize {
        self.order.len()
    }

    /// Submits one decoded frame for pipelined inference, taking
    /// ownership of it, and returns the ticket to claim the result with.
    /// Geometry is validated here, so a bad frame fails synchronously and
    /// never occupies the pipeline. Blocks while [`AsyncSession::capacity`]
    /// frames are in flight (back-pressure); completion by the workers —
    /// not polling — frees the window, so a submit-only caller cannot
    /// deadlock itself. The flip side: finished results are held until
    /// claimed, so a long stream must interleave [`AsyncSession::poll`] /
    /// [`AsyncSession::wait`] (or periodic [`AsyncSession::drain`]s) with
    /// its submits to bound memory — one stitched output frame per
    /// unclaimed result.
    ///
    /// # Errors
    ///
    /// [`EngineError::Image`] / [`EngineError::Rows`] for frames the
    /// engine cannot grid.
    pub fn submit(&mut self, frame: Tensor<f32>) -> Result<FrameTicket, EngineError> {
        let (out_h, out_w) = self.engine.out_dims(&frame)?;
        let (rows, cols) = self.engine.grid_dims(&frame)?;
        let p = &self.engine.compiled().program;
        let bands = partition_rows(rows, self.n_workers);
        let id = self.next_frame;
        self.next_frame += 1;

        let mut state = self.lock_state();
        while state.inflight.len() >= self.capacity {
            state = self
                .shared
                .frame_done
                .wait(state)
                .expect("session lock poisoned");
        }
        state.inflight.insert(
            id,
            InFlight {
                out: Arc::new(Mutex::new(Tensor::zeros(p.do_channels, out_h, out_w))),
                stats: ImageRunStats::default(),
                bands_left: bands.len(),
                failure: None,
            },
        );
        drop(state);

        let image = Arc::new(frame);
        let tasks = self
            .tasks
            .as_ref()
            .expect("channel open while session lives");
        for rows in bands {
            tasks
                .send(BandTask {
                    frame: id,
                    rows,
                    cols,
                    image: image.clone(),
                })
                .expect("workers outlive the session");
        }
        self.order.push_back(id);
        Ok(FrameTicket {
            session: self.session_id,
            frame: id,
        })
    }

    /// Non-blocking claim: [`FramePoll::Ready`] hands the finished frame
    /// over (the ticket is spent), [`FramePoll::Pending`] means it is
    /// still in flight.
    ///
    /// # Errors
    ///
    /// [`EngineError::Frame`] if the frame failed in flight (the ticket
    /// is spent); [`EngineError::Ticket`] for a ticket this session never
    /// issued or whose result was already claimed.
    pub fn poll(&mut self, ticket: FrameTicket) -> Result<FramePoll, EngineError> {
        if ticket.session != self.session_id {
            return Err(EngineError::Ticket {
                frame: ticket.frame,
            });
        }
        let mut state = self.lock_state();
        if let Some(result) = state.done.remove(&ticket.frame) {
            drop(state);
            self.order.retain(|&id| id != ticket.frame);
            return result.map(|(out, stats)| FramePoll::Ready(out, stats));
        }
        if state.inflight.contains_key(&ticket.frame) {
            return Ok(FramePoll::Pending);
        }
        Err(EngineError::Ticket {
            frame: ticket.frame,
        })
    }

    /// Blocking claim: waits until the frame finishes.
    ///
    /// # Errors
    ///
    /// As [`AsyncSession::poll`].
    pub fn wait(
        &mut self,
        ticket: FrameTicket,
    ) -> Result<(Tensor<f32>, ImageRunStats), EngineError> {
        if ticket.session != self.session_id {
            return Err(EngineError::Ticket {
                frame: ticket.frame,
            });
        }
        let mut state = self.lock_state();
        loop {
            if let Some(result) = state.done.remove(&ticket.frame) {
                drop(state);
                self.order.retain(|&id| id != ticket.frame);
                return result;
            }
            if !state.inflight.contains_key(&ticket.frame) {
                return Err(EngineError::Ticket {
                    frame: ticket.frame,
                });
            }
            state = self
                .shared
                .frame_done
                .wait(state)
                .expect("session lock poisoned");
        }
    }

    /// Waits for every in-flight frame and returns all unclaimed results
    /// in submission order — the pipelined counterpart of
    /// [`Session::run_frames`](crate::engine::Session::run_frames).
    ///
    /// # Errors
    ///
    /// Returns the first failing frame's [`EngineError::Frame`] (by
    /// submission order). Results of earlier frames are dropped, matching
    /// `run_frames`; later frames stay claimable through
    /// [`AsyncSession::poll`].
    pub fn drain(&mut self) -> Result<Vec<(Tensor<f32>, ImageRunStats)>, EngineError> {
        // Lock through a clone of the shared handle so the guard does not
        // pin `self` while `order` is drained.
        let shared = self.shared.clone();
        let mut state = shared.state.lock().expect("session lock poisoned");
        while !state.inflight.is_empty() {
            state = shared
                .frame_done
                .wait(state)
                .expect("session lock poisoned");
        }
        let mut results = Vec::with_capacity(self.order.len());
        while let Some(id) = self.order.pop_front() {
            match state.done.remove(&id) {
                Some(Ok(pair)) => results.push(pair),
                Some(Err(e)) => return Err(e),
                None => return Err(EngineError::Ticket { frame: id }),
            }
        }
        Ok(results)
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        self.shared.state.lock().expect("session lock poisoned")
    }

    /// Test support: records `source` as an in-flight band failure on the
    /// ticket's frame, as if its first band had failed on a worker —
    /// exercising the skip/attribution/completion machinery that real
    /// inputs cannot reach (geometry is validated at submit and compiled
    /// plans at engine build). Returns whether the frame was still in
    /// flight.
    #[doc(hidden)]
    pub fn inject_band_failure(&mut self, ticket: FrameTicket, source: EngineError) -> bool {
        if ticket.session != self.session_id {
            return false;
        }
        let mut state = self.lock_state();
        let Some(fl) = state.inflight.get_mut(&ticket.frame) else {
            return false;
        };
        if fl.failure.is_none() {
            fl.failure = Some(Failure {
                band_start: 0,
                shard: 0,
                block: 0,
                source,
            });
        }
        true
    }
}

impl Drop for AsyncSession {
    fn drop(&mut self) {
        // Closing the channel lets every worker drain the queue and exit.
        self.tasks.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// What one band's execution produced, as handed to [`finish_band`].
enum BandOutcome {
    /// The band executed and was already pasted into the frame under its
    /// per-frame lock; only the stats remain to merge.
    Done(ImageRunStats),
    Failed(Failure),
    /// The frame had already failed; the band was not executed.
    Skipped,
}

fn worker_loop(engine: &Engine, shared: &Shared, tasks: &Receiver<BandTask>, worker: usize) {
    let xo = engine.compiled().program.do_side;
    let mut session = engine.session();
    while let Ok(task) = tasks.recv() {
        // Grab the frame's output handle up front; a band of an
        // already-failed (or vanished) frame only needs its accounting.
        let out = {
            let state = shared.state.lock().expect("session lock poisoned");
            state
                .inflight
                .get(&task.frame)
                .filter(|f| f.failure.is_none())
                .map(|f| f.out.clone())
        };
        let Some(out) = out else {
            finish_band(shared, task.frame, BandOutcome::Skipped);
            continue;
        };
        // The executor and stitch only panic on internal invariant
        // violations; the catch spans the whole execute-and-paste step so
        // any such bug (including a lock poisoned by a sibling band's
        // panic) becomes a structured per-frame error that still books
        // its band — never a hung pipeline.
        let ran = catch_unwind(AssertUnwindSafe(|| {
            session
                .process_rows(&task.image, task.rows.clone())
                .map(|_| ())?;
            // Stitch under the frame's own lock: bands of other frames
            // (and session polls) proceed concurrently.
            let band = session.last_frame().expect("band stitched by process_rows");
            out.lock()
                .expect("frame lock poisoned")
                .paste(band, task.rows.start * xo, 0);
            Ok(session.last_frame_stats())
        }));
        let outcome = match ran {
            Ok(Ok(stats)) => BandOutcome::Done(stats),
            Ok(Err(source)) => BandOutcome::Failed(Failure {
                band_start: task.rows.start,
                shard: worker,
                block: session
                    .last_block_started()
                    .unwrap_or(task.rows.start * task.cols),
                source,
            }),
            Err(_panic) => {
                // The session (pool, scratch) may be mid-block; rebuild it.
                session = engine.session();
                BandOutcome::Failed(Failure {
                    band_start: task.rows.start,
                    shard: worker,
                    block: task.rows.start * task.cols,
                    source: EngineError::Worker { shard: worker },
                })
            }
        };
        // The frame handle must be released before the accounting: the
        // last band's completion unwraps the sole remaining `Arc`.
        drop(out);
        finish_band(shared, task.frame, outcome);
    }
}

/// Books one band into its frame: stats merge on success (the paste
/// already happened under the frame's own lock), the earliest failure
/// wins otherwise; the last band moves the frame to `done` and wakes
/// pollers.
fn finish_band(shared: &Shared, frame: usize, outcome: BandOutcome) {
    let mut state = shared.state.lock().expect("session lock poisoned");
    let Some(fl) = state.inflight.get_mut(&frame) else {
        return;
    };
    match outcome {
        BandOutcome::Done(stats) => {
            if fl.failure.is_none() {
                fl.stats.merge(&stats);
            }
        }
        BandOutcome::Failed(failure) => {
            // Deterministic-ish attribution: keep the failure of the
            // earliest band in the grid, whichever worker reports first.
            if fl
                .failure
                .as_ref()
                .is_none_or(|cur| failure.band_start < cur.band_start)
            {
                fl.failure = Some(failure);
            }
        }
        BandOutcome::Skipped => {}
    }
    fl.bands_left -= 1;
    if fl.bands_left == 0 {
        let fl = state.inflight.remove(&frame).expect("present just above");
        let result = match fl.failure {
            None => {
                let out = Arc::try_unwrap(fl.out)
                    .expect("every band released its frame handle")
                    .into_inner()
                    .expect("frame lock poisoned");
                Ok((out, fl.stats))
            }
            Some(f) => Err(EngineError::Frame {
                frame,
                shard: f.shard,
                block: f.block,
                source: Box::new(f.source),
            }),
        };
        state.done.insert(frame, result);
        drop(state);
        shared.frame_done.notify_all();
    }
}
