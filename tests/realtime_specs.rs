//! System-level real-time claims (paper Section 7.2, Figs. 19/21, Table 7).

use ecnn_core::Engine;
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_model::RealTimeSpec;

fn report(
    task: ErNetTask,
    b: usize,
    r: usize,
    n: usize,
    xi: usize,
    spec: RealTimeSpec,
) -> ecnn_core::SystemReport {
    Engine::builder()
        .ernet(ErNetSpec::new(task, b, r, n))
        .block(xi)
        .realtime(spec)
        .build()
        .unwrap()
        .system_report()
}

#[test]
fn paper_model_spec_matrix_is_realtime() {
    // (model pick, spec) pairs from Figs. 19/21 — every pick meets its spec.
    let cases = [
        (ErNetTask::Dn, 3, 1, 0, 128, RealTimeSpec::UHD30),
        (ErNetTask::Sr4, 17, 3, 1, 128, RealTimeSpec::UHD30),
        (ErNetTask::Sr4, 34, 4, 0, 128, RealTimeSpec::HD30),
        (ErNetTask::Dn12, 8, 2, 5, 256, RealTimeSpec::UHD30),
    ];
    for (task, b, r, n, xi, spec) in cases {
        let rep = report(task, b, r, n, xi, spec);
        assert!(
            rep.meets_realtime,
            "{task:?}-B{b}R{r}N{n} @ {spec}: {:.1} fps",
            rep.frame.fps
        );
    }
}

#[test]
fn dram_interfaces_match_fig21() {
    // DnERNet is the bandwidth-heaviest family; its three specs map onto
    // DDR-400 / DDR-266 / DDR-200 (Section 7.2).
    let uhd = report(ErNetTask::Dn, 3, 1, 0, 128, RealTimeSpec::UHD30);
    assert_eq!(uhd.dram_config.unwrap().name, "DDR-400");
    let bw = uhd.dram_bandwidth_bps() / 1e9;
    assert!((bw - 1.66).abs() < 0.15, "UHD30 bw {bw} GB/s");

    // Feasible (budget-respecting) DnERNet picks for the slower specs:
    // B8R1N0 (11 convs, 267 KOP/px total) for HD60 and B12R1N6 (15 convs,
    // ~570 KOP/px) for HD30 — the paper's exact picks are unpublished, but
    // any in-budget pick reproduces the Fig. 21 NBR and bandwidth.
    let hd60 = report(ErNetTask::Dn, 8, 1, 0, 128, RealTimeSpec::HD60);
    assert!(hd60.meets_realtime, "HD60 pick must be real-time");
    let bw60 = hd60.dram_bandwidth_bps() / 1e9;
    assert!((bw60 - 0.94).abs() < 0.12, "HD60 bw {bw60} GB/s");

    let hd30 = report(ErNetTask::Dn, 12, 1, 6, 128, RealTimeSpec::HD30);
    assert!(hd30.meets_realtime, "HD30 pick must be real-time");
    let bw30 = hd30.dram_bandwidth_bps() / 1e9;
    assert!((bw30 - 0.50).abs() < 0.10, "HD30 bw {bw30} GB/s");
}

#[test]
fn sr_models_use_less_bandwidth_than_denoisers() {
    // Fig. 21's shape: SR inputs are 1/16-size, so SR4 traffic sits well
    // below the denoisers' despite similar output streams.
    let dn = report(ErNetTask::Dn, 3, 1, 0, 128, RealTimeSpec::UHD30);
    let sr = report(ErNetTask::Sr4, 17, 3, 1, 128, RealTimeSpec::UHD30);
    assert!(sr.dram_bandwidth_bps() < dn.dram_bandwidth_bps() * 0.6);
}

#[test]
fn power_stays_in_the_7w_class_across_models() {
    // Fig. 20: all polished ERNets sit near the 6.94 W average — an order
    // of magnitude below Diffy's 27-54 W.
    let mut total = 0.0;
    let cases = [
        (ErNetTask::Dn, 3, 1, 0),
        (ErNetTask::Sr4, 17, 3, 1),
        (ErNetTask::Sr4, 34, 4, 0),
        (ErNetTask::Sr2, 8, 2, 0),
    ];
    for (task, b, r, n) in cases {
        let rep = report(task, b, r, n, 128, RealTimeSpec::HD30);
        let w = rep.power.total_w();
        assert!(w > 5.0 && w < 8.5, "{task:?}-B{b}: {w} W");
        total += w;
    }
    let avg = total / cases.len() as f64;
    assert!((avg - 6.94).abs() < 0.8, "average {avg} W");
}
