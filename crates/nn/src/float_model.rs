//! Floating-point model: parameters, forward pass and backpropagation.
//!
//! The layer set mirrors the FBISA-supported IR exactly (plus a depthwise
//! convolution used only by the Fig. 2b ablation). Training always runs
//! with zero padding so patch shapes are preserved; the hardware's valid
//! (truncated-pyramid) convolution is applied at deployment over enlarged
//! input blocks, which computes identical interior values.

use ecnn_model::layer::{Activation, Op, PoolKind, SkipRef};
use ecnn_model::model::Model;
use ecnn_tensor::Tensor;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Floating-point layer kinds (the IR ops plus the depthwise ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FopKind {
    /// 3×3 convolution.
    Conv3 {
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Activation.
        act: Activation,
    },
    /// 1×1 convolution.
    Conv1 {
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Activation.
        act: Activation,
    },
    /// ERModule: conv3×3 expand (+ReLU) then conv1×1 reduce, residual.
    Er {
        /// Module width.
        c: usize,
        /// Expansion ratio.
        e: usize,
    },
    /// Depthwise 3×3 (Fig. 2b ablation only — not FBISA-expressible).
    Dw3 {
        /// Channels.
        c: usize,
        /// Activation.
        act: Activation,
    },
    /// Depth-to-space.
    Shuffle {
        /// Factor.
        s: usize,
    },
    /// Space-to-depth.
    Unshuffle {
        /// Factor.
        s: usize,
    },
    /// Downsampling.
    Pool {
        /// Pooling flavour.
        kind: PoolKind,
        /// Factor.
        s: usize,
    },
}

/// One float layer: kind, optional residual, and parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FloatLayer {
    /// Operation.
    pub kind: FopKind,
    /// Residual source (added after activation).
    pub skip: Option<SkipRef>,
    /// Primary weights (3×3 for Conv3/Er/Dw3; 1×1 matrix for Conv1).
    pub w: Vec<f32>,
    /// Primary biases.
    pub b: Vec<f32>,
    /// ER reduction weights (1×1).
    pub w1: Vec<f32>,
    /// ER reduction biases.
    pub b1: Vec<f32>,
    /// Optional 0/1 pruning mask on `w` (same length).
    pub mask: Option<Vec<f32>>,
    /// Optional output clamp `(lo, hi)` — the "clipped ReLU" the paper adds
    /// during quantization fine-tuning to model `Qn(·)`'s clipping
    /// (Section 4.3). Applied after the skip-add; gradients are masked
    /// outside the open interval.
    pub out_clamp: Option<(f32, f32)>,
}

/// Per-layer gradients, same shapes as the parameters.
#[derive(Clone, Debug, Default)]
pub struct LayerGrads {
    /// d/dw.
    pub dw: Vec<f32>,
    /// d/db.
    pub db: Vec<f32>,
    /// d/dw1.
    pub dw1: Vec<f32>,
    /// d/db1.
    pub db1: Vec<f32>,
}

/// Forward-pass cache needed by backpropagation.
pub struct Cache {
    /// Tensor at every chain position (0 = input).
    pub vals: Vec<Tensor<f32>>,
    /// Post-activation, pre-skip layer outputs (for ReLU masking).
    pub act_out: Vec<Option<Tensor<f32>>>,
    /// ER expanded features after ReLU.
    pub mid: Vec<Option<Tensor<f32>>>,
    /// Max-pool argmax indices (flat input offsets).
    pub pool_idx: Vec<Option<Vec<u32>>>,
}

impl Cache {
    /// The model output.
    pub fn output(&self) -> &Tensor<f32> {
        self.vals.last().expect("nonempty")
    }
}

/// A trainable floating-point model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FloatModel {
    /// Name (usually the IR model name).
    pub name: String,
    /// Logical input channels.
    pub in_channels: usize,
    /// Logical output channels.
    pub out_channels: usize,
    /// Layers.
    pub layers: Vec<FloatLayer>,
}

fn he_init(rng: &mut StdRng, n: usize, fan_in: usize, gain: f32) -> Vec<f32> {
    let std = gain * (2.0 / fan_in as f32).sqrt();
    (0..n)
        .map(|_| {
            // Box-Muller normal.
            let u1: f32 = rng.gen_range(1e-9f32..1.0);
            let u2: f32 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * std
        })
        .collect()
}

impl FloatModel {
    /// Builds a randomly initialized float model from the IR.
    pub fn from_model(model: &Model, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(model.len());
        for layer in model.layers() {
            let (kind, w, b, w1, b1) = match layer.op {
                Op::Conv3x3 { in_c, out_c, act } => (
                    FopKind::Conv3 { in_c, out_c, act },
                    he_init(&mut rng, out_c * in_c * 9, in_c * 9, 1.0),
                    vec![0.0; out_c],
                    vec![],
                    vec![],
                ),
                Op::Conv1x1 { in_c, out_c, act } => (
                    FopKind::Conv1 { in_c, out_c, act },
                    he_init(&mut rng, out_c * in_c, in_c, 1.0),
                    vec![0.0; out_c],
                    vec![],
                    vec![],
                ),
                Op::ErModule {
                    channels,
                    expansion,
                } => {
                    let wide = channels * expansion;
                    (
                        FopKind::Er {
                            c: channels,
                            e: expansion,
                        },
                        he_init(&mut rng, wide * channels * 9, channels * 9, 1.0),
                        vec![0.0; wide],
                        // Residual-friendly small init on the reduction.
                        he_init(&mut rng, channels * wide, wide, 0.1),
                        vec![0.0; channels],
                    )
                }
                Op::PixelShuffle { factor } => (
                    FopKind::Shuffle { s: factor },
                    vec![],
                    vec![],
                    vec![],
                    vec![],
                ),
                Op::PixelUnshuffle { factor } => (
                    FopKind::Unshuffle { s: factor },
                    vec![],
                    vec![],
                    vec![],
                    vec![],
                ),
                Op::Downsample { kind, factor } => (
                    FopKind::Pool { kind, s: factor },
                    vec![],
                    vec![],
                    vec![],
                    vec![],
                ),
            };
            // Residual-branch layers start small (Fixup-style): without
            // normalization layers (the paper removes batch norm), deep
            // residual stacks explode at He scale.
            let mut w = w;
            if layer.skip.is_some() {
                for v in &mut w {
                    *v *= 0.1;
                }
            }
            layers.push(FloatLayer {
                kind,
                skip: layer.skip,
                w,
                b,
                w1,
                b1,
                mask: None,
                out_clamp: None,
            });
        }
        Self {
            name: model.name().to_string(),
            in_channels: model.in_channels(),
            out_channels: model.out_channels(),
            layers,
        }
    }

    /// The Fig. 2(b) ablation: an EDSR-baseline whose residual-block 3×3
    /// convolutions are replaced by depthwise 3×3 + pointwise 1×1 pairs.
    pub fn edsr_depthwise(scale: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = 64usize;
        let mut layers: Vec<FloatLayer> = Vec::new();
        let conv3 = |rng: &mut StdRng, in_c: usize, out_c: usize, act: Activation| FloatLayer {
            kind: FopKind::Conv3 { in_c, out_c, act },
            skip: None,
            w: he_init(rng, out_c * in_c * 9, in_c * 9, 1.0),
            b: vec![0.0; out_c],
            w1: vec![],
            b1: vec![],
            mask: None,
            out_clamp: None,
        };
        let dw = |rng: &mut StdRng, act: Activation| FloatLayer {
            kind: FopKind::Dw3 { c, act },
            skip: None,
            w: he_init(rng, c * 9, 9, 1.0),
            b: vec![0.0; c],
            w1: vec![],
            b1: vec![],
            mask: None,
            out_clamp: None,
        };
        let pw = |rng: &mut StdRng, act: Activation, skip: Option<SkipRef>| FloatLayer {
            kind: FopKind::Conv1 {
                in_c: c,
                out_c: c,
                act,
            },
            skip,
            w: he_init(rng, c * c, c, if skip.is_some() { 0.1 } else { 1.0 }),
            b: vec![0.0; c],
            w1: vec![],
            b1: vec![],
            mask: None,
            out_clamp: None,
        };
        layers.push(conv3(&mut rng, 3, c, Activation::None));
        for _ in 0..16 {
            let entry = layers.len();
            layers.push(dw(&mut rng, Activation::Relu));
            layers.push(pw(&mut rng, Activation::None, None));
            layers.push(dw(&mut rng, Activation::None));
            layers.push(pw(
                &mut rng,
                Activation::None,
                Some(SkipRef::Layer(entry - 1)),
            ));
        }
        let head = 0usize;
        let mut l = conv3(&mut rng, c, c, Activation::None);
        l.skip = Some(SkipRef::Layer(head));
        layers.push(l);
        let ups = if scale == 4 { 2 } else { 1 };
        for _ in 0..ups {
            layers.push(conv3(&mut rng, c, c * 4, Activation::None));
            layers.push(FloatLayer {
                kind: FopKind::Shuffle { s: 2 },
                skip: None,
                w: vec![],
                b: vec![],
                w1: vec![],
                b1: vec![],
                mask: None,
                out_clamp: None,
            });
        }
        layers.push(conv3(&mut rng, c, 3, Activation::None));
        Self {
            name: format!("EDSR-baseline-dw-x{scale}"),
            in_channels: 3,
            out_channels: 3,
            layers,
        }
    }

    /// Total parameter count (weights + biases).
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.len() + l.b.len() + l.w1.len() + l.b1.len())
            .sum()
    }

    /// Forward pass with zero padding, caching what backprop needs.
    pub fn forward(&self, input: &Tensor<f32>) -> Cache {
        let n = self.layers.len();
        let mut cache = Cache {
            vals: Vec::with_capacity(n + 1),
            act_out: vec![None; n],
            mid: vec![None; n],
            pool_idx: vec![None; n],
        };
        cache.vals.push(input.clone());
        for (i, layer) in self.layers.iter().enumerate() {
            let x = &cache.vals[i];
            let mut out = match layer.kind {
                FopKind::Conv3 { in_c, out_c, act } => {
                    debug_assert_eq!(x.channels(), in_c);
                    let w = layer.effective_w();
                    let mut y = conv3_same(x, &w, &layer.b, out_c);
                    apply_act(&mut y, act);
                    y
                }
                FopKind::Conv1 { in_c, out_c, act } => {
                    debug_assert_eq!(x.channels(), in_c);
                    let mut y = conv1(x, &layer.w, &layer.b, out_c);
                    apply_act(&mut y, act);
                    y
                }
                FopKind::Dw3 { c, act } => {
                    debug_assert_eq!(x.channels(), c);
                    let mut y = dw3_same(x, &layer.w, &layer.b);
                    apply_act(&mut y, act);
                    y
                }
                FopKind::Er { c, e } => {
                    let w = layer.effective_w();
                    let mut mid = conv3_same(x, &w, &layer.b, c * e);
                    apply_act(&mut mid, Activation::Relu);
                    let red = conv1(&mid, &layer.w1, &layer.b1, c);
                    cache.mid[i] = Some(mid);
                    // Residual is intrinsic to the module.
                    red.add(x)
                }
                FopKind::Shuffle { s } => x.pixel_shuffle(s),
                FopKind::Unshuffle { s } => x.pixel_unshuffle(s),
                FopKind::Pool { kind, s } => {
                    let (y, idx) = pool_forward(x, kind, s);
                    cache.pool_idx[i] = Some(idx);
                    y
                }
            };
            // Cache post-act pre-skip output for ReLU masking.
            if matches!(
                layer.kind,
                FopKind::Conv3 {
                    act: Activation::Relu,
                    ..
                } | FopKind::Conv1 {
                    act: Activation::Relu,
                    ..
                } | FopKind::Dw3 {
                    act: Activation::Relu,
                    ..
                }
            ) {
                cache.act_out[i] = Some(out.clone());
            }
            if let Some(skip) = layer.skip {
                let src = match skip {
                    SkipRef::Input => &cache.vals[0],
                    SkipRef::Layer(j) => &cache.vals[j + 1],
                };
                out.add_assign(src);
            }
            if let Some((lo, hi)) = layer.out_clamp {
                for v in out.as_mut_slice() {
                    *v = v.clamp(lo, hi);
                }
            }
            cache.vals.push(out);
        }
        cache
    }

    /// Backpropagation: returns per-layer parameter gradients.
    ///
    /// `grad_out` is dLoss/dOutput (same shape as the model output).
    pub fn backward(&self, cache: &Cache, grad_out: Tensor<f32>) -> Vec<LayerGrads> {
        let n = self.layers.len();
        let mut grads: Vec<Option<Tensor<f32>>> = vec![None; n + 1];
        grads[n] = Some(grad_out);
        let mut out: Vec<LayerGrads> = (0..n).map(|_| LayerGrads::default()).collect();

        for i in (0..n).rev() {
            let mut g = grads[i + 1].take().expect("gradient flows backward");
            let layer = &self.layers[i];
            // Clipped-ReLU (quantization clamp): zero gradient at the rails.
            if let Some((lo, hi)) = layer.out_clamp {
                g = g.zip(
                    &cache.vals[i + 1],
                    |gv, v| {
                        if v > lo && v < hi {
                            gv
                        } else {
                            0.0
                        }
                    },
                );
            }
            // Skip connection: identity gradient to the source.
            if let Some(skip) = layer.skip {
                let p = match skip {
                    SkipRef::Input => 0,
                    SkipRef::Layer(j) => j + 1,
                };
                match &mut grads[p] {
                    Some(t) => t.add_assign(&g),
                    slot => *slot = Some(g.clone()),
                }
            }
            // ReLU mask on the pre-skip output.
            if let Some(a) = &cache.act_out[i] {
                g = g.zip(a, |gv, av| if av > 0.0 { gv } else { 0.0 });
            }
            let x = &cache.vals[i];
            let gin = match layer.kind {
                FopKind::Conv3 { in_c, out_c, .. } => {
                    let w = layer.effective_w();
                    let (dw, db, gin) = conv3_same_backward(x, &w, &g, in_c, out_c);
                    out[i].dw = dw;
                    out[i].db = db;
                    gin
                }
                FopKind::Conv1 { in_c, out_c, .. } => {
                    let (dw, db, gin) = conv1_backward(x, &layer.w, &g, in_c, out_c);
                    out[i].dw = dw;
                    out[i].db = db;
                    gin
                }
                FopKind::Dw3 { c, .. } => {
                    let (dw, db, gin) = dw3_backward(x, &layer.w, &g, c);
                    out[i].dw = dw;
                    out[i].db = db;
                    gin
                }
                FopKind::Er { c, e } => {
                    let mid = cache.mid[i].as_ref().expect("cached in forward");
                    // Through the 1x1 reduction.
                    let (dw1, db1, dmid) = conv1_backward(mid, &layer.w1, &g, c * e, c);
                    out[i].dw1 = dw1;
                    out[i].db1 = db1;
                    // ReLU mask on mid.
                    let dmid = dmid.zip(mid, |gv, mv| if mv > 0.0 { gv } else { 0.0 });
                    // Through the 3x3 expansion.
                    let w = layer.effective_w();
                    let (dw, db, mut gin) = conv3_same_backward(x, &w, &dmid, c, c * e);
                    out[i].dw = dw;
                    out[i].db = db;
                    // The module residual.
                    gin.add_assign(&g);
                    gin
                }
                FopKind::Shuffle { s } => g.pixel_unshuffle(s),
                FopKind::Unshuffle { s } => g.pixel_shuffle(s),
                FopKind::Pool { kind, s } => {
                    pool_backward(&g, cache.pool_idx[i].as_ref().expect("cached"), x, kind, s)
                }
            };
            match &mut grads[i] {
                Some(t) => t.add_assign(&gin),
                slot => *slot = Some(gin),
            }
        }
        // Apply pruning masks to weight gradients.
        for (layer, g) in self.layers.iter().zip(&mut out) {
            if let Some(mask) = &layer.mask {
                for (gv, m) in g.dw.iter_mut().zip(mask) {
                    *gv *= m;
                }
            }
        }
        out
    }
}

impl FloatLayer {
    /// Weights with the pruning mask applied.
    pub fn effective_w(&self) -> Vec<f32> {
        match &self.mask {
            Some(m) => self.w.iter().zip(m).map(|(w, m)| w * m).collect(),
            None => self.w.clone(),
        }
    }
}

fn apply_act(t: &mut Tensor<f32>, act: Activation) {
    if act == Activation::Relu {
        for v in t.as_mut_slice() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }
}

/// Same-size (zero-padded) 3×3 convolution, row-sliced for vectorization.
pub fn conv3_same(x: &Tensor<f32>, w: &[f32], b: &[f32], out_c: usize) -> Tensor<f32> {
    let (in_c, h, width) = x.shape();
    let mut out = Tensor::zeros(out_c, h, width);
    // `oc` indexes bias and the weight block in lockstep.
    #[allow(clippy::needless_range_loop)]
    for oc in 0..out_c {
        for y in 0..h {
            let row = &mut out.as_mut_slice()[(oc * h + y) * width..(oc * h + y) * width + width];
            for v in row.iter_mut() {
                *v = b[oc];
            }
        }
    }
    for oc in 0..out_c {
        for ic in 0..in_c {
            let wbase = (oc * in_c + ic) * 9;
            for ky in 0..3usize {
                for kx in 0..3usize {
                    let wv = w[wbase + ky * 3 + kx];
                    if wv == 0.0 {
                        continue;
                    }
                    let dy = ky as isize - 1;
                    let dx = kx as isize - 1;
                    for y in 0..h {
                        let sy = y as isize + dy;
                        if sy < 0 || sy >= h as isize {
                            continue;
                        }
                        let (x0, x1) = clip_range(dx, width);
                        let orow = (oc * h + y) * width;
                        let irow = (ic * h + sy as usize) * width;
                        let s0 = (irow as isize + dx + x0 as isize) as usize;
                        let s1 = (irow as isize + dx + x1 as isize) as usize;
                        let src = &x.as_slice()[s0..s1];
                        let dst = &mut out.as_mut_slice()[orow + x0..orow + x1];
                        for (d, s) in dst.iter_mut().zip(src) {
                            *d += wv * s;
                        }
                    }
                }
            }
        }
    }
    out
}

#[inline]
fn clip_range(dx: isize, width: usize) -> (usize, usize) {
    let x0 = if dx < 0 { (-dx) as usize } else { 0 };
    let x1 = if dx > 0 { width - dx as usize } else { width };
    (x0, x1)
}

/// Backward of [`conv3_same`]: `(dW, dB, dInput)`.
pub fn conv3_same_backward(
    x: &Tensor<f32>,
    w: &[f32],
    g: &Tensor<f32>,
    in_c: usize,
    out_c: usize,
) -> (Vec<f32>, Vec<f32>, Tensor<f32>) {
    let (_, h, width) = x.shape();
    let mut dw = vec![0.0f32; out_c * in_c * 9];
    let mut db = vec![0.0f32; out_c];
    let mut gin = Tensor::zeros(in_c, h, width);
    // `oc` addresses db, dw and the gradient rows together.
    #[allow(clippy::needless_range_loop)]
    for oc in 0..out_c {
        for y in 0..h {
            let grow = (oc * h + y) * width;
            db[oc] += g.as_slice()[grow..grow + width].iter().sum::<f32>();
        }
        for ic in 0..in_c {
            let wbase = (oc * in_c + ic) * 9;
            for ky in 0..3usize {
                for kx in 0..3usize {
                    let dy = ky as isize - 1;
                    let dx = kx as isize - 1;
                    let wv = w[wbase + ky * 3 + kx];
                    let mut dwv = 0.0f32;
                    for y in 0..h {
                        let sy = y as isize + dy;
                        if sy < 0 || sy >= h as isize {
                            continue;
                        }
                        let (x0, x1) = clip_range(dx, width);
                        let grow = (oc * h + y) * width;
                        let irow = ((ic * h + sy as usize) * width) as isize + dx;
                        let s0 = (irow + x0 as isize) as usize;
                        let s1 = (irow + x1 as isize) as usize;
                        let gsl = &g.as_slice()[grow + x0..grow + x1];
                        let xsl = &x.as_slice()[s0..s1];
                        // dW accumulation: dot(g_row, x_row).
                        let mut acc = 0.0f32;
                        for (gv, xv) in gsl.iter().zip(xsl) {
                            acc += gv * xv;
                        }
                        dwv += acc;
                        // dInput: scatter g back through the tap.
                        if wv != 0.0 {
                            let dst = &mut gin.as_mut_slice()[s0..s1];
                            for (d, gv) in dst.iter_mut().zip(gsl) {
                                *d += wv * gv;
                            }
                        }
                    }
                    dw[wbase + ky * 3 + kx] = dwv;
                }
            }
        }
    }
    (dw, db, gin)
}

/// 1×1 convolution.
pub fn conv1(x: &Tensor<f32>, w: &[f32], b: &[f32], out_c: usize) -> Tensor<f32> {
    let (in_c, h, width) = x.shape();
    let hw = h * width;
    let mut out = Tensor::zeros(out_c, h, width);
    for oc in 0..out_c {
        let orow = oc * hw;
        {
            let dst = &mut out.as_mut_slice()[orow..orow + hw];
            for v in dst.iter_mut() {
                *v = b[oc];
            }
        }
        for ic in 0..in_c {
            let wv = w[oc * in_c + ic];
            if wv == 0.0 {
                continue;
            }
            let irow = ic * hw;
            let (head, src) = {
                let s = x.as_slice();
                (orow, &s[irow..irow + hw])
            };
            let dst = &mut out.as_mut_slice()[head..head + hw];
            for (d, s) in dst.iter_mut().zip(src) {
                *d += wv * s;
            }
        }
    }
    out
}

/// Backward of [`conv1`]: `(dW, dB, dInput)`.
pub fn conv1_backward(
    x: &Tensor<f32>,
    w: &[f32],
    g: &Tensor<f32>,
    in_c: usize,
    out_c: usize,
) -> (Vec<f32>, Vec<f32>, Tensor<f32>) {
    let (_, h, width) = x.shape();
    let hw = h * width;
    let mut dw = vec![0.0f32; out_c * in_c];
    let mut db = vec![0.0f32; out_c];
    let mut gin = Tensor::zeros(in_c, h, width);
    for oc in 0..out_c {
        let grow = oc * hw;
        let gsl = &g.as_slice()[grow..grow + hw];
        db[oc] += gsl.iter().sum::<f32>();
        for ic in 0..in_c {
            let xsl = &x.as_slice()[ic * hw..(ic + 1) * hw];
            let mut acc = 0.0f32;
            for (gv, xv) in gsl.iter().zip(xsl) {
                acc += gv * xv;
            }
            dw[oc * in_c + ic] = acc;
            let wv = w[oc * in_c + ic];
            if wv != 0.0 {
                let dst = &mut gin.as_mut_slice()[ic * hw..(ic + 1) * hw];
                for (d, gv) in dst.iter_mut().zip(gsl) {
                    *d += wv * gv;
                }
            }
        }
    }
    (dw, db, gin)
}

/// Depthwise same-size 3×3 convolution (`w` is `[c][9]`).
pub fn dw3_same(x: &Tensor<f32>, w: &[f32], b: &[f32]) -> Tensor<f32> {
    let (c, h, width) = x.shape();
    let mut out = Tensor::zeros(c, h, width);
    for ch in 0..c {
        for y in 0..h {
            for xx in 0..width {
                let mut acc = b[ch];
                for ky in 0..3isize {
                    let sy = y as isize + ky - 1;
                    if sy < 0 || sy >= h as isize {
                        continue;
                    }
                    for kx in 0..3isize {
                        let sx = xx as isize + kx - 1;
                        if sx < 0 || sx >= width as isize {
                            continue;
                        }
                        acc +=
                            w[ch * 9 + (ky * 3 + kx) as usize] * x.at(ch, sy as usize, sx as usize);
                    }
                }
                *out.at_mut(ch, y, xx) = acc;
            }
        }
    }
    out
}

/// Backward of [`dw3_same`].
pub fn dw3_backward(
    x: &Tensor<f32>,
    w: &[f32],
    g: &Tensor<f32>,
    c: usize,
) -> (Vec<f32>, Vec<f32>, Tensor<f32>) {
    let (_, h, width) = x.shape();
    let mut dw = vec![0.0f32; c * 9];
    let mut db = vec![0.0f32; c];
    let mut gin = Tensor::zeros(c, h, width);
    for ch in 0..c {
        for y in 0..h {
            for xx in 0..width {
                let gv = g.at(ch, y, xx);
                db[ch] += gv;
                for ky in 0..3isize {
                    let sy = y as isize + ky - 1;
                    if sy < 0 || sy >= h as isize {
                        continue;
                    }
                    for kx in 0..3isize {
                        let sx = xx as isize + kx - 1;
                        if sx < 0 || sx >= width as isize {
                            continue;
                        }
                        let k = (ky * 3 + kx) as usize;
                        dw[ch * 9 + k] += gv * x.at(ch, sy as usize, sx as usize);
                        *gin.at_mut(ch, sy as usize, sx as usize) += gv * w[ch * 9 + k];
                    }
                }
            }
        }
    }
    (dw, db, gin)
}

fn pool_forward(x: &Tensor<f32>, kind: PoolKind, s: usize) -> (Tensor<f32>, Vec<u32>) {
    let (c, h, w) = x.shape();
    let (oh, ow) = (h / s, w / s);
    let mut idx = vec![0u32; c * oh * ow];
    let out = Tensor::from_fn(c, oh, ow, |ch, y, xx| match kind {
        PoolKind::Stride => {
            idx[(ch * oh + y) * ow + xx] = ((ch * h + y * s) * w + xx * s) as u32;
            x.at(ch, y * s, xx * s)
        }
        PoolKind::Max => {
            let mut best = f32::NEG_INFINITY;
            let mut bi = 0u32;
            for dy in 0..s {
                for dx in 0..s {
                    let v = x.at(ch, y * s + dy, xx * s + dx);
                    if v > best {
                        best = v;
                        bi = ((ch * h + y * s + dy) * w + xx * s + dx) as u32;
                    }
                }
            }
            idx[(ch * oh + y) * ow + xx] = bi;
            best
        }
    });
    (out, idx)
}

fn pool_backward(
    g: &Tensor<f32>,
    idx: &[u32],
    x: &Tensor<f32>,
    _kind: PoolKind,
    _s: usize,
) -> Tensor<f32> {
    let (c, h, w) = x.shape();
    let mut gin = Tensor::zeros(c, h, w);
    for (i, &flat) in idx.iter().enumerate() {
        gin.as_mut_slice()[flat as usize] += g.as_slice()[i];
    }
    gin
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnn_model::ernet::{ErNetSpec, ErNetTask};

    fn finite_diff_check(model: &FloatModel, input: &Tensor<f32>, layer: usize, widx: usize) {
        // Loss = 0.5 * sum(out^2); dLoss/dout = out.
        let cache = model.forward(input);
        let grad_out = cache.output().clone();
        let grads = model.backward(&cache, grad_out);
        let analytic = grads[layer].dw[widx];

        let eps = 1e-3f32;
        let mut mp = model.clone();
        mp.layers[layer].w[widx] += eps;
        let lp = 0.5
            * mp.forward(input)
                .output()
                .as_slice()
                .iter()
                .map(|v| v * v)
                .sum::<f32>();
        let mut mm = model.clone();
        mm.layers[layer].w[widx] -= eps;
        let lm = 0.5
            * mm.forward(input)
                .output()
                .as_slice()
                .iter()
                .map(|v| v * v)
                .sum::<f32>();
        let numeric = (lp - lm) / (2.0 * eps);
        let denom = analytic.abs().max(numeric.abs()).max(1e-3);
        assert!(
            (analytic - numeric).abs() / denom < 0.08,
            "layer {layer} w[{widx}]: analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn conv3_gradient_matches_finite_difference() {
        let m = ecnn_model::Model::new(
            "t",
            2,
            3,
            vec![ecnn_model::Layer::new(Op::Conv3x3 {
                in_c: 2,
                out_c: 3,
                act: Activation::Relu,
            })],
        )
        .unwrap();
        let fm = FloatModel::from_model(&m, 1);
        let input = Tensor::from_fn(2, 6, 6, |c, y, x| ((c + y * 2 + x) as f32 * 0.13).sin());
        for widx in [0, 7, 25, 53] {
            finite_diff_check(&fm, &input, 0, widx);
        }
    }

    #[test]
    fn er_module_gradient_matches_finite_difference() {
        let m = ecnn_model::Model::new(
            "t",
            8,
            8,
            vec![ecnn_model::Layer::new(Op::ErModule {
                channels: 8,
                expansion: 2,
            })],
        )
        .unwrap();
        let mut fm = FloatModel::from_model(&m, 2);
        // Push the expanded features away from the ReLU kink so the finite
        // difference is well-conditioned.
        for b in &mut fm.layers[0].b {
            *b = 0.5;
        }
        let input = Tensor::from_fn(8, 5, 5, |c, y, x| ((c * 3 + y + x) as f32 * 0.07).cos());
        for widx in [0, 100, 500] {
            finite_diff_check(&fm, &input, 0, widx);
        }
        // Also check the 1x1 reduction.
        let cache = fm.forward(&input);
        let grads = fm.backward(&cache, cache.output().clone());
        assert!(grads[0].dw1.iter().any(|&g| g != 0.0));
        assert!(grads[0].db1.iter().any(|&g| g != 0.0));
    }

    #[test]
    fn skip_connection_gradients_flow() {
        // conv -> conv+skip(head): the head conv must receive gradient from
        // both paths.
        let m = ecnn_model::Model::new(
            "t",
            2,
            2,
            vec![
                ecnn_model::Layer::new(Op::Conv3x3 {
                    in_c: 2,
                    out_c: 2,
                    act: Activation::None,
                }),
                ecnn_model::Layer::with_skip(
                    Op::Conv3x3 {
                        in_c: 2,
                        out_c: 2,
                        act: Activation::None,
                    },
                    SkipRef::Layer(0),
                ),
            ],
        )
        .unwrap();
        let fm = FloatModel::from_model(&m, 3);
        let input = Tensor::from_fn(2, 5, 5, |c, y, x| ((c + y + x) as f32 * 0.21).sin());
        for widx in [0, 10, 30] {
            finite_diff_check(&fm, &input, 0, widx);
            finite_diff_check(&fm, &input, 1, widx);
        }
    }

    #[test]
    fn shuffle_layers_backprop_shapes() {
        let m = ecnn_model::Model::new(
            "t",
            4,
            1,
            vec![ecnn_model::Layer::new(Op::PixelShuffle { factor: 2 })],
        )
        .unwrap();
        let fm = FloatModel::from_model(&m, 4);
        let input = Tensor::from_fn(4, 3, 3, |c, y, x| (c * 9 + y * 3 + x) as f32);
        let cache = fm.forward(&input);
        assert_eq!(cache.output().shape(), (1, 6, 6));
        let grads = fm.backward(&cache, cache.output().clone());
        assert_eq!(grads.len(), 1);
    }

    #[test]
    fn max_pool_routes_gradient_to_argmax() {
        let m = ecnn_model::Model::new(
            "t",
            1,
            1,
            vec![ecnn_model::Layer::new(Op::Downsample {
                kind: PoolKind::Max,
                factor: 2,
            })],
        )
        .unwrap();
        let fm = FloatModel::from_model(&m, 5);
        let mut input = Tensor::zeros(1, 4, 4);
        *input.at_mut(0, 1, 1) = 5.0; // argmax of the first window
        let cache = fm.forward(&input);
        assert_eq!(cache.output().at(0, 0, 0), 5.0);
        let mut g = Tensor::zeros(1, 2, 2);
        *g.at_mut(0, 0, 0) = 1.0;
        // No parameters; run backward via public API on a model wrapper.
        let grads = fm.backward(&cache, g);
        assert!(grads[0].dw.is_empty());
    }

    #[test]
    fn ernet_float_model_builds_and_runs() {
        let ir = ErNetSpec::new(ErNetTask::Sr2, 2, 2, 1).build().unwrap();
        let fm = FloatModel::from_model(&ir, 7);
        assert_eq!(fm.param_count(), ir.param_count());
        let input = Tensor::from_fn(3, 8, 8, |c, y, x| ((c + y + x) as f32 * 0.05).fract());
        let cache = fm.forward(&input);
        assert_eq!(cache.output().shape(), (3, 16, 16));
    }

    #[test]
    fn pruning_mask_zeroes_weights_and_grads() {
        let m = ecnn_model::Model::new(
            "t",
            2,
            2,
            vec![ecnn_model::Layer::new(Op::Conv3x3 {
                in_c: 2,
                out_c: 2,
                act: Activation::None,
            })],
        )
        .unwrap();
        let mut fm = FloatModel::from_model(&m, 8);
        let mut mask = vec![1.0f32; fm.layers[0].w.len()];
        mask[0] = 0.0;
        fm.layers[0].mask = Some(mask);
        let input = Tensor::from_fn(2, 5, 5, |c, y, x| ((c + y + x) as f32 * 0.3).sin());
        let cache = fm.forward(&input);
        let grads = fm.backward(&cache, cache.output().clone());
        assert_eq!(grads[0].dw[0], 0.0);
        assert!(grads[0].dw[1] != 0.0);
    }

    #[test]
    fn depthwise_edsr_has_far_fewer_params() {
        let full = FloatModel::from_model(&ecnn_model::zoo::edsr_baseline(2), 1);
        let dw = FloatModel::edsr_depthwise(2, 1);
        // Paper: 52-75% of complexity saved in the residual blocks.
        assert!((dw.param_count() as f64) < 0.55 * full.param_count() as f64);
        let input = Tensor::from_fn(3, 8, 8, |c, y, x| ((c + y + x) as f32 * 0.11).fract());
        assert_eq!(dw.forward(&input).output().shape(), (3, 16, 16));
    }
}
