//! The paper's three-stage training schedule (Table 3) and this
//! reproduction's scaled-down equivalents.

use crate::train::TrainConfig;
use serde::{Deserialize, Serialize};

/// One training stage's hyper-parameters, as reported in Table 3.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Stage name.
    pub name: &'static str,
    /// Training patch side (target resolution).
    pub patch: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Optimizer steps.
    pub steps: usize,
    /// Learning rate.
    pub lr: f32,
}

/// The paper's stages (GPU-scale; Table 3 uses lightweight settings for the
/// scan and heavy settings for polishing and fine-tuning).
pub fn paper_stages() -> [StageSpec; 3] {
    [
        StageSpec {
            name: "model scanning",
            patch: 48,
            batch: 16,
            steps: 100_000,
            lr: 1e-4,
        },
        StageSpec {
            name: "polishment",
            patch: 96,
            batch: 16,
            steps: 600_000,
            lr: 1e-4,
        },
        StageSpec {
            name: "quantization fine-tuning",
            patch: 96,
            batch: 16,
            steps: 100_000,
            lr: 1e-5,
        },
    ]
}

/// This reproduction's CPU-scale stages. `scale` multiplies step counts
/// (1 = the test-suite default; benches pass larger values).
pub fn repro_stages(scale: usize) -> [StageSpec; 3] {
    [
        StageSpec {
            name: "model scanning",
            patch: 24,
            batch: 4,
            steps: 40 * scale,
            lr: 2e-3,
        },
        StageSpec {
            name: "polishment",
            patch: 32,
            batch: 4,
            steps: 150 * scale,
            lr: 1e-3,
        },
        StageSpec {
            name: "quantization fine-tuning",
            patch: 32,
            batch: 4,
            steps: 40 * scale,
            lr: 2e-4,
        },
    ]
}

impl StageSpec {
    /// Converts to a [`TrainConfig`] with the given seed.
    pub fn to_train_config(&self, seed: u64) -> TrainConfig {
        TrainConfig {
            steps: self.steps,
            batch: self.batch,
            lr: self.lr,
            seed,
            threads: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_stages_match_table3_structure() {
        let s = paper_stages();
        assert_eq!(s.len(), 3);
        // The scan is lightweight: fewer steps than polishing.
        assert!(s[0].steps < s[1].steps);
        // Fine-tuning uses a reduced learning rate.
        assert!(s[2].lr < s[1].lr);
    }

    #[test]
    fn repro_stages_scale() {
        let a = repro_stages(1);
        let b = repro_stages(10);
        assert_eq!(b[1].steps, 10 * a[1].steps);
        let cfg = a[0].to_train_config(7);
        assert_eq!(cfg.steps, a[0].steps);
        assert_eq!(cfg.seed, 7);
    }
}
