//! SCALE-Sim-style systolic-array model in the classical TPU configuration
//! (Section 7.2's comparison: 256×256 PEs, 92 TOPS @ 700 MHz, 28 MB SRAM).
//!
//! Output-stationary dataflow: a convolution of `P` output pixels, `K`
//! output channels and `R·S·C` reduction length costs
//! `ceil(P/rows) × ceil(K/cols) × R·S·C` cycles — utilization collapses for
//! narrow (32-channel) imaging layers, which is one half of the paper's
//! argument; the other half is frame-based feature traffic.
//!
//! DRAM model: each layer's output feature map is written to DRAM once, and
//! read back unless it still resides in the unified buffer (ER expanded
//! features are treated as fused/consumed in place). This reproduces the
//! magnitude and resolution scaling of the paper's SCALE-Sim numbers; see
//! EXPERIMENTS.md for the residual gap.

use ecnn_core::engine::{Backend, EngineError, FrameReport, Workload};
use ecnn_model::layer::Op;
use ecnn_model::Model;
use serde::{Deserialize, Serialize};

/// Systolic-array configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TpuConfig {
    /// PE rows (output pixels fold).
    pub rows: usize,
    /// PE columns (output channels fold).
    pub cols: usize,
    /// Clock in Hz.
    pub clock_hz: f64,
    /// Unified buffer + accumulator SRAM bytes.
    pub sram_bytes: f64,
    /// Peak DRAM bandwidth, bytes/s.
    pub dram_peak_bps: f64,
}

impl TpuConfig {
    /// The classical TPU (Jouppi et al., ISCA'17): 92 TOPS @ 40 W, 28 MB.
    pub const fn classic() -> Self {
        Self {
            rows: 256,
            cols: 256,
            clock_hz: 700e6,
            sram_bytes: 28.0 * 1024.0 * 1024.0,
            dram_peak_bps: 34e9,
        }
    }

    /// Peak throughput in TOPS.
    pub fn peak_tops(&self) -> f64 {
        (self.rows * self.cols) as f64 * 2.0 * self.clock_hz / 1e12
    }
}

/// Simulation result for one model at one frame size.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TpuReport {
    /// Compute-bound frames per second.
    pub compute_fps: f64,
    /// DRAM traffic per frame in bytes.
    pub dram_bytes_per_frame: f64,
    /// Achievable fps (compute- and bandwidth-bound).
    pub fps: f64,
    /// Sustained DRAM bandwidth at the achieved rate.
    pub dram_bps: f64,
    /// Array utilization (MACs issued / peak).
    pub utilization: f64,
    /// Throughput efficiency, fps per TOPS.
    pub fps_per_tops: f64,
    /// Arithmetic intensity, TOPS per (GB/s).
    pub tops_per_gbps: f64,
}

/// Simulates frame-based inference of `model` on the systolic array.
pub fn simulate(
    model: &Model,
    cfg: &TpuConfig,
    out_width: usize,
    out_height: usize,
    feature_bits: u32,
) -> TpuReport {
    let scales = model.scale_walk();
    let channels = model.channel_walk();
    let out_scale = model.output_scale();
    let out_px = (out_width * out_height) as f64;
    let bpe = feature_bits as f64 / 8.0;

    let mut cycles = 0.0f64;
    let mut macs = 0.0f64;
    let mut dram_bytes = (out_px / (out_scale * out_scale)) * channels[0] as f64 * bpe // input
        + out_px * *channels.last().expect("nonempty") as f64 * bpe; // output
    for (i, layer) in model.layers().iter().enumerate() {
        let rel = scales[i + 1] / out_scale;
        let p = out_px * rel * rel;
        // Convolution geometry per layer kind; ER = fused 3x3 + 1x1.
        let convs: Vec<(usize, usize, usize)> = match layer.op {
            Op::Conv3x3 { in_c, out_c, .. } => vec![(in_c, out_c, 9)],
            Op::Conv1x1 { in_c, out_c, .. } => vec![(in_c, out_c, 1)],
            Op::ErModule {
                channels: c,
                expansion,
            } => {
                vec![(c, c * expansion, 9), (c * expansion, c, 1)]
            }
            _ => vec![],
        };
        for (in_c, out_c, taps) in convs {
            let fold = (p / cfg.rows as f64).ceil() * (out_c as f64 / cfg.cols as f64).ceil();
            cycles += fold * (taps * in_c) as f64;
            macs += p * (in_c * out_c * taps) as f64;
        }
        // Feature traffic: every layer output is written once; read back
        // only when it cannot stay resident until its consumer runs (a
        // ~4 MB margin of the unified buffer is reserved for streaming
        // tiles and weights).
        if layer.op.has_params() && i + 1 < model.len() {
            let bytes = p * layer.op.out_channels(channels[i]) as f64 * bpe;
            dram_bytes += bytes; // write
            if bytes > cfg.sram_bytes - 4.0 * 1024.0 * 1024.0 {
                dram_bytes += bytes; // evicted before the next layer reads it
            }
        }
    }
    let compute_fps = cfg.clock_hz / cycles;
    let bw_fps = cfg.dram_peak_bps / dram_bytes;
    let fps = compute_fps.min(bw_fps);
    let utilization = macs / (cycles * (cfg.rows * cfg.cols) as f64);
    let tops = macs * 2.0 * fps / 1e12;
    TpuReport {
        compute_fps,
        dram_bytes_per_frame: dram_bytes,
        fps,
        dram_bps: dram_bytes * fps,
        utilization,
        fps_per_tops: fps / cfg.peak_tops(),
        tops_per_gbps: tops / (dram_bytes * fps / 1e9),
    }
}

/// The systolic-array model as an engine [`Backend`].
#[derive(Clone, Debug)]
pub struct TpuBackend {
    /// Array configuration.
    pub config: TpuConfig,
    /// Feature width used on-wire (the Section 7.2 comparison runs the
    /// TPU with 8-bit features, independent of the workload's Eq.-1
    /// feature width).
    pub feature_bits: u32,
    /// Reported board power, when known.
    pub power_w: Option<f64>,
}

impl TpuBackend {
    /// The classical TPU: 92 TOPS @ 40 W, 28 MB of unified buffer.
    pub fn classic() -> Self {
        Self {
            config: TpuConfig::classic(),
            feature_bits: 8,
            power_w: Some(40.0),
        }
    }
}

impl Default for TpuBackend {
    fn default() -> Self {
        Self::classic()
    }
}

impl Backend for TpuBackend {
    fn name(&self) -> &str {
        "tpu"
    }

    fn frame_report(&self, workload: &Workload) -> Result<FrameReport, EngineError> {
        let model = workload.model();
        let spec = workload.spec;
        let r = simulate(
            model,
            &self.config,
            spec.width,
            spec.height,
            self.feature_bits,
        );
        let rate = r.fps.min(spec.fps);
        Ok(FrameReport {
            backend: self.name().into(),
            workload: model.name().to_string(),
            spec,
            fps: r.fps,
            meets_realtime: r.fps >= spec.fps,
            dram_bytes_per_frame: r.dram_bytes_per_frame,
            dram_bps: r.dram_bytes_per_frame * rate,
            feature_sram_bytes: self.config.sram_bytes,
            power_w: self.power_w,
            tops: Some(r.tops_per_gbps * r.dram_bytes_per_frame * rate / 1e9),
            utilization: Some(r.utilization),
            note: format!(
                "SCALE-Sim-style {}x{} output-stationary array ({:.0} TOPS peak)",
                self.config.rows,
                self.config.cols,
                self.config.peak_tops()
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnn_model::ernet::{ErNetSpec, ErNetTask};

    #[test]
    fn classic_tpu_is_92_tops() {
        assert!((TpuConfig::classic().peak_tops() - 91.75).abs() < 0.1);
    }

    #[test]
    fn sr4ernet_b17_on_tpu_is_below_realtime_uhd() {
        // Paper: SCALE-Sim gives 4K UHD 21.9 fps for SR4ERNet-B17R3N1 with
        // 12.2 GB/s of DRAM bandwidth.
        let m = ErNetSpec::new(ErNetTask::Sr4, 17, 3, 1).build().unwrap();
        let r = simulate(&m, &TpuConfig::classic(), 3840, 2160, 8);
        assert!(r.fps < 30.0, "fps {}", r.fps);
        assert!(r.fps > 10.0 && r.fps < 40.0, "fps {}", r.fps);
        // Paper reports 12.2 GB/s; our model charges the x4 tail's huge
        // post-shuffle map a second touch, landing ~2x higher (see
        // EXPERIMENTS.md). Either way: an order of magnitude above eCNN.
        let gbps = r.dram_bps / 1e9;
        assert!(gbps > 5.0 && gbps < 30.0, "dram {gbps} GB/s");
    }

    #[test]
    fn sr4ernet_b34_on_tpu_hd() {
        // Paper: Full HD 55.3 fps for SR4ERNet-B34R4N0 at 8.3 GB/s.
        let m = ErNetSpec::new(ErNetTask::Sr4, 34, 4, 0).build().unwrap();
        let r = simulate(&m, &TpuConfig::classic(), 1920, 1080, 8);
        assert!(r.fps > 25.0 && r.fps < 90.0, "fps {}", r.fps);
    }

    #[test]
    fn narrow_layers_waste_the_array() {
        // 32-channel layers can use at most 32/256 of the columns.
        let m = ErNetSpec::new(ErNetTask::Dn, 3, 1, 0).build().unwrap();
        let r = simulate(&m, &TpuConfig::classic(), 1920, 1080, 8);
        assert!(r.utilization < 0.30, "util {}", r.utilization);
    }

    #[test]
    fn ecnn_beats_tpu_on_arithmetic_intensity() {
        // The paper's claim: 6.4x / 14.4x TOPS per GB/s advantage. Block-based
        // eCNN traffic for SR4 models is ~0.2-0.9 GB/s at these rates while
        // the TPU moves whole feature maps.
        let m = ErNetSpec::new(ErNetTask::Sr4, 17, 3, 1).build().unwrap();
        let r = simulate(&m, &TpuConfig::classic(), 3840, 2160, 8);
        // eCNN: ~41 TOPS at ~1 GB/s => ~40 TOPS/GBps; TPU here should be
        // well below 10.
        assert!(r.tops_per_gbps < 10.0, "tpu intensity {}", r.tops_per_gbps);
    }
}
