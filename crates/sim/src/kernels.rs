//! Flat-slice convolution micro-kernels, plus the kept scalar reference.
//!
//! [`execute`](crate::exec::execute) dispatches its accumulation inner
//! loops here. The fast path consumes the plan-time
//! [`PackedKernelParams`](ecnn_isa::params::PackedKernelParams) cache —
//! weights already widened to `i32` in tap-major order, biases
//! pre-aligned, zero taps masked — and drives each output row as raw
//! input-row slices with the 3 horizontal taps fused per row. Rows and
//! columns are split into a *border* (bounds-checked, zero-padded
//! inference only) and an *interior* span that runs with no bounds checks
//! and no branches, so the `i64` row accumulation auto-vectorizes.
//!
//! All kernels accumulate in exact `i64` arithmetic, so any summation
//! order produces bit-identical results; the fast kernels therefore match
//! the [`mod@reference`] kernels exactly, which the parity proptests in
//! `tests/kernel_parity.rs` enforce against the `conv3x3_fixed` /
//! `conv1x1_fixed` goldens.
//!
//! The [`mod@reference`] submodule preserves the pre-packing scalar kernels
//! verbatim: they are the baseline `bench_kernels` measures speedups
//! against (see `BENCH_kernels.json`) and the oracle of the parity suite.

use ecnn_isa::instr::{Instruction, LEAF_CH};
use ecnn_isa::params::{PackedConv1, PackedConv3};
use ecnn_model::model::InferenceKind;
use ecnn_tensor::Tensor;

pub mod simd;

use simd::SimdLevel;

/// Adds one fused 3-tap row into a fully interior accumulator span:
/// `acc[x] += t0·row[x] + t1·row[x+1] + t2·row[x+2]`. No bounds branches;
/// `row` must hold at least `acc.len() + 2` samples (the truncated-pyramid
/// geometry guarantees this for every row).
#[inline]
pub fn accum_row_interior(acc: &mut [i64], row: &[i16], taps: [i32; 3]) {
    let n = acc.len();
    let (t0, t1, t2) = (taps[0] as i64, taps[1] as i64, taps[2] as i64);
    let r0 = &row[..n];
    let r1 = &row[1..n + 1];
    let r2 = &row[2..n + 2];
    for (((a, &s0), &s1), &s2) in acc.iter_mut().zip(r0).zip(r1).zip(r2) {
        *a += t0 * s0 as i64 + t1 * s1 as i64 + t2 * s2 as i64;
    }
}

/// The zero-padded variant of [`accum_row_interior`]: `row` and `acc`
/// share a width, the first and last columns drop their out-of-image taps
/// (the border split), and the interior span runs branch-free.
#[inline]
pub fn accum_row_padded(acc: &mut [i64], row: &[i16], taps: [i32; 3]) {
    let n = acc.len();
    debug_assert_eq!(n, row.len());
    let (t0, t1, t2) = (taps[0] as i64, taps[1] as i64, taps[2] as i64);
    if n == 1 {
        acc[0] += t1 * row[0] as i64;
        return;
    }
    acc[0] += t1 * row[0] as i64 + t2 * row[1] as i64;
    if n > 2 {
        let inner = &mut acc[1..n - 1];
        let r0 = &row[..n - 2];
        let r1 = &row[1..n - 1];
        let r2 = &row[2..];
        for (((a, &s0), &s1), &s2) in inner.iter_mut().zip(r0).zip(r1).zip(r2) {
            *a += t0 * s0 as i64 + t1 * s1 as i64 + t2 * s2 as i64;
        }
    }
    acc[n - 1] += t0 * row[n - 2] as i64 + t1 * row[n - 1] as i64;
}

/// Overwrites each of `acc`'s channels with its pre-aligned bias.
pub(crate) fn fill_bias(acc: &mut Tensor<i64>, bias: &[i64]) {
    for (oc, &b) in bias.iter().enumerate() {
        acc.channel_mut(oc).fill(b);
    }
}

/// Packed 3×3 accumulation of `input` into `acc` (already shaped to
/// `out_planes·32 × chh × cw`; every element is overwritten, starting from
/// the packed biases). Masked-out tap rows and channel pairs are skipped
/// without touching the weights.
pub(crate) fn conv3_acc_packed(
    ins: &Instruction,
    input: &Tensor<i16>,
    packed: &PackedConv3,
    acc: &mut Tensor<i64>,
) {
    let (_, chh, _) = acc.shape();
    let ih = input.height();
    let origin: isize = match ins.inference {
        InferenceKind::TruncatedPyramid => 1,
        InferenceKind::ZeroPadded => 0,
    };
    fill_bias(acc, &packed.bias);
    let interior = origin == 1;
    for op_ in 0..packed.out_planes {
        for ig in 0..packed.in_groups {
            let plane = op_ * packed.in_groups + ig;
            for oc in 0..LEAF_CH {
                let out_ch = op_ * LEAF_CH + oc;
                for ic in 0..LEAF_CH {
                    let m = packed.row_mask(plane, oc, ic);
                    if m == 0 {
                        continue;
                    }
                    let chan = ig * LEAF_CH + ic;
                    for ky in 0..3usize {
                        if m & (1 << ky) == 0 {
                            continue;
                        }
                        let taps = packed.taps(plane, ky, oc, ic);
                        for y in 0..chh {
                            let sy = y as isize + ky as isize - 1 + origin;
                            if sy < 0 || sy >= ih as isize {
                                continue;
                            }
                            let row = input.row(chan, sy as usize);
                            let arow = acc.row_mut(out_ch, y);
                            if interior {
                                accum_row_interior(arow, row, taps);
                            } else {
                                accum_row_padded(arow, row, taps);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Packed 1×1 accumulation of one leaf: for every output channel, only
/// the plan-compacted nonzero input columns contribute, each as one flat
/// channel-slice multiply-add. `chan_base` offsets into `input`'s channels
/// (the leaf's 32-channel group for `CONV1`, 0 for an ER mid plane).
pub(crate) fn conv1_leaf_acc_packed(
    packed: &PackedConv1,
    leaf: usize,
    input: &Tensor<i16>,
    chan_base: usize,
    acc: &mut Tensor<i64>,
) {
    for oc in 0..LEAF_CH {
        for &(ic, wv) in packed.row(leaf, oc) {
            let wv = wv as i64;
            let src = input.channel(chan_base + ic as usize);
            for (a, &s) in acc.channel_mut(oc).iter_mut().zip(src) {
                *a += wv * s as i64;
            }
        }
    }
}

/// Overwrites each of `acc`'s channels with its pre-aligned bias,
/// truncated to `i32`. The truncating cast is exact modulo 2³², which is
/// all the narrow path needs: under the verifier's `narrow_acc` license
/// the *final* per-element sum fits `i32`, so the wrapped intermediate
/// recovers the exact value (biases whose magnitude already exceeds `i32`
/// simply start the modular accumulation from the congruent residue).
pub(crate) fn fill_bias_narrow(acc: &mut Tensor<i32>, bias: &[i64]) {
    for (oc, &b) in bias.iter().enumerate() {
        acc.channel_mut(oc).fill(b as i32);
    }
}

/// Sign-extends a narrow `i32` accumulator tensor into the shared `i64`
/// accumulator, so the epilogue (srcS, ReLU, requantization, tracing) is
/// identical for both widths.
pub(crate) fn widen_acc(dst: &mut Tensor<i64>, src: &Tensor<i32>) {
    debug_assert_eq!(dst.shape(), src.shape());
    for (d, &s) in dst.as_mut_slice().iter_mut().zip(src.as_slice()) {
        *d = s as i64;
    }
}

/// [`conv3_acc_packed`] with the row loops dispatched to the wide (`i64`)
/// SIMD kernels in [`simd`]. Bit-identical to the scalar path on every
/// input (exact `i64` accumulation is order-independent).
pub(crate) fn conv3_acc_packed_simd(
    ins: &Instruction,
    input: &Tensor<i16>,
    packed: &PackedConv3,
    acc: &mut Tensor<i64>,
    level: SimdLevel,
) {
    let (_, chh, _) = acc.shape();
    let ih = input.height();
    let origin: isize = match ins.inference {
        InferenceKind::TruncatedPyramid => 1,
        InferenceKind::ZeroPadded => 0,
    };
    fill_bias(acc, &packed.bias);
    let interior = origin == 1;
    for op_ in 0..packed.out_planes {
        for ig in 0..packed.in_groups {
            let plane = op_ * packed.in_groups + ig;
            for oc in 0..LEAF_CH {
                let out_ch = op_ * LEAF_CH + oc;
                for ic in 0..LEAF_CH {
                    let m = packed.row_mask(plane, oc, ic);
                    if m == 0 {
                        continue;
                    }
                    let chan = ig * LEAF_CH + ic;
                    for ky in 0..3usize {
                        if m & (1 << ky) == 0 {
                            continue;
                        }
                        let taps = packed.taps(plane, ky, oc, ic);
                        for y in 0..chh {
                            let sy = y as isize + ky as isize - 1 + origin;
                            if sy < 0 || sy >= ih as isize {
                                continue;
                            }
                            let row = input.row(chan, sy as usize);
                            let arow = acc.row_mut(out_ch, y);
                            if interior {
                                simd::row_interior_wide(level, arow, row, taps);
                            } else {
                                simd::row_padded_wide(level, arow, row, taps);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The verifier-licensed narrow variant of [`conv3_acc_packed_simd`]:
/// 8-wide (AVX2) `i32` lanes with wrapping accumulation. Exact — and
/// bit-identical to the wide path after [`widen_acc`] — if and only if
/// the plan carries the instruction's `narrow_acc` range proof; the
/// executor enforces that precondition.
pub(crate) fn conv3_acc_packed_simd_narrow(
    ins: &Instruction,
    input: &Tensor<i16>,
    packed: &PackedConv3,
    acc: &mut Tensor<i32>,
    level: SimdLevel,
) {
    let (_, chh, _) = acc.shape();
    let ih = input.height();
    let origin: isize = match ins.inference {
        InferenceKind::TruncatedPyramid => 1,
        InferenceKind::ZeroPadded => 0,
    };
    fill_bias_narrow(acc, &packed.bias);
    let interior = origin == 1;
    for op_ in 0..packed.out_planes {
        for ig in 0..packed.in_groups {
            let plane = op_ * packed.in_groups + ig;
            for oc in 0..LEAF_CH {
                let out_ch = op_ * LEAF_CH + oc;
                for ic in 0..LEAF_CH {
                    let m = packed.row_mask(plane, oc, ic);
                    if m == 0 {
                        continue;
                    }
                    let chan = ig * LEAF_CH + ic;
                    for ky in 0..3usize {
                        if m & (1 << ky) == 0 {
                            continue;
                        }
                        let taps = packed.taps(plane, ky, oc, ic);
                        for y in 0..chh {
                            let sy = y as isize + ky as isize - 1 + origin;
                            if sy < 0 || sy >= ih as isize {
                                continue;
                            }
                            let row = input.row(chan, sy as usize);
                            let arow = acc.row_mut(out_ch, y);
                            if interior {
                                simd::row_interior_narrow(level, arow, row, taps);
                            } else {
                                simd::row_padded_narrow(level, arow, row, taps);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// [`conv1_leaf_acc_packed`] with the flat channel MAC dispatched to the
/// wide (`i64`) SIMD kernels.
pub(crate) fn conv1_leaf_acc_packed_simd(
    packed: &PackedConv1,
    leaf: usize,
    input: &Tensor<i16>,
    chan_base: usize,
    acc: &mut Tensor<i64>,
    level: SimdLevel,
) {
    for oc in 0..LEAF_CH {
        for &(ic, wv) in packed.row(leaf, oc) {
            let src = input.channel(chan_base + ic as usize);
            simd::ch_mac_wide(level, acc.channel_mut(oc), src, wv);
        }
    }
}

/// The verifier-licensed narrow variant of [`conv1_leaf_acc_packed_simd`]
/// (same license and exactness argument as
/// [`conv3_acc_packed_simd_narrow`]).
pub(crate) fn conv1_leaf_acc_packed_simd_narrow(
    packed: &PackedConv1,
    leaf: usize,
    input: &Tensor<i16>,
    chan_base: usize,
    acc: &mut Tensor<i32>,
    level: SimdLevel,
) {
    for oc in 0..LEAF_CH {
        for &(ic, wv) in packed.row(leaf, oc) {
            let src = input.channel(chan_base + ic as usize);
            simd::ch_mac_narrow(level, acc.channel_mut(oc), src, wv);
        }
    }
}

/// The pre-packing scalar kernels, kept verbatim: per-MAC bounds-checked
/// `at()`/`at_mut()` accesses, per-pixel border branches, and per-call
/// bias `Vec` allocation. [`crate::exec::execute_with`] runs them with
/// [`crate::exec::Kernels::Reference`]; `bench_kernels` uses that path as
/// the measured baseline, and the parity proptests as the oracle.
pub mod reference {
    use super::*;

    /// Full-precision 3×3 convolution of `input` (all groups) producing
    /// `out_planes × 32` channels of `i64` accumulators in `acc` (already
    /// shaped by the caller; every element is overwritten).
    /// `weights(out_plane, in_group)` yields one leaf's 32×32×9 filter;
    /// `biases(out_plane)` yields accumulator-aligned biases.
    pub fn conv3_acc_into<'w>(
        ins: &Instruction,
        input: &Tensor<i16>,
        weights: &dyn Fn(usize, usize) -> &'w [i16],
        biases: &dyn Fn(usize) -> Vec<i64>,
        out_planes: usize,
        acc: &mut Tensor<i64>,
    ) {
        let (cw, chh) = ins.conv_out_size();
        let (ih, iw) = (input.height(), input.width());
        let origin: isize = match ins.inference {
            InferenceKind::TruncatedPyramid => 1,
            InferenceKind::ZeroPadded => 0,
        };
        debug_assert_eq!(acc.shape(), (out_planes * LEAF_CH, chh, cw));
        for op_ in 0..out_planes {
            let b = biases(op_);
            // `oc` addresses both the bias table and the plane offset.
            #[allow(clippy::needless_range_loop)]
            for oc in 0..LEAF_CH {
                for y in 0..chh {
                    for x in 0..cw {
                        *acc.at_mut(op_ * LEAF_CH + oc, y, x) = b[oc];
                    }
                }
            }
            for ig in 0..ins.in_groups {
                let w = weights(op_, ig);
                for oc in 0..LEAF_CH {
                    for ic in 0..LEAF_CH {
                        let wbase = (oc * LEAF_CH + ic) * 9;
                        let chan = ig * LEAF_CH + ic;
                        for ky in 0..3usize {
                            for kx in 0..3usize {
                                let wv = w[wbase + ky * 3 + kx] as i64;
                                if wv == 0 {
                                    continue;
                                }
                                for y in 0..chh {
                                    let sy = y as isize + ky as isize - 1 + origin;
                                    if sy < 0 || sy >= ih as isize {
                                        continue;
                                    }
                                    for x in 0..cw {
                                        let sx = x as isize + kx as isize - 1 + origin;
                                        if sx < 0 || sx >= iw as isize {
                                            continue;
                                        }
                                        *acc.at_mut(op_ * LEAF_CH + oc, y, x) +=
                                            wv * input.at(chan, sy as usize, sx as usize) as i64;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// The pre-packing 1×1 accumulation for one leaf: scalar per-pixel
    /// MACs with the zero test inside the channel loops.
    pub fn conv1_leaf_acc(
        leaf_w1: &[i16],
        input: &Tensor<i16>,
        chan_base: usize,
        acc: &mut Tensor<i64>,
    ) {
        let (_, h, w) = acc.shape();
        for oc in 0..LEAF_CH {
            for ic in 0..LEAF_CH {
                let wv = leaf_w1[oc * LEAF_CH + ic] as i64;
                if wv == 0 {
                    continue;
                }
                for y in 0..h {
                    for x in 0..w {
                        *acc.at_mut(oc, y, x) += wv * input.at(chan_base + ic, y, x) as i64;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_row_fuses_three_taps() {
        let row: Vec<i16> = (1..=6).collect();
        let mut acc = vec![100i64; 4];
        accum_row_interior(&mut acc, &row, [1, 10, 100]);
        // acc[x] += row[x] + 10*row[x+1] + 100*row[x+2]
        assert_eq!(acc, vec![100 + 321, 100 + 432, 100 + 543, 100 + 654]);
    }

    #[test]
    fn padded_row_drops_border_taps() {
        let row: Vec<i16> = vec![2, 3, 4, 5];
        let mut acc = vec![0i64; 4];
        accum_row_padded(&mut acc, &row, [1, 10, 100]);
        assert_eq!(acc[0], 10 * 2 + 100 * 3, "left border drops t0");
        assert_eq!(acc[1], 2 + 10 * 3 + 100 * 4);
        assert_eq!(acc[2], 3 + 10 * 4 + 100 * 5);
        assert_eq!(acc[3], 4 + 10 * 5, "right border drops t2");
    }

    #[test]
    fn padded_row_handles_degenerate_widths() {
        let mut acc = vec![0i64; 1];
        accum_row_padded(&mut acc, &[7], [1, 10, 100]);
        assert_eq!(acc, vec![70], "1-wide row keeps only the center tap");
        let mut acc = vec![0i64; 2];
        accum_row_padded(&mut acc, &[3, 5], [1, 10, 100]);
        assert_eq!(acc, vec![10 * 3 + 100 * 5, 3 + 10 * 5]);
    }

    #[test]
    fn padded_matches_interior_on_pre_padded_row() {
        // A padded row computed directly must equal an interior pass over
        // the same row with explicit zero padding.
        let row: Vec<i16> = vec![-3, 8, 0, 5, 2, -1, 9];
        let taps = [7, -2, 3];
        let mut padded = vec![5i64; row.len()];
        accum_row_padded(&mut padded, &row, taps);
        let mut wide = vec![0i16];
        wide.extend_from_slice(&row);
        wide.push(0);
        let mut interior = vec![5i64; row.len()];
        accum_row_interior(&mut interior, &wide, taps);
        assert_eq!(padded, interior);
    }
}
