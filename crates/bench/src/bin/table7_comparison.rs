//! Table 7: comparison of computational-imaging processors — every flow
//! (eCNN, frame-based, fused-layer, TPU, Diffy) runs the same workloads
//! through the unified `Backend` registry, plus the published IDEAL/Diffy
//! operating points.

use ecnn_baselines::diffy::{DIFFY_FFDNET, DIFFY_VDSR, IDEAL_BM3D};
use ecnn_baselines::registry;
use ecnn_baselines::tpu::TpuBackend;
use ecnn_bench::{section, workload_row};
use ecnn_core::engine::{Backend, EcnnBackend, FrameReport};
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_model::RealTimeSpec;

fn main() {
    section("Table 7 (left): published specification comparison");
    println!(
        "{:<16} {:<28} {:<14} {:<14} {:>8}",
        "processor", "workload", "spec", "DRAM", "power W"
    );
    for p in [IDEAL_BM3D, DIFFY_FFDNET, DIFFY_VDSR] {
        println!(
            "{:<16} {:<28} {:<14} {:<14} {:>8.2}",
            p.name, p.workload, p.spec, p.dram, p.power_w
        );
    }

    section("Table 7 (unified backend comparison, our simulators)");
    for (label, spec, rt) in [
        (
            "DnERNet denoise",
            ErNetSpec::new(ErNetTask::Dn, 3, 1, 0),
            RealTimeSpec::UHD30,
        ),
        (
            "SR4ERNet x4 SR",
            ErNetSpec::new(ErNetTask::Sr4, 17, 3, 1),
            RealTimeSpec::UHD30,
        ),
    ] {
        println!("\n-- {label} @ {} --", rt.name);
        let w = workload_row(spec, 128, rt);
        let reports: Vec<FrameReport> = registry()
            .iter()
            .map(|b| b.frame_report(&w).expect("all backends report"))
            .collect();
        println!("{}", FrameReport::table(&reports));
    }

    section("Table 7 (TPU / SCALE-Sim arithmetic-intensity detail)");
    let tpu = TpuBackend::classic();
    println!("TPU config: {:.0} TOPS, 28 MB SRAM", tpu.config.peak_tops());
    for (name, spec, rt, paper_fps, paper_bw) in [
        (
            "SR4ERNet-B17R3N1 @4K",
            ErNetSpec::new(ErNetTask::Sr4, 17, 3, 1),
            RealTimeSpec::UHD30,
            21.9,
            12.2,
        ),
        (
            "SR4ERNet-B34R4N0 @HD",
            ErNetSpec::new(ErNetTask::Sr4, 34, 4, 0),
            RealTimeSpec::HD30,
            55.3,
            8.3,
        ),
    ] {
        let w = workload_row(spec, 128, rt);
        let t = tpu.frame_report(&w).expect("tpu report");
        let e = EcnnBackend::paper().frame_report(&w).expect("ecnn report");
        let e_intensity = e.tops.expect("modelled") / (e.dram_bps / 1e9);
        let t_intensity = t.tops.expect("modelled") / (t.dram_bps / 1e9);
        println!(
            "{name}: TPU {:.1} fps @ {:.1} GB/s (paper {paper_fps} fps @ {paper_bw} GB/s), util {:.0}%",
            t.fps,
            t.dram_bps / 1e9,
            t.utilization.expect("modelled") * 100.0
        );
        println!(
            "  arithmetic intensity: eCNN {e_intensity:.1} vs TPU {t_intensity:.1} TOPS/(GB/s)  ->  {:.1}x advantage",
            e_intensity / t_intensity
        );
    }
    println!("(paper: 3.1x / 1.2x fps/TOPS and 6.4x / 14.4x TOPS per GB/s in eCNN's favour)");
}
