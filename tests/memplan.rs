//! The verified memory planner's contract, pinned from three sides:
//!
//! * **differential cost model** — the static [`cost_model`] totals must
//!   equal the observed `ExecStats` work counters of one block execution
//!   exactly, on every shipped paper model (the Table 4 / Appendix A
//!   matrix plus the style-transfer pair);
//! * **peak audit** — the pool's observed resident-plane high-water mark
//!   never exceeds the planner's proven peak, in both the coalesced and
//!   the keyed layout, and the coalesced saving is realized at runtime
//!   (not just on paper);
//! * **coalescing safety** — coalesced execution is bit-identical to
//!   keyed execution across random scrambled/sparsified ERNet programs,
//!   both inference kinds, all kernel variants and shard counts 1/2/4;
//!   and forged programs with overlapping lifetimes (or outright alias
//!   hazards) never get their planes merged.

use ecnn_core::engine::{Backend, EcnnBackend, Workload};
use ecnn_core::sharded::ShardedBackend;
use ecnn_isa::compile::compile;
use ecnn_isa::instr::{FeatLoc, Instruction, Opcode, QSpec};
use ecnn_isa::params::{LeafParams, QuantizedModel};
use ecnn_isa::program::Program;
use ecnn_isa::verify::memplan::{cost_model, MemoryPlan};
use ecnn_isa::verify::{verify, verify_compiled};
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_model::model::InferenceKind;
use ecnn_model::zoo;
use ecnn_model::RealTimeSpec;
use ecnn_sim::exec::{execute_with, quantize_input, BlockPlan, Kernels, PlanePool};
use ecnn_tensor::{ImageKind, QFormat, SyntheticImage, Tensor};
use proptest::prelude::*;

/// Overwrites every parameter of `qm` with seeded pseudo-random codes in
/// `[-8, 8]`, zeroing roughly `sparsity_pct`% of them (same generator as
/// the kernel-parity suite).
fn scramble(qm: &mut QuantizedModel, seed: u64, sparsity_pct: u64) {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as i64
    };
    for p in qm.layers.iter_mut().flatten() {
        for w in
            p.w3.iter_mut()
                .chain(p.w1.iter_mut())
                .chain(p.b3.iter_mut())
                .chain(p.b1.iter_mut())
        {
            let r = next();
            *w = if r.unsigned_abs() % 100 < sparsity_pct {
                0
            } else {
                (r.rem_euclid(17) - 8) as i16
            };
        }
    }
}

fn image_kind(sel: u64) -> ImageKind {
    match sel % 4 {
        0 => ImageKind::Smooth,
        1 => ImageKind::Edges,
        2 => ImageKind::Texture,
        _ => ImageKind::Mixed,
    }
}

/// The 14 shipped paper models, exactly as `ecnn-lint` enumerates them:
/// the nine Table 4 ERNet picks, the three Appendix A DnERNet-12ch
/// picks, and the Section 7.3 style-transfer pair.
fn paper_models() -> Vec<(String, QuantizedModel, usize)> {
    let mut models = Vec::new();
    for (rt, spec, xi) in ecnn_bench::model_matrix()
        .into_iter()
        .chain(ecnn_bench::dn12_matrix())
    {
        let model = spec.build().expect("paper matrix specs are valid");
        models.push((
            format!("{spec} @ {}", rt.name),
            QuantizedModel::uniform(&model),
            xi,
        ));
    }
    let (enc, dec) = zoo::style_transfer();
    let qenc = QuantizedModel::uniform(&enc);
    let enc_do_side = compile(&qenc, 256)
        .expect("style encoder compiles")
        .program
        .do_side;
    models.push(("style-encoder".into(), qenc, 256));
    models.push((
        "style-decoder".into(),
        QuantizedModel::uniform(&dec),
        enc_do_side,
    ));
    models
}

/// A deterministic valid input block for `program`, compiled at block
/// size `xi`: a synthetic RGB block for camera-facing models (the
/// executor pixel-unshuffles internally where the program asks for it),
/// pseudo-random in-format codes for feature-space inputs like the style
/// decoder's.
fn input_for(program: &Program, xi: usize, seed: u64) -> Tensor<i16> {
    if program.di_channels == 3 || program.input_unshuffle.is_some() {
        let img = SyntheticImage::new(image_kind(seed), seed % 89).rgb(xi, xi);
        quantize_input(&img, program)
    } else {
        let mut state = seed | 1;
        Tensor::from_fn(
            program.di_channels,
            program.di_side,
            program.di_side,
            |_, _, _| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                program
                    .di_q
                    .quantize(((state >> 40) & 0xff_ffff) as f32 / (1 << 24) as f32)
            },
        )
    }
}

/// Differential oracle for the static cost model: on every shipped paper
/// model the [`cost_model`] totals equal the observed work counters of
/// one block execution field by field, the verifier-side keyed-peak
/// estimate equals the simulator-side [`BlockPlan::peak_plane_bytes`],
/// the observed resident peak stays under the proven coalesced peak, and
/// the eSR-4K pick saves at least the 25% the plan promises.
#[test]
fn static_cost_model_matches_observed_work_on_the_paper_matrix() {
    let mut checked_esr4k = false;
    for (i, (name, qm, xi)) in paper_models().into_iter().enumerate() {
        let c = compile(&qm, xi).expect(&name);
        let report = verify_compiled(&c);
        assert!(!report.has_errors(), "{name}: {:?}", report.diagnostics);
        let cost = cost_model(&c.program, &report);
        let plan = BlockPlan::new(&c.program, &c.leafs).expect(&name);
        assert!(plan.coalesced(), "{name}: clean model must coalesce");
        let mem = plan.memory_plan().expect("clean model licenses a plan");
        assert_eq!(
            mem.keyed_bytes,
            plan.peak_plane_bytes(),
            "{name}: keyed audit"
        );
        assert_eq!(cost.keyed_peak_bytes, mem.keyed_bytes, "{name}");
        assert_eq!(cost.memory.as_ref(), Some(mem), "{name}");
        assert!(mem.peak_bytes < mem.keyed_bytes, "{name}: no saving");
        if name.starts_with("SR4ERNet-B17R3N1") {
            // The acceptance bar: >= 25% peak plane bytes saved on eSR-4K.
            assert!(
                mem.saved_permille() >= 250,
                "eSR-4K saves only {}permille",
                mem.saved_permille()
            );
            checked_esr4k = true;
        }

        let input = input_for(&c.program, xi, 0x5eed ^ i as u64);
        let mut pool = PlanePool::new();
        execute_with(&plan, &mut pool, &input, Kernels::Simd).expect(&name);
        let work = pool.stats().work();
        assert_eq!(cost.mac3, work.mac3, "{name}: mac3");
        assert_eq!(cost.mac1, work.mac1, "{name}: mac1");
        assert_eq!(cost.bb_read_bytes, work.bb_read_bytes, "{name}: bb_read");
        assert_eq!(cost.bb_write_bytes, work.bb_write_bytes, "{name}: bb_write");
        assert_eq!(cost.di_bytes, work.di_bytes, "{name}: di");
        assert_eq!(cost.do_bytes, work.do_bytes, "{name}: do");
        assert_eq!(cost.instructions, work.instructions, "{name}: instructions");
        // The per-instruction breakdown is consistent with the totals.
        let mac3: u64 = cost.per_instr.iter().map(|ic| ic.mac3).sum();
        let bb_read: u64 = cost.per_instr.iter().map(|ic| ic.bb_read_bytes).sum();
        assert_eq!(mac3, cost.mac3, "{name}: per-instr mac3");
        assert_eq!(bb_read, cost.bb_read_bytes, "{name}: per-instr bb_read");
        // Peak audit: the observed high-water mark respects the proof.
        assert!(
            pool.peak_resident_bytes() <= plan.planned_peak_bytes(),
            "{name}: observed {} > planned {}",
            pool.peak_resident_bytes(),
            plan.planned_peak_bytes()
        );
    }
    assert!(checked_esr4k, "the eSR-4K pick must be in the matrix");
}

/// The peak invariant holds in *both* layouts of the same program, the
/// two layouts produce bit-identical output with identical work
/// counters, and the coalesced saving shows up in the pool's observed
/// footprint — not just in the plan.
#[test]
fn observed_peak_never_exceeds_planned_in_either_layout() {
    let spec = ErNetSpec::new(ErNetTask::Dn, 3, 1, 0);
    let qm = QuantizedModel::uniform(&spec.build().unwrap());
    let c = compile(&qm, 128).unwrap();
    let plan = BlockPlan::new(&c.program, &c.leafs).unwrap();
    let mut keyed = plan.clone();
    keyed.force_keyed();
    assert!(plan.coalesced());
    assert!(!keyed.coalesced());
    assert!(keyed.memory_plan().is_none());
    assert!(plan.planned_peak_bytes() < keyed.planned_peak_bytes());

    let input = input_for(&c.program, 128, 7);
    let mut cpool = PlanePool::new();
    let cout = execute_with(&plan, &mut cpool, &input, Kernels::Packed)
        .unwrap()
        .clone();
    let mut kpool = PlanePool::new();
    let kout = execute_with(&keyed, &mut kpool, &input, Kernels::Packed)
        .unwrap()
        .clone();
    assert_eq!(cout, kout, "layouts must be bit-identical");
    assert_eq!(cpool.stats().work(), kpool.stats().work());
    assert!(cpool.peak_resident_bytes() <= plan.planned_peak_bytes());
    assert!(kpool.peak_resident_bytes() <= keyed.planned_peak_bytes());
    assert!(
        cpool.peak_resident_bytes() < kpool.peak_resident_bytes(),
        "the proven saving must be realized at runtime"
    );
}

/// The layout choice survives the engine / sharding plumbing
/// bit-identically: a coalesced engine, a keyed engine
/// (`with_coalesce(false)`) and sharded backends of both layouts at
/// shard counts 1/2/4 all produce the same image, and the engine's cost
/// report surfaces both layouts' peaks.
#[test]
fn layout_choice_survives_engines_and_shards_bit_identically() {
    let w = Workload::ernet(
        ErNetSpec::new(ErNetTask::Dn, 2, 1, 0),
        40,
        RealTimeSpec::HD30,
    )
    .unwrap();
    let img = SyntheticImage::new(ImageKind::Edges, 31).rgb(80, 80);

    let ce = EcnnBackend::paper().engine(&w).unwrap();
    let ke = EcnnBackend::paper()
        .with_coalesce(false)
        .engine(&w)
        .unwrap();
    assert!(ce.coalesced());
    assert!(!ke.coalesced());
    let (cout, _) = ce.run_image(&img).unwrap();
    let (kout, _) = ke.run_image(&img).unwrap();
    assert_eq!(cout, kout, "run_image layout parity");

    for shards in [1usize, 2, 4] {
        let sc = ShardedBackend::new(EcnnBackend::paper(), shards);
        let (a, _) = sc.run_image(&w, &img).unwrap();
        assert_eq!(a, cout, "coalesced x{shards} parity");
        let sk = ShardedBackend::new(EcnnBackend::paper().with_coalesce(false), shards);
        let (b, _) = sk.run_image(&w, &img).unwrap();
        assert_eq!(b, cout, "keyed x{shards} parity");
    }

    // Both engines agree on the static picture: one licensed plan, the
    // keyed fallback peak identical across layout choices.
    let cost = ce.cost_report();
    let mem = cost
        .memory
        .as_ref()
        .expect("clean workload licenses a plan");
    assert!(mem.peak_bytes < cost.keyed_peak_bytes);
    assert_eq!(ke.cost_report().keyed_peak_bytes, cost.keyed_peak_bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random scrambled/sparsified ERNet programs execute bit-identically
    /// coalesced and keyed, over both inference kinds and the full kernel
    /// variant matrix (packed, reference, SIMD licensed, SIMD forced
    /// wide), with identical work counters and the peak invariant holding
    /// on every run.
    #[test]
    fn coalesced_execution_is_bit_identical_to_keyed(
        seed in 0u64..1_000_000,
        b in 1usize..4,
        r in 1usize..3,
        sel in 0usize..4,
        sparsity in 0u64..70,
        padded_sel in 0u64..2,
    ) {
        let task = match sel {
            0 => ErNetTask::Dn,
            1 => ErNetTask::Sr2,
            2 => ErNetTask::Sr4,
            _ => ErNetTask::Dn12,
        };
        let inference = if padded_sel == 1 {
            InferenceKind::ZeroPadded
        } else {
            InferenceKind::TruncatedPyramid
        };
        let n = if b > 1 { 1 } else { 0 };
        let m = ErNetSpec::new(task, b, r, n)
            .build()
            .unwrap()
            .with_inference(inference);
        let mut qm = QuantizedModel::uniform(&m);
        scramble(&mut qm, seed, sparsity);
        let side = if task == ErNetTask::Dn12 { 48 } else { 32 };
        let c = compile(&qm, side).unwrap();
        let img = SyntheticImage::new(image_kind(seed), seed % 89).rgb(side, side);
        let input = quantize_input(&img, &c.program);

        let plan = BlockPlan::new(&c.program, &c.leafs).unwrap();
        // Scrambled-but-legal parameters must not cost the license: the
        // plan is a function of the program's structure, not its values.
        prop_assert!(plan.coalesced());
        let mut keyed = plan.clone();
        keyed.force_keyed();
        let mut wide = plan.clone();
        wide.force_wide();
        let mut wide_keyed = keyed.clone();
        wide_keyed.force_wide();

        for (a, bq, k) in [
            (&plan, &keyed, Kernels::Packed),
            (&plan, &keyed, Kernels::Reference),
            (&plan, &keyed, Kernels::Simd),
            (&wide, &wide_keyed, Kernels::Simd),
        ] {
            let mut cpool = PlanePool::new();
            let cout = execute_with(a, &mut cpool, &input, k).unwrap().clone();
            let mut kpool = PlanePool::new();
            let kout = execute_with(bq, &mut kpool, &input, k).unwrap().clone();
            prop_assert_eq!(&cout, &kout);
            prop_assert_eq!(cpool.stats().work(), kpool.stats().work());
            prop_assert!(cpool.peak_resident_bytes() <= a.planned_peak_bytes());
            prop_assert!(kpool.peak_resident_bytes() <= bq.planned_peak_bytes());
        }
    }
}

// --- Forged programs: the pass must refuse unsafe sharing -------------

/// One leaf whose only tap is `w` at the 3×3 center of channel 0 (same
/// fixture as the verifier suite).
fn identity_leaf(w: i16) -> LeafParams {
    let mut leaf = LeafParams::zero();
    leaf.w3[4] = w;
    leaf
}

/// A minimal DI → DO single-CONV program (truncated pyramid, 16 → 14)
/// that verifies completely clean.
fn single_conv() -> (Program, Vec<Vec<LeafParams>>) {
    let dst_q = QFormat::signed(5);
    let ins = Instruction {
        opcode: Opcode::Conv,
        inference: InferenceKind::TruncatedPyramid,
        src: FeatLoc::di(),
        dst: FeatLoc::dout(),
        src_s: None,
        in_groups: 1,
        out_groups: 1,
        expansion: 1,
        in_size: (16, 16),
        out_size: (14, 14),
        relu: false,
        pool: None,
        pool_factor: 1,
        q: QSpec {
            src: QFormat::unsigned(8),
            dst: dst_q,
            src_s: None,
            mid: None,
            w3: QFormat::signed(7),
            b3: QFormat::signed(7),
            w1: None,
            b1: None,
        },
        param_restart: 0,
        layer: 0,
    };
    let program = Program {
        name: "single-conv".into(),
        instructions: vec![ins],
        inference: InferenceKind::TruncatedPyramid,
        di_side: 16,
        di_channels: 1,
        di_q: QFormat::unsigned(8),
        do_side: 14,
        do_channels: 1,
        do_q: dst_q,
        input_unshuffle: None,
        bb_overflow: false,
    };
    (program, vec![vec![identity_leaf(1)]])
}

/// A forged (clean) program whose `BB0` plane is still live when `BB1`
/// is born: head DI→BB0, mid BB0→BB1 (a dead store — lint, not error),
/// tail BB0→DO. The planner must give the two overlapping planes
/// different slots while still folding the disjoint ones together, and
/// both layouts must execute identically.
#[test]
fn forged_overlapping_lifetimes_refuse_to_share_a_slot() {
    let (mut p, mut l) = single_conv();
    let q5 = QFormat::signed(5);
    let mut head = p.instructions[0].clone();
    head.dst = FeatLoc::bb(0);
    let mut mid = head.clone();
    mid.src = FeatLoc::bb(0);
    mid.dst = FeatLoc::bb(1);
    mid.in_size = (14, 14);
    mid.out_size = (12, 12);
    mid.q.src = q5;
    let mut tail = mid.clone();
    tail.dst = FeatLoc::dout();
    p.instructions = vec![head, mid, tail];
    p.do_side = 12;
    l = vec![l[0].clone(), vec![identity_leaf(1)], vec![identity_leaf(1)]];

    let report = verify(&p, &l);
    assert!(!report.has_errors(), "{:?}", report.diagnostics);
    let m = MemoryPlan::build(&report).expect("lints alone do not cost the license");
    // Plane table order: [DI, BB0, BB1, DO].
    assert_eq!(m.plane_slots.len(), 4);
    assert_ne!(
        m.plane_slots[1], m.plane_slots[2],
        "BB1 is born while BB0 is live — sharing would corrupt the tail read"
    );
    assert!(m.slots() < 4, "the disjoint planes must still coalesce");

    let plan = BlockPlan::new(&p, &l).unwrap();
    assert!(plan.coalesced());
    let mut keyed = plan.clone();
    keyed.force_keyed();
    let input = input_for(&p, 16, 3);
    let mut cpool = PlanePool::new();
    let cout = execute_with(&plan, &mut cpool, &input, Kernels::Reference)
        .unwrap()
        .clone();
    let mut kpool = PlanePool::new();
    let kout = execute_with(&keyed, &mut kpool, &input, Kernels::Reference)
        .unwrap()
        .clone();
    assert_eq!(cout, kout);
}

/// An alias-hazard program (in-place BB0→BB0 convolution) carries a hard
/// error: the planner refuses to emit any layout at all, and the
/// simulator's plan — if it constructs — falls back to keyed.
#[test]
fn alias_hazard_suppresses_the_coalescing_license() {
    let (mut p, mut l) = single_conv();
    let q5 = QFormat::signed(5);
    let mut head = p.instructions[0].clone();
    head.dst = FeatLoc::bb(0);
    let mut mid = head.clone();
    mid.src = FeatLoc::bb(0);
    mid.dst = FeatLoc::bb(0);
    mid.in_size = (14, 14);
    mid.out_size = (12, 12);
    mid.q.src = q5;
    let mut tail = mid.clone();
    tail.src = FeatLoc::bb(0);
    tail.dst = FeatLoc::dout();
    tail.in_size = (12, 12);
    tail.out_size = (10, 10);
    p.instructions = vec![head, mid, tail];
    p.do_side = 10;
    l = vec![l[0].clone(), vec![identity_leaf(1)], vec![identity_leaf(1)]];

    let report = verify(&p, &l);
    assert!(report.has_errors());
    assert!(
        MemoryPlan::build(&report).is_none(),
        "an erroneous report licenses no plan"
    );
    if let Ok(plan) = BlockPlan::new(&p, &l) {
        assert!(!plan.coalesced(), "unproven programs must stay keyed");
        assert!(plan.memory_plan().is_none());
    }
}
