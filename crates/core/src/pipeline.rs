//! The block-based inference pipeline: partition → recompute → stitch.

use crate::report::SystemReport;
use ecnn_dram::{DramConfig, DramPowerModel};
use ecnn_isa::compile::{compile, CompileError, CompiledProgram};
use ecnn_isa::params::QuantizedModel;
use ecnn_model::{Model, RealTimeSpec};
use ecnn_sim::cost::PowerModel;
use ecnn_sim::exec::{BlockExecutor, ExecError, ExecStats};
use ecnn_sim::timing::simulate_frame;
use ecnn_sim::EcnnConfig;
use ecnn_tensor::Tensor;
use std::fmt;

/// Pipeline errors.
#[derive(Debug)]
pub enum PipelineError {
    /// Compilation failed.
    Compile(CompileError),
    /// Block execution failed (simulator invariant violation).
    Exec(ExecError),
    /// The image cannot be processed by this deployment.
    Image(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Compile(e) => write!(f, "compile: {e}"),
            PipelineError::Exec(e) => write!(f, "execute: {e}"),
            PipelineError::Image(m) => write!(f, "image: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<CompileError> for PipelineError {
    fn from(e: CompileError) -> Self {
        PipelineError::Compile(e)
    }
}

impl From<ExecError> for PipelineError {
    fn from(e: ExecError) -> Self {
        PipelineError::Exec(e)
    }
}

/// An eCNN machine instance.
#[derive(Clone, Debug)]
pub struct Accelerator {
    config: EcnnConfig,
    power: PowerModel,
    dram_power: DramPowerModel,
}

impl Accelerator {
    /// The paper's configuration (Table 2 + Table 6 calibration).
    pub fn paper() -> Self {
        Self {
            config: EcnnConfig::paper(),
            power: PowerModel::paper_40nm(),
            dram_power: DramPowerModel::DDR4_3200,
        }
    }

    /// Custom configuration.
    pub fn new(config: EcnnConfig, power: PowerModel, dram_power: DramPowerModel) -> Self {
        Self { config, power, dram_power }
    }

    /// Machine configuration.
    pub fn config(&self) -> &EcnnConfig {
        &self.config
    }

    /// Compiles `qm` for input blocks of side `xi` and returns a runnable
    /// deployment.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] for infeasible geometry.
    pub fn deploy(&self, qm: &QuantizedModel, xi: usize) -> Result<Deployment, PipelineError> {
        let compiled = compile(qm, xi)?;
        Ok(Deployment {
            accelerator: self.clone(),
            model: qm.model.clone(),
            qm: qm.clone(),
            compiled,
        })
    }
}

/// Per-image execution statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ImageRunStats {
    /// Blocks executed.
    pub blocks: usize,
    /// Aggregated executor counters.
    pub exec: ExecStats,
}

/// A compiled model bound to a machine.
#[derive(Clone, Debug)]
pub struct Deployment {
    accelerator: Accelerator,
    model: Model,
    qm: QuantizedModel,
    compiled: CompiledProgram,
}

impl Deployment {
    /// The compiled program.
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// The source model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Runs a whole image through the block pipeline: partitions the output
    /// plane into `xo × xo` blocks, gathers each block's receptive field
    /// from the input (zero-padded beyond the frame), executes the program
    /// per block on the bit-exact simulator, and stitches the outputs.
    ///
    /// The input is an RGB (or model-channel) image in `[0,1]`; returns the
    /// output image in `[0,1]` plus run statistics.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Image`] for channel mismatches and
    /// propagates simulator errors.
    pub fn run_image(&self, image: &Tensor<f32>) -> Result<(Tensor<f32>, ImageRunStats), PipelineError> {
        let p = &self.compiled.program;
        if image.channels() != p.di_channels {
            return Err(PipelineError::Image(format!(
                "image has {} channels, model wants {}",
                image.channels(),
                p.di_channels
            )));
        }
        let scale = self.model.output_scale();
        let out_w = (image.width() as f64 * scale) as usize;
        let out_h = (image.height() as f64 * scale) as usize;
        let xo = p.do_side;
        let xi = p.di_side;
        // Border of the receptive field, in input-image pixels.
        let border = (xi as f64 - xo as f64 / scale) / 2.0;
        let mut out = Tensor::zeros(p.do_channels, out_h, out_w);
        let mut stats = ImageRunStats::default();
        let mut by = 0usize;
        while by < out_h {
            let mut bx = 0usize;
            while bx < out_w {
                // Input-block origin for this output block.
                let iy = (by as f64 / scale - border).round() as isize;
                let ix = (bx as f64 / scale - border).round() as isize;
                let block = image.crop_padded(iy, ix, xi, xi);
                let codes = block.map(|v| p.di_q.quantize(v));
                let mut ex = BlockExecutor::new(p, &self.compiled.leafs);
                let out_codes = ex.run(&codes)?;
                let s = ex.stats();
                stats.exec.mac3 += s.mac3;
                stats.exec.mac1 += s.mac1;
                stats.exec.bb_read_bytes += s.bb_read_bytes;
                stats.exec.bb_write_bytes += s.bb_write_bytes;
                stats.exec.di_bytes += s.di_bytes;
                stats.exec.do_bytes += s.do_bytes;
                stats.exec.instructions += s.instructions;
                stats.blocks += 1;
                let block_f = out_codes.map(|c| p.do_q.dequantize(c).clamp(0.0, 1.0));
                out.paste(&block_f, by, bx);
                bx += xo;
            }
            by += xo;
        }
        Ok((out, stats))
    }

    /// Frame-level timing / traffic / power report at a real-time spec's
    /// resolution.
    pub fn system_report(&self, spec: RealTimeSpec) -> SystemReport {
        let frame = simulate_frame(
            &self.compiled,
            &self.model,
            &self.accelerator.config,
            spec.width,
            spec.height,
        );
        let power = self.accelerator.power.evaluate(&frame);
        // DRAM power at the *spec* rate (the processor idles once real-time
        // is met), split read/write by DI/DO shares.
        let target_fps = spec.fps.min(frame.fps);
        let rd = frame.di_bytes_per_frame as f64 * target_fps;
        let wr = frame.do_bytes_per_frame as f64 * target_fps;
        let dram_power = self.accelerator.dram_power.power(rd, wr);
        let dram_config = DramConfig::minimal_for(rd + wr, 0.55);
        SystemReport {
            spec,
            frame,
            power,
            dram_power,
            dram_config,
            meets_realtime: false, // fixed below
        }
        .finalize()
    }

    /// The quantized model this deployment was built from.
    pub fn quantized_model(&self) -> &QuantizedModel {
        &self.qm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnn_model::ernet::{ErNetSpec, ErNetTask};
    use ecnn_model::model::InferenceKind;
    use ecnn_nn::quant::fixed_forward;
    use ecnn_tensor::{ImageKind, SyntheticImage};

    fn deploy(task: ErNetTask, b: usize, r: usize, n: usize, xi: usize) -> Deployment {
        let m = ErNetSpec::new(task, b, r, n).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        Accelerator::paper().deploy(&qm, xi).unwrap()
    }

    #[test]
    fn stitched_image_matches_whole_frame_reference_bit_exactly() {
        // The block flow with recomputed overlaps must equal running the
        // fixed-point reference on the zero-extended whole frame (valid
        // convolutions) — the paper's equivalence claim for block-based
        // inference.
        let dep = deploy(ErNetTask::Dn, 2, 1, 0, 40);
        let img = SyntheticImage::new(ImageKind::Mixed, 31).rgb(56, 56);
        let (out, stats) = dep.run_image(&img).unwrap();
        assert_eq!(out.shape(), (3, 56, 56));
        assert!(stats.blocks > 1, "must exercise stitching");

        // Reference: zero-extend by the receptive border (5 convs -> 5 px),
        // then valid fixed-point forward.
        let p = &dep.compiled().program;
        let border = (p.di_side - p.do_side) / 2;
        let qm = dep.quantized_model();
        let ext = img.crop_padded(-(border as isize), -(border as isize), 56 + 2 * border, 56 + 2 * border);
        let codes = ext.map(|v| qm.input_q.quantize(v));
        let ref_out = fixed_forward(qm, &codes);
        assert_eq!(ref_out.shape(), (3, 56, 56));
        let out_q = qm.layers.iter().rev().flatten().next().unwrap().out_q;
        let ref_f = ref_out.map(|c| out_q.dequantize(c).clamp(0.0, 1.0));
        for c in 0..3 {
            for y in 0..56 {
                for x in 0..56 {
                    assert_eq!(
                        out.at(c, y, x),
                        ref_f.at(c, y, x),
                        "mismatch at ({c},{y},{x})"
                    );
                }
            }
        }
    }

    #[test]
    fn sr_image_is_upscaled() {
        let dep = deploy(ErNetTask::Sr2, 2, 1, 0, 32);
        let img = SyntheticImage::new(ImageKind::Smooth, 5).rgb(48, 48);
        let (out, _) = dep.run_image(&img).unwrap();
        assert_eq!(out.shape(), (3, 96, 96));
    }

    #[test]
    fn system_report_dnernet_uhd30() {
        let dep = deploy(ErNetTask::Dn, 3, 1, 0, 128);
        let r = dep.system_report(RealTimeSpec::UHD30);
        assert!(r.meets_realtime, "fps {}", r.frame.fps);
        assert_eq!(r.dram_config.unwrap().name, "DDR-400");
        assert!(r.power.total_w() > 5.0 && r.power.total_w() < 8.5);
        assert!(r.dram_power.dynamic_mw() < 150.0);
    }

    #[test]
    fn channel_mismatch_is_reported() {
        let dep = deploy(ErNetTask::Dn, 1, 1, 0, 32);
        let gray = Tensor::<f32>::zeros(1, 32, 32);
        assert!(matches!(dep.run_image(&gray), Err(PipelineError::Image(_))));
    }

    #[test]
    fn zero_padded_models_deploy_at_frame_size() {
        let m = ecnn_model::zoo::recognition(10);
        let qm = QuantizedModel::uniform(&m);
        let dep = Accelerator::paper().deploy(&qm, 224).unwrap();
        assert_eq!(dep.compiled().program.inference, InferenceKind::ZeroPadded);
        assert_eq!(dep.compiled().program.do_side, 1);
        // Wide features exceed the strict 3x512KB buffers: recorded, not
        // fatal (DESIGN.md §4).
        assert!(dep.compiled().program.bb_overflow);
    }
}
