//! Fig. 21: DRAM bandwidth and dynamic power per (model, spec).

use ecnn_bench::{model_matrix, report_row, section};

fn main() {
    section("Fig. 21: DRAM bandwidth / power per (model, spec)");
    println!(
        "{:<24} {:>6} {:>10} {:>6} {:>12} {:>12}",
        "model", "spec", "GB/s", "NBR", "interface", "dyn mW"
    );
    for (rt, spec, xi) in model_matrix() {
        let r = report_row(spec, xi, rt);
        println!(
            "{:<24} {:>6} {:>10.2} {:>6.2} {:>12} {:>12.0}",
            spec.name(),
            rt.name,
            r.dram_bandwidth_bps() / 1e9,
            r.frame.nbr,
            r.dram_config.map_or("(none)", |c| c.name),
            r.dram_power.dynamic_mw()
        );
    }
    println!("(paper anchors: DnERNet 1.66 / 0.94 / 0.50 GB/s; <120 mW dynamic, 267 mW leakage)");
}
