//! Offline stand-in for `proptest`: the `proptest!` macro, `prop_assert*`
//! family and the strategy surface this workspace uses (integer / float
//! ranges and `collection::vec`).
//!
//! Cases are sampled deterministically (seeded per property name), so runs
//! are reproducible. There is no shrinking: a failing case reports the
//! sampled inputs via the assertion message instead.

use rand::prelude::*;
use std::ops::{Range, RangeInclusive};

/// How a single sampled case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A source of sampled values for one property function.
pub trait Strategy {
    /// The sampled type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

float_strategy!(f32, f64);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::Strategy;
    use rand::prelude::*;
    use std::ops::Range;

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Drives one property: samples cases, honours rejections, panics on the
/// first failure with the property name attached.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    // Seed derived from the property name: stable across runs, distinct
    // across properties.
    let seed = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(16).max(1024);
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    // Matches proptest's behaviour of giving up on
                    // overly strict assumptions rather than spinning.
                    panic!("property {name}: too many prop_assume! rejections ({rejected})");
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed after {accepted} passing case(s): {msg}");
            }
        }
    }
}

/// Everything the `proptest!` macro and its callers need in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares deterministic property tests. Mirrors `proptest::proptest!`
/// for the subset of syntax used in this workspace.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) { $($body:tt)* }
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)*
                $($body)*
                Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}
