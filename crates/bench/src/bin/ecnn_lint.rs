//! `ecnn-lint` — static verification of the shipped paper models.
//!
//! Runs the [`mod@ecnn_isa::verify`] pass (plane re-derivation, fixed-point
//! interval analysis, liveness/aliasing checks) plus the plan cross-check
//! over every compiled paper model: the Table 4 / Appendix A ERNet matrix
//! and the Section 7.3 style-transfer pair.
//!
//! Flags:
//!
//! * `--cost` — additionally run the `verify::memplan` static cost model:
//!   per-model MAC / traffic totals (proven equal to one block execution's
//!   observed work counters) and the keyed vs coalesced peak plane bytes.
//! * `--json` — machine-readable output: one JSON document on stdout
//!   (diagnostics embedded; with `--cost` also the cost/memory table) and
//!   nothing else, for CI consumption. `BENCH_memory.json` is the checked-
//!   in snapshot of `ecnn-lint --json --cost`.
//! * `--tune-check <record.json>` — standalone mode: validate a
//!   checked-in autotuning record (`bench_autotune`'s `TUNE_*.json`)
//!   instead of linting the matrix. The record must parse, its
//!   fingerprint must match a paper-matrix workload, the pinned
//!   `EngineConfig` must still build under strict verification via
//!   `EngineBuilder::tuned`, and the static cost digest must match the
//!   current cost model — all without timing a single frame, so the
//!   check is cheap enough for every CI run. Exit 0 on success, 2 on
//!   any mismatch (a stale record: re-run `bench_autotune`).
//!
//! Exit codes (CI-friendly, independent of flags):
//!
//! * `0` — every program verifies clean (no errors, no lints),
//! * `1` — lints only (warnings printed, hard guarantees hold),
//! * `2` — at least one hard error (overflow, aliasing, shape, …).

use ecnn_core::engine::Engine;
use ecnn_core::tune::{CostDigest, Fingerprint, TuningRecord};
use ecnn_isa::compile::compile;
use ecnn_isa::params::QuantizedModel;
use ecnn_isa::verify::memplan::{cost_model, CostReport};
use ecnn_isa::verify::{verify_compiled, DiagCode, Diagnostic, Severity, VerifyReport};
use ecnn_model::zoo;
use ecnn_sim::exec::{crosscheck_plan, BlockPlan};
use std::fmt::Write as _;

/// A program-level finding raised by the harness itself (compile or plan
/// failure on a model the verifier should have been able to check).
fn harness_error(detail: String) -> Diagnostic {
    Diagnostic {
        code: DiagCode::PlanDivergence,
        severity: Severity::Error,
        instr: None,
        detail,
    }
}

/// One model's lint (and optional cost) results.
struct ModelReport {
    name: String,
    instructions: usize,
    report: VerifyReport,
    cost: Option<CostReport>,
}

/// Verifies one compiled model, optionally running the static cost model.
fn lint_one(name: &str, qm: &QuantizedModel, block: usize, want_cost: bool) -> ModelReport {
    let compiled = match compile(qm, block) {
        Ok(c) => c,
        Err(e) => {
            let mut rpt = VerifyReport::default();
            rpt.diagnostics
                .push(harness_error(format!("compilation failed: {e}")));
            return ModelReport {
                name: name.to_string(),
                instructions: 0,
                report: rpt,
                cost: None,
            };
        }
    };
    let mut report = verify_compiled(&compiled);
    match BlockPlan::new(&compiled.program, &compiled.leafs) {
        Ok(plan) => {
            let divergences = crosscheck_plan(&plan, &report);
            report.diagnostics.extend(divergences);
        }
        Err(e) => report.diagnostics.push(harness_error(format!(
            "BlockPlan rejected a verifier-admitted program: {e}"
        ))),
    }
    report.rank();
    let cost = want_cost.then(|| cost_model(&compiled.program, &report));
    ModelReport {
        name: name.to_string(),
        instructions: compiled.program.instructions.len(),
        report,
        cost,
    }
}

fn print_text(m: &ModelReport) {
    let (ne, nl) = (m.report.errors().count(), m.report.lints().count());
    let verdict = match (ne, nl) {
        (0, 0) => "clean".to_string(),
        (0, l) => format!("{l} lint(s)"),
        (e, l) => format!("{e} error(s), {l} lint(s)"),
    };
    println!("{}: {} instr, {verdict}", m.name, m.instructions);
    for d in &m.report.diagnostics {
        println!("  {d}");
    }
    if let Some(cost) = &m.cost {
        println!(
            "  cost: mac3 {} mac1 {} bb_read {} bb_write {} di {} do {}",
            cost.mac3,
            cost.mac1,
            cost.bb_read_bytes,
            cost.bb_write_bytes,
            cost.di_bytes,
            cost.do_bytes
        );
        match &cost.memory {
            Some(mem) => println!(
                "  memory: keyed {} B, coalesced {} B over {} slot(s) ({} planes), saved {}.{}%",
                mem.keyed_bytes,
                mem.peak_bytes,
                mem.slots(),
                mem.plane_slots.len(),
                mem.saved_permille() / 10,
                mem.saved_permille() % 10,
            ),
            None => println!(
                "  memory: keyed {} B, no coalescing license",
                cost.keyed_peak_bytes
            ),
        }
    }
}

/// Minimal JSON string escaping (the emitted names/details are ASCII).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Hand-rolled JSON (no serializer in the offline vendor set). Key order
/// and formatting are deterministic so CI can diff the output against the
/// checked-in `BENCH_memory.json` snapshot byte for byte.
fn print_json(models: &[ModelReport], exit: i32) {
    let mut out = String::new();
    out.push_str("{\n  \"models\": [\n");
    for (i, m) in models.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"name\": {},\n      \"instructions\": {},\n      \"errors\": {},\n      \"lints\": {},\n      \"diagnostics\": [",
            json_str(&m.name),
            m.instructions,
            m.report.errors().count(),
            m.report.lints().count(),
        );
        for (j, d) in m.report.diagnostics.iter().enumerate() {
            let sev = match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            let _ = write!(
                out,
                "{}\n        {{\"code\": {}, \"severity\": \"{sev}\", \"instr\": {}, \"detail\": {}}}",
                if j == 0 { "" } else { "," },
                json_str(d.code.as_str()),
                d.instr.map_or("null".to_string(), |n| n.to_string()),
                json_str(&d.detail),
            );
        }
        if !m.report.diagnostics.is_empty() {
            out.push_str("\n      ");
        }
        out.push(']');
        if let Some(cost) = &m.cost {
            let _ = write!(
                out,
                ",\n      \"cost\": {{\n        \"mac3\": {},\n        \"mac1\": {},\n        \"bb_read\": {},\n        \"bb_write\": {},\n        \"di\": {},\n        \"do\": {},\n        \"instructions\": {}\n      }},\n      \"memory\": ",
                cost.mac3,
                cost.mac1,
                cost.bb_read_bytes,
                cost.bb_write_bytes,
                cost.di_bytes,
                cost.do_bytes,
                cost.instructions,
            );
            match &cost.memory {
                Some(mem) => {
                    let _ = write!(
                        out,
                        "{{\n        \"keyed_bytes\": {},\n        \"coalesced_bytes\": {},\n        \"slots\": {},\n        \"planes\": {},\n        \"saved_permille\": {}\n      }}",
                        mem.keyed_bytes,
                        mem.peak_bytes,
                        mem.slots(),
                        mem.plane_slots.len(),
                        mem.saved_permille(),
                    );
                }
                None => {
                    let _ = write!(
                        out,
                        "{{\n        \"keyed_bytes\": {},\n        \"coalesced_bytes\": null\n      }}",
                        cost.keyed_peak_bytes
                    );
                }
            }
        }
        let _ = write!(
            out,
            "\n    }}{}\n",
            if i + 1 == models.len() { "" } else { "," }
        );
    }
    let _ = write!(out, "  ],\n  \"exit\": {exit}\n}}");
    println!("{out}");
}

/// `--tune-check`: validates a checked-in [`TuningRecord`] against the
/// current compiler, verifier and cost model. Static only — no frame is
/// ever timed here.
fn tune_check(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ecnn-lint: cannot read {path}: {e}");
            return 2;
        }
    };
    let record = match TuningRecord::from_json(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ecnn-lint: malformed tuning record {path}: {e}");
            return 2;
        }
    };
    for (rt, spec, _xi) in ecnn_bench::model_matrix()
        .into_iter()
        .chain(ecnn_bench::dn12_matrix())
    {
        let model = spec.build().expect("paper matrix specs are valid");
        let qm = QuantizedModel::uniform(&model);
        if Fingerprint::of(&qm, rt) != record.fingerprint {
            continue;
        }
        // The record's own replay path is the check: `tuned` re-verifies
        // the fingerprint and builds under the pinned (strict) config.
        let engine = match Engine::builder()
            .quantized(qm)
            .realtime(rt)
            .tuned(record.clone())
            .build()
        {
            Ok(e) => e,
            Err(e) => {
                eprintln!("ecnn-lint: record {path} no longer builds: {e}");
                return 2;
            }
        };
        let digest = CostDigest::of(&engine.cost_report(), record.config.coalesce);
        if digest != record.cost {
            eprintln!(
                "ecnn-lint: record {path} is stale: cost digest {digest:?} != pinned {:?} \
                 -- re-run bench_autotune",
                record.cost
            );
            return 2;
        }
        println!(
            "ecnn-lint: tune record {path} ok: {} -> {} ({} MACs, {} B traffic, {} B peak)",
            record.fingerprint, record.config, digest.macs, digest.traffic, digest.peak_bytes,
        );
        return 0;
    }
    eprintln!(
        "ecnn-lint: record {path} matches no paper-matrix workload (fingerprint {})",
        record.fingerprint
    );
    2
}

fn main() {
    let mut json = false;
    let mut want_cost = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--cost" => want_cost = true,
            "--tune-check" => {
                let Some(path) = args.next() else {
                    eprintln!("ecnn-lint: --tune-check needs a record path");
                    std::process::exit(2);
                };
                std::process::exit(tune_check(&path));
            }
            other => {
                eprintln!(
                    "ecnn-lint: unknown flag {other} \
                     (expected --json, --cost and/or --tune-check <record.json>)"
                );
                std::process::exit(2);
            }
        }
    }

    let mut models: Vec<(String, QuantizedModel, usize)> = Vec::new();
    for (rt, spec, xi) in ecnn_bench::model_matrix()
        .into_iter()
        .chain(ecnn_bench::dn12_matrix())
    {
        let model = spec.build().expect("paper matrix specs are valid");
        models.push((
            format!("{spec} @ {}", rt.name),
            QuantizedModel::uniform(&model),
            xi,
        ));
    }
    let (enc, dec) = zoo::style_transfer();
    let qenc = QuantizedModel::uniform(&enc);
    let enc_do_side = compile(&qenc, 256)
        .expect("style encoder compiles")
        .program
        .do_side;
    models.push(("style-encoder".into(), qenc, 256));
    models.push((
        "style-decoder".into(),
        QuantizedModel::uniform(&dec),
        enc_do_side,
    ));

    let mut reports = Vec::with_capacity(models.len());
    let mut worst: Option<Severity> = None;
    for (name, qm, xi) in &models {
        let m = lint_one(name, qm, *xi, want_cost);
        for d in &m.report.diagnostics {
            worst = Some(worst.map_or(d.severity, |w| w.max(d.severity)));
        }
        if !json {
            print_text(&m);
        }
        reports.push(m);
    }
    let code = match worst {
        None => 0,
        Some(Severity::Warning) => 1,
        Some(Severity::Error) => 2,
    };
    if json {
        print_json(&reports, code);
    } else {
        println!("ecnn-lint: {} model(s) checked, exit {code}", reports.len());
    }
    std::process::exit(code);
}
