//! Fig. 5: block-based inference overheads.
//! (a) NBR and NCR vs the depth-input ratio β (Eq. 2/3).
//! (b) NCR vs block-buffer size for VDSR (20 layers) and SRResNet (37), L=16.

use ecnn_bench::section;
use ecnn_model::blockflow::{ncr_vs_buffer, plain_nbr, plain_ncr};
use ecnn_model::{zoo, ChannelMode};

fn main() {
    section("Fig. 5(a): NBR / NCR vs beta (plain CONV3x3 network)");
    println!("{:>6} {:>10} {:>10}", "beta", "NBR", "NCR");
    for i in 0..=9 {
        let beta = 0.05 * i as f64;
        println!(
            "{beta:>6.2} {:>10.2} {:>10.2}",
            plain_nbr(beta),
            plain_ncr(beta)
        );
    }
    println!("(paper anchors: NBR=26x at beta=0.4; ~90% recompute as beta->0.4)");

    section("Fig. 5(b): NCR vs block-buffer size (64ch, 16-bit features)");
    let vdsr = zoo::vdsr();
    let srresnet = zoo::srresnet();
    println!(
        "{:>10} {:>12} {:>12}",
        "buffer", "VDSR(D=20)", "SRResNet(D=37)"
    );
    for kb in [256, 512, 768, 1024, 1536, 2048, 3072, 4096] {
        let bytes = kb as f64 * 1024.0;
        let v = ncr_vs_buffer(&vdsr, bytes, 64, 16, ChannelMode::Algorithmic);
        let s = ncr_vs_buffer(&srresnet, bytes, 64, 16, ChannelMode::Algorithmic);
        println!(
            "{:>8}KB {:>12} {:>12}",
            kb,
            v.map_or("collapse".into(), |x| format!("{x:.2}")),
            s.map_or("collapse".into(), |x| format!("{x:.2}")),
        );
    }
    println!("(paper anchors: VDSR ~2x at 1MB; SRResNet needs ~2MB for similar NCR)");
}
