//! Network-model IR and hardware-aware analysis for the eCNN reproduction.
//!
//! This crate captures everything the paper decides *before* hardware
//! execution:
//!
//! * [`layer`] / [`model`] — a compact IR for fully-convolutional models made
//!   of the FBISA-supported operations (CONV3×3, CONV1×1, ERModule, pixel
//!   shuffle/unshuffle, downsampling, residual connections).
//! * [`ernet`] — builders for the paper's ERNet family (Section 4):
//!   `SR4ERNet-B{B}R{R}N{N}`, `SR2ERNet`, `DnERNet`, and the Appendix-A
//!   `DnERNet-12ch` variants.
//! * [`zoo`] — reference models used for comparison: VDSR, SRResNet,
//!   EDSR-baseline, and the FBISA-compatible style-transfer and object
//!   recognition networks of Section 7.3.
//! * [`complexity`] — MACs/params accounting in both *algorithmic* and
//!   *hardware* (32-channel leaf-module) conventions.
//! * [`blockflow`] — the block-based truncated-pyramid inference analysis of
//!   Section 3: closed-form NBR/NCR for plain networks (Eq. 2/3) and an
//!   exact per-layer footprint walk for arbitrary models.
//! * [`scan`] — the model-selection procedure of Section 4.2: enumerate
//!   `(B, RE)` candidates under a compute budget.
//! * [`spec`] — real-time throughput specifications (UHD30 / HD60 / HD30).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
pub mod blockflow;
pub mod complexity;
pub mod ernet;
pub mod layer;
pub mod model;
pub mod scan;
pub mod spec;
pub mod zoo;

pub use blockflow::{BlockGeometry, FootprintWalk};
pub use complexity::{ChannelMode, Complexity};
pub use ernet::{ErNetSpec, ErNetTask};
pub use layer::{Activation, Layer, Op, PoolKind, SkipRef};
pub use model::{InferenceKind, Model, ModelError};
pub use scan::{scan_candidates, Candidate};
pub use spec::RealTimeSpec;
