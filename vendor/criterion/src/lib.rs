//! Offline stand-in for `criterion`: `Criterion::bench_function`,
//! `criterion_group!` / `criterion_main!` with simple wall-clock timing
//! (median of a fixed batch; no statistics, plots or comparisons).

use std::time::{Duration, Instant};

/// Bench registry/driver.
#[derive(Default)]
pub struct Criterion {}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        for _ in 0..3 {
            std::hint::black_box(f());
        }
        let mut iters = 1u32;
        // Grow the batch until one batch takes >= 10 ms, then sample.
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let el = t.elapsed();
            if el >= Duration::from_millis(10) || iters >= 1 << 20 {
                self.samples.push(el / iters);
                break;
            }
            iters *= 2;
        }
        for _ in 0..9 {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.samples.push(t.elapsed() / iters);
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the stub's sampling is fixed.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Times `f` and prints a one-line median result.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        b.samples.sort();
        let median = b
            .samples
            .get(b.samples.len() / 2)
            .copied()
            .unwrap_or_default();
        println!(
            "{name:<40} {median:>12.2?}/iter ({} samples)",
            b.samples.len()
        );
        self
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Groups benchmark functions under one entry point. Supports both the
/// positional form and the `name/config/targets` struct form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
