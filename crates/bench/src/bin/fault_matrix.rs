//! `fault_matrix` — seeded fault-injection acceptance runs for the
//! supervised pipeline.
//!
//! Builds one engine with a deterministic [`FaultPlan`] and an identical
//! fault-free twin, streams the same synthetic frames through both (the
//! twin serially, the faulty engine through a supervised
//! [`AsyncSession`]), and verifies the supervised outputs are
//! **bit-identical** to the fault-free reference — the failure-semantics
//! contract under panics, injected corruption, stragglers and ladder
//! degradation. Prints the session's
//! [`SupervisionReport`](ecnn_core::report::SupervisionReport) and exits
//! non-zero on any divergence, so CI can run a seed × fault-kind matrix.
//!
//! Flags (all optional):
//!
//! * `--seed <u64>` — fault-plan seed (default 42). CI sweeps several.
//! * `--kind panic|delay|corrupt|mixed|ladder` — which plan to inject
//!   (default `mixed`: panic@12% + corrupt@13% of band dispatches).
//!   `ladder` uses persistent kernel-/layout-scoped corruption to force
//!   the full Simd -> Packed -> Reference -> keyed degradation walk and
//!   asserts every rung was visited.
//! * `--spec small|esr4k` — workload: `small` (default) is the tiny
//!   denoiser on 56x56 frames, milliseconds per frame, right for CI;
//!   `esr4k` is the paper's eSR-4K headline (SR x4 to UHD, 960x540
//!   inputs) — run release and expect minutes per frame.
//! * `--frames <n>` — frames to stream (default 6 small / 2 esr4k).
//! * `--workers <n>` — supervised worker pool size (default 2; `ladder`
//!   forces 1 so the walk is a strict sequence).
//!
//! Exit codes: `0` all frames bit-identical (and, for `ladder`, the full
//! walk observed); `1` divergence, unexpected frame failure, or a ladder
//! that did not reach the bottom rung.

use ecnn_core::engine::Engine;
use ecnn_core::pipe::AsyncSession;
use ecnn_core::{FaultPlan, SupervisorPolicy};
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_model::RealTimeSpec;
use ecnn_tensor::{ImageKind, SyntheticImage, Tensor};
use std::time::Duration;

struct Args {
    seed: u64,
    kind: String,
    spec: String,
    frames: Option<usize>,
    workers: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: fault_matrix [--seed N] [--kind panic|delay|corrupt|mixed|ladder] \
         [--spec small|esr4k] [--frames N] [--workers N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        seed: 42,
        kind: "mixed".to_string(),
        spec: "small".to_string(),
        frames: None,
        workers: 2,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--seed" => out.seed = value().parse().unwrap_or_else(|_| usage()),
            "--kind" => out.kind = value().to_ascii_lowercase(),
            "--spec" => out.spec = value().to_ascii_lowercase(),
            "--frames" => out.frames = Some(value().parse().unwrap_or_else(|_| usage())),
            "--workers" => out.workers = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if !matches!(
        out.kind.as_str(),
        "panic" | "delay" | "corrupt" | "mixed" | "ladder"
    ) || !matches!(out.spec.as_str(), "small" | "esr4k")
        || out.workers == 0
    {
        usage();
    }
    out
}

/// The injection plan for one matrix cell. Rates are per-mille of band
/// dispatches; every non-ladder plan stays at or under the 25% the
/// supervised session must absorb without a visible failure.
fn plan_grammar(kind: &str, seed: u64) -> String {
    match kind {
        "panic" => format!("seed={seed};panic@200"),
        "delay" => format!("seed={seed};delay@300:ms=2"),
        "corrupt" => format!("seed={seed};corrupt@250"),
        "mixed" => format!("seed={seed};panic@120;corrupt@130"),
        // Persistent corruption scoped to each rung in turn: the only way
        // through is to walk the whole ladder.
        "ladder" => format!(
            "seed={seed};corrupt@1000:persistent:kernels=simd\
             ;corrupt@1000:persistent:kernels=packed\
             ;corrupt@1000:persistent:layout=coalesced"
        ),
        _ => unreachable!("kind validated in parse_args"),
    }
}

fn main() {
    let args = parse_args();
    let (model, block, rt, side, n_frames) = match args.spec.as_str() {
        "small" => (
            ErNetSpec::new(ErNetTask::Dn, 2, 1, 0),
            40usize,
            RealTimeSpec::HD30,
            (56usize, 56usize),
            args.frames.unwrap_or(6),
        ),
        _ => (
            ErNetSpec::new(ErNetTask::Sr4, 17, 3, 1),
            128,
            RealTimeSpec::UHD30,
            (960, 540),
            args.frames.unwrap_or(2),
        ),
    };
    let workers = if args.kind == "ladder" {
        1
    } else {
        args.workers
    };
    let plan = FaultPlan::parse(&plan_grammar(&args.kind, args.seed)).expect("plan grammar");
    println!(
        "fault_matrix: {model} block {block} @ {rt} | {n_frames} frames {}x{} | \
         {workers} workers | plan [{plan}]",
        side.0, side.1
    );

    let builder = || Engine::builder().ernet(model).block(block).realtime(rt);
    let clean = builder().build().expect("fault-free engine builds");
    let faulty = builder()
        .faults(plan)
        .build()
        .expect("faulty engine builds");

    let frames: Vec<Tensor<f32>> = (0..n_frames)
        .map(|s| SyntheticImage::new(ImageKind::Mixed, 90 + s as u64).rgb(side.0, side.1))
        .collect();
    let reference = clean
        .session()
        .run_frames(frames.iter())
        .expect("fault-free reference run");

    let policy = if args.kind == "ladder" {
        SupervisorPolicy {
            max_attempts: 6,
            degrade_after: 1,
            backoff_base: Duration::from_micros(100),
            ..SupervisorPolicy::default()
        }
    } else {
        SupervisorPolicy {
            max_attempts: 8,
            backoff_base: Duration::from_micros(200),
            backoff_cap: Duration::from_millis(2),
            ..SupervisorPolicy::default()
        }
    };
    let mut session = AsyncSession::with_policy(&faulty, workers, 4, policy);
    for f in &frames {
        session.submit(f.clone()).expect("submit");
    }
    let results = match session.drain() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: supervised session lost a frame: {e}");
            std::process::exit(1);
        }
    };

    let mut mismatches = 0usize;
    for (i, (out, _)) in results.iter().enumerate() {
        if out != &reference[i] {
            eprintln!("FAIL: frame {i} diverges from the fault-free reference");
            mismatches += 1;
        }
    }
    let report = session.supervision_report();
    println!("{report}");

    if args.kind == "ladder" {
        let bottom = report.ladder.len() - 1;
        if report.stats.rung != bottom || report.stats.degradations.len() != bottom {
            eprintln!(
                "FAIL: ladder walk incomplete: rung {}/{bottom}, {} degradations",
                report.stats.rung,
                report.stats.degradations.len()
            );
            std::process::exit(1);
        }
        for ev in &report.stats.degradations {
            println!("  walked: {ev}");
        }
    }
    if mismatches > 0 {
        std::process::exit(1);
    }
    println!(
        "OK: {n_frames}/{n_frames} frames bit-identical under [{}]",
        faulty
            .fault_plan()
            .map(|p| p.to_string())
            .unwrap_or_default()
    );
}
