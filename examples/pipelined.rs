//! Pipelined serving: overlap decode -> inference -> encode with an
//! `AsyncSession`, and compare wall-clock frame throughput against the
//! serial `Session::run_frames` drain.
//!
//! ```sh
//! cargo run --release --example pipelined
//! ```

use ecnn_repro::prelude::*;
use ecnn_repro::tensor::{ImageKind, SyntheticImage, Tensor};
use std::time::Instant;

fn decode(seed: u64) -> Tensor<f32> {
    // Stand-in for a video decoder handing over one RGB frame.
    SyntheticImage::new(ImageKind::Mixed, seed).rgb(96, 128)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::builder()
        .ernet(ErNetSpec::new(ErNetTask::Dn, 2, 1, 0))
        .block(64)
        .realtime(RealTimeSpec::HD30)
        .build()?;
    let n_frames = 6u64;

    // Serial baseline: one warm session drains the queue frame by frame.
    let queue: Vec<Tensor<f32>> = (0..n_frames).map(decode).collect();
    let mut session = engine.session();
    session.run_frames(queue.iter())?; // warm-up
    let t = Instant::now();
    let serial_out = session.run_frames(queue.iter())?;
    let serial = t.elapsed();

    // Pipelined: submit returns immediately (back-pressure aside), so the
    // "decoder" keeps producing while earlier frames execute and stitch.
    let mut pipe = engine.async_session(4);
    for frame in &queue {
        pipe.submit(frame.clone())?;
    }
    pipe.drain()?; // warm every worker's plane pool
    let t = Instant::now();
    let mut tickets = Vec::new();
    for seed in 0..n_frames {
        tickets.push(pipe.submit(decode(seed))?);
    }
    // Claim results as they become ready; a serving loop would hand each
    // one to the encoder here.
    let mut outputs = Vec::new();
    for ticket in tickets {
        let (frame, stats) = pipe.wait(ticket)?;
        outputs.push((frame, stats));
    }
    let pipelined = t.elapsed();

    let mut totals = ecnn_repro::core::ImageRunStats::default();
    for (i, (frame, stats)) in outputs.iter().enumerate() {
        assert_eq!(frame, &serial_out[i], "pipelined output is bit-identical");
        totals.merge(stats);
    }
    // The workers interleaved bands of all frames on their pools;
    // `per_frame` attributes the merged counters back to one frame.
    let per_frame = totals.exec.per_frame(n_frames);
    println!(
        "per frame: {:?}, {} blocks, {} instructions, {} MACs",
        outputs[0].0.shape(),
        totals.blocks as u64 / n_frames,
        per_frame.instructions,
        per_frame.mac3 + per_frame.mac1
    );
    let fps = |d: std::time::Duration| n_frames as f64 / d.as_secs_f64();
    println!(
        "serial    run_frames : {serial:>10.2?}  ({:6.1} frames/s)",
        fps(serial)
    );
    println!(
        "pipelined x4 workers : {pipelined:>10.2?}  ({:6.1} frames/s)",
        fps(pipelined)
    );
    println!(
        "speedup: {:.2}x on {} logical cores",
        serial.as_secs_f64() / pipelined.as_secs_f64(),
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    Ok(())
}
