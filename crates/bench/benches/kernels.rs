//! Criterion micro-benchmarks for the hot kernels: the block executor
//! (one-shot, warm packed, and warm reference paths), the interior/border
//! row micro-kernels, the Huffman parameter codec, the compiler, and the
//! float trainer's conv.

use criterion::{criterion_group, criterion_main, Criterion};
use ecnn_isa::coding::{decode_segment, encode_segment};
use ecnn_isa::compile::compile;
use ecnn_isa::params::QuantizedModel;
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_nn::float_model::conv3_same;
use ecnn_sim::exec::{execute_with, BlockExecutor, BlockPlan, Kernels, PlanePool};
use ecnn_sim::kernels::{accum_row_interior, accum_row_padded};
use ecnn_tensor::{ImageKind, SyntheticImage, Tensor};
use std::hint::black_box;

fn bench_executor(c: &mut Criterion) {
    let m = ErNetSpec::new(ErNetTask::Dn, 3, 1, 0).build().unwrap();
    let qm = QuantizedModel::uniform(&m);
    let compiled = compile(&qm, 64).unwrap();
    let img = SyntheticImage::new(ImageKind::Mixed, 1).rgb(64, 64);
    let codes = img.map(|v| qm.input_q.quantize(v));
    c.bench_function("executor/dnernet_b3_block64", |b| {
        b.iter(|| {
            let mut ex = BlockExecutor::new(&compiled.program, &compiled.leafs);
            black_box(ex.run(black_box(&codes)).unwrap())
        })
    });
}

/// Packed flat-slice kernels vs the kept scalar reference, both on a warm
/// pool (steady-state frames, no plan or arena cost in the loop).
fn bench_kernel_paths(c: &mut Criterion) {
    let m = ErNetSpec::new(ErNetTask::Dn, 3, 1, 0).build().unwrap();
    let qm = QuantizedModel::uniform(&m);
    let compiled = compile(&qm, 64).unwrap();
    let plan = BlockPlan::new(&compiled.program, &compiled.leafs).unwrap();
    let img = SyntheticImage::new(ImageKind::Mixed, 1).rgb(64, 64);
    let codes = img.map(|v| qm.input_q.quantize(v));
    for (name, kind) in [
        ("executor/packed_warm_block64", Kernels::Packed),
        ("executor/reference_warm_block64", Kernels::Reference),
    ] {
        let mut pool = PlanePool::new();
        execute_with(&plan, &mut pool, &codes, kind).unwrap();
        c.bench_function(name, |b| {
            b.iter(|| {
                black_box(execute_with(&plan, &mut pool, black_box(&codes), kind).unwrap());
            })
        });
    }
}

/// The row micro-kernel itself: the branch-free interior span vs the
/// zero-padded border-splitting variant, on a 4K-wide row.
fn bench_row_kernels(c: &mut Criterion) {
    const W: usize = 3840;
    let row: Vec<i16> = (0..W + 2).map(|i| ((i * 37) % 251) as i16 - 125).collect();
    let taps = [3i32, -7, 5];
    let mut acc = vec![0i64; W];
    c.bench_function("kernels/row_interior_4k", |b| {
        b.iter(|| accum_row_interior(black_box(&mut acc), black_box(&row), black_box(taps)))
    });
    let mut acc = vec![0i64; W];
    c.bench_function("kernels/row_border_4k", |b| {
        b.iter(|| accum_row_padded(black_box(&mut acc), black_box(&row[..W]), black_box(taps)))
    });
}

fn bench_huffman(c: &mut Criterion) {
    let values: Vec<i16> = (0..9216).map(|i| ((i * 31) % 23) as i16 - 11).collect();
    c.bench_function("huffman/encode_9216", |b| {
        b.iter(|| black_box(encode_segment(black_box(&values))))
    });
    let encoded = encode_segment(&values);
    c.bench_function("huffman/decode_9216", |b| {
        b.iter(|| black_box(decode_segment(black_box(&encoded), values.len()).unwrap()))
    });
}

fn bench_compiler(c: &mut Criterion) {
    let m = ErNetSpec::new(ErNetTask::Sr4, 17, 3, 1).build().unwrap();
    let qm = QuantizedModel::uniform(&m);
    c.bench_function("compiler/sr4_b17", |b| {
        b.iter(|| black_box(compile(black_box(&qm), 128).unwrap()))
    });
}

fn bench_train_conv(c: &mut Criterion) {
    let x = Tensor::from_fn(32, 32, 32, |ch, y, xx| ((ch + y + xx) as f32 * 0.01).sin());
    let w: Vec<f32> = (0..32 * 32 * 9)
        .map(|i| (i as f32 * 0.001).sin() * 0.1)
        .collect();
    let bias = vec![0.0f32; 32];
    c.bench_function("train/conv3_same_32ch_32px", |b| {
        b.iter(|| black_box(conv3_same(black_box(&x), &w, &bias, 32)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_executor, bench_kernel_paths, bench_row_kernels, bench_huffman,
        bench_compiler, bench_train_conv
}
criterion_main!(benches);
