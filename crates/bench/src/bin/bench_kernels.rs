//! Kernel perf trajectory: times the eSR-4K single-frame path on the
//! packed flat-slice micro-kernels against the kept scalar reference path
//! (same plan, same codes, same run) and writes `BENCH_kernels.json` with
//! median ns/frame and MAC/s, so later PRs can compare against a recorded
//! baseline.
//!
//! A "frame" here is one full eSR-4K block execution: the engine's
//! UHD30 pick (ERNet SR4, B=17, R=3, N=1) at its 128-pixel input block —
//! the exact workload `Session::process` runs per block on a 4K stream.
//! Reps are configurable with `ECNN_BENCH_REPS` (default 7 packed / 3
//! reference; the reference path is an order of magnitude slower).

use ecnn_isa::compile::compile;
use ecnn_isa::params::QuantizedModel;
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_sim::exec::{execute_with, quantize_input, BlockPlan, Kernels, PlanePool};
use ecnn_tensor::{ImageKind, SyntheticImage};
use std::time::Instant;

fn median(mut ns: Vec<u128>) -> u128 {
    ns.sort_unstable();
    ns[ns.len() / 2]
}

fn env_reps(default: usize) -> usize {
    std::env::var("ECNN_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn main() {
    let spec = ErNetSpec::new(ErNetTask::Sr4, 17, 3, 1);
    let xi = 128usize;
    let m = spec.build().expect("paper model builds");
    let qm = QuantizedModel::uniform(&m);
    let compiled = compile(&qm, xi).expect("paper model compiles");
    let plan = BlockPlan::new(&compiled.program, &compiled.leafs).expect("plan");
    let img = SyntheticImage::new(ImageKind::Mixed, 9).rgb(xi, xi);
    let codes = quantize_input(&img, &compiled.program);

    ecnn_bench::section(&format!("kernel bench: {spec} block {xi}"));
    println!("packed parameter cache: {} KiB", plan.packed_bytes() / 1024);

    let mut results = Vec::new();
    let mut macs_per_frame = 0u64;
    let mut steady_allocs = u64::MAX;
    let mut params_reused = 0u64;
    for (name, kind, reps) in [
        ("packed", Kernels::Packed, env_reps(7)),
        ("reference", Kernels::Reference, env_reps(3)),
    ] {
        let mut pool = PlanePool::new();
        // Warm-up: grows the arena to its peak so timed frames are
        // steady-state.
        execute_with(&plan, &mut pool, &codes, kind).expect("warm-up");
        let warm = pool.stats();
        let mut ns = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t0 = Instant::now();
            let out = execute_with(&plan, &mut pool, &codes, kind).expect("frame");
            ns.push(t0.elapsed().as_nanos());
            std::hint::black_box(out);
        }
        let delta = pool.stats().delta_since(&warm).per_frame(reps as u64);
        macs_per_frame = delta.mac3 + delta.mac1;
        if kind == Kernels::Packed {
            steady_allocs = delta.planes_allocated;
            params_reused = delta.params_reused;
        }
        let med = median(ns);
        let mac_per_s = macs_per_frame as f64 / (med as f64 / 1e9);
        println!(
            "{name:>9}: median {:.3} ms/frame  {:.2} GMAC/s  ({reps} reps)",
            med as f64 / 1e6,
            mac_per_s / 1e9
        );
        results.push((name, med, mac_per_s, reps));
    }

    let speedup = results[1].1 as f64 / results[0].1 as f64;
    println!(
        "speedup: {speedup:.2}x  steady-state allocs/frame: {steady_allocs}  \
         packed instructions served/frame: {params_reused}"
    );

    let json = format!(
        "{{\n  \"bench\": \"esr4k_block_execution\",\n  \"model\": \"{spec}\",\n  \
         \"block\": {xi},\n  \"mac_per_frame\": {macs_per_frame},\n{}  \
         \"speedup_packed_vs_reference\": {speedup:.3},\n  \
         \"steady_state_allocs_per_frame\": {steady_allocs},\n  \
         \"packed_params_reused_per_frame\": {params_reused}\n}}\n",
        results
            .iter()
            .map(|(name, med, mac_per_s, reps)| format!(
                "  \"{name}\": {{ \"median_ns_per_frame\": {med}, \"mac_per_s\": {mac_per_s:.0}, \
                 \"reps\": {reps} }},\n"
            ))
            .collect::<String>()
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");
}
