//! Parity proptests for the flat-slice packed micro-kernels.
//!
//! Three oracles pin the kernel rewrite down:
//!
//! * the *tensor-crate goldens*: random single-conv programs must match a
//!   composition of the untouched `conv3x3_fixed` / `conv1x1_fixed`
//!   reference kernels bit-for-bit;
//! * the *kept reference path*: random ERNet programs with randomized
//!   (and sparsified) parameters must execute bit-identically under
//!   `Kernels::Packed` and `Kernels::Reference`;
//! * the *work counters*: `ExecStats::work()` (mac3/mac1/traffic) must be
//!   unchanged by the kernel selection, and warm packed execution must do
//!   zero kernel-prep allocations.

use ecnn_isa::compile::compile;
use ecnn_isa::params::QuantizedModel;
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_model::layer::{Activation, Layer, Op};
use ecnn_model::model::{InferenceKind, Model};
use ecnn_sim::exec::{execute_with, quantize_input, BlockPlan, Kernels, PlanePool};
use ecnn_tensor::conv::{conv1x1_fixed, conv3x3_fixed, FixedConvParams, Padding};
use ecnn_tensor::{ImageKind, SyntheticImage};
use proptest::prelude::*;

/// Overwrites every parameter of `qm` with seeded pseudo-random codes in
/// `[-8, 8]`, zeroing roughly `sparsity_pct`% of them so the packed
/// zero-tap/zero-column masks are exercised.
fn scramble(qm: &mut QuantizedModel, seed: u64, sparsity_pct: u64) {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as i64
    };
    for p in qm.layers.iter_mut().flatten() {
        for w in
            p.w3.iter_mut()
                .chain(p.w1.iter_mut())
                .chain(p.b3.iter_mut())
                .chain(p.b1.iter_mut())
        {
            let r = next();
            *w = if r.unsigned_abs() % 100 < sparsity_pct {
                0
            } else {
                (r.rem_euclid(17) - 8) as i16
            };
        }
    }
}

fn image_kind(sel: u64) -> ImageKind {
    match sel % 4 {
        0 => ImageKind::Smooth,
        1 => ImageKind::Edges,
        2 => ImageKind::Texture,
        _ => ImageKind::Mixed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A random head-conv + 1×1 program equals the golden reference
    /// composition, for both inference kinds.
    #[test]
    fn random_conv_programs_match_golden_composition(
        seed in 0u64..1_000_000,
        side in 12usize..28,
        sparsity in 0u64..70,
        padded_sel in 0u64..2,
    ) {
        let padded = padded_sel == 1;
        let inference = if padded {
            InferenceKind::ZeroPadded
        } else {
            InferenceKind::TruncatedPyramid
        };
        let m = Model::new(
            "conv-then-1x1",
            3,
            32,
            vec![
                Layer::new(Op::Conv3x3 { in_c: 3, out_c: 32, act: Activation::None }),
                Layer::new(Op::Conv1x1 { in_c: 32, out_c: 32, act: Activation::None }),
            ],
        )
        .unwrap()
        .with_inference(inference);
        let mut qm = QuantizedModel::uniform(&m);
        scramble(&mut qm, seed, sparsity);
        let c = compile(&qm, side).unwrap();
        let img = SyntheticImage::new(image_kind(seed), seed % 97).rgb(side, side);
        let input = img.map(|v| qm.input_q.quantize(v));

        let plan = BlockPlan::new(&c.program, &c.leafs).unwrap();
        let mut pool = PlanePool::new();
        let out = execute_with(&plan, &mut pool, &input, Kernels::Packed).unwrap();

        // Golden: hardware-padded 32ch input through the untouched
        // fixed-point reference kernels, layer by layer.
        let padding = if padded { Padding::Zero } else { Padding::Valid };
        let p0 = qm.layers[0].as_ref().unwrap();
        let mid = conv3x3_fixed(
            &input.with_channels(32),
            qm.input_q.frac() as i32,
            &FixedConvParams {
                weights: &p0.w3,
                w_format: p0.w3_q,
                bias: &p0.b3,
                b_format: p0.b3_q,
                out_format: p0.out_q,
            },
            32,
            padding,
        );
        let p1 = qm.layers[1].as_ref().unwrap();
        let golden = conv1x1_fixed(
            &mid,
            p0.out_q.frac() as i32,
            &FixedConvParams {
                weights: &p1.w1,
                w_format: p1.w1_q,
                bias: &p1.b1,
                b_format: p1.b1_q,
                out_format: p1.out_q,
            },
            32,
        );
        prop_assert_eq!(out, &golden);
    }

    /// Random ERNet programs execute bit-identically on the packed and
    /// reference kernel paths, with identical deterministic work counters,
    /// and warm packed execution performs zero kernel-prep allocations.
    #[test]
    fn packed_and_reference_paths_agree(
        seed in 0u64..1_000_000,
        b in 1usize..4,
        r in 1usize..3,
        sel in 0usize..4,
        sparsity in 0u64..70,
    ) {
        let task = match sel {
            0 => ErNetTask::Dn,
            1 => ErNetTask::Sr2,
            2 => ErNetTask::Sr4,
            _ => ErNetTask::Dn12,
        };
        let n = if b > 1 { 1 } else { 0 };
        let m = ErNetSpec::new(task, b, r, n).build().unwrap();
        let mut qm = QuantizedModel::uniform(&m);
        scramble(&mut qm, seed, sparsity);
        let side = if task == ErNetTask::Dn12 { 48 } else { 32 };
        let c = compile(&qm, side).unwrap();
        let img = SyntheticImage::new(image_kind(seed), seed % 89).rgb(side, side);
        let input = quantize_input(&img, &c.program);

        let plan = BlockPlan::new(&c.program, &c.leafs).unwrap();
        let mut fast_pool = PlanePool::new();
        let fast = execute_with(&plan, &mut fast_pool, &input, Kernels::Packed)
            .unwrap()
            .clone();
        let warm_mark = fast_pool.stats();
        let warm = execute_with(&plan, &mut fast_pool, &input, Kernels::Packed)
            .unwrap()
            .clone();
        let mut ref_pool = PlanePool::new();
        let reference = execute_with(&plan, &mut ref_pool, &input, Kernels::Reference).unwrap();

        prop_assert_eq!(&fast, reference);
        prop_assert_eq!(&warm, reference);
        // mac/traffic counters are invariant under the kernel selection.
        prop_assert_eq!(fast_pool.stats().delta_since(&warm_mark).work(), ref_pool.stats().work());
        // Steady state: the packed cache serves every instruction and the
        // arena recycles every buffer — zero kernel-prep allocations.
        let steady = fast_pool.stats().delta_since(&warm_mark);
        prop_assert_eq!(steady.planes_allocated, 0);
        prop_assert_eq!(steady.params_reused, c.program.instructions.len() as u64);
        prop_assert_eq!(ref_pool.stats().params_reused, 0);
    }
}
