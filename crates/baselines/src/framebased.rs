//! The frame-based (layer-by-layer) inference flow and its DRAM cost.
//!
//! Eq. (1): feature-map traffic for a plain network is
//! `H × W × C × (D-1) × fR × L × 2` — every intermediate map is written to
//! DRAM and read back. [`frame_based_feature_bandwidth`] generalizes this to
//! arbitrary models by walking the layer chain.

use ecnn_core::engine::{Backend, EngineError, FrameReport, Workload};
use ecnn_dram::DramConfig;
use ecnn_model::Model;

/// Compute budget granted to iso-compute baselines by default: the eCNN
/// configuration's 40.96 TOPS effective peak (Table 2).
pub const ISO_COMPUTE_TOPS: f64 = 40.96;

/// Sustainable fraction of a DRAM interface's theoretical peak.
pub(crate) const DRAM_UTILIZATION: f64 = 0.7;

/// Bytes of the 8-bit input and output images of one output frame.
pub(crate) fn image_io_bytes(model: &Model, out_width: usize, out_height: usize) -> f64 {
    let scale = model.output_scale();
    let channels = model.channel_walk();
    let out_px = (out_width * out_height) as f64;
    let in_px = out_px / (scale * scale);
    in_px * channels[0] as f64 + out_px * *channels.last().expect("nonempty") as f64
}

/// Hardware ops per output frame (algorithmic channels).
pub(crate) fn ops_per_frame(model: &Model, out_width: usize, out_height: usize) -> f64 {
    required_tops(model, out_width, out_height, 1.0) * 1e12
}

/// Shared throughput model of the frame-based-style flows (frame-based,
/// Diffy, fused-layer): an iso-compute accelerator capped by either its
/// compute budget or its DRAM interface.
pub(crate) struct IsoComputeFlow {
    /// Backend name for the report.
    pub backend: &'static str,
    /// Peak compute, TOPS.
    pub tops: f64,
    /// DRAM interface.
    pub dram: DramConfig,
    /// Feature-map DRAM bytes per frame (0 when features stay on chip).
    pub feature_bytes_per_frame: f64,
    /// On-chip feature SRAM, bytes.
    pub feature_sram_bytes: f64,
    /// Power estimate, if the flow has one.
    pub power_w: Option<f64>,
    /// Flow-specific remark.
    pub note: String,
}

impl IsoComputeFlow {
    /// Assembles the [`FrameReport`] for `workload` under this flow.
    pub fn report(self, workload: &Workload) -> FrameReport {
        let model = workload.model();
        let spec = workload.spec;
        let bytes = self.feature_bytes_per_frame + image_io_bytes(model, spec.width, spec.height);
        let opf = ops_per_frame(model, spec.width, spec.height);
        let compute_fps = self.tops * 1e12 / opf;
        let bw_fps = self.dram.peak_bytes_per_sec * DRAM_UTILIZATION / bytes;
        let fps = compute_fps.min(bw_fps);
        let rate = fps.min(spec.fps);
        FrameReport {
            backend: self.backend.into(),
            workload: model.name().to_string(),
            spec,
            fps,
            meets_realtime: fps >= spec.fps,
            dram_bytes_per_frame: bytes,
            dram_bps: bytes * rate,
            feature_sram_bytes: self.feature_sram_bytes,
            power_w: self.power_w,
            tops: Some(opf * rate / 1e12),
            utilization: None,
            note: self.note,
        }
    }
}

/// Eq. (1) verbatim, for a plain `D`-layer, `C`-channel network.
/// `feature_bits` is `L`; returns bytes per second.
pub fn eq1_plain_bandwidth(
    height: usize,
    width: usize,
    channels: usize,
    depth: usize,
    fps: f64,
    feature_bits: u32,
) -> f64 {
    (height * width * channels * (depth - 1)) as f64 * fps * (feature_bits as f64 / 8.0) * 2.0
}

/// Frame-based feature traffic for an arbitrary model: every inter-layer
/// tensor (except the input and output images) is written once and read
/// once. `out_width/height` are the *output* frame dimensions; intermediate
/// resolutions follow the model's scale walk.
pub fn frame_based_feature_bandwidth(
    model: &Model,
    out_width: usize,
    out_height: usize,
    fps: f64,
    feature_bits: u32,
) -> f64 {
    let scales = model.scale_walk();
    let channels = model.channel_walk();
    let out_scale = model.output_scale();
    let out_px = (out_width * out_height) as f64;
    let mut bytes = 0.0;
    // Positions 1..len are layer outputs; the final one is the output image.
    for p in 1..model.len() {
        // ER modules keep their expanded features internal even on a
        // frame-based accelerator only if the hardware fuses them; we charge
        // the module's 32ch output (the conservative choice matching Eq. 1).
        let rel = scales[p] / out_scale;
        let px = out_px * rel * rel;
        bytes += px * channels[p] as f64 * (feature_bits as f64 / 8.0) * 2.0;
    }
    bytes * fps
}

/// Total hardware ops per second a frame-based accelerator must deliver
/// (ops = 2 × MACs, algorithmic channels), in TOPS.
pub fn required_tops(model: &Model, out_width: usize, out_height: usize, fps: f64) -> f64 {
    ecnn_model::Complexity::of(model, ecnn_model::ChannelMode::Algorithmic)
        .tops_at((out_width * out_height) as f64 * fps)
}

/// The plain-network frame-based overhead relative to streaming the output
/// image once: `2C(D-1)/3` per Section 3 (811× for VDSR), further divided
/// by the block flow's own NBR when comparing the two flows directly.
pub fn frame_vs_block_ratio(channels: usize, depth: usize, nbr: f64) -> f64 {
    2.0 * channels as f64 * (depth as f64 - 1.0) / (3.0 * nbr)
}

/// The conventional layer-by-layer flow as an engine [`Backend`]: an
/// iso-compute accelerator whose every intermediate feature map
/// round-trips DRAM (the Section 2 motivation).
#[derive(Clone, Debug)]
pub struct FrameBasedBackend {
    /// Peak compute available to the flow, TOPS.
    pub tops: f64,
    /// DRAM interface the flow runs on.
    pub dram: DramConfig,
}

impl Default for FrameBasedBackend {
    fn default() -> Self {
        Self {
            tops: ISO_COMPUTE_TOPS,
            dram: DramConfig::DDR4_3200,
        }
    }
}

impl FrameBasedBackend {
    /// Stable backend identifier, shared by [`Backend::name`] and the
    /// report it fills.
    pub const NAME: &'static str = "frame-based";
}

impl Backend for FrameBasedBackend {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn frame_report(&self, workload: &Workload) -> Result<FrameReport, EngineError> {
        let spec = workload.spec;
        let features = frame_based_feature_bandwidth(
            workload.model(),
            spec.width,
            spec.height,
            1.0,
            workload.feature_bits,
        );
        Ok(IsoComputeFlow {
            backend: Self::NAME,
            tops: self.tops,
            dram: self.dram,
            feature_bytes_per_frame: features,
            feature_sram_bytes: 0.0,
            power_w: None,
            note: format!(
                "Eq. (1) flow at {:.1} TOPS on {}: features {:.2} GB/frame round-trip DRAM",
                self.tops,
                self.dram.name,
                features / 1e9
            ),
        }
        .report(workload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnn_model::zoo;

    #[test]
    fn vdsr_needs_303_gbps_at_hd30() {
        // Section 2: "the 20-layer 64-channel VDSR will require 303 GB/s of
        // memory bandwidth for Full HD 30 fps when using 16-bit features."
        let bw = eq1_plain_bandwidth(1080, 1920, 64, 20, 30.0, 16);
        assert!((bw / 1e9 - 302.5).abs() < 2.0, "bw {} GB/s", bw / 1e9);
        // And 4x that at UHD.
        let uhd = eq1_plain_bandwidth(2160, 3840, 64, 20, 30.0, 16);
        assert!((uhd / bw - 4.0).abs() < 1e-9);
    }

    #[test]
    fn generic_walk_matches_eq1_on_plain_networks() {
        let vdsr = zoo::vdsr();
        let generic = frame_based_feature_bandwidth(&vdsr, 1920, 1080, 30.0, 16);
        let closed = eq1_plain_bandwidth(1080, 1920, 64, 20, 30.0, 16);
        assert!(
            (generic - closed).abs() / closed < 0.01,
            "generic {generic} vs closed {closed}"
        );
    }

    #[test]
    fn sr_models_move_less_feature_traffic_than_denoisers() {
        // SR bodies run at low resolution.
        let sr = zoo::srresnet();
        let bw_sr = frame_based_feature_bandwidth(&sr, 1920, 1080, 30.0, 16);
        let bw_vdsr = frame_based_feature_bandwidth(&zoo::vdsr(), 1920, 1080, 30.0, 16);
        assert!(bw_sr < bw_vdsr);
    }

    #[test]
    fn vdsr_compute_demand_matches_paper() {
        // "VDSR already demands as high as 83 TOPS for Full HD real-time
        // applications and will require 332 TOPS for 4K UHD."
        let t_hd = required_tops(&zoo::vdsr(), 1920, 1080, 30.0);
        assert!((t_hd - 83.0).abs() < 1.0, "{t_hd}");
        let t_uhd = required_tops(&zoo::vdsr(), 3840, 2160, 30.0);
        assert!((t_uhd - 332.0).abs() < 4.0, "{t_uhd}");
    }

    #[test]
    fn frame_vs_block_overhead_is_811x_for_vdsr() {
        // Section 3: "the bandwidth overhead of the frame-based flow ...
        // is as high as 811× for VDSR" at NBR = 26 (β = 0.4), L = 16.
        let ratio = frame_vs_block_ratio(64, 20, 1.0);
        assert!((ratio - 811.0).abs() < 12.0, "ratio {ratio}");
    }
}
