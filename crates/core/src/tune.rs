//! Plan-time autotuner: search the [`EngineConfig`] space statically,
//! micro-bench only a shortlist, pin the winner as a replayable record.
//!
//! The paper hand-picks its deployment knobs (block size, worker count,
//! kernel family, plane layout) per model and resolution.
//! [`EngineBuilder::autotune`] automates that choice in three stages:
//!
//! 1. **Admit** — every enumerated candidate builds a real engine under
//!    [`VerifyMode::Strict`]. A configuration the static verifier
//!    rejects is *never timed*: no proof, no measurement.
//! 2. **Cull** — admitted candidates are ranked by the static cost
//!    model ([`Engine::cost_report`] →
//!    [`CostReport::rank_score`](ecnn_isa::verify::memplan::CostReport::rank_score)),
//!    which is free (no frame runs). Only the best
//!    [`TuneOptions::shortlist`] candidates — plus the default
//!    configuration, always — graduate to timing; the rest are culled.
//! 3. **Time** — the shortlist runs warm-up and timed frames of a
//!    deterministic synthetic image at the actual model and resolution
//!    (serial [`crate::engine::Session`] at one worker, a pipelined
//!    [`crate::pipe::AsyncSession`] above). The median frame time picks
//!    the winner.
//!
//! Because the default configuration is always in the timed shortlist,
//! the pinned winner's measured frame time is ≤ the default's by
//! construction.
//!
//! The winner is pinned as a [`TuningRecord`]: the resolved
//! [`EngineConfig`] verbatim, a [`Fingerprint`] of the model, quantized
//! parameters and resolution it was tuned for, and the static
//! [`CostDigest`] at pin time. [`EngineBuilder::tuned`] replays the
//! record — and rejects it with a structured error when the fingerprint
//! no longer matches, so a record tuned for one deployment cannot
//! silently misconfigure another. `ecnn-lint --tune-check` re-validates
//! a checked-in record (strict verification + cost digest) without
//! timing anything, cheap enough for CI.

use crate::config::EngineConfig;
use crate::engine::{Engine, EngineBuilder, EngineError};
use crate::json::{escape, Json};
use ecnn_isa::params::QuantizedModel;
use ecnn_isa::verify::memplan::CostReport;
use ecnn_isa::verify::VerifyMode;
use ecnn_model::RealTimeSpec;
use ecnn_sim::Kernels;
use ecnn_tensor::{ImageKind, SyntheticImage, Tensor};
use std::fmt;
use std::time::Instant;

/// Identity of the workload a [`TuningRecord`] was measured on: model
/// architecture, quantized parameters and target resolution. A record
/// replays only onto a build whose fingerprint matches exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// Model name (e.g. `SR4ERNet-B17R3N1`).
    pub model: String,
    /// FNV-1a hash over the quantized parameter codes and formats.
    pub param_hash: u64,
    /// Output-scale numerator ([`ecnn_model::model::Model::output_scale_rational`]).
    pub scale_num: usize,
    /// Output-scale denominator.
    pub scale_den: usize,
    /// Target output width in pixels.
    pub width: usize,
    /// Target output height in pixels.
    pub height: usize,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

impl Fingerprint {
    /// Fingerprints a quantized model at a target resolution.
    pub fn of(qm: &QuantizedModel, spec: RealTimeSpec) -> Self {
        let mut hash = FNV_OFFSET;
        fnv1a(&mut hash, qm.model.name().as_bytes());
        fnv1a(&mut hash, &(qm.model.in_channels() as u64).to_le_bytes());
        fnv1a(&mut hash, &(qm.model.out_channels() as u64).to_le_bytes());
        fnv1a(&mut hash, format!("{:?}", qm.input_q).as_bytes());
        for params in qm.layers.iter() {
            match params {
                None => fnv1a(&mut hash, b"-"),
                Some(p) => {
                    for codes in [&p.w3, &p.b3, &p.w1, &p.b1] {
                        fnv1a(&mut hash, &(codes.len() as u64).to_le_bytes());
                        for &c in codes.iter() {
                            fnv1a(&mut hash, &c.to_le_bytes());
                        }
                    }
                    fnv1a(
                        &mut hash,
                        format!(
                            "{:?}{:?}{:?}{:?}{:?}{:?}",
                            p.w3_q, p.b3_q, p.w1_q, p.b1_q, p.out_q, p.mid_q
                        )
                        .as_bytes(),
                    );
                }
            }
        }
        let (scale_num, scale_den) = qm.model.output_scale_rational();
        Self {
            model: qm.model.name().to_string(),
            param_hash: hash,
            scale_num,
            scale_den,
            width: spec.width,
            height: spec.height,
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"model\": {}, \"param_hash\": {}, \"scale_num\": {}, \"scale_den\": {}, \
             \"width\": {}, \"height\": {}}}",
            escape(&self.model),
            self.param_hash,
            self.scale_num,
            self.scale_den,
            self.width,
            self.height,
        )
    }

    fn from_json_value(v: &Json) -> Result<Self, String> {
        Ok(Self {
            model: v.require("model")?.as_str()?.to_string(),
            param_hash: v.require("param_hash")?.as_u64()?,
            scale_num: v.require("scale_num")?.as_usize()?,
            scale_den: v.require("scale_den")?.as_usize()?,
            width: v.require("width")?.as_usize()?,
            height: v.require("height")?.as_usize()?,
        })
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}x{}, scale {}/{}, params {:016x})",
            self.model, self.width, self.height, self.scale_num, self.scale_den, self.param_hash
        )
    }
}

/// The static cost-model facts a [`TuningRecord`] pins alongside its
/// configuration, so `ecnn-lint --tune-check` can detect a stale record
/// (compiler or cost-model drift) without timing anything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostDigest {
    /// Total MACs per block ([`CostReport::block_macs`]).
    pub macs: u64,
    /// Total BB + DRAM bytes per block ([`CostReport::block_traffic`]).
    pub traffic: u64,
    /// Peak plane-pool bytes under the record's layout
    /// ([`CostReport::planned_peak_bytes`]).
    pub peak_bytes: u64,
}

impl CostDigest {
    /// Digest of `cost` under a plane-layout choice.
    pub fn of(cost: &CostReport, coalesce: bool) -> Self {
        Self {
            macs: cost.block_macs(),
            traffic: cost.block_traffic(),
            peak_bytes: cost.planned_peak_bytes(coalesce) as u64,
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"macs\": {}, \"traffic\": {}, \"peak_bytes\": {}}}",
            self.macs, self.traffic, self.peak_bytes,
        )
    }

    fn from_json_value(v: &Json) -> Result<Self, String> {
        Ok(Self {
            macs: v.require("macs")?.as_u64()?,
            traffic: v.require("traffic")?.as_u64()?,
            peak_bytes: v.require("peak_bytes")?.as_u64()?,
        })
    }
}

/// A pinned autotuning result: the winning [`EngineConfig`] verbatim,
/// the [`Fingerprint`] it is licensed for, the static [`CostDigest`] at
/// pin time and the measured median frame time. Serializable
/// ([`TuningRecord::to_json`] / [`TuningRecord::from_json`]) so a tuned
/// deployment can check the record in and replay it via
/// [`EngineBuilder::tuned`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TuningRecord {
    /// Workload identity the record was tuned on.
    pub fingerprint: Fingerprint,
    /// The winning configuration, embedded verbatim.
    pub config: EngineConfig,
    /// Static cost facts at pin time.
    pub cost: CostDigest,
    /// Median measured frame time of [`TuningRecord::config`], in
    /// nanoseconds, on the tuning host.
    pub measured_ns_per_frame: u64,
}

impl TuningRecord {
    /// Deterministic JSON encoding (single object, stable key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"fingerprint\": {}, \"config\": {}, \"cost\": {}, \"measured_ns_per_frame\": {}}}\n",
            self.fingerprint.to_json(),
            self.config.to_json(),
            self.cost.to_json(),
            self.measured_ns_per_frame,
        )
    }

    /// Parses the [`TuningRecord::to_json`] encoding.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Json::parse(text.trim_end())?;
        Ok(Self {
            fingerprint: Fingerprint::from_json_value(v.require("fingerprint")?)?,
            config: EngineConfig::from_json_value(v.require("config")?)?,
            cost: CostDigest::from_json_value(v.require("cost")?)?,
            measured_ns_per_frame: v.require("measured_ns_per_frame")?.as_u64()?,
        })
    }
}

/// The candidate axes [`EngineBuilder::autotune`] enumerates the cross
/// product of. Every candidate is admitted under [`VerifyMode::Strict`]
/// regardless of the builder's verify setting.
#[derive(Clone, Debug)]
pub struct TuneSpace {
    /// Input block sides to try.
    pub blocks: Vec<usize>,
    /// Worker counts to try (serial and pipelined).
    pub workers: Vec<usize>,
    /// Kernel families to try.
    pub kernels: Vec<Kernels>,
    /// Plane layouts to try (`true` = coalesced).
    pub coalesce: Vec<bool>,
}

impl Default for TuneSpace {
    fn default() -> Self {
        Self {
            blocks: vec![64, 128, 256],
            workers: vec![1, 2, 4],
            kernels: vec![Kernels::Simd, Kernels::Packed],
            coalesce: vec![true, false],
        }
    }
}

impl TuneSpace {
    /// The cross product of every axis, as Strict-verify configs.
    pub fn enumerate(&self) -> Vec<EngineConfig> {
        let mut out = Vec::new();
        for &block in &self.blocks {
            for &workers in &self.workers {
                for &kernels in &self.kernels {
                    for &coalesce in &self.coalesce {
                        out.push(EngineConfig {
                            block,
                            workers,
                            kernels,
                            coalesce,
                            verify: VerifyMode::Strict,
                            // Tuning never embeds a fault plan: records
                            // describe production configs.
                            faults: None,
                        });
                    }
                }
            }
        }
        out
    }
}

/// Knobs of one [`EngineBuilder::autotune`] run.
#[derive(Clone, Debug)]
pub struct TuneOptions {
    /// Candidate axes to enumerate.
    pub space: TuneSpace,
    /// Warm-up frames per shortlisted candidate (not timed).
    pub warmup_frames: usize,
    /// Timed frames per shortlisted candidate (median wins).
    pub timed_frames: usize,
    /// How many statically best candidates graduate to timing (the
    /// default configuration is always timed in addition).
    pub shortlist: usize,
    /// Resolution to tune at; defaults to the builder's real-time spec
    /// (or [`RealTimeSpec::UHD30`]).
    pub spec: Option<RealTimeSpec>,
    /// Seed of the deterministic synthetic timing frame.
    pub seed: u64,
}

impl Default for TuneOptions {
    fn default() -> Self {
        Self {
            space: TuneSpace::default(),
            warmup_frames: 1,
            timed_frames: 2,
            shortlist: 4,
            spec: None,
            seed: 7,
        }
    }
}

/// What happened to one enumerated candidate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CandidateStatus {
    /// Failed admission: strict verification, compilation or a coherence
    /// check rejected it. Never timed.
    Rejected(String),
    /// Admitted, but the static cost ranking kept it off the shortlist.
    /// Never timed.
    Culled,
    /// Timed; median frame nanoseconds.
    Timed(u64),
}

/// One enumerated candidate with its static rank and outcome.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The candidate configuration (always `verify: Strict`).
    pub config: EngineConfig,
    /// Static rank score, lower = better
    /// ([`CostReport::rank_score`](ecnn_isa::verify::memplan::CostReport::rank_score));
    /// `u128::MAX` for rejected candidates.
    pub score: u128,
    /// Admission / culling / timing outcome.
    pub status: CandidateStatus,
}

/// Everything a tuning run did: per-candidate outcomes, stage counters
/// and the pinned [`TuningRecord`].
#[derive(Clone, Debug)]
pub struct TuneReport {
    /// Candidates enumerated (cross product plus the default config).
    pub enumerated: usize,
    /// Candidates rejected at admission (never timed).
    pub rejected: usize,
    /// Admitted candidates culled statically (never timed).
    pub culled: usize,
    /// Candidates actually timed (shortlist + default).
    pub timed: usize,
    /// Every candidate, in enumeration order.
    pub candidates: Vec<Candidate>,
    /// Median frame time of the default configuration, when it was
    /// admitted (it always is for a buildable workload).
    pub default_ns_per_frame: Option<u64>,
    /// The pinned winner.
    pub record: TuningRecord,
}

impl TuneReport {
    /// Permille of the enumerated space eliminated *before* timing
    /// (rejected + culled). The acceptance gate: at least half the
    /// space must be statically eliminated — `>= 500`.
    pub fn static_cull_permille(&self) -> usize {
        (self.rejected + self.culled)
            .saturating_mul(1000)
            .checked_div(self.enumerated)
            .unwrap_or(0)
    }
}

impl fmt::Display for TuneReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "autotune: {} enumerated, {} rejected, {} culled, {} timed ({}.{}% static cull)",
            self.enumerated,
            self.rejected,
            self.culled,
            self.timed,
            self.static_cull_permille() / 10,
            self.static_cull_permille() % 10,
        )?;
        for c in &self.candidates {
            match &c.status {
                CandidateStatus::Rejected(why) => writeln!(f, "  reject {} -- {why}", c.config)?,
                CandidateStatus::Culled => {
                    writeln!(f, "  cull   {} (score {})", c.config, c.score)?
                }
                CandidateStatus::Timed(ns) => {
                    writeln!(f, "  timed  {} -> {:.3} ms", c.config, *ns as f64 / 1e6)?
                }
            }
        }
        write!(
            f,
            "  winner {} ({:.3} ms)",
            self.record.config,
            self.record.measured_ns_per_frame as f64 / 1e6
        )
    }
}

/// Deterministic synthetic timing frame at the model's input geometry.
fn synth_frame(channels: usize, height: usize, width: usize, seed: u64) -> Tensor<f32> {
    if channels == 3 {
        return SyntheticImage::new(ImageKind::Mixed, seed).rgb(height, width);
    }
    let mut t = Tensor::zeros(channels, height, width);
    for c in 0..channels {
        for y in 0..height {
            for x in 0..width {
                let v = (c.wrapping_mul(31) ^ y.wrapping_mul(7) ^ x.wrapping_mul(13)) as u64 + seed;
                *t.at_mut(c, y, x) = ((v % 255) as f32) / 255.0;
            }
        }
    }
    t
}

/// Times one admitted candidate on warm state: a warm [`crate::engine::Session`]
/// at one worker, a warm pipelined [`crate::pipe::AsyncSession`] above.
/// Returns the median frame time in nanoseconds.
fn time_candidate(
    engine: &Engine,
    frame: &Tensor<f32>,
    opts: &TuneOptions,
) -> Result<u64, EngineError> {
    let timed = opts.timed_frames.max(1);
    let mut samples = Vec::with_capacity(timed);
    if engine.workers() <= 1 {
        let mut session = engine.session();
        for _ in 0..opts.warmup_frames {
            session.process(frame)?;
        }
        for _ in 0..timed {
            let start = Instant::now();
            session.process(frame)?;
            samples.push(start.elapsed());
        }
    } else {
        let mut session = engine.async_session_auto();
        for _ in 0..opts.warmup_frames {
            let ticket = session.submit(frame.clone())?;
            session.wait(ticket)?;
        }
        for _ in 0..timed {
            let input = frame.clone();
            let start = Instant::now();
            let ticket = session.submit(input)?;
            session.wait(ticket)?;
            samples.push(start.elapsed());
        }
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    Ok(u64::try_from(median.as_nanos()).unwrap_or(u64::MAX))
}

fn tune_error(detail: String) -> EngineError {
    EngineError::Config {
        param: "autotune",
        detail,
    }
}

impl EngineBuilder {
    /// Searches the [`TuneOptions::space`] for the fastest configuration
    /// of this builder's workload and returns the winning [`Engine`]
    /// (built, strict-verified, ready to run) together with the
    /// [`TuneReport`] carrying the pinned [`TuningRecord`].
    ///
    /// Candidates bypass the `ECNN_*` environment overrides (a tuning
    /// run must measure what it says it measures) and are always
    /// admitted under [`VerifyMode::Strict`]; the builder's own
    /// `verify`, `kernels`, `coalesce` and `workers` settings are
    /// superseded by each candidate. The default configuration
    /// ([`EngineConfig::new`] at the builder's block size, strict) is
    /// always timed, so the winner is measured no slower than the
    /// default by construction.
    ///
    /// # Errors
    ///
    /// [`EngineError::Missing`] without a model;
    /// [`EngineError::Config`] when the space is empty, the tuning
    /// resolution is smaller than one output pixel, or *no* candidate
    /// survives strict admission; propagates execution errors from the
    /// timed frames.
    pub fn autotune(self, opts: &TuneOptions) -> Result<(Engine, TuneReport), EngineError> {
        let spec = opts.spec.or(self.spec).unwrap_or(RealTimeSpec::UHD30);
        let base_block = self
            .block
            .or_else(|| opts.space.blocks.first().copied())
            .ok_or_else(|| tune_error("empty block axis and no builder block size".into()))?;
        let mut configs = opts.space.enumerate();
        let default_cfg = EngineConfig {
            verify: VerifyMode::Strict,
            ..EngineConfig::new(base_block)
        };
        if !configs.contains(&default_cfg) {
            configs.push(default_cfg.clone());
        }
        if configs.is_empty() {
            return Err(tune_error("empty tuning space".into()));
        }
        let enumerated = configs.len();

        // Stage 1: admission. Every candidate builds a real engine under
        // Strict — a config the verifier rejects is never timed.
        let mut candidates = Vec::with_capacity(enumerated);
        let mut engines: Vec<Option<Engine>> = Vec::with_capacity(enumerated);
        let mut rejected = 0usize;
        for cfg in configs {
            let mut b = self.clone().engine_config(cfg.clone()).realtime(spec);
            b.skip_env = true;
            match b.build() {
                Ok(engine) => {
                    let xo = engine.compiled().program.do_side;
                    let blocks_per_frame =
                        (spec.height.div_ceil(xo) * spec.width.div_ceil(xo)) as u64;
                    let score = engine
                        .cost_report()
                        .rank_score(blocks_per_frame, cfg.workers as u64);
                    candidates.push(Candidate {
                        config: cfg,
                        score,
                        status: CandidateStatus::Culled, // provisional; timing updates it
                    });
                    engines.push(Some(engine));
                }
                Err(EngineError::Missing(what)) => return Err(EngineError::Missing(what)),
                Err(e) => {
                    rejected += 1;
                    candidates.push(Candidate {
                        config: cfg,
                        score: u128::MAX,
                        status: CandidateStatus::Rejected(e.to_string()),
                    });
                    engines.push(None);
                }
            }
        }
        let mut admitted: Vec<usize> = (0..candidates.len())
            .filter(|&i| engines[i].is_some())
            .collect();
        if admitted.is_empty() {
            return Err(tune_error(
                "no candidate admitted: every configuration failed strict \
                 verification or compilation"
                    .into(),
            ));
        }

        // Stage 2: static cull. Rank by the cost model; only the
        // shortlist (plus the default config, always) is ever timed.
        admitted.sort_by_key(|&i| candidates[i].score);
        let mut shortlist: Vec<usize> = admitted
            .iter()
            .copied()
            .take(opts.shortlist.max(1))
            .collect();
        if let Some(&d) = admitted
            .iter()
            .find(|&&i| candidates[i].config == default_cfg)
        {
            if !shortlist.contains(&d) {
                shortlist.push(d);
            }
        }

        // Stage 3: timing, on the actual model at the actual resolution.
        let first = engines[shortlist[0]]
            .as_ref()
            .expect("shortlist is admitted");
        let (num, den) = first.model().output_scale_rational();
        let in_h = spec.height * den / num;
        let in_w = spec.width * den / num;
        if in_h == 0 || in_w == 0 {
            return Err(tune_error(format!(
                "tuning spec {}x{} is smaller than one input pixel at scale {num}/{den}",
                spec.width, spec.height
            )));
        }
        let channels = first.compiled().program.di_channels;
        let frame = synth_frame(channels, in_h, in_w, opts.seed);
        let mut default_ns = None;
        let mut best: Option<(usize, u64)> = None;
        for &i in &shortlist {
            let engine = engines[i].as_ref().expect("shortlist is admitted");
            let ns = time_candidate(engine, &frame, opts)?;
            candidates[i].status = CandidateStatus::Timed(ns);
            if candidates[i].config == default_cfg {
                default_ns = Some(ns);
            }
            if best.is_none_or(|(_, b)| ns < b) {
                best = Some((i, ns));
            }
        }
        let (win, win_ns) = best.expect("shortlist is nonempty");
        let engine = engines[win].take().expect("winner is admitted");
        let record = TuningRecord {
            fingerprint: Fingerprint::of(engine.quantized_model(), spec),
            config: candidates[win].config.clone(),
            cost: CostDigest::of(&engine.cost_report(), candidates[win].config.coalesce),
            measured_ns_per_frame: win_ns,
        };
        let timed = shortlist.len();
        let report = TuneReport {
            enumerated,
            rejected,
            culled: admitted.len() - timed,
            timed,
            candidates,
            default_ns_per_frame: default_ns,
            record,
        };
        Ok((engine, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_json_round_trips() {
        let record = TuningRecord {
            fingerprint: Fingerprint {
                model: "SR4ERNet-B17R3N1".into(),
                param_hash: u64::MAX - 1,
                scale_num: 4,
                scale_den: 1,
                width: 3840,
                height: 2160,
            },
            config: EngineConfig {
                block: 128,
                workers: 4,
                kernels: Kernels::Packed,
                coalesce: true,
                verify: VerifyMode::Strict,
                faults: None,
            },
            cost: CostDigest {
                macs: 123_456_789,
                traffic: 987_654_321,
                peak_bytes: 1 << 20,
            },
            measured_ns_per_frame: 42_000_000,
        };
        let json = record.to_json();
        assert_eq!(TuningRecord::from_json(&json).unwrap(), record);
        // u64 hashes survive exactly (no float precision cliff).
        assert_eq!(
            TuningRecord::from_json(&json)
                .unwrap()
                .fingerprint
                .param_hash,
            u64::MAX - 1
        );
    }

    #[test]
    fn space_enumerates_cross_product_strict() {
        let space = TuneSpace::default();
        let configs = space.enumerate();
        assert_eq!(configs.len(), 3 * 3 * 2 * 2);
        assert!(configs.iter().all(|c| c.verify == VerifyMode::Strict));
    }

    #[test]
    fn fingerprint_separates_workloads() {
        let model = ecnn_model::ernet::ErNetSpec::new(ecnn_model::ernet::ErNetTask::Dn, 3, 1, 0)
            .build()
            .unwrap();
        let qm = QuantizedModel::uniform(&model);
        let a = Fingerprint::of(&qm, RealTimeSpec::UHD30);
        assert_eq!(a, Fingerprint::of(&qm, RealTimeSpec::UHD30));
        assert_ne!(a, Fingerprint::of(&qm, RealTimeSpec::HD30));
        let mut qm2 = qm.clone();
        if let Some(p) = qm2.layers.iter_mut().flatten().next() {
            if let Some(w) = p.w3.first_mut() {
                *w = w.wrapping_add(1);
            }
        }
        assert_ne!(
            a.param_hash,
            Fingerprint::of(&qm2, RealTimeSpec::UHD30).param_hash
        );
    }
}
