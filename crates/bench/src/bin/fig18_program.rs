//! Fig. 18: the six-line FBISA program of DnERNet-B3R1N0 (UHD30 blocks).

use ecnn_bench::{engine, section};
use ecnn_model::ernet::{ErNetSpec, ErNetTask};

fn main() {
    section("Fig. 18: FBISA program of DnERNet-B3R1N0 (xi = 128)");
    let dep = engine(ErNetSpec::new(ErNetTask::Dn, 3, 1, 0), 128);
    print!("{}", dep.compiled().program);
    println!(
        "\nparameter streams: {} bytes packed (compression {:.2}x), {} restart segments",
        dep.compiled().packed.total_bytes(),
        dep.compiled().packed.stats.compression_ratio,
        dep.compiled().packed.segments.len(),
    );
}
