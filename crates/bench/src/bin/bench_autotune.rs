//! `bench_autotune` — the autotuner acceptance run on eSR-4K.
//!
//! Tunes the paper's headline workload (UHD30 SR×4, the Table 4 pick) over
//! the default [`ecnn_core::tune::TuneSpace`] (block side × worker count ×
//! kernel family × plane layout), prints the per-candidate report, asserts
//! the autotuner's two contracts —
//!
//! * at least half the candidate space is eliminated statically (strict
//!   admission + cost-model culling) before any frame is timed, and
//! * the pinned winner's measured frame time is no worse than the default
//!   configuration's (the default is always in the timed shortlist) —
//!
//! and writes the pinned record to `TUNE_esr4k.json`. The record is
//! checked in; `ecnn-lint --tune-check TUNE_esr4k.json` re-validates its
//! static half (fingerprint, strict build, cost digest) on every CI run
//! without timing anything. Run release: a 4K SR×4 frame is ~1 s of
//! simulated inference per serial timed frame.

use ecnn_bench::model_matrix;
use ecnn_core::engine::Engine;
use ecnn_core::tune::TuneOptions;

fn main() {
    let (rt, spec, xi) = model_matrix()
        .into_iter()
        .next()
        .expect("the paper matrix leads with eSR-4K");
    println!("bench_autotune: tuning {spec} @ {rt}");

    // The full default options (shortlist 4, 1 warm-up + 2 timed frames
    // per candidate) are right for a deployment tune; here every timed
    // frame is ~1 min of simulated 4K inference, so the acceptance run
    // keeps the full 36-candidate static space but times the minimum
    // that still exercises both contracts: the top-2 shortlist plus the
    // always-included default, one frame each.
    let opts = TuneOptions {
        warmup_frames: 0,
        timed_frames: 1,
        shortlist: 2,
        ..TuneOptions::default()
    };
    let n_space = opts.space.blocks.len()
        * opts.space.workers.len()
        * opts.space.kernels.len()
        * opts.space.coalesce.len();
    println!(
        "space: {} blocks x {} workers x {} kernels x {} layouts = {} candidates, shortlist {}",
        opts.space.blocks.len(),
        opts.space.workers.len(),
        opts.space.kernels.len(),
        opts.space.coalesce.len(),
        n_space,
        opts.shortlist,
    );

    let (engine, report) = Engine::builder()
        .ernet(spec)
        .block(xi)
        .realtime(rt)
        .autotune(&opts)
        .expect("eSR-4K autotunes");
    println!("{report}");

    // Acceptance gate 1: the static stages must eliminate at least half
    // the space before any timing happens.
    assert!(
        report.static_cull_permille() >= 500,
        "static cull {}.{}% < 50%",
        report.static_cull_permille() / 10,
        report.static_cull_permille() % 10,
    );

    // Acceptance gate 2: the pinned config is measured no slower than the
    // default configuration on the same frames.
    let default_ns = report
        .default_ns_per_frame
        .expect("the default config is always timed");
    assert!(
        report.record.measured_ns_per_frame <= default_ns,
        "winner {} ns > default {} ns",
        report.record.measured_ns_per_frame,
        default_ns,
    );
    println!(
        "winner {:.3} ms/frame vs default {:.3} ms/frame ({}.{}% of the space timed)",
        report.record.measured_ns_per_frame as f64 / 1e6,
        default_ns as f64 / 1e6,
        (1000 - report.static_cull_permille()) / 10,
        (1000 - report.static_cull_permille()) % 10,
    );

    // The engine handed back runs the pinned config, strict-verified.
    assert_eq!(engine.config(), &report.record.config);
    assert!(engine.verify_report().is_some());

    std::fs::write("TUNE_esr4k.json", report.record.to_json())
        .expect("TUNE_esr4k.json is writable");
    println!("wrote TUNE_esr4k.json (validate with: ecnn-lint --tune-check TUNE_esr4k.json)");
}
