//! High-level eCNN system API: the block-based inference pipeline end to
//! end (paper Fig. 3 / Fig. 12).
//!
//! [`Accelerator`] owns a machine configuration; [`Accelerator::deploy`]
//! compiles a quantized model into a [`Deployment`], which can:
//!
//! * run real images through the bit-exact simulator with block
//!   partitioning, overlap recomputation and stitching
//!   ([`Deployment::run_image`]);
//! * produce frame-rate / bandwidth / power reports for any output
//!   resolution ([`Deployment::system_report`]).
//!
//! # Example
//!
//! ```
//! use ecnn_core::Accelerator;
//! use ecnn_isa::params::QuantizedModel;
//! use ecnn_model::ernet::{ErNetSpec, ErNetTask};
//! use ecnn_model::RealTimeSpec;
//!
//! let model = ErNetSpec::new(ErNetTask::Dn, 3, 1, 0).build().unwrap();
//! let qm = QuantizedModel::uniform(&model);
//! let acc = Accelerator::paper();
//! let dep = acc.deploy(&qm, 128).unwrap();
//! let report = dep.system_report(RealTimeSpec::UHD30);
//! assert!(report.frame.fps >= 30.0);
//! ```

pub mod pipeline;
pub mod report;

pub use pipeline::{Accelerator, Deployment, PipelineError};
pub use report::SystemReport;
