//! FBISA programs: instruction sequences plus block-level metadata.

use crate::instr::Instruction;
use ecnn_model::model::InferenceKind;
use ecnn_tensor::QFormat;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A compiled FBISA program for one (sub-)model.
///
/// The program executes once per image block; the host/DMA streams the input
/// block through `DI` and collects the output block from `DO` (Section 6.1).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Source model name.
    pub name: String,
    /// The instruction sequence, in issue order.
    pub instructions: Vec<Instruction>,
    /// Inference type shared by all instructions.
    pub inference: InferenceKind,
    /// Image-domain input block side streamed through `DI` (pre-unshuffle).
    pub di_side: usize,
    /// Logical channels streamed through `DI`.
    pub di_channels: usize,
    /// Q-format of the `DI` stream.
    pub di_q: QFormat,
    /// Image-domain output block side streamed through `DO` (post-shuffle).
    pub do_side: usize,
    /// Logical channels streamed through `DO`.
    pub do_channels: usize,
    /// Q-format of the `DO` stream.
    pub do_q: QFormat,
    /// Space-to-depth factor applied while streaming `DI` (DnERNet-12ch).
    pub input_unshuffle: Option<usize>,
    /// True when some tensor exceeded the strict 3×512 KB block-buffer
    /// budget and was placed with relaxed capacity (see DESIGN.md §4 — the
    /// CV case studies and SR tails stream through line FIFOs on real
    /// hardware).
    pub bb_overflow: bool,
}

impl Program {
    /// Total leaf-modules across all instructions (drives parameter-memory
    /// size and IDU decode time).
    pub fn total_leaf_modules(&self) -> usize {
        self.instructions
            .iter()
            .map(Instruction::leaf_modules)
            .sum()
    }

    /// Sum of per-instruction CIU busy cycles for one block (no pipeline
    /// overlap accounting — see `ecnn-sim` for the pipelined schedule).
    pub fn total_ciu_cycles(&self) -> u64 {
        self.instructions.iter().map(Instruction::ciu_cycles).sum()
    }

    /// DI bytes streamed per block (8-bit samples).
    pub fn di_bytes_per_block(&self) -> usize {
        self.di_side * self.di_side * self.di_channels
    }

    /// DO bytes streamed per block (8-bit samples).
    pub fn do_bytes_per_block(&self) -> usize {
        self.do_side * self.do_side * self.do_channels
    }

    /// Blocks needed to tile a `width × height` *output* image.
    pub fn blocks_for_output(&self, width: usize, height: usize) -> usize {
        width.div_ceil(self.do_side) * height.div_ceil(self.do_side)
    }

    /// Validates all instructions.
    ///
    /// # Errors
    ///
    /// Returns `(instruction index, message)` for the first violation.
    pub fn check(&self) -> Result<(), (usize, String)> {
        for (i, instr) in self.instructions.iter().enumerate() {
            instr.check().map_err(|e| (i, e))?;
            if instr.inference != self.inference {
                return Err((i, "mixed inference kinds".into()));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    /// Renders the paper-style program listing (Fig. 18).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "; {} — {} instructions, {} leaf-modules, DI {}x{}x{}ch, DO {}x{}x{}ch",
            self.name,
            self.instructions.len(),
            self.total_leaf_modules(),
            self.di_side,
            self.di_side,
            self.di_channels,
            self.do_side,
            self.do_side,
            self.do_channels,
        )?;
        for (i, instr) in self.instructions.iter().enumerate() {
            writeln!(f, "{i:3}: {instr}")?;
        }
        Ok(())
    }
}
