//! Cross-crate integration: train → quantize → compile → Huffman-encode →
//! simulate → stitch, with bit-exactness and quality checks.

use ecnn_core::Engine;
use ecnn_isa::compile::compile;
use ecnn_isa::params::QuantizedModel;
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_nn::data::{make_dataset, TaskKind};
use ecnn_nn::float_model::FloatModel;
use ecnn_nn::quant::{quantize, QuantConfig};
use ecnn_nn::train::{train, TrainConfig};
use ecnn_sim::exec::BlockExecutor;
use ecnn_tensor::{psnr, ImageKind, SyntheticImage, Tensor};

fn trained_denoiser() -> (ecnn_model::Model, QuantizedModel) {
    let spec = ErNetSpec::new(ErNetTask::Dn, 1, 1, 0);
    let ir = spec.build().unwrap();
    let mut fm = FloatModel::from_model(&ir, 99);
    let data = make_dataset(TaskKind::denoise25(), 12, 24, 50);
    train(
        &mut fm,
        &data,
        TrainConfig {
            steps: 500,
            batch: 4,
            lr: 3e-3,
            seed: 5,
            threads: 2,
        },
    );
    let calib: Vec<Tensor<f32>> = data.iter().take(4).map(|s| s.input.clone()).collect();
    let qm = quantize(&fm, &ir, &calib, QuantConfig::default());
    (ir, qm)
}

#[test]
fn trained_model_denoises_on_simulated_hardware() {
    let (_, qm) = trained_denoiser();
    let dep = Engine::builder().quantized(qm).block(48).build().unwrap();
    let clean = SyntheticImage::new(ImageKind::Texture, 1234).rgb(96, 96);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let noisy = ecnn_tensor::image::add_gaussian_noise(&clean, 25.0 / 255.0, &mut rng);
    let (out, stats) = dep.run_image(&noisy).unwrap();
    assert!(stats.blocks >= 4);
    let noisy_psnr = psnr(&noisy, &clean, 1.0);
    let out_psnr = psnr(&out, &clean, 1.0);
    // The tiny CPU-budget model gains ~1-2 dB; 8-bit deployment without
    // fine-tuning keeps most of it (Table 5's pre-fine-tune drops).
    assert!(
        out_psnr > noisy_psnr + 0.7,
        "hardware denoiser {out_psnr:.2} dB vs noisy {noisy_psnr:.2} dB"
    );
}

#[test]
fn huffman_decoded_parameters_are_bit_exact_through_the_executor() {
    // The full parameter path: float -> quantize -> pack into the 21
    // streams -> IDU decode -> execute. Must equal executing the compiler's
    // raw leaf parameters exactly.
    let (_, qm) = trained_denoiser();
    let c = compile(&qm, 40).unwrap();
    let decoded: Vec<_> = (0..c.program.instructions.len())
        .map(|i| c.packed.unpack(i).unwrap())
        .collect();
    assert_eq!(decoded, c.leafs, "Huffman round trip must be lossless");

    let img = SyntheticImage::new(ImageKind::Mixed, 77).rgb(40, 40);
    let codes = img.map(|v| qm.input_q.quantize(v));
    let a = BlockExecutor::new(&c.program, &c.leafs)
        .run(&codes)
        .unwrap();
    let b = BlockExecutor::new(&c.program, &decoded)
        .run(&codes)
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn executor_matches_fixed_reference_on_trained_ernet() {
    // Independent implementations must agree bit-for-bit: the instruction-
    // level simulator (ecnn-sim) vs the layer-level fixed-point reference
    // (ecnn-nn), on a *trained* model with non-trivial Q-formats.
    let (_, qm) = trained_denoiser();
    let c = compile(&qm, 36).unwrap();
    let img = SyntheticImage::new(ImageKind::Edges, 31).rgb(36, 36);
    let codes = img.map(|v| qm.input_q.quantize(v));
    let sim_out = BlockExecutor::new(&c.program, &c.leafs)
        .run(&codes)
        .unwrap();
    let ref_out = ecnn_nn::quant::fixed_forward(&qm, &codes);
    assert_eq!(sim_out, ref_out);
}

#[test]
fn parameter_memory_fits_all_polished_paper_models() {
    // Every model family/spec pair the paper deploys must fit the 1288 KB
    // parameter memory after entropy coding (uniform demo weights are a
    // worst-ish case: less compressible than trained ones).
    for (task, b, r, n) in [
        (ErNetTask::Dn, 3, 1, 0),
        (ErNetTask::Sr2, 8, 2, 0),
        (ErNetTask::Sr4, 17, 3, 1),
        (ErNetTask::Dn12, 8, 2, 5),
    ] {
        let m = ErNetSpec::new(task, b, r, n).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let xi = if task == ErNetTask::Dn12 { 256 } else { 128 };
        let c = compile(&qm, xi).unwrap();
        assert!(
            c.packed.total_bytes() <= 1288 * 1024,
            "{}: {} bytes",
            m.name(),
            c.packed.total_bytes()
        );
    }
}
