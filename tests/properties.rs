//! Cross-crate property tests on the core invariants.

use ecnn_core::partition_rows;
use ecnn_isa::coding::{decode_segment, encode_segment};
use ecnn_isa::compile::compile;
use ecnn_isa::params::QuantizedModel;
use ecnn_model::blockflow::{nbr, ncr, plain_nbr, plain_ncr, FootprintWalk};
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_model::layer::{Activation, Layer, Op};
use ecnn_model::{ChannelMode, Model};
use ecnn_sim::exec::{PlaneKey, PlanePool};
use ecnn_tensor::QFormat;
use proptest::prelude::*;

fn plain(depth: usize) -> Model {
    let mut layers = vec![Layer::new(Op::Conv3x3 {
        in_c: 3,
        out_c: 3,
        act: Activation::Relu,
    })];
    for _ in 1..depth {
        layers.push(Layer::new(Op::Conv3x3 {
            in_c: 3,
            out_c: 3,
            act: Activation::Relu,
        }));
    }
    Model::new("plain", 3, 3, layers).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. (2) equals the exact walk on plain networks for any feasible
    /// (depth, block) pair.
    #[test]
    fn nbr_closed_form_matches_walk(depth in 1usize..15, xi in 40usize..200) {
        prop_assume!(xi > 2 * depth + 4);
        let m = plain(depth);
        let beta = depth as f64 / xi as f64;
        let exact = nbr(&m, xi as f64, 1.0).unwrap();
        prop_assert!((exact - plain_nbr(beta)).abs() < 1e-9);
    }

    /// NCR decreases monotonically with block size.
    #[test]
    fn ncr_monotone_in_block_size(depth in 2usize..10) {
        let m = plain(depth);
        let a = ncr(&m, 64.0, ChannelMode::Algorithmic).unwrap();
        let b = ncr(&m, 128.0, ChannelMode::Algorithmic).unwrap();
        let c = ncr(&m, 256.0, ChannelMode::Algorithmic).unwrap();
        prop_assert!(a > b && b > c);
        prop_assert!(c > 1.0);
        // And the closed form brackets the discrete sum within 10%.
        let closed = plain_ncr(depth as f64 / 128.0);
        prop_assert!((b - closed).abs() / closed < 0.10);
    }

    /// Forward/backward footprint walks are inverses.
    #[test]
    fn footprint_walks_invert(depth in 1usize..12, xi in 30usize..200) {
        prop_assume!(xi > 2 * depth + 2);
        let m = plain(depth);
        let f = FootprintWalk::forward(&m, xi as f64).unwrap();
        let b = FootprintWalk::backward(&m, f.xo()).unwrap();
        prop_assert!((b.xi() - xi as f64).abs() < 1e-9);
    }

    /// Entropy coding round-trips arbitrary i16 parameter segments.
    #[test]
    fn coding_round_trip(values in proptest::collection::vec(-255i16..=255, 0..200)) {
        let bytes = encode_segment(&values);
        let (decoded, _) = decode_segment(&bytes, values.len()).unwrap();
        prop_assert_eq!(decoded, values);
    }

    /// Q-format quantization error is bounded by half a step inside range.
    #[test]
    fn qformat_error_bound(frac in -4i8..10, x in -100.0f32..100.0) {
        let q = QFormat::signed(frac);
        let clipped = x.clamp(q.min_value(), q.max_value());
        let err = (q.round_trip(x) - clipped).abs();
        prop_assert!(err <= q.step() / 2.0 + 1e-5, "err {} step {}", err, q.step());
    }

    /// The plane pool never hands out an aliased live plane: however the
    /// arena recycles storage across checkouts (same key, shrinking or
    /// growing shapes), the planes of distinct keys occupy disjoint
    /// memory, and every checkout's accounting lands in exactly one of
    /// the two pool counters.
    #[test]
    fn plane_pool_never_aliases_live_planes(
        seeds in proptest::collection::vec(0usize..1_000_000, 1..32)
    ) {
        let mut pool = PlanePool::new();
        let mut checkouts = 0u64;
        // Two passes: the second revisits every key and recycles storage.
        for _pass in 0..2 {
            for &s in &seeds {
                // Decode a key and a shape from the seed: a handful of
                // buffers/groups, sides 1..=24.
                let key = match s % 3 {
                    0 => PlaneKey::Bb { id: (s / 3 % 3) as u8, group: (s / 9 % 4) as u8 },
                    1 => PlaneKey::Di { group: (s / 3 % 4) as u8 },
                    _ => PlaneKey::Do { group: (s / 3 % 4) as u8 },
                };
                let side = 1 + s / 37 % 24;
                pool.checkout(key, 32, side, side);
                checkouts += 1;
            }
            // Every pair of live planes with distinct keys must occupy
            // disjoint storage.
            let keys: Vec<PlaneKey> = (0..3u8)
                .flat_map(|id| (0..4u8).map(move |group| PlaneKey::Bb { id, group }))
                .chain((0..4u8).map(|group| PlaneKey::Di { group }))
                .chain((0..4u8).map(|group| PlaneKey::Do { group }))
                .collect();
            let live: Vec<(PlaneKey, usize, usize)> = keys
                .iter()
                .filter_map(|&k| {
                    pool.plane(k).map(|t| {
                        let ptr = t.as_slice().as_ptr() as usize;
                        (k, ptr, ptr + std::mem::size_of_val(t.as_slice()))
                    })
                })
                .collect();
            for (i, a) in live.iter().enumerate() {
                for b in &live[i + 1..] {
                    prop_assert!(
                        a.2 <= b.1 || b.2 <= a.1,
                        "planes {:?} and {:?} overlap: [{:#x},{:#x}) vs [{:#x},{:#x})",
                        a.0, b.0, a.1, a.2, b.1, b.2
                    );
                }
            }
        }
        let stats = pool.stats();
        prop_assert_eq!(stats.planes_allocated + stats.planes_reused, checkouts);
        // The second pass found every key resident.
        prop_assert!(stats.planes_reused >= seeds.len() as u64);
    }

    /// The band partition the sharded and pipelined paths are built on:
    /// for any `rows >= 1` the ranges cover `0..rows` contiguously, none
    /// is empty, and earlier ranges take the remainder (lengths are
    /// non-increasing and spread by at most one).
    #[test]
    fn partition_rows_invariants(rows in 1usize..400, n in 1usize..40) {
        let ranges = partition_rows(rows, n);
        prop_assert_eq!(ranges.len(), n.min(rows));
        prop_assert_eq!(ranges[0].start, 0);
        prop_assert_eq!(ranges.last().unwrap().end, rows);
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        let lens: Vec<usize> = ranges.iter().map(std::ops::Range::len).collect();
        prop_assert!(lens.iter().all(|&l| l >= 1), "non-empty");
        prop_assert_eq!(lens.iter().sum::<usize>(), rows);
        for w in lens.windows(2) {
            prop_assert!(w[0] >= w[1], "earlier ranges take the remainder");
            prop_assert!(w[0] - w[1] <= 1, "near-equal split");
        }
    }

    /// Zero rows yield zero ranges — never a single empty one whose
    /// `start * cols` would misname block 0 of a blockless frame.
    #[test]
    fn partition_rows_of_empty_grid_is_empty(n in 0usize..40) {
        prop_assert!(partition_rows(0, n).is_empty());
    }

    /// Every feasible ERNet compiles, respects the 4-leaf cap, and its
    /// packed parameters decode to the compiler's leafs.
    #[test]
    fn ernets_compile_and_roundtrip(b in 1usize..6, r in 1usize..4, sel in 0usize..3) {
        let n = sel.min(b);
        let task = match sel % 3 { 0 => ErNetTask::Dn, 1 => ErNetTask::Sr2, _ => ErNetTask::Sr4 };
        let spec = ErNetSpec::new(task, b, r, n);
        let m = spec.build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 64).unwrap();
        for ins in &c.program.instructions {
            prop_assert!(ins.leaf_modules() <= 4);
        }
        let first = c.packed.unpack(0).unwrap();
        prop_assert_eq!(&first, &c.leafs[0]);
    }
}
