//! Umbrella crate for the eCNN reproduction workspace.
//!
//! Re-exports the public API of every member crate so that examples and
//! integration tests can depend on a single package. See [`ecnn_core`] for
//! the high-level entry points.

pub use ecnn_baselines as baselines;
pub use ecnn_core as core;
pub use ecnn_dram as dram;
pub use ecnn_isa as isa;
pub use ecnn_model as model;
pub use ecnn_nn as nn;
pub use ecnn_sim as sim;
pub use ecnn_tensor as tensor;
