//! Diffy-style activation-difference compression and the published
//! operating points used in Table 7.
//!
//! Diffy (Mahmoud et al., MICRO'18) processes *differences* between
//! horizontally adjacent activations; their small magnitudes shrink both
//! the effectual bit-serial compute and the off-chip footprint. We model
//! the bandwidth side: per-row deltas of a feature map are entropy-coded at
//! their category cost (the same value model as our parameter coder), which
//! yields the compression factor applied to the frame-based flow.

use crate::framebased::{frame_based_feature_bandwidth, IsoComputeFlow, ISO_COMPUTE_TOPS};
use ecnn_core::engine::{Backend, EngineError, FrameReport, Workload};
use ecnn_dram::DramConfig;
use ecnn_tensor::{ImageKind, QFormat, SyntheticImage, Tensor};
use serde::{Deserialize, Serialize};

/// Mean encoded bits per activation when storing horizontal differences
/// (category entropy + magnitude bits), versus `bits` raw storage.
pub fn diff_compression_factor(features: &Tensor<i16>, bits: u32) -> f64 {
    let (c, h, w) = features.shape();
    let mut hist = [0u64; 17];
    let mut mag_bits = 0u64;
    let mut n = 0u64;
    for ch in 0..c {
        for y in 0..h {
            let mut prev = 0i32;
            for x in 0..w {
                let v = features.at(ch, y, x) as i32;
                let d = v - prev;
                prev = v;
                let cat = (32 - d.unsigned_abs().leading_zeros()) as usize;
                hist[cat.min(16)] += 1;
                mag_bits += cat as u64;
                n += 1;
            }
        }
    }
    let nf = n as f64;
    let mut entropy = 0.0;
    for &f in &hist {
        if f > 0 {
            let p = f as f64 / nf;
            entropy -= p * p.log2();
        }
    }
    let bits_per_val = entropy + mag_bits as f64 / nf;
    bits as f64 / bits_per_val
}

/// A published accelerator operating point (Table 7's right-hand columns).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PublishedPoint {
    /// Processor name.
    pub name: &'static str,
    /// Workload it was reported on.
    pub workload: &'static str,
    /// Technology node in nm.
    pub tech_nm: u32,
    /// Supported throughput specification.
    pub spec: &'static str,
    /// DRAM configuration.
    pub dram: &'static str,
    /// Reported power in watts.
    pub power_w: f64,
}

/// IDEAL running BM3D (Mahmoud et al., MICRO'17).
pub const IDEAL_BM3D: PublishedPoint = PublishedPoint {
    name: "IDEAL",
    workload: "BM3D denoising",
    tech_nm: 65,
    spec: "Full HD 30 fps",
    dram: "2x DDR3-1333",
    power_w: 12.05,
};

/// Diffy running FFDNet with 8 tiles (MICRO'18).
pub const DIFFY_FFDNET: PublishedPoint = PublishedPoint {
    name: "Diffy (8 tiles)",
    workload: "FFDNet denoising",
    tech_nm: 65,
    spec: "Full HD 30 fps",
    dram: "2x DDR3-2133",
    power_w: 27.16,
};

/// Diffy running VDSR with 16 tiles (MICRO'18).
pub const DIFFY_VDSR: PublishedPoint = PublishedPoint {
    name: "Diffy (16 tiles)",
    workload: "VDSR x4 super-resolution",
    tech_nm: 65,
    spec: "Full HD 30 fps",
    dram: "2x DDR3-2133",
    power_w: 54.32,
};

/// eCNN's corresponding points from the paper, for table rendering.
pub const ECNN_DN: PublishedPoint = PublishedPoint {
    name: "eCNN",
    workload: "DnERNet denoising",
    tech_nm: 40,
    spec: "up to 4K UHD 30 fps",
    dram: "DDR-400",
    power_w: 7.34,
};

/// eCNN on SR4ERNet.
pub const ECNN_SR4: PublishedPoint = PublishedPoint {
    name: "eCNN",
    workload: "SR4ERNet x4 super-resolution",
    tech_nm: 40,
    spec: "up to 4K UHD 30 fps",
    dram: "DDR-400",
    power_w: 7.08,
};

/// The Diffy flow as an engine [`Backend`]: frame-based traffic shrunk by
/// the activation-difference compression factor.
#[derive(Clone, Debug)]
pub struct DiffyBackend {
    /// Peak compute available to the flow, TOPS.
    pub tops: f64,
    /// DRAM interface the flow runs on.
    pub dram: DramConfig,
    /// Compression factor applied to feature traffic.
    pub compression: f64,
}

impl DiffyBackend {
    /// Calibrates the compression factor on a deterministic smooth
    /// synthetic feature map (the favourable case for differential
    /// storage; noisy inputs compress far worse — the paper's critique).
    pub fn calibrated() -> Self {
        let img = SyntheticImage::new(ImageKind::Smooth, 4).rgb(64, 64);
        let q = QFormat::unsigned(8);
        let codes = img.map(|v| q.quantize(v));
        Self {
            tops: ISO_COMPUTE_TOPS,
            dram: DramConfig::DDR3_2133_X2,
            compression: diff_compression_factor(&codes, 16),
        }
    }
}

impl Default for DiffyBackend {
    fn default() -> Self {
        Self::calibrated()
    }
}

impl DiffyBackend {
    /// Stable backend identifier, shared by [`Backend::name`] and the
    /// report it fills.
    pub const NAME: &'static str = "diffy";
}

impl Backend for DiffyBackend {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn frame_report(&self, workload: &Workload) -> Result<FrameReport, EngineError> {
        let spec = workload.spec;
        let features = frame_based_feature_bandwidth(
            workload.model(),
            spec.width,
            spec.height,
            1.0,
            workload.feature_bits,
        ) / self.compression;
        // Published operating points (Table 7): 27.16 W for denoising
        // (FFDNet, 8 tiles), 54.32 W for x4 SR (VDSR, 16 tiles), @65nm.
        let power = if workload.model().output_scale() > 1.0 {
            DIFFY_VDSR.power_w
        } else {
            DIFFY_FFDNET.power_w
        };
        Ok(IsoComputeFlow {
            backend: Self::NAME,
            tops: self.tops,
            dram: self.dram,
            feature_bytes_per_frame: features,
            feature_sram_bytes: 0.0,
            power_w: Some(power),
            note: format!(
                "activation-difference compression x{:.1} (input-dependent); power from the published 65nm point",
                self.compression
            ),
        }
        .report(workload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_activations_compress_well() {
        let img = SyntheticImage::new(ImageKind::Smooth, 4).rgb(64, 64);
        let q = QFormat::unsigned(8);
        let codes = img.map(|v| q.quantize(v));
        let factor = diff_compression_factor(&codes, 16);
        // Diffy's premise: differential features need far fewer bits than
        // raw 16-bit storage.
        assert!(factor > 2.0, "factor {factor}");
    }

    #[test]
    fn noisy_activations_compress_poorly() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(1);
        let noise = Tensor::from_fn(3, 64, 64, |_, _, _| rng.gen_range(0..255) as i16);
        let smooth_img = SyntheticImage::new(ImageKind::Smooth, 4).rgb(64, 64);
        let q = QFormat::unsigned(8);
        let smooth = smooth_img.map(|v| q.quantize(v));
        assert!(
            diff_compression_factor(&noise, 16) < diff_compression_factor(&smooth, 16),
            "input-dependent compression — the paper's 'highly varies with input images' critique"
        );
    }

    #[test]
    // The published points are consts; the test documents their invariants.
    #[allow(clippy::assertions_on_constants)]
    fn published_points_are_consistent_with_table7() {
        assert!(DIFFY_VDSR.power_w > 7.0 * ECNN_SR4.power_w / 1.1);
        assert_eq!(IDEAL_BM3D.tech_nm, 65);
        assert!(ECNN_DN.power_w < 8.0);
    }
}
