//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace only uses serde derives declaratively (no code actually
//! serializes), so the offline stand-in emits nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
