//! Verified memory planning and the static cost model.
//!
//! This pass turns the verifier's re-derived plane table
//! ([`VerifyReport::planes`]) into two constructive artifacts:
//!
//! * [`MemoryPlan`] — a register-allocation-style coloring of the
//!   program's feature planes onto shared physical *slots*. Each plane's
//!   lifetime is the closed instruction interval from its birth (its
//!   writing instruction; the pre-execution input stream for `DI` planes)
//!   to its last read (the post-execution output assembly for `DO`
//!   planes). Two planes *interfere* when those intervals overlap; a
//!   greedy first-fit walk in table order assigns every plane the lowest
//!   slot holding no interfering plane. The result is a proof-carrying
//!   layout: no two planes that are ever simultaneously live share a
//!   slot, so an executor that keys its arena by slot instead of
//!   `(buffer, group)` produces bit-identical output while holding only
//!   [`MemoryPlan::peak_bytes`] of plane storage. The plan is only
//!   emitted for programs whose verification found no hard errors —
//!   mirroring the `narrow_acc` license: no proof, no coalescing.
//! * [`CostReport`] — exact static work/traffic counts per instruction
//!   (MACs, block-buffer read/write traffic, `DI`/`DO` stream bytes),
//!   summed over the program. The formulas mirror the executor's
//!   counters term by term, so the totals must equal the observed
//!   `ExecStats` work counters of one block execution exactly — a
//!   differential test pins this for every shipped paper model. The
//!   report also carries both memory layouts' peak bytes, giving the
//!   plan-time autotuner a complete static ranking signal.
//!
//! Interval conservatism: lifetimes are *closed* at both ends, so a plane
//! read by instruction `i` interferes with the plane `i` writes even
//! though the executor's reads complete before its write. This forgoes a
//! little sharing but makes the proof independent of intra-instruction
//! ordering — in particular it subsumes every in-place aliasing hazard
//! the verifier flags (`alias-hazard` programs additionally carry a hard
//! error, which suppresses the plan entirely).

use super::{PlaneRecord, VerifyReport};
use crate::instr::{FeatLoc, Opcode, LEAF_CH};
use crate::program::Program;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Bytes one plane record occupies (i16 codes).
fn plane_bytes(p: &PlaneRecord) -> usize {
    p.channels
        .saturating_mul(p.height)
        .saturating_mul(p.width)
        .saturating_mul(std::mem::size_of::<i16>())
}

/// Elements one plane record holds (the unit the executor's traffic
/// counters charge: `Tensor::len`).
fn plane_elems(p: &PlaneRecord) -> u64 {
    (p.channels as u64)
        .saturating_mul(p.height as u64)
        .saturating_mul(p.width as u64)
}

/// A plane's lifetime as a closed interval in execution-step units:
/// step 0 is the input stream, step `i + 1` is instruction `i`, and the
/// final step is the output assembly.
fn lifetime(p: &PlaneRecord) -> (usize, usize) {
    let start = p.born.map_or(0, |b| b.saturating_add(1));
    let end = p.last_use.map_or(start, |l| l.saturating_add(1));
    (start, end.max(start))
}

/// Whether two closed intervals overlap.
fn overlaps(a: (usize, usize), b: (usize, usize)) -> bool {
    a.0 <= b.1 && b.0 <= a.1
}

/// The keyed (one-slot-per-`(buffer, group)`) layout's peak plane bytes:
/// every key holds the maximum shape it ever carries, all keys resident
/// at once — the executor's fallback layout when no plan is licensed.
pub fn keyed_peak_bytes(planes: &[PlaneRecord]) -> usize {
    let mut peak: HashMap<FeatLoc, usize> = HashMap::new();
    for p in planes {
        let e = peak.entry(p.loc).or_insert(0);
        *e = (*e).max(plane_bytes(p));
    }
    peak.values().sum()
}

/// A proven coalesced memory layout: every plane of the verifier's table
/// assigned to a physical slot such that no two simultaneously-live
/// planes share one. Serializable, so a deployment can ship the layout
/// alongside the program.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryPlan {
    /// Slot index per plane, parallel to [`VerifyReport::planes`] (and to
    /// the simulator's `BlockPlan::planes`, which cross-checks against
    /// it).
    pub plane_slots: Vec<usize>,
    /// Per-slot maximum bytes over every plane assigned to it — the
    /// capacity an arena must provision per slot.
    pub slot_bytes: Vec<usize>,
    /// Proven peak plane bytes of the coalesced layout: the sum of
    /// [`MemoryPlan::slot_bytes`].
    pub peak_bytes: usize,
    /// Peak plane bytes of the keyed fallback layout, for comparison.
    pub keyed_bytes: usize,
}

impl MemoryPlan {
    /// Builds the coalesced layout from a verification report.
    ///
    /// Returns `None` when the report carries hard errors: an unverified
    /// program gets no sharing proof, and the executor falls back to the
    /// keyed one-slot-per-plane layout (mirroring the narrow-accumulation
    /// license).
    pub fn build(report: &VerifyReport) -> Option<MemoryPlan> {
        if report.has_errors() {
            return None;
        }
        let planes = &report.planes;
        let mut plane_slots = Vec::with_capacity(planes.len());
        let mut slot_bytes: Vec<usize> = Vec::new();
        // Per-slot list of lifetimes already assigned to it.
        let mut slot_lives: Vec<Vec<(usize, usize)>> = Vec::new();
        for p in planes {
            let life = lifetime(p);
            let bytes = plane_bytes(p);
            let slot = slot_lives
                .iter()
                .position(|lives| lives.iter().all(|&l| !overlaps(l, life)))
                .unwrap_or_else(|| {
                    slot_lives.push(Vec::new());
                    slot_bytes.push(0);
                    slot_lives.len().saturating_sub(1)
                });
            slot_lives[slot].push(life);
            slot_bytes[slot] = slot_bytes[slot].max(bytes);
            plane_slots.push(slot);
        }
        let peak_bytes = slot_bytes.iter().fold(0usize, |a, &b| a.saturating_add(b));
        Some(MemoryPlan {
            plane_slots,
            slot_bytes,
            peak_bytes,
            keyed_bytes: keyed_peak_bytes(planes),
        })
    }

    /// Number of physical slots the layout uses.
    pub fn slots(&self) -> usize {
        self.slot_bytes.len()
    }

    /// Bytes saved versus the keyed layout, in permille (integer math,
    /// stable for snapshot output). `0` when the keyed layout is empty.
    pub fn saved_permille(&self) -> u64 {
        let saved = self.keyed_bytes.saturating_sub(self.peak_bytes) as u64;
        saved
            .saturating_mul(1000)
            .checked_div(self.keyed_bytes as u64)
            .unwrap_or(0)
    }
}

/// Exact static work/traffic counts of one instruction, in the
/// executor's counter units (MAC events; *traffic counters charge
/// elements*, matching `ExecStats`' historically named byte fields).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrCost {
    /// LCONV3×3 multiply-accumulates.
    pub mac3: u64,
    /// LCONV1×1 multiply-accumulates.
    pub mac1: u64,
    /// Block-buffer read traffic (source gathers and `srcS` reads).
    pub bb_read_bytes: u64,
    /// Block-buffer write traffic (destination stores).
    pub bb_write_bytes: u64,
    /// `DO`-stream traffic (logical channels only).
    pub do_bytes: u64,
}

/// The program's static cost model: per-instruction and summed work /
/// traffic counts plus both memory layouts' peak bytes. Totals must
/// equal the observed `ExecStats::work` counters of one block execution
/// exactly.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostReport {
    /// One cost record per instruction, in program order.
    pub per_instr: Vec<InstrCost>,
    /// Total LCONV3×3 MACs per block.
    pub mac3: u64,
    /// Total LCONV1×1 MACs per block.
    pub mac1: u64,
    /// Total block-buffer read traffic per block.
    pub bb_read_bytes: u64,
    /// Total block-buffer write traffic per block.
    pub bb_write_bytes: u64,
    /// `DI`-stream traffic per block (logical input channels).
    pub di_bytes: u64,
    /// Total `DO`-stream traffic per block.
    pub do_bytes: u64,
    /// Instructions executed per block.
    pub instructions: u64,
    /// Peak plane bytes of the keyed fallback layout.
    pub keyed_peak_bytes: usize,
    /// The coalesced layout, when verification licensed one.
    pub memory: Option<MemoryPlan>,
}

impl CostReport {
    /// Total multiply-accumulates per block across both engines — the
    /// dominant term of the autotuner's static ranking.
    pub fn block_macs(&self) -> u64 {
        self.mac3.saturating_add(self.mac1)
    }

    /// Total traffic elements per block (block-buffer reads and writes
    /// plus both stream directions), the secondary ranking term.
    pub fn block_traffic(&self) -> u64 {
        self.bb_read_bytes
            .saturating_add(self.bb_write_bytes)
            .saturating_add(self.di_bytes)
            .saturating_add(self.do_bytes)
    }

    /// Peak plane bytes the executor would hold under the given layout
    /// intent: the coalesced plan's bytes when one was licensed *and*
    /// `coalesce` asks for it, the keyed fallback otherwise — exactly
    /// the resolution the plan-time executor applies.
    pub fn planned_peak_bytes(&self, coalesce: bool) -> usize {
        match (&self.memory, coalesce) {
            (Some(m), true) => m.peak_bytes,
            _ => self.keyed_peak_bytes,
        }
    }

    /// Static ranking score for the plan-time autotuner: estimated work
    /// per frame, in MAC-equivalent units. Per-block cost is
    /// [`CostReport::block_macs`] plus [`CostReport::block_traffic`]
    /// charged at a quarter MAC per element (traffic is cheap relative
    /// to a multiply but not free), multiplied by the frame's block
    /// count and divided by the worker count (ideal-scaling
    /// approximation — the micro-bench shortlist, not this score,
    /// decides between closely ranked configs). Lower is better; the
    /// score orders candidates, it does not predict wall time.
    pub fn rank_score(&self, blocks_per_frame: u64, workers: u64) -> u128 {
        let per_block = (self.block_macs() as u128)
            .saturating_add((self.block_traffic() as u128).checked_div(4).unwrap_or(0));
        per_block
            .saturating_mul(blocks_per_frame.max(1) as u128)
            .checked_div(workers.max(1) as u128)
            .unwrap_or(u128::MAX)
    }
}

/// Computes the static cost model for `program` from the verifier's
/// plane table. The traffic formulas re-derive, per instruction, exactly
/// what the executor charges: every `Bb` source-group and `srcS` read is
/// one full plane of the *currently live* shape at that location, every
/// `Bb` store one full destination plane, and `Do` stores clamp to the
/// logical output channels. MAC counts follow the per-opcode engine
/// sweeps (`CONV`/`UPX2`/`DNX2` one 3×3 pass per leaf grid, `ER` one 3×3
/// expansion per leaf plus the 1×1 reduction, `CONV1` the 1×1 grid).
pub fn cost_model(program: &Program, report: &VerifyReport) -> CostReport {
    let planes = &report.planes;
    let di_planes = planes.iter().take_while(|p| p.born.is_none()).count();
    // Live plane index per location, re-walked in program order (the
    // verifier's own derivation order, so indices line up with `planes`).
    let mut live: HashMap<FeatLoc, usize> = HashMap::new();
    for (g, p) in planes.iter().take(di_planes).enumerate() {
        live.insert(p.loc, g);
    }
    let leaf_sq = (LEAF_CH as u64).saturating_mul(LEAF_CH as u64);
    let mut per_instr = Vec::with_capacity(program.instructions.len());
    for (i, ins) in program.instructions.iter().enumerate() {
        let mut c = InstrCost::default();
        let charge_read = |c: &mut InstrCost, loc: FeatLoc| {
            if let Some(&pi) = live.get(&loc) {
                if matches!(loc, FeatLoc::Bb { .. }) {
                    if let Some(p) = planes.get(pi) {
                        c.bb_read_bytes = c.bb_read_bytes.saturating_add(plane_elems(p));
                    }
                }
            }
        };
        for g in 0..ins.in_groups {
            charge_read(&mut c, ins.src.offset(g));
        }
        if let Some(srcs) = ins.src_s {
            charge_read(&mut c, srcs);
        }
        let (cw, chh) = ins.conv_out_size();
        let grid = (cw as u64).saturating_mul(chh as u64);
        match ins.opcode {
            Opcode::Conv | Opcode::Dnx2 | Opcode::Upx2 => {
                let out_planes = if ins.opcode == Opcode::Upx2 {
                    ins.out_groups
                } else {
                    1
                };
                c.mac3 = (out_planes as u64)
                    .saturating_mul(ins.in_groups as u64)
                    .saturating_mul(leaf_sq)
                    .saturating_mul(9)
                    .saturating_mul(grid);
            }
            Opcode::Er => {
                let leaves = ins.leaf_modules() as u64;
                c.mac3 = leaves
                    .saturating_mul(leaf_sq)
                    .saturating_mul(9)
                    .saturating_mul(grid);
                c.mac1 = leaves.saturating_mul(leaf_sq).saturating_mul(grid);
            }
            Opcode::Conv1 => {
                let side = ins.in_size.0 as u64;
                c.mac1 = (ins.leaf_modules() as u64)
                    .saturating_mul(leaf_sq)
                    .saturating_mul(side)
                    .saturating_mul(side);
            }
        }
        // The destination plane is this instruction's table entry.
        if let Some(p) = planes.get(di_planes.saturating_add(i)) {
            if p.born == Some(i) {
                let elems = plane_elems(p);
                match ins.dst {
                    FeatLoc::Bb { .. } => {
                        c.bb_write_bytes = elems;
                    }
                    FeatLoc::Do { group } => {
                        // Only logical channels leave the chip.
                        let px = (p.height as u64).saturating_mul(p.width as u64);
                        let logical = (LEAF_CH.min(
                            program
                                .do_channels
                                .saturating_sub((group as usize).saturating_mul(LEAF_CH)),
                        ) as u64)
                            .saturating_mul(px);
                        c.do_bytes = elems.min(logical);
                    }
                    FeatLoc::Di { .. } => {}
                }
                live.insert(ins.dst, di_planes.saturating_add(i));
            }
        }
        per_instr.push(c);
    }
    let sum = |f: fn(&InstrCost) -> u64| per_instr.iter().fold(0u64, |a, c| a.saturating_add(f(c)));
    CostReport {
        mac3: sum(|c| c.mac3),
        mac1: sum(|c| c.mac1),
        bb_read_bytes: sum(|c| c.bb_read_bytes),
        bb_write_bytes: sum(|c| c.bb_write_bytes),
        di_bytes: (program.di_channels as u64)
            .saturating_mul(program.di_side as u64)
            .saturating_mul(program.di_side as u64),
        do_bytes: sum(|c| c.do_bytes),
        instructions: program.instructions.len() as u64,
        keyed_peak_bytes: keyed_peak_bytes(planes),
        memory: MemoryPlan::build(report),
        per_instr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{DiagCode, Diagnostic, Severity};

    fn rec(loc: FeatLoc, side: usize, born: Option<usize>, last_use: Option<usize>) -> PlaneRecord {
        PlaneRecord {
            loc,
            channels: LEAF_CH,
            height: side,
            width: side,
            born,
            last_use,
        }
    }

    fn bb(id: u8, group: u8) -> FeatLoc {
        FeatLoc::Bb { id, group }
    }

    fn report_with(planes: Vec<PlaneRecord>) -> VerifyReport {
        VerifyReport {
            diagnostics: Vec::new(),
            planes,
            ranges: Vec::new(),
        }
    }

    #[test]
    fn disjoint_lifetimes_share_a_slot() {
        // DI dies at instr 0; the instr-1 plane can reuse its slot.
        let rpt = report_with(vec![
            rec(FeatLoc::Di { group: 0 }, 16, None, Some(0)),
            rec(bb(0, 0), 14, Some(0), Some(1)),
            rec(bb(1, 0), 12, Some(1), Some(2)),
        ]);
        let plan = MemoryPlan::build(&rpt).unwrap();
        // DI [0,1] and bb(0,0) [1,2] overlap at 1; bb(1,0) [2,3] reuses
        // the DI slot.
        assert_eq!(plan.plane_slots, vec![0, 1, 0]);
        assert_eq!(plan.slots(), 2);
        let di_bytes = LEAF_CH * 16 * 16 * 2;
        let mid_bytes = LEAF_CH * 14 * 14 * 2;
        assert_eq!(plan.peak_bytes, di_bytes + mid_bytes);
        assert_eq!(
            plan.keyed_bytes,
            di_bytes + mid_bytes + LEAF_CH * 12 * 12 * 2
        );
        assert!(plan.saved_permille() > 0);
    }

    #[test]
    fn overlapping_lifetimes_never_share() {
        // Three planes all live across instrs 0..=3: pairwise interference
        // forces three slots.
        let rpt = report_with(vec![
            rec(bb(0, 0), 10, Some(0), Some(3)),
            rec(bb(1, 0), 10, Some(1), Some(3)),
            rec(bb(2, 0), 10, Some(2), Some(3)),
        ]);
        let plan = MemoryPlan::build(&rpt).unwrap();
        assert_eq!(plan.plane_slots, vec![0, 1, 2]);
        assert_eq!(plan.peak_bytes, plan.keyed_bytes);
        assert_eq!(plan.saved_permille(), 0);
    }

    #[test]
    fn same_step_handoff_is_conservative() {
        // A dies at instr 1, B is born at instr 1: closed intervals touch,
        // so they must not share (intra-instruction ordering is not part
        // of the proof).
        let rpt = report_with(vec![
            rec(bb(0, 0), 10, Some(0), Some(1)),
            rec(bb(0, 1), 10, Some(1), Some(2)),
        ]);
        let plan = MemoryPlan::build(&rpt).unwrap();
        assert_ne!(plan.plane_slots[0], plan.plane_slots[1]);
    }

    #[test]
    fn erroneous_report_licenses_no_plan() {
        let mut rpt = report_with(vec![rec(bb(0, 0), 10, Some(0), Some(1))]);
        rpt.diagnostics.push(Diagnostic {
            code: DiagCode::AliasHazard,
            severity: Severity::Error,
            instr: Some(1),
            detail: "forged".into(),
        });
        assert_eq!(MemoryPlan::build(&rpt), None);
    }

    #[test]
    fn unread_plane_occupies_only_its_birth_step() {
        let rpt = report_with(vec![
            rec(bb(0, 0), 10, Some(0), None),
            rec(bb(1, 0), 10, Some(1), Some(2)),
        ]);
        let plan = MemoryPlan::build(&rpt).unwrap();
        // [1,1] and [2,3] are disjoint: one slot.
        assert_eq!(plan.plane_slots, vec![0, 0]);
    }
}
