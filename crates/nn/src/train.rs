//! Training loop: Adam optimizer, MSE / softmax-cross-entropy losses,
//! thread-parallel gradient accumulation, PSNR evaluation.

use crate::data::Sample;
use crate::float_model::{FloatModel, LayerGrads};
use ecnn_tensor::{psnr, Tensor};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainConfig {
    /// Mini-batch steps.
    pub steps: usize,
    /// Samples per step.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Sampling seed.
    pub seed: u64,
    /// Worker threads for per-sample gradients.
    pub threads: usize,
}

impl TrainConfig {
    /// A quick setting for tests and the lightweight scan stage.
    pub fn light(steps: usize) -> Self {
        Self {
            steps,
            batch: 4,
            lr: 1e-3,
            seed: 0,
            threads: 2,
        }
    }
}

/// Loss curve and summary from one training run.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainStats {
    /// Per-step losses.
    pub losses: Vec<f32>,
    /// Mean loss over the final 10% of steps.
    pub final_loss: f32,
}

/// Adam state per parameter vector.
struct AdamState {
    m: Vec<LayerGrads>,
    v: Vec<LayerGrads>,
    t: u64,
}

impl AdamState {
    fn new(model: &FloatModel) -> Self {
        let zero = |l: &crate::float_model::FloatLayer| LayerGrads {
            dw: vec![0.0; l.w.len()],
            db: vec![0.0; l.b.len()],
            dw1: vec![0.0; l.w1.len()],
            db1: vec![0.0; l.b1.len()],
        };
        Self {
            m: model.layers.iter().map(zero).collect(),
            v: model.layers.iter().map(zero).collect(),
            t: 0,
        }
    }

    fn step(&mut self, model: &mut FloatModel, grads: &[LayerGrads], lr: f32) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t as i32);
        let bc2 = 1.0 - B2.powi(self.t as i32);
        for (li, layer) in model.layers.iter_mut().enumerate() {
            let g = &grads[li];
            let m = &mut self.m[li];
            let v = &mut self.v[li];
            let update = |p: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32]| {
                for i in 0..p.len() {
                    m[i] = B1 * m[i] + (1.0 - B1) * g[i];
                    v[i] = B2 * v[i] + (1.0 - B2) * g[i] * g[i];
                    let mh = m[i] / bc1;
                    let vh = v[i] / bc2;
                    p[i] -= lr * mh / (vh.sqrt() + EPS);
                }
            };
            update(&mut layer.w, &g.dw, &mut m.dw, &mut v.dw);
            update(&mut layer.b, &g.db, &mut m.db, &mut v.db);
            update(&mut layer.w1, &g.dw1, &mut m.dw1, &mut v.dw1);
            update(&mut layer.b1, &g.db1, &mut m.db1, &mut v.db1);
            // Keep pruned weights at exactly zero.
            if let Some(mask) = &layer.mask {
                for (wv, mv) in layer.w.iter_mut().zip(mask) {
                    *wv *= mv;
                }
            }
        }
    }
}

fn add_grads(into: &mut Vec<LayerGrads>, from: Vec<LayerGrads>) {
    if into.is_empty() {
        *into = from;
        return;
    }
    for (a, b) in into.iter_mut().zip(from) {
        for (x, y) in a.dw.iter_mut().zip(&b.dw) {
            *x += y;
        }
        for (x, y) in a.db.iter_mut().zip(&b.db) {
            *x += y;
        }
        for (x, y) in a.dw1.iter_mut().zip(&b.dw1) {
            *x += y;
        }
        for (x, y) in a.db1.iter_mut().zip(&b.db1) {
            *x += y;
        }
    }
}

fn scale_grads(g: &mut [LayerGrads], s: f32) {
    for lg in g {
        for v in lg
            .dw
            .iter_mut()
            .chain(&mut lg.db)
            .chain(&mut lg.dw1)
            .chain(&mut lg.db1)
        {
            *v *= s;
        }
    }
}

/// MSE loss and its gradient.
pub fn mse_loss(out: &Tensor<f32>, target: &Tensor<f32>) -> (f32, Tensor<f32>) {
    let n = out.len() as f32;
    let diff = out.sub(target);
    let loss = diff.as_slice().iter().map(|d| d * d).sum::<f32>() / n;
    let mut grad = diff;
    grad.scale(2.0 / n);
    (loss, grad)
}

/// Softmax cross-entropy over a `C×1×1` logit tensor.
pub fn softmax_ce_loss(out: &Tensor<f32>, class: usize) -> (f32, Tensor<f32>) {
    let logits = out.as_slice();
    let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let z: f32 = exps.iter().sum();
    let loss = -(exps[class] / z).ln();
    let mut grad = out.clone();
    for (i, g) in grad.as_mut_slice().iter_mut().enumerate() {
        *g = exps[i] / z - if i == class { 1.0 } else { 0.0 };
    }
    (loss, grad)
}

/// Gradients of the mean MSE over a batch, computed with `threads` workers.
fn batch_grads(model: &FloatModel, batch: &[&Sample], threads: usize) -> (f32, Vec<LayerGrads>) {
    let chunk = batch.len().div_ceil(threads.max(1));
    let results: Vec<(f32, Vec<LayerGrads>)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = batch
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move |_| {
                    let mut loss = 0.0f32;
                    let mut grads: Vec<LayerGrads> = Vec::new();
                    for s in part {
                        let cache = model.forward(&s.input);
                        let (l, g) = mse_loss(cache.output(), &s.target);
                        loss += l;
                        add_grads(&mut grads, model.backward(&cache, g));
                    }
                    (loss, grads)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    })
    .expect("scope");
    let mut total_loss = 0.0;
    let mut total: Vec<LayerGrads> = Vec::new();
    for (l, g) in results {
        total_loss += l;
        add_grads(&mut total, g);
    }
    scale_grads(&mut total, 1.0 / batch.len() as f32);
    (total_loss / batch.len() as f32, total)
}

/// Trains `model` on `data` with MSE loss.
pub fn train(model: &mut FloatModel, data: &[Sample], cfg: TrainConfig) -> TrainStats {
    assert!(!data.is_empty(), "empty dataset");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut adam = AdamState::new(model);
    let mut losses = Vec::with_capacity(cfg.steps);
    for _ in 0..cfg.steps {
        let batch: Vec<&Sample> = (0..cfg.batch)
            .map(|_| &data[rng.gen_range(0..data.len())])
            .collect();
        let (loss, grads) = batch_grads(model, &batch, cfg.threads);
        adam.step(model, &grads, cfg.lr);
        losses.push(loss);
    }
    let tail = (cfg.steps / 10).max(1);
    let final_loss = losses[losses.len() - tail..].iter().sum::<f32>() / tail as f32;
    TrainStats { losses, final_loss }
}

/// Trains a classifier with softmax cross-entropy (recognition case study).
pub fn train_classifier(
    model: &mut FloatModel,
    data: &[(Tensor<f32>, usize)],
    cfg: TrainConfig,
) -> TrainStats {
    assert!(!data.is_empty(), "empty dataset");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut adam = AdamState::new(model);
    let mut losses = Vec::with_capacity(cfg.steps);
    for _ in 0..cfg.steps {
        let mut loss_sum = 0.0f32;
        let mut grads: Vec<LayerGrads> = Vec::new();
        for _ in 0..cfg.batch {
            let (img, class) = &data[rng.gen_range(0..data.len())];
            let cache = model.forward(img);
            let (l, g) = softmax_ce_loss(cache.output(), *class);
            loss_sum += l;
            add_grads(&mut grads, model.backward(&cache, g));
        }
        scale_grads(&mut grads, 1.0 / cfg.batch as f32);
        adam.step(model, &grads, cfg.lr);
        losses.push(loss_sum / cfg.batch as f32);
    }
    let tail = (cfg.steps / 10).max(1);
    let final_loss = losses[losses.len() - tail..].iter().sum::<f32>() / tail as f32;
    TrainStats { losses, final_loss }
}

/// Mean PSNR of the model over a validation set.
pub fn eval_psnr(model: &FloatModel, data: &[Sample]) -> f64 {
    let mut total = 0.0;
    for s in data {
        let out = model.forward(&s.input);
        total += psnr(out.output(), &s.target, 1.0);
    }
    total / data.len() as f64
}

/// Top-1 accuracy of a classifier.
pub fn eval_accuracy(model: &FloatModel, data: &[(Tensor<f32>, usize)]) -> f64 {
    let mut hits = 0usize;
    for (img, class) in data {
        let out = model.forward(img);
        let pred = out
            .output()
            .as_slice()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("nonempty");
        if pred == *class {
            hits += 1;
        }
    }
    hits as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{make_dataset, TaskKind};
    use ecnn_model::ernet::{ErNetSpec, ErNetTask};

    #[test]
    fn training_reduces_denoise_loss() {
        let ir = ErNetSpec::new(ErNetTask::Dn, 1, 1, 0).build().unwrap();
        let mut fm = FloatModel::from_model(&ir, 11);
        let data = make_dataset(TaskKind::denoise25(), 8, 24, 7);
        let stats = train(
            &mut fm,
            &data,
            TrainConfig {
                steps: 30,
                batch: 2,
                lr: 2e-3,
                seed: 1,
                threads: 2,
            },
        );
        let early: f32 = stats.losses[..5].iter().sum::<f32>() / 5.0;
        assert!(
            stats.final_loss < early * 0.8,
            "loss did not drop: {} -> {}",
            early,
            stats.final_loss
        );
    }

    #[test]
    fn trained_denoiser_beats_identity() {
        let ir = ErNetSpec::new(ErNetTask::Dn, 1, 1, 0).build().unwrap();
        let mut fm = FloatModel::from_model(&ir, 13);
        let train_data = make_dataset(TaskKind::denoise25(), 12, 24, 21);
        let val = make_dataset(TaskKind::denoise25(), 4, 24, 999);
        // The Dn template has no global input skip (faithful to the paper's
        // "SR4ERNet minus upsamplers" derivation), so reconstruction itself
        // must be learned — ~300 steps suffice at this scale.
        train(
            &mut fm,
            &train_data,
            TrainConfig {
                steps: 300,
                batch: 4,
                lr: 3e-3,
                seed: 2,
                threads: 2,
            },
        );
        let model_psnr = eval_psnr(&fm, &val);
        let noisy_psnr: f64 = val
            .iter()
            .map(|s| ecnn_tensor::psnr(&s.input, &s.target, 1.0))
            .sum::<f64>()
            / val.len() as f64;
        assert!(
            model_psnr > noisy_psnr + 0.5,
            "denoiser {model_psnr:.2} dB vs noisy {noisy_psnr:.2} dB"
        );
    }

    #[test]
    fn mse_loss_gradient_shape_and_sign() {
        let out = Tensor::from_fn(1, 2, 2, |_, y, x| (y + x) as f32);
        let target = Tensor::zeros(1, 2, 2);
        let (loss, grad) = mse_loss(&out, &target);
        assert!(loss > 0.0);
        assert!(grad.at(0, 1, 1) > 0.0);
        assert_eq!(grad.at(0, 0, 0), 0.0);
    }

    #[test]
    fn softmax_ce_prefers_true_class() {
        let mut out = Tensor::zeros(4, 1, 1);
        *out.at_mut(2, 0, 0) = 3.0;
        let (loss_true, grad) = softmax_ce_loss(&out, 2);
        let (loss_false, _) = softmax_ce_loss(&out, 0);
        assert!(loss_true < loss_false);
        assert!(grad.at(2, 0, 0) < 0.0); // push the true logit up
        assert!(grad.at(0, 0, 0) > 0.0);
    }

    #[test]
    fn threaded_and_single_threaded_agree() {
        let ir = ErNetSpec::new(ErNetTask::Dn, 1, 1, 0).build().unwrap();
        let fm = FloatModel::from_model(&ir, 17);
        let data = make_dataset(TaskKind::denoise25(), 4, 16, 3);
        let batch: Vec<&Sample> = data.iter().collect();
        let (l1, g1) = batch_grads(&fm, &batch, 1);
        let (l2, g2) = batch_grads(&fm, &batch, 2);
        assert!((l1 - l2).abs() < 1e-6);
        for (a, b) in g1.iter().zip(&g2) {
            for (x, y) in a.dw.iter().zip(&b.dw) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }
}
