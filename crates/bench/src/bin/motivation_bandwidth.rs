//! Section 2 motivation: frame-based DRAM bandwidth (Eq. 1), the fused-layer
//! SRAM alternative, and the compute wall — closed forms first, then the
//! same story through the unified backend API on an in-budget ERNet.

use ecnn_baselines::framebased::{eq1_plain_bandwidth, frame_vs_block_ratio, required_tops};
use ecnn_baselines::fusion::fused_line_buffer_bytes;
use ecnn_baselines::registry;
use ecnn_bench::{section, workload_row};
use ecnn_core::engine::FrameReport;
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_model::{zoo, RealTimeSpec};

fn main() {
    section("Eq. 1: frame-based feature bandwidth for VDSR (64ch, D=20, L=16)");
    for (name, w, h) in [("Full HD 30fps", 1920, 1080), ("4K UHD 30fps", 3840, 2160)] {
        let bw = eq1_plain_bandwidth(h, w, 64, 20, 30.0, 16);
        println!("  {name:<14}: {:>7.1} GB/s", bw / 1e9);
    }
    println!("(paper: 303 GB/s at Full HD; 4x at UHD — unaffordable at the edge)");

    section("compute wall");
    println!(
        "  VDSR @HD30 : {:>6.1} TOPS   VDSR @UHD30: {:>6.1} TOPS",
        required_tops(&zoo::vdsr(), 1920, 1080, 30.0),
        required_tops(&zoo::vdsr(), 3840, 2160, 30.0)
    );

    section("fused-layer alternative (line buffers)");
    println!(
        "  VDSR @Full HD: {:.1} MB of SRAM (paper: 9.3 MB)",
        fused_line_buffer_bytes(&zoo::vdsr(), 1920, 16) / 1e6
    );
    println!(
        "  SRResNet     : {:.1} MB",
        fused_line_buffer_bytes(&zoo::srresnet(), 1920 / 4, 16) / 1e6
    );

    section("frame-based vs block-based traffic ratio (plain nets)");
    println!(
        "  VDSR at NBR=26 (beta=0.4): {:.0}x more DRAM traffic frame-based",
        frame_vs_block_ratio(64, 20, 26.0)
    );

    section("the same story through the unified backend API (DnERNet-B3R1N0 @UHD30)");
    let w = workload_row(
        ErNetSpec::new(ErNetTask::Dn, 3, 1, 0),
        128,
        RealTimeSpec::UHD30,
    );
    let reports: Vec<FrameReport> = registry()
        .iter()
        .map(|b| b.frame_report(&w).expect("all backends report"))
        .collect();
    println!("{}", FrameReport::table(&reports));
}
