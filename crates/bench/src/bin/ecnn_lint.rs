//! `ecnn-lint` — static verification of the shipped paper models.
//!
//! Runs the [`mod@ecnn_isa::verify`] pass (plane re-derivation, fixed-point
//! interval analysis, liveness/aliasing checks) plus the plan cross-check
//! over every compiled paper model: the Table 4 / Appendix A ERNet matrix
//! and the Section 7.3 style-transfer pair.
//!
//! Exit codes (CI-friendly):
//!
//! * `0` — every program verifies clean (no errors, no lints),
//! * `1` — lints only (warnings printed, hard guarantees hold),
//! * `2` — at least one hard error (overflow, aliasing, shape, …).

use ecnn_isa::compile::compile;
use ecnn_isa::params::QuantizedModel;
use ecnn_isa::verify::{verify_compiled, DiagCode, Diagnostic, Severity, VerifyReport};
use ecnn_model::zoo;
use ecnn_sim::exec::{crosscheck_plan, BlockPlan};

/// A program-level finding raised by the harness itself (compile or plan
/// failure on a model the verifier should have been able to check).
fn harness_error(detail: String) -> Diagnostic {
    Diagnostic {
        code: DiagCode::PlanDivergence,
        severity: Severity::Error,
        instr: None,
        detail,
    }
}

/// Verifies one compiled model and prints its findings; returns the report.
fn lint_one(name: &str, qm: &QuantizedModel, block: usize) -> VerifyReport {
    let compiled = match compile(qm, block) {
        Ok(c) => c,
        Err(e) => {
            println!("{name}: COMPILE ERROR: {e}");
            let mut rpt = VerifyReport::default();
            rpt.diagnostics
                .push(harness_error(format!("compilation failed: {e}")));
            return rpt;
        }
    };
    let mut report = verify_compiled(&compiled);
    match BlockPlan::new(&compiled.program, &compiled.leafs) {
        Ok(plan) => {
            let divergences = crosscheck_plan(&plan, &report);
            report.diagnostics.extend(divergences);
        }
        Err(e) => report.diagnostics.push(harness_error(format!(
            "BlockPlan rejected a verifier-admitted program: {e}"
        ))),
    }
    report.rank();
    let (ne, nl) = (report.errors().count(), report.lints().count());
    let verdict = match (ne, nl) {
        (0, 0) => "clean".to_string(),
        (0, l) => format!("{l} lint(s)"),
        (e, l) => format!("{e} error(s), {l} lint(s)"),
    };
    println!(
        "{name}: {} instr, {verdict}",
        compiled.program.instructions.len()
    );
    for d in &report.diagnostics {
        println!("  {d}");
    }
    report
}

fn main() {
    let mut models: Vec<(String, QuantizedModel, usize)> = Vec::new();
    for (rt, spec, xi) in ecnn_bench::model_matrix()
        .into_iter()
        .chain(ecnn_bench::dn12_matrix())
    {
        let model = spec.build().expect("paper matrix specs are valid");
        models.push((
            format!("{spec} @ {}", rt.name),
            QuantizedModel::uniform(&model),
            xi,
        ));
    }
    let (enc, dec) = zoo::style_transfer();
    let qenc = QuantizedModel::uniform(&enc);
    let enc_do_side = compile(&qenc, 256)
        .expect("style encoder compiles")
        .program
        .do_side;
    models.push(("style-encoder".into(), qenc, 256));
    models.push((
        "style-decoder".into(),
        QuantizedModel::uniform(&dec),
        enc_do_side,
    ));

    let mut worst: Option<Severity> = None;
    for (name, qm, xi) in &models {
        let report = lint_one(name, qm, *xi);
        for d in &report.diagnostics {
            worst = Some(worst.map_or(d.severity, |w| w.max(d.severity)));
        }
    }
    let code = match worst {
        None => 0,
        Some(Severity::Warning) => 1,
        Some(Severity::Error) => 2,
    };
    println!("ecnn-lint: {} model(s) checked, exit {code}", models.len());
    std::process::exit(code);
}
