//! The end-to-end model-optimization pipeline of Section 4.2:
//! scan → pick → polish → quantize (+ fine-tune).

use crate::data::{make_dataset, Sample, TaskKind};
use crate::float_model::FloatModel;
use crate::quant::{finetune, quantize, QuantConfig};
use crate::schedule::StageSpec;
use crate::train::{eval_psnr, train};
use ecnn_isa::params::QuantizedModel;
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_model::scan::{scan_candidates, Candidate};
use ecnn_tensor::Tensor;

/// A scanned candidate with its lightweight-training quality.
#[derive(Clone, Debug)]
pub struct ScoredCandidate {
    /// The hardware-feasibility data from the analytical scan.
    pub candidate: Candidate,
    /// Validation PSNR after lightweight training.
    pub psnr: f64,
}

/// Scan stage: lightweight-train every feasible `(B, RE)` candidate and
/// score it on a validation set (Fig. 8 bottom panel).
///
/// `b_stride` subsamples the candidate list to bound CPU cost (1 = all).
// The scan is configured by exactly these eight paper-level knobs; a
// config struct would only rename them.
#[allow(clippy::too_many_arguments)]
pub fn scan_stage(
    task: ErNetTask,
    data_task: TaskKind,
    budget_kop: f64,
    xi: f64,
    b_max: usize,
    b_stride: usize,
    stage: &StageSpec,
    seed: u64,
) -> Vec<ScoredCandidate> {
    let candidates = scan_candidates(task, budget_kop, xi, b_max);
    let train_data = make_dataset(data_task, 12, stage.patch, seed);
    let val = make_dataset(data_task, 4, stage.patch, seed ^ 0xFFFF);
    candidates
        .into_iter()
        .step_by(b_stride.max(1))
        .map(|candidate| {
            let ir = candidate.spec.build().expect("scan produced valid spec");
            let mut fm = FloatModel::from_model(&ir, seed ^ candidate.spec.b as u64);
            train(&mut fm, &train_data, stage.to_train_config(seed));
            let psnr = eval_psnr(&fm, &val);
            ScoredCandidate { candidate, psnr }
        })
        .collect()
}

/// Picks the best-scoring candidate.
pub fn pick_best(scored: &[ScoredCandidate]) -> Option<&ScoredCandidate> {
    scored
        .iter()
        .max_by(|a, b| a.psnr.partial_cmp(&b.psnr).expect("finite"))
}

/// Polish stage: full training of one spec. Returns the float model and its
/// validation PSNR.
pub fn polish(
    spec: ErNetSpec,
    data_task: TaskKind,
    stage: &StageSpec,
    seed: u64,
) -> (FloatModel, f64) {
    let ir = spec.build().expect("valid spec");
    let mut fm = FloatModel::from_model(&ir, seed);
    let train_data = make_dataset(data_task, 16, stage.patch, seed ^ 0xAB);
    let val = make_dataset(data_task, 4, stage.patch, seed ^ 0xCD);
    train(&mut fm, &train_data, stage.to_train_config(seed));
    let psnr = eval_psnr(&fm, &val);
    (fm, psnr)
}

/// Quantization stage: Q-format search plus STE fine-tuning. Returns the
/// deployable model and the fixed-point validation PSNR.
pub fn quantize_stage(
    fm: &mut FloatModel,
    spec: ErNetSpec,
    data_task: TaskKind,
    stage: &StageSpec,
    qcfg: QuantConfig,
    seed: u64,
) -> (QuantizedModel, f64) {
    let ir = spec.build().expect("valid spec");
    let data = make_dataset(data_task, 16, stage.patch, seed ^ 0xEF);
    let val = make_dataset(data_task, 4, stage.patch, seed ^ 0x12);
    let calib: Vec<Tensor<f32>> = data.iter().take(6).map(|s| s.input.clone()).collect();
    let qm = finetune(fm, &ir, &data, &calib, qcfg, stage.to_train_config(seed));
    let psnr = crate::quant::eval_psnr_fixed(&qm, &val);
    (qm, psnr)
}

/// One-shot quantization without fine-tuning (for drop measurements).
pub fn quantize_only(
    fm: &FloatModel,
    spec: ErNetSpec,
    data_task: TaskKind,
    patch: usize,
    qcfg: QuantConfig,
    seed: u64,
) -> (QuantizedModel, f64) {
    let ir = spec.build().expect("valid spec");
    let data = make_dataset(data_task, 6, patch, seed ^ 0xEF);
    let val = make_dataset(data_task, 4, patch, seed ^ 0x12);
    let calib: Vec<Tensor<f32>> = data.iter().map(|s| s.input.clone()).collect();
    let qm = quantize(fm, &ir, &calib, qcfg);
    let psnr = crate::quant::eval_psnr_fixed(&qm, &val);
    (qm, psnr)
}

/// Baseline PSNR of the degraded inputs themselves (noisy / bilinear).
pub fn input_psnr(data: &[Sample]) -> f64 {
    data.iter()
        .map(|s| {
            if s.input.shape() == s.target.shape() {
                ecnn_tensor::psnr(&s.input, &s.target, 1.0)
            } else {
                let scale = s.target.height() / s.input.height();
                let up = ecnn_tensor::image::upsample_bilinear(&s.input, scale);
                ecnn_tensor::psnr(&up, &s.target, 1.0)
            }
        })
        .sum::<f64>()
        / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::repro_stages;

    #[test]
    fn tiny_scan_scores_candidates() {
        let stages = repro_stages(1);
        let mut quick = stages[0].clone();
        quick.steps = 8;
        quick.patch = 16;
        let scored = scan_stage(
            ErNetTask::Dn,
            TaskKind::denoise25(),
            164.0,
            128.0,
            4,
            2,
            &quick,
            1,
        );
        assert!(!scored.is_empty());
        assert!(pick_best(&scored).is_some());
        for s in &scored {
            assert!(s.psnr.is_finite());
        }
    }

    #[test]
    fn polish_then_quantize_produces_deployable_model() {
        let stages = repro_stages(1);
        let spec = ErNetSpec::new(ErNetTask::Dn, 1, 1, 0);
        let mut polish_stage = stages[1].clone();
        polish_stage.steps = 40;
        polish_stage.patch = 24;
        let (mut fm, float_psnr) = polish(spec, TaskKind::denoise25(), &polish_stage, 2);
        assert!(float_psnr > 10.0);
        let mut ft = stages[2].clone();
        ft.steps = 12;
        ft.patch = 24;
        let (qm, fixed_psnr) = quantize_stage(
            &mut fm,
            spec,
            TaskKind::denoise25(),
            &ft,
            QuantConfig::default(),
            3,
        );
        qm.check().unwrap();
        assert!(
            fixed_psnr > float_psnr - 2.5,
            "float {float_psnr} fixed {fixed_psnr}"
        );
    }
}
