//! Table 4: PSNR of polished ERNet models per spec (CPU-scale training on
//! synthetic data — absolute values differ from the paper; the orderings
//! are the reproduced claim, see EXPERIMENTS.md).

use ecnn_bench::{bench_scale, section};
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_nn::data::{make_dataset, TaskKind};
use ecnn_nn::pipeline::{input_psnr, polish};
use ecnn_nn::schedule::repro_stages;

fn main() {
    let stage = &repro_stages(bench_scale())[1];
    section("Table 4: polished ERNet PSNR per spec (synthetic validation)");

    // Per family: the UHD30 (shallow) and HD30 (deep) picks. Deeper models
    // with more budget should score at least as well.
    let rows = [
        (
            "SR2ERNet UHD30",
            ErNetSpec::new(ErNetTask::Sr2, 4, 2, 0),
            TaskKind::Sr { scale: 2 },
        ),
        (
            "SR2ERNet HD30",
            ErNetSpec::new(ErNetTask::Sr2, 8, 2, 0),
            TaskKind::Sr { scale: 2 },
        ),
        (
            "DnERNet UHD30",
            ErNetSpec::new(ErNetTask::Dn, 3, 1, 0),
            TaskKind::denoise25(),
        ),
        (
            "DnERNet HD30",
            ErNetSpec::new(ErNetTask::Dn, 6, 1, 0),
            TaskKind::denoise25(),
        ),
    ];
    for (label, spec, task) in rows {
        let (_, psnr) = polish(spec, task, stage, 11);
        let val = make_dataset(task, 4, stage.patch, 11 ^ 0xCD);
        println!(
            "{label:<16} ({}): {psnr:.2} dB  [degraded input baseline: {:.2} dB]",
            spec.name(),
            input_psnr(&val)
        );
    }
    println!("(paper: HD30 picks match SRResNet/FFDNet; UHD30 SR4 beats VDSR by 0.49 dB)");
    println!("(run with ECNN_BENCH_SCALE>=10 for converged CPU trainings)");
}
