//! Offline stand-in for the `serde` facade: re-exports the no-op derive
//! macros so `use serde::{Deserialize, Serialize}` keeps compiling.

pub use serde_derive::{Deserialize, Serialize};
