//! ERNet model builders (paper Section 4 and Appendix A).
//!
//! The template follows Fig. 7 / Fig. 18 (see DESIGN.md §6):
//!
//! ```text
//! [unshuffle]  PixelUnshuffle ×2            (DnERNet-12ch only)
//! head         CONV3×3 (in→32)
//! body         B × ERModule(32, Rm)         (first N modules use R+1, rest R)
//! bodyE        CONV3×3 (32→32) + global residual from head output
//! up × k       CONV3×3 (32→128) + PixelShuffle ×2   (k = 2 for SR×4, 1 for SR×2)
//! tail         CONV3×3 (32→out)
//! [shuffle]    PixelShuffle ×2              (DnERNet-12ch only)
//! ```
//!
//! which yields `D = B + 3 + k` CONV3×3 stages — consistent with the paper's
//! "six-layer DnERNet" for B=3 and the six-line FBISA program of Fig. 18.

use crate::layer::{Activation, Layer, Op, SkipRef};
use crate::model::{Model, ModelError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The ERNet application family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErNetTask {
    /// Four-times super-resolution (two pixel-shuffle upsamplers).
    Sr4,
    /// Two-times super-resolution (one upsampler).
    Sr2,
    /// Denoising at full resolution.
    Dn,
    /// Denoising on 2×2-unshuffled 12-channel inputs (Appendix A).
    Dn12,
}

impl ErNetTask {
    /// Model-name prefix (`SR4ERNet`, `DnERNet-12ch`, …).
    pub fn prefix(self) -> &'static str {
        match self {
            ErNetTask::Sr4 => "SR4ERNet",
            ErNetTask::Sr2 => "SR2ERNet",
            ErNetTask::Dn => "DnERNet",
            ErNetTask::Dn12 => "DnERNet-12ch",
        }
    }

    /// Number of ×2 upsampler stages.
    pub fn upsamplers(self) -> usize {
        match self {
            ErNetTask::Sr4 => 2,
            ErNetTask::Sr2 => 1,
            ErNetTask::Dn | ErNetTask::Dn12 => 0,
        }
    }

    /// Output-image scale relative to the input image.
    pub fn scale(self) -> usize {
        match self {
            ErNetTask::Sr4 => 4,
            ErNetTask::Sr2 => 2,
            ErNetTask::Dn | ErNetTask::Dn12 => 1,
        }
    }
}

/// Hyper-parameters of one ERNet: `B` modules with base expansion `R`, the
/// first `N` of which use `R+1` (so `RE = R + N/B`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ErNetSpec {
    /// Task family.
    pub task: ErNetTask,
    /// Number of ERModules (depth driver).
    pub b: usize,
    /// Base integer expansion ratio.
    pub r: usize,
    /// Number of leading modules with expansion `R+1`.
    pub n: usize,
    /// Feature width (32 in all paper models).
    pub channels: usize,
}

impl ErNetSpec {
    /// Spec with the paper's 32-channel width.
    ///
    /// # Panics
    ///
    /// Panics if `n > b`, `b == 0`, or `r == 0`.
    pub fn new(task: ErNetTask, b: usize, r: usize, n: usize) -> Self {
        assert!(b > 0, "B must be positive");
        assert!(r > 0, "R must be positive");
        assert!(n <= b, "N must not exceed B");
        Self {
            task,
            b,
            r,
            n,
            channels: 32,
        }
    }

    /// Overall fractional expansion ratio `RE = R + N/B`.
    pub fn re(&self) -> f64 {
        self.r as f64 + self.n as f64 / self.b as f64
    }

    /// Canonical model name, e.g. `SR4ERNet-B34R4N0`.
    pub fn name(&self) -> String {
        format!("{}-B{}R{}N{}", self.task.prefix(), self.b, self.r, self.n)
    }

    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] (cannot occur for well-formed specs; kept
    /// for API honesty).
    pub fn build(&self) -> Result<Model, ModelError> {
        let c = self.channels;
        let mut layers = Vec::new();
        let (in_logical, out_logical) = match self.task {
            ErNetTask::Dn12 => {
                layers.push(Layer::new(Op::PixelUnshuffle { factor: 2 }));
                (3, 3)
            }
            _ => (3, 3),
        };
        let head_in = if self.task == ErNetTask::Dn12 {
            12
        } else {
            in_logical
        };
        layers.push(Layer::new(Op::Conv3x3 {
            in_c: head_in,
            out_c: c,
            act: Activation::None,
        }));
        let head_idx = layers.len() - 1;
        for m in 0..self.b {
            let rm = if m < self.n { self.r + 1 } else { self.r };
            layers.push(Layer::new(Op::ErModule {
                channels: c,
                expansion: rm,
            }));
        }
        // Body-end convolution with the global residual back to the head.
        layers.push(Layer::with_skip(
            Op::Conv3x3 {
                in_c: c,
                out_c: c,
                act: Activation::None,
            },
            SkipRef::Layer(head_idx),
        ));
        for _ in 0..self.task.upsamplers() {
            layers.push(Layer::new(Op::Conv3x3 {
                in_c: c,
                out_c: c * 4,
                act: Activation::None,
            }));
            layers.push(Layer::new(Op::PixelShuffle { factor: 2 }));
        }
        let tail_out = if self.task == ErNetTask::Dn12 {
            12
        } else {
            out_logical
        };
        layers.push(Layer::new(Op::Conv3x3 {
            in_c: c,
            out_c: tail_out,
            act: Activation::None,
        }));
        if self.task == ErNetTask::Dn12 {
            layers.push(Layer::new(Op::PixelShuffle { factor: 2 }));
        }
        Model::new(self.name(), in_logical, out_logical, layers)
    }
}

impl fmt::Display for ErNetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Error from parsing an ERNet model name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseErNetError(String);

impl fmt::Display for ParseErNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ERNet name: {}", self.0)
    }
}

impl std::error::Error for ParseErNetError {}

impl FromStr for ErNetSpec {
    type Err = ParseErNetError;

    /// Parses names like `SR4ERNet-B17R3N1` or `DnERNet-12ch-B8R2N5`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseErNetError(s.to_string());
        let (task, rest) = if let Some(r) = s.strip_prefix("SR4ERNet-") {
            (ErNetTask::Sr4, r)
        } else if let Some(r) = s.strip_prefix("SR2ERNet-") {
            (ErNetTask::Sr2, r)
        } else if let Some(r) = s.strip_prefix("DnERNet-12ch-") {
            (ErNetTask::Dn12, r)
        } else if let Some(r) = s.strip_prefix("DnERNet-") {
            (ErNetTask::Dn, r)
        } else {
            return Err(err());
        };
        let rest = rest.strip_prefix('B').ok_or_else(err)?;
        let rpos = rest.find('R').ok_or_else(err)?;
        let npos = rest.find('N').ok_or_else(err)?;
        if npos < rpos {
            return Err(err());
        }
        let b: usize = rest[..rpos].parse().map_err(|_| err())?;
        let r: usize = rest[rpos + 1..npos].parse().map_err(|_| err())?;
        let n: usize = rest[npos + 1..].parse().map_err(|_| err())?;
        if b == 0 || r == 0 || n > b {
            return Err(err());
        }
        Ok(ErNetSpec::new(task, b, r, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complexity::{ChannelMode, Complexity};

    #[test]
    fn names_round_trip() {
        for (task, b, r, n) in [
            (ErNetTask::Sr4, 34, 4, 0),
            (ErNetTask::Sr4, 17, 3, 1),
            (ErNetTask::Sr2, 10, 2, 5),
            (ErNetTask::Dn, 3, 1, 0),
            (ErNetTask::Dn12, 8, 2, 5),
        ] {
            let spec = ErNetSpec::new(task, b, r, n);
            let parsed: ErNetSpec = spec.name().parse().unwrap();
            assert_eq!(parsed, spec);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("SRXERNet-B1R1N0".parse::<ErNetSpec>().is_err());
        assert!("SR4ERNet-B0R1N0".parse::<ErNetSpec>().is_err());
        assert!("SR4ERNet-B4N1R3".parse::<ErNetSpec>().is_err());
        assert!("SR4ERNet-B4R3N9".parse::<ErNetSpec>().is_err());
        assert!("DnERNet".parse::<ErNetSpec>().is_err());
    }

    #[test]
    fn re_is_fractional() {
        assert_eq!(
            ErNetSpec::new(ErNetTask::Sr4, 17, 3, 1).re(),
            3.0 + 1.0 / 17.0
        );
        assert_eq!(ErNetSpec::new(ErNetTask::Dn, 3, 1, 0).re(), 1.0);
    }

    #[test]
    fn depth_is_b_plus_3_plus_k() {
        let dn = ErNetSpec::new(ErNetTask::Dn, 3, 1, 0).build().unwrap();
        assert_eq!(dn.depth_conv3x3(), 6);
        let sr4 = ErNetSpec::new(ErNetTask::Sr4, 17, 3, 1).build().unwrap();
        assert_eq!(sr4.depth_conv3x3(), 17 + 3 + 2);
        let sr2 = ErNetSpec::new(ErNetTask::Sr2, 10, 2, 0).build().unwrap();
        assert_eq!(sr2.depth_conv3x3(), 10 + 3 + 1);
    }

    #[test]
    fn scales_match_task() {
        assert_eq!(
            ErNetSpec::new(ErNetTask::Sr4, 4, 1, 0)
                .build()
                .unwrap()
                .output_scale(),
            4.0
        );
        assert_eq!(
            ErNetSpec::new(ErNetTask::Sr2, 4, 1, 0)
                .build()
                .unwrap()
                .output_scale(),
            2.0
        );
        assert_eq!(
            ErNetSpec::new(ErNetTask::Dn12, 4, 1, 0)
                .build()
                .unwrap()
                .output_scale(),
            1.0
        );
    }

    #[test]
    fn dn12_uses_12_channel_core() {
        let m = ErNetSpec::new(ErNetTask::Dn12, 8, 2, 5).build().unwrap();
        // input 3ch, unshuffled to 12, head to 32.
        let walk = m.channel_walk();
        assert_eq!(walk[0], 3);
        assert_eq!(walk[1], 12);
        assert_eq!(walk[2], 32);
        assert_eq!(*walk.last().unwrap(), 3);
    }

    #[test]
    fn first_n_modules_use_r_plus_1() {
        let m = ErNetSpec::new(ErNetTask::Dn, 4, 2, 2).build().unwrap();
        let expansions: Vec<usize> = m
            .layers()
            .iter()
            .filter_map(|l| match l.op {
                Op::ErModule { expansion, .. } => Some(expansion),
                _ => None,
            })
            .collect();
        assert_eq!(expansions, vec![3, 3, 2, 2]);
    }

    #[test]
    fn sr4_b17r3n1_intrinsic_complexity_matches_paper_scale() {
        // The paper's UHD30 pick; its intrinsic complexity must sit near (but
        // below) the 164 KOP/px budget divided by its NCR (~1.5).
        let m = ErNetSpec::new(ErNetTask::Sr4, 17, 3, 1).build().unwrap();
        let c = Complexity::of(&m, ChannelMode::Hardware);
        assert!(
            c.kop_per_pixel > 90.0 && c.kop_per_pixel < 130.0,
            "intrinsic {} KOP/px",
            c.kop_per_pixel
        );
    }

    #[test]
    fn global_residual_points_at_head() {
        let m = ErNetSpec::new(ErNetTask::Dn, 3, 1, 0).build().unwrap();
        let body_end = m
            .layers()
            .iter()
            .enumerate()
            .find(|(_, l)| l.skip.is_some())
            .map(|(i, l)| (i, l.skip.unwrap()))
            .unwrap();
        assert_eq!(body_end.1, SkipRef::Layer(0));
        assert_eq!(body_end.0, 1 + 3); // head + 3 modules
    }

    #[test]
    fn param_counts_are_small_models() {
        // Paper Section 5.2: VDSR 651K, SRResNet 1479K; ERNets are in the
        // same small-model class (well under ResNet-18's 11M).
        let m = ErNetSpec::new(ErNetTask::Sr4, 34, 4, 0).build().unwrap();
        let p = m.param_count();
        assert!(p > 800_000 && p < 2_600_000, "params {p}");
    }
}
