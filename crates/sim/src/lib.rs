//! The eCNN processor simulator (paper Section 6).
//!
//! Three complementary views of the machine:
//!
//! * [`exec`] — a **functional**, bit-exact executor of FBISA programs:
//!   8-bit Q-format features and weights, full-precision accumulation, the
//!   ER internal requantization, `srcS` residual/partial-sum accumulation,
//!   pixel-shuffle and pooling write reorders. Validated against the
//!   `ecnn-tensor` golden kernels and the `ecnn-nn` fixed-point reference.
//!   Split into a plan phase ([`exec::BlockPlan`]: one up-front walk
//!   computing every plane's shape and lifetime, plus the packed
//!   kernel-parameter cache) and an execute phase ([`exec::execute`])
//!   running in place against a reusable [`exec::PlanePool`] arena.
//! * [`kernels`] — the flat-slice convolution micro-kernels the executor
//!   dispatches to (interior/border split over raw row slices), together
//!   with the kept scalar reference kernels used as perf baseline and
//!   parity oracle, and the explicit-SIMD variants in [`kernels::simd`]
//!   (AVX2/SSE2/NEON with runtime dispatch, plus the verifier-licensed
//!   narrow `i32` accumulation path).
//! * [`timing`] — the **cycle** model: the two-stage instruction pipeline
//!   (IDU parameter decoding for instruction *i+1* overlaps CIU compute of
//!   instruction *i*), one leaf-module per 4×2 tile per cycle in the CIU,
//!   256 decode cycles per leaf-module in the IDU, per-frame block counts
//!   and DRAM traffic.
//! * [`cost`] — the **area/power** model calibrated to the paper's Table 6
//!   layout results (55.23 mm², 6.94 W average at 40 nm; see DESIGN.md §4
//!   for the substitution rationale), plus the eight-bank block-buffer
//!   conflict model of Fig. 17 in [`banking`].
//!
//! [`config`] holds the Table 2 machine constants shared by all views.

// `deny` rather than the workspace-wide `forbid`: the single audited
// [`kernels::simd`] module opts back in with a scoped `allow` for its
// `std::arch` intrinsics. Everything else in the crate stays unsafe-free
// (CI greps that `unsafe` appears nowhere outside `kernels/simd.rs`).
#![deny(unsafe_code)]
#![deny(missing_docs)]
pub mod banking;
pub mod config;
pub mod cost;
pub mod exec;
pub mod kernels;
pub mod timing;

pub use config::EcnnConfig;
pub use cost::{AreaReport, PowerReport};
pub use exec::{
    crosscheck_plan, execute, execute_traced, execute_with, BlockExecutor, BlockPlan, ExecError,
    ExecStats, ExecTrace, InstrTrace, KernelVariant, Kernels, PlaneInfo, PlaneKey, PlanePool,
    RangeViolation,
};
pub use kernels::simd::SimdLevel;
pub use timing::{simulate_frame, FrameReport};
