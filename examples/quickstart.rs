//! Quickstart: build a DnERNet, compile it to FBISA, run a real image
//! through the bit-exact block pipeline and print the system report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ecnn_repro::core::Accelerator;
use ecnn_repro::isa::params::QuantizedModel;
use ecnn_repro::model::ernet::{ErNetSpec, ErNetTask};
use ecnn_repro::model::RealTimeSpec;
use ecnn_repro::tensor::{ImageKind, SyntheticImage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper's UHD30 denoiser: DnERNet-B3R1N0 (six CONV3x3 layers).
    let spec = ErNetSpec::new(ErNetTask::Dn, 3, 1, 0);
    let model = spec.build()?;
    println!("model: {model}");

    // 2. Deterministic demo parameters (train real ones with ecnn-nn; see
    //    the train_and_quantize example).
    let qm = QuantizedModel::uniform(&model);

    // 3. Compile for 128x128 input blocks and print the FBISA program —
    //    the six-line listing of the paper's Fig. 18.
    let acc = Accelerator::paper();
    let dep = acc.deploy(&qm, 128)?;
    println!("{}", dep.compiled().program);

    // 4. Run an image through the block-partitioned, bit-exact simulator.
    let image = SyntheticImage::new(ImageKind::Mixed, 7).rgb(256, 256);
    let (output, stats) = dep.run_image(&image)?;
    println!(
        "processed {} blocks, {} instructions, output {:?}",
        stats.blocks,
        stats.exec.instructions,
        output.shape()
    );

    // 5. Report throughput / bandwidth / power at 4K UHD 30 fps.
    println!("{}", dep.system_report(RealTimeSpec::UHD30));
    Ok(())
}
