//! Dynamic fixed-point quantization (paper Section 4.3, Table 5).
//!
//! Two stages:
//!
//! 1. **Quantization** — per-group Q-format search minimizing L1 or L2 error
//!    (Eq. 4). Parameter distributions come from the float model; feature
//!    distributions are collected by inference on calibration images.
//! 2. **Fine-tuning** — straight-through-estimator training with fake-
//!    quantized weights and clipped ("clipped ReLU") activations, which
//!    recovers most of the quantization loss (paper: 0.08 dB residual drop).
//!
//! [`fixed_forward`] is an *independent* fixed-point reference implementing
//! the same datapath semantics as `ecnn-sim`'s executor — the two are
//! cross-checked bit-exactly in the integration tests.

use crate::data::Sample;
use crate::float_model::{FloatModel, FopKind};
use crate::train::{train, TrainConfig};
use ecnn_isa::params::{LayerParams, QuantizedModel};
use ecnn_model::layer::{Activation, PoolKind, SkipRef};
use ecnn_model::model::{InferenceKind, Model};
use ecnn_tensor::qformat::{rescale_code, NormOrder};
use ecnn_tensor::{QFormat, Tensor};

/// Quantization settings.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuantConfig {
    /// Error norm for Eq. (4).
    pub norm: NormOrder,
    /// Weight bit width (8, or 7 for the narrowed groups of Table 5).
    pub weight_bits: u8,
    /// Input image format.
    pub input_q: QFormat,
}

impl Default for QuantConfig {
    fn default() -> Self {
        Self {
            norm: NormOrder::L1,
            weight_bits: 8,
            input_q: QFormat::unsigned(8),
        }
    }
}

fn hw(c: usize) -> usize {
    c.div_ceil(32) * 32
}

/// Pads a logical `[out][in][k]` weight vector to hardware channel widths.
fn pad_w(w: &[f32], out_c: usize, in_c: usize, k: usize, q: QFormat) -> Vec<i16> {
    let (oh, ih) = (hw(out_c), hw(in_c));
    let mut out = vec![0i16; oh * ih * k];
    for oc in 0..out_c {
        for ic in 0..in_c {
            for kk in 0..k {
                out[(oc * ih + ic) * k + kk] = q.quantize(w[(oc * in_c + ic) * k + kk]);
            }
        }
    }
    out
}

fn pad_b(b: &[f32], out_c: usize, q: QFormat) -> Vec<i16> {
    let mut out = vec![0i16; hw(out_c)];
    for (i, &v) in b.iter().enumerate() {
        out[i] = q.quantize(v);
    }
    out
}

/// Subsamples a value collection to bound the format-search cost.
fn sample_values(t: &[f32], cap: usize) -> Vec<f32> {
    if t.len() <= cap {
        return t.to_vec();
    }
    let stride = t.len() / cap;
    t.iter().step_by(stride.max(1)).copied().collect()
}

/// Collected activation statistics per layer.
struct ActStats {
    /// Layer outputs (post-skip).
    out: Vec<Vec<f32>>,
    /// ER expanded features (post-ReLU).
    mid: Vec<Vec<f32>>,
}

fn collect_stats(fm: &FloatModel, calib: &[Tensor<f32>]) -> ActStats {
    let n = fm.layers.len();
    let mut stats = ActStats {
        out: vec![Vec::new(); n],
        mid: vec![Vec::new(); n],
    };
    for img in calib {
        let cache = fm.forward(img);
        for i in 0..n {
            stats.out[i].extend(sample_values(cache.vals[i + 1].as_slice(), 4096));
            if let Some(m) = &cache.mid[i] {
                stats.mid[i].extend(sample_values(m.as_slice(), 4096));
            }
        }
    }
    stats
}

/// Quantizes a trained float model into a deployable [`QuantizedModel`].
///
/// `ir` must be the IR the float model was built from (shapes are checked).
///
/// # Panics
///
/// Panics if the float model contains ablation-only ops (depthwise) or its
/// shapes disagree with `ir`.
pub fn quantize(
    fm: &FloatModel,
    ir: &Model,
    calib: &[Tensor<f32>],
    cfg: QuantConfig,
) -> QuantizedModel {
    assert_eq!(fm.layers.len(), ir.len(), "IR/float layer count mismatch");
    let stats = collect_stats(fm, calib);
    let mut layers = Vec::with_capacity(ir.len());
    for (i, (fl, il)) in fm.layers.iter().zip(ir.layers()).enumerate() {
        if !il.op.has_params() {
            layers.push(None);
            continue;
        }
        // Feature output format: unsigned only when provably non-negative
        // (ReLU output without residual).
        let out_signed = !matches!(
            fl.kind,
            FopKind::Conv3 {
                act: Activation::Relu,
                ..
            } | FopKind::Conv1 {
                act: Activation::Relu,
                ..
            }
        ) || fl.skip.is_some();
        let out_q = QFormat::fit(&stats.out[i], out_signed, 8, cfg.norm);
        let w = fl.effective_w();
        let (w3, w3_q, b3, b3_q, w1, w1_q, b1, b1_q, mid_q) = match fl.kind {
            FopKind::Conv3 { in_c, out_c, .. } => {
                let wq = QFormat::fit(&sample_values(&w, 50_000), true, cfg.weight_bits, cfg.norm);
                let bq = QFormat::fit(&fl.b, true, 8, cfg.norm);
                (
                    pad_w(&w, out_c, in_c, 9, wq),
                    wq,
                    pad_b(&fl.b, out_c, bq),
                    bq,
                    vec![],
                    wq,
                    vec![],
                    bq,
                    QFormat::unsigned(4),
                )
            }
            FopKind::Conv1 { in_c, out_c, .. } => {
                let wq = QFormat::fit(&sample_values(&w, 50_000), true, cfg.weight_bits, cfg.norm);
                let bq = QFormat::fit(&fl.b, true, 8, cfg.norm);
                (
                    vec![],
                    wq,
                    vec![],
                    bq,
                    pad_w(&w, out_c, in_c, 1, wq),
                    wq,
                    pad_b(&fl.b, out_c, bq),
                    bq,
                    QFormat::unsigned(4),
                )
            }
            FopKind::Er { c, e } => {
                let wide = c * e;
                let w3q = QFormat::fit(&sample_values(&w, 50_000), true, cfg.weight_bits, cfg.norm);
                let b3q = QFormat::fit(&fl.b, true, 8, cfg.norm);
                let w1q = QFormat::fit(
                    &sample_values(&fl.w1, 50_000),
                    true,
                    cfg.weight_bits,
                    cfg.norm,
                );
                let b1q = QFormat::fit(&fl.b1, true, 8, cfg.norm);
                let mid_q = QFormat::fit(&stats.mid[i], false, 8, cfg.norm);
                (
                    pad_w(&w, wide, c, 9, w3q),
                    w3q,
                    pad_b(&fl.b, wide, b3q),
                    b3q,
                    pad_w(&fl.w1, c, wide, 1, w1q),
                    w1q,
                    pad_b(&fl.b1, c, b1q),
                    b1q,
                    mid_q,
                )
            }
            other => panic!("{other:?} is not FBISA-deployable"),
        };
        layers.push(Some(LayerParams {
            w3,
            w3_q,
            b3,
            b3_q,
            w1,
            w1_q,
            b1,
            b1_q,
            out_q,
            mid_q,
        }));
    }
    QuantizedModel {
        model: ir.clone(),
        input_q: cfg.input_q,
        layers,
    }
}

/// Quantization-aware fine-tuning: fake-quantizes weights each step (STE on
/// the float shadows) and clamps activations to their fitted format ranges,
/// then re-exports the quantized model.
pub fn finetune(
    fm: &mut FloatModel,
    ir: &Model,
    data: &[Sample],
    calib: &[Tensor<f32>],
    qcfg: QuantConfig,
    tcfg: TrainConfig,
) -> QuantizedModel {
    // Fit formats on the current model and install activation clamps.
    let qm0 = quantize(fm, ir, calib, qcfg);
    for (fl, lp) in fm.layers.iter_mut().zip(&qm0.layers) {
        if let Some(p) = lp {
            fl.out_clamp = Some((p.out_q.min_value(), p.out_q.max_value()));
        }
    }
    // STE rounds: fake-quantize weights, take a few optimizer steps, repeat.
    let rounds = 4usize.min(tcfg.steps.max(1));
    let steps_per_round = (tcfg.steps / rounds).max(1);
    for _ in 0..rounds {
        let snapshot = quantize(fm, ir, calib, qcfg);
        // Fake-quantize: overwrite float weights with their round-trips.
        for (fl, lp) in fm.layers.iter_mut().zip(&snapshot.layers) {
            let Some(p) = lp else { continue };
            fake_quant(&mut fl.w, p.w3_q.min_value(), p.w3_q.max_value(), p.w3_q);
            fake_quant(&mut fl.w1, p.w1_q.min_value(), p.w1_q.max_value(), p.w1_q);
        }
        let mut cfg = tcfg;
        cfg.steps = steps_per_round;
        train(fm, data, cfg);
    }
    let out = quantize(fm, ir, calib, qcfg);
    // Remove the clamps so the float model remains usable.
    for fl in &mut fm.layers {
        fl.out_clamp = None;
    }
    out
}

fn fake_quant(w: &mut [f32], lo: f32, hi: f32, q: QFormat) {
    for v in w {
        *v = q.round_trip(v.clamp(lo, hi));
    }
}

/// Fixed-point reference forward pass mirroring the eCNN datapath
/// semantics: full-precision accumulation, acc-level residual adds, ER mid
/// requantization, single rounding per layer output.
///
/// `input` carries the logical input channels as codes in `qm.input_q`.
/// Spatial behaviour follows the model's [`InferenceKind`]: zero-padded
/// keeps sizes; truncated-pyramid shrinks by 2 per CONV3×3.
///
/// # Panics
///
/// Panics on malformed parameters (use `QuantizedModel::check` first).
pub fn fixed_forward(qm: &QuantizedModel, input: &Tensor<i16>) -> Tensor<i16> {
    let model = &qm.model;
    let padded = model.inference() == InferenceKind::ZeroPadded;
    let mut vals: Vec<(Tensor<i16>, QFormat)> = Vec::with_capacity(model.len() + 1);
    vals.push((input.clone(), qm.input_q));
    for (i, layer) in model.layers().iter().enumerate() {
        let (x, xq) = vals[i].clone();
        let next = match layer.op {
            ecnn_model::Op::Conv3x3 { in_c, out_c, act } => {
                let p = qm.layers[i].as_ref().expect("params");
                let acc = conv3_acc(&x, in_c, &p.w3, hw(in_c), out_c, padded);
                let prod = p.w3_q.frac() as i32 + xq.frac() as i32;
                finish_layer(
                    acc, out_c, &p.b3, p.b3_q, prod, act, layer.skip, &vals, p.out_q,
                )
            }
            ecnn_model::Op::Conv1x1 { in_c, out_c, act } => {
                let p = qm.layers[i].as_ref().expect("params");
                let acc = conv1_acc(&x, in_c, &p.w1, hw(in_c), out_c);
                let prod = p.w1_q.frac() as i32 + xq.frac() as i32;
                finish_layer(
                    acc, out_c, &p.b1, p.b1_q, prod, act, layer.skip, &vals, p.out_q,
                )
            }
            ecnn_model::Op::ErModule {
                channels,
                expansion,
            } => {
                let p = qm.layers[i].as_ref().expect("params");
                let wide = channels * expansion;
                let prod3 = p.w3_q.frac() as i32 + xq.frac() as i32;
                let mut acc3 = conv3_acc(&x, channels, &p.w3, hw(channels), wide, padded);
                // bias, ReLU, mid quantization.
                for oc in 0..wide {
                    let b = align(p.b3[oc] as i64, p.b3_q.frac() as i32, prod3);
                    for v in acc3_row(&mut acc3, oc) {
                        *v += b;
                    }
                }
                let mid: Tensor<i16> = acc3.map(|a| {
                    let v = if a < 0 { 0 } else { a };
                    p.mid_q
                        .clamp_code(rescale_code(v, prod3, p.mid_q.frac() as i32))
                });
                let prod1 = p.w1_q.frac() as i32 + p.mid_q.frac() as i32;
                let mut acc1 = conv1_acc(&mid, wide, &p.w1, hw(wide), channels);
                for oc in 0..channels {
                    let b = align(p.b1[oc] as i64, p.b1_q.frac() as i32, prod1);
                    for v in acc3_row(&mut acc1, oc) {
                        *v += b;
                    }
                }
                // Module residual (center-cropped input).
                add_cropped(&mut acc1, &x, xq.frac() as i32, prod1);
                (
                    acc1.map(|a| {
                        p.out_q
                            .clamp_code(rescale_code(a, prod1, p.out_q.frac() as i32))
                    }),
                    p.out_q,
                )
            }
            ecnn_model::Op::PixelShuffle { factor } => (x.pixel_shuffle(factor), xq),
            ecnn_model::Op::PixelUnshuffle { factor } => (x.pixel_unshuffle(factor), xq),
            ecnn_model::Op::Downsample { kind, factor } => (pool_codes(&x, kind, factor), xq),
        };
        vals.push(next);
    }
    vals.pop().expect("nonempty").0
}

fn acc3_row(t: &mut Tensor<i64>, c: usize) -> impl Iterator<Item = &mut i64> {
    let (_, h, w) = t.shape();
    let base = c * h * w;
    t.as_mut_slice()[base..base + h * w].iter_mut()
}

fn conv3_acc(
    x: &Tensor<i16>,
    in_c: usize,
    w: &[i16],
    in_hw: usize,
    out_c: usize,
    padded: bool,
) -> Tensor<i64> {
    let (_, h, width) = x.shape();
    let (oh, ow) = if padded {
        (h, width)
    } else {
        (h - 2, width - 2)
    };
    let origin: isize = if padded { 0 } else { 1 };
    let mut acc = Tensor::<i64>::zeros(out_c, oh, ow);
    for oc in 0..out_c {
        for ic in 0..in_c {
            let wbase = (oc * in_hw + ic) * 9;
            for ky in 0..3isize {
                for kx in 0..3isize {
                    let wv = w[wbase + (ky * 3 + kx) as usize] as i64;
                    if wv == 0 {
                        continue;
                    }
                    for y in 0..oh {
                        let sy = y as isize + ky - 1 + origin;
                        if sy < 0 || sy >= h as isize {
                            continue;
                        }
                        for xx in 0..ow {
                            let sx = xx as isize + kx - 1 + origin;
                            if sx < 0 || sx >= width as isize {
                                continue;
                            }
                            *acc.at_mut(oc, y, xx) +=
                                wv * x.at(ic, sy as usize, sx as usize) as i64;
                        }
                    }
                }
            }
        }
    }
    acc
}

fn conv1_acc(x: &Tensor<i16>, in_c: usize, w: &[i16], in_hw: usize, out_c: usize) -> Tensor<i64> {
    let (_, h, width) = x.shape();
    let mut acc = Tensor::<i64>::zeros(out_c, h, width);
    for oc in 0..out_c {
        for ic in 0..in_c {
            let wv = w[oc * in_hw + ic] as i64;
            if wv == 0 {
                continue;
            }
            for y in 0..h {
                for xx in 0..width {
                    *acc.at_mut(oc, y, xx) += wv * x.at(ic, y, xx) as i64;
                }
            }
        }
    }
    acc
}

#[allow(clippy::too_many_arguments)]
fn finish_layer(
    mut acc: Tensor<i64>,
    out_c: usize,
    bias: &[i16],
    bias_q: QFormat,
    prod: i32,
    act: Activation,
    skip: Option<SkipRef>,
    vals: &[(Tensor<i16>, QFormat)],
    out_q: QFormat,
) -> (Tensor<i16>, QFormat) {
    // `oc` indexes the bias table and the accumulator row together.
    #[allow(clippy::needless_range_loop)]
    for oc in 0..out_c {
        let b = align(bias[oc] as i64, bias_q.frac() as i32, prod);
        for v in acc3_row(&mut acc, oc) {
            *v += b;
        }
    }
    if let Some(s) = skip {
        let (src, sq) = match s {
            SkipRef::Input => &vals[0],
            SkipRef::Layer(j) => &vals[j + 1],
        };
        add_cropped(&mut acc, src, sq.frac() as i32, prod);
    }
    if act == Activation::Relu {
        for v in acc.as_mut_slice() {
            if *v < 0 {
                *v = 0;
            }
        }
    }
    (
        acc.map(|a| out_q.clamp_code(rescale_code(a, prod, out_q.frac() as i32))),
        out_q,
    )
}

fn add_cropped(acc: &mut Tensor<i64>, src: &Tensor<i16>, src_frac: i32, acc_frac: i32) {
    let (ac, ah, aw) = acc.shape();
    let (_, sh, sw) = src.shape();
    let oy = (sh - ah) / 2;
    let ox = (sw - aw) / 2;
    for c in 0..ac {
        for y in 0..ah {
            for x in 0..aw {
                *acc.at_mut(c, y, x) += align(src.at(c, y + oy, x + ox) as i64, src_frac, acc_frac);
            }
        }
    }
}

fn pool_codes(t: &Tensor<i16>, kind: PoolKind, s: usize) -> Tensor<i16> {
    let (c, h, w) = t.shape();
    Tensor::from_fn(c, h / s, w / s, |ch, y, x| match kind {
        PoolKind::Stride => t.at(ch, y * s, x * s),
        PoolKind::Max => {
            let mut m = i16::MIN;
            for dy in 0..s {
                for dx in 0..s {
                    m = m.max(t.at(ch, y * s + dy, x * s + dx));
                }
            }
            m
        }
    })
}

#[inline]
fn align(code: i64, from: i32, to: i32) -> i64 {
    if to >= from {
        code << (to - from)
    } else {
        rescale_code(code, from, to) as i64
    }
}

/// PSNR of the fixed-point model against float targets on a validation set
/// (zero-padded inference so shapes match the samples).
pub fn eval_psnr_fixed(qm: &QuantizedModel, data: &[Sample]) -> f64 {
    let mut total = 0.0;
    let mut model = qm.clone();
    // Evaluate with zero padding regardless of deployment kind so the
    // output aligns with the target patch.
    model.model = model
        .model
        .clone()
        .with_inference(InferenceKind::ZeroPadded);
    for s in data {
        let input = s.input.map(|v| qm.input_q.quantize(v));
        let out = fixed_forward(&model, &input);
        let out_q = model
            .layers
            .iter()
            .rev()
            .flatten()
            .next()
            .map(|p| p.out_q)
            .expect("parameterized layer");
        let out_f = out.map(|c| out_q.dequantize(c).clamp(0.0, 1.0));
        total += ecnn_tensor::psnr(&out_f, &s.target, 1.0);
    }
    total / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{make_dataset, TaskKind};
    use crate::train::eval_psnr;
    use ecnn_model::ernet::{ErNetSpec, ErNetTask};

    fn trained_tiny_denoiser() -> (Model, FloatModel, Vec<Sample>, Vec<Sample>) {
        let ir = ErNetSpec::new(ErNetTask::Dn, 1, 1, 0).build().unwrap();
        let mut fm = FloatModel::from_model(&ir, 3);
        let data = make_dataset(TaskKind::denoise25(), 10, 24, 5);
        let val = make_dataset(TaskKind::denoise25(), 3, 24, 404);
        train(
            &mut fm,
            &data,
            TrainConfig {
                steps: 50,
                batch: 4,
                lr: 2e-3,
                seed: 3,
                threads: 2,
            },
        );
        (ir, fm, data, val)
    }

    #[test]
    fn quantized_model_validates_and_is_close_to_float() {
        let (ir, fm, data, val) = trained_tiny_denoiser();
        let calib: Vec<Tensor<f32>> = data.iter().take(4).map(|s| s.input.clone()).collect();
        let qm = quantize(&fm, &ir, &calib, QuantConfig::default());
        qm.check().unwrap();
        let float_psnr = eval_psnr(&fm, &val);
        let fixed_psnr = eval_psnr_fixed(&qm, &val);
        // 8-bit quantization before fine-tuning may lose a few dB (paper:
        // up to 3.69 dB), but must stay in the same regime.
        assert!(
            float_psnr - fixed_psnr < 4.5,
            "float {float_psnr:.2} vs fixed {fixed_psnr:.2}"
        );
        assert!(fixed_psnr > 10.0, "fixed psnr {fixed_psnr}");
    }

    #[test]
    fn finetune_recovers_quantization_loss() {
        let (ir, mut fm, data, val) = trained_tiny_denoiser();
        let calib: Vec<Tensor<f32>> = data.iter().take(4).map(|s| s.input.clone()).collect();
        let before = quantize(&fm, &ir, &calib, QuantConfig::default());
        let psnr_before = eval_psnr_fixed(&before, &val);
        let after = finetune(
            &mut fm,
            &ir,
            &data,
            &calib,
            QuantConfig::default(),
            TrainConfig {
                steps: 24,
                batch: 4,
                lr: 5e-4,
                seed: 9,
                threads: 2,
            },
        );
        let psnr_after = eval_psnr_fixed(&after, &val);
        assert!(
            psnr_after > psnr_before - 0.3,
            "fine-tuning must not regress: {psnr_before:.2} -> {psnr_after:.2}"
        );
    }

    #[test]
    fn l1_vs_l2_norms_give_valid_formats() {
        let (ir, fm, data, _) = trained_tiny_denoiser();
        let calib: Vec<Tensor<f32>> = data.iter().take(2).map(|s| s.input.clone()).collect();
        for norm in [NormOrder::L1, NormOrder::L2] {
            let qm = quantize(
                &fm,
                &ir,
                &calib,
                QuantConfig {
                    norm,
                    ..Default::default()
                },
            );
            qm.check().unwrap();
        }
    }

    #[test]
    fn seven_bit_weights_supported() {
        let (ir, fm, data, _) = trained_tiny_denoiser();
        let calib: Vec<Tensor<f32>> = data.iter().take(2).map(|s| s.input.clone()).collect();
        let qm = quantize(
            &fm,
            &ir,
            &calib,
            QuantConfig {
                weight_bits: 7,
                ..Default::default()
            },
        );
        qm.check().unwrap();
        for p in qm.layers.iter().flatten() {
            assert_eq!(p.w3_q.bits(), 7);
            for &w in &p.w3 {
                assert!((-64..=63).contains(&(w as i32)));
            }
        }
    }

    #[test]
    fn fixed_forward_shapes_follow_inference_kind() {
        let (ir, fm, data, _) = trained_tiny_denoiser();
        let calib: Vec<Tensor<f32>> = data.iter().take(2).map(|s| s.input.clone()).collect();
        let qm = quantize(&fm, &ir, &calib, QuantConfig::default());
        let input = data[0].input.map(|v| qm.input_q.quantize(v));
        // Truncated pyramid: 4 convs -> 24 - 8 = 16.
        let out = fixed_forward(&qm, &input);
        assert_eq!(out.shape(), (3, 16, 16));
        let mut padded = qm.clone();
        padded.model = padded
            .model
            .clone()
            .with_inference(InferenceKind::ZeroPadded);
        let out2 = fixed_forward(&padded, &input);
        assert_eq!(out2.shape(), (3, 24, 24));
    }
}
