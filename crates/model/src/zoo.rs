//! Reference and case-study models.
//!
//! * Comparison networks from the literature used throughout the paper's
//!   evaluation: [`vdsr`], [`srresnet`], [`edsr_baseline`].
//! * The FBISA-compatible computer-vision case studies of Section 7.3:
//!   [`style_transfer`] (Fig. 22a, split into two sub-models) and
//!   [`recognition`] (Fig. 22b, a 40-layer residual classifier that avoids
//!   512-channel ResBlocks).

use crate::layer::{Activation, Layer, Op, PoolKind, SkipRef};
use crate::model::{InferenceKind, Model};

fn conv3(in_c: usize, out_c: usize, act: Activation) -> Layer {
    Layer::new(Op::Conv3x3 { in_c, out_c, act })
}

/// Appends a two-convolution residual block at width `c`; returns the index
/// of the block's output layer.
fn push_resblock(layers: &mut Vec<Layer>, c: usize) -> usize {
    let entry = layers.len(); // output of layers[entry-1] is the block input
    layers.push(conv3(c, c, Activation::Relu));
    layers.push(Layer::with_skip(
        Op::Conv3x3 {
            in_c: c,
            out_c: c,
            act: Activation::None,
        },
        SkipRef::Layer(entry - 1),
    ));
    layers.len() - 1
}

/// VDSR (Kim et al., CVPR 2016): 20 CONV3×3 layers, 64 channels, residual
/// learning on the luma channel. Algorithmic complexity 1.33 MOP/pixel —
/// the paper's running example for frame-based bandwidth (Eq. 1) and the
/// Diffy comparison.
pub fn vdsr() -> Model {
    let mut layers = vec![conv3(1, 64, Activation::Relu)];
    for _ in 0..18 {
        layers.push(conv3(64, 64, Activation::Relu));
    }
    layers.push(Layer::with_skip(
        Op::Conv3x3 {
            in_c: 64,
            out_c: 1,
            act: Activation::None,
        },
        SkipRef::Input,
    ));
    Model::new("VDSR", 1, 1, layers).expect("VDSR is well-formed")
}

/// SRResNet (Ledig et al., CVPR 2017) in the EDSR re-implementation the
/// paper compares against: 16 residual blocks at 64 channels, two ×2
/// sub-pixel upsamplers — 37 CONV3×3 stages (used in Fig. 5b).
pub fn srresnet() -> Model {
    let mut layers = vec![conv3(3, 64, Activation::Relu)];
    let head_idx = 0;
    for _ in 0..16 {
        push_resblock(&mut layers, 64);
    }
    layers.push(Layer::with_skip(
        Op::Conv3x3 {
            in_c: 64,
            out_c: 64,
            act: Activation::None,
        },
        SkipRef::Layer(head_idx),
    ));
    for _ in 0..2 {
        layers.push(conv3(64, 256, Activation::None));
        layers.push(Layer::new(Op::PixelShuffle { factor: 2 }));
    }
    layers.push(conv3(64, 3, Activation::None));
    Model::new("SRResNet", 3, 3, layers).expect("SRResNet is well-formed")
}

/// EDSR-baseline (Lim et al., 2017) at the given scale (2 or 4): 16 residual
/// blocks, 64 channels, no batch norm. The Fig. 2(b) depth-wise ablation
/// replaces these blocks' convolutions (see `ecnn-nn`).
///
/// # Panics
///
/// Panics if `scale` is not 2 or 4.
pub fn edsr_baseline(scale: usize) -> Model {
    assert!(
        scale == 2 || scale == 4,
        "EDSR-baseline scale must be 2 or 4"
    );
    let mut layers = vec![conv3(3, 64, Activation::None)];
    let head_idx = 0;
    for _ in 0..16 {
        push_resblock(&mut layers, 64);
    }
    layers.push(Layer::with_skip(
        Op::Conv3x3 {
            in_c: 64,
            out_c: 64,
            act: Activation::None,
        },
        SkipRef::Layer(head_idx),
    ));
    let ups = if scale == 4 { 2 } else { 1 };
    for _ in 0..ups {
        layers.push(conv3(64, 256, Activation::None));
        layers.push(Layer::new(Op::PixelShuffle { factor: 2 }));
    }
    layers.push(conv3(64, 3, Activation::None));
    Model::new(format!("EDSR-baseline-x{scale}"), 3, 3, layers)
        .expect("EDSR-baseline is well-formed")
}

/// The style-transfer network of Fig. 22(a), split into two sub-models to
/// bound the NCR (the paper's own mitigation for the enlarged receptive
/// field): an encoder with three residual blocks at quarter resolution, and
/// a decoder with two more blocks plus two sub-pixel upsamplers.
///
/// Returns `(sub_model_1, sub_model_2)`; sub-model 1 output (128ch at 1/4
/// resolution) streams through DRAM into sub-model 2.
pub fn style_transfer() -> (Model, Model) {
    // Sub-model 1: full-res head, two conv+DNX2 downsamplers, 3 ResBlocks.
    let mut l1 = vec![conv3(3, 32, Activation::Relu)];
    l1.push(conv3(32, 64, Activation::Relu));
    l1.push(Layer::new(Op::Downsample {
        kind: PoolKind::Stride,
        factor: 2,
    }));
    l1.push(conv3(64, 128, Activation::Relu));
    l1.push(Layer::new(Op::Downsample {
        kind: PoolKind::Stride,
        factor: 2,
    }));
    for _ in 0..3 {
        push_resblock(&mut l1, 128);
    }
    let m1 = Model::new("StyleTransfer-enc", 3, 128, l1).expect("well-formed");

    // Sub-model 2: 2 ResBlocks, two upsamplers, RGB tail.
    let mut l2 = Vec::new();
    l2.push(conv3(128, 128, Activation::Relu));
    let first = l2.len() - 1;
    l2.push(Layer::with_skip(
        Op::Conv3x3 {
            in_c: 128,
            out_c: 128,
            act: Activation::None,
        },
        SkipRef::Layer(first),
    ));
    push_resblock(&mut l2, 128);
    l2.push(conv3(128, 256, Activation::None));
    l2.push(Layer::new(Op::PixelShuffle { factor: 2 }));
    l2.push(conv3(64, 128, Activation::None));
    l2.push(Layer::new(Op::PixelShuffle { factor: 2 }));
    l2.push(conv3(32, 3, Activation::None));
    let m2 = Model::new("StyleTransfer-dec", 128, 3, l2).expect("well-formed");
    (m1, m2)
}

/// The 40-layer object-recognition network of Fig. 22(b): a residual
/// classifier that avoids 512-channel ResBlocks and "puts more computation
/// in thinner layers", totalling ≈5M parameters like the paper's model
/// (69.7% top-1 on ImageNet in the original; evaluated on synthetic data
/// here — see DESIGN.md §4).
///
/// Uses zero-padded inference: the whole 224×224 frame is one block.
pub fn recognition(num_classes: usize) -> Model {
    let mut layers = vec![conv3(3, 32, Activation::Relu)];
    // Stage 0: two thin full-res convolutions.
    layers.push(conv3(32, 32, Activation::Relu));
    layers.push(conv3(32, 32, Activation::Relu));
    // Stage 1: 224 -> 112, nine 64ch ResBlocks.
    layers.push(conv3(32, 64, Activation::Relu));
    layers.push(Layer::new(Op::Downsample {
        kind: PoolKind::Stride,
        factor: 2,
    }));
    for _ in 0..9 {
        push_resblock(&mut layers, 64);
    }
    // Stage 2: 112 -> 56, six 128ch ResBlocks.
    layers.push(conv3(64, 128, Activation::Relu));
    layers.push(Layer::new(Op::Downsample {
        kind: PoolKind::Stride,
        factor: 2,
    }));
    for _ in 0..6 {
        push_resblock(&mut layers, 128);
    }
    // Stage 3: 56 -> 28, two 256ch ResBlocks.
    layers.push(conv3(128, 256, Activation::Relu));
    layers.push(Layer::new(Op::Downsample {
        kind: PoolKind::Stride,
        factor: 2,
    }));
    for _ in 0..2 {
        push_resblock(&mut layers, 256);
    }
    // Head: 28 -> 14 -> global average via max-style pooling chain, then a
    // 1x1 classifier (the FC layer as a 1x1 convolution).
    layers.push(Layer::new(Op::Downsample {
        kind: PoolKind::Max,
        factor: 2,
    }));
    layers.push(Layer::new(Op::Downsample {
        kind: PoolKind::Max,
        factor: 14,
    }));
    layers.push(Layer::new(Op::Conv1x1 {
        in_c: 256,
        out_c: num_classes,
        act: Activation::None,
    }));
    Model::new("Recognition40", 3, num_classes, layers)
        .expect("recognition net is well-formed")
        .with_inference(InferenceKind::ZeroPadded)
}

/// A scaled-down recognition network for 32×32 inputs — used by the test
/// suite and the `app_recognition` bench to exercise the classification
/// training path at CPU-friendly cost.
pub fn recognition_tiny(num_classes: usize) -> Model {
    let mut layers = vec![conv3(3, 32, Activation::Relu)];
    push_resblock(&mut layers, 32);
    layers.push(conv3(32, 64, Activation::Relu));
    layers.push(Layer::new(Op::Downsample {
        kind: PoolKind::Stride,
        factor: 2,
    }));
    push_resblock(&mut layers, 64);
    layers.push(Layer::new(Op::Downsample {
        kind: PoolKind::Max,
        factor: 2,
    }));
    layers.push(Layer::new(Op::Downsample {
        kind: PoolKind::Max,
        factor: 8,
    }));
    layers.push(Layer::new(Op::Conv1x1 {
        in_c: 64,
        out_c: num_classes,
        act: Activation::None,
    }));
    Model::new("RecognitionTiny", 3, num_classes, layers)
        .expect("tiny recognition net is well-formed")
        .with_inference(InferenceKind::ZeroPadded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complexity::{ChannelMode, Complexity};

    #[test]
    fn vdsr_depth_and_params() {
        let m = vdsr();
        assert_eq!(m.depth_conv3x3(), 20);
        // Paper Section 5.2: 651K parameters.
        let p = m.param_count();
        assert!((p as i64 - 651_000).abs() < 20_000, "VDSR params {p}");
    }

    #[test]
    fn srresnet_depth_and_params() {
        let m = srresnet();
        assert_eq!(m.depth_conv3x3(), 37);
        // Paper Section 5.2: 1479K parameters.
        let p = m.param_count();
        assert!(
            (p as i64 - 1_479_000).abs() < 120_000,
            "SRResNet params {p}"
        );
        assert_eq!(m.output_scale(), 4.0);
    }

    #[test]
    fn srresnet_outperforms_vdsr_in_capacity() {
        let v = Complexity::of(&vdsr(), ChannelMode::Algorithmic);
        let s = Complexity::of(&srresnet(), ChannelMode::Algorithmic);
        // At the LR grid SRResNet is much heavier per LR pixel, but per HR
        // output pixel the x4 upsampling amortizes it below VDSR.
        assert!(s.kop_per_pixel < v.kop_per_pixel);
        assert!(s.params > v.params);
    }

    #[test]
    fn edsr_baseline_scales() {
        assert_eq!(edsr_baseline(2).output_scale(), 2.0);
        assert_eq!(edsr_baseline(4).output_scale(), 4.0);
    }

    #[test]
    #[should_panic]
    fn edsr_rejects_odd_scale() {
        let _ = edsr_baseline(3);
    }

    #[test]
    fn style_transfer_round_trips_resolution() {
        let (enc, dec) = style_transfer();
        assert_eq!(enc.output_scale(), 0.25);
        assert_eq!(dec.output_scale(), 4.0);
        assert_eq!(enc.out_channels(), dec.in_channels());
    }

    #[test]
    fn recognition_is_40_conv_layers_and_5m_params() {
        let m = recognition(1000);
        assert_eq!(m.depth_conv3x3(), 40, "paper: 40-layer residual network");
        let p = m.param_count();
        assert!(
            (4_800_000..6_000_000).contains(&p),
            "paper: ~5M parameters, got {p}"
        );
        assert_eq!(m.inference(), InferenceKind::ZeroPadded);
    }

    #[test]
    fn recognition_avoids_512_channels() {
        let m = recognition(1000);
        for l in m.layers() {
            if let Op::Conv3x3 { in_c, out_c, .. } = l.op {
                assert!(in_c <= 256 && out_c <= 256);
            }
        }
    }

    #[test]
    fn recognition_spatial_walk_reaches_1x1() {
        let m = recognition(10);
        // 224 / 2 / 2 / 2 / 2 / 14 = 1 (zero-padded: convs keep size).
        let mut side = 224usize;
        for l in m.layers() {
            if let Op::Downsample { factor, .. } = l.op {
                assert_eq!(side % factor, 0);
                side /= factor;
            }
        }
        assert_eq!(side, 1);
    }

    #[test]
    fn recognition_tiny_reaches_1x1_logits() {
        let m = recognition_tiny(4);
        m.validate().unwrap();
        // 32 /2 /2 /8 = 1 under zero-padded convs.
        let mut side = 32usize;
        for l in m.layers() {
            if let Op::Downsample { factor, .. } = l.op {
                side /= factor;
            }
        }
        assert_eq!(side, 1);
        assert_eq!(*m.channel_walk().last().unwrap(), 4);
    }

    #[test]
    fn all_zoo_models_validate() {
        vdsr().validate().unwrap();
        srresnet().validate().unwrap();
        edsr_baseline(2).validate().unwrap();
        edsr_baseline(4).validate().unwrap();
        let (a, b) = style_transfer();
        a.validate().unwrap();
        b.validate().unwrap();
        recognition(1000).validate().unwrap();
    }
}
