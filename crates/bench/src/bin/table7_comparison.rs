//! Table 7: comparison of computational-imaging processors — eCNN (our
//! simulator) vs IDEAL / Diffy (published points) vs a SCALE-Sim-style TPU.

use ecnn_baselines::diffy::{DIFFY_FFDNET, DIFFY_VDSR, IDEAL_BM3D};
use ecnn_baselines::tpu::{simulate, TpuConfig};
use ecnn_bench::{report_row, section};
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_model::RealTimeSpec;

fn main() {
    section("Table 7 (left): specification comparison");
    println!(
        "{:<16} {:<28} {:<14} {:<14} {:>8}",
        "processor", "workload", "spec", "DRAM", "power W"
    );
    for p in [IDEAL_BM3D, DIFFY_FFDNET, DIFFY_VDSR] {
        println!(
            "{:<16} {:<28} {:<14} {:<14} {:>8.2}",
            p.name, p.workload, p.spec, p.dram, p.power_w
        );
    }
    // eCNN rows measured on our simulator.
    for (label, spec, rt) in [
        ("DnERNet denoise", ErNetSpec::new(ErNetTask::Dn, 3, 1, 0), RealTimeSpec::UHD30),
        ("SR4ERNet x4 SR", ErNetSpec::new(ErNetTask::Sr4, 17, 3, 1), RealTimeSpec::UHD30),
    ] {
        let r = report_row(spec, 128, rt);
        println!(
            "{:<16} {:<28} {:<14} {:<14} {:>8.2}",
            "eCNN (ours)",
            label,
            if r.meets_realtime { "4K UHD 30fps" } else { "below spec" },
            r.dram_config.map_or("(none)", |c| c.name),
            r.power.total_w()
        );
    }

    section("Table 7 (TPU / SCALE-Sim comparison)");
    let cfg = TpuConfig::classic();
    println!("TPU config: {:.0} TOPS, 28 MB SRAM", cfg.peak_tops());
    for (name, spec, w, h, paper_fps, paper_bw) in [
        ("SR4ERNet-B17R3N1 @4K", ErNetSpec::new(ErNetTask::Sr4, 17, 3, 1), 3840, 2160, 21.9, 12.2),
        ("SR4ERNet-B34R4N0 @HD", ErNetSpec::new(ErNetTask::Sr4, 34, 4, 0), 1920, 1080, 55.3, 8.3),
    ] {
        let m = spec.build().unwrap();
        let t = simulate(&m, &cfg, w, h, 8);
        let e = report_row(spec, 128, if w == 3840 { RealTimeSpec::UHD30 } else { RealTimeSpec::HD30 });
        let e_tops_per_gbps = e.frame.achieved_tops / (e.dram_bandwidth_bps() / 1e9);
        println!(
            "{name}: TPU {:.1} fps @ {:.1} GB/s (paper {paper_fps} fps @ {paper_bw} GB/s), util {:.0}%",
            t.fps,
            t.dram_bps / 1e9,
            t.utilization * 100.0
        );
        println!(
            "  arithmetic intensity: eCNN {:.1} vs TPU {:.1} TOPS/(GB/s)  ->  {:.1}x advantage",
            e_tops_per_gbps,
            t.tops_per_gbps,
            e_tops_per_gbps / t.tops_per_gbps
        );
    }
    println!("(paper: 3.1x / 1.2x fps/TOPS and 6.4x / 14.4x TOPS per GB/s in eCNN's favour)");
}
