//! Functional (bit-exact) execution of FBISA programs on one image block.
//!
//! The executor mirrors the CIU datapath of Section 6.3 exactly:
//!
//! * features are 8-bit Q-format codes in block buffers;
//! * every convolution accumulates in full precision (`i64` here; the
//!   hardware's carry-save trees never round internally);
//! * `srcS` operands are aligned to the accumulator's fractional position
//!   and added before activation (the ADDE adder);
//! * ER leaf-modules requantize the expanded features to 8 bits between the
//!   LCONV3×3 and LCONV1×1 engines (the area-saving quantizer of
//!   Section 6.3.1);
//! * the single output rounding happens at the Q-format of the destination
//!   operand, then the Dst Reorder applies pixel-shuffle or pooling.

use crate::config::EcnnConfig;
use ecnn_isa::instr::{FeatLoc, Instruction, Opcode, LEAF_CH};
use ecnn_isa::params::LeafParams;
use ecnn_isa::program::Program;
use ecnn_model::layer::PoolKind;
use ecnn_model::model::InferenceKind;
use ecnn_tensor::qformat::rescale_code;
use ecnn_tensor::Tensor;
use std::collections::HashMap;
use std::fmt;

/// Execution errors (all indicate compiler/simulator bugs, not user error).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// An operand referenced a plane that was never written.
    MissingPlane(FeatLoc),
    /// An instruction tried to read the DO stream.
    ReadFromDo,
    /// Spatial sizes disagreed with the instruction's attributes.
    Shape(String),
    /// Instruction/leaf bookkeeping mismatch.
    Leafs(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingPlane(l) => write!(f, "operand {l} was never written"),
            ExecError::ReadFromDo => write!(f, "cannot read from DO"),
            ExecError::Shape(m) => write!(f, "shape mismatch: {m}"),
            ExecError::Leafs(m) => write!(f, "leaf bookkeeping: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Activity counters accumulated over one block execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// LCONV3×3 multiply-accumulates actually performed.
    pub mac3: u64,
    /// LCONV1×1 multiply-accumulates actually performed.
    pub mac1: u64,
    /// Bytes read from block buffers.
    pub bb_read_bytes: u64,
    /// Bytes written to block buffers.
    pub bb_write_bytes: u64,
    /// Bytes consumed from the DI stream.
    pub di_bytes: u64,
    /// Bytes produced on the DO stream.
    pub do_bytes: u64,
    /// Instructions executed.
    pub instructions: u64,
}

/// Executes one program over one input block.
///
/// # Example
///
/// See the crate-level tests and `tests/pipeline.rs` for end-to-end usage;
/// the executor is normally driven by `ecnn-core`'s block pipeline.
pub struct BlockExecutor<'a> {
    program: &'a Program,
    leafs: &'a [Vec<LeafParams>],
    /// 32-channel planes living in (virtual) block buffers.
    planes: HashMap<(u8, u8), Tensor<i16>>,
    /// DI planes (32-channel, possibly pre-unshuffled).
    di: Vec<Tensor<i16>>,
    /// DO planes keyed by output group.
    dout: HashMap<u8, Tensor<i16>>,
    stats: ExecStats,
}

impl<'a> BlockExecutor<'a> {
    /// Creates an executor for `program` with the IDU-decoded `leafs` (one
    /// vector per instruction, as produced by the compiler or by
    /// `PackedParams::unpack`).
    pub fn new(program: &'a Program, leafs: &'a [Vec<LeafParams>]) -> Self {
        Self {
            program,
            leafs,
            planes: HashMap::new(),
            di: Vec::new(),
            dout: HashMap::new(),
            stats: ExecStats::default(),
        }
    }

    /// Runs the program on one input block.
    ///
    /// `input` holds the *logical* input channels (e.g. 3 for RGB) as codes
    /// in the program's `di_q` format, with side `program.di_side`. Returns
    /// the logical output block (side `program.do_side`).
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn run(&mut self, input: &Tensor<i16>) -> Result<Tensor<i16>, ExecError> {
        let p = self.program;
        if input.height() != p.di_side || input.width() != p.di_side {
            return Err(ExecError::Shape(format!(
                "input {}x{} vs DI side {}",
                input.height(),
                input.width(),
                p.di_side
            )));
        }
        if input.channels() != p.di_channels {
            return Err(ExecError::Shape(format!(
                "input channels {} vs {}",
                input.channels(),
                p.di_channels
            )));
        }
        self.stats.di_bytes += (input.len()) as u64;

        // DI-side unshuffle (DnERNet-12ch) and 32-channel plane packing.
        let streamed = match p.input_unshuffle {
            Some(f) => input.pixel_unshuffle(f),
            None => input.clone(),
        };
        let groups = streamed.channels().div_ceil(LEAF_CH);
        let padded = streamed.with_channels(groups * LEAF_CH);
        self.di = (0..groups)
            .map(|g| {
                Tensor::from_fn(LEAF_CH, padded.height(), padded.width(), |c, y, x| {
                    padded.at(g * LEAF_CH + c, y, x)
                })
            })
            .collect();

        if self.leafs.len() != p.instructions.len() {
            return Err(ExecError::Leafs(format!(
                "{} leaf sets for {} instructions",
                self.leafs.len(),
                p.instructions.len()
            )));
        }
        for (ins, leafs) in p.instructions.iter().zip(self.leafs) {
            self.exec(ins, leafs)?;
            self.stats.instructions += 1;
        }

        // Assemble the logical output from DO planes.
        let out_groups = p.do_channels.div_ceil(LEAF_CH);
        let mut out = Tensor::zeros(p.do_channels, p.do_side, p.do_side);
        for g in 0..out_groups {
            let plane = self
                .dout
                .get(&(g as u8))
                .ok_or(ExecError::MissingPlane(FeatLoc::Do { group: g as u8 }))?;
            if plane.height() != p.do_side {
                return Err(ExecError::Shape(format!(
                    "DO plane side {} vs {}",
                    plane.height(),
                    p.do_side
                )));
            }
            for c in 0..LEAF_CH {
                let oc = g * LEAF_CH + c;
                if oc >= p.do_channels {
                    break;
                }
                for y in 0..p.do_side {
                    for x in 0..p.do_side {
                        *out.at_mut(oc, y, x) = plane.at(c, y, x);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    fn read_plane(&mut self, loc: FeatLoc) -> Result<Tensor<i16>, ExecError> {
        match loc {
            FeatLoc::Bb { id, group } => {
                let t = self
                    .planes
                    .get(&(id, group))
                    .ok_or(ExecError::MissingPlane(loc))?
                    .clone();
                self.stats.bb_read_bytes += t.len() as u64;
                Ok(t)
            }
            FeatLoc::Di { group } => self
                .di
                .get(group as usize)
                .cloned()
                .ok_or(ExecError::MissingPlane(loc)),
            FeatLoc::Do { .. } => Err(ExecError::ReadFromDo),
        }
    }

    fn write_plane(&mut self, loc: FeatLoc, plane: Tensor<i16>) -> Result<(), ExecError> {
        match loc {
            FeatLoc::Bb { id, group } => {
                self.stats.bb_write_bytes += plane.len() as u64;
                self.planes.insert((id, group), plane);
                Ok(())
            }
            FeatLoc::Do { group } => {
                self.stats.do_bytes += plane.len().min(
                    // Only logical channels leave the chip.
                    LEAF_CH.min(
                        self.program
                            .do_channels
                            .saturating_sub(group as usize * LEAF_CH),
                    ) * plane.height()
                        * plane.width(),
                ) as u64;
                self.dout.insert(group, plane);
                Ok(())
            }
            FeatLoc::Di { .. } => Err(ExecError::Shape("cannot write to DI".into())),
        }
    }

    /// Gathers `groups` consecutive planes into one wide tensor.
    fn gather(
        &mut self,
        base: FeatLoc,
        groups: usize,
        side: usize,
    ) -> Result<Tensor<i16>, ExecError> {
        let mut wide = Tensor::zeros(groups * LEAF_CH, side, side);
        for g in 0..groups {
            let plane = self.read_plane(base.offset(g))?;
            if plane.height() != side || plane.width() != side {
                return Err(ExecError::Shape(format!(
                    "plane {}x{} vs expected side {side}",
                    plane.height(),
                    plane.width()
                )));
            }
            for c in 0..LEAF_CH {
                for y in 0..side {
                    for x in 0..side {
                        *wide.at_mut(g * LEAF_CH + c, y, x) = plane.at(c, y, x);
                    }
                }
            }
        }
        Ok(wide)
    }

    fn exec(&mut self, ins: &Instruction, leafs: &[LeafParams]) -> Result<(), ExecError> {
        if leafs.len() != ins.leaf_modules() {
            return Err(ExecError::Leafs(format!(
                "{} leafs but instruction declares {}",
                leafs.len(),
                ins.leaf_modules()
            )));
        }
        let input = self.gather(ins.src, ins.in_groups, ins.in_size.0)?;
        match ins.opcode {
            Opcode::Conv | Opcode::Dnx2 | Opcode::Upx2 => self.exec_conv3(ins, leafs, &input),
            Opcode::Conv1 => self.exec_conv1(ins, leafs, &input),
            Opcode::Er => self.exec_er(ins, leafs, &input),
        }
    }

    fn exec_conv3(
        &mut self,
        ins: &Instruction,
        leafs: &[LeafParams],
        input: &Tensor<i16>,
    ) -> Result<(), ExecError> {
        let prod_frac = ins.q.w3.frac() as i32 + ins.q.src.frac() as i32;
        // Leaf ordering (see compiler): UPX2 has one leaf per pre-shuffle
        // output plane; CONV/DNX2 have one leaf per input group.
        let out_planes = if ins.opcode == Opcode::Upx2 {
            ins.out_groups
        } else {
            1
        };
        let weights = |op_: usize, ig: usize| {
            let leaf = if ins.opcode == Opcode::Upx2 {
                &leafs[op_]
            } else {
                &leafs[ig]
            };
            leaf.w3.as_slice()
        };
        let b3_frac = ins.q.b3.frac() as i32;
        let biases = |op_: usize| -> Vec<i64> {
            let mut b = vec![0i64; LEAF_CH];
            if ins.opcode == Opcode::Upx2 {
                for (oc, bv) in b.iter_mut().enumerate() {
                    *bv = align(leafs[op_].b3[oc] as i64, b3_frac, prod_frac);
                }
            } else {
                for leaf in leafs {
                    for (oc, bv) in b.iter_mut().enumerate() {
                        *bv += align(leaf.b3[oc] as i64, b3_frac, prod_frac);
                    }
                }
            }
            b
        };
        let mut acc = conv3_acc(ins, input, &weights, &biases, out_planes, &mut self.stats);

        if ins.opcode == Opcode::Upx2 {
            acc = acc.pixel_shuffle(2);
        }
        // srcS accumulation (ADDE) in the destination domain.
        if let Some(srcs) = ins.src_s {
            let sq = ins.q.src_s.expect("checked by Instruction::check");
            let plane = self.read_plane(srcs)?;
            add_aligned(&mut acc, &plane, sq.frac() as i32, prod_frac);
        }
        if ins.relu {
            for v in acc.as_mut_slice() {
                if *v < 0 {
                    *v = 0;
                }
            }
        }
        // Requantize to the destination format.
        let dst_frac = ins.q.dst.frac() as i32;
        let quantized: Tensor<i16> =
            acc.map(|a| ins.q.dst.clamp_code(rescale_code(a, prod_frac, dst_frac)));
        // Dst Reorder: pooling.
        let final_plane = if ins.opcode == Opcode::Dnx2 {
            pool(
                &quantized,
                ins.pool.expect("DNX2 carries a pool"),
                ins.pool_factor,
            )
        } else {
            quantized
        };
        if final_plane.height() != ins.out_size.1 || final_plane.width() != ins.out_size.0 {
            return Err(ExecError::Shape(format!(
                "produced {}x{} vs declared {:?}",
                final_plane.width(),
                final_plane.height(),
                ins.out_size
            )));
        }
        self.write_plane(ins.dst, final_plane)
    }

    fn exec_conv1(
        &mut self,
        ins: &Instruction,
        leafs: &[LeafParams],
        input: &Tensor<i16>,
    ) -> Result<(), ExecError> {
        let w1q = ins.q.w1.expect("checked");
        let b1q = ins.q.b1.expect("checked");
        let prod_frac = w1q.frac() as i32 + ins.q.src.frac() as i32;
        let side = input.height();
        let mut acc = Tensor::<i64>::zeros(LEAF_CH, side, side);
        for (oc, _) in (0..LEAF_CH).enumerate() {
            let mut b = 0i64;
            for leaf in leafs {
                b += align(leaf.b1[oc] as i64, b1q.frac() as i32, prod_frac);
            }
            for y in 0..side {
                for x in 0..side {
                    *acc.at_mut(oc, y, x) = b;
                }
            }
        }
        for (ig, leaf) in leafs.iter().enumerate() {
            for oc in 0..LEAF_CH {
                for ic in 0..LEAF_CH {
                    let wv = leaf.w1[oc * LEAF_CH + ic] as i64;
                    if wv == 0 {
                        continue;
                    }
                    for y in 0..side {
                        for x in 0..side {
                            *acc.at_mut(oc, y, x) += wv * input.at(ig * LEAF_CH + ic, y, x) as i64;
                        }
                    }
                }
            }
        }
        self.stats.mac1 += (leafs.len() * LEAF_CH * LEAF_CH * side * side) as u64;
        if let Some(srcs) = ins.src_s {
            let sq = ins.q.src_s.expect("checked");
            let plane = self.read_plane(srcs)?;
            add_aligned(&mut acc, &plane, sq.frac() as i32, prod_frac);
        }
        if ins.relu {
            for v in acc.as_mut_slice() {
                if *v < 0 {
                    *v = 0;
                }
            }
        }
        let dst_frac = ins.q.dst.frac() as i32;
        let out: Tensor<i16> =
            acc.map(|a| ins.q.dst.clamp_code(rescale_code(a, prod_frac, dst_frac)));
        self.write_plane(ins.dst, out)
    }

    fn exec_er(
        &mut self,
        ins: &Instruction,
        leafs: &[LeafParams],
        input: &Tensor<i16>,
    ) -> Result<(), ExecError> {
        let midq = ins.q.mid.expect("ER carries a mid format");
        let w1q = ins.q.w1.expect("checked");
        let b1q = ins.q.b1.expect("checked");
        let prod3 = ins.q.w3.frac() as i32 + ins.q.src.frac() as i32;
        let prod1 = w1q.frac() as i32 + midq.frac() as i32;
        let (cw, chh) = ins.conv_out_size();
        let mut acc1 = Tensor::<i64>::zeros(LEAF_CH, chh, cw);
        // 1x1 biases (first leaf only carries nonzero values).
        for leaf in leafs {
            for oc in 0..LEAF_CH {
                let b = align(leaf.b1[oc] as i64, b1q.frac() as i32, prod1);
                if b != 0 {
                    for y in 0..chh {
                        for x in 0..cw {
                            *acc1.at_mut(oc, y, x) += b;
                        }
                    }
                }
            }
        }
        for (e, leaf) in leafs.iter().enumerate() {
            // Expansion plane e: CONV3x3 -> ReLU -> quantize to mid format.
            let weights = |_: usize, _: usize| leaf.w3.as_slice();
            let b3_frac = ins.q.b3.frac() as i32;
            let biases = |_: usize| -> Vec<i64> {
                (0..LEAF_CH)
                    .map(|oc| align(leaf.b3[oc] as i64, b3_frac, prod3))
                    .collect()
            };
            let mut single = Instruction::clone(ins);
            single.in_groups = 1;
            // The plane convolves the single 32ch input group.
            let acc3 = conv3_acc(&single, input, &weights, &biases, 1, &mut self.stats);
            let mid: Tensor<i16> = acc3.map(|a| {
                let v = if a < 0 { 0 } else { a }; // ER's internal ReLU
                midq.clamp_code(rescale_code(v, prod3, midq.frac() as i32))
            });
            // LCONV1x1: plane e's columns accumulate into the 32ch output.
            for oc in 0..LEAF_CH {
                for ic in 0..LEAF_CH {
                    let wv = leaf.w1[oc * LEAF_CH + ic] as i64;
                    if wv == 0 {
                        continue;
                    }
                    for y in 0..chh {
                        for x in 0..cw {
                            *acc1.at_mut(oc, y, x) += wv * mid.at(ic, y, x) as i64;
                        }
                    }
                }
            }
            let _ = e;
        }
        self.stats.mac1 += (leafs.len() * LEAF_CH * LEAF_CH * cw * chh) as u64;
        // Module residual via srcS.
        if let Some(srcs) = ins.src_s {
            let sq = ins.q.src_s.expect("checked");
            let plane = self.read_plane(srcs)?;
            add_aligned(&mut acc1, &plane, sq.frac() as i32, prod1);
        }
        let dst_frac = ins.q.dst.frac() as i32;
        let out: Tensor<i16> = acc1.map(|a| ins.q.dst.clamp_code(rescale_code(a, prod1, dst_frac)));
        self.write_plane(ins.dst, out)
    }
}

/// Full-precision 3×3 convolution of `input` (all groups) producing
/// `out_planes × 32` channels of `i64` accumulators. `weights(out_plane,
/// in_group)` yields one leaf's 32×32×9 filter; `biases(out_plane)` yields
/// accumulator-aligned biases.
fn conv3_acc<'w>(
    ins: &Instruction,
    input: &Tensor<i16>,
    weights: &dyn Fn(usize, usize) -> &'w [i16],
    biases: &dyn Fn(usize) -> Vec<i64>,
    out_planes: usize,
    stats: &mut ExecStats,
) -> Tensor<i64> {
    let (cw, chh) = ins.conv_out_size();
    let (ih, iw) = (input.height(), input.width());
    let origin: isize = match ins.inference {
        InferenceKind::TruncatedPyramid => 1,
        InferenceKind::ZeroPadded => 0,
    };
    let mut acc = Tensor::<i64>::zeros(out_planes * LEAF_CH, chh, cw);
    for op_ in 0..out_planes {
        let b = biases(op_);
        // `oc` addresses both the bias table and the plane offset.
        #[allow(clippy::needless_range_loop)]
        for oc in 0..LEAF_CH {
            for y in 0..chh {
                for x in 0..cw {
                    *acc.at_mut(op_ * LEAF_CH + oc, y, x) = b[oc];
                }
            }
        }
        for ig in 0..ins.in_groups {
            let w = weights(op_, ig);
            for oc in 0..LEAF_CH {
                for ic in 0..LEAF_CH {
                    let wbase = (oc * LEAF_CH + ic) * 9;
                    let chan = ig * LEAF_CH + ic;
                    for ky in 0..3usize {
                        for kx in 0..3usize {
                            let wv = w[wbase + ky * 3 + kx] as i64;
                            if wv == 0 {
                                continue;
                            }
                            for y in 0..chh {
                                let sy = y as isize + ky as isize - 1 + origin;
                                if sy < 0 || sy >= ih as isize {
                                    continue;
                                }
                                for x in 0..cw {
                                    let sx = x as isize + kx as isize - 1 + origin;
                                    if sx < 0 || sx >= iw as isize {
                                        continue;
                                    }
                                    *acc.at_mut(op_ * LEAF_CH + oc, y, x) +=
                                        wv * input.at(chan, sy as usize, sx as usize) as i64;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    stats.mac3 += (out_planes * ins.in_groups * LEAF_CH * LEAF_CH * 9 * cw * chh) as u64;
    acc
}

/// Aligns a code from `from_frac` to `to_frac` (upshift exact, downshift
/// rounds like the datapath).
#[inline]
fn align(code: i64, from_frac: i32, to_frac: i32) -> i64 {
    if to_frac >= from_frac {
        code << (to_frac - from_frac)
    } else {
        rescale_code(code, from_frac, to_frac) as i64
    }
}

/// Adds a quantized plane into an accumulator tensor, center-cropping the
/// plane when it is larger than the accumulator (truncated-pyramid skips).
fn add_aligned(acc: &mut Tensor<i64>, plane: &Tensor<i16>, plane_frac: i32, acc_frac: i32) {
    let (ac, ah, aw) = acc.shape();
    let (pc, ph, pw) = plane.shape();
    assert!(pc >= ac.min(LEAF_CH), "srcS channel mismatch");
    assert!(ph >= ah && pw >= aw, "srcS smaller than accumulator");
    let oy = (ph - ah) / 2;
    let ox = (pw - aw) / 2;
    for c in 0..ac.min(pc) {
        for y in 0..ah {
            for x in 0..aw {
                *acc.at_mut(c, y, x) +=
                    align(plane.at(c, y + oy, x + ox) as i64, plane_frac, acc_frac);
            }
        }
    }
}

/// Pooling on quantized codes (Dst Reorder).
fn pool(t: &Tensor<i16>, kind: PoolKind, factor: usize) -> Tensor<i16> {
    let (c, h, w) = t.shape();
    Tensor::from_fn(c, h / factor, w / factor, |ch, y, x| match kind {
        PoolKind::Stride => t.at(ch, y * factor, x * factor),
        PoolKind::Max => {
            let mut m = i16::MIN;
            for dy in 0..factor {
                for dx in 0..factor {
                    m = m.max(t.at(ch, y * factor + dy, x * factor + dx));
                }
            }
            m
        }
    })
}

/// Convenience: quantize a float image block into input codes for
/// [`BlockExecutor::run`].
pub fn quantize_input(block: &Tensor<f32>, program: &Program) -> Tensor<i16> {
    block.map(|v| program.di_q.quantize(v))
}

/// Convenience: dequantize an output block back to floats.
pub fn dequantize_output(block: &Tensor<i16>, program: &Program) -> Tensor<f32> {
    block.map(|c| program.do_q.dequantize(c))
}

/// Peak MACs available in `cycles` CIU cycles (for utilization reports).
pub fn peak_macs(config: &EcnnConfig, cycles: u64) -> u64 {
    cycles * config.total_multipliers()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnn_isa::compile::compile;
    use ecnn_isa::params::QuantizedModel;
    use ecnn_model::ernet::{ErNetSpec, ErNetTask};
    use ecnn_model::layer::{Activation, Layer, Op};
    use ecnn_model::model::Model;
    use ecnn_tensor::conv::{conv3x3_fixed, FixedConvParams, Padding};
    use ecnn_tensor::SyntheticImage;

    /// Single 3->32 conv: the simulator must agree with the golden fixed
    /// kernel exactly.
    #[test]
    fn single_conv_matches_golden_kernel() {
        let m = Model::new(
            "one-conv",
            3,
            32,
            vec![Layer::new(Op::Conv3x3 {
                in_c: 3,
                out_c: 32,
                act: Activation::None,
            })],
        )
        .unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 16).unwrap();
        let img = SyntheticImage::new(ecnn_tensor::ImageKind::Mixed, 3).rgb(16, 16);
        let input = img.map(|v| qm.input_q.quantize(v));

        let mut ex = BlockExecutor::new(&c.program, &c.leafs);
        let out = ex.run(&input).unwrap();
        assert_eq!(out.shape(), (32, 14, 14));

        // Golden: hardware-padded 32ch input into conv3x3_fixed.
        let p = qm.layers[0].as_ref().unwrap();
        let padded = input.with_channels(32);
        let golden = conv3x3_fixed(
            &padded,
            qm.input_q.frac() as i32,
            &FixedConvParams {
                weights: &p.w3,
                w_format: p.w3_q,
                bias: &p.b3,
                b_format: p.b3_q,
                out_format: p.out_q,
            },
            32,
            Padding::Valid,
        );
        assert_eq!(out, golden);
    }

    #[test]
    fn er_module_residual_is_exact_identity_with_zero_weights() {
        // An ER module with all-zero weights must reduce to the residual:
        // output == center crop of input (requantized).
        let m = Model::new(
            "er-id",
            32,
            32,
            vec![Layer::new(Op::ErModule {
                channels: 32,
                expansion: 2,
            })],
        )
        .unwrap();
        let mut qm = QuantizedModel::uniform(&m);
        {
            let p = qm.layers[0].as_mut().unwrap();
            p.w3.iter_mut().for_each(|w| *w = 0);
            p.w1.iter_mut().for_each(|w| *w = 0);
            p.b3.iter_mut().for_each(|b| *b = 0);
            p.b1.iter_mut().for_each(|b| *b = 0);
            p.out_q = qm.input_q; // same format => exact pass-through
        }
        let c = compile(&qm, 12).unwrap();
        let input = Tensor::from_fn(32, 12, 12, |ch, y, x| ((ch + y * 3 + x) % 200) as i16);
        let mut ex = BlockExecutor::new(&c.program, &c.leafs);
        let out = ex.run(&input).unwrap();
        assert_eq!(out.shape(), (32, 10, 10));
        for ch in 0..32 {
            for y in 0..10 {
                for x in 0..10 {
                    assert_eq!(out.at(ch, y, x), input.at(ch, y + 1, x + 1));
                }
            }
        }
    }

    #[test]
    fn dnernet_runs_end_to_end() {
        let m = ErNetSpec::new(ErNetTask::Dn, 3, 1, 0).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 64).unwrap();
        let img = SyntheticImage::new(ecnn_tensor::ImageKind::Texture, 9).rgb(64, 64);
        let input = quantize_input(&img, &c.program);
        let mut ex = BlockExecutor::new(&c.program, &c.leafs);
        let out = ex.run(&input).unwrap();
        assert_eq!(out.shape(), (3, 52, 52));
        let stats = ex.stats();
        assert_eq!(stats.instructions, 6);
        assert!(stats.mac3 > 0 && stats.mac1 > 0);
        assert!(stats.di_bytes > 0 && stats.do_bytes > 0);
    }

    #[test]
    fn sr2_upsamples_block() {
        let m = ErNetSpec::new(ErNetTask::Sr2, 2, 1, 0).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 32).unwrap();
        // 32 - 2*5 convs at LR = 22 -> x2 = 44 -> tail conv -> 42.
        assert_eq!(c.program.do_side, 42);
        let img = SyntheticImage::new(ecnn_tensor::ImageKind::Smooth, 4).rgb(32, 32);
        let input = quantize_input(&img, &c.program);
        let mut ex = BlockExecutor::new(&c.program, &c.leafs);
        let out = ex.run(&input).unwrap();
        assert_eq!(out.shape(), (3, 42, 42));
    }

    #[test]
    fn dn12_shuffle_path_round_trips_shape() {
        let m = ErNetSpec::new(ErNetTask::Dn12, 2, 1, 0).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 64).unwrap();
        let img = SyntheticImage::new(ecnn_tensor::ImageKind::Mixed, 5).rgb(64, 64);
        let input = quantize_input(&img, &c.program);
        let mut ex = BlockExecutor::new(&c.program, &c.leafs);
        let out = ex.run(&input).unwrap();
        // 64 -> unshuffle 32 -> 5 convs -> 22 -> shuffle -> 44.
        assert_eq!(out.shape(), (3, 44, 44));
    }

    #[test]
    fn unpacked_params_execute_identically() {
        // Executing with Huffman-decoded parameters must match the directly
        // compiled leafs bit-for-bit.
        let m = ErNetSpec::new(ErNetTask::Dn, 2, 2, 1).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 48).unwrap();
        let decoded: Vec<_> = (0..c.program.instructions.len())
            .map(|i| c.packed.unpack(i).unwrap())
            .collect();
        let img = SyntheticImage::new(ecnn_tensor::ImageKind::Edges, 2).rgb(48, 48);
        let input = quantize_input(&img, &c.program);
        let out_a = BlockExecutor::new(&c.program, &c.leafs)
            .run(&input)
            .unwrap();
        let out_b = BlockExecutor::new(&c.program, &decoded)
            .run(&input)
            .unwrap();
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn missing_plane_is_reported() {
        let m = ErNetSpec::new(ErNetTask::Dn, 1, 1, 0).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 32).unwrap();
        // Run with too few leaf sets.
        let mut ex = BlockExecutor::new(&c.program, &c.leafs[..2]);
        let img = SyntheticImage::new(ecnn_tensor::ImageKind::Smooth, 1).rgb(32, 32);
        let input = quantize_input(&img, &c.program);
        assert!(matches!(ex.run(&input), Err(ExecError::Leafs(_))));
    }

    #[test]
    fn wrong_input_shape_is_reported() {
        let m = ErNetSpec::new(ErNetTask::Dn, 1, 1, 0).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 32).unwrap();
        let img = SyntheticImage::new(ecnn_tensor::ImageKind::Smooth, 1).rgb(16, 16);
        let input = quantize_input(&img, &c.program);
        let mut ex = BlockExecutor::new(&c.program, &c.leafs);
        assert!(matches!(ex.run(&input), Err(ExecError::Shape(_))));
    }
}
