//! Table A.1 / Fig. A.1: DnERNet-12ch variants — pixel-unshuffled denoisers
//! reach deeper models per budget and at most ~1.8 GB/s of DRAM.

use ecnn_bench::{bench_scale, dn12_matrix, report_row, section};
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_nn::data::TaskKind;
use ecnn_nn::pipeline::polish;
use ecnn_nn::schedule::repro_stages;

fn main() {
    section("Table A.1: DnERNet-12ch hardware behaviour");
    println!(
        "{:<26} {:>6} {:>8} {:>8} {:>8}",
        "model", "spec", "fps", "GB/s", "RT?"
    );
    for (rt, spec, xi) in dn12_matrix() {
        let r = report_row(spec, xi, rt);
        println!(
            "{:<26} {:>6} {:>8.1} {:>8.2} {:>8}",
            spec.name(),
            rt.name,
            r.frame.fps,
            r.dram_bandwidth_bps() / 1e9,
            if r.meets_realtime { "yes" } else { "NO" }
        );
    }
    println!("(paper: at most 1.8 GB/s; every pick real-time)");

    section("Table A.1: quality — 12ch vs 3ch at the UHD30 budget");
    let stage = &repro_stages(bench_scale())[1];
    let task = TaskKind::denoise25();
    let (_, p3) = polish(ErNetSpec::new(ErNetTask::Dn, 3, 1, 0), task, stage, 31);
    let (_, p12) = polish(ErNetSpec::new(ErNetTask::Dn12, 8, 2, 5), task, stage, 31);
    println!("DnERNet-B3R1N0       : {p3:.2} dB");
    println!("DnERNet-12ch-B8R2N5  : {p12:.2} dB ({:+.2} dB)", p12 - p3);
    println!("(paper: the 12ch UHD30 model gains 0.54 dB over the 3ch one)");
}
