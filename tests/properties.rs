//! Cross-crate property tests on the core invariants.

use ecnn_isa::coding::{decode_segment, encode_segment};
use ecnn_isa::compile::compile;
use ecnn_isa::params::QuantizedModel;
use ecnn_model::blockflow::{nbr, ncr, plain_nbr, plain_ncr, FootprintWalk};
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_model::layer::{Activation, Layer, Op};
use ecnn_model::{ChannelMode, Model};
use ecnn_tensor::QFormat;
use proptest::prelude::*;

fn plain(depth: usize) -> Model {
    let mut layers = vec![Layer::new(Op::Conv3x3 {
        in_c: 3,
        out_c: 3,
        act: Activation::Relu,
    })];
    for _ in 1..depth {
        layers.push(Layer::new(Op::Conv3x3 {
            in_c: 3,
            out_c: 3,
            act: Activation::Relu,
        }));
    }
    Model::new("plain", 3, 3, layers).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. (2) equals the exact walk on plain networks for any feasible
    /// (depth, block) pair.
    #[test]
    fn nbr_closed_form_matches_walk(depth in 1usize..15, xi in 40usize..200) {
        prop_assume!(xi > 2 * depth + 4);
        let m = plain(depth);
        let beta = depth as f64 / xi as f64;
        let exact = nbr(&m, xi as f64, 1.0).unwrap();
        prop_assert!((exact - plain_nbr(beta)).abs() < 1e-9);
    }

    /// NCR decreases monotonically with block size.
    #[test]
    fn ncr_monotone_in_block_size(depth in 2usize..10) {
        let m = plain(depth);
        let a = ncr(&m, 64.0, ChannelMode::Algorithmic).unwrap();
        let b = ncr(&m, 128.0, ChannelMode::Algorithmic).unwrap();
        let c = ncr(&m, 256.0, ChannelMode::Algorithmic).unwrap();
        prop_assert!(a > b && b > c);
        prop_assert!(c > 1.0);
        // And the closed form brackets the discrete sum within 10%.
        let closed = plain_ncr(depth as f64 / 128.0);
        prop_assert!((b - closed).abs() / closed < 0.10);
    }

    /// Forward/backward footprint walks are inverses.
    #[test]
    fn footprint_walks_invert(depth in 1usize..12, xi in 30usize..200) {
        prop_assume!(xi > 2 * depth + 2);
        let m = plain(depth);
        let f = FootprintWalk::forward(&m, xi as f64).unwrap();
        let b = FootprintWalk::backward(&m, f.xo()).unwrap();
        prop_assert!((b.xi() - xi as f64).abs() < 1e-9);
    }

    /// Entropy coding round-trips arbitrary i16 parameter segments.
    #[test]
    fn coding_round_trip(values in proptest::collection::vec(-255i16..=255, 0..200)) {
        let bytes = encode_segment(&values);
        let (decoded, _) = decode_segment(&bytes, values.len()).unwrap();
        prop_assert_eq!(decoded, values);
    }

    /// Q-format quantization error is bounded by half a step inside range.
    #[test]
    fn qformat_error_bound(frac in -4i8..10, x in -100.0f32..100.0) {
        let q = QFormat::signed(frac);
        let clipped = x.clamp(q.min_value(), q.max_value());
        let err = (q.round_trip(x) - clipped).abs();
        prop_assert!(err <= q.step() / 2.0 + 1e-5, "err {} step {}", err, q.step());
    }

    /// Every feasible ERNet compiles, respects the 4-leaf cap, and its
    /// packed parameters decode to the compiler's leafs.
    #[test]
    fn ernets_compile_and_roundtrip(b in 1usize..6, r in 1usize..4, sel in 0usize..3) {
        let n = sel.min(b);
        let task = match sel % 3 { 0 => ErNetTask::Dn, 1 => ErNetTask::Sr2, _ => ErNetTask::Sr4 };
        let spec = ErNetSpec::new(task, b, r, n);
        let m = spec.build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 64).unwrap();
        for ins in &c.program.instructions {
            prop_assert!(ins.leaf_modules() <= 4);
        }
        let first = c.packed.unpack(0).unwrap();
        prop_assert_eq!(&first, &c.leafs[0]);
    }
}
