//! Combined system reports: compute + on-chip power + DRAM, plus the
//! supervision snapshot a pipelined session exposes.

use crate::supervise::{DegradeRung, SupervisorPolicy, SupervisorStats};
use ecnn_dram::{DramConfig, DramPower};
use ecnn_model::RealTimeSpec;
use ecnn_sim::cost::PowerReport;
use ecnn_sim::timing::FrameReport;
use std::fmt;

/// Everything the evaluation section reports about one (model, spec) pair.
#[derive(Clone, Debug)]
pub struct SystemReport {
    /// The real-time target.
    pub spec: RealTimeSpec,
    /// Cycle-model results.
    pub frame: FrameReport,
    /// On-chip power breakdown.
    pub power: PowerReport,
    /// DRAM power at the spec rate.
    pub dram_power: DramPower,
    /// Smallest sufficient DRAM interface, if any.
    pub dram_config: Option<DramConfig>,
    /// Whether the achievable fps meets the spec.
    pub meets_realtime: bool,
}

impl SystemReport {
    pub(crate) fn finalize(mut self) -> Self {
        self.meets_realtime = self.frame.fps >= self.spec.fps;
        self
    }

    /// DRAM bandwidth at the (capped) spec rate, bytes per second.
    pub fn dram_bandwidth_bps(&self) -> f64 {
        self.frame
            .dram_total_bps_at(self.spec.fps.min(self.frame.fps))
    }

    /// Energy per output frame in millijoules (core + DRAM).
    pub fn energy_per_frame_mj(&self) -> f64 {
        let fps = self.spec.fps.min(self.frame.fps);
        (self.power.total_w() + self.dram_power.total_mw() / 1e3) / fps * 1e3
    }
}

impl fmt::Display for SystemReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} @ {}", self.frame.model, self.spec)?;
        writeln!(
            f,
            "  fps {:.1} ({}) | {:.1} ms/frame | NCR {:.2} | NBR {:.2}",
            self.frame.fps,
            if self.meets_realtime {
                "real-time"
            } else {
                "below target"
            },
            self.frame.seconds_per_frame * 1e3,
            self.frame.ncr,
            self.frame.nbr,
        )?;
        writeln!(
            f,
            "  power {:.2} W | DRAM {:.2} GB/s on {} ({:.0} mW dynamic)",
            self.power.total_w(),
            self.dram_bandwidth_bps() / 1e9,
            self.dram_config.map_or("(none fits)", |c| c.name),
            self.dram_power.dynamic_mw(),
        )
    }
}

/// Snapshot of a pipelined session's supervision state: the policy it
/// runs under, the verifier-licensed degradation ladder, and everything
/// the supervisor did over the session's lifetime. Obtain via
/// [`AsyncSession::supervision_report`](crate::pipe::AsyncSession::supervision_report).
#[derive(Clone, Debug)]
pub struct SupervisionReport {
    /// The policy the session supervises under.
    pub policy: SupervisorPolicy,
    /// The degradation ladder, fastest rung first (index 0 = the
    /// configured rung); every rung is bit-identical by construction.
    pub ladder: Vec<DegradeRung>,
    /// Session-lifetime outcomes: counters, ladder steps, current rung.
    pub stats: SupervisorStats,
    /// Worker threads in the pool (constant — respawn replaces a dead
    /// worker, the pool never shrinks).
    pub workers: usize,
}

impl fmt::Display for SupervisionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "supervision: {} workers | <= {} attempts/band, backoff {:?}..{:?} | deadline {}",
            self.workers,
            self.policy.max_attempts,
            self.policy.backoff_base,
            self.policy.backoff_cap,
            match self.policy.frame_deadline {
                Some(d) => format!("{d:?}"),
                None => "off".to_string(),
            },
        )?;
        write!(f, "  ladder:")?;
        for (i, rung) in self.ladder.iter().enumerate() {
            let here = if i == self.stats.rung { "*" } else { "" };
            write!(f, " {rung}{here}")?;
        }
        writeln!(f)?;
        write!(f, "  {}", self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use ecnn_model::ernet::{ErNetSpec, ErNetTask};

    #[test]
    fn display_summarizes_all_quantities() {
        let eng = Engine::builder()
            .ernet(ErNetSpec::new(ErNetTask::Dn, 3, 1, 0))
            .block(128)
            .realtime(RealTimeSpec::UHD30)
            .build()
            .unwrap();
        let r = eng.system_report();
        let s = r.to_string();
        assert!(s.contains("DnERNet-B3R1N0"));
        assert!(s.contains("fps"));
        assert!(s.contains("DDR-400"));
        assert!(r.energy_per_frame_mj() > 0.0);
    }

    #[test]
    fn supervision_report_displays_policy_ladder_and_stats() {
        let r = SupervisionReport {
            policy: SupervisorPolicy::default(),
            ladder: crate::supervise::ladder(&crate::config::EngineConfig::new(64)),
            stats: SupervisorStats::default(),
            workers: 2,
        };
        let s = r.to_string();
        assert!(s.contains("2 workers"), "{s}");
        assert!(s.contains("simd+coalesced*"), "{s}");
        assert!(s.contains("reference+keyed"), "{s}");
        assert!(s.contains("retries 0"), "{s}");
    }
}
