//! Static verification of FBISA programs: plane liveness/placement
//! re-derivation, fixed-point range analysis, and ranked diagnostics.
//!
//! [`verify`] walks a [`Program`] plus its IDU-decoded leaf parameters
//! once, *before* any kernel runs, and
//!
//! 1. re-derives every feature plane's shape, lifetime and
//!    `(buffer, group)` placement independently of the simulator's
//!    `BlockPlan` (the two implementations cross-check each other — see
//!    `ecnn_sim::exec::crosscheck_plan`);
//! 2. runs an abstract interpretation with interval arithmetic over the
//!    quantized pipeline — per-channel code ranges propagated through
//!    [`QSpec`](crate::instr::QSpec) fractional shifts, 3×3/1×1 tap sums,
//!    bias pre-sums, activations and residual accumulation — to prove the
//!    `i64` accumulators and `i32` requantization stores cannot overflow
//!    for *any* input in the declared `DI` range;
//! 3. emits a ranked [`Diagnostic`] list covering hard errors (overflow,
//!    operand-before-def, plane aliasing, shape mismatches the executor
//!    would only hit at run time) and lints (all-zero leaf filters, dead
//!    planes, redundant requantization headroom, bands narrower than the
//!    conv footprint).
//!
//! The interval analysis is sound but not exact: per-plane state is one
//! code interval per channel (spatial positions are hulled), and
//! zero-padded borders hull every tap contribution with zero. Observed
//! accumulator extrema of any execution therefore always lie inside the
//! predicted [`InstrRange`]s — the property `tests/verify.rs` pins with
//! the range-instrumented reference executor.

pub mod memplan;

use crate::compile::CompiledProgram;
use crate::instr::{FeatLoc, Instruction, Opcode, LEAF_CH};
use crate::params::LeafParams;
use crate::program::Program;
use ecnn_model::model::InferenceKind;
use ecnn_tensor::QFormat;
use std::collections::HashMap;
use std::fmt;

/// How strictly the engine treats verification results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VerifyMode {
    /// Do not run the verifier.
    Off,
    /// Run the verifier; hard errors are fatal, lints are recorded on the
    /// report but tolerated. The default.
    #[default]
    Lints,
    /// Run the verifier; both hard errors and lints are fatal.
    Strict,
}

impl VerifyMode {
    /// Stable lowercase name (`"off"`, `"lints"`, `"strict"`) — the
    /// serialization token used by `EngineConfig` records and the
    /// `ECNN_VERIFY` environment override; inverse of
    /// [`VerifyMode::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            VerifyMode::Off => "off",
            VerifyMode::Lints => "lints",
            VerifyMode::Strict => "strict",
        }
    }

    /// Parses a mode from its case-insensitive [`VerifyMode::as_str`]
    /// name; `None` for anything else.
    pub fn parse(name: &str) -> Option<VerifyMode> {
        match name.to_ascii_lowercase().as_str() {
            "off" => Some(VerifyMode::Off),
            "lints" => Some(VerifyMode::Lints),
            "strict" => Some(VerifyMode::Strict),
            _ => None,
        }
    }
}

/// Diagnostic severity: [`Severity::Error`] marks programs the executor
/// would corrupt, panic on, or reject; [`Severity::Warning`] marks legal
/// but wasteful or suspicious constructs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Lint: legal but wasteful/suspicious.
    Warning,
    /// Hard error: the program misbehaves or is unrepresentable.
    Error,
}

/// Stable diagnostic codes, one per property class the verifier checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DiagCode {
    /// Leaf-module bookkeeping broken: wrong leaf-set length, an
    /// [`Instruction::check`] violation, or a group layout the datapath
    /// cannot map onto leaf-modules.
    LeafMismatch,
    /// An operand used before any instruction defines it: a read of a
    /// never-written plane, a read from the `DO` stream, or a write to
    /// the `DI` stream.
    UndefOperand,
    /// Statically inconsistent geometry: conv grid vs input block, srcS
    /// domain smaller than the accumulator, `DO` side vs program
    /// metadata, non-square blocks.
    ShapeMismatch,
    /// The destination group lies inside the instruction's own source
    /// gather range — a same-cycle read/write hazard on real block
    /// buffers (`srcS == dst` accumulation is the one sanctioned idiom).
    AliasHazard,
    /// Proven possible overflow: an `i64` accumulator, the `i32`
    /// requantization store, or a fractional-shift amount the datapath
    /// cannot realize.
    AccOverflow,
    /// Q-format wiring broken: a consumer's declared operand format
    /// disagrees with the producer's stored format (silent wrong pixels),
    /// or a format the opcode needs is missing.
    QFormatMismatch,
    /// The verifier's independently derived plane table disagrees with
    /// the simulator's `BlockPlan` (differential-oracle failure; emitted
    /// by `ecnn_sim::exec::crosscheck_plan`).
    PlanDivergence,
    /// A leaf-module whose entire 3×3 (or 1×1) filter is zero: the packer
    /// masks it, so the leaf only burns decode cycles.
    ZeroTaps,
    /// A written plane no instruction (and no `DO` assembly) ever reads.
    DeadPlane,
    /// A requantization stage that provably does nothing: the accumulator
    /// already sits at the destination's fractional position and its
    /// proven range never clamps, so the store is a bit-exact copy.
    RedundantRequant,
    /// A zero-padded 3×3 convolution over a block narrower than its own
    /// footprint: every output pixel is dominated by padding.
    NarrowBand,
}

impl DiagCode {
    /// The severity class this code always carries.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::LeafMismatch
            | DiagCode::UndefOperand
            | DiagCode::ShapeMismatch
            | DiagCode::AliasHazard
            | DiagCode::AccOverflow
            | DiagCode::QFormatMismatch
            | DiagCode::PlanDivergence => Severity::Error,
            DiagCode::ZeroTaps
            | DiagCode::DeadPlane
            | DiagCode::RedundantRequant
            | DiagCode::NarrowBand => Severity::Warning,
        }
    }

    /// Stable mnemonic used by `ecnn-lint` and test assertions.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::LeafMismatch => "leaf-mismatch",
            DiagCode::UndefOperand => "undef-operand",
            DiagCode::ShapeMismatch => "shape-mismatch",
            DiagCode::AliasHazard => "alias-hazard",
            DiagCode::AccOverflow => "acc-overflow",
            DiagCode::QFormatMismatch => "qformat-mismatch",
            DiagCode::PlanDivergence => "plan-divergence",
            DiagCode::ZeroTaps => "zero-taps",
            DiagCode::DeadPlane => "dead-plane",
            DiagCode::RedundantRequant => "redundant-requant",
            DiagCode::NarrowBand => "narrow-band",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One verifier finding: a stable code, its severity, the instruction it
/// anchors to (`None` for program-level findings) and a human-readable
/// detail naming the worst-case bound or the mismatching operand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: DiagCode,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// Instruction index the finding anchors to.
    pub instr: Option<usize>,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        match self.instr {
            Some(i) => write!(f, "{sev}[{}] instr {i}: {}", self.code, self.detail),
            None => write!(f, "{sev}[{}]: {}", self.code, self.detail),
        }
    }
}

/// Independently re-derived record of one feature plane — the verifier's
/// half of the differential oracle against the simulator's `PlaneInfo`
/// table (same ordering: `DI` planes first, then one record per
/// instruction write).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlaneRecord {
    /// The `(buffer, group)` the plane occupies.
    pub loc: FeatLoc,
    /// Channel count ([`LEAF_CH`] except post-shuffle `UPX2` planes).
    pub channels: usize,
    /// Spatial height.
    pub height: usize,
    /// Spatial width.
    pub width: usize,
    /// Instruction index that writes the plane (`None` for `DI` planes).
    pub born: Option<usize>,
    /// Last instruction index that reads the plane;
    /// `program.instructions.len()` marks the `DO` assembly step. `None`
    /// for a plane nothing reads.
    pub last_use: Option<usize>,
}

/// Proven per-instruction value bounds, in code units.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstrRange {
    /// Final accumulator interval (after srcS accumulation and ReLU,
    /// before requantization), hulled across output channels.
    pub acc: (i64, i64),
    /// `ER` only: the raw 3×3 expansion accumulator interval (before the
    /// internal ReLU/quantizer), hulled across leaves and channels.
    pub er_acc3: Option<(i64, i64)>,
    /// Stored destination codes after requantization and clamping,
    /// hulled across channels.
    pub dst: (i64, i64),
    /// Whether the analysis proves every *convolution-stage* accumulator
    /// value (bias plus tap contributions, before srcS accumulation and
    /// before any activation — for `ER`, both the per-leaf 3×3 expansion
    /// stage and the 1×1 reduction stage) fits an `i32`.
    ///
    /// This is the license for narrow SIMD accumulation: two's-complement
    /// wrapping arithmetic is exact modulo 2³², so a kernel that
    /// accumulates in `i32` lanes produces the exact value whenever the
    /// *final* per-element sum fits `i32` — intermediate wraps are
    /// harmless. The interval proven here bounds every per-element final
    /// sum, so `narrow_acc` ⇒ the `i32` kernel is bit-identical to the
    /// `i64` one.
    pub narrow_acc: bool,
}

/// The verifier's full output: ranked diagnostics, the re-derived plane
/// table, and per-instruction proven value ranges.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// All findings, errors first, then by instruction index.
    pub diagnostics: Vec<Diagnostic>,
    /// Re-derived plane table (`DI` planes first, then one per
    /// instruction write), for cross-checking against `BlockPlan`.
    pub planes: Vec<PlaneRecord>,
    /// Per-instruction proven ranges; `None` where structural errors made
    /// the instruction unanalyzable.
    pub ranges: Vec<Option<InstrRange>>,
}

impl VerifyReport {
    fn push(&mut self, code: DiagCode, instr: Option<usize>, detail: String) {
        self.diagnostics.push(Diagnostic {
            code,
            severity: code.severity(),
            instr,
            detail,
        });
    }

    /// Hard errors only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Lints only.
    pub fn lints(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Whether any hard error was found.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether the report is empty (no errors, no lints).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether the program passes under `mode`: always under
    /// [`VerifyMode::Off`], no errors under [`VerifyMode::Lints`], no
    /// findings at all under [`VerifyMode::Strict`].
    pub fn passes(&self, mode: VerifyMode) -> bool {
        match mode {
            VerifyMode::Off => true,
            VerifyMode::Lints => !self.has_errors(),
            VerifyMode::Strict => self.is_clean(),
        }
    }

    /// Sorts findings by rank: errors before warnings, then by
    /// instruction index (program-level findings first).
    /// Sorts diagnostics most-severe first, then by instruction index.
    ///
    /// `verify` returns a ranked report; call this again after extending
    /// [`Self::diagnostics`] externally (e.g. with plan cross-check
    /// findings) to restore the order.
    pub fn rank(&mut self) {
        self.diagnostics.sort_by_key(|d| {
            (
                d.severity == Severity::Warning,
                d.instr.map_or(0, |i| i.saturating_add(1)),
            )
        });
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "verify: clean ({} planes analyzed)", self.planes.len());
        }
        let errors = self.errors().count();
        let lints = self.diagnostics.len().saturating_sub(errors);
        writeln!(f, "verify: {errors} error(s), {lints} lint(s)")?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// A per-channel code interval, computed in `i128` so that `i64`
/// overflow is *detected* rather than suffered.
type Iv = (i128, i128);

fn iv_add(a: Iv, b: Iv) -> Iv {
    (a.0.saturating_add(b.0), a.1.saturating_add(b.1))
}

fn iv_hull(a: Iv, b: Iv) -> Iv {
    (a.0.min(b.0), a.1.max(b.1))
}

fn iv_mul(w: i128, r: Iv) -> Iv {
    if w >= 0 {
        (w.saturating_mul(r.0), w.saturating_mul(r.1))
    } else {
        (w.saturating_mul(r.1), w.saturating_mul(r.0))
    }
}

fn iv_relu(a: Iv) -> Iv {
    (a.0.max(0), a.1.max(0))
}

fn iv_abs_bound(a: Iv) -> i128 {
    a.0.abs().max(a.1.abs())
}

fn fits_i64(a: Iv) -> bool {
    a.0 >= i64::MIN as i128 && a.1 <= i64::MAX as i128
}

fn fits_i32(a: Iv) -> bool {
    a.0 >= i32::MIN as i128 && a.1 <= i32::MAX as i128
}

/// Emulates `ecnn_tensor::qformat::rescale_code`'s round-half-away
/// downshift on one endpoint (monotone, so endpoints bound the image).
fn rescale_down(v: i128, shift: i32) -> i128 {
    let half = 1i128 << shift.saturating_sub(1);
    if v >= 0 {
        v.saturating_add(half) >> shift
    } else {
        (v.saturating_neg().saturating_add(half) >> shift).saturating_neg()
    }
}

/// Emulates `align_code` over an interval. Returns `Err` with a message
/// when the shift amount or the shifted magnitude exceeds what the
/// executor's `i64` arithmetic can realize.
fn align_iv(v: Iv, from_frac: i32, to_frac: i32) -> Result<Iv, String> {
    if to_frac >= from_frac {
        let shift = to_frac.saturating_sub(from_frac);
        if shift >= 63 {
            return Err(format!("alignment upshift by {shift} bits"));
        }
        let out = (v.0 << shift, v.1 << shift);
        if !fits_i64(out) {
            return Err(format!(
                "aligned value range [{}, {}] exceeds i64",
                out.0, out.1
            ));
        }
        Ok(out)
    } else {
        let shift = from_frac.saturating_sub(to_frac);
        if shift >= 63 {
            return Err(format!("alignment downshift by {shift} bits"));
        }
        Ok((rescale_down(v.0, shift), rescale_down(v.1, shift)))
    }
}

/// Requantizes an accumulator interval from `from_frac` to the code range
/// of `q`, mirroring the executor's `rescale_code` + `clamp_code` pair.
/// Returns the pre-clamp interval (for overflow/headroom checks) and the
/// stored post-clamp interval.
fn requant_iv(acc: Iv, from_frac: i32, q: QFormat) -> Result<(Iv, Iv), String> {
    let to_frac = q.frac() as i32;
    let shift = from_frac.saturating_sub(to_frac);
    let raw = if shift > 0 {
        if shift >= 63 {
            return Err(format!("requantization downshift by {shift} bits"));
        }
        // `acc + half` must not overflow the executor's i64.
        let half = 1i128 << shift.saturating_sub(1);
        if !fits_i64((acc.0.saturating_sub(half), acc.1.saturating_add(half))) {
            return Err(format!(
                "rounding bias overflows i64 (acc range [{}, {}], shift {shift})",
                acc.0, acc.1
            ));
        }
        (rescale_down(acc.0, shift), rescale_down(acc.1, shift))
    } else {
        let up = shift.saturating_neg();
        if up >= 63 {
            return Err(format!("requantization upshift by {up} bits"));
        }
        (acc.0 << up, acc.1 << up)
    };
    if !fits_i32(raw) {
        return Err(format!(
            "requantized range [{}, {}] exceeds the i32 store",
            raw.0, raw.1
        ));
    }
    let clamped = (
        raw.0.clamp(q.min_code() as i128, q.max_code() as i128),
        raw.1.clamp(q.min_code() as i128, q.max_code() as i128),
    );
    Ok((raw, clamped))
}

/// Analysis state of one live plane: its stored fractional position and
/// one code interval per channel.
#[derive(Clone, Debug)]
struct PlaneState {
    frac: i32,
    ranges: Vec<Iv>,
}

impl PlaneState {
    fn full(q: QFormat, channels: usize) -> Self {
        Self {
            frac: q.frac() as i32,
            ranges: vec![(q.min_code() as i128, q.max_code() as i128); channels],
        }
    }

    fn hull(&self) -> Iv {
        self.ranges
            .iter()
            .copied()
            .reduce(iv_hull)
            .unwrap_or((0, 0))
    }
}

/// Verifies a compiled program (see [`verify`]).
pub fn verify_compiled(compiled: &CompiledProgram) -> VerifyReport {
    verify(&compiled.program, &compiled.leafs)
}

/// Statically verifies `program` with its IDU-decoded leaf parameters
/// (one `Vec<LeafParams>` per instruction, as produced by the compiler or
/// `PackedParams::unpack`).
///
/// Never panics and never executes a kernel: all findings are reported as
/// [`Diagnostic`]s on the returned [`VerifyReport`], including the
/// conditions under which the executor itself would panic (srcS domain
/// underflow, out-of-range shift amounts, missing Q-formats).
pub fn verify(program: &Program, leafs: &[Vec<LeafParams>]) -> VerifyReport {
    let mut rpt = VerifyReport::default();
    if leafs.len() != program.instructions.len() {
        rpt.push(
            DiagCode::LeafMismatch,
            None,
            format!(
                "{} leaf sets for {} instructions",
                leafs.len(),
                program.instructions.len()
            ),
        );
        rpt.rank();
        return rpt;
    }
    let s = program.input_unshuffle.unwrap_or(1);
    if s == 0 || !program.di_side.is_multiple_of(s) {
        rpt.push(
            DiagCode::ShapeMismatch,
            None,
            format!(
                "DI side {} not divisible by unshuffle factor {s}",
                program.di_side
            ),
        );
        rpt.rank();
        return rpt;
    }
    let di_plane_side = program.di_side.checked_div(s).unwrap_or(0);
    let di_groups = program
        .di_channels
        .saturating_mul(s)
        .saturating_mul(s)
        .div_ceil(LEAF_CH);

    // Plane table + live map + per-plane analysis state, all derived
    // from scratch (independently of BlockPlan).
    let mut live: HashMap<FeatLoc, usize> = HashMap::new();
    let mut states: Vec<Option<PlaneState>> = Vec::new();
    for g in 0..di_groups {
        let loc = FeatLoc::Di { group: g as u8 };
        live.insert(loc, rpt.planes.len());
        rpt.planes.push(PlaneRecord {
            loc,
            channels: LEAF_CH,
            height: di_plane_side,
            width: di_plane_side,
            born: None,
            last_use: None,
        });
        // Streamed channels carry the full declared DI code range;
        // hardware zero-channel padding pins the rest to exactly zero.
        let mut st = PlaneState::full(program.di_q, LEAF_CH);
        for c in 0..LEAF_CH {
            let logical = (g.saturating_mul(LEAF_CH).saturating_add(c))
                .checked_div(s.saturating_mul(s))
                .unwrap_or(0);
            if logical >= program.di_channels {
                st.ranges[c] = (0, 0);
            }
        }
        states.push(Some(st));
    }

    for (i, (ins, leafset)) in program.instructions.iter().zip(leafs).enumerate() {
        let mut broken = false;
        if let Err(e) = ins.check() {
            rpt.push(DiagCode::LeafMismatch, Some(i), e);
            broken = true;
        }
        if leafset.len() != ins.leaf_modules() {
            rpt.push(
                DiagCode::LeafMismatch,
                Some(i),
                format!(
                    "{} leafs but instruction declares {}",
                    leafset.len(),
                    ins.leaf_modules()
                ),
            );
            broken = true;
        }
        // Group layouts the datapath sweep cannot map onto leaf-modules:
        // every opcode writes one destination group per instruction
        // (UPX2's extra groups are pre-shuffle planes of that one write).
        if ins.opcode != Opcode::Upx2 && ins.out_groups != 1 {
            rpt.push(
                DiagCode::LeafMismatch,
                Some(i),
                format!(
                    "{} writes one output group per instruction (declared {})",
                    ins.opcode.mnemonic(),
                    ins.out_groups
                ),
            );
            broken = true;
        }
        if ins.opcode == Opcode::Upx2 && ins.in_groups != 1 {
            rpt.push(
                DiagCode::LeafMismatch,
                Some(i),
                format!(
                    "UPX2 sweeps a single input group (declared {})",
                    ins.in_groups
                ),
            );
            broken = true;
        }
        if ins.inference != program.inference {
            rpt.push(
                DiagCode::ShapeMismatch,
                Some(i),
                "instruction inference kind differs from the program's".into(),
            );
        }
        if ins.opcode == Opcode::Er && ins.q.mid.is_none() {
            rpt.push(
                DiagCode::QFormatMismatch,
                Some(i),
                "ER without a mid format (the executor would panic)".into(),
            );
            broken = true;
        }
        if ins.opcode.has_conv1x1() && ins.q.b1.is_none() {
            rpt.push(
                DiagCode::QFormatMismatch,
                Some(i),
                "1x1 opcode without a 1x1 bias format (the executor would panic)".into(),
            );
            broken = true;
        }
        if ins.in_size.0 != ins.in_size.1 || ins.out_size.0 != ins.out_size.1 {
            rpt.push(
                DiagCode::ShapeMismatch,
                Some(i),
                format!(
                    "non-square block {:?} -> {:?} (the block pipeline is square)",
                    ins.in_size, ins.out_size
                ),
            );
            broken = true;
        }
        if ins.opcode == Opcode::Dnx2 && ins.pool_factor == 0 {
            rpt.push(
                DiagCode::ShapeMismatch,
                Some(i),
                "DNX2 pool factor of zero".into(),
            );
            broken = true;
        }

        // --- Source operands: definedness, geometry, format wiring. ---
        let mut src_states: Vec<Option<usize>> = Vec::with_capacity(ins.in_groups);
        for g in 0..ins.in_groups {
            let loc = ins.src.offset(g);
            src_states.push(read_operand(
                &mut rpt,
                &live,
                i,
                loc,
                Some(ins.in_size.0),
                "src",
            ));
        }
        let src_ok = src_states.iter().all(Option::is_some);
        let src_idx: Vec<usize> = src_states.iter().flatten().copied().collect();
        for &idx in &src_idx {
            rpt.planes[idx].last_use = Some(i);
        }

        // --- Conv geometry, re-derived from the input block. ---
        let zero_pad = ins.inference == InferenceKind::ZeroPadded;
        let geom_ok = !broken && check_geometry(&mut rpt, i, ins, zero_pad);

        // --- srcS operand. ---
        let acc_dom = acc_domain(ins);
        let mut srcs_state: Option<usize> = None;
        if let Some(srcs) = ins.src_s {
            match ins.q.src_s {
                None => {
                    rpt.push(
                        DiagCode::QFormatMismatch,
                        Some(i),
                        "srcS operand without a srcS format (the executor would panic)".into(),
                    );
                    broken = true;
                }
                Some(_) => {
                    srcs_state = read_operand(&mut rpt, &live, i, srcs, None, "srcS");
                    if let Some(idx) = srcs_state {
                        rpt.planes[idx].last_use = Some(i);
                        let p = rpt.planes[idx];
                        let (dc, dh, dw) = acc_dom;
                        if p.height < dh || p.width < dw {
                            rpt.push(
                                DiagCode::ShapeMismatch,
                                Some(i),
                                format!(
                                    "srcS plane {}x{} smaller than the {dw}x{dh} accumulator \
                                     (the executor would panic)",
                                    p.width, p.height
                                ),
                            );
                            broken = true;
                        }
                        if p.channels < dc.min(LEAF_CH) {
                            rpt.push(
                                DiagCode::ShapeMismatch,
                                Some(i),
                                format!(
                                    "srcS carries {} channel(s) for a {dc}-channel accumulator",
                                    p.channels
                                ),
                            );
                            broken = true;
                        }
                    }
                }
            }
        }

        // --- Aliasing: dst inside this instruction's src gather range. ---
        if let (FeatLoc::Bb { id: sid, group: sg }, FeatLoc::Bb { id: did, group: dg }) =
            (ins.src, ins.dst)
        {
            let span = sg as usize..(sg as usize).saturating_add(ins.in_groups);
            if sid == did && span.contains(&(dg as usize)) {
                rpt.push(
                    DiagCode::AliasHazard,
                    Some(i),
                    format!(
                        "dst {} lies inside the src gather range {}..+{}",
                        ins.dst, ins.src, ins.in_groups
                    ),
                );
            }
        }

        // --- Lints that need only the instruction itself. ---
        for (li, leaf) in leafset.iter().enumerate() {
            if ins.opcode.has_conv3x3() && leaf.w3.iter().all(|&w| w == 0) {
                rpt.push(
                    DiagCode::ZeroTaps,
                    Some(i),
                    format!("leaf {li}: 3x3 filter is entirely zero"),
                );
            }
            if ins.opcode.has_conv1x1() && leaf.w1.iter().all(|&w| w == 0) {
                rpt.push(
                    DiagCode::ZeroTaps,
                    Some(i),
                    format!("leaf {li}: 1x1 filter is entirely zero"),
                );
            }
        }
        if ins.opcode.has_conv3x3() && zero_pad && ins.in_size.0 < 3 {
            rpt.push(
                DiagCode::NarrowBand,
                Some(i),
                format!(
                    "input block {}x{} narrower than the 3x3 footprint",
                    ins.in_size.0, ins.in_size.1
                ),
            );
        }

        // --- The destination write. ---
        if matches!(ins.dst, FeatLoc::Do { .. }) && ins.relu && ins.q.dst.is_signed() {
            // Purely informational in the current models; no diagnostic.
        }
        let dst_channels = if ins.opcode == Opcode::Upx2 {
            ins.out_groups.saturating_mul(LEAF_CH) / 4
        } else {
            LEAF_CH
        };
        if matches!(ins.dst, FeatLoc::Di { .. }) {
            rpt.push(
                DiagCode::UndefOperand,
                Some(i),
                "instruction writes to the DI stream".into(),
            );
            rpt.ranges.push(None);
            continue;
        }

        // --- Interval analysis. ---
        let analyzable = !broken && geom_ok && src_ok;
        let range = if analyzable {
            analyze(
                &mut rpt,
                i,
                ins,
                leafset,
                &src_idx,
                srcs_state,
                &states,
                dst_channels,
            )
        } else {
            None
        };
        // Even when analysis fails, the stored plane is still bounded by
        // its format's code range (requantization clamps every store).
        let st = match &range {
            Some((_, per_ch)) => Some(PlaneState {
                frac: ins.q.dst.frac() as i32,
                ranges: per_ch.clone(),
            }),
            None => Some(PlaneState::full(ins.q.dst, dst_channels)),
        };
        rpt.ranges.push(range.map(|(r, _)| r));
        live.insert(ins.dst, rpt.planes.len());
        rpt.planes.push(PlaneRecord {
            loc: ins.dst,
            channels: dst_channels,
            height: ins.out_size.1,
            width: ins.out_size.0,
            born: Some(i),
            last_use: None,
        });
        states.push(st);
    }

    // --- DO assembly: every output group defined, sized, and formatted. ---
    let out_groups = program.do_channels.div_ceil(LEAF_CH);
    let end = program.instructions.len();
    for g in 0..out_groups {
        let loc = FeatLoc::Do { group: g as u8 };
        let Some(&idx) = live.get(&loc) else {
            rpt.push(
                DiagCode::UndefOperand,
                None,
                format!("output group {loc} is never written"),
            );
            continue;
        };
        let p = rpt.planes[idx];
        rpt.planes[idx].last_use = Some(end);
        if p.height != program.do_side || p.width != program.do_side {
            rpt.push(
                DiagCode::ShapeMismatch,
                p.born,
                format!(
                    "{loc} plane {}x{} vs declared DO side {}",
                    p.width, p.height, program.do_side
                ),
            );
        }
        let logical = LEAF_CH.min(
            program
                .do_channels
                .saturating_sub(g.saturating_mul(LEAF_CH)),
        );
        if p.channels < logical {
            rpt.push(
                DiagCode::ShapeMismatch,
                p.born,
                format!(
                    "{loc} plane carries {} channel(s) for {logical} logical output channel(s)",
                    p.channels
                ),
            );
        }
        if let Some(st) = states[idx].as_ref() {
            if st.frac != program.do_q.frac() as i32 {
                rpt.push(
                    DiagCode::QFormatMismatch,
                    p.born,
                    format!(
                        "{loc} stored at Q{} but the DO stream declares {}",
                        st.frac, program.do_q
                    ),
                );
            }
        }
    }

    // --- Dead planes: written, never consumed. ---
    let dead: Vec<(Option<usize>, FeatLoc)> = rpt
        .planes
        .iter()
        .filter(|p| p.born.is_some() && p.last_use.is_none())
        .map(|p| (p.born, p.loc))
        .collect();
    for (born, loc) in dead {
        rpt.push(
            DiagCode::DeadPlane,
            born,
            format!("{loc} is written but never read"),
        );
    }

    rpt.rank();
    rpt
}

/// Spatial/channel domain of the accumulator at srcS-accumulation time.
fn acc_domain(ins: &Instruction) -> (usize, usize, usize) {
    match ins.opcode {
        // UPX2 accumulates srcS after the shuffle, in the destination
        // domain; DNX2 before pooling, on the conv grid.
        Opcode::Upx2 => (
            ins.out_groups.saturating_mul(LEAF_CH) / 4,
            ins.out_size.1,
            ins.out_size.0,
        ),
        Opcode::Dnx2 => {
            let (cw, chh) = ins.conv_out_size();
            (LEAF_CH, chh, cw)
        }
        Opcode::Conv | Opcode::Er => {
            let (cw, chh) = ins.conv_out_size();
            (LEAF_CH, chh, cw)
        }
        Opcode::Conv1 => (LEAF_CH, ins.in_size.1, ins.in_size.0),
    }
}

/// Resolves one read operand: definedness plus an optional square-side
/// check. Returns the plane-table index when the operand resolves.
/// (Fractional-position wiring is checked against the producer's stored
/// state inside the interval analysis.)
fn read_operand(
    rpt: &mut VerifyReport,
    live: &HashMap<FeatLoc, usize>,
    at: usize,
    loc: FeatLoc,
    expect_side: Option<usize>,
    role: &str,
) -> Option<usize> {
    if matches!(loc, FeatLoc::Do { .. }) {
        rpt.push(
            DiagCode::UndefOperand,
            Some(at),
            format!("{role} reads from the DO stream"),
        );
        return None;
    }
    let Some(&idx) = live.get(&loc) else {
        rpt.push(
            DiagCode::UndefOperand,
            Some(at),
            format!("{role} operand {loc} was never written"),
        );
        return None;
    };
    let p = rpt.planes[idx];
    if let Some(side) = expect_side {
        if p.height != side || p.width != side {
            rpt.push(
                DiagCode::ShapeMismatch,
                Some(at),
                format!(
                    "{role} plane {loc} is {}x{} vs declared side {side}",
                    p.width, p.height
                ),
            );
            return None;
        }
    }
    Some(idx)
}

/// Re-derives the conv grid from the input block and cross-checks the
/// declared output size. Returns whether the geometry is consistent.
fn check_geometry(rpt: &mut VerifyReport, i: usize, ins: &Instruction, zero_pad: bool) -> bool {
    let declared = ins.conv_out_size();
    if ins.opcode == Opcode::Upx2 && !ins.out_size.0.is_multiple_of(2) {
        rpt.push(
            DiagCode::ShapeMismatch,
            Some(i),
            format!("UPX2 output side {} is not even", ins.out_size.0),
        );
        return false;
    }
    // CONV1 and zero-padded 3x3 convs preserve the block side; valid
    // (truncated-pyramid) 3x3 convs shrink it by the 2-pixel border.
    let derived = if ins.opcode == Opcode::Conv1 || zero_pad {
        Some(ins.in_size.0)
    } else {
        ins.in_size.0.checked_sub(2)
    };
    match derived {
        Some(d) if d == declared.0 && d > 0 => true,
        Some(d) => {
            rpt.push(
                DiagCode::ShapeMismatch,
                Some(i),
                format!(
                    "conv grid {}x{} declared but input block {}x{} yields {d}x{d}",
                    declared.0, declared.1, ins.in_size.0, ins.in_size.1
                ),
            );
            false
        }
        None => {
            rpt.push(
                DiagCode::ShapeMismatch,
                Some(i),
                format!(
                    "input block {}x{} smaller than the 3x3 valid-conv footprint",
                    ins.in_size.0, ins.in_size.1
                ),
            );
            false
        }
    }
}

/// Abstract interpretation of one instruction. Returns the proven
/// [`InstrRange`] plus the per-channel stored ranges of the written
/// plane, or `None` when an overflow diagnostic was emitted (the caller
/// then falls back to the destination format's full code range, which
/// the clamped store still guarantees).
#[allow(clippy::too_many_arguments)]
fn analyze(
    rpt: &mut VerifyReport,
    i: usize,
    ins: &Instruction,
    leafset: &[LeafParams],
    src_idx: &[usize],
    srcs_idx: Option<usize>,
    states: &[Option<PlaneState>],
    dst_channels: usize,
) -> Option<(InstrRange, Vec<Iv>)> {
    // Gathered source ranges: `in_groups * LEAF_CH` channel intervals.
    // The executor reads every source code at the *declared* src
    // fraction, so any drift from a producer's stored fraction means
    // silent wrong pixels — flag it per group.
    let mut src_ranges: Vec<Iv> = Vec::with_capacity(src_idx.len().saturating_mul(LEAF_CH));
    for &idx in src_idx {
        match states[idx].as_ref() {
            Some(st) => {
                if st.frac != ins.q.src.frac() as i32 {
                    rpt.push(
                        DiagCode::QFormatMismatch,
                        Some(i),
                        format!(
                            "src stored at Q{} but the instruction declares {}",
                            st.frac, ins.q.src
                        ),
                    );
                    return None;
                }
                src_ranges.extend_from_slice(&st.ranges);
            }
            None => return None,
        }
    }
    let zero_pad = ins.inference == InferenceKind::ZeroPadded;
    let overflow = |rpt: &mut VerifyReport, msg: String| {
        rpt.push(DiagCode::AccOverflow, Some(i), msg);
    };

    match ins.opcode {
        Opcode::Conv | Opcode::Dnx2 | Opcode::Upx2 => {
            let prod3 = (ins.q.w3.frac() as i32).saturating_add(ins.q.src.frac() as i32);
            let b3 = ins.q.b3.frac() as i32;
            let out_planes = if ins.opcode == Opcode::Upx2 {
                ins.out_groups
            } else {
                1
            };
            let mut acc: Vec<Iv> = Vec::with_capacity(out_planes.saturating_mul(LEAF_CH));
            for op_ in 0..out_planes {
                for oc in 0..LEAF_CH {
                    // Bias pre-sum, aligned to the product position.
                    let mut bias: Iv = (0, 0);
                    let bias_leafs: &[LeafParams] = if ins.opcode == Opcode::Upx2 {
                        &leafset[op_..op_.saturating_add(1)]
                    } else {
                        leafset
                    };
                    for leaf in bias_leafs {
                        let v = leaf.b3[oc] as i128;
                        match align_iv((v, v), b3, prod3) {
                            Ok(a) => bias = iv_add(bias, a),
                            Err(e) => {
                                overflow(rpt, format!("3x3 bias: {e}"));
                                return None;
                            }
                        }
                    }
                    let mut sum = bias;
                    let mut abs_sum = iv_abs_bound(bias);
                    for (ig, chunk) in src_ranges.chunks_exact(LEAF_CH).enumerate() {
                        let leaf = if ins.opcode == Opcode::Upx2 {
                            &leafset[op_]
                        } else {
                            &leafset[ig]
                        };
                        for (ic, &r) in chunk.iter().enumerate() {
                            let wbase = oc
                                .saturating_mul(LEAF_CH)
                                .saturating_add(ic)
                                .saturating_mul(9);
                            for k in 0..9 {
                                let w = leaf.w3[wbase.saturating_add(k)] as i128;
                                if w == 0 {
                                    continue;
                                }
                                let mut c = iv_mul(w, r);
                                if zero_pad {
                                    // Border pixels lose this tap.
                                    c = iv_hull(c, (0, 0));
                                }
                                sum = iv_add(sum, c);
                                abs_sum = abs_sum.saturating_add(iv_abs_bound(c));
                            }
                        }
                    }
                    if abs_sum > i64::MAX as i128 {
                        overflow(
                            rpt,
                            format!("3x3 accumulator can reach magnitude {abs_sum} (> i64)"),
                        );
                        return None;
                    }
                    acc.push(sum);
                }
            }
            // Narrow license: every conv-stage sum (pre-srcS, pre-ReLU,
            // pre-shuffle) provably fits i32.
            let narrow = acc.iter().all(|&a| fits_i32(a));
            // UPX2 shuffles 4 consecutive pre-shuffle channels into one.
            if ins.opcode == Opcode::Upx2 {
                acc = acc
                    .chunks_exact(4)
                    .map(|c| c.iter().copied().reduce(iv_hull).unwrap_or((0, 0)))
                    .collect();
            }
            finish(
                rpt,
                i,
                ins,
                acc,
                prod3,
                srcs_idx,
                states,
                dst_channels,
                None,
                narrow,
            )
        }
        Opcode::Conv1 => {
            let (w1q, b1q) = (ins.q.w1?, ins.q.b1?);
            let prod1 = (w1q.frac() as i32).saturating_add(ins.q.src.frac() as i32);
            let b1 = b1q.frac() as i32;
            let mut acc: Vec<Iv> = Vec::with_capacity(LEAF_CH);
            for oc in 0..LEAF_CH {
                let mut sum: Iv = (0, 0);
                for leaf in leafset {
                    let v = leaf.b1[oc] as i128;
                    match align_iv((v, v), b1, prod1) {
                        Ok(a) => sum = iv_add(sum, a),
                        Err(e) => {
                            overflow(rpt, format!("1x1 bias: {e}"));
                            return None;
                        }
                    }
                }
                let mut abs_sum = iv_abs_bound(sum);
                for (ig, chunk) in src_ranges.chunks_exact(LEAF_CH).enumerate() {
                    let leaf = &leafset[ig.min(leafset.len().saturating_sub(1))];
                    for (ic, &r) in chunk.iter().enumerate() {
                        let w = leaf.w1[oc.saturating_mul(LEAF_CH).saturating_add(ic)] as i128;
                        if w == 0 {
                            continue;
                        }
                        let c = iv_mul(w, r);
                        sum = iv_add(sum, c);
                        abs_sum = abs_sum.saturating_add(iv_abs_bound(c));
                    }
                }
                if abs_sum > i64::MAX as i128 {
                    overflow(
                        rpt,
                        format!("1x1 accumulator can reach magnitude {abs_sum} (> i64)"),
                    );
                    return None;
                }
                acc.push(sum);
            }
            let narrow = acc.iter().all(|&a| fits_i32(a));
            finish(
                rpt,
                i,
                ins,
                acc,
                prod1,
                srcs_idx,
                states,
                dst_channels,
                None,
                narrow,
            )
        }
        Opcode::Er => {
            let (w1q, b1q, midq) = (ins.q.w1?, ins.q.b1?, ins.q.mid?);
            let prod3 = (ins.q.w3.frac() as i32).saturating_add(ins.q.src.frac() as i32);
            let prod1 = (w1q.frac() as i32).saturating_add(midq.frac() as i32);
            let b3 = ins.q.b3.frac() as i32;
            let b1 = b1q.frac() as i32;
            // 1x1 biases, summed across leaves.
            let mut acc1: Vec<Iv> = Vec::with_capacity(LEAF_CH);
            for oc in 0..LEAF_CH {
                let mut sum: Iv = (0, 0);
                for leaf in leafset {
                    let v = leaf.b1[oc] as i128;
                    match align_iv((v, v), b1, prod1) {
                        Ok(a) => sum = iv_add(sum, a),
                        Err(e) => {
                            overflow(rpt, format!("ER 1x1 bias: {e}"));
                            return None;
                        }
                    }
                }
                acc1.push(sum);
            }
            let mut abs1: Vec<i128> = acc1.iter().map(|&a| iv_abs_bound(a)).collect();
            let mut er_raw: Option<Iv> = None;
            for leaf in leafset {
                // Per-leaf expansion plane: 3x3 -> ReLU -> mid quantizer.
                let mut mid: Vec<Iv> = Vec::with_capacity(LEAF_CH);
                for oc in 0..LEAF_CH {
                    let v = leaf.b3[oc] as i128;
                    let mut sum = match align_iv((v, v), b3, prod3) {
                        Ok(a) => a,
                        Err(e) => {
                            overflow(rpt, format!("ER 3x3 bias: {e}"));
                            return None;
                        }
                    };
                    let mut abs_sum = iv_abs_bound(sum);
                    for (ic, &r) in src_ranges.iter().take(LEAF_CH).enumerate() {
                        let wbase = oc
                            .saturating_mul(LEAF_CH)
                            .saturating_add(ic)
                            .saturating_mul(9);
                        for k in 0..9 {
                            let w = leaf.w3[wbase.saturating_add(k)] as i128;
                            if w == 0 {
                                continue;
                            }
                            let mut c = iv_mul(w, r);
                            if zero_pad {
                                c = iv_hull(c, (0, 0));
                            }
                            sum = iv_add(sum, c);
                            abs_sum = abs_sum.saturating_add(iv_abs_bound(c));
                        }
                    }
                    if abs_sum > i64::MAX as i128 {
                        overflow(
                            rpt,
                            format!("ER 3x3 accumulator can reach magnitude {abs_sum} (> i64)"),
                        );
                        return None;
                    }
                    er_raw = Some(match er_raw {
                        Some(h) => iv_hull(h, sum),
                        None => sum,
                    });
                    // The internal ReLU feeds the mid quantizer.
                    let (_, stored) = match requant_iv(iv_relu(sum), prod3, midq) {
                        Ok(v) => v,
                        Err(e) => {
                            overflow(rpt, format!("ER mid quantizer: {e}"));
                            return None;
                        }
                    };
                    mid.push(stored);
                }
                // LCONV1x1 reduction of this leaf's mid plane.
                for oc in 0..LEAF_CH {
                    for (ic, &r) in mid.iter().enumerate() {
                        let w = leaf.w1[oc.saturating_mul(LEAF_CH).saturating_add(ic)] as i128;
                        if w == 0 {
                            continue;
                        }
                        let c = iv_mul(w, r);
                        acc1[oc] = iv_add(acc1[oc], c);
                        abs1[oc] = abs1[oc].saturating_add(iv_abs_bound(c));
                    }
                }
            }
            if let Some(&worst) = abs1.iter().max() {
                if worst > i64::MAX as i128 {
                    overflow(
                        rpt,
                        format!("ER 1x1 accumulator can reach magnitude {worst} (> i64)"),
                    );
                    return None;
                }
            }
            let er64 = er_raw.map(|r| (r.0 as i64, r.1 as i64));
            // Narrow license covers both ER conv stages: the per-leaf 3×3
            // expansion accumulators (pre-ReLU) and the 1×1 reduction
            // accumulators after every leaf (pre-srcS).
            let narrow = er_raw.is_some_and(fits_i32) && acc1.iter().all(|&a| fits_i32(a));
            finish(
                rpt,
                i,
                ins,
                acc1,
                prod1,
                srcs_idx,
                states,
                dst_channels,
                er64,
                narrow,
            )
        }
    }
}

/// Shared tail of every opcode's analysis: srcS accumulation, ReLU,
/// requantization with overflow/headroom checks, and the stored
/// destination ranges.
#[allow(clippy::too_many_arguments)]
fn finish(
    rpt: &mut VerifyReport,
    i: usize,
    ins: &Instruction,
    mut acc: Vec<Iv>,
    acc_frac: i32,
    srcs_idx: Option<usize>,
    states: &[Option<PlaneState>],
    dst_channels: usize,
    er_acc3: Option<(i64, i64)>,
    narrow_acc: bool,
) -> Option<(InstrRange, Vec<Iv>)> {
    if let (Some(idx), Some(sq)) = (srcs_idx, ins.q.src_s) {
        let st = states[idx].as_ref()?;
        if st.frac != sq.frac() as i32 {
            rpt.push(
                DiagCode::QFormatMismatch,
                Some(i),
                format!(
                    "srcS stored at Q{} but the instruction declares {sq}",
                    st.frac
                ),
            );
            return None;
        }
        for (c, a) in acc.iter_mut().enumerate() {
            let r = st.ranges.get(c).copied().unwrap_or_else(|| st.hull());
            match align_iv(r, sq.frac() as i32, acc_frac) {
                Ok(al) => *a = iv_add(*a, al),
                Err(e) => {
                    rpt.push(DiagCode::AccOverflow, Some(i), format!("srcS: {e}"));
                    return None;
                }
            }
        }
    }
    // ER never applies the post-activation here (its ReLU lives inside
    // the leaf, before the mid quantizer) — mirroring the executor.
    if ins.relu && ins.opcode != Opcode::Er {
        for a in acc.iter_mut() {
            *a = iv_relu(*a);
        }
    }
    let acc_hull = acc.iter().copied().reduce(iv_hull).unwrap_or((0, 0));
    if !fits_i64(acc_hull) {
        rpt.push(
            DiagCode::AccOverflow,
            Some(i),
            format!(
                "accumulator range [{}, {}] exceeds i64",
                acc_hull.0, acc_hull.1
            ),
        );
        return None;
    }
    let mut stored: Vec<Iv> = Vec::with_capacity(acc.len());
    let mut raw_hull: Option<Iv> = None;
    for &a in &acc {
        match requant_iv(a, acc_frac, ins.q.dst) {
            Ok((raw, clamped)) => {
                raw_hull = Some(match raw_hull {
                    Some(h) => iv_hull(h, raw),
                    None => raw,
                });
                stored.push(clamped);
            }
            Err(e) => {
                rpt.push(DiagCode::AccOverflow, Some(i), e);
                return None;
            }
        }
    }
    // Map the analyzed channel set onto the stored plane's channel count
    // (identical except for degenerate hand-built programs).
    stored.resize(dst_channels, stored.last().copied().unwrap_or((0, 0)));
    let dst_hull = stored.iter().copied().reduce(iv_hull).unwrap_or((0, 0));

    // No-op requantization lint: the accumulator already sits at the
    // destination's fractional position and its proven range never
    // clamps, so the rescale-round-clamp stage is a bit-exact copy.
    if let Some(raw) = raw_hull {
        let (lo, hi) = (ins.q.dst.min_code() as i128, ins.q.dst.max_code() as i128);
        let never_clamps = raw.0 >= lo && raw.1 <= hi;
        if acc_frac == ins.q.dst.frac() as i32 && never_clamps {
            rpt.push(
                DiagCode::RedundantRequant,
                Some(i),
                format!(
                    "requantization to {} is a no-op: accumulator already at Q{acc_frac} \
                     with range [{}, {}] inside the format",
                    ins.q.dst, raw.0, raw.1
                ),
            );
        }
    }
    Some((
        InstrRange {
            acc: (acc_hull.0 as i64, acc_hull.1 as i64),
            er_acc3,
            dst: (dst_hull.0 as i64, dst_hull.1 as i64),
            narrow_acc,
        },
        stored,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::params::QuantizedModel;
    use ecnn_model::ernet::{ErNetSpec, ErNetTask};

    fn verify_task(task: ErNetTask, b: usize, r: usize, n: usize, side: usize) -> VerifyReport {
        let m = ErNetSpec::new(task, b, r, n).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, side).unwrap();
        verify_compiled(&c)
    }

    #[test]
    fn paper_programs_verify_clean() {
        for (task, b, r, n) in [
            (ErNetTask::Dn, 3, 1, 0),
            (ErNetTask::Sr2, 2, 2, 1),
            (ErNetTask::Sr4, 1, 2, 1),
            (ErNetTask::Dn12, 2, 1, 0),
        ] {
            let rpt = verify_task(task, b, r, n, 64);
            assert!(rpt.is_clean(), "{task:?} b={b} r={r} n={n}:\n{rpt}");
        }
    }

    #[test]
    fn report_ranges_cover_every_instruction() {
        let rpt = verify_task(ErNetTask::Dn, 3, 1, 0, 64);
        assert!(rpt.ranges.iter().all(Option::is_some));
        assert!(!rpt.planes.is_empty());
        assert!(rpt.passes(VerifyMode::Strict));
    }
}
