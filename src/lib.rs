//! Umbrella crate for the eCNN reproduction workspace.
//!
//! Re-exports the public API of every member crate so that examples and
//! integration tests can depend on a single package, plus a [`prelude`]
//! with the handful of types most programs need. See [`ecnn_core`] for
//! the high-level entry points.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
pub use ecnn_baselines as baselines;
pub use ecnn_core as core;
pub use ecnn_dram as dram;
pub use ecnn_isa as isa;
pub use ecnn_model as model;
pub use ecnn_nn as nn;
pub use ecnn_sim as sim;
pub use ecnn_tensor as tensor;

/// The common surface: one `use ecnn_repro::prelude::*;` covers building
/// an engine, streaming frames and comparing backends.
pub mod prelude {
    pub use ecnn_baselines::registry;
    pub use ecnn_core::config::{EngineConfig, EnvOverrides};
    pub use ecnn_core::engine::{
        Backend, EcnnBackend, Engine, EngineBuilder, EngineError, FrameReport, Session, Workload,
    };
    pub use ecnn_core::pipe::{AsyncSession, FramePoll, FrameTicket};
    pub use ecnn_core::sharded::ShardedBackend;
    pub use ecnn_core::tune::{TuneOptions, TuneReport, TuneSpace, TuningRecord};
    pub use ecnn_core::SystemReport;
    pub use ecnn_isa::params::QuantizedModel;
    pub use ecnn_isa::verify::{VerifyMode, VerifyReport};
    pub use ecnn_model::ernet::{ErNetSpec, ErNetTask};
    pub use ecnn_model::RealTimeSpec;
}
