//! Procedural images, degradation operators and quality metrics.
//!
//! The paper trains and validates on DIV2K, Waterloo Exploration, Set5/Set14,
//! BSD100/CBSD68 and Urban100. Those datasets are unavailable offline, so this
//! module synthesizes deterministic multi-octave textures with edges and
//! gradients — content that, like natural images, mixes smooth regions with
//! high-frequency detail, which is what super-resolution and denoising models
//! must trade off. See DESIGN.md §4 for the substitution rationale.

use crate::tensor::Tensor;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Families of procedural content, roughly ordered by high-frequency energy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ImageKind {
    /// Smooth multi-octave value noise (cloud-like).
    Smooth,
    /// Band-limited texture with mid-frequency detail.
    Texture,
    /// Hard geometric edges (bars, boxes) — stressing ringing/blocking.
    Edges,
    /// A composite of all of the above, the default training diet.
    Mixed,
}

/// Deterministic procedural image generator.
///
/// # Example
///
/// ```
/// use ecnn_tensor::{ImageKind, SyntheticImage};
/// let img = SyntheticImage::new(ImageKind::Mixed, 7).rgb(32, 32);
/// assert_eq!(img.shape(), (3, 32, 32));
/// // All samples are in [0, 1].
/// assert!(img.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
/// ```
#[derive(Clone, Debug)]
pub struct SyntheticImage {
    kind: ImageKind,
    seed: u64,
}

impl SyntheticImage {
    /// Creates a generator for the given content family and seed.
    pub fn new(kind: ImageKind, seed: u64) -> Self {
        Self { kind, seed }
    }

    /// Renders a 3-channel RGB image in `[0, 1]`.
    pub fn rgb(&self, height: usize, width: usize) -> Tensor<f32> {
        let mut t = Tensor::zeros(3, height, width);
        for c in 0..3 {
            let chan_seed = self
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(c as u64);
            for y in 0..height {
                for x in 0..width {
                    let v = match self.kind {
                        ImageKind::Smooth => {
                            self.value_noise(chan_seed, x, y, &[16.0, 8.0], &[0.7, 0.3])
                        }
                        ImageKind::Texture => {
                            self.value_noise(chan_seed, x, y, &[16.0, 6.0, 3.0], &[0.45, 0.35, 0.2])
                        }
                        ImageKind::Edges => self.edges(chan_seed, x, y),
                        ImageKind::Mixed => {
                            let a = self.value_noise(
                                chan_seed,
                                x,
                                y,
                                &[16.0, 6.0, 3.0],
                                &[0.5, 0.3, 0.2],
                            );
                            let b = self.edges(chan_seed ^ 0xABCD, x, y);
                            let m = self.value_noise(chan_seed ^ 0x5555, x, y, &[24.0], &[1.0]);
                            a * m + b * (1.0 - m)
                        }
                    };
                    *t.at_mut(c, y, x) = v.clamp(0.0, 1.0);
                }
            }
        }
        t
    }

    /// Renders a single-channel (luma) image in `[0, 1]`.
    pub fn luma(&self, height: usize, width: usize) -> Tensor<f32> {
        let rgb = self.rgb(height, width);
        Tensor::from_fn(1, height, width, |_, y, x| {
            0.299 * rgb.at(0, y, x) + 0.587 * rgb.at(1, y, x) + 0.114 * rgb.at(2, y, x)
        })
    }

    fn value_noise(&self, seed: u64, x: usize, y: usize, scales: &[f32], weights: &[f32]) -> f32 {
        let mut v = 0.0;
        for (i, (&s, &w)) in scales.iter().zip(weights).enumerate() {
            let fx = x as f32 / s;
            let fy = y as f32 / s;
            let x0 = fx.floor() as i64;
            let y0 = fy.floor() as i64;
            let tx = smoothstep(fx - x0 as f32);
            let ty = smoothstep(fy - y0 as f32);
            let oct_seed = seed.wrapping_add((i as u64) << 32);
            let v00 = lattice(oct_seed, x0, y0);
            let v10 = lattice(oct_seed, x0 + 1, y0);
            let v01 = lattice(oct_seed, x0, y0 + 1);
            let v11 = lattice(oct_seed, x0 + 1, y0 + 1);
            let a = v00 + (v10 - v00) * tx;
            let b = v01 + (v11 - v01) * tx;
            v += w * (a + (b - a) * ty);
        }
        v
    }

    fn edges(&self, seed: u64, x: usize, y: usize) -> f32 {
        // Deterministic arrangement of bars and rectangles.
        let bar_period = 7 + (seed % 5) as usize;
        let vertical = ((x / bar_period) % 2) as f32;
        let horizontal = ((y / (bar_period + 3)) % 2) as f32;
        let box_on = {
            let bx = x / 24;
            let by = y / 24;
            (lattice(seed ^ 0xB0B0, bx as i64, by as i64) > 0.5) as u8 as f32
        };
        0.15 + 0.5 * (vertical * 0.6 + horizontal * 0.4) + 0.25 * box_on
    }
}

#[inline]
fn smoothstep(t: f32) -> f32 {
    t * t * (3.0 - 2.0 * t)
}

/// Hash a lattice point to a deterministic value in `[0, 1)`.
#[inline]
fn lattice(seed: u64, x: i64, y: i64) -> f32 {
    let mut h = seed
        ^ (x as u64).wrapping_mul(0x517C_C1B7_2722_0A95)
        ^ (y as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    (h >> 40) as f32 / (1u64 << 24) as f32
}

/// Adds i.i.d. Gaussian noise with standard deviation `sigma` (in the same
/// scale as the image — pass `25.0 / 255.0` for the paper's σ=25 setting).
pub fn add_gaussian_noise(image: &Tensor<f32>, sigma: f32, rng: &mut StdRng) -> Tensor<f32> {
    image.map(|v| (v + sigma * gaussian(rng)).clamp(0.0, 1.0))
}

fn gaussian(rng: &mut StdRng) -> f32 {
    // Box–Muller transform; avoids needing rand_distr offline.
    loop {
        let u1: f32 = rng.gen();
        if u1 > 1e-12 {
            let u2: f32 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        }
    }
}

/// Box-filter downsampling by an integer factor `s` (the SR degradation
/// operator; the paper uses bicubic but box preserves the same
/// information-loss structure for synthetic content).
///
/// # Panics
///
/// Panics if the spatial dimensions are not divisible by `s`.
pub fn downsample_box(image: &Tensor<f32>, s: usize) -> Tensor<f32> {
    let (c, h, w) = image.shape();
    assert!(
        s > 0 && h % s == 0 && w % s == 0,
        "size not divisible by {s}"
    );
    let inv = 1.0 / (s * s) as f32;
    Tensor::from_fn(c, h / s, w / s, |ch, y, x| {
        let mut acc = 0.0;
        for dy in 0..s {
            for dx in 0..s {
                acc += image.at(ch, y * s + dy, x * s + dx);
            }
        }
        acc * inv
    })
}

/// Nearest-neighbour upsampling by factor `s` (the trivial SR baseline).
pub fn upsample_nearest(image: &Tensor<f32>, s: usize) -> Tensor<f32> {
    let (c, h, w) = image.shape();
    Tensor::from_fn(c, h * s, w * s, |ch, y, x| image.at(ch, y / s, x / s))
}

/// Bilinear upsampling by factor `s` (a stronger non-learned SR baseline).
pub fn upsample_bilinear(image: &Tensor<f32>, s: usize) -> Tensor<f32> {
    let (c, h, w) = image.shape();
    let (oh, ow) = (h * s, w * s);
    Tensor::from_fn(c, oh, ow, |ch, y, x| {
        let fy = (y as f32 + 0.5) / s as f32 - 0.5;
        let fx = (x as f32 + 0.5) / s as f32 - 0.5;
        let y0 = fy.floor().max(0.0) as usize;
        let x0 = fx.floor().max(0.0) as usize;
        let y1 = (y0 + 1).min(h - 1);
        let x1 = (x0 + 1).min(w - 1);
        let ty = (fy - y0 as f32).clamp(0.0, 1.0);
        let tx = (fx - x0 as f32).clamp(0.0, 1.0);
        let a = image.at(ch, y0, x0) * (1.0 - tx) + image.at(ch, y0, x1) * tx;
        let b = image.at(ch, y1, x0) * (1.0 - tx) + image.at(ch, y1, x1) * tx;
        a * (1.0 - ty) + b * ty
    })
}

/// Peak signal-to-noise ratio in dB between two same-shaped images with the
/// given peak value (1.0 for `[0,1]` images).
///
/// Returns `f64::INFINITY` for identical images.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn psnr(a: &Tensor<f32>, b: &Tensor<f32>, peak: f32) -> f64 {
    assert_eq!(a.shape(), b.shape(), "psnr shape mismatch");
    let mse = a.sub(b).mean_sq();
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * ((peak as f64) * (peak as f64) / mse).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = SyntheticImage::new(ImageKind::Mixed, 3).rgb(16, 16);
        let b = SyntheticImage::new(ImageKind::Mixed, 3).rgb(16, 16);
        assert_eq!(a, b);
        let c = SyntheticImage::new(ImageKind::Mixed, 4).rgb(16, 16);
        assert_ne!(a, c);
    }

    #[test]
    fn all_kinds_produce_in_range_pixels() {
        for kind in [
            ImageKind::Smooth,
            ImageKind::Texture,
            ImageKind::Edges,
            ImageKind::Mixed,
        ] {
            let img = SyntheticImage::new(kind, 11).rgb(24, 20);
            assert_eq!(img.shape(), (3, 24, 20));
            assert!(
                img.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn images_have_nontrivial_content() {
        for kind in [
            ImageKind::Smooth,
            ImageKind::Texture,
            ImageKind::Edges,
            ImageKind::Mixed,
        ] {
            let img = SyntheticImage::new(kind, 5).rgb(32, 32);
            let mean = img.as_slice().iter().sum::<f32>() / img.len() as f32;
            let var = img
                .as_slice()
                .iter()
                .map(|v| (v - mean).powi(2))
                .sum::<f32>()
                / img.len() as f32;
            assert!(var > 1e-4, "{kind:?} is flat (var={var})");
        }
    }

    #[test]
    fn luma_matches_rgb_weights() {
        let g = SyntheticImage::new(ImageKind::Texture, 2);
        let rgb = g.rgb(8, 8);
        let l = g.luma(8, 8);
        let want = 0.299 * rgb.at(0, 3, 4) + 0.587 * rgb.at(1, 3, 4) + 0.114 * rgb.at(2, 3, 4);
        assert!((l.at(0, 3, 4) - want).abs() < 1e-6);
    }

    #[test]
    fn noise_changes_image_by_sigma() {
        let img = SyntheticImage::new(ImageKind::Smooth, 1).rgb(64, 64);
        let mut rng = StdRng::seed_from_u64(9);
        let noisy = add_gaussian_noise(&img, 25.0 / 255.0, &mut rng);
        let p = psnr(&img, &noisy, 1.0);
        // σ=25/255 → PSNR ≈ 20.17 dB on unclipped data; clipping raises it a bit.
        assert!(p > 19.0 && p < 23.0, "psnr {p}");
    }

    #[test]
    fn downsample_box_averages() {
        let img = Tensor::from_fn(1, 4, 4, |_, y, x| (y * 4 + x) as f32);
        let d = downsample_box(&img, 2);
        assert_eq!(d.shape(), (1, 2, 2));
        assert_eq!(d.at(0, 0, 0), (0.0 + 1.0 + 4.0 + 5.0) / 4.0);
        assert_eq!(d.at(0, 1, 1), (10.0 + 11.0 + 14.0 + 15.0) / 4.0);
    }

    #[test]
    fn upsample_round_trip_preserves_means() {
        let img = SyntheticImage::new(ImageKind::Smooth, 8).rgb(16, 16);
        let up = upsample_nearest(&img, 2);
        assert_eq!(up.shape(), (3, 32, 32));
        let down = downsample_box(&up, 2);
        for (a, b) in down.as_slice().iter().zip(img.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn bilinear_beats_nearest_on_smooth_content() {
        let hr = SyntheticImage::new(ImageKind::Smooth, 21).rgb(64, 64);
        let lr = downsample_box(&hr, 2);
        let near = upsample_nearest(&lr, 2);
        let bil = upsample_bilinear(&lr, 2);
        assert!(psnr(&hr, &bil, 1.0) > psnr(&hr, &near, 1.0));
    }

    #[test]
    fn psnr_known_value() {
        let a = Tensor::from_fn(1, 2, 2, |_, _, _| 0.5);
        let mut b = a.clone();
        *b.at_mut(0, 0, 0) = 0.6; // mse = 0.01/4
        let p = psnr(&a, &b, 1.0);
        assert!((p - 10.0 * (1.0 / 0.0025f64).log10()).abs() < 1e-4);
        assert!(psnr(&a, &a, 1.0).is_infinite());
    }
}
