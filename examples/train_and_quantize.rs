//! The paper's full model-optimization pipeline on a denoiser: scan
//! candidates under a compute budget, polish the best, quantize with L1
//! Q-format search, fine-tune, and verify the deployed model bit-exactly.
//!
//! ```sh
//! cargo run --release --example train_and_quantize
//! ```

use ecnn_repro::core::Engine;
use ecnn_repro::model::ernet::ErNetTask;
use ecnn_repro::model::RealTimeSpec;
use ecnn_repro::nn::data::TaskKind;
use ecnn_repro::nn::pipeline::{pick_best, polish, quantize_stage, scan_stage};
use ecnn_repro::nn::quant::QuantConfig;
use ecnn_repro::nn::schedule::repro_stages;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stages = repro_stages(2);
    let budget = RealTimeSpec::UHD30.kop_budget(40.96);

    println!("— stage 1: scan (budget {budget:.0} KOP/px) —");
    let scored = scan_stage(
        ErNetTask::Dn,
        TaskKind::denoise25(),
        budget,
        128.0,
        4,
        1,
        &stages[0],
        42,
    );
    for s in &scored {
        println!(
            "  {}: RE={:.2} NCR={:.2} intrinsic={:.0} KOP/px -> {:.2} dB",
            s.candidate.spec, s.candidate.re, s.candidate.ncr, s.candidate.intrinsic_kop, s.psnr
        );
    }
    let best = pick_best(&scored)
        .expect("scan found candidates")
        .candidate
        .spec;
    println!("picked {best}");

    println!("— stage 2: polish —");
    let (mut fm, float_psnr) = polish(best, TaskKind::denoise25(), &stages[1], 42);
    println!("  float PSNR {float_psnr:.2} dB");

    println!("— stage 3: quantize + fine-tune —");
    let (qm, fixed_psnr) = quantize_stage(
        &mut fm,
        best,
        TaskKind::denoise25(),
        &stages[2],
        QuantConfig::default(),
        42,
    );
    println!(
        "  8-bit PSNR {fixed_psnr:.2} dB (drop {:.2} dB)",
        float_psnr - fixed_psnr
    );

    let dep = Engine::builder()
        .quantized(qm)
        .block(128)
        .realtime(RealTimeSpec::UHD30)
        .build()?;
    println!("{}", dep.system_report());
    Ok(())
}
