//! One workload, every flow: run the paper's UHD30 denoiser and x4
//! super-resolver through every registered backend — the eCNN simulator,
//! its x2/x4 sharded variants and the four comparison baselines — and
//! print one shared table.
//!
//! ```sh
//! cargo run --release --example compare_backends
//! ```

use ecnn_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (label, spec) in [
        (
            "DnERNet-B3R1N0 (denoise)",
            ErNetSpec::new(ErNetTask::Dn, 3, 1, 0),
        ),
        (
            "SR4ERNet-B17R3N1 (x4 SR)",
            ErNetSpec::new(ErNetTask::Sr4, 17, 3, 1),
        ),
    ] {
        let workload = Workload::ernet(spec, 128, RealTimeSpec::UHD30)?;
        println!("\n=== {label} @ {} ===", workload.spec);
        let mut reports = Vec::new();
        for backend in registry() {
            reports.push(backend.frame_report(&workload)?);
        }
        println!("{}", FrameReport::table(&reports));
    }
    println!(
        "\n(block-based eCNN holds DRAM traffic near the output-image stream \
         while frame-based flows move every intermediate feature map; \
         fusion avoids the traffic but pays depth-linear SRAM.)"
    );
    Ok(())
}
