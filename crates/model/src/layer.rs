//! Layer operations of the FBISA-supported model IR.
//!
//! The IR is a linear chain of [`Layer`]s; skip connections are expressed as
//! references to earlier layer outputs ([`SkipRef`]), which matches FBISA's
//! supplementary source operand (`srcS`) used for residual accumulation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Pointwise activation applied after a convolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// No activation (linear output layers, reduction layers).
    None,
    /// Rectified linear unit.
    Relu,
}

impl Activation {
    /// Applies the activation to a floating-point value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::None => x,
            Activation::Relu => x.max(0.0),
        }
    }
}

/// Spatial downsampling flavour (FBISA's `DNX2` post-processing options).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Strided sub-sampling (keep the top-left pixel of each window).
    Stride,
    /// Max-pooling over the window.
    Max,
}

/// One operation in the model chain.
///
/// Channel counts are *logical* (e.g. 3 for RGB I/O); the hardware rounds
/// them up to multiples of the 32-channel leaf-module width — see
/// [`crate::complexity::ChannelMode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// 3×3 convolution. Shrinks each spatial side by 2 under the
    /// truncated-pyramid (valid) inference type.
    Conv3x3 {
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Post-conv activation.
        act: Activation,
    },
    /// 1×1 convolution (no spatial footprint).
    Conv1x1 {
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Post-conv activation.
        act: Activation,
    },
    /// ERModule (paper Fig. 6a): CONV3×3 expanding `channels → expansion ×
    /// channels` with ReLU, CONV1×1 reducing back, plus an internal residual
    /// connection from the module input. Executes as one `ER` instruction.
    ErModule {
        /// Module width (32 for all paper models).
        channels: usize,
        /// Integer expansion ratio `Rm ≥ 1`.
        expansion: usize,
    },
    /// Depth-to-space ×`factor` (sub-pixel upsampler):
    /// `C → C/factor²`, spatial ×`factor`.
    PixelShuffle {
        /// Upsampling factor (2 in all paper models).
        factor: usize,
    },
    /// Space-to-depth ×`factor` (DnERNet-12ch input packing):
    /// `C → C·factor²`, spatial ÷`factor`.
    PixelUnshuffle {
        /// Downsampling factor.
        factor: usize,
    },
    /// Spatial downsampling by `factor` (FBISA `DNX2` with stride or max
    /// pooling). Channels unchanged.
    Downsample {
        /// Pooling flavour.
        kind: PoolKind,
        /// Downsampling factor (2 in all paper models).
        factor: usize,
    },
}

impl Op {
    /// Input channel count, or `None` for channel-agnostic ops.
    pub fn in_channels(&self) -> Option<usize> {
        match *self {
            Op::Conv3x3 { in_c, .. } | Op::Conv1x1 { in_c, .. } => Some(in_c),
            Op::ErModule { channels, .. } => Some(channels),
            _ => None,
        }
    }

    /// Output channel count given `in_c` input channels.
    ///
    /// # Panics
    ///
    /// Panics if a shuffle factor does not divide the channel count.
    pub fn out_channels(&self, in_c: usize) -> usize {
        match *self {
            Op::Conv3x3 { out_c, .. } | Op::Conv1x1 { out_c, .. } => out_c,
            Op::ErModule { channels, .. } => channels,
            Op::PixelShuffle { factor } => {
                assert!(
                    in_c.is_multiple_of(factor * factor),
                    "shuffle factor mismatch"
                );
                in_c / (factor * factor)
            }
            Op::PixelUnshuffle { factor } => in_c * factor * factor,
            Op::Downsample { .. } => in_c,
        }
    }

    /// Multiplicative effect on spatial resolution as an exact rational
    /// `(numerator, denominator)` — the single source of scale truth;
    /// [`Op::scale_factor`] and the model-level walks derive from it.
    /// Exhaustive over every variant so a future scale-changing op
    /// cannot silently diverge between the float and integer geometry
    /// paths.
    pub fn scale_rational(&self) -> (usize, usize) {
        match *self {
            Op::Conv3x3 { .. } | Op::Conv1x1 { .. } | Op::ErModule { .. } => (1, 1),
            Op::PixelShuffle { factor } => (factor, 1),
            Op::PixelUnshuffle { factor } | Op::Downsample { factor, .. } => (1, factor),
        }
    }

    /// Multiplicative effect on spatial resolution (2.0 for ×2 upsampling,
    /// 0.5 for ×2 downsampling, 1.0 otherwise).
    pub fn scale_factor(&self) -> f64 {
        let (num, den) = self.scale_rational();
        num as f64 / den as f64
    }

    /// Number of CONV3×3 stages inside this op (drives the receptive-field
    /// growth of the truncated pyramid).
    pub fn conv3x3_count(&self) -> usize {
        match *self {
            Op::Conv3x3 { .. } | Op::ErModule { .. } => 1,
            _ => 0,
        }
    }

    /// True for ops that carry trainable parameters.
    pub fn has_params(&self) -> bool {
        matches!(
            self,
            Op::Conv3x3 { .. } | Op::Conv1x1 { .. } | Op::ErModule { .. }
        )
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::Conv3x3 { in_c, out_c, act } => {
                write!(f, "CONV3x3 {in_c}->{out_c}")?;
                if act == Activation::Relu {
                    write!(f, " +ReLU")?;
                }
                Ok(())
            }
            Op::Conv1x1 { in_c, out_c, act } => {
                write!(f, "CONV1x1 {in_c}->{out_c}")?;
                if act == Activation::Relu {
                    write!(f, " +ReLU")?;
                }
                Ok(())
            }
            Op::ErModule {
                channels,
                expansion,
            } => {
                write!(f, "ERModule {channels}ch x{expansion}")
            }
            Op::PixelShuffle { factor } => write!(f, "PixelShuffle x{factor}"),
            Op::PixelUnshuffle { factor } => write!(f, "PixelUnshuffle x{factor}"),
            Op::Downsample { kind, factor } => write!(f, "Downsample {kind:?} x{factor}"),
        }
    }
}

/// A skip-connection source: the tensor added to this layer's output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SkipRef {
    /// The model input (after any channel padding).
    Input,
    /// The output of an earlier layer (0-based index into the chain).
    Layer(usize),
}

/// One element of the model chain: an operation plus an optional residual.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layer {
    /// The operation.
    pub op: Op,
    /// Residual source added to the output (`srcS` in FBISA), if any.
    pub skip: Option<SkipRef>,
}

impl Layer {
    /// A layer without a residual connection.
    pub fn new(op: Op) -> Self {
        Self { op, skip: None }
    }

    /// A layer whose output accumulates the referenced earlier tensor.
    pub fn with_skip(op: Op, skip: SkipRef) -> Self {
        Self {
            op,
            skip: Some(skip),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_channels_follow_op_semantics() {
        assert_eq!(
            Op::Conv3x3 {
                in_c: 32,
                out_c: 128,
                act: Activation::None
            }
            .out_channels(32),
            128
        );
        assert_eq!(
            Op::ErModule {
                channels: 32,
                expansion: 4
            }
            .out_channels(32),
            32
        );
        assert_eq!(Op::PixelShuffle { factor: 2 }.out_channels(128), 32);
        assert_eq!(Op::PixelUnshuffle { factor: 2 }.out_channels(3), 12);
        assert_eq!(
            Op::Downsample {
                kind: PoolKind::Max,
                factor: 2
            }
            .out_channels(64),
            64
        );
    }

    #[test]
    #[should_panic]
    fn shuffle_requires_divisible_channels() {
        let _ = Op::PixelShuffle { factor: 2 }.out_channels(30);
    }

    #[test]
    fn scale_factors() {
        assert_eq!(Op::PixelShuffle { factor: 2 }.scale_factor(), 2.0);
        assert_eq!(Op::PixelUnshuffle { factor: 2 }.scale_factor(), 0.5);
        assert_eq!(
            Op::Downsample {
                kind: PoolKind::Stride,
                factor: 2
            }
            .scale_factor(),
            0.5
        );
        assert_eq!(
            Op::Conv3x3 {
                in_c: 3,
                out_c: 3,
                act: Activation::None
            }
            .scale_factor(),
            1.0
        );
    }

    #[test]
    fn conv3x3_count_includes_ermodule() {
        assert_eq!(
            Op::ErModule {
                channels: 32,
                expansion: 1
            }
            .conv3x3_count(),
            1
        );
        assert_eq!(
            Op::Conv1x1 {
                in_c: 32,
                out_c: 32,
                act: Activation::None
            }
            .conv3x3_count(),
            0
        );
    }

    #[test]
    fn activation_apply() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::None.apply(-2.0), -2.0);
    }

    #[test]
    fn display_is_informative() {
        let s = Op::ErModule {
            channels: 32,
            expansion: 3,
        }
        .to_string();
        assert!(s.contains("ERModule"));
        assert!(s.contains("x3"));
    }
}
