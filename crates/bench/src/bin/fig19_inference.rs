//! Fig. 19: inference time (left) and NCR (right) for every polished ERNet,
//! evaluated through the unified `Engine` API.

use ecnn_bench::{engine_for, model_matrix, section};

fn main() {
    section("Fig. 19: inference time and NCR per (model, spec)");
    println!(
        "{:<24} {:>6} {:>10} {:>8} {:>6} {:>6}",
        "model", "spec", "ms/frame", "fps", "NCR", "RT?"
    );
    for (rt, spec, xi) in model_matrix() {
        let r = engine_for(spec, xi, rt).system_report();
        println!(
            "{:<24} {:>6} {:>10.2} {:>8.1} {:>6.2} {:>6}",
            spec.name(),
            rt.name,
            r.frame.seconds_per_frame * 1e3,
            r.frame.fps,
            r.frame.ncr,
            if r.meets_realtime { "yes" } else { "NO" }
        );
    }
    println!("(paper: every pick meets its spec; NCR grows with depth/spec)");
}
