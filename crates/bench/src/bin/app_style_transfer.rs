//! Section 7.3: the style-transfer case study — two sub-models, Full HD
//! frame rate and DRAM traffic including the inter-sub-model exchange.

use ecnn_bench::section;
use ecnn_isa::compile::compile;
use ecnn_isa::params::QuantizedModel;
use ecnn_model::zoo;
use ecnn_sim::timing::simulate_frame;
use ecnn_sim::EcnnConfig;

fn main() {
    section("Section 7.3: style transfer on eCNN (Fig. 22a)");
    let (enc, dec) = zoo::style_transfer();
    let cfg = EcnnConfig::paper();
    let ce = compile(&QuantizedModel::uniform(&enc), 256).expect("encoder compiles");
    let cd = compile(&QuantizedModel::uniform(&dec), ce.program.do_side).expect("decoder compiles");
    println!(
        "encoder: {} instructions, {} leafs; decoder: {} instructions, {} leafs",
        ce.program.instructions.len(),
        ce.program.total_leaf_modules(),
        cd.program.instructions.len(),
        cd.program.total_leaf_modules()
    );
    let fe = simulate_frame(&ce, &enc, &cfg, 1920 / 4, 1080 / 4);
    let fd = simulate_frame(&cd, &dec, &cfg, 1920, 1080);
    let secs = fe.seconds_per_frame + fd.seconds_per_frame;
    let fps = 1.0 / secs;
    let bytes = fe.di_bytes_per_frame
        + fe.do_bytes_per_frame
        + fd.di_bytes_per_frame
        + fd.do_bytes_per_frame;
    println!("Full HD: {fps:.1} fps (paper: 29.5 fps; Titan X GPU: 512x512 @ 20 fps)");
    println!(
        "DRAM: {:.2} GB/s at that rate (paper: 1.91 GB/s)",
        bytes as f64 * fps / 1e9
    );
}
