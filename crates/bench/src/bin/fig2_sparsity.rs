//! Fig. 2: quality degradation from sparsity techniques on imaging models.
//! (a) magnitude pruning of a trained denoiser; (b) depthwise convolution in
//! EDSR-baseline residual blocks. Training budgets scale with
//! `ECNN_BENCH_SCALE`.

use ecnn_bench::{bench_scale, section};
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_model::zoo;
use ecnn_nn::data::{make_dataset, TaskKind};
use ecnn_nn::float_model::FloatModel;
use ecnn_nn::prune::{magnitude_prune, sparsity};
use ecnn_nn::train::{eval_psnr, train, TrainConfig};

fn main() {
    let scale = bench_scale();
    let cfg = TrainConfig {
        steps: 250 * scale,
        batch: 4,
        lr: 2e-3,
        seed: 1,
        threads: 2,
    };
    let ft = TrainConfig {
        steps: 60 * scale,
        batch: 4,
        lr: 5e-4,
        seed: 2,
        threads: 2,
    };

    section("Fig. 2(a): weight pruning on a DnERNet denoiser");
    // A scaled-down stand-in for DnERNet-B16R1N0 (B=4 keeps CPU cost sane).
    let ir = ErNetSpec::new(ErNetTask::Dn, 4, 1, 0).build().unwrap();
    let data = make_dataset(TaskKind::denoise25(), 12, 24, 3);
    let val = make_dataset(TaskKind::denoise25(), 4, 24, 9001);
    let mut dense = FloatModel::from_model(&ir, 4);
    train(&mut dense, &data, cfg);
    let dense_psnr = eval_psnr(&dense, &val);
    println!("dense: {dense_psnr:.2} dB");
    for frac in [0.25, 0.50, 0.75] {
        let mut pruned = dense.clone();
        magnitude_prune(&mut pruned, frac);
        train(&mut pruned, &data, ft); // fine-tune with the mask
        let p = eval_psnr(&pruned, &val);
        println!(
            "pruned {:>2.0}% (sparsity {:.2}): {p:.2} dB (drop {:+.2} dB)",
            frac * 100.0,
            sparsity(&pruned),
            p - dense_psnr
        );
    }
    println!("(paper: 75% pruning drops 0.2-0.4 dB of the gain and can go negative)");

    section("Fig. 2(b): depthwise residual blocks in EDSR-baseline (SR x2)");
    let sr_data = make_dataset(TaskKind::Sr { scale: 2 }, 10, 24, 5);
    let sr_val = make_dataset(TaskKind::Sr { scale: 2 }, 4, 24, 9002);
    // The 16-block EDSR bodies are heavy on CPU: shorter budget here.
    let sr_cfg = TrainConfig {
        steps: 80 * scale,
        batch: 2,
        lr: 1e-4,
        seed: 3,
        threads: 2,
    };
    let mut full = FloatModel::from_model(&zoo::edsr_baseline(2), 6);
    train(&mut full, &sr_data, sr_cfg);
    let full_psnr = eval_psnr(&full, &sr_val);
    let mut dw = FloatModel::edsr_depthwise(2, 6);
    train(&mut dw, &sr_data, sr_cfg);
    let dw_psnr = eval_psnr(&dw, &sr_val);
    println!(
        "EDSR-baseline : {full_psnr:.2} dB ({} params)",
        full.param_count()
    );
    println!(
        "depthwise     : {dw_psnr:.2} dB ({} params, {:+.2} dB)",
        dw.param_count(),
        dw_psnr - full_psnr
    );
    println!("(paper: 52-75% complexity saved but 0.3-1.2 dB quality drop)");
}
