//! Baseline inference flows and comparison accelerators, exposed as
//! engine [`Backend`]s so that eCNN and every baseline run the same
//! [`Workload`](ecnn_core::engine::Workload) through one API.
//!
//! * [`framebased`] — the conventional layer-by-layer flow whose feature
//!   traffic Eq. (1) quantifies (the Section 2 motivation).
//! * [`fusion`] — the fused-layer line-buffer alternative (Alwani et al.):
//!   SRAM grows linearly with depth × width × channels.
//! * [`tpu`] — a SCALE-Sim-style output-stationary systolic-array model in
//!   the classical TPU configuration (Section 7.2's comparison).
//! * [`diffy`] — Diffy's activation-difference bit-sparsity compression
//!   applied to the frame-based flow, plus the published IDEAL/Diffy
//!   operating points used in Table 7.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
pub mod diffy;
pub mod framebased;
pub mod fusion;
pub mod tpu;

use ecnn_core::engine::{Backend, EcnnBackend};
use ecnn_core::sharded::ShardedBackend;

pub use diffy::DiffyBackend;
pub use framebased::{frame_based_feature_bandwidth, FrameBasedBackend};
pub use fusion::{fused_line_buffer_bytes, FusionBackend};
pub use tpu::{TpuBackend, TpuConfig, TpuReport};

/// Every registered backend in paper order: the eCNN simulator first
/// (plus its 2- and 4-way sharded multi-accelerator variants), then the
/// four comparison flows, all in their default (paper) configurations.
pub fn registry() -> Vec<Box<dyn Backend>> {
    vec![
        Box::new(EcnnBackend::paper()),
        Box::new(ShardedBackend::new(EcnnBackend::paper(), 2)),
        Box::new(ShardedBackend::new(EcnnBackend::paper(), 4)),
        Box::new(FrameBasedBackend::default()),
        Box::new(FusionBackend::default()),
        Box::new(TpuBackend::classic()),
        Box::new(DiffyBackend::calibrated()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnn_core::engine::Workload;
    use ecnn_model::ernet::{ErNetSpec, ErNetTask};
    use ecnn_model::RealTimeSpec;

    #[test]
    fn registry_covers_all_flows() {
        let backends = registry();
        let names: Vec<_> = backends.iter().map(|b| b.name().to_string()).collect();
        assert_eq!(
            names,
            [
                "ecnn",
                "ecnn[x2]",
                "ecnn[x4]",
                "frame-based",
                "fused-layer",
                "tpu",
                "diffy"
            ]
        );
    }

    #[test]
    fn every_backend_reports_the_same_workload() {
        let w = Workload::ernet(
            ErNetSpec::new(ErNetTask::Dn, 3, 1, 0),
            128,
            RealTimeSpec::HD30,
        )
        .unwrap();
        for backend in registry() {
            let r = backend
                .frame_report(&w)
                .unwrap_or_else(|e| panic!("{}: {e}", backend.name()));
            assert_eq!(r.backend, backend.name());
            assert!(r.fps > 0.0, "{}: fps {}", backend.name(), r.fps);
            assert!(r.dram_bytes_per_frame > 0.0, "{}", backend.name());
            // Only the bit-exact eCNN flow (and its sharded variants)
            // runs real images.
            assert_eq!(
                backend.supports_run_image(),
                backend.name().starts_with("ecnn")
            );
        }
    }

    #[test]
    fn block_flow_moves_orders_of_magnitude_less_traffic() {
        // The paper's core claim, through the unified API: at HD30 the
        // frame-based flow needs far more DRAM bandwidth than eCNN.
        let w = Workload::ernet(
            ErNetSpec::new(ErNetTask::Dn, 3, 1, 0),
            128,
            RealTimeSpec::HD30,
        )
        .unwrap();
        let ecnn = EcnnBackend::paper().frame_report(&w).unwrap();
        let frame = FrameBasedBackend::default().frame_report(&w).unwrap();
        let diffy = DiffyBackend::calibrated().frame_report(&w).unwrap();
        assert!(frame.dram_bytes_per_frame > 20.0 * ecnn.dram_bytes_per_frame);
        // Diffy compresses the frame-based traffic but stays above eCNN.
        assert!(diffy.dram_bytes_per_frame < frame.dram_bytes_per_frame);
        assert!(diffy.dram_bytes_per_frame > ecnn.dram_bytes_per_frame);
    }
}
