//! Pipelined asynchronous inference sessions, under supervision.
//!
//! The block-based dataflow streams: the paper's accelerator overlaps
//! block fetch, compute and writeback to sustain real-time 4K rates.
//! [`AsyncSession`] brings that overlap to the serving path. Where
//! [`Session::run_frames`](crate::engine::Session::run_frames) drains its
//! queue strictly serially — frame `i+1` waits until frame `i` is
//! quantized, executed *and* stitched — an `AsyncSession` keeps a small
//! pool of long-lived worker threads (fed through a `crossbeam` MPMC
//! channel), splits every submitted frame into the same block-row bands
//! the sharded backend uses, and lets the stages of different frames
//! overlap: while one worker stitches the tail band of frame `i`, others
//! are already quantizing and executing the head bands of frame `i+1`.
//!
//! A serving-style caller pipelines decode → inference → encode without
//! blocking:
//!
//! 1. [`AsyncSession::submit`] hands a decoded frame in and returns a
//!    [`FrameTicket`] immediately (blocking only when the bounded
//!    in-flight window is full — the back-pressure that keeps a fast
//!    producer from outrunning the executor);
//! 2. [`AsyncSession::poll`] is non-blocking: [`FramePoll::Pending`]
//!    while the frame is in flight, [`FramePoll::Ready`] with the
//!    stitched output and its per-frame [`ImageRunStats`] once done;
//! 3. [`AsyncSession::drain`] waits for everything still in flight and
//!    returns the remaining results in submission order.
//!
//! # Supervision
//!
//! Band dispatches run under a supervisor thread governed by a
//! [`SupervisorPolicy`] (see [`crate::supervise`]): a failed dispatch is
//! retried with capped exponential backoff, preferably on a different
//! worker; a worker killed by a panic is respawned and the bands it was
//! running are treated as failed dispatches (with the panic payload
//! carried into [`EngineError::Worker`]); a frame that overruns its soft
//! deadline gets its straggler bands resubmitted — first completion wins,
//! late duplicates are discarded before pasting; and repeated
//! corruption-class failures ([`EngineError::Corrupt`]) walk the session
//! down the verifier-licensed degradation ladder (Simd → Packed →
//! Reference kernels, then coalesced → keyed layout), which trades only
//! speed, never pixels. If the engine's [`EngineConfig`](crate::config::EngineConfig)
//! carries a [`FaultPlan`](crate::faults::FaultPlan) (or `ECNN_FAULTS`
//! set one), workers roll it deterministically per dispatch and inject
//! the planned panics, delays and corruptions — the harness the
//! supervisor is proven against. Outcomes surface per frame in
//! [`ImageRunStats::supervisor`] and session-wide through
//! [`AsyncSession::supervisor_stats`] / [`AsyncSession::supervision_report`].
//!
//! Output pixels are **bit-identical** to the serial session at any
//! worker count — with or without supervisor interventions: every band
//! executes exactly the blocks the whole-frame flow would (global grid
//! addressing, same receptive-field crops), bands land in disjoint rows
//! of the output frame, duplicate completions re-paste identical bytes,
//! and every ladder rung is proven bit-identical by the static verifier.
//! Per-frame stats are merged from the bands' counters; each worker
//! holds one warm [`Session`](crate::engine::Session) whose plane pool is
//! reused across bands *and* frames, so steady-state pipelining performs
//! zero per-block allocations, exactly like the serial path. A frame
//! whose band exhausts [`SupervisorPolicy::max_attempts`] surfaces as
//! [`EngineError::Frame`] carrying the frame's submission index, the
//! worker (shard) and the failing block — earliest failing band wins,
//! same as the sharded backend.

use crate::engine::{Engine, EngineError, ImageRunStats};
use crate::faults::Fault;
use crate::report::SupervisionReport;
use crate::sharded::partition_rows;
use crate::supervise::{
    classify, ladder, panic_message, DegradeEvent, DegradeRung, FailureClass, SupervisorCounters,
    SupervisorPolicy, SupervisorStats,
};
use crossbeam::channel::{self, Receiver, Sender};
use ecnn_tensor::Tensor;
use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Claim check for one submitted frame; redeem it with
/// [`AsyncSession::poll`]. Tickets are cheap copies — the frame index
/// they carry doubles as the submission order — and are bound to the
/// session that issued them: redeeming one elsewhere is a structured
/// [`EngineError::Ticket`], never another session's frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FrameTicket {
    session: u64,
    frame: usize,
}

impl FrameTicket {
    /// Submission index of the frame within its session (0-based).
    pub fn frame(&self) -> usize {
        self.frame
    }
}

/// Result of a non-blocking [`AsyncSession::poll`].
#[derive(Debug)]
pub enum FramePoll {
    /// The frame finished: its stitched output and per-frame stats.
    Ready(Tensor<f32>, ImageRunStats),
    /// The frame is still in flight; poll again later.
    Pending,
}

/// One dispatch of one band of one in-flight frame, as queued to the
/// worker pool. Retries and deadline resubmissions enqueue fresh tasks
/// with a bumped `attempt`.
struct BandTask {
    frame: usize,
    /// Band index within the frame's partition (stable across retries).
    band: usize,
    rows: Range<usize>,
    image: Arc<Tensor<f32>>,
    /// 1-based dispatch counter for this band (feeds the fault dice).
    attempt: u32,
    /// Worker the supervisor would rather not run this dispatch
    /// (best-effort: the one that just failed or is stuck on it).
    exclude: Option<usize>,
}

/// What flows through the task channel. `Shutdown` sentinels let the
/// session drop cleanly even though workers and the supervisor hold
/// `Sender` clones of their own (for requeues and retries), which keeps
/// the channel from ever disconnecting on its own.
enum Msg {
    Band(BandTask),
    Shutdown,
}

/// The failure a frame's earliest failing band recorded.
struct Failure {
    band_start: usize,
    shard: usize,
    block: usize,
    source: EngineError,
}

/// Lifecycle of one band of an in-flight frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BandPhase {
    /// At least one dispatch is queued or running.
    Active,
    /// Every dispatch failed; a retry is scheduled with the supervisor.
    Backoff,
    /// The band is accounted for — succeeded, finally failed, or skipped
    /// because its frame already failed. Late duplicate dispatches of a
    /// settled band conclude without effect.
    Settled,
}

/// Supervision state of one band of an in-flight frame.
struct BandSlot {
    rows: Range<usize>,
    /// Dispatches issued so far (the initial one included).
    attempts: u32,
    /// Dispatches currently queued or running (deadline resubmission can
    /// push this above 1; first completion settles the band).
    live: u32,
    /// Workers currently executing a dispatch of this band.
    running_on: Vec<usize>,
    /// Worker of the most recent dispatch (excluded from the next retry
    /// under [`SupervisorPolicy::redispatch_elsewhere`]).
    last_worker: Option<usize>,
    phase: BandPhase,
}

/// Accumulation state of one submitted, not-yet-finished frame.
struct InFlight {
    /// The output frame under assembly, behind its own lock so workers
    /// stitching different frames (or callers polling the session) never
    /// serialize on a band paste — only bands of the *same* frame, whose
    /// pastes target disjoint rows, take turns here. `None` once the
    /// frame completed and the tensor was handed out; a straggler
    /// duplicate that finishes later simply has nothing to paste into.
    out: Arc<Mutex<Option<Tensor<f32>>>>,
    stats: ImageRunStats,
    /// Bands not yet settled; `0` completes the frame.
    open: usize,
    failure: Option<Failure>,
    bands: Vec<BandSlot>,
    /// Kept for re-dispatch: retries and deadline resubmissions build
    /// fresh [`BandTask`]s from here.
    image: Arc<Tensor<f32>>,
    cols: usize,
    /// Soft deadline; the supervisor resubmits straggler bands when it
    /// expires, then re-arms it.
    deadline: Option<Instant>,
    /// Per-frame supervision counters, merged into the frame's
    /// [`ImageRunStats`] on completion.
    counters: SupervisorCounters,
}

type FrameResult = Result<(Tensor<f32>, ImageRunStats), EngineError>;

/// A band retry scheduled for a future instant (capped backoff).
struct Retry {
    due: Instant,
    frame: usize,
    band: usize,
}

#[derive(Default)]
struct State {
    inflight: HashMap<usize, InFlight>,
    done: HashMap<usize, FrameResult>,
    /// Scheduled band retries, unordered (the supervisor scans for due
    /// ones — the set is tiny).
    retries: Vec<Retry>,
    /// Workers that died (panicked); the supervisor joins and respawns
    /// them.
    dead: Vec<usize>,
    /// Current position on the degradation ladder (index into the
    /// session's [`ladder`]).
    rung: usize,
    /// Corruption-class failures seen on the current rung.
    rung_failures: u32,
    /// Session-lifetime supervision outcomes.
    stats: SupervisorStats,
    /// Tells the supervisor thread to exit.
    stop: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled whenever a frame completes (its result moved to `done`).
    frame_done: Condvar,
    /// Wakes the supervisor: scheduled retry, armed deadline, dead
    /// worker, or shutdown.
    supervisor: Condvar,
}

/// Everything a worker or the supervisor needs, cloneable so respawned
/// workers get the same wiring.
#[derive(Clone)]
struct Ctx {
    engine: Arc<Engine>,
    shared: Arc<Shared>,
    ladder: Arc<Vec<DegradeRung>>,
    policy: Arc<SupervisorPolicy>,
    tx: Sender<Msg>,
    rx: Receiver<Msg>,
    n_workers: usize,
}

/// A pipelined, poll-based inference session over one [`Engine`], with
/// supervised execution.
///
/// Construct via [`Engine::async_session`] (or
/// [`AsyncSession::with_capacity`] / [`AsyncSession::with_policy`] to
/// tune the back-pressure window and the supervision policy). Dropping
/// the session closes the task channel and joins the workers; queued
/// work is finished first, unclaimed results are discarded.
///
/// See the [module docs](crate::pipe) for the full contract.
pub struct AsyncSession {
    engine: Arc<Engine>,
    shared: Arc<Shared>,
    tasks: Sender<Msg>,
    /// Worker handles, shared with the supervisor (respawn replaces a
    /// slot's handle in place).
    workers: Arc<Mutex<Vec<Option<JoinHandle<()>>>>>,
    supervisor: Option<JoinHandle<()>>,
    policy: Arc<SupervisorPolicy>,
    ladder: Arc<Vec<DegradeRung>>,
    n_workers: usize,
    capacity: usize,
    /// Distinguishes this session's tickets from every other session's.
    session_id: u64,
    next_frame: usize,
    /// Submitted-but-unclaimed frames, in submission order (for `drain`).
    order: VecDeque<usize>,
}

impl AsyncSession {
    /// Pipelined session on `workers` threads with the default in-flight
    /// window of `2 * workers` frames and the default
    /// [`SupervisorPolicy`].
    ///
    /// The engine is cloned once into the session (the worker threads
    /// outlive the borrow a scoped approach could offer) — open one
    /// session per stream and keep it, rather than one per frame.
    pub fn new(engine: &Engine, workers: usize) -> Self {
        let workers = workers.max(1);
        Self::with_capacity(engine, workers, 2 * workers)
    }

    /// Pipelined session with an explicit back-pressure window:
    /// [`AsyncSession::submit`] blocks while `capacity` frames are in
    /// flight (submitted and not yet fully stitched). `capacity == 1`
    /// degenerates to lock-step serial behaviour with band parallelism.
    pub fn with_capacity(engine: &Engine, workers: usize, capacity: usize) -> Self {
        Self::with_policy(engine, workers, capacity, SupervisorPolicy::default())
    }

    /// Pipelined session with an explicit back-pressure window and
    /// supervision policy.
    pub fn with_policy(
        engine: &Engine,
        workers: usize,
        capacity: usize,
        policy: SupervisorPolicy,
    ) -> Self {
        let workers = workers.max(1);
        let engine = Arc::new(engine.clone());
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            frame_done: Condvar::new(),
            supervisor: Condvar::new(),
        });
        let (tx, rx) = channel::unbounded::<Msg>();
        let ctx = Ctx {
            engine: engine.clone(),
            shared: shared.clone(),
            ladder: Arc::new(ladder(engine.config())),
            policy: Arc::new(policy),
            tx: tx.clone(),
            rx,
            n_workers: workers,
        };
        let handles = Arc::new(Mutex::new(
            (0..workers)
                .map(|worker| {
                    let ctx = ctx.clone();
                    Some(std::thread::spawn(move || worker_loop(&ctx, worker)))
                })
                .collect::<Vec<_>>(),
        ));
        let supervisor = {
            let ctx = ctx.clone();
            let handles = handles.clone();
            Some(std::thread::spawn(move || supervisor_loop(&ctx, &handles)))
        };
        static NEXT_SESSION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        Self {
            engine,
            shared,
            tasks: tx,
            workers: handles,
            supervisor,
            policy: ctx.policy,
            ladder: ctx.ladder,
            n_workers: workers,
            capacity: capacity.max(1),
            session_id: NEXT_SESSION.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            next_frame: 0,
            order: VecDeque::new(),
        }
    }

    /// The engine this session pipelines on.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Number of worker threads (constant: a dead worker is respawned,
    /// the pool never shrinks).
    pub fn workers(&self) -> usize {
        self.n_workers
    }

    /// Back-pressure window: the maximum number of frames in flight.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The supervision policy this session runs under.
    pub fn policy(&self) -> &SupervisorPolicy {
        &self.policy
    }

    /// Frames currently in flight (submitted, not yet finished).
    pub fn in_flight(&self) -> usize {
        self.lock_state().inflight.len()
    }

    /// Submitted frames whose results have not been claimed yet (in
    /// flight or finished-but-unpolled).
    pub fn pending(&self) -> usize {
        self.order.len()
    }

    /// Session-lifetime supervision outcomes so far: aggregated
    /// counters, the per-band attempt histogram, every ladder step.
    pub fn supervisor_stats(&self) -> SupervisorStats {
        self.lock_state().stats.clone()
    }

    /// Full supervision snapshot: policy, degradation ladder, stats.
    pub fn supervision_report(&self) -> SupervisionReport {
        SupervisionReport {
            policy: (*self.policy).clone(),
            ladder: (*self.ladder).clone(),
            stats: self.lock_state().stats.clone(),
            workers: self.n_workers,
        }
    }

    /// Submits one decoded frame for pipelined inference, taking
    /// ownership of it, and returns the ticket to claim the result with.
    /// Geometry is validated here, so a bad frame fails synchronously and
    /// never occupies the pipeline. Blocks while [`AsyncSession::capacity`]
    /// frames are in flight (back-pressure); completion by the workers —
    /// not polling — frees the window, so a submit-only caller cannot
    /// deadlock itself. The flip side: finished results are held until
    /// claimed, so a long stream must interleave [`AsyncSession::poll`] /
    /// [`AsyncSession::wait`] (or periodic [`AsyncSession::drain`]s) with
    /// its submits to bound memory — one stitched output frame per
    /// unclaimed result.
    ///
    /// # Errors
    ///
    /// [`EngineError::Image`] / [`EngineError::Rows`] for frames the
    /// engine cannot grid.
    pub fn submit(&mut self, frame: Tensor<f32>) -> Result<FrameTicket, EngineError> {
        let (out_h, out_w) = self.engine.out_dims(&frame)?;
        let (rows, cols) = self.engine.grid_dims(&frame)?;
        let p = &self.engine.compiled().program;
        let bands = partition_rows(rows, self.n_workers);
        let id = self.next_frame;
        self.next_frame += 1;

        let image = Arc::new(frame);
        let deadline = self.policy.frame_deadline.map(|d| Instant::now() + d);
        let mut state = self.lock_state();
        while state.inflight.len() >= self.capacity {
            state = self
                .shared
                .frame_done
                .wait(state)
                .expect("session lock poisoned");
        }
        state.inflight.insert(
            id,
            InFlight {
                out: Arc::new(Mutex::new(Some(Tensor::zeros(p.do_channels, out_h, out_w)))),
                stats: ImageRunStats::default(),
                open: bands.len(),
                failure: None,
                bands: bands
                    .iter()
                    .map(|rows| BandSlot {
                        rows: rows.clone(),
                        attempts: 1,
                        live: 1,
                        running_on: Vec::new(),
                        last_worker: None,
                        phase: BandPhase::Active,
                    })
                    .collect(),
                image: image.clone(),
                cols,
                deadline,
                counters: SupervisorCounters::default(),
            },
        );
        drop(state);

        for (band, rows) in bands.into_iter().enumerate() {
            self.tasks
                .send(Msg::Band(BandTask {
                    frame: id,
                    band,
                    rows,
                    image: image.clone(),
                    attempt: 1,
                    exclude: None,
                }))
                .expect("workers outlive the session");
        }
        if deadline.is_some() {
            // The supervisor recomputes its sleep to cover the new frame.
            self.shared.supervisor.notify_all();
        }
        self.order.push_back(id);
        Ok(FrameTicket {
            session: self.session_id,
            frame: id,
        })
    }

    /// Non-blocking claim: [`FramePoll::Ready`] hands the finished frame
    /// over (the ticket is spent), [`FramePoll::Pending`] means it is
    /// still in flight.
    ///
    /// # Errors
    ///
    /// [`EngineError::Frame`] if the frame failed in flight (the ticket
    /// is spent); [`EngineError::Ticket`] for a ticket this session never
    /// issued or whose result was already claimed.
    pub fn poll(&mut self, ticket: FrameTicket) -> Result<FramePoll, EngineError> {
        if ticket.session != self.session_id {
            return Err(EngineError::Ticket {
                frame: ticket.frame,
            });
        }
        let mut state = self.lock_state();
        if let Some(result) = state.done.remove(&ticket.frame) {
            drop(state);
            self.order.retain(|&id| id != ticket.frame);
            return result.map(|(out, stats)| FramePoll::Ready(out, stats));
        }
        if state.inflight.contains_key(&ticket.frame) {
            return Ok(FramePoll::Pending);
        }
        Err(EngineError::Ticket {
            frame: ticket.frame,
        })
    }

    /// Blocking claim: waits until the frame finishes.
    ///
    /// # Errors
    ///
    /// As [`AsyncSession::poll`].
    pub fn wait(
        &mut self,
        ticket: FrameTicket,
    ) -> Result<(Tensor<f32>, ImageRunStats), EngineError> {
        if ticket.session != self.session_id {
            return Err(EngineError::Ticket {
                frame: ticket.frame,
            });
        }
        let mut state = self.lock_state();
        loop {
            if let Some(result) = state.done.remove(&ticket.frame) {
                drop(state);
                self.order.retain(|&id| id != ticket.frame);
                return result;
            }
            if !state.inflight.contains_key(&ticket.frame) {
                return Err(EngineError::Ticket {
                    frame: ticket.frame,
                });
            }
            state = self
                .shared
                .frame_done
                .wait(state)
                .expect("session lock poisoned");
        }
    }

    /// Waits for every in-flight frame and returns all unclaimed results
    /// in submission order — the pipelined counterpart of
    /// [`Session::run_frames`](crate::engine::Session::run_frames).
    ///
    /// Every outstanding ticket is collected **before** the first error
    /// is propagated: by the time this returns, nothing is in flight and
    /// no worker holds a band of an abandoned frame — the pipeline is
    /// quiescent either way.
    ///
    /// # Errors
    ///
    /// Returns the first failing frame's [`EngineError::Frame`] (by
    /// submission order). Results of earlier frames are dropped, matching
    /// `run_frames`; later frames — finished, by the wait above — stay
    /// claimable through [`AsyncSession::poll`], and a repeated `drain`
    /// surfaces the next failure (or the remaining successes).
    pub fn drain(&mut self) -> Result<Vec<(Tensor<f32>, ImageRunStats)>, EngineError> {
        // Lock through a clone of the shared handle so the guard does not
        // pin `self` while `order` is drained.
        let shared = self.shared.clone();
        let mut state = shared.state.lock().expect("session lock poisoned");
        while !state.inflight.is_empty() {
            state = shared
                .frame_done
                .wait(state)
                .expect("session lock poisoned");
        }
        let mut results = Vec::with_capacity(self.order.len());
        while let Some(id) = self.order.pop_front() {
            match state.done.remove(&id) {
                Some(Ok(pair)) => results.push(pair),
                Some(Err(e)) => return Err(e),
                None => return Err(EngineError::Ticket { frame: id }),
            }
        }
        Ok(results)
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        self.shared.state.lock().expect("session lock poisoned")
    }

    /// Test support: records `source` as an in-flight frame failure, as
    /// if its first band had finally failed on a worker — exercising the
    /// skip/attribution/completion machinery that real inputs cannot
    /// reach (geometry is validated at submit and compiled plans at
    /// engine build). Bypasses the retry ladder deliberately. Returns
    /// whether the frame was still in flight.
    #[doc(hidden)]
    pub fn inject_band_failure(&mut self, ticket: FrameTicket, source: EngineError) -> bool {
        if ticket.session != self.session_id {
            return false;
        }
        let mut state = self.lock_state();
        if !state.inflight.contains_key(&ticket.frame) {
            return false;
        }
        fail_frame(
            &mut state,
            &self.shared,
            ticket.frame,
            Failure {
                band_start: 0,
                shard: 0,
                block: 0,
                source,
            },
        );
        true
    }
}

impl Drop for AsyncSession {
    fn drop(&mut self) {
        // Stop the supervisor first so no respawn races the shutdown.
        self.lock_state().stop = true;
        self.shared.supervisor.notify_all();
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        // One sentinel per worker: queued band tasks drain first (FIFO),
        // then each live worker consumes exactly one sentinel and exits.
        // A worker that died without a respawn simply leaves its sentinel
        // behind; its join below returns the panic, which we discard.
        for _ in 0..self.n_workers {
            let _ = self.tasks.send(Msg::Shutdown);
        }
        let handles: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .expect("worker-handle lock poisoned")
            .iter_mut()
            .filter_map(|h| h.take())
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Notifies the supervisor when a worker thread dies by panic (the
/// injected-fault path): armed on entry, disarmed on orderly exit, the
/// `Drop` impl runs during the unwind.
struct DeathNotice {
    shared: Arc<Shared>,
    worker: usize,
    armed: bool,
}

impl Drop for DeathNotice {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // A poisoned lock here would mean a panic *while holding* the
        // state lock, which no code path does; don't double-panic on it.
        if let Ok(mut state) = self.shared.state.lock() {
            state.dead.push(self.worker);
        }
        self.shared.supervisor.notify_all();
    }
}

/// What a worker decided about a just-received dispatch, under the lock.
enum Claim {
    /// Run it: the frame's output handle and the rung to execute on.
    Run(Arc<Mutex<Option<Tensor<f32>>>>, usize),
    /// This worker is excluded; put it back for a sibling.
    Requeue,
    /// Nothing to run (frame gone/failed or band settled); accounting is
    /// already done.
    Skip,
}

fn worker_loop(ctx: &Ctx, worker: usize) {
    let mut guard = DeathNotice {
        shared: ctx.shared.clone(),
        worker,
        armed: true,
    };
    let xo = ctx.engine.compiled().program.do_side;
    let mut rung = 0usize;
    let mut session = ctx.engine.session_at(ctx.ladder[rung]);
    while let Ok(msg) = ctx.rx.recv() {
        let task = match msg {
            Msg::Shutdown => break,
            Msg::Band(task) => task,
        };
        let claim = {
            let mut state = ctx.shared.state.lock().expect("session lock poisoned");
            claim_dispatch(&mut state, &ctx.shared, &task, worker, ctx.n_workers)
        };
        let (out, want_rung) = match claim {
            Claim::Skip => continue,
            Claim::Requeue => {
                let _ = ctx.tx.send(Msg::Band(task));
                // Give a sibling a moment to pick it up before this
                // worker sees it again (the exclusion is best-effort).
                std::thread::sleep(Duration::from_micros(200));
                continue;
            }
            Claim::Run(out, want_rung) => (out, want_rung),
        };
        if want_rung != rung {
            rung = want_rung;
            session = ctx.engine.session_at(ctx.ladder[rung]);
        }
        // Deterministic fault injection: a pure function of the dispatch
        // site, rolled only when the engine carries a non-empty plan.
        if let Some(plan) = ctx.engine.fault_plan() {
            let r = ctx.ladder[rung];
            match plan.roll(task.frame, task.band, task.attempt, r.kernels, r.coalesce) {
                Some(Fault::Panic) => {
                    record_injected(ctx, task.frame);
                    // Escapes the loop entirely: the thread dies, the
                    // DeathNotice wakes the supervisor, which joins this
                    // worker, respawns the slot and fails the band as a
                    // dispatch (real executor panics below stay caught —
                    // they are bugs, not environmental faults). The
                    // dispatch stays registered in `running_on` so the
                    // respawn sweep can find and fail it.
                    panic!(
                        "injected fault: worker {worker} frame {} band {} attempt {}",
                        task.frame, task.band, task.attempt
                    );
                }
                Some(Fault::Delay(d)) => {
                    record_injected(ctx, task.frame);
                    std::thread::sleep(d);
                }
                Some(Fault::Corrupt) => {
                    record_injected(ctx, task.frame);
                    let source = EngineError::Corrupt {
                        band: task.rows.start,
                        kernels: r.kernels.as_str(),
                    };
                    drop(out);
                    conclude_dispatch(ctx, &task, worker, Err((source, None)));
                    continue;
                }
                None => {}
            }
        }
        // The executor and stitch only panic on internal invariant
        // violations; the catch spans the whole execute-and-paste step so
        // any such bug (including a lock poisoned by a sibling band's
        // panic) becomes a structured per-dispatch error that still books
        // its band — never a hung pipeline.
        let ran = catch_unwind(AssertUnwindSafe(|| {
            session
                .process_rows(&task.image, task.rows.clone())
                .map(|_| ())?;
            // Stitch under the frame's own lock: bands of other frames
            // (and session polls) proceed concurrently. A late duplicate
            // of a settled band either re-pastes identical bytes or finds
            // the output already handed out (`None`) — bit-identical
            // either way.
            let band = session.last_frame().expect("band stitched by process_rows");
            if let Some(dst) = out.lock().expect("frame lock poisoned").as_mut() {
                dst.paste(band, task.rows.start * xo, 0);
            }
            Ok(session.last_frame_stats())
        }));
        let outcome = match ran {
            Ok(Ok(stats)) => Ok(stats),
            Ok(Err(source)) => Err((source, session.last_block_started())),
            Err(panic) => {
                // The session (pool, scratch) may be mid-block; rebuild it.
                session = ctx.engine.session_at(ctx.ladder[rung]);
                Err((
                    EngineError::Worker {
                        shard: worker,
                        message: panic_message(&*panic),
                    },
                    None,
                ))
            }
        };
        // The frame handle must be released before the accounting: frame
        // completion takes the state lock first and the output lock
        // second, never the other way around.
        drop(out);
        conclude_dispatch(ctx, &task, worker, outcome);
    }
    guard.armed = false;
}

/// Per-frame fault accounting, in its own lock scope (so an injected
/// panic right after never poisons the state lock).
fn record_injected(ctx: &Ctx, frame: usize) {
    let mut state = ctx.shared.state.lock().expect("session lock poisoned");
    if let Some(fl) = state.inflight.get_mut(&frame) {
        fl.counters.faults_injected += 1;
    }
}

/// Books one received dispatch under the lock: drops stale ones, settles
/// bands of failing frames, bounces excluded workers.
fn claim_dispatch(
    state: &mut State,
    shared: &Shared,
    task: &BandTask,
    worker: usize,
    n_workers: usize,
) -> Claim {
    let rung = state.rung;
    let Some(fl) = state.inflight.get_mut(&task.frame) else {
        // The frame already completed (a duplicate outlived it).
        return Claim::Skip;
    };
    let slot = &mut fl.bands[task.band];
    if slot.phase == BandPhase::Settled {
        slot.live -= 1;
        return Claim::Skip;
    }
    if fl.failure.is_some() {
        // The frame is already failing: settle the band unrun (the skip
        // path that keeps accounting closed — no hang).
        slot.phase = BandPhase::Settled;
        slot.live -= 1;
        let attempts = slot.attempts;
        fl.open -= 1;
        fl.counters.record_attempts(attempts);
        if fl.open == 0 {
            complete_frame(state, shared, task.frame);
        }
        return Claim::Skip;
    }
    if task.exclude == Some(worker) && n_workers > 1 {
        return Claim::Requeue;
    }
    slot.running_on.push(worker);
    slot.last_worker = Some(worker);
    Claim::Run(fl.out.clone(), rung)
}

/// Books the end of one dispatch: deregisters the worker, then settles
/// the band (success) or routes the failure to the supervisor machinery.
/// The injected-panic path never gets here — its dispatch stays
/// registered so the respawn sweep fails it with the joined payload.
fn conclude_dispatch(
    ctx: &Ctx,
    task: &BandTask,
    worker: usize,
    outcome: Result<ImageRunStats, (EngineError, Option<usize>)>,
) {
    let mut state = ctx.shared.state.lock().expect("session lock poisoned");
    let Some(fl) = state.inflight.get_mut(&task.frame) else {
        return;
    };
    let slot = &mut fl.bands[task.band];
    slot.running_on.retain(|&w| w != worker);
    slot.live -= 1;
    if slot.phase == BandPhase::Settled {
        // A duplicate already settled this band; nothing more to book.
        return;
    }
    match outcome {
        Ok(stats) => {
            slot.phase = BandPhase::Settled;
            let attempts = slot.attempts;
            fl.open -= 1;
            fl.counters.record_attempts(attempts);
            if fl.failure.is_none() {
                fl.stats.merge(&stats);
            }
            if fl.open == 0 {
                complete_frame(&mut state, &ctx.shared, task.frame);
            }
        }
        Err((source, block)) => {
            band_failed(
                &mut state, ctx, task.frame, task.band, worker, source, block,
            );
        }
    }
}

/// One dispatch of `band` failed. Corruption-class failures advance the
/// degradation ladder; then the band either waits for a still-live
/// sibling dispatch, schedules a backoff retry, or — attempts exhausted —
/// fails its frame (earliest failing band wins).
fn band_failed(
    state: &mut State,
    ctx: &Ctx,
    frame: usize,
    band: usize,
    worker: usize,
    source: EngineError,
    block: Option<usize>,
) {
    // Ladder accounting first: the rung is session state, not frame
    // state — persistent corruption on one stream degrades the session
    // for all subsequent frames (and clears the fault if it was scoped
    // to the abandoned kernels/layout).
    let mut degraded = false;
    if classify(&source) == FailureClass::Corrupt {
        state.rung_failures += 1;
        if state.rung_failures >= ctx.policy.degrade_after && state.rung + 1 < ctx.ladder.len() {
            let from = ctx.ladder[state.rung];
            state.rung += 1;
            state.rung_failures = 0;
            state.stats.rung = state.rung;
            state.stats.degradations.push(DegradeEvent {
                frame,
                from,
                to: ctx.ladder[state.rung],
            });
            degraded = true;
        }
    }
    let Some(fl) = state.inflight.get_mut(&frame) else {
        return;
    };
    if degraded {
        fl.counters.degradations += 1;
    }
    let slot = &mut fl.bands[band];
    slot.last_worker = Some(worker);
    if slot.phase != BandPhase::Active {
        return;
    }
    if slot.live > 0 {
        // A duplicate dispatch of this band is still out; let it decide.
        return;
    }
    if fl.failure.is_none() && slot.attempts < ctx.policy.max_attempts {
        slot.phase = BandPhase::Backoff;
        let backoff = ctx.policy.backoff(slot.attempts);
        fl.counters.retries += 1;
        state.retries.push(Retry {
            due: Instant::now() + backoff,
            frame,
            band,
        });
        ctx.shared.supervisor.notify_all();
        return;
    }
    // Out of attempts (or the frame is failing anyway): settle for good
    // and record the failure.
    slot.phase = BandPhase::Settled;
    let band_start = slot.rows.start;
    let attempts = slot.attempts;
    fl.open -= 1;
    fl.counters.record_attempts(attempts);
    let cols = fl.cols;
    fail_frame(
        state,
        &ctx.shared,
        frame,
        Failure {
            band_start,
            shard: worker,
            block: block.unwrap_or(band_start * cols),
            source,
        },
    );
}

/// Records a frame failure (earliest failing band wins), settles every
/// band still waiting in backoff, cancels their scheduled retries, and
/// completes the frame if nothing else is outstanding. Bands with live
/// dispatches settle through the skip path as those conclude.
fn fail_frame(state: &mut State, shared: &Shared, frame: usize, failure: Failure) {
    let Some(fl) = state.inflight.get_mut(&frame) else {
        return;
    };
    if fl
        .failure
        .as_ref()
        .is_none_or(|cur| failure.band_start < cur.band_start)
    {
        fl.failure = Some(failure);
    }
    let open = &mut fl.open;
    let counters = &mut fl.counters;
    for slot in &mut fl.bands {
        if slot.phase == BandPhase::Backoff {
            slot.phase = BandPhase::Settled;
            *open -= 1;
            counters.record_attempts(slot.attempts);
        }
    }
    let open_now = fl.open;
    state.retries.retain(|r| r.frame != frame);
    if open_now == 0 {
        complete_frame(state, shared, frame);
    }
}

/// Moves a fully-settled frame to `done` and wakes pollers. Lock order:
/// state lock (held by the caller) first, output lock second — workers
/// never hold both.
fn complete_frame(state: &mut State, shared: &Shared, frame: usize) {
    let mut fl = state.inflight.remove(&frame).expect("frame is in flight");
    fl.stats.supervisor = fl.counters;
    state.stats.counters.absorb(&fl.counters);
    let result = match fl.failure {
        None => {
            let out = fl
                .out
                .lock()
                .expect("frame lock poisoned")
                .take()
                .expect("completed frame still owns its output");
            Ok((out, fl.stats))
        }
        Some(f) => Err(EngineError::Frame {
            frame,
            shard: f.shard,
            block: f.block,
            source: Box::new(f.source),
        }),
    };
    state.done.insert(frame, result);
    shared.frame_done.notify_all();
}

/// The supervisor thread: fires due retries, expires frame deadlines,
/// and joins + respawns dead workers. Event-driven — it sleeps on the
/// `supervisor` condvar until the next scheduled instant (or
/// indefinitely when nothing is scheduled), so an idle or fault-free
/// session costs nothing.
fn supervisor_loop(ctx: &Ctx, handles: &Arc<Mutex<Vec<Option<JoinHandle<()>>>>>) {
    loop {
        let respawn: Vec<usize>;
        {
            let mut state = ctx.shared.state.lock().expect("session lock poisoned");
            loop {
                if state.stop {
                    return;
                }
                if !state.dead.is_empty() {
                    respawn = std::mem::take(&mut state.dead);
                    break;
                }
                let now = Instant::now();
                let mut fired = false;
                let mut i = 0;
                while i < state.retries.len() {
                    if state.retries[i].due <= now {
                        let retry = state.retries.swap_remove(i);
                        fire_retry(&mut state, ctx, &retry);
                        fired = true;
                    } else {
                        i += 1;
                    }
                }
                let expired: Vec<usize> = state
                    .inflight
                    .iter()
                    .filter(|(_, fl)| fl.deadline.is_some_and(|d| d <= now))
                    .map(|(&frame, _)| frame)
                    .collect();
                for frame in expired {
                    fire_deadline(&mut state, ctx, frame, now);
                    fired = true;
                }
                if fired {
                    continue;
                }
                let next = state
                    .retries
                    .iter()
                    .map(|r| r.due)
                    .chain(state.inflight.values().filter_map(|fl| fl.deadline))
                    .min();
                state = match next {
                    Some(due) => {
                        let now = Instant::now();
                        if due <= now {
                            continue;
                        }
                        ctx.shared
                            .supervisor
                            .wait_timeout(state, due - now)
                            .expect("session lock poisoned")
                            .0
                    }
                    None => ctx
                        .shared
                        .supervisor
                        .wait(state)
                        .expect("session lock poisoned"),
                };
            }
        }
        // Join and respawn outside the state lock: a join can block on
        // the dying thread's unwind, and the replacement spawn allocates.
        for worker in respawn {
            let handle = handles
                .lock()
                .expect("worker-handle lock poisoned")
                .get_mut(worker)
                .and_then(|h| h.take());
            let message = handle
                .and_then(|h| h.join().err())
                .and_then(|p| panic_message(&*p));
            let ctx2 = ctx.clone();
            let replacement = std::thread::spawn(move || worker_loop(&ctx2, worker));
            if let Some(slot) = handles
                .lock()
                .expect("worker-handle lock poisoned")
                .get_mut(worker)
            {
                *slot = Some(replacement);
            }
            let mut state = ctx.shared.state.lock().expect("session lock poisoned");
            state.stats.counters.respawns += 1;
            fail_bands_running_on(&mut state, ctx, worker, message);
        }
    }
}

/// A scheduled retry came due: re-dispatch the band (bumped attempt,
/// excluding the worker that failed it last, if the policy says so).
fn fire_retry(state: &mut State, ctx: &Ctx, retry: &Retry) {
    let Some(fl) = state.inflight.get_mut(&retry.frame) else {
        return;
    };
    if fl.failure.is_some() {
        // `fail_frame` settles backoff bands and cancels retries; one
        // that raced it here has nothing left to do.
        return;
    }
    let slot = &mut fl.bands[retry.band];
    if slot.phase != BandPhase::Backoff {
        return;
    }
    slot.attempts += 1;
    slot.live += 1;
    slot.phase = BandPhase::Active;
    let exclude = if ctx.policy.redispatch_elsewhere {
        slot.last_worker
    } else {
        None
    };
    let task = BandTask {
        frame: retry.frame,
        band: retry.band,
        rows: slot.rows.clone(),
        image: fl.image.clone(),
        attempt: slot.attempts,
        exclude,
    };
    let _ = ctx.tx.send(Msg::Band(task));
}

/// A frame overran its soft deadline: resubmit every straggler band that
/// still has attempts left (first completion wins), then re-arm.
fn fire_deadline(state: &mut State, ctx: &Ctx, frame: usize, now: Instant) {
    let rearm = ctx.policy.frame_deadline.map(|d| now + d);
    let Some(fl) = state.inflight.get_mut(&frame) else {
        return;
    };
    fl.deadline = rearm;
    if fl.failure.is_some() {
        return;
    }
    let image = fl.image.clone();
    let mut resubmitted = false;
    for (band, slot) in fl.bands.iter_mut().enumerate() {
        if slot.phase == BandPhase::Active
            && slot.live > 0
            && slot.attempts < ctx.policy.max_attempts
        {
            slot.attempts += 1;
            slot.live += 1;
            let exclude = if ctx.policy.redispatch_elsewhere {
                slot.running_on.last().copied()
            } else {
                None
            };
            let _ = ctx.tx.send(Msg::Band(BandTask {
                frame,
                band,
                rows: slot.rows.clone(),
                image: image.clone(),
                attempt: slot.attempts,
                exclude,
            }));
            resubmitted = true;
        }
    }
    if resubmitted {
        fl.counters.deadline_hits += 1;
    }
}

/// A worker died: every dispatch it was running becomes a failed
/// dispatch carrying the joined panic message.
fn fail_bands_running_on(state: &mut State, ctx: &Ctx, worker: usize, message: Option<String>) {
    let running: Vec<(usize, usize)> = state
        .inflight
        .iter()
        .flat_map(|(&frame, fl)| {
            fl.bands
                .iter()
                .enumerate()
                .filter(|(_, slot)| slot.running_on.contains(&worker))
                .map(move |(band, _)| (frame, band))
        })
        .collect();
    for (frame, band) in running {
        let Some(fl) = state.inflight.get_mut(&frame) else {
            continue;
        };
        let slot = &mut fl.bands[band];
        slot.running_on.retain(|&w| w != worker);
        slot.live -= 1;
        if slot.phase == BandPhase::Settled {
            continue;
        }
        band_failed(
            state,
            ctx,
            frame,
            band,
            worker,
            EngineError::Worker {
                shard: worker,
                message: message.clone(),
            },
            None,
        );
    }
}
