//! Shared harness for the per-table / per-figure regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (see DESIGN.md §5 for the index). Training-based experiments
//! read `ECNN_BENCH_SCALE` (default 1) to lengthen their runs.
//!
//! All eCNN deployments go through the unified [`Engine`] API; the
//! comparison binaries additionally run the baseline flows through the
//! shared [`Backend`](ecnn_core::engine::Backend) registry.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
use ecnn_core::engine::{Engine, Workload};
use ecnn_core::SystemReport;
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_model::RealTimeSpec;

/// Effective eCNN peak used for budgets (matches `EcnnConfig::paper()`).
pub const ECNN_TOPS: f64 = 40.96;

/// Step-count multiplier for training experiments.
pub fn bench_scale() -> usize {
    std::env::var("ECNN_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// The model picks evaluated per real-time spec (the paper's published
/// picks where known, in-budget derivations elsewhere; see EXPERIMENTS.md).
pub fn model_matrix() -> Vec<(RealTimeSpec, ErNetSpec, usize)> {
    vec![
        (
            RealTimeSpec::UHD30,
            ErNetSpec::new(ErNetTask::Sr4, 17, 3, 1),
            128,
        ),
        (
            RealTimeSpec::HD60,
            ErNetSpec::new(ErNetTask::Sr4, 24, 4, 0),
            128,
        ),
        (
            RealTimeSpec::HD30,
            ErNetSpec::new(ErNetTask::Sr4, 34, 4, 0),
            128,
        ),
        (
            RealTimeSpec::UHD30,
            ErNetSpec::new(ErNetTask::Sr2, 4, 2, 0),
            128,
        ),
        (
            RealTimeSpec::HD60,
            ErNetSpec::new(ErNetTask::Sr2, 8, 2, 0),
            128,
        ),
        (
            RealTimeSpec::HD30,
            ErNetSpec::new(ErNetTask::Sr2, 14, 3, 0),
            128,
        ),
        (
            RealTimeSpec::UHD30,
            ErNetSpec::new(ErNetTask::Dn, 3, 1, 0),
            128,
        ),
        (
            RealTimeSpec::HD60,
            ErNetSpec::new(ErNetTask::Dn, 8, 1, 0),
            128,
        ),
        (
            RealTimeSpec::HD30,
            ErNetSpec::new(ErNetTask::Dn, 12, 1, 6),
            128,
        ),
    ]
}

/// The Appendix A DnERNet-12ch picks.
pub fn dn12_matrix() -> Vec<(RealTimeSpec, ErNetSpec, usize)> {
    vec![
        (
            RealTimeSpec::UHD30,
            ErNetSpec::new(ErNetTask::Dn12, 8, 2, 5),
            256,
        ),
        (
            RealTimeSpec::HD60,
            ErNetSpec::new(ErNetTask::Dn12, 13, 3, 0),
            256,
        ),
        (
            RealTimeSpec::HD30,
            ErNetSpec::new(ErNetTask::Dn12, 19, 3, 15),
            256,
        ),
    ]
}

/// Builds the paper-configuration engine for a spec with deterministic
/// demo parameters at real-time target `rt`.
pub fn engine_for(spec: ErNetSpec, xi: usize, rt: RealTimeSpec) -> Engine {
    Engine::builder()
        .ernet(spec)
        .block(xi)
        .realtime(rt)
        .build()
        .expect("paper models compile")
}

/// Builds an engine with the default UHD30 target (resolution-independent
/// uses: compiled program, parameter memory, …).
pub fn engine(spec: ErNetSpec, xi: usize) -> Engine {
    engine_for(spec, xi, RealTimeSpec::UHD30)
}

/// The unified workload for one matrix row (for backend comparisons).
pub fn workload_row(spec: ErNetSpec, xi: usize, rt: RealTimeSpec) -> Workload {
    Workload::ernet(spec, xi, rt).expect("valid spec")
}

/// System report for one matrix row.
pub fn report_row(spec: ErNetSpec, xi: usize, rt: RealTimeSpec) -> SystemReport {
    engine_for(spec, xi, rt).system_report()
}

/// Prints a horizontal rule with a title.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_matrix_models_meet_their_specs() {
        for (rt, spec, xi) in model_matrix().into_iter().chain(dn12_matrix()) {
            let rep = report_row(spec, xi, rt);
            assert!(
                rep.meets_realtime,
                "{spec} @ {rt}: {:.1} fps",
                rep.frame.fps
            );
        }
    }

    #[test]
    fn all_matrix_models_fit_parameter_memory() {
        for (_, spec, xi) in model_matrix().into_iter().chain(dn12_matrix()) {
            let eng = engine(spec, xi);
            assert!(
                eng.compiled().packed.total_bytes() <= 1288 * 1024,
                "{spec}: {} B",
                eng.compiled().packed.total_bytes()
            );
        }
    }
}
