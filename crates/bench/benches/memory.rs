//! Coalesced vs keyed plane-layout cost on the paper's eSR-4K pick
//! (SR4ERNet-B17R3N1 @ UHD30, block 128): warm block execution under
//! both layouts — the throughput check that slot routing is free — plus
//! the observed resident-plane peaks the planner proves (the coalesced
//! layout halves the keyed footprint; `ecnn-lint --cost` prints the
//! static side of the same numbers).

use criterion::{criterion_group, criterion_main, Criterion};
use ecnn_isa::compile::compile;
use ecnn_isa::params::QuantizedModel;
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_sim::exec::{execute_with, quantize_input, BlockPlan, Kernels, PlanePool};
use ecnn_tensor::{ImageKind, SyntheticImage};
use std::hint::black_box;

fn bench_memory_layouts(c: &mut Criterion) {
    let m = ErNetSpec::new(ErNetTask::Sr4, 17, 3, 1).build().unwrap();
    let qm = QuantizedModel::uniform(&m);
    let compiled = compile(&qm, 128).unwrap();
    let plan = BlockPlan::new(&compiled.program, &compiled.leafs).unwrap();
    let mut keyed = plan.clone();
    keyed.force_keyed();
    let img = SyntheticImage::new(ImageKind::Mixed, 1).rgb(128, 128);
    let codes = quantize_input(&img, &compiled.program);
    for (name, p) in [
        ("memory/esr4k_coalesced_warm_block128", &plan),
        ("memory/esr4k_keyed_warm_block128", &keyed),
    ] {
        let mut pool = PlanePool::new();
        execute_with(p, &mut pool, &codes, Kernels::Simd).unwrap();
        c.bench_function(name, |b| {
            b.iter(|| {
                black_box(execute_with(p, &mut pool, black_box(&codes), Kernels::Simd).unwrap());
            })
        });
        println!(
            "{name}: observed peak {} KB (planned {} KB)",
            pool.peak_resident_bytes() / 1024,
            p.planned_peak_bytes() / 1024
        );
    }
}

criterion_group!(benches, bench_memory_layouts);
criterion_main!(benches);
