//! Bit-level I/O and the JPEG DC Huffman parameter coder (Section 5.2).
//!
//! The paper compresses the 8-bit quantized parameters with "the DC Huffman
//! coding in JPEG": each value is split into a *category* (the bit length of
//! its magnitude) which is Huffman-coded, followed by that many raw
//! magnitude bits (one's-complement for negative values). One Huffman table
//! per restart segment is sufficient because quantized parameter
//! distributions are similar (Table 5 shows cross-entropies close to the
//! Shannon limit); tables are serialized JPEG-DHT-style (16 length counts +
//! symbols) at the head of each segment.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum category: 8-bit codes span [-255, 255] after no operation we do,
/// but we allow the full JPEG DC range for robustness.
pub const MAX_CATEGORY: usize = 11;

/// MSB-first bit writer.
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final byte (0..8).
    bit_pos: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the `count` low bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn put(&mut self, value: u32, count: u8) {
        assert!(count <= 32);
        for i in (0..count).rev() {
            let bit = (value >> i) & 1;
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= (bit as u8) << (7 - self.bit_pos);
            self.bit_pos = (self.bit_pos + 1) % 8;
        }
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn byte_align(&mut self) {
        self.bit_pos = 0;
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Finishes (byte-aligning) and returns the bytes.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.byte_align();
        self.bytes
    }
}

/// MSB-first bit reader.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    /// Reads from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::OutOfBits`] at end of input.
    pub fn bit(&mut self) -> Result<u32, CodingError> {
        let byte = self.pos / 8;
        if byte >= self.bytes.len() {
            return Err(CodingError::OutOfBits);
        }
        let bit = (self.bytes[byte] >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Ok(bit as u32)
    }

    /// Reads `count` bits MSB-first.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::OutOfBits`] at end of input.
    pub fn bits(&mut self, count: u8) -> Result<u32, CodingError> {
        let mut v = 0;
        for _ in 0..count {
            v = (v << 1) | self.bit()?;
        }
        Ok(v)
    }

    /// Skips to the next byte boundary.
    pub fn byte_align(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

/// Errors from the entropy codec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodingError {
    /// Ran out of input bits.
    OutOfBits,
    /// Encountered a Huffman code with no assigned symbol.
    BadCode,
    /// A serialized table was malformed.
    BadTable,
}

impl fmt::Display for CodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodingError::OutOfBits => write!(f, "bitstream exhausted"),
            CodingError::BadCode => write!(f, "invalid huffman code"),
            CodingError::BadTable => write!(f, "malformed huffman table"),
        }
    }
}

impl std::error::Error for CodingError {}

/// JPEG DC category of a value: 0 for 0, otherwise `bit_length(|v|)`.
#[inline]
pub fn category(v: i32) -> u8 {
    let mag = v.unsigned_abs();
    (32 - mag.leading_zeros()) as u8
}

/// The `cat` magnitude bits of `v` (one's complement for negatives).
#[inline]
pub fn magnitude_bits(v: i32, cat: u8) -> u32 {
    if v >= 0 {
        v as u32
    } else {
        (v + (1 << cat) - 1) as u32
    }
}

/// Inverse of [`magnitude_bits`].
#[inline]
pub fn value_from_bits(bits: u32, cat: u8) -> i32 {
    if cat == 0 {
        0
    } else if bits >> (cat - 1) != 0 {
        bits as i32
    } else {
        bits as i32 - (1 << cat) + 1
    }
}

/// A canonical Huffman table over category symbols.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HuffTable {
    /// Code length per symbol (0 = unused symbol).
    pub lengths: Vec<u8>,
    /// Canonical code per symbol.
    pub codes: Vec<u16>,
}

impl HuffTable {
    /// Builds a length-limited (≤16) canonical Huffman table from symbol
    /// frequencies. Symbols with zero frequency get no code.
    ///
    /// # Panics
    ///
    /// Panics if all frequencies are zero.
    pub fn build(freqs: &[u64]) -> Self {
        assert!(freqs.iter().any(|&f| f > 0), "empty frequency table");
        let n = freqs.len();
        // Huffman via pairwise merge over (weight, node) heaps; then extract
        // depths. Simple O(n^2) is fine for ≤ MAX_CATEGORY+1 symbols.
        #[derive(Clone)]
        enum Node {
            Leaf(usize),
            Internal(Box<Node>, Box<Node>),
        }
        let mut heap: Vec<(u64, Node)> = freqs
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 0)
            .map(|(i, &f)| (f, Node::Leaf(i)))
            .collect();
        let mut lengths = vec![0u8; n];
        if heap.len() == 1 {
            // Single symbol: JPEG assigns it a 1-bit code.
            if let Node::Leaf(i) = heap[0].1 {
                lengths[i] = 1;
            }
        } else {
            while heap.len() > 1 {
                heap.sort_by_key(|(w, _)| std::cmp::Reverse(*w));
                let (wa, a) = heap.pop().expect("len > 1");
                let (wb, b) = heap.pop().expect("len > 1");
                heap.push((wa + wb, Node::Internal(Box::new(a), Box::new(b))));
            }
            fn walk(node: &Node, depth: u8, lengths: &mut [u8]) {
                match node {
                    Node::Leaf(i) => lengths[*i] = depth.max(1),
                    Node::Internal(a, b) => {
                        walk(a, depth + 1, lengths);
                        walk(b, depth + 1, lengths);
                    }
                }
            }
            walk(&heap[0].1, 0, &mut lengths);
        }
        // Limit lengths to 16 (cannot trigger with ≤ 12 symbols, kept for
        // dependability).
        for l in &mut lengths {
            if *l > 16 {
                *l = 16;
            }
        }
        Self::from_lengths(lengths)
    }

    /// Assigns canonical codes from lengths (shorter codes first, then by
    /// symbol index).
    pub fn from_lengths(lengths: Vec<u8>) -> Self {
        let mut symbols: Vec<usize> = (0..lengths.len()).filter(|&i| lengths[i] > 0).collect();
        symbols.sort_by_key(|&i| (lengths[i], i));
        let mut codes = vec![0u16; lengths.len()];
        let mut code = 0u16;
        let mut prev_len = 0u8;
        for &s in &symbols {
            code <<= lengths[s] - prev_len;
            codes[s] = code;
            code += 1;
            prev_len = lengths[s];
        }
        Self { lengths, codes }
    }

    /// Serializes JPEG-DHT style: 16 per-length counts, then symbols in
    /// canonical order.
    pub fn write(&self, w: &mut BitWriter) {
        let mut counts = [0u8; 16];
        let mut symbols: Vec<usize> = (0..self.lengths.len())
            .filter(|&i| self.lengths[i] > 0)
            .collect();
        symbols.sort_by_key(|&i| (self.lengths[i], i));
        for &s in &symbols {
            counts[self.lengths[s] as usize - 1] += 1;
        }
        for c in counts {
            w.put(c as u32, 8);
        }
        for s in symbols {
            w.put(s as u32, 8);
        }
    }

    /// Deserializes a table written by [`HuffTable::write`].
    ///
    /// # Errors
    ///
    /// Returns [`CodingError`] on truncated or inconsistent input.
    pub fn read(r: &mut BitReader<'_>) -> Result<Self, CodingError> {
        let mut counts = [0usize; 16];
        for c in &mut counts {
            *c = r.bits(8)? as usize;
        }
        let total: usize = counts.iter().sum();
        if total == 0 || total > MAX_CATEGORY + 1 {
            return Err(CodingError::BadTable);
        }
        let mut lengths = vec![0u8; MAX_CATEGORY + 1];
        for (len_idx, &cnt) in counts.iter().enumerate() {
            for _ in 0..cnt {
                let sym = r.bits(8)? as usize;
                if sym >= lengths.len() || lengths[sym] != 0 {
                    return Err(CodingError::BadTable);
                }
                lengths[sym] = len_idx as u8 + 1;
            }
        }
        Ok(Self::from_lengths(lengths))
    }

    /// Encodes one symbol.
    ///
    /// # Panics
    ///
    /// Panics if the symbol has no code (zero frequency at build time).
    pub fn encode(&self, sym: usize, w: &mut BitWriter) {
        let len = self.lengths[sym];
        assert!(len > 0, "symbol {sym} has no code");
        w.put(self.codes[sym] as u32, len);
    }

    /// Decodes one symbol.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError`] on invalid codes or exhausted input.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<usize, CodingError> {
        let mut code = 0u16;
        let mut len = 0u8;
        loop {
            code = (code << 1) | r.bit()? as u16;
            len += 1;
            if len > 16 {
                return Err(CodingError::BadCode);
            }
            for (s, (&l, &c)) in self.lengths.iter().zip(&self.codes).enumerate() {
                if l == len && c == code {
                    return Ok(s);
                }
            }
        }
    }
}

/// Encodes one restart segment: Huffman table header followed by
/// category+magnitude codes for every value; byte-aligned at the end.
pub fn encode_segment(values: &[i16]) -> Vec<u8> {
    let mut freqs = vec![0u64; MAX_CATEGORY + 1];
    for &v in values {
        freqs[category(v as i32) as usize] += 1;
    }
    if values.is_empty() {
        freqs[0] = 1;
    }
    let table = HuffTable::build(&freqs);
    let mut w = BitWriter::new();
    table.write(&mut w);
    for &v in values {
        let cat = category(v as i32);
        table.encode(cat as usize, &mut w);
        if cat > 0 {
            w.put(magnitude_bits(v as i32, cat), cat);
        }
    }
    w.into_bytes()
}

/// Decodes a segment produced by [`encode_segment`], returning `count`
/// values and the number of bytes consumed.
///
/// # Errors
///
/// Returns [`CodingError`] on malformed input.
pub fn decode_segment(bytes: &[u8], count: usize) -> Result<(Vec<i16>, usize), CodingError> {
    let mut r = BitReader::new(bytes);
    let table = HuffTable::read(&mut r)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let cat = table.decode(&mut r)? as u8;
        let bits = r.bits(cat)?;
        out.push(value_from_bits(bits, cat) as i16);
    }
    r.byte_align();
    Ok((out, r.bit_pos() / 8))
}

/// Entropy statistics of a value set under the category+magnitude model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EntropyStats {
    /// Shannon limit in bits per coefficient (category entropy + magnitude
    /// bits).
    pub shannon_bits: f64,
    /// Actual encoded bits per coefficient (including the table header).
    pub encoded_bits: f64,
    /// Compression ratio versus raw 8-bit storage.
    pub compression_ratio: f64,
}

/// Computes [`EntropyStats`] for `values` (assuming one segment).
pub fn entropy_stats(values: &[i16]) -> EntropyStats {
    let mut freqs = vec![0u64; MAX_CATEGORY + 1];
    let mut magnitude_bits_total = 0u64;
    for &v in values {
        let c = category(v as i32);
        freqs[c as usize] += 1;
        magnitude_bits_total += c as u64;
    }
    let n = values.len().max(1) as f64;
    let mut cat_entropy = 0.0;
    for &f in &freqs {
        if f > 0 {
            let p = f as f64 / n;
            cat_entropy -= p * p.log2();
        }
    }
    let shannon = cat_entropy + magnitude_bits_total as f64 / n;
    let encoded = encode_segment(values).len() as f64 * 8.0 / n;
    EntropyStats {
        shannon_bits: shannon,
        encoded_bits: encoded,
        compression_ratio: 8.0 / encoded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bit_writer_reader_round_trip() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0xAB, 8);
        w.put(1, 1);
        w.byte_align();
        w.put(0xFFFF, 16);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits(3).unwrap(), 0b101);
        assert_eq!(r.bits(8).unwrap(), 0xAB);
        assert_eq!(r.bits(1).unwrap(), 1);
        r.byte_align();
        assert_eq!(r.bits(16).unwrap(), 0xFFFF);
        assert_eq!(r.bit(), Err(CodingError::OutOfBits));
    }

    #[test]
    fn categories_match_jpeg_dc() {
        assert_eq!(category(0), 0);
        assert_eq!(category(1), 1);
        assert_eq!(category(-1), 1);
        assert_eq!(category(2), 2);
        assert_eq!(category(3), 2);
        assert_eq!(category(-128), 8);
        assert_eq!(category(127), 7);
        assert_eq!(category(255), 8);
    }

    #[test]
    fn magnitude_round_trip_all_8bit() {
        for v in -255i32..=255 {
            let c = category(v);
            let bits = magnitude_bits(v, c);
            assert!(bits < (1 << c.max(1)), "v={v}");
            assert_eq!(value_from_bits(bits, c), v, "v={v}");
        }
    }

    #[test]
    fn huffman_single_symbol() {
        let mut freqs = vec![0u64; 9];
        freqs[0] = 100;
        let t = HuffTable::build(&freqs);
        assert_eq!(t.lengths[0], 1);
        let mut w = BitWriter::new();
        t.encode(0, &mut w);
        assert_eq!(w.bit_len(), 1);
    }

    #[test]
    fn huffman_assigns_short_codes_to_frequent_symbols() {
        let freqs = vec![1000, 500, 100, 10, 1];
        let t = HuffTable::build(&freqs);
        assert!(t.lengths[0] <= t.lengths[4]);
        // Kraft inequality holds with equality for a complete code.
        let kraft: f64 = t
            .lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-12);
    }

    #[test]
    fn table_serialization_round_trip() {
        let freqs = vec![10, 20, 5, 0, 7, 1, 0, 0, 2];
        let t = HuffTable::build(&freqs);
        let mut w = BitWriter::new();
        t.write(&mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let t2 = HuffTable::read(&mut r).unwrap();
        // Lengths must agree for symbols with codes (canonical => same codes).
        for (i, (&l, &l2)) in t.lengths.iter().zip(&t2.lengths).enumerate() {
            assert_eq!(l, l2, "symbol {i}");
        }
    }

    #[test]
    fn segment_round_trip_typical_weights() {
        // Laplacian-ish small weights, the typical post-training shape.
        let values: Vec<i16> = (0..512)
            .map(|i| {
                let x = ((i * 37) % succinct_mod(i)) as i16 - 8;
                x.clamp(-128, 127)
            })
            .collect();
        let bytes = encode_segment(&values);
        let (decoded, used) = decode_segment(&bytes, values.len()).unwrap();
        assert_eq!(decoded, values);
        assert_eq!(used, bytes.len());
    }

    fn succinct_mod(i: usize) -> usize {
        17 + (i % 3)
    }

    #[test]
    fn compression_ratio_in_paper_range_for_peaked_weights() {
        // Quantized CNN weights are near-Laplacian: most values tiny. The
        // paper reports 1.1-1.5x compression.
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        let values: Vec<i16> = (0..4096)
            .map(|_| {
                let u: f64 = rng.gen_range(-1.0..1.0);
                // heavier tail than uniform, like trained weights
                (u.powi(3) * 90.0) as i16
            })
            .collect();
        let stats = entropy_stats(&values);
        assert!(
            stats.compression_ratio > 1.05 && stats.compression_ratio < 1.9,
            "ratio {}",
            stats.compression_ratio
        );
        assert!(
            stats.encoded_bits >= stats.shannon_bits - 0.01,
            "cannot beat Shannon: {} vs {}",
            stats.encoded_bits,
            stats.shannon_bits
        );
        // Close to the Shannon limit (Table 5's observation), allowing the
        // table header overhead.
        assert!(stats.encoded_bits < stats.shannon_bits + 0.6);
    }

    #[test]
    fn empty_segment_is_decodable() {
        let bytes = encode_segment(&[]);
        let (decoded, _) = decode_segment(&bytes, 0).unwrap();
        assert!(decoded.is_empty());
    }

    proptest! {
        #[test]
        fn prop_segment_round_trip(values in proptest::collection::vec(-128i16..=127, 0..600)) {
            let bytes = encode_segment(&values);
            let (decoded, used) = decode_segment(&bytes, values.len()).unwrap();
            prop_assert_eq!(decoded, values);
            prop_assert_eq!(used, bytes.len());
        }

        #[test]
        fn prop_magnitude_bits_invertible(v in -2000i32..2000) {
            let c = category(v);
            prop_assert_eq!(value_from_bits(magnitude_bits(v, c), c), v);
        }
    }
}
