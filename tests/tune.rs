//! Plan-time autotuner: static culling, strict admission, tuning-record
//! replay and the unified `EngineConfig` coherence checks.
//!
//! Everything here runs tiny denoising models at tiny custom
//! [`RealTimeSpec`]s so the timed stage stays in the millisecond range;
//! the full eSR-4K acceptance run lives in the release-mode
//! `bench_autotune` binary.

use ecnn_repro::core::tune::CandidateStatus;
use ecnn_repro::core::{Kernels, VerifyMode};
use ecnn_repro::prelude::*;
use ecnn_repro::tensor::{ImageKind, SyntheticImage};

/// A 96x96 output target: small enough that even the debug-mode timed
/// stage is a handful of milliseconds per frame.
const TINY: RealTimeSpec = RealTimeSpec {
    name: "tiny96",
    width: 96,
    height: 96,
    fps: 30.0,
};

fn tiny_builder() -> EngineBuilder {
    Engine::builder()
        .ernet(ErNetSpec::new(ErNetTask::Dn, 1, 1, 0))
        .block(48)
        .realtime(TINY)
}

fn tiny_space() -> TuneSpace {
    TuneSpace {
        blocks: vec![48],
        workers: vec![1, 2],
        kernels: vec![Kernels::Simd, Kernels::Reference],
        coalesce: vec![true, false],
    }
}

fn tiny_options() -> TuneOptions {
    TuneOptions {
        space: tiny_space(),
        shortlist: 2,
        ..TuneOptions::default()
    }
}

/// The tentpole contract: candidates are admitted under Strict, ranked
/// statically, at least half the space never reaches timing, the default
/// config is always timed, and the pinned winner is measured no slower
/// than the default.
#[test]
fn autotune_culls_statically_and_pins_a_measured_winner() {
    let (engine, report) = tiny_builder().autotune(&tiny_options()).unwrap();

    // 1 block x 2 workers x 2 kernels x 2 layouts; the default config
    // (48, serial, SIMD, coalesced) is part of the cross product.
    assert_eq!(report.enumerated, 8);
    assert_eq!(
        report.rejected + report.culled + report.timed,
        report.enumerated,
        "every candidate is accounted for"
    );
    assert!(
        report.static_cull_permille() >= 500,
        "at least half the space must be eliminated before timing: {report}"
    );
    // The shortlist (2) plus possibly the default config.
    assert!(report.timed >= 2 && report.timed <= 3, "{report}");

    // The default config was timed, and the winner is measured no slower.
    let default_ns = report
        .default_ns_per_frame
        .expect("the default config is always timed");
    assert!(
        report.record.measured_ns_per_frame <= default_ns,
        "winner {} ns must be <= default {} ns",
        report.record.measured_ns_per_frame,
        default_ns
    );

    // The returned engine runs the pinned config, strict-verified.
    assert_eq!(engine.config(), &report.record.config);
    assert_eq!(engine.config().verify, VerifyMode::Strict);
    assert!(engine.verify_report().is_some());

    // The winner is one of the timed candidates.
    assert!(report.candidates.iter().any(|c| c.config
        == report.record.config
        && matches!(c.status, CandidateStatus::Timed(ns) if ns == report.record.measured_ns_per_frame)));
}

/// Round trip: serialize the pinned record, replay it through
/// `EngineBuilder::tuned`, and get an identical resolved config and
/// bit-identical pixels.
#[test]
fn tuning_record_replays_to_identical_config_and_output() {
    let (engine, report) = tiny_builder().autotune(&tiny_options()).unwrap();
    let json = report.record.to_json();
    let record = TuningRecord::from_json(&json).unwrap();
    assert_eq!(record, report.record);

    let replayed = tiny_builder().tuned(record.clone()).build().unwrap();
    assert_eq!(replayed.config(), engine.config());

    let img = SyntheticImage::new(ImageKind::Mixed, 11).rgb(96, 96);
    let (tuned_out, _) = engine.run_image_auto(&img).unwrap();
    let (replayed_out, _) = replayed.run_image_auto(&img).unwrap();
    assert_eq!(tuned_out, replayed_out, "replay must be bit-identical");
}

/// A record tuned for one deployment cannot silently misconfigure
/// another: a different model or resolution is a structured error.
#[test]
fn tuning_record_rejects_fingerprint_mismatch() {
    let (_, report) = tiny_builder().autotune(&tiny_options()).unwrap();
    let record = report.record;

    // Same model, different resolution.
    let other_spec = RealTimeSpec {
        name: "tiny144",
        width: 144,
        height: 144,
        fps: 30.0,
    };
    let err = Engine::builder()
        .ernet(ErNetSpec::new(ErNetTask::Dn, 1, 1, 0))
        .realtime(other_spec)
        .tuned(record.clone())
        .build()
        .unwrap_err();
    match err {
        EngineError::Config { param, detail } => {
            assert_eq!(param, "tuning-record");
            assert!(detail.contains("fingerprint mismatch"), "{detail}");
        }
        other => panic!("expected Config error, got {other:?}"),
    }

    // Different model, same resolution.
    let err = Engine::builder()
        .ernet(ErNetSpec::new(ErNetTask::Dn, 2, 1, 0))
        .realtime(TINY)
        .tuned(record.clone())
        .build()
        .unwrap_err();
    assert!(matches!(err, EngineError::Config { param, .. } if param == "tuning-record"));

    // The matching workload still replays fine.
    assert!(tiny_builder().tuned(record).build().is_ok());
}

/// A candidate the strict build rejects (incoherent worker count, block
/// the compiler refuses) is never timed, and can never be pinned.
#[test]
fn autotune_never_times_a_rejected_candidate() {
    let opts = TuneOptions {
        space: TuneSpace {
            // 7 is not a feasible block side for this model; 0 workers is
            // incoherent. Both must die at admission, not at timing.
            blocks: vec![48, 7],
            workers: vec![1, 0],
            kernels: vec![Kernels::Simd],
            coalesce: vec![true],
        },
        shortlist: 8,
        ..TuneOptions::default()
    };
    let (_, report) = tiny_builder().autotune(&opts).unwrap();
    assert!(report.rejected >= 2, "{report}");
    for c in &report.candidates {
        if matches!(c.status, CandidateStatus::Rejected(_)) {
            assert_ne!(
                c.config, report.record.config,
                "a rejected config must never be pinned"
            );
        }
    }
    // The pinned config still admits under Strict on a fresh build.
    assert!(tiny_builder()
        .engine_config(report.record.config)
        .build()
        .is_ok());
}

/// `EngineBuilder::build` rejects incoherent knob combinations with a
/// structured error instead of silently falling back.
#[test]
fn build_rejects_incoherent_config_combinations() {
    // Explicit coalescing with the verifier off: no license to coalesce.
    let err = tiny_builder()
        .coalesce(true)
        .verify(VerifyMode::Off)
        .build()
        .unwrap_err();
    assert!(
        matches!(err, EngineError::Config { param, .. } if param == "coalesce"),
        "got {err:?}"
    );

    // Zero workers.
    let err = tiny_builder().workers(0).build().unwrap_err();
    assert!(matches!(err, EngineError::Config { param, .. } if param == "workers"));

    // Zero block size, via the all-at-once setter.
    let err = Engine::builder()
        .ernet(ErNetSpec::new(ErNetTask::Dn, 1, 1, 0))
        .engine_config(EngineConfig {
            block: 0,
            ..EngineConfig::new(48)
        })
        .build()
        .unwrap_err();
    assert!(matches!(err, EngineError::Config { param, .. } if param == "block"));

    // Verify(Off) with coalesce left *unset* is coherent: it resolves to
    // the keyed layout rather than erroring.
    let engine = tiny_builder().verify(VerifyMode::Off).build().unwrap();
    assert!(!engine.coalesced());
    assert!(engine.verify_report().is_none());
}

/// The builder setters, `engine_config` and the resolved `Engine::config`
/// agree: one serializable struct is the source of truth.
#[test]
fn resolved_config_reflects_every_knob() {
    let cfg = EngineConfig {
        block: 48,
        workers: 3,
        kernels: Kernels::Reference,
        coalesce: false,
        verify: VerifyMode::Strict,
        faults: None,
    };
    let via_setters = tiny_builder()
        .workers(3)
        .kernels(Kernels::Reference)
        .coalesce(false)
        .verify(VerifyMode::Strict)
        .build()
        .unwrap();
    let via_struct = Engine::builder()
        .ernet(ErNetSpec::new(ErNetTask::Dn, 1, 1, 0))
        .realtime(TINY)
        .engine_config(cfg.clone())
        .build()
        .unwrap();
    assert_eq!(via_setters.config(), &cfg);
    assert_eq!(via_struct.config(), &cfg);
    assert_eq!(via_setters.workers(), 3);
    assert_eq!(via_setters.kernels(), Kernels::Reference);
    assert!(!via_setters.coalesced());
    // The machine (hardware) config is a separate axis.
    assert_eq!(
        via_setters.machine().total_bb_bytes(),
        via_struct.machine().total_bb_bytes()
    );
    // And the config itself round-trips through its JSON form.
    assert_eq!(EngineConfig::from_json(&cfg.to_json()).unwrap(), cfg);
}

/// `run_image_auto` / `async_session_auto` follow the resolved worker
/// count and stay bit-identical to the serial path.
#[test]
fn auto_paths_follow_resolved_workers_bit_identically() {
    let serial = tiny_builder().build().unwrap();
    let parallel = tiny_builder().workers(2).build().unwrap();
    assert_eq!(parallel.workers(), 2);

    let img = SyntheticImage::new(ImageKind::Texture, 3).rgb(96, 96);
    let (serial_out, _) = serial.run_image(&img).unwrap();
    let (auto_out, _) = parallel.run_image_auto(&img).unwrap();
    assert_eq!(auto_out, serial_out);

    let mut pipelined = parallel.async_session_auto();
    assert_eq!(pipelined.workers(), 2);
    let ticket = pipelined.submit(img.clone()).unwrap();
    let (pipe_out, _) = pipelined.wait(ticket).unwrap();
    assert_eq!(pipe_out, serial_out);
}

/// The unified `ECNN_*` override namespace: parsed in one place, pure,
/// invalid values tolerated but recorded.
#[test]
fn env_override_namespace_parses_and_applies() {
    let overrides = EnvOverrides::parse([
        ("ECNN_KERNELS", "reference".to_string()),
        ("ECNN_WORKERS", "2".to_string()),
        ("ECNN_COALESCE", "false".to_string()),
        ("ECNN_VERIFY", "strict".to_string()),
        ("ECNN_WORKERS", "banana".to_string()), // later invalid value: noted, ignored
    ]);
    assert_eq!(overrides.kernels, Some(Kernels::Reference));
    assert_eq!(overrides.coalesce, Some(false));
    assert_eq!(overrides.verify, Some(VerifyMode::Strict));
    assert_eq!(overrides.notes.len(), 5);
    assert!(overrides.notes.iter().any(|n| n.contains("ignored")));

    let mut cfg = EngineConfig::new(48);
    overrides.apply(&mut cfg);
    assert_eq!(cfg.kernels, Kernels::Reference);
    assert!(!cfg.coalesce);
    assert_eq!(cfg.verify, VerifyMode::Strict);
}
