//! DRAM substrate: interface catalog and power model.
//!
//! The paper's headline system claim is that block-based inference lets eCNN
//! run 4K UHD 30 fps from *low-end* DRAM (DDR-400) while frame-based
//! accelerators (Diffy) need dual-channel DDR3-2133. This crate provides:
//!
//! * [`DramConfig`] — a catalog of the DRAM interfaces named in the paper
//!   with peak bandwidths, ordered so "the smallest sufficient interface"
//!   is well-defined ([`DramConfig::minimal_for`]).
//! * [`DramPowerModel`] — a Micron-power-calculator-style DDR4 model
//!   (background + activate + read/write energy) used for Fig. 21. The
//!   constants are calibrated to the paper's reported operating point
//!   (≲120 mW dynamic at ≤1.66 GB/s, 267 mW leakage on DDR4-3200); see
//!   DESIGN.md §4.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
use serde::{Deserialize, Serialize};
use std::fmt;

/// A DRAM interface with its peak theoretical bandwidth.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Marketing name (e.g. `DDR-400`).
    pub name: &'static str,
    /// Peak bandwidth in bytes per second.
    pub peak_bytes_per_sec: f64,
    /// Channel count (dual-channel configs double the single-channel peak).
    pub channels: u32,
}

impl DramConfig {
    /// DDR-200 (SDR-era DDR, 1.6 GB/s).
    pub const DDR_200: DramConfig = DramConfig {
        name: "DDR-200",
        peak_bytes_per_sec: 1.6e9,
        channels: 1,
    };
    /// DDR-266 (2.1 GB/s).
    pub const DDR_266: DramConfig = DramConfig {
        name: "DDR-266",
        peak_bytes_per_sec: 2.1e9,
        channels: 1,
    };
    /// DDR-400 (3.2 GB/s) — all eCNN needs for UHD30 (Section 7.2).
    pub const DDR_400: DramConfig = DramConfig {
        name: "DDR-400",
        peak_bytes_per_sec: 3.2e9,
        channels: 1,
    };
    /// Single-channel DDR3-1333 (10.7 GB/s).
    pub const DDR3_1333: DramConfig = DramConfig {
        name: "DDR3-1333",
        peak_bytes_per_sec: 10.7e9,
        channels: 1,
    };
    /// Dual-channel DDR3-1333 (21.3 GB/s) — IDEAL's configuration.
    pub const DDR3_1333_X2: DramConfig = DramConfig {
        name: "2xDDR3-1333",
        peak_bytes_per_sec: 21.3e9,
        channels: 2,
    };
    /// Dual-channel DDR3-2133 (34.1 GB/s) — Diffy's configuration.
    pub const DDR3_2133_X2: DramConfig = DramConfig {
        name: "2xDDR3-2133",
        peak_bytes_per_sec: 34.1e9,
        channels: 2,
    };
    /// DDR4-3200 (25.6 GB/s) — the device the power model evaluates.
    pub const DDR4_3200: DramConfig = DramConfig {
        name: "DDR4-3200",
        peak_bytes_per_sec: 25.6e9,
        channels: 1,
    };

    /// Catalog in ascending peak-bandwidth order.
    pub const CATALOG: [DramConfig; 7] = [
        Self::DDR_200,
        Self::DDR_266,
        Self::DDR_400,
        Self::DDR3_1333,
        Self::DDR3_1333_X2,
        Self::DDR4_3200,
        Self::DDR3_2133_X2,
    ];

    /// True when `bytes_per_sec` of sustained traffic fits within
    /// `utilization` of the peak (real controllers cannot sustain 100%).
    pub fn supports(&self, bytes_per_sec: f64, utilization: f64) -> bool {
        bytes_per_sec <= self.peak_bytes_per_sec * utilization
    }

    /// The smallest catalog interface sustaining `bytes_per_sec` at the given
    /// achievable `utilization` (e.g. 0.8), or `None` if even dual-channel
    /// DDR3-2133 cannot.
    pub fn minimal_for(bytes_per_sec: f64, utilization: f64) -> Option<DramConfig> {
        Self::CATALOG
            .iter()
            .find(|c| c.supports(bytes_per_sec, utilization))
            .copied()
    }
}

impl fmt::Display for DramConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.1} GB/s)",
            self.name,
            self.peak_bytes_per_sec / 1e9
        )
    }
}

/// Breakdown of DRAM power in milliwatts.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DramPower {
    /// Always-on background/leakage power.
    pub background_mw: f64,
    /// Row-activation power for the streamed traffic.
    pub activate_mw: f64,
    /// Read burst power.
    pub read_mw: f64,
    /// Write burst power.
    pub write_mw: f64,
}

impl DramPower {
    /// Dynamic (traffic-proportional) power: activate + read + write.
    pub fn dynamic_mw(&self) -> f64 {
        self.activate_mw + self.read_mw + self.write_mw
    }

    /// Total power including background.
    pub fn total_mw(&self) -> f64 {
        self.background_mw + self.dynamic_mw()
    }
}

/// Micron-calculator-style DDR4 power model: energy per transferred byte for
/// reads/writes plus amortized row-activation energy, on top of a constant
/// background term.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DramPowerModel {
    /// Background (IDD2N/IDD3N mix + leakage) in milliwatts.
    pub background_mw: f64,
    /// Read energy in picojoules per byte.
    pub rd_pj_per_byte: f64,
    /// Write energy in picojoules per byte.
    pub wr_pj_per_byte: f64,
    /// Amortized activate/precharge energy per byte of streamed traffic
    /// (sequential block streams hit each row once).
    pub act_pj_per_byte: f64,
}

impl DramPowerModel {
    /// DDR4-3200 constants calibrated to the paper's operating point:
    /// 267 mW leakage/background; ≈65–110 mW dynamic in the 0.5–1.66 GB/s
    /// range ("less than 120 mW", Section 7.2).
    pub const DDR4_3200: DramPowerModel = DramPowerModel {
        background_mw: 267.0,
        rd_pj_per_byte: 30.0,
        wr_pj_per_byte: 34.0,
        act_pj_per_byte: 8.0,
    };

    /// Evaluates the model at the given sustained read/write bandwidths.
    pub fn power(&self, read_bytes_per_sec: f64, write_bytes_per_sec: f64) -> DramPower {
        let total = read_bytes_per_sec + write_bytes_per_sec;
        DramPower {
            background_mw: self.background_mw,
            activate_mw: total * self.act_pj_per_byte * 1e-12 * 1e3,
            read_mw: read_bytes_per_sec * self.rd_pj_per_byte * 1e-12 * 1e3,
            write_mw: write_bytes_per_sec * self.wr_pj_per_byte * 1e-12 * 1e3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_by_bandwidth() {
        for w in DramConfig::CATALOG.windows(2) {
            assert!(w[0].peak_bytes_per_sec <= w[1].peak_bytes_per_sec);
        }
    }

    #[test]
    fn paper_spec_mapping_holds() {
        // Section 7.2: DDR-400 suffices for UHD30 (1.66 GB/s), DDR-266 for
        // HD60 (0.94 GB/s), DDR-200 for HD30 (0.5 GB/s). The paper's own
        // pairings imply ~55% sustained-utilization headroom (1.66/3.2).
        let u = 0.55;
        assert_eq!(DramConfig::minimal_for(1.66e9, u).unwrap().name, "DDR-400");
        assert_eq!(DramConfig::minimal_for(0.94e9, u).unwrap().name, "DDR-266");
        assert_eq!(DramConfig::minimal_for(0.5e9, u).unwrap().name, "DDR-200");
    }

    #[test]
    fn vdsr_frame_based_needs_more_than_any_catalog_entry() {
        // Section 2: 303 GB/s for uncompressed VDSR features at HD30.
        assert_eq!(DramConfig::minimal_for(303e9, 0.8), None);
    }

    #[test]
    fn diffy_fits_dual_channel_ddr3_2133_only() {
        // 34 GB/s class traffic fits only the largest entry.
        let cfg = DramConfig::minimal_for(22e9, 0.8).unwrap();
        assert_eq!(cfg.name, "2xDDR3-2133");
    }

    #[test]
    fn supports_respects_utilization() {
        assert!(DramConfig::DDR_400.supports(2.5e9, 0.8));
        assert!(!DramConfig::DDR_400.supports(2.7e9, 0.8));
        assert!(DramConfig::DDR_400.supports(2.7e9, 0.9));
    }

    #[test]
    fn dynamic_power_below_120mw_at_ecnn_traffic() {
        // Paper: "the small bandwidth of eCNN consumes only less than 120 mW
        // of dynamic power ... while the leakage power consumes 267 mW."
        let m = DramPowerModel::DDR4_3200;
        // DnERNet UHD30: 1.66 GB/s total (reads ~0.91, writes ~0.75).
        let p = m.power(0.91e9, 0.75e9);
        assert!(p.dynamic_mw() < 120.0, "dynamic {}", p.dynamic_mw());
        assert!(p.dynamic_mw() > 20.0, "dynamic {}", p.dynamic_mw());
        assert_eq!(p.background_mw, 267.0);
        assert!((p.total_mw() - (267.0 + p.dynamic_mw())).abs() < 1e-9);
    }

    #[test]
    fn power_scales_linearly_with_traffic() {
        let m = DramPowerModel::DDR4_3200;
        let p1 = m.power(1e9, 1e9);
        let p2 = m.power(2e9, 2e9);
        assert!((p2.dynamic_mw() / p1.dynamic_mw() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_format() {
        assert_eq!(DramConfig::DDR_400.to_string(), "DDR-400 (3.2 GB/s)");
    }
}
