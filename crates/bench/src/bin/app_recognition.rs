//! Section 7.3: the object-recognition case study — the 40-layer residual
//! classifier: fps, DRAM traffic, energy per image, and a small synthetic
//! training run demonstrating the classification path.

use ecnn_bench::{bench_scale, section};
use ecnn_isa::compile::compile;
use ecnn_isa::params::QuantizedModel;
use ecnn_model::zoo;
use ecnn_nn::data::make_classification_dataset;
use ecnn_nn::float_model::FloatModel;
use ecnn_nn::train::{eval_accuracy, train_classifier, TrainConfig};
use ecnn_sim::cost::{AreaReport, PowerModel};
use ecnn_sim::timing::simulate_frame;
use ecnn_sim::EcnnConfig;

fn main() {
    section("Section 7.3: object recognition on eCNN (Fig. 22b)");
    let model = zoo::recognition(1000);
    println!(
        "{}: {} CONV3x3 layers, {:.1}M parameters (paper: 40 layers, ~5M)",
        model.name(),
        model.depth_conv3x3(),
        model.param_count() as f64 / 1e6
    );
    let qm = QuantizedModel::uniform(&model);
    let c = compile(&qm, 224).expect("compiles");
    let cfg = EcnnConfig::paper().with_param_memory_scale(3);
    let f = simulate_frame(&c, &model, &cfg, 1, 1); // one block = one image
    let fps = 1.0 / f.seconds_per_frame;
    let power = PowerModel::paper_40nm().evaluate(&f);
    println!("throughput: {fps:.0} images/s (paper: 1344 fps, 0.74 ms/image)");
    println!(
        "DRAM: {:.0} KB/image, {:.0} MB/s (paper: 231 KB, 308 MB/s)",
        (f.di_bytes_per_frame + f.do_bytes_per_frame) as f64 / 1024.0,
        (f.di_bytes_per_frame + f.do_bytes_per_frame) as f64 * fps / 1e6
    );
    println!(
        "energy: {:.2} mJ/image (paper: 5.25 mJ; Eyeriss VGG-16: 337 mJ)",
        power.total_w() * f.seconds_per_frame * 1e3
    );
    println!(
        "parameter memory: {} KB of {} KB (3x scaled; area {:.2} mm2, paper 63.99)",
        c.packed.total_bytes() / 1024,
        cfg.param_memory_bytes / 1024,
        AreaReport::paper_40nm(3.0).total_mm2()
    );

    section("synthetic classification demo (scaled-down trainer)");
    // A thin stand-in trained on 32x32 4-class textures to exercise the
    // classification path end to end.
    let tiny = zoo::recognition_tiny(4);
    let mut fm = FloatModel::from_model(&tiny, 3);
    let data = make_classification_dataset(32, 32, 4, 5);
    let val = make_classification_dataset(16, 32, 4, 9999);
    let steps = 60 * bench_scale();
    train_classifier(
        &mut fm,
        &data,
        TrainConfig {
            steps,
            batch: 4,
            lr: 1e-3,
            seed: 2,
            threads: 2,
        },
    );
    println!(
        "tiny classifier top-1 on synthetic 4-class: {:.0}% (chance 25%)",
        eval_accuracy(&fm, &val) * 100.0
    );
}
