//! Ablation: recompute-overlaps (block flow) vs fused-layer line buffers vs
//! frame-based DRAM streaming, across model depth.

use ecnn_baselines::framebased::frame_based_feature_bandwidth;
use ecnn_baselines::fusion::fused_line_buffer_bytes;
use ecnn_bench::section;
use ecnn_model::blockflow::{nbr, ncr};
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_model::ChannelMode;

fn main() {
    section("ablation: the three flows across DnERNet depth (Full HD 30fps)");
    println!(
        "{:>4} {:>14} {:>14} {:>14} {:>10}",
        "B", "frame GB/s", "fusion SRAM", "block GB/s", "block NCR"
    );
    for b in [1usize, 3, 6, 9, 12, 15] {
        let m = ErNetSpec::new(ErNetTask::Dn, b, 1, 0).build().unwrap();
        let frame = frame_based_feature_bandwidth(&m, 1920, 1080, 30.0, 8);
        let sram = fused_line_buffer_bytes(&m, 1920, 8);
        let block_nbr = nbr(&m, 128.0, 1.0).unwrap();
        let block_bw = 1920.0 * 1080.0 * 3.0 * 30.0 * block_nbr;
        let block_ncr = ncr(&m, 128.0, ChannelMode::Hardware).unwrap();
        println!(
            "{b:>4} {:>12.1}GB {:>12.1}MB {:>12.2}GB {:>10.2}",
            frame / 1e9,
            sram / 1e6,
            block_bw / 1e9,
            block_ncr
        );
    }
    println!("\n(the block flow trades bounded recomputation — NCR — for a ~100x");
    println!(" DRAM reduction without fusion's depth-linear SRAM)");
}
