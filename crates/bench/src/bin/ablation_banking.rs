//! Ablation (Fig. 17): eight-bank block-buffer mapping — normal vs
//! interleaved under pixel-shuffle writes.

use ecnn_bench::section;
use ecnn_sim::banking::{shuffle_write_stalls, BankMapping};

fn main() {
    section("Fig. 17 ablation: bank conflicts for pixel-shuffle writes");
    println!(
        "{:>14} {:>12} {:>14}",
        "block (tiles)", "normal", "interleaved"
    );
    for (w, h) in [(16, 16), (24, 24), (29, 29), (32, 32), (32, 63), (48, 48)] {
        println!(
            "{:>10}x{:<3} {:>12} {:>14}",
            w,
            h,
            shuffle_write_stalls(w, h, BankMapping::Normal),
            shuffle_write_stalls(w, h, BankMapping::Interleaved)
        );
    }
    println!("\n(normal mapping conflicts exactly when the row length in tiles is a");
    println!(" multiple of 8 — the 128-pixel block case; interleaved is conflict-free)");
}
