//! Quickstart: build a DnERNet with the fluent engine builder, stream
//! images through the bit-exact block pipeline and print the system
//! report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ecnn_repro::prelude::*;
use ecnn_repro::tensor::{ImageKind, SyntheticImage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper's UHD30 denoiser — DnERNet-B3R1N0 (six CONV3x3
    //    layers) — compiled for 128x128 input blocks with deterministic
    //    demo parameters (train real ones with ecnn-nn; see the
    //    train_and_quantize example).
    let engine = Engine::builder()
        .ernet(ErNetSpec::new(ErNetTask::Dn, 3, 1, 0))
        .block(128)
        .realtime(RealTimeSpec::UHD30)
        .build()?;
    println!("model: {}", engine.model());

    // 2. The compiled FBISA program — the six-line listing of the
    //    paper's Fig. 18.
    println!("{}", engine.compiled().program);

    // 3. Stream frames through the block-partitioned, bit-exact
    //    simulator. The session allocates its block/stitch buffers once
    //    and reuses them for every frame.
    let mut session = engine.session();
    for seed in 0..3 {
        let frame = SyntheticImage::new(ImageKind::Mixed, seed).rgb(256, 256);
        let output = session.process(&frame)?;
        println!("frame {seed}: output {:?}", output.shape());
    }
    let stats = session.total_stats();
    println!(
        "streamed {} frames: {} blocks, {} instructions",
        session.frames(),
        stats.blocks,
        stats.exec.instructions
    );

    // 4. Report throughput / bandwidth / power at 4K UHD 30 fps.
    println!("{}", engine.system_report());
    Ok(())
}
