//! Runs every table/figure regeneration binary in sequence (the full
//! evaluation suite), then closes with the unified cross-backend summary.
//! Equivalent to invoking each `--bin` by hand.

use ecnn_baselines::registry;
use ecnn_bench::{section, workload_row};
use ecnn_core::engine::FrameReport;
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_model::RealTimeSpec;
use std::process::Command;

fn main() {
    let bins = [
        "motivation_bandwidth",
        "fig2_sparsity",
        "fig5_overheads",
        "fig8_model_scan",
        "table1_isa",
        "table2_config",
        "table3_training",
        "table4_psnr",
        "table5_quant",
        "fig18_program",
        "table6_area_power",
        "fig19_inference",
        "fig20_power",
        "fig21_dram",
        "table7_comparison",
        "tableA1_dn12",
        "app_style_transfer",
        "app_recognition",
        "ablation_banking",
        "ablation_recompute",
    ];
    let exe = std::env::current_exe().expect("self path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for bin in bins {
        println!("\n################ {bin} ################");
        let status = Command::new(dir.join(bin)).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("{bin} failed: {other:?}");
                failures.push(bin);
            }
        }
    }
    if !failures.is_empty() {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
    println!("\nall {} experiments regenerated", bins.len());

    section("cross-backend summary (one workload, every registered flow)");
    let w = workload_row(
        ErNetSpec::new(ErNetTask::Dn, 3, 1, 0),
        128,
        RealTimeSpec::UHD30,
    );
    let reports: Vec<FrameReport> = registry()
        .iter()
        .map(|b| b.frame_report(&w).expect("all backends report"))
        .collect();
    println!("{}", FrameReport::table(&reports));
}
