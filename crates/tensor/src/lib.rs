//! Tensors, dynamic fixed-point formats, and image utilities for the eCNN
//! reproduction.
//!
//! This crate is the lowest layer of the workspace. It provides:
//!
//! * [`Tensor`] — a dense channel-major (CHW) tensor used both by the f32
//!   training substrate and by the bit-exact fixed-point simulator.
//! * [`QFormat`] — the paper's dynamic 8-bit Q-format (Section 4.3): signed
//!   `Qn` and unsigned `UQn` with per-layer fractional precision, including
//!   the L1-/L2-norm precision search of Eq. (4).
//! * [`conv`] — reference convolution kernels (floating point and
//!   full-precision fixed point) that the hardware simulator is validated
//!   against.
//! * [`image`] — procedural image synthesis (the offline stand-in for
//!   DIV2K/Waterloo), degradation operators (noise, downsampling) and PSNR.
//!
//! # Example
//!
//! ```
//! use ecnn_tensor::{Tensor, QFormat};
//!
//! let t = Tensor::from_fn(3, 4, 4, |c, y, x| (c + y + x) as f32 * 0.1);
//! let q = QFormat::signed(5);
//! let fixed = q.quantize_tensor(&t);
//! let back = q.dequantize_tensor(&fixed);
//! assert!((back.at(1, 2, 3) - t.at(1, 2, 3)).abs() <= q.step());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
pub mod conv;
pub mod image;
pub mod qformat;
pub mod tensor;

pub use conv::{conv1x1_f32, conv3x3_f32, conv3x3_fixed, Padding};
pub use image::{psnr, ImageKind, SyntheticImage};
pub use qformat::{QFormat, QuantizedTensor};
pub use tensor::Tensor;
