//! Supervised execution end to end: deterministic fault injection,
//! band retry/backoff, worker respawn, frame deadlines, and the
//! verifier-licensed kernel-degradation ladder.
//!
//! Every test runs the tiny Dn ERNet at 56x56 so even the retried runs
//! stay in the millisecond range; the eSR-4K acceptance run lives in the
//! release-mode `fault_matrix` binary. All fault decisions are pure
//! functions of pinned seeds — nothing here can flake.

use ecnn_core::engine::EngineError;
use ecnn_core::pipe::AsyncSession;
use ecnn_core::supervise::ATTEMPT_BUCKETS;
use ecnn_core::{FaultPlan, Kernels, SupervisorPolicy};
use ecnn_model::ernet::{ErNetSpec, ErNetTask};
use ecnn_model::RealTimeSpec;
use ecnn_tensor::{ImageKind, SyntheticImage, Tensor};
use std::time::Duration;

fn builder() -> ecnn_core::engine::EngineBuilder {
    ecnn_core::Engine::builder()
        .ernet(ErNetSpec::new(ErNetTask::Dn, 2, 1, 0))
        .block(40)
        .realtime(RealTimeSpec::HD30)
}

fn frames(n: usize) -> Vec<Tensor<f32>> {
    (0..n)
        .map(|s| SyntheticImage::new(ImageKind::Mixed, 90 + s as u64).rgb(56, 56))
        .collect()
}

/// A policy with enough attempts to survive high fault rates and a
/// backoff short enough for debug-mode tests.
fn patient() -> SupervisorPolicy {
    SupervisorPolicy {
        max_attempts: 8,
        backoff_base: Duration::from_micros(200),
        backoff_cap: Duration::from_millis(2),
        ..SupervisorPolicy::default()
    }
}

/// The acceptance claim: with a seeded plan panicking and corrupting a
/// quarter of band dispatches, the supervised session completes every
/// frame bit-identical to the fault-free run, and the supervisor's
/// interventions are visible in both the per-frame and session stats.
#[test]
fn faulty_run_is_bit_identical_to_fault_free() {
    let clean = builder().build().unwrap();
    let faulty = builder()
        .faults(FaultPlan::parse("seed=42;panic@120;corrupt@130").unwrap())
        .build()
        .unwrap();
    assert!(faulty.fault_plan().is_some());

    let frames = frames(6);
    let reference = clean.session().run_frames(frames.iter()).unwrap();

    let mut session = AsyncSession::with_policy(&faulty, 2, 4, patient());
    let tickets: Vec<_> = frames
        .iter()
        .map(|f| session.submit(f.clone()).unwrap())
        .collect();
    let results = session.drain().unwrap();
    assert_eq!(results.len(), frames.len());
    for (i, (out, _)) in results.iter().enumerate() {
        assert_eq!(out, &reference[i], "frame {i} must be bit-identical");
    }
    drop(tickets);

    let stats = session.supervisor_stats();
    assert!(
        stats.counters.faults_injected > 0,
        "the seeded plan must actually fire: {stats}"
    );
    assert!(
        stats.counters.retries > 0,
        "injected failures must be retried: {stats}"
    );
    // Every band settled exactly once: the attempt histogram accounts
    // for bands(=2 per frame at 2 workers) x frames.
    let settled: u32 = stats.counters.attempts.iter().sum();
    assert_eq!(settled as usize, 2 * frames.len(), "{stats}");
    assert_eq!(stats.counters.attempts.len(), ATTEMPT_BUCKETS);
    // The interventions also surface per frame through ImageRunStats.
    assert!(
        results.iter().any(|(_, s)| s.supervisor.any()),
        "at least one frame saw an intervention"
    );
}

/// A worker killed by an injected panic is respawned — the pool never
/// shrinks — and the panic payload is carried into the retry accounting.
#[test]
fn injected_panics_respawn_workers_and_complete() {
    let clean = builder().build().unwrap();
    let faulty = builder()
        .faults(FaultPlan::parse("seed=1;panic@500:frames=0..4").unwrap())
        .build()
        .unwrap();
    let frames = frames(4);
    let reference = clean.session().run_frames(frames.iter()).unwrap();

    let mut session = AsyncSession::with_policy(&faulty, 2, 4, patient());
    for f in &frames {
        session.submit(f.clone()).unwrap();
    }
    let results = session.drain().unwrap();
    for (i, (out, _)) in results.iter().enumerate() {
        assert_eq!(out, &reference[i], "frame {i}");
    }
    let stats = session.supervisor_stats();
    assert!(
        stats.counters.respawns >= 1,
        "a 50% panic rate over 8 band dispatches must kill at least one worker: {stats}"
    );
    assert_eq!(session.workers(), 2, "respawn keeps the pool at size");
}

/// A band that exhausts `max_attempts` fails its frame with the panic
/// payload preserved through the `EngineError::Frame` chain; the pool
/// recovers and later frames run clean.
#[test]
fn exhausted_attempts_fail_frame_with_panic_payload() {
    let eng = builder()
        .faults(FaultPlan::parse("seed=2;panic@1000:frames=0..1").unwrap())
        .build()
        .unwrap();
    let policy = SupervisorPolicy {
        max_attempts: 2,
        backoff_base: Duration::from_micros(100),
        ..patient()
    };
    let mut session = AsyncSession::with_policy(&eng, 2, 4, policy);
    let frames = frames(2);
    let t0 = session.submit(frames[0].clone()).unwrap();
    let t1 = session.submit(frames[1].clone()).unwrap();
    match session.wait(t0) {
        Err(EngineError::Frame { frame, source, .. }) => {
            assert_eq!(frame, 0);
            match *source {
                EngineError::Worker { message, .. } => {
                    let message = message.expect("panic payload must be preserved");
                    assert!(message.contains("injected fault"), "{message}");
                }
                other => panic!("expected the worker panic as the source, got {other:?}"),
            }
        }
        other => panic!("expected frame 0 to fail, got {other:?}"),
    }
    // Frame 1 is outside the fault's frame range: clean completion on
    // the respawned pool.
    let (out, stats) = session.wait(t1).unwrap();
    let (reference, _) = eng.run_image(&frames[1]).unwrap();
    assert_eq!(out, reference);
    assert!(!stats.supervisor.any(), "frame 1 needed no intervention");
    let stats = session.supervisor_stats();
    // Band 0 of frame 0: first dispatch panics, one retry, second panic
    // exhausts the budget.
    assert!(stats.counters.retries >= 1, "{stats}");
    assert!(stats.counters.respawns >= 1, "{stats}");
}

/// Persistent kernel-scoped corruption provably walks the whole ladder —
/// Simd -> Packed -> Reference kernels, then coalesced -> keyed layout —
/// with every step recorded, and the degraded output stays bit-identical.
#[test]
fn persistent_corruption_walks_the_full_ladder() {
    let plan = FaultPlan::parse(concat!(
        "seed=5",
        ";corrupt@1000:persistent:kernels=simd",
        ";corrupt@1000:persistent:kernels=packed",
        ";corrupt@1000:persistent:layout=coalesced",
    ))
    .unwrap();
    let clean = builder().build().unwrap();
    let faulty = builder().faults(plan).build().unwrap();
    assert_eq!(faulty.kernels(), Kernels::Simd);
    assert!(faulty.coalesced());

    let policy = SupervisorPolicy {
        max_attempts: 6,
        degrade_after: 1,
        backoff_base: Duration::from_micros(100),
        ..SupervisorPolicy::default()
    };
    // One worker = one band per frame: the walk is a strict sequence.
    let mut session = AsyncSession::with_policy(&faulty, 1, 2, policy);
    let img = frames(1).remove(0);
    let ticket = session.submit(img.clone()).unwrap();
    let (out, frame_stats) = session.wait(ticket).unwrap();
    let (reference, _) = clean.run_image(&img).unwrap();
    assert_eq!(out, reference, "degraded rungs are bit-identical");

    let report = session.supervision_report();
    let stats = &report.stats;
    assert_eq!(
        stats.degradations.len(),
        3,
        "three rungs below simd+coalesced: {stats}"
    );
    let steps: Vec<String> = stats
        .degradations
        .iter()
        .map(|ev| format!("{}->{}", ev.from, ev.to))
        .collect();
    assert_eq!(
        steps,
        vec![
            "simd+coalesced->packed+coalesced",
            "packed+coalesced->reference+coalesced",
            "reference+coalesced->reference+keyed",
        ]
    );
    assert_eq!(stats.rung, 3, "the session now runs the bottom rung");
    assert_eq!(report.ladder.len(), 4);
    assert_eq!(frame_stats.supervisor.degradations, 3);
    // 4 dispatches: 3 corrupted (one per abandoned rung) + 1 success.
    assert_eq!(frame_stats.supervisor.faults_injected, 3);
    assert_eq!(frame_stats.supervisor.attempts[3], 1, "band took 4 tries");
}

/// A session already at Reference+keyed has a single-rung ladder:
/// persistent corruption cannot degrade further and fails the frame as a
/// structured `Corrupt` error after the attempt budget.
#[test]
fn corruption_without_a_lower_rung_fails_structurally() {
    let eng = builder()
        .kernels(Kernels::Reference)
        .coalesce(false)
        .faults(FaultPlan::parse("seed=6;corrupt@1000:persistent").unwrap())
        .build()
        .unwrap();
    let policy = SupervisorPolicy {
        max_attempts: 3,
        degrade_after: 1,
        backoff_base: Duration::from_micros(100),
        ..SupervisorPolicy::default()
    };
    let mut session = AsyncSession::with_policy(&eng, 1, 2, policy);
    let ticket = session.submit(frames(1).remove(0)).unwrap();
    match session.wait(ticket) {
        Err(EngineError::Frame { source, .. }) => {
            assert!(
                matches!(
                    *source,
                    EngineError::Corrupt {
                        kernels: "reference",
                        ..
                    }
                ),
                "got {source:?}"
            );
        }
        other => panic!("expected a corrupt frame failure, got {other:?}"),
    }
    let stats = session.supervisor_stats();
    assert_eq!(stats.degradations.len(), 0, "nowhere to fall: {stats}");
    assert_eq!(stats.rung, 0);
    assert_eq!(stats.counters.retries, 2, "3 attempts = 2 retries");
}

/// A frame overrunning its soft deadline gets its delayed straggler band
/// resubmitted; first completion wins and the output is unchanged.
#[test]
fn deadline_resubmits_stragglers_first_completion_wins() {
    let clean = builder().build().unwrap();
    let faulty = builder()
        .faults(FaultPlan::parse("seed=7;delay@1000:frames=0..1:band=0:ms=120").unwrap())
        .build()
        .unwrap();
    let policy = SupervisorPolicy {
        frame_deadline: Some(Duration::from_millis(25)),
        ..patient()
    };
    let mut session = AsyncSession::with_policy(&faulty, 2, 2, policy);
    let img = frames(1).remove(0);
    let ticket = session.submit(img.clone()).unwrap();
    let (out, frame_stats) = session.wait(ticket).unwrap();
    let (reference, _) = clean.run_image(&img).unwrap();
    assert_eq!(
        out, reference,
        "duplicate completions must not double-paste"
    );
    assert!(
        frame_stats.supervisor.deadline_hits >= 1,
        "the 120ms stall must trip the 25ms deadline: {}",
        frame_stats.supervisor
    );
    assert!(frame_stats.supervisor.faults_injected >= 1);
}

/// Drain hardening: an erroring drain still collects every outstanding
/// ticket first — nothing is left in flight, later results stay
/// claimable, and the session keeps serving new frames.
#[test]
fn erroring_drain_leaves_pipeline_quiescent_and_usable() {
    let eng = builder().build().unwrap();
    let mut session = AsyncSession::with_capacity(&eng, 1, 8);
    let frames = frames(3);
    let tickets: Vec<_> = frames
        .iter()
        .map(|f| session.submit(f.clone()).unwrap())
        .collect();
    assert!(session.inject_band_failure(
        tickets[1],
        EngineError::Exec(ecnn_sim::exec::ExecError::ReadFromDo)
    ));
    match session.drain() {
        Err(EngineError::Frame { frame, .. }) => assert_eq!(frame, 1),
        other => panic!("expected frame 1 to fail, got {other:?}"),
    }
    // Quiescent: the failed drain waited for everything in flight.
    assert_eq!(session.in_flight(), 0);
    // Frame 2 finished normally and stays claimable; a second drain
    // returns it instead of erroring again.
    let remaining = session.drain().unwrap();
    assert_eq!(remaining.len(), 1);
    let (reference, _) = eng.run_image(&frames[2]).unwrap();
    assert_eq!(remaining[0].0, reference);
    // And the session keeps serving.
    let next = session.submit(frames[0].clone()).unwrap();
    let (out, _) = session.wait(next).unwrap();
    let (reference, _) = eng.run_image(&frames[0]).unwrap();
    assert_eq!(out, reference);
}

/// The engine threads the fault plan through config, reports and the
/// frame-note surface; an empty plan is compiled out (`fault_plan()` is
/// `None`).
#[test]
fn fault_plan_threads_through_engine_and_reports() {
    let plan = FaultPlan::parse("seed=9;corrupt@50").unwrap();
    let eng = builder().faults(plan.clone()).build().unwrap();
    assert_eq!(eng.fault_plan(), Some(&plan));
    assert_eq!(eng.config().faults.as_ref(), Some(&plan));
    let note = eng.frame_report().note;
    assert!(note.contains("faults [seed=9;corrupt@50]"), "{note}");
    // Round trip through the serialized config.
    let json = eng.config().to_json();
    let back = ecnn_core::EngineConfig::from_json(&json).unwrap();
    assert_eq!(back.faults.as_ref(), Some(&plan));
    // The empty plan is inert and invisible.
    let clean = builder().faults(FaultPlan::default()).build().unwrap();
    assert_eq!(clean.fault_plan(), None);
    assert!(
        !clean.frame_report().note.contains("faults"),
        "empty plan leaves no note"
    );
}
