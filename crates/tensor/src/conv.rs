//! Reference convolution kernels.
//!
//! These are the "golden" implementations the cycle-accurate simulator and
//! the training substrate are validated against. Two families exist:
//!
//! * `*_f32`: straightforward floating-point convolution used by training.
//! * `*_fixed`: full-precision integer convolution over Q-format codes —
//!   8-bit inputs and weights, 32/64-bit accumulation, single rounding at the
//!   output — matching the eCNN datapath (Section 6.3.2).
//!
//! Weight layout is `[out_channel][in_channel][ky][kx]` flattened, i.e. index
//! `((oc * in_c + ic) * 9) + ky * 3 + kx` for 3×3 filters.

use crate::qformat::{rescale_code, QFormat};
use crate::tensor::Tensor;

/// Spatial boundary handling for 3×3 convolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Padding {
    /// No padding: output is `(H-2)×(W-2)`. This is the truncated-pyramid
    /// inference type — each CONV3×3 trims one pixel per side.
    Valid,
    /// Zero padding: output matches the input size. FBISA's "zero-padded
    /// inference type" (Section 5).
    Zero,
}

impl Padding {
    /// Output spatial size for a 3×3 convolution on `(h, w)` input.
    ///
    /// # Panics
    ///
    /// Panics for [`Padding::Valid`] on inputs smaller than 3×3 (the valid
    /// output would be empty; previously this underflowed `h - 2`).
    pub fn output_size(self, h: usize, w: usize) -> (usize, usize) {
        match self {
            Padding::Valid => {
                assert!(
                    h >= 3 && w >= 3,
                    "input {h}x{w} too small for valid 3x3 conv"
                );
                (h - 2, w - 2)
            }
            Padding::Zero => (h, w),
        }
    }

    /// Offset of the first output pixel's kernel center in input coordinates.
    fn origin(self) -> isize {
        match self {
            Padding::Valid => 1,
            Padding::Zero => 0,
        }
    }
}

/// Floating-point 3×3 convolution.
///
/// `weights.len()` must be `out_c * in_c * 9` and `bias.len()` must be
/// `out_c` (pass zeros for a bias-free layer).
///
/// # Panics
///
/// Panics on shape mismatch, or if the input is smaller than 3×3 with
/// [`Padding::Valid`].
pub fn conv3x3_f32(
    input: &Tensor<f32>,
    weights: &[f32],
    bias: &[f32],
    out_c: usize,
    padding: Padding,
) -> Tensor<f32> {
    let (in_c, h, w) = input.shape();
    assert_eq!(weights.len(), out_c * in_c * 9, "weight count mismatch");
    assert_eq!(bias.len(), out_c, "bias count mismatch");
    if padding == Padding::Valid {
        assert!(h >= 3 && w >= 3, "input {h}x{w} too small for valid conv");
    }
    let (oh, ow) = padding.output_size(h, w);
    let org = padding.origin();
    let mut out = Tensor::zeros(out_c, oh, ow);
    // `oc` indexes bias and weights in lockstep; enumerate() obscures it.
    #[allow(clippy::needless_range_loop)]
    for oc in 0..out_c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = bias[oc];
                for ic in 0..in_c {
                    let wbase = (oc * in_c + ic) * 9;
                    for ky in 0..3 {
                        let sy = oy as isize + ky as isize - 1 + org;
                        if sy < 0 || sy >= h as isize {
                            continue;
                        }
                        for kx in 0..3 {
                            let sx = ox as isize + kx as isize - 1 + org;
                            if sx < 0 || sx >= w as isize {
                                continue;
                            }
                            acc += weights[wbase + ky * 3 + kx]
                                * input.at(ic, sy as usize, sx as usize);
                        }
                    }
                }
                *out.at_mut(oc, oy, ox) = acc;
            }
        }
    }
    out
}

/// Floating-point 1×1 convolution (the ERModule reduction layer).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn conv1x1_f32(
    input: &Tensor<f32>,
    weights: &[f32],
    bias: &[f32],
    out_c: usize,
) -> Tensor<f32> {
    let (in_c, h, w) = input.shape();
    assert_eq!(weights.len(), out_c * in_c, "weight count mismatch");
    assert_eq!(bias.len(), out_c, "bias count mismatch");
    let mut out = Tensor::zeros(out_c, h, w);
    for oc in 0..out_c {
        for ic in 0..in_c {
            let wv = weights[oc * in_c + ic];
            if wv == 0.0 {
                continue;
            }
            for y in 0..h {
                for x in 0..w {
                    *out.at_mut(oc, y, x) += wv * input.at(ic, y, x);
                }
            }
        }
        if bias[oc] != 0.0 {
            for y in 0..h {
                for x in 0..w {
                    *out.at_mut(oc, y, x) += bias[oc];
                }
            }
        }
    }
    out
}

/// Parameters for one fixed-point convolution: integer codes plus formats.
#[derive(Clone, Debug)]
pub struct FixedConvParams<'a> {
    /// Weight codes, layout `[oc][ic][k]`.
    pub weights: &'a [i16],
    /// Weight format (per-layer, from Eq. 4).
    pub w_format: QFormat,
    /// Bias codes (one per output channel).
    pub bias: &'a [i16],
    /// Bias format.
    pub b_format: QFormat,
    /// Output feature format (requantization target).
    pub out_format: QFormat,
}

/// Fixed-point 3×3 convolution over Q-format codes with full-precision
/// accumulation and a single requantization at the output, mirroring the
/// LCONV3×3 engine.
///
/// `in_frac` is the fractional position of the input codes. Accumulation is
/// exact in `i64`; the bias is aligned to the product format
/// (`w_frac + in_frac`) before the sum, and the result is rounded/clipped to
/// `out_format`.
///
/// # Panics
///
/// Panics on shape mismatch, or if the input is smaller than 3×3 with
/// [`Padding::Valid`].
pub fn conv3x3_fixed(
    input: &Tensor<i16>,
    in_frac: i32,
    params: &FixedConvParams<'_>,
    out_c: usize,
    padding: Padding,
) -> Tensor<i16> {
    let (in_c, h, w) = input.shape();
    assert_eq!(params.weights.len(), out_c * in_c * 9);
    assert_eq!(params.bias.len(), out_c);
    if padding == Padding::Valid {
        assert!(h >= 3 && w >= 3, "input {h}x{w} too small for valid conv");
    }
    let (oh, ow) = padding.output_size(h, w);
    let org = padding.origin();
    let prod_frac = params.w_format.frac() as i32 + in_frac;
    let mut out = Tensor::zeros(out_c, oh, ow);
    for oc in 0..out_c {
        let bias_aligned = align_code(
            params.bias[oc] as i64,
            params.b_format.frac() as i32,
            prod_frac,
        );
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc: i64 = bias_aligned;
                for ic in 0..in_c {
                    let wbase = (oc * in_c + ic) * 9;
                    for ky in 0..3 {
                        let sy = oy as isize + ky as isize - 1 + org;
                        if sy < 0 || sy >= h as isize {
                            continue;
                        }
                        for kx in 0..3 {
                            let sx = ox as isize + kx as isize - 1 + org;
                            if sx < 0 || sx >= w as isize {
                                continue;
                            }
                            acc += params.weights[wbase + ky * 3 + kx] as i64
                                * input.at(ic, sy as usize, sx as usize) as i64;
                        }
                    }
                }
                let code = rescale_code(acc, prod_frac, params.out_format.frac() as i32);
                *out.at_mut(oc, oy, ox) = params.out_format.clamp_code(code);
            }
        }
    }
    out
}

/// Fixed-point 1×1 convolution (LCONV1×1 engine reference).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn conv1x1_fixed(
    input: &Tensor<i16>,
    in_frac: i32,
    params: &FixedConvParams<'_>,
    out_c: usize,
) -> Tensor<i16> {
    let (in_c, h, w) = input.shape();
    assert_eq!(params.weights.len(), out_c * in_c);
    assert_eq!(params.bias.len(), out_c);
    let prod_frac = params.w_format.frac() as i32 + in_frac;
    let mut out = Tensor::zeros(out_c, h, w);
    for oc in 0..out_c {
        let bias_aligned = align_code(
            params.bias[oc] as i64,
            params.b_format.frac() as i32,
            prod_frac,
        );
        for y in 0..h {
            for x in 0..w {
                let mut acc: i64 = bias_aligned;
                for ic in 0..in_c {
                    acc += params.weights[oc * in_c + ic] as i64 * input.at(ic, y, x) as i64;
                }
                let code = rescale_code(acc, prod_frac, params.out_format.frac() as i32);
                *out.at_mut(oc, y, x) = params.out_format.clamp_code(code);
            }
        }
    }
    out
}

/// Shifts a code from `from_frac` to `to_frac` fractional bits without
/// rounding loss when upshifting; downshifting rounds like the datapath.
#[inline]
pub fn align_code(code: i64, from_frac: i32, to_frac: i32) -> i64 {
    if to_frac >= from_frac {
        code << (to_frac - from_frac)
    } else {
        rescale_code(code, from_frac, to_frac) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity_3x3(channels: usize) -> Vec<f32> {
        let mut w = vec![0.0; channels * channels * 9];
        for c in 0..channels {
            w[(c * channels + c) * 9 + 4] = 1.0;
        }
        w
    }

    #[test]
    fn identity_kernel_valid_crops_border() {
        let input = Tensor::from_fn(2, 5, 5, |c, y, x| (c * 25 + y * 5 + x) as f32);
        let w = identity_3x3(2);
        let out = conv3x3_f32(&input, &w, &[0.0, 0.0], 2, Padding::Valid);
        assert_eq!(out.shape(), (2, 3, 3));
        for c in 0..2 {
            for y in 0..3 {
                for x in 0..3 {
                    assert_eq!(out.at(c, y, x), input.at(c, y + 1, x + 1));
                }
            }
        }
    }

    #[test]
    fn identity_kernel_zero_padding_keeps_size() {
        let input = Tensor::from_fn(1, 4, 4, |_, y, x| (y * 4 + x) as f32);
        let w = identity_3x3(1);
        let out = conv3x3_f32(&input, &w, &[0.0], 1, Padding::Zero);
        assert_eq!(out.shape(), (1, 4, 4));
        assert_eq!(out.at(0, 0, 0), input.at(0, 0, 0));
        assert_eq!(out.at(0, 3, 3), input.at(0, 3, 3));
    }

    #[test]
    fn box_filter_sums_neighborhood() {
        let input = Tensor::from_fn(1, 3, 3, |_, _, _| 1.0);
        let w = vec![1.0; 9];
        let out = conv3x3_f32(&input, &w, &[0.5], 1, Padding::Valid);
        assert_eq!(out.shape(), (1, 1, 1));
        assert_eq!(out.at(0, 0, 0), 9.5);
    }

    #[test]
    fn zero_padding_border_sees_fewer_taps() {
        let input = Tensor::from_fn(1, 3, 3, |_, _, _| 1.0);
        let w = vec![1.0; 9];
        let out = conv3x3_f32(&input, &w, &[0.0], 1, Padding::Zero);
        assert_eq!(out.at(0, 1, 1), 9.0);
        assert_eq!(out.at(0, 0, 0), 4.0); // corner: 2x2 valid taps
        assert_eq!(out.at(0, 0, 1), 6.0); // edge: 2x3 valid taps
    }

    #[test]
    fn conv1x1_mixes_channels() {
        let input = Tensor::from_fn(2, 2, 2, |c, y, x| ((c + 1) * (y * 2 + x + 1)) as f32);
        // out0 = in0 + in1, out1 = 2*in0 - in1 + 1
        let w = vec![1.0, 1.0, 2.0, -1.0];
        let out = conv1x1_f32(&input, &w, &[0.0, 1.0], 2);
        assert_eq!(out.at(0, 0, 1), input.at(0, 0, 1) + input.at(1, 0, 1));
        assert_eq!(
            out.at(1, 1, 1),
            2.0 * input.at(0, 1, 1) - input.at(1, 1, 1) + 1.0
        );
    }

    #[test]
    fn fixed_matches_float_within_quantization_error() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        let in_c = 4;
        let out_c = 3;
        let input_f = Tensor::from_fn(in_c, 6, 6, |_, _, _| rng.gen_range(-1.0f32..1.0));
        let weights_f: Vec<f32> = (0..out_c * in_c * 9)
            .map(|_| rng.gen_range(-0.5f32..0.5))
            .collect();
        let bias_f: Vec<f32> = (0..out_c).map(|_| rng.gen_range(-0.2f32..0.2)).collect();

        let in_q = QFormat::signed(6);
        let w_q = QFormat::signed(7);
        let b_q = QFormat::signed(7);
        let out_q = QFormat::signed(4);

        let input_codes = input_f.map(|v| in_q.quantize(v));
        let w_codes: Vec<i16> = weights_f.iter().map(|&v| w_q.quantize(v)).collect();
        let b_codes: Vec<i16> = bias_f.iter().map(|&v| b_q.quantize(v)).collect();

        let params = FixedConvParams {
            weights: &w_codes,
            w_format: w_q,
            bias: &b_codes,
            b_format: b_q,
            out_format: out_q,
        };
        let out_fixed = conv3x3_fixed(
            &input_codes,
            in_q.frac() as i32,
            &params,
            out_c,
            Padding::Valid,
        );

        // Float reference on the *quantized* values.
        let input_deq = input_codes.map(|c| in_q.dequantize(c));
        let w_deq: Vec<f32> = w_codes.iter().map(|&c| w_q.dequantize(c)).collect();
        let b_deq: Vec<f32> = b_codes.iter().map(|&c| b_q.dequantize(c)).collect();
        let out_float = conv3x3_f32(&input_deq, &w_deq, &b_deq, out_c, Padding::Valid);

        for oc in 0..out_c {
            for y in 0..4 {
                for x in 0..4 {
                    let fx = out_q.dequantize(out_fixed.at(oc, y, x));
                    let fl = out_float
                        .at(oc, y, x)
                        .clamp(out_q.min_value(), out_q.max_value());
                    assert!(
                        (fx - fl).abs() <= out_q.step() * 0.51,
                        "mismatch at ({oc},{y},{x}): fixed {fx} vs float {fl}"
                    );
                }
            }
        }
    }

    #[test]
    fn fixed_conv1x1_exact_on_integer_data() {
        // With frac=0 everywhere the fixed path is plain integer arithmetic.
        let input = Tensor::from_fn(2, 2, 2, |c, y, x| {
            (c as i16 + 1) * (y as i16 * 2 + x as i16)
        });
        let q0 = QFormat::signed(0);
        let params = FixedConvParams {
            weights: &[1, 1, 2, -1],
            w_format: q0,
            bias: &[0, 3],
            b_format: q0,
            out_format: QFormat::signed(0),
        };
        let out = conv1x1_fixed(&input, 0, &params, 2);
        assert_eq!(out.at(0, 1, 1), input.at(0, 1, 1) + input.at(1, 1, 1));
        assert_eq!(
            out.at(1, 1, 0),
            2 * input.at(0, 1, 0) - input.at(1, 1, 0) + 3
        );
    }

    #[test]
    fn fixed_output_clamps_to_format() {
        let input = Tensor::from_fn(1, 3, 3, |_, _, _| 127i16);
        let q0 = QFormat::signed(0);
        let params = FixedConvParams {
            weights: &[127; 9],
            w_format: q0,
            bias: &[0],
            b_format: q0,
            out_format: QFormat::signed(0),
        };
        let out = conv3x3_fixed(&input, 0, &params, 1, Padding::Valid);
        assert_eq!(out.at(0, 0, 0), 127); // saturated
    }

    #[test]
    #[should_panic(expected = "too small for valid conv")]
    fn fixed_conv_rejects_tiny_valid_input() {
        // Regression: 2x2 valid input used to underflow `h - 2` instead of
        // reporting the geometry error.
        let input = Tensor::from_fn(1, 2, 2, |_, _, _| 1i16);
        let q0 = QFormat::signed(0);
        let params = FixedConvParams {
            weights: &[1; 9],
            w_format: q0,
            bias: &[0],
            b_format: q0,
            out_format: q0,
        };
        let _ = conv3x3_fixed(&input, 0, &params, 1, Padding::Valid);
    }

    #[test]
    #[should_panic(expected = "too small for valid 3x3 conv")]
    fn output_size_rejects_tiny_valid_input() {
        let _ = Padding::Valid.output_size(2, 5);
    }

    #[test]
    fn output_size_zero_padding_accepts_tiny_input() {
        assert_eq!(Padding::Zero.output_size(1, 2), (1, 2));
    }

    #[test]
    fn align_code_round_trips_upshift() {
        assert_eq!(align_code(5, 2, 6), 80);
        assert_eq!(align_code(80, 6, 2), 5);
        assert_eq!(align_code(-7, 0, 3), -56);
    }
}
