//! Quantized model parameters and the packed 21-bitstream format
//! (Section 5.2, Fig. 11).
//!
//! Weights are split into 20 parallel bitstreams — 18 for CONV3×3 (one per
//! filter position × output-channel half) and 2 for CONV1×1 — plus one bias
//! bitstream, so the IDU's 21 decoders can decode a leaf-module's 10,240
//! weights in 256 cycles. Each instruction's parameters form one
//! byte-aligned *restart segment* per stream, with its own Huffman table;
//! the instruction's parameter operand carries the segment index (the
//! paper's byte-aligned restart attribute).

use crate::coding::{decode_segment, encode_segment, entropy_stats, CodingError, EntropyStats};
use crate::instr::{Instruction, Opcode, LEAF_CH};
use ecnn_model::layer::Op;
use ecnn_model::model::Model;
use ecnn_tensor::conv::align_code;
use ecnn_tensor::QFormat;
use serde::{Deserialize, Serialize};

/// Number of CONV3×3 weight bitstreams (9 filter positions × 2 halves).
pub const W3_STREAMS: usize = 18;
/// Number of CONV1×1 weight bitstreams (2 output-channel halves).
pub const W1_STREAMS: usize = 2;
/// Coefficients per CONV3×3 stream per leaf-module (16 oc × 32 ic).
pub const W3_PER_LEAF: usize = 512;
/// Coefficients per CONV1×1 stream per leaf-module (16 oc × 32 ic).
pub const W1_PER_LEAF: usize = 512;
/// Bias slots per leaf-module (32 CONV3×3 + 32 CONV1×1).
pub const BIAS_PER_LEAF: usize = 64;

fn hw(c: usize) -> usize {
    c.div_ceil(LEAF_CH) * LEAF_CH
}

/// Quantized parameters of one model layer (hardware-padded channel counts).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerParams {
    /// CONV3×3 weight codes, layout `[out_hw][in_hw][9]` (empty when the
    /// layer has no 3×3 stage).
    pub w3: Vec<i16>,
    /// CONV3×3 weight format.
    pub w3_q: QFormat,
    /// CONV3×3 bias codes `[out_hw]`.
    pub b3: Vec<i16>,
    /// CONV3×3 bias format.
    pub b3_q: QFormat,
    /// CONV1×1 weight codes `[out_hw][in_hw]` (ER reduction or CONV1 layer).
    pub w1: Vec<i16>,
    /// CONV1×1 weight format.
    pub w1_q: QFormat,
    /// CONV1×1 bias codes `[out_hw]`.
    pub b1: Vec<i16>,
    /// CONV1×1 bias format.
    pub b1_q: QFormat,
    /// Output feature format of this layer.
    pub out_q: QFormat,
    /// ER intermediate (post-ReLU expanded) feature format.
    pub mid_q: QFormat,
}

impl LayerParams {
    /// Expected `w3` length for an op.
    pub fn w3_len(op: &Op) -> usize {
        match *op {
            Op::Conv3x3 { in_c, out_c, .. } => hw(out_c) * hw(in_c) * 9,
            Op::ErModule {
                channels,
                expansion,
            } => hw(channels * expansion) * hw(channels) * 9,
            _ => 0,
        }
    }

    /// Expected `w1` length for an op.
    pub fn w1_len(op: &Op) -> usize {
        match *op {
            Op::Conv1x1 { in_c, out_c, .. } => hw(out_c) * hw(in_c),
            Op::ErModule {
                channels,
                expansion,
            } => hw(channels) * hw(channels * expansion),
            _ => 0,
        }
    }

    /// Validates the parameter-vector lengths against an op.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn check(&self, op: &Op) -> Result<(), String> {
        let want_w3 = Self::w3_len(op);
        if self.w3.len() != want_w3 {
            return Err(format!("w3 length {} != {}", self.w3.len(), want_w3));
        }
        let want_w1 = Self::w1_len(op);
        if self.w1.len() != want_w1 {
            return Err(format!("w1 length {} != {}", self.w1.len(), want_w1));
        }
        let want_b3 = if want_w3 > 0 {
            match *op {
                Op::Conv3x3 { out_c, .. } => hw(out_c),
                Op::ErModule {
                    channels,
                    expansion,
                } => hw(channels * expansion),
                _ => 0,
            }
        } else {
            0
        };
        if self.b3.len() != want_b3 {
            return Err(format!("b3 length {} != {}", self.b3.len(), want_b3));
        }
        Ok(())
    }
}

/// A model together with all fixed-point parameters and feature formats —
/// the deployable artifact that the compiler lowers to an FBISA program.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuantizedModel {
    /// The architecture.
    pub model: Model,
    /// Input image format (UQ8 for `[0,1)` 8-bit images).
    pub input_q: QFormat,
    /// Per-layer parameters; `None` for parameter-free ops.
    pub layers: Vec<Option<LayerParams>>,
}

impl QuantizedModel {
    /// Deterministic, well-scaled parameters for testing and benchmarking
    /// without a training run: small patterned weights, Q7 weight formats
    /// and Q4 feature formats.
    pub fn uniform(model: &Model) -> Self {
        let mut layers = Vec::with_capacity(model.len());
        for (li, layer) in model.layers().iter().enumerate() {
            if !layer.op.has_params() {
                layers.push(None);
                continue;
            }
            let w3_len = LayerParams::w3_len(&layer.op);
            let w1_len = LayerParams::w1_len(&layer.op);
            let b3_len = match layer.op {
                Op::Conv3x3 { out_c, .. } => hw(out_c),
                Op::ErModule {
                    channels,
                    expansion,
                } => hw(channels * expansion),
                _ => 0,
            };
            let b1_len = match layer.op {
                Op::Conv1x1 { out_c, .. } => hw(out_c),
                Op::ErModule { channels, .. } => hw(channels),
                _ => 0,
            };
            let pat = |i: usize, m: usize| (((i * 7 + li * 13 + m) % 11) as i16) - 5;
            layers.push(Some(LayerParams {
                w3: (0..w3_len).map(|i| pat(i, 1)).collect(),
                w3_q: QFormat::signed(7),
                b3: (0..b3_len).map(|i| pat(i, 2)).collect(),
                b3_q: QFormat::signed(7),
                w1: (0..w1_len).map(|i| pat(i, 3)).collect(),
                w1_q: QFormat::signed(7),
                b1: (0..b1_len).map(|i| pat(i, 4)).collect(),
                b1_q: QFormat::signed(7),
                out_q: QFormat::signed(4),
                mid_q: QFormat::unsigned(4),
            }));
        }
        Self {
            model: model.clone(),
            input_q: QFormat::unsigned(8),
            layers,
        }
    }

    /// Validates every layer's parameter shapes.
    ///
    /// # Errors
    ///
    /// Returns `(layer index, message)` for the first invalid layer.
    pub fn check(&self) -> Result<(), (usize, String)> {
        if self.layers.len() != self.model.len() {
            return Err((0, "layer count mismatch".into()));
        }
        for (i, (layer, params)) in self.model.layers().iter().zip(&self.layers).enumerate() {
            match (layer.op.has_params(), params) {
                (true, Some(p)) => p.check(&layer.op).map_err(|e| (i, e))?,
                (true, None) => return Err((i, "missing parameters".into())),
                (false, Some(_)) => return Err((i, "unexpected parameters".into())),
                (false, None) => {}
            }
        }
        Ok(())
    }

    /// Raw (uncompressed) hardware parameter bytes: one byte per weight and
    /// bias slot across all layers.
    pub fn raw_param_bytes(&self) -> usize {
        self.layers
            .iter()
            .flatten()
            .map(|p| p.w3.len() + p.b3.len() + p.w1.len() + p.b1.len())
            .sum()
    }
}

/// Parameters of a single leaf-module, as distributed by the IDU.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LeafParams {
    /// 32×32×9 CONV3×3 weights, layout `[oc][ic][k]` (zeros for CONV1).
    pub w3: Vec<i16>,
    /// 32 CONV3×3 biases (zeros except on each output group's first leaf).
    pub b3: Vec<i16>,
    /// 32×32 CONV1×1 weights (zeros for plain CONV).
    pub w1: Vec<i16>,
    /// 32 CONV1×1 biases (zeros except on the first leaf).
    pub b1: Vec<i16>,
}

impl LeafParams {
    /// An all-zero leaf.
    pub fn zero() -> Self {
        Self {
            w3: vec![0; LEAF_CH * LEAF_CH * 9],
            b3: vec![0; LEAF_CH],
            w1: vec![0; LEAF_CH * LEAF_CH],
            b1: vec![0; LEAF_CH],
        }
    }
}

/// Plan-time packed kernel parameters of one instruction: everything the
/// flat-slice execution micro-kernels need, prepared once when a program
/// is planned and reused across every frame.
///
/// * weights are widened to `i32` once, in tap-major order (all channel
///   pairs of one 3×3 tap row are addressable as a contiguous 3-slice);
/// * biases are pre-aligned to the accumulator's fractional position
///   (`prod_frac`), already summed across leaf-modules where the datapath
///   sums them;
/// * all-zero tap rows and channel pairs carry a zero mask bit so the
///   kernels skip them without inspecting the weights again.
#[derive(Clone, Debug, PartialEq)]
pub struct PackedKernelParams {
    /// 3×3 stages: one entry for `CONV`/`UPX2`/`DNX2`, one per leaf for
    /// `ER` (each leaf convolves its own expansion plane), empty for
    /// `CONV1`.
    pub conv3: Vec<PackedConv3>,
    /// 1×1 stage (`ER` reduction / `CONV1`), when the opcode has one.
    pub conv1: Option<PackedConv1>,
    /// Verifier-licensed narrow accumulation: `true` only when the static
    /// interval analysis (`crate::verify`) proved every conv-stage
    /// accumulator value of this instruction fits an `i32`
    /// (`InstrRange::narrow_acc`), so SIMD kernels may run 8-wide `i32`
    /// lanes instead of 4-wide `i64`. [`PackedKernelParams::pack`] always
    /// leaves this `false`; the planner stamps it from a verify report —
    /// no proof, no narrow path.
    pub narrow_acc: bool,
}

impl PackedKernelParams {
    /// Packs one instruction's leaf parameters.
    ///
    /// # Panics
    ///
    /// Panics if `ins` fails [`Instruction::check`]-level invariants (a
    /// 1×1/ER opcode without its formats) — callers pack instructions that
    /// already passed compilation.
    pub fn pack(ins: &Instruction, leafs: &[LeafParams]) -> Self {
        let prod3 = ins.q.w3.frac() as i32 + ins.q.src.frac() as i32;
        let b3_frac = ins.q.b3.frac() as i32;
        match ins.opcode {
            Opcode::Conv | Opcode::Dnx2 | Opcode::Upx2 => Self {
                conv3: vec![PackedConv3::pack(ins, leafs)],
                conv1: None,
                narrow_acc: false,
            },
            Opcode::Er => {
                let w1q = ins.q.w1.expect("ER carries 1x1 formats");
                let b1q = ins.q.b1.expect("ER carries 1x1 formats");
                let midq = ins.q.mid.expect("ER carries a mid format");
                let prod1 = w1q.frac() as i32 + midq.frac() as i32;
                Self {
                    conv3: leafs
                        .iter()
                        .map(|l| PackedConv3::pack_leaf(l, b3_frac, prod3))
                        .collect(),
                    conv1: Some(PackedConv1::pack(leafs, b1q.frac() as i32, prod1)),
                    narrow_acc: false,
                }
            }
            Opcode::Conv1 => {
                let w1q = ins.q.w1.expect("CONV1 carries 1x1 formats");
                let b1q = ins.q.b1.expect("CONV1 carries 1x1 formats");
                let prod1 = w1q.frac() as i32 + ins.q.src.frac() as i32;
                Self {
                    conv3: Vec::new(),
                    conv1: Some(PackedConv1::pack(leafs, b1q.frac() as i32, prod1)),
                    narrow_acc: false,
                }
            }
        }
    }

    /// Approximate heap footprint of the packed parameters, in bytes.
    pub fn bytes(&self) -> usize {
        self.conv3
            .iter()
            .map(|c| c.bias.len() * 8 + c.taps.len() * 4 + c.mask.len())
            .sum::<usize>()
            + self.conv1.as_ref().map_or(0, |c| {
                c.bias.len() * 8 + c.nz.len() * 8 + c.nz_idx.len() * 4
            })
    }
}

/// One packed 3×3 sweep: `out_planes × in_groups` leaf filters with
/// widened taps, pre-aligned biases, and per-pair tap-row masks.
#[derive(Clone, Debug, PartialEq)]
pub struct PackedConv3 {
    /// Output planes the sweep produces (`out_groups` for `UPX2`, else 1).
    pub out_planes: usize,
    /// 32-channel input groups the sweep reads.
    pub in_groups: usize,
    /// `out_planes × LEAF_CH` biases aligned to the 3×3 product format
    /// (summed across leaf-modules except for `UPX2`, whose leaves write
    /// distinct pre-shuffle planes).
    pub bias: Vec<i64>,
    /// Widened taps, tap-major: index
    /// `(((plane * 3 + ky) * LEAF_CH² + oc * LEAF_CH + ic) * 3) + kx`
    /// with `plane = op · in_groups + ig`.
    pub taps: Vec<i32>,
    /// Per `(plane, oc, ic)` channel pair: low 3 bits flag tap rows `ky`
    /// with any nonzero tap. A zero byte skips the pair entirely.
    pub mask: Vec<u8>,
}

impl PackedConv3 {
    /// Packs the 3×3 stage of a `CONV`/`UPX2`/`DNX2` instruction.
    pub fn pack(ins: &Instruction, leafs: &[LeafParams]) -> Self {
        let out_planes = if ins.opcode == Opcode::Upx2 {
            ins.out_groups
        } else {
            1
        };
        let in_groups = ins.in_groups;
        let prod3 = ins.q.w3.frac() as i32 + ins.q.src.frac() as i32;
        let b3_frac = ins.q.b3.frac() as i32;
        let mut packed = Self::empty(out_planes, in_groups);
        for op_ in 0..out_planes {
            for oc in 0..LEAF_CH {
                packed.bias[op_ * LEAF_CH + oc] = if ins.opcode == Opcode::Upx2 {
                    align_code(leafs[op_].b3[oc] as i64, b3_frac, prod3)
                } else {
                    leafs
                        .iter()
                        .map(|l| align_code(l.b3[oc] as i64, b3_frac, prod3))
                        .sum()
                };
            }
            for ig in 0..in_groups {
                let w = if ins.opcode == Opcode::Upx2 {
                    &leafs[op_].w3
                } else {
                    &leafs[ig].w3
                };
                packed.fill_plane(op_ * in_groups + ig, w);
            }
        }
        packed
    }

    /// Packs one ER leaf's expansion filter (a single 32→32 plane) with
    /// its own bias vector.
    pub fn pack_leaf(leaf: &LeafParams, b3_frac: i32, prod3: i32) -> Self {
        let mut packed = Self::empty(1, 1);
        for oc in 0..LEAF_CH {
            packed.bias[oc] = align_code(leaf.b3[oc] as i64, b3_frac, prod3);
        }
        packed.fill_plane(0, &leaf.w3);
        packed
    }

    fn empty(out_planes: usize, in_groups: usize) -> Self {
        let pairs = LEAF_CH * LEAF_CH;
        let planes = out_planes * in_groups;
        Self {
            out_planes,
            in_groups,
            bias: vec![0; out_planes * LEAF_CH],
            taps: vec![0; planes * 3 * pairs * 3],
            mask: vec![0; planes * pairs],
        }
    }

    /// Widens one leaf filter (layout `[oc][ic][9]`) into plane `plane`'s
    /// tap-major slots, flagging nonzero tap rows.
    fn fill_plane(&mut self, plane: usize, w3: &[i16]) {
        let pairs = LEAF_CH * LEAF_CH;
        for pair in 0..pairs {
            let wbase = pair * 9;
            let mut m = 0u8;
            for ky in 0..3 {
                let dst = ((plane * 3 + ky) * pairs + pair) * 3;
                for kx in 0..3 {
                    let v = w3[wbase + ky * 3 + kx] as i32;
                    self.taps[dst + kx] = v;
                    if v != 0 {
                        m |= 1 << ky;
                    }
                }
            }
            self.mask[plane * pairs + pair] = m;
        }
    }

    /// The 3 horizontal taps of row `ky` for channel pair `(oc, ic)` of
    /// `plane`.
    #[inline]
    pub fn taps(&self, plane: usize, ky: usize, oc: usize, ic: usize) -> [i32; 3] {
        let pairs = LEAF_CH * LEAF_CH;
        let base = ((plane * 3 + ky) * pairs + oc * LEAF_CH + ic) * 3;
        [self.taps[base], self.taps[base + 1], self.taps[base + 2]]
    }

    /// Nonzero-tap-row mask of channel pair `(oc, ic)` of `plane`.
    #[inline]
    pub fn row_mask(&self, plane: usize, oc: usize, ic: usize) -> u8 {
        self.mask[plane * LEAF_CH * LEAF_CH + oc * LEAF_CH + ic]
    }
}

/// One packed 1×1 stage: pre-aligned summed biases plus, per
/// `(leaf, out_channel)`, the compacted list of nonzero input columns —
/// the plan-time form of the executor's old per-MAC zero test.
#[derive(Clone, Debug, PartialEq)]
pub struct PackedConv1 {
    /// Leaf-modules packed.
    pub leaves: usize,
    /// `LEAF_CH` biases aligned to the 1×1 product format, summed across
    /// leaves (the ADDE accumulates every leaf into one output group).
    pub bias: Vec<i64>,
    /// Row starts into [`PackedConv1::nz`], indexed `leaf · LEAF_CH + oc`,
    /// with a trailing sentinel.
    pub nz_idx: Vec<u32>,
    /// Compacted `(in_channel, widened weight)` pairs.
    pub nz: Vec<(u16, i32)>,
}

impl PackedConv1 {
    /// Packs the 1×1 weights/biases of `leafs`, aligning biases from
    /// `b1_frac` to `prod_frac`.
    pub fn pack(leafs: &[LeafParams], b1_frac: i32, prod_frac: i32) -> Self {
        let mut bias = vec![0i64; LEAF_CH];
        for (oc, b) in bias.iter_mut().enumerate() {
            *b = leafs
                .iter()
                .map(|l| align_code(l.b1[oc] as i64, b1_frac, prod_frac))
                .sum();
        }
        let mut nz_idx = Vec::with_capacity(leafs.len() * LEAF_CH + 1);
        nz_idx.push(0u32);
        let mut nz = Vec::new();
        for leaf in leafs {
            for oc in 0..LEAF_CH {
                for ic in 0..LEAF_CH {
                    let v = leaf.w1[oc * LEAF_CH + ic];
                    if v != 0 {
                        nz.push((ic as u16, v as i32));
                    }
                }
                nz_idx.push(nz.len() as u32);
            }
        }
        Self {
            leaves: leafs.len(),
            bias,
            nz_idx,
            nz,
        }
    }

    /// The nonzero `(in_channel, weight)` columns of output channel `oc`
    /// of leaf `leaf`.
    #[inline]
    pub fn row(&self, leaf: usize, oc: usize) -> &[(u16, i32)] {
        let i = leaf * LEAF_CH + oc;
        &self.nz[self.nz_idx[i] as usize..self.nz_idx[i + 1] as usize]
    }
}

/// Offsets of one instruction's restart segment in every stream.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentInfo {
    /// Leaf-modules in the segment.
    pub leaf_count: usize,
    /// Byte offset in each CONV3×3 stream.
    pub w3_offset: usize,
    /// Byte offset in each CONV1×1 stream.
    pub w1_offset: usize,
    /// Byte offset in the bias stream.
    pub bias_offset: usize,
    /// Whether the segment carries 3×3 coefficients.
    pub has_w3: bool,
    /// Whether the segment carries 1×1 coefficients.
    pub has_w1: bool,
}

/// The packed 21-stream parameter image plus a segment directory.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PackedParams {
    /// 18 CONV3×3 weight streams, padded to equal per-segment lengths.
    pub w3_streams: Vec<Vec<u8>>,
    /// 2 CONV1×1 weight streams.
    pub w1_streams: Vec<Vec<u8>>,
    /// The bias stream.
    pub bias_stream: Vec<u8>,
    /// Per-instruction segment directory (indexed by `param_restart`).
    pub segments: Vec<SegmentInfo>,
    /// Aggregate entropy-coding statistics over all weight coefficients.
    pub stats: EntropyStats,
}

impl PackedParams {
    /// Packs per-instruction leaf parameters into the 21 synchronized
    /// streams. `instr_leafs[i]` are instruction `i`'s leaf-modules in
    /// issue order; `kinds[i]` says which engines the instruction uses.
    pub fn pack(instr_leafs: &[Vec<LeafParams>], kinds: &[(bool, bool)]) -> Self {
        assert_eq!(instr_leafs.len(), kinds.len());
        let mut w3_streams: Vec<Vec<u8>> = vec![Vec::new(); W3_STREAMS];
        let mut w1_streams: Vec<Vec<u8>> = vec![Vec::new(); W1_STREAMS];
        let mut bias_stream: Vec<u8> = Vec::new();
        let mut segments = Vec::with_capacity(instr_leafs.len());
        let mut all_coeffs: Vec<i16> = Vec::new();

        for (leafs, &(has_w3, has_w1)) in instr_leafs.iter().zip(kinds) {
            let seg = SegmentInfo {
                leaf_count: leafs.len(),
                w3_offset: w3_streams[0].len(),
                w1_offset: w1_streams[0].len(),
                bias_offset: bias_stream.len(),
                has_w3,
                has_w1,
            };
            // Gather per-stream value vectors for this segment.
            if has_w3 {
                let mut encoded: Vec<Vec<u8>> = Vec::with_capacity(W3_STREAMS);
                for s in 0..W3_STREAMS {
                    let (p, half) = (s / 2, s % 2);
                    let mut vals = Vec::with_capacity(leafs.len() * W3_PER_LEAF);
                    for leaf in leafs {
                        for oc in half * 16..half * 16 + 16 {
                            for ic in 0..LEAF_CH {
                                vals.push(leaf.w3[(oc * LEAF_CH + ic) * 9 + p]);
                            }
                        }
                    }
                    all_coeffs.extend_from_slice(&vals);
                    encoded.push(encode_segment(&vals));
                }
                // Synchronize: pad all 18 segments to the longest.
                let max = encoded.iter().map(Vec::len).max().unwrap_or(0);
                for (s, mut e) in encoded.into_iter().enumerate() {
                    e.resize(max, 0);
                    w3_streams[s].extend_from_slice(&e);
                }
            }
            if has_w1 {
                let mut encoded: Vec<Vec<u8>> = Vec::with_capacity(W1_STREAMS);
                for half in 0..W1_STREAMS {
                    let mut vals = Vec::with_capacity(leafs.len() * W1_PER_LEAF);
                    for leaf in leafs {
                        for oc in half * 16..half * 16 + 16 {
                            for ic in 0..LEAF_CH {
                                vals.push(leaf.w1[oc * LEAF_CH + ic]);
                            }
                        }
                    }
                    all_coeffs.extend_from_slice(&vals);
                    encoded.push(encode_segment(&vals));
                }
                let max = encoded.iter().map(Vec::len).max().unwrap_or(0);
                for (half, mut e) in encoded.into_iter().enumerate() {
                    e.resize(max, 0);
                    w1_streams[half].extend_from_slice(&e);
                }
            }
            {
                let mut vals = Vec::with_capacity(leafs.len() * BIAS_PER_LEAF);
                for leaf in leafs {
                    vals.extend_from_slice(&leaf.b3);
                    vals.extend_from_slice(&leaf.b1);
                }
                all_coeffs.extend_from_slice(&vals);
                bias_stream.extend_from_slice(&encode_segment(&vals));
            }
            segments.push(seg);
        }

        let stats = entropy_stats(&all_coeffs);
        Self {
            w3_streams,
            w1_streams,
            bias_stream,
            segments,
            stats,
        }
    }

    /// Decodes instruction `restart`'s leaf parameters (the IDU's job).
    ///
    /// # Errors
    ///
    /// Returns [`CodingError`] on malformed streams or a bad index.
    pub fn unpack(&self, restart: usize) -> Result<Vec<LeafParams>, CodingError> {
        let seg = self.segments.get(restart).ok_or(CodingError::BadTable)?;
        let n = seg.leaf_count;
        let mut leafs = vec![LeafParams::zero(); n];
        if seg.has_w3 {
            for s in 0..W3_STREAMS {
                let (p, half) = (s / 2, s % 2);
                let bytes = &self.w3_streams[s][seg.w3_offset..];
                let (vals, _) = decode_segment(bytes, n * W3_PER_LEAF)?;
                let mut it = vals.into_iter();
                for leaf in leafs.iter_mut() {
                    for oc in half * 16..half * 16 + 16 {
                        for ic in 0..LEAF_CH {
                            leaf.w3[(oc * LEAF_CH + ic) * 9 + p] =
                                it.next().expect("length checked");
                        }
                    }
                }
            }
        }
        if seg.has_w1 {
            for half in 0..W1_STREAMS {
                let bytes = &self.w1_streams[half][seg.w1_offset..];
                let (vals, _) = decode_segment(bytes, n * W1_PER_LEAF)?;
                let mut it = vals.into_iter();
                for leaf in leafs.iter_mut() {
                    for oc in half * 16..half * 16 + 16 {
                        for ic in 0..LEAF_CH {
                            leaf.w1[oc * LEAF_CH + ic] = it.next().expect("length checked");
                        }
                    }
                }
            }
        }
        {
            let bytes = &self.bias_stream[seg.bias_offset..];
            let (vals, _) = decode_segment(bytes, n * BIAS_PER_LEAF)?;
            let mut it = vals.into_iter();
            for leaf in leafs.iter_mut() {
                for b in leaf.b3.iter_mut() {
                    *b = it.next().expect("length checked");
                }
                for b in leaf.b1.iter_mut() {
                    *b = it.next().expect("length checked");
                }
            }
        }
        Ok(leafs)
    }

    /// Total parameter-memory bytes occupied (all 21 streams).
    pub fn total_bytes(&self) -> usize {
        self.w3_streams.iter().map(Vec::len).sum::<usize>()
            + self.w1_streams.iter().map(Vec::len).sum::<usize>()
            + self.bias_stream.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnn_model::ernet::{ErNetSpec, ErNetTask};

    fn leaf_with_pattern(seed: i16) -> LeafParams {
        let mut l = LeafParams::zero();
        for (i, w) in l.w3.iter_mut().enumerate() {
            *w = ((i as i16).wrapping_mul(31).wrapping_add(seed) % 17) - 8;
        }
        for (i, w) in l.w1.iter_mut().enumerate() {
            *w = ((i as i16).wrapping_mul(13).wrapping_add(seed) % 9) - 4;
        }
        for (i, b) in l.b3.iter_mut().enumerate() {
            *b = ((i as i16).wrapping_add(seed)) % 5 - 2;
        }
        for (i, b) in l.b1.iter_mut().enumerate() {
            *b = ((i as i16).wrapping_mul(3).wrapping_add(seed)) % 7 - 3;
        }
        l
    }

    #[test]
    fn pack_unpack_round_trip() {
        let instrs = vec![
            vec![leaf_with_pattern(1)],
            vec![leaf_with_pattern(2), leaf_with_pattern(3)],
            vec![leaf_with_pattern(4); 4],
        ];
        let kinds = vec![(true, false), (true, true), (true, false)];
        let packed = PackedParams::pack(&instrs, &kinds);
        for (i, want) in instrs.iter().enumerate() {
            let got = packed.unpack(i).unwrap();
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want) {
                assert_eq!(g.w3, w.w3, "instr {i} w3");
                assert_eq!(g.b3, w.b3, "instr {i} b3");
                if kinds[i].1 {
                    assert_eq!(g.w1, w.w1, "instr {i} w1");
                    assert_eq!(g.b1, w.b1, "instr {i} b1");
                }
            }
        }
    }

    #[test]
    fn streams_stay_synchronized() {
        let instrs = vec![vec![leaf_with_pattern(5)], vec![leaf_with_pattern(6)]];
        let kinds = vec![(true, false), (true, false)];
        let packed = PackedParams::pack(&instrs, &kinds);
        let len0 = packed.w3_streams[0].len();
        for s in &packed.w3_streams {
            assert_eq!(s.len(), len0, "all 18 streams must stay in lockstep");
        }
        // Second segment's offset equals the first segment's padded length.
        assert_eq!(packed.segments[1].w3_offset, len0 / 2);
    }

    #[test]
    fn unpack_bad_index_fails() {
        let packed = PackedParams::pack(&[], &[]);
        assert!(packed.unpack(0).is_err());
    }

    #[test]
    fn uniform_model_params_validate() {
        let m = ErNetSpec::new(ErNetTask::Dn, 3, 2, 1).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        qm.check().unwrap();
        // head + 3 ER + bodyend + tail have parameters; no shuffles here.
        assert_eq!(qm.layers.iter().flatten().count(), 6);
    }

    #[test]
    fn raw_param_bytes_scale_with_expansion() {
        let small =
            QuantizedModel::uniform(&ErNetSpec::new(ErNetTask::Dn, 3, 1, 0).build().unwrap());
        let big = QuantizedModel::uniform(&ErNetSpec::new(ErNetTask::Dn, 3, 4, 0).build().unwrap());
        assert!(big.raw_param_bytes() > 3 * small.raw_param_bytes() / 2);
    }

    #[test]
    fn layer_params_check_catches_bad_lengths() {
        let m = ErNetSpec::new(ErNetTask::Dn, 1, 1, 0).build().unwrap();
        let mut qm = QuantizedModel::uniform(&m);
        // Corrupt the head conv's w3 length.
        if let Some(p) = qm.layers.iter_mut().flatten().next() {
            p.w3.pop();
        }
        assert!(qm.check().is_err());
    }

    #[test]
    fn compression_ratio_reported() {
        let instrs = vec![vec![leaf_with_pattern(9); 2]];
        let packed = PackedParams::pack(&instrs, &[(true, true)]);
        assert!(packed.stats.compression_ratio > 1.0);
        assert!(packed.total_bytes() > 0);
    }

    use crate::instr::{FeatLoc, QSpec};
    use ecnn_model::model::InferenceKind;

    fn conv_instr(opcode: Opcode, in_groups: usize, out_groups: usize) -> Instruction {
        Instruction {
            opcode,
            inference: InferenceKind::TruncatedPyramid,
            src: FeatLoc::di(),
            dst: FeatLoc::bb(0),
            src_s: None,
            in_groups,
            out_groups,
            expansion: 1,
            in_size: (16, 16),
            out_size: (14, 14),
            relu: false,
            pool: None,
            pool_factor: 1,
            q: QSpec {
                src: QFormat::signed(4),
                dst: QFormat::signed(4),
                src_s: None,
                mid: None,
                w3: QFormat::signed(7),
                b3: QFormat::signed(5),
                w1: None,
                b1: None,
            },
            param_restart: 0,
            layer: 0,
        }
    }

    #[test]
    fn packed_conv3_widens_taps_and_sums_biases() {
        let ins = conv_instr(Opcode::Conv, 2, 1);
        let leafs = vec![leaf_with_pattern(3), leaf_with_pattern(8)];
        let p = PackedConv3::pack(&ins, &leafs);
        assert_eq!((p.out_planes, p.in_groups), (1, 2));
        // prod_frac = w3.frac + src.frac = 11; biases upshift from 5 by 6.
        for oc in 0..LEAF_CH {
            let want: i64 = leafs.iter().map(|l| (l.b3[oc] as i64) << 6).sum();
            assert_eq!(p.bias[oc], want, "bias {oc}");
        }
        for (ig, leaf) in leafs.iter().enumerate() {
            for oc in 0..LEAF_CH {
                for ic in 0..LEAF_CH {
                    for ky in 0..3 {
                        let taps = p.taps(ig, ky, oc, ic);
                        let row_nonzero = (0..3).any(|kx| {
                            let w = leaf.w3[(oc * LEAF_CH + ic) * 9 + ky * 3 + kx];
                            assert_eq!(taps[kx], w as i32);
                            w != 0
                        });
                        assert_eq!(
                            p.row_mask(ig, oc, ic) & (1 << ky) != 0,
                            row_nonzero,
                            "mask bit ({ig},{oc},{ic},{ky})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn packed_conv3_masks_all_zero_pairs() {
        let ins = conv_instr(Opcode::Conv, 1, 1);
        let mut leaf = leaf_with_pattern(2);
        // Zero out pair (oc=1, ic=2) and row ky=1 of pair (0, 0).
        for k in 0..9 {
            leaf.w3[(LEAF_CH + 2) * 9 + k] = 0;
        }
        for kx in 0..3 {
            leaf.w3[3 + kx] = 0;
        }
        leaf.w3[0] = 1; // keep rows 0 and 2 of pair (0,0) live
        leaf.w3[6] = 1;
        let p = PackedConv3::pack(&ins, &[leaf]);
        assert_eq!(p.row_mask(0, 1, 2), 0, "all-zero pair is masked out");
        assert_eq!(p.row_mask(0, 0, 0), 0b101, "zero tap row is masked out");
    }

    #[test]
    fn packed_conv3_upx2_uses_per_plane_leaves() {
        let mut ins = conv_instr(Opcode::Upx2, 1, 4);
        ins.out_size = (28, 28);
        let leafs: Vec<LeafParams> = (0..4).map(|i| leaf_with_pattern(i as i16)).collect();
        let p = PackedConv3::pack(&ins, &leafs);
        assert_eq!((p.out_planes, p.in_groups), (4, 1));
        for (op_, leaf) in leafs.iter().enumerate() {
            assert_eq!(p.bias[op_ * LEAF_CH], (leaf.b3[0] as i64) << 6);
            assert_eq!(p.taps(op_, 0, 0, 0)[0], leaf.w3[0] as i32);
        }
    }

    #[test]
    fn packed_conv1_compacts_nonzero_columns() {
        let leafs = vec![leaf_with_pattern(1), leaf_with_pattern(4)];
        let p = PackedConv1::pack(&leafs, 5, 9);
        assert_eq!(p.leaves, 2);
        for oc in 0..LEAF_CH {
            let want: i64 = leafs.iter().map(|l| (l.b1[oc] as i64) << 4).sum();
            assert_eq!(p.bias[oc], want);
        }
        for (li, leaf) in leafs.iter().enumerate() {
            for oc in 0..LEAF_CH {
                let row = p.row(li, oc);
                let want: Vec<(u16, i32)> = (0..LEAF_CH)
                    .filter_map(|ic| {
                        let w = leaf.w1[oc * LEAF_CH + ic];
                        (w != 0).then_some((ic as u16, w as i32))
                    })
                    .collect();
                assert_eq!(row, want.as_slice(), "leaf {li} oc {oc}");
            }
        }
    }

    #[test]
    fn packed_kernel_params_shape_follows_opcode() {
        let ins = conv_instr(Opcode::Conv, 2, 1);
        let leafs = vec![leaf_with_pattern(1), leaf_with_pattern(2)];
        let p = PackedKernelParams::pack(&ins, &leafs);
        assert_eq!(p.conv3.len(), 1);
        assert!(p.conv1.is_none());
        assert!(p.bytes() > 0);

        let mut er = conv_instr(Opcode::Er, 1, 1);
        er.expansion = 2;
        er.q.mid = Some(QFormat::unsigned(4));
        er.q.w1 = Some(QFormat::signed(7));
        er.q.b1 = Some(QFormat::signed(5));
        let p = PackedKernelParams::pack(&er, &leafs);
        assert_eq!(p.conv3.len(), 2, "one 3x3 stage per ER leaf");
        assert!(p.conv1.is_some());

        let mut c1 = conv_instr(Opcode::Conv1, 1, 1);
        c1.q.w1 = Some(QFormat::signed(7));
        c1.q.b1 = Some(QFormat::signed(5));
        let p = PackedKernelParams::pack(&c1, &leafs[..1]);
        assert!(p.conv3.is_empty());
        assert_eq!(p.conv1.as_ref().unwrap().leaves, 1);
    }
}
