//! Offline stand-in for the `crossbeam` surface this workspace uses:
//! `scope` / `Scope::spawn` / `ScopedJoinHandle::join` layered over
//! `std::thread::scope` (the closure's scope argument is a placeholder
//! `()` — respawning from inside workers is not supported), plus the
//! [`channel`] module's MPMC channels for long-lived worker pools.

pub mod channel;

/// Scoped-thread context handed to the `scope` closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Join handle for a scoped worker.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the worker; `Err` carries its panic payload.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a worker. The closure receives a placeholder `()` where
    /// crossbeam passes a nested scope.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(())),
        }
    }
}

/// Runs `f` with a scoped-thread context; all workers are joined before
/// this returns. Worker panics propagate out of `std::thread::scope`, so
/// the `Ok` wrapper exists purely for crossbeam signature compatibility.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope, 'a> FnOnce(&'a Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_workers_join_and_borrow() {
        let data = [1u64, 2, 3, 4];
        let sums: Vec<u64> = super::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|part| scope.spawn(move |_| part.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(sums, vec![3, 7]);
    }
}
