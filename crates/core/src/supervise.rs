//! Supervision policy and observability for pipelined execution: retry
//! with capped backoff, worker respawn, per-frame soft deadlines, and
//! the verifier-licensed kernel-degradation ladder.
//!
//! [`crate::pipe::AsyncSession`] wraps its worker pool with a supervisor
//! governed by a [`SupervisorPolicy`]:
//!
//! * a failed band dispatch is **retried** up to
//!   [`SupervisorPolicy::max_attempts`] times with capped exponential
//!   backoff, preferring a different worker than the one that failed;
//! * a **panicked worker** is respawned (the pool never shrinks), its
//!   panic payload extracted into the
//!   [`EngineError::Worker`] message,
//!   and the bands it was running are treated as failed dispatches;
//! * a frame exceeding its **soft deadline** gets its still-running
//!   straggler bands resubmitted to other workers — first completion
//!   wins, duplicates are discarded before pasting, so the stitched
//!   output stays bit-identical;
//! * repeated **corruption-class** failures walk the session down the
//!   [`ladder`]: Simd → Packed → Reference kernels, then coalesced →
//!   keyed layout. Every rung is licensed by the PR 6 static verifier —
//!   all variants are proven bit-identical, so degrading trades only
//!   speed, never pixels. Each step is recorded as a [`DegradeEvent`].
//!
//! Outcomes surface in two grains: per-frame [`SupervisorCounters`]
//! merged into [`ImageRunStats`](crate::engine::ImageRunStats), and the
//! session-lifetime [`SupervisorStats`] (with the per-band attempt
//! histogram) behind [`AsyncSession::supervisor_stats`](crate::pipe::AsyncSession::supervisor_stats)
//! / [`SupervisionReport`](crate::report::SupervisionReport).

use crate::config::EngineConfig;
use crate::engine::EngineError;
use ecnn_sim::Kernels;
use std::fmt;
use std::time::Duration;

/// One rung of the degradation ladder: a kernel family plus a plane
/// layout, both verifier-licensed and bit-identical to every other rung.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradeRung {
    /// Kernel family sessions on this rung execute with.
    pub kernels: Kernels,
    /// Whether sessions on this rung run the coalesced plane layout.
    pub coalesce: bool,
}

impl fmt::Display for DegradeRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}+{}",
            self.kernels.as_str(),
            if self.coalesce { "coalesced" } else { "keyed" }
        )
    }
}

/// The degradation ladder for a resolved config, fastest rung first —
/// always non-empty, starting at the config's own kernels/layout. Kernel
/// families degrade along [`Kernels::ALL`] (fastest → reference), then
/// the coalesced layout falls back to keyed. A config already at
/// Reference+keyed yields the single-rung ladder (nowhere to fall).
pub fn ladder(cfg: &EngineConfig) -> Vec<DegradeRung> {
    let mut rungs = vec![DegradeRung {
        kernels: cfg.kernels,
        coalesce: cfg.coalesce,
    }];
    let pos = Kernels::ALL
        .iter()
        .position(|&k| k == cfg.kernels)
        .unwrap_or(Kernels::ALL.len() - 1);
    for &k in &Kernels::ALL[pos + 1..] {
        rungs.push(DegradeRung {
            kernels: k,
            coalesce: cfg.coalesce,
        });
    }
    if cfg.coalesce {
        rungs.push(DegradeRung {
            kernels: Kernels::Reference,
            coalesce: false,
        });
    }
    rungs
}

/// How the supervisor reacts to failures; see the [module docs](self).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Total dispatches one band may consume (first try included) before
    /// its frame fails with the band's last error.
    pub max_attempts: u32,
    /// Backoff before retry `n` is `backoff_base * 2^(n-1)`, capped at
    /// [`SupervisorPolicy::backoff_cap`].
    pub backoff_base: Duration,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: Duration,
    /// Prefer dispatching a retry to a different worker than the one
    /// that just failed it (best effort; moot on a single-worker pool).
    pub redispatch_elsewhere: bool,
    /// Soft per-frame deadline: when a frame is still incomplete this
    /// long after submission, its running straggler bands are
    /// resubmitted to other workers (first completion wins). `None`
    /// disables deadlines.
    pub frame_deadline: Option<Duration>,
    /// Corruption-class failures on the current rung before the session
    /// steps down the degradation ladder.
    pub degrade_after: u32,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
            redispatch_elsewhere: true,
            frame_deadline: None,
            degrade_after: 2,
        }
    }
}

impl SupervisorPolicy {
    /// Backoff before the retry that would be dispatch number
    /// `attempts + 1`, given `attempts` dispatches so far: capped
    /// exponential, `base * 2^(attempts-1)`.
    pub fn backoff(&self, attempts: u32) -> Duration {
        let factor = 1u32 << attempts.saturating_sub(1).min(16);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_cap)
    }
}

/// Failure class of a band dispatch, deciding the supervisor's reaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureClass {
    /// Worker panic, injected delay overruns, other environmental
    /// failures: retrying on another worker is expected to succeed.
    Transient,
    /// Detected-corruption failures
    /// ([`EngineError::Corrupt`]):
    /// repeats count toward degrading the session's execution rung.
    Corrupt,
}

/// Classifies one band error for the supervisor.
pub fn classify(error: &EngineError) -> FailureClass {
    match error {
        EngineError::Corrupt { .. } => FailureClass::Corrupt,
        _ => FailureClass::Transient,
    }
}

/// Buckets of the per-band attempt histogram: 1, 2, 3, and ≥4 dispatches.
pub const ATTEMPT_BUCKETS: usize = 4;

/// Copy-able supervision counters, kept per frame (merged into
/// [`ImageRunStats`](crate::engine::ImageRunStats)) and session-wide
/// (inside [`SupervisorStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisorCounters {
    /// Band retries scheduled after failed dispatches.
    pub retries: u32,
    /// Worker threads respawned after a panic.
    pub respawns: u32,
    /// Frame-deadline expiries that resubmitted straggler bands.
    pub deadline_hits: u32,
    /// Steps taken down the degradation ladder.
    pub degradations: u32,
    /// Faults the configured [`FaultPlan`](crate::faults::FaultPlan)
    /// injected into dispatches.
    pub faults_injected: u32,
    /// Histogram of settled bands by total dispatch count
    /// (see [`ATTEMPT_BUCKETS`]).
    pub attempts: [u32; ATTEMPT_BUCKETS],
}

impl SupervisorCounters {
    /// Adds another counter set into this one.
    pub fn absorb(&mut self, other: &SupervisorCounters) {
        self.retries += other.retries;
        self.respawns += other.respawns;
        self.deadline_hits += other.deadline_hits;
        self.degradations += other.degradations;
        self.faults_injected += other.faults_injected;
        for (mine, theirs) in self.attempts.iter_mut().zip(other.attempts) {
            *mine += theirs;
        }
    }

    /// Books one settled band that took `attempts` dispatches.
    pub fn record_attempts(&mut self, attempts: u32) {
        let bucket = (attempts.max(1) as usize - 1).min(ATTEMPT_BUCKETS - 1);
        self.attempts[bucket] += 1;
    }

    /// Whether the supervisor intervened at all (anything beyond
    /// single-dispatch success).
    pub fn any(&self) -> bool {
        self.retries > 0
            || self.respawns > 0
            || self.deadline_hits > 0
            || self.degradations > 0
            || self.faults_injected > 0
    }
}

impl fmt::Display for SupervisorCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retries {} respawns {} deadline-hits {} degradations {} faults {} attempts [{}]",
            self.retries,
            self.respawns,
            self.deadline_hits,
            self.degradations,
            self.faults_injected,
            self.attempts
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join("/"),
        )
    }
}

/// One recorded step down the degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradeEvent {
    /// Frame whose corruption-class failure triggered the step.
    pub frame: usize,
    /// Rung the session left.
    pub from: DegradeRung,
    /// Rung the session now runs on.
    pub to: DegradeRung,
}

impl fmt::Display for DegradeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame {}: {} -> {}", self.frame, self.from, self.to)
    }
}

/// Session-lifetime supervision outcomes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Aggregated counters over every frame (including the per-band
    /// attempt histogram).
    pub counters: SupervisorCounters,
    /// Every ladder step taken, in order.
    pub degradations: Vec<DegradeEvent>,
    /// Current ladder position (index into [`ladder`]; `0` = the
    /// configured rung).
    pub rung: usize,
}

impl fmt::Display for SupervisorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} rung {}", self.counters, self.rung)?;
        for ev in &self.degradations {
            write!(f, "; {ev}")?;
        }
        Ok(())
    }
}

/// Extracts a human-readable message from a panic payload (`&str` or
/// `String` — what `panic!` produces), so post-mortems name the actual
/// panic instead of a bare worker index.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> Option<String> {
    if let Some(s) = payload.downcast_ref::<&str>() {
        return Some((*s).to_string());
    }
    payload.downcast_ref::<String>().cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn ladder_walks_kernels_then_layout() {
        let cfg = EngineConfig::new(64);
        assert_eq!(cfg.kernels, Kernels::Simd);
        assert!(cfg.coalesce);
        let rungs = ladder(&cfg);
        assert_eq!(
            rungs,
            vec![
                DegradeRung {
                    kernels: Kernels::Simd,
                    coalesce: true
                },
                DegradeRung {
                    kernels: Kernels::Packed,
                    coalesce: true
                },
                DegradeRung {
                    kernels: Kernels::Reference,
                    coalesce: true
                },
                DegradeRung {
                    kernels: Kernels::Reference,
                    coalesce: false
                },
            ]
        );
        // Already at the bottom: single-rung ladder.
        let mut floor = EngineConfig::new(64);
        floor.kernels = Kernels::Reference;
        floor.coalesce = false;
        assert_eq!(ladder(&floor).len(), 1);
        assert_eq!(format!("{}", rungs[3]), "reference+keyed");
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let policy = SupervisorPolicy::default();
        assert_eq!(policy.backoff(1), Duration::from_millis(1));
        assert_eq!(policy.backoff(2), Duration::from_millis(2));
        assert_eq!(policy.backoff(3), Duration::from_millis(4));
        assert_eq!(policy.backoff(12), policy.backoff_cap);
        // Attempt 0 (no dispatch yet) behaves like attempt 1.
        assert_eq!(policy.backoff(0), Duration::from_millis(1));
    }

    #[test]
    fn counters_absorb_and_histogram() {
        let mut a = SupervisorCounters::default();
        assert!(!a.any());
        a.record_attempts(1);
        a.record_attempts(2);
        a.record_attempts(9);
        assert_eq!(a.attempts, [1, 1, 0, 1]);
        let mut b = SupervisorCounters {
            retries: 2,
            faults_injected: 3,
            ..SupervisorCounters::default()
        };
        b.absorb(&a);
        assert!(b.any());
        assert_eq!(b.attempts, [1, 1, 0, 1]);
        assert_eq!(b.retries, 2);
        let shown = b.to_string();
        assert!(shown.contains("retries 2"));
        assert!(shown.contains("[1/1/0/1]"));
    }

    #[test]
    fn classification_and_panic_payloads() {
        let corrupt = EngineError::Corrupt {
            band: 3,
            kernels: "simd",
        };
        assert_eq!(classify(&corrupt), FailureClass::Corrupt);
        assert_eq!(
            classify(&EngineError::Worker {
                shard: 0,
                message: None
            }),
            FailureClass::Transient
        );
        let p = catch_unwind(AssertUnwindSafe(|| panic!("boom {}", 7))).unwrap_err();
        assert_eq!(panic_message(&*p).as_deref(), Some("boom 7"));
        let p = catch_unwind(AssertUnwindSafe(|| panic!("static"))).unwrap_err();
        assert_eq!(panic_message(&*p).as_deref(), Some("static"));
    }
}
