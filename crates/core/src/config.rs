//! The canonical plan-time configuration surface: one serializable
//! [`EngineConfig`] holding every knob the paper tuned by hand.
//!
//! Before this module the knobs were scattered — block size on the
//! builder, kernel family on `EngineBuilder::kernels` /
//! `EcnnBackend::with_kernels` / the `ECNN_KERNELS` env var, plane
//! layout on `coalesce`, worker counts as ad-hoc per-call arguments.
//! [`EngineConfig`] consolidates them into a single value that
//!
//! * the [`EngineBuilder`](crate::engine::EngineBuilder) setters are thin
//!   sugar over (and [`Engine::config`](crate::engine::Engine::config)
//!   returns resolved),
//! * the plan-time autotuner ([`crate::tune`]) searches over and embeds
//!   verbatim in its [`TuningRecord`](crate::tune::TuningRecord),
//! * the documented `ECNN_*` environment namespace overrides in exactly
//!   one place ([`EngineConfig::from_env_overrides`]).
//!
//! # Environment overrides
//!
//! A deployed binary can be steered onto a known-good path without a
//! rebuild through the `ECNN_*` namespace, parsed once at
//! [`EngineBuilder::build`](crate::engine::EngineBuilder::build):
//!
//! | variable        | values                          | overrides            |
//! |-----------------|---------------------------------|----------------------|
//! | `ECNN_KERNELS`  | `simd` \| `packed` \| `reference` | [`EngineConfig::kernels`]  |
//! | `ECNN_COALESCE` | `1`/`true` \| `0`/`false`       | [`EngineConfig::coalesce`] |
//! | `ECNN_WORKERS`  | positive integer                | [`EngineConfig::workers`]  |
//! | `ECNN_VERIFY`   | `off` \| `lints` \| `strict`    | [`EngineConfig::verify`]   |
//!
//! Values are case-insensitive; invalid values are ignored (never
//! fatal) but recorded, and every applied or ignored override is
//! surfaced in the engine's `FrameReport` note so an overridden fleet
//! is observable.

use crate::json::{escape, Json};
use ecnn_isa::verify::VerifyMode;
use ecnn_sim::Kernels;
use std::fmt;

/// Every plan-time knob of an eCNN engine, in one serializable value.
///
/// `PartialEq`/`Eq` make resolved configs directly comparable (the
/// tuning-record round-trip test relies on it); the JSON form is
/// deterministic and stable across releases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Input block side (`xi`) the program is compiled for.
    pub block: usize,
    /// Worker parallelism sessions of this engine are meant to run at:
    /// the shard count of `Engine::run_image_auto` and the pool size of
    /// `Engine::async_session_auto`. `1` means serial; must be nonzero.
    pub workers: usize,
    /// Accumulation kernel family every execution path runs.
    pub kernels: Kernels,
    /// Whether sessions run the verifier-licensed coalesced plane
    /// layout. Incoherent with [`VerifyMode::Off`] (no license without a
    /// verification): explicitly asking for both is a build error.
    pub coalesce: bool,
    /// Static-verification mode run at build time.
    pub verify: VerifyMode,
}

impl EngineConfig {
    /// The default configuration at a given block size: serial, SIMD
    /// kernels, coalesced layout, lint-level verification — exactly what
    /// an un-tuned `Engine::builder().block(xi)` resolves to.
    pub fn new(block: usize) -> Self {
        Self {
            block,
            workers: 1,
            kernels: Kernels::Simd,
            coalesce: true,
            verify: VerifyMode::default(),
        }
    }

    /// Deterministic single-line JSON encoding, stable key order.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"block\": {}, \"workers\": {}, \"kernels\": {}, \"coalesce\": {}, \"verify\": {}}}",
            self.block,
            self.workers,
            escape(self.kernels.as_str()),
            self.coalesce,
            escape(self.verify.as_str()),
        )
    }

    /// Parses the [`EngineConfig::to_json`] encoding.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        Self::from_json_value(&Json::parse(text)?)
    }

    pub(crate) fn from_json_value(v: &Json) -> Result<Self, String> {
        let block = v.require("block")?.as_usize()?;
        let kernels = v.require("kernels")?.as_str()?;
        let verify = v.require("verify")?.as_str()?;
        Ok(Self {
            block,
            workers: v.require("workers")?.as_usize()?,
            kernels: Kernels::parse(kernels)
                .ok_or_else(|| format!("unknown kernels {kernels:?}"))?,
            coalesce: v.require("coalesce")?.as_bool()?,
            verify: VerifyMode::parse(verify)
                .ok_or_else(|| format!("unknown verify mode {verify:?}"))?,
        })
    }

    /// Reads the unified `ECNN_*` override namespace from the process
    /// environment — the single place these variables are parsed (see
    /// the [module docs](self) for the table).
    pub fn from_env_overrides() -> EnvOverrides {
        EnvOverrides::parse(
            [
                "ECNN_KERNELS",
                "ECNN_COALESCE",
                "ECNN_WORKERS",
                "ECNN_VERIFY",
            ]
            .into_iter()
            .filter_map(|name| std::env::var(name).ok().map(|v| (name, v))),
        )
    }
}

impl fmt::Display for EngineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block {} workers {} kernels {} {} verify {}",
            self.block,
            self.workers,
            self.kernels.as_str(),
            if self.coalesce { "coalesced" } else { "keyed" },
            self.verify.as_str(),
        )
    }
}

/// The parsed `ECNN_*` environment overrides: which knobs were set, and
/// a note per variable seen (applied or ignored) for report surfacing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EnvOverrides {
    /// `ECNN_KERNELS`, when set to a valid kernel name.
    pub kernels: Option<Kernels>,
    /// `ECNN_COALESCE`, when set to a valid boolean.
    pub coalesce: Option<bool>,
    /// `ECNN_WORKERS`, when set to a positive integer.
    pub workers: Option<usize>,
    /// `ECNN_VERIFY`, when set to a valid mode name.
    pub verify: Option<VerifyMode>,
    /// One human-readable note per `ECNN_*` variable observed, e.g.
    /// `"ECNN_KERNELS=packed"` or `"ECNN_WORKERS=zero ignored (invalid)"`.
    pub notes: Vec<String>,
}

impl EnvOverrides {
    /// Parses `(name, value)` pairs from the `ECNN_*` namespace. Pure —
    /// [`EngineConfig::from_env_overrides`] feeds it the real
    /// environment; tests feed it literals. Unknown names and invalid
    /// values are never fatal: they are recorded in
    /// [`EnvOverrides::notes`] and otherwise ignored, preserving the
    /// historical `ECNN_KERNELS` tolerance.
    pub fn parse<'a, I>(vars: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, String)>,
    {
        let mut o = Self::default();
        for (name, value) in vars {
            let applied = match name {
                "ECNN_KERNELS" => {
                    o.kernels = Kernels::parse(&value);
                    o.kernels.is_some()
                }
                "ECNN_COALESCE" => {
                    o.coalesce = parse_bool(&value);
                    o.coalesce.is_some()
                }
                "ECNN_WORKERS" => {
                    o.workers = value.parse::<usize>().ok().filter(|&n| n > 0);
                    o.workers.is_some()
                }
                "ECNN_VERIFY" => {
                    o.verify = VerifyMode::parse(&value);
                    o.verify.is_some()
                }
                _ => false,
            };
            if applied {
                o.notes
                    .push(format!("{name}={}", value.to_ascii_lowercase()));
            } else {
                o.notes.push(format!("{name}={value} ignored (invalid)"));
            }
        }
        o
    }

    /// Whether any override knob is set.
    pub fn any(&self) -> bool {
        self.kernels.is_some()
            || self.coalesce.is_some()
            || self.workers.is_some()
            || self.verify.is_some()
    }

    /// Applies the set knobs onto `cfg` (env beats everything else —
    /// the ops escape hatch).
    pub fn apply(&self, cfg: &mut EngineConfig) {
        if let Some(k) = self.kernels {
            cfg.kernels = k;
        }
        if let Some(c) = self.coalesce {
            cfg.coalesce = c;
        }
        if let Some(w) = self.workers {
            cfg.workers = w;
        }
        if let Some(v) = self.verify {
            cfg.verify = v;
        }
    }
}

fn parse_bool(value: &str) -> Option<bool> {
    match value.to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_json_round_trips() {
        let cfg = EngineConfig {
            block: 128,
            workers: 4,
            kernels: Kernels::Packed,
            coalesce: false,
            verify: VerifyMode::Strict,
        };
        let json = cfg.to_json();
        assert_eq!(EngineConfig::from_json(&json).unwrap(), cfg);
        // Default shape too.
        let d = EngineConfig::new(64);
        assert_eq!(EngineConfig::from_json(&d.to_json()).unwrap(), d);
    }

    #[test]
    fn config_json_rejects_unknown_tokens() {
        let bad = "{\"block\": 64, \"workers\": 1, \"kernels\": \"cuda\", \
                   \"coalesce\": true, \"verify\": \"lints\"}";
        assert!(EngineConfig::from_json(bad).unwrap_err().contains("cuda"));
        assert!(EngineConfig::from_json("{}").unwrap_err().contains("block"));
    }

    #[test]
    fn env_overrides_parse_the_unified_namespace() {
        let o = EnvOverrides::parse([
            ("ECNN_KERNELS", "Reference".to_string()),
            ("ECNN_COALESCE", "0".to_string()),
            ("ECNN_WORKERS", "4".to_string()),
            ("ECNN_VERIFY", "strict".to_string()),
        ]);
        assert_eq!(o.kernels, Some(Kernels::Reference));
        assert_eq!(o.coalesce, Some(false));
        assert_eq!(o.workers, Some(4));
        assert_eq!(o.verify, Some(VerifyMode::Strict));
        assert!(o.any());
        assert_eq!(o.notes.len(), 4);

        let mut cfg = EngineConfig::new(128);
        o.apply(&mut cfg);
        assert_eq!(cfg.kernels, Kernels::Reference);
        assert!(!cfg.coalesce);
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.verify, VerifyMode::Strict);
    }

    #[test]
    fn env_overrides_tolerate_invalid_values() {
        let o = EnvOverrides::parse([
            ("ECNN_KERNELS", "cuda".to_string()),
            ("ECNN_WORKERS", "0".to_string()),
            ("ECNN_VERIFY", "paranoid".to_string()),
        ]);
        assert!(!o.any());
        assert_eq!(o.notes.len(), 3);
        assert!(o.notes.iter().all(|n| n.contains("ignored")));
        let mut cfg = EngineConfig::new(128);
        let before = cfg;
        o.apply(&mut cfg);
        assert_eq!(cfg, before, "invalid overrides must not change anything");
    }
}
