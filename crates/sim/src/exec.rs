//! Functional (bit-exact) execution of FBISA programs on one image block,
//! split into a *plan* and an *execute* phase.
//!
//! [`BlockPlan`] walks a [`Program`] once up front: it validates leaf
//! bookkeeping and operand availability (write-before-read) and computes
//! every feature plane's shape and lifetime. [`execute`] then runs the
//! plan against a [`PlanePool`] — a reusable arena of planes keyed by
//! `(buffer, group)` plus the scratch accumulators — writing results in
//! place, so steady-state block execution allocates nothing. One pool
//! serves one worker: the streaming `Session` keeps one per stream and the
//! sharded backend one per worker thread.
//!
//! The executor mirrors the CIU datapath of Section 6.3 exactly:
//!
//! * features are 8-bit Q-format codes in block buffers;
//! * every convolution accumulates in full precision (`i64` here; the
//!   hardware's carry-save trees never round internally);
//! * `srcS` operands are aligned to the accumulator's fractional position
//!   and added before activation (the ADDE adder);
//! * ER leaf-modules requantize the expanded features to 8 bits between the
//!   LCONV3×3 and LCONV1×1 engines (the area-saving quantizer of
//!   Section 6.3.1);
//! * the single output rounding happens at the Q-format of the destination
//!   operand, then the Dst Reorder applies pixel-shuffle or pooling.
//!
//! The accumulation inner loops live in [`crate::kernels`]: the plan packs
//! every instruction's parameters once
//! ([`BlockPlan::packed`] — widened tap-major weights, pre-aligned biases,
//! zero-tap masks) and the default flat-slice micro-kernels consume that
//! cache with an interior/border row split, so steady-state frames do
//! zero kernel-parameter preparation. [`execute_with`] can instead run
//! the kept scalar [`Kernels::Reference`] path, which is bit-identical
//! and serves as the measured baseline and parity oracle.

use crate::config::EcnnConfig;
use crate::kernels;
use ecnn_isa::instr::{FeatLoc, Instruction, Opcode, LEAF_CH};
use ecnn_isa::params::{LeafParams, PackedKernelParams};
use ecnn_isa::program::Program;
use ecnn_isa::verify::memplan::MemoryPlan;
use ecnn_isa::verify::{DiagCode, Diagnostic, VerifyReport};
use ecnn_model::layer::PoolKind;
use ecnn_tensor::conv::align_code;
use ecnn_tensor::qformat::rescale_code;
use ecnn_tensor::{QFormat, Tensor};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;

/// Execution errors (all indicate compiler/simulator bugs, not user error).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// An operand referenced a plane that was never written.
    MissingPlane(FeatLoc),
    /// An instruction tried to read the DO stream.
    ReadFromDo,
    /// Spatial sizes disagreed with the instruction's attributes.
    Shape(String),
    /// Instruction/leaf bookkeeping mismatch.
    Leafs(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingPlane(l) => write!(f, "operand {l} was never written"),
            ExecError::ReadFromDo => write!(f, "cannot read from DO"),
            ExecError::Shape(m) => write!(f, "shape mismatch: {m}"),
            ExecError::Leafs(m) => write!(f, "leaf bookkeeping: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Which kernel implementation actually ran — the per-execution
/// attribution behind [`ExecStats::kernel_variant`], so a silently
/// misdetected SIMD fallback is visible in every stats report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelVariant {
    /// No execution recorded yet.
    #[default]
    None,
    /// The kept pre-packing scalar kernels ([`Kernels::Reference`]).
    Reference,
    /// The flat-slice packed kernels ([`Kernels::Packed`]).
    Packed,
    /// [`Kernels::Simd`] resolved to the portable scalar fallback.
    SimdScalar,
    /// [`Kernels::Simd`] running the SSE2 kernels.
    SimdSse2,
    /// [`Kernels::Simd`] running the AVX2 kernels.
    SimdAvx2,
    /// [`Kernels::Simd`] running the NEON kernels.
    SimdNeon,
    /// Executions with different variants were merged into one counter
    /// stream.
    Mixed,
}

impl KernelVariant {
    /// Folds another execution's variant into this tag: `None` yields to
    /// anything, equal tags keep, differing tags degrade to [`Mixed`].
    ///
    /// [`Mixed`]: KernelVariant::Mixed
    #[must_use]
    pub fn merge(self, other: KernelVariant) -> KernelVariant {
        match (self, other) {
            (KernelVariant::None, x) | (x, KernelVariant::None) => x,
            (a, b) if a == b => a,
            _ => KernelVariant::Mixed,
        }
    }

    /// Stable lower-case name (e.g. `"packed"`, `"simd-avx2"`, `"mixed"`).
    pub fn name(self) -> &'static str {
        match self {
            KernelVariant::None => "none",
            KernelVariant::Reference => "reference",
            KernelVariant::Packed => "packed",
            KernelVariant::SimdScalar => "simd-scalar",
            KernelVariant::SimdSse2 => "simd-sse2",
            KernelVariant::SimdAvx2 => "simd-avx2",
            KernelVariant::SimdNeon => "simd-neon",
            KernelVariant::Mixed => "mixed",
        }
    }
}

impl fmt::Display for KernelVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Activity counters accumulated over block executions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// LCONV3×3 multiply-accumulates actually performed.
    pub mac3: u64,
    /// LCONV1×1 multiply-accumulates actually performed.
    pub mac1: u64,
    /// Bytes read from block buffers.
    pub bb_read_bytes: u64,
    /// Bytes written to block buffers.
    pub bb_write_bytes: u64,
    /// Bytes consumed from the DI stream.
    pub di_bytes: u64,
    /// Bytes produced on the DO stream.
    pub do_bytes: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Pool buffers whose backing storage had to be (re)allocated.
    pub planes_allocated: u64,
    /// Pool buffers handed out with their storage recycled in place.
    pub planes_reused: u64,
    /// Instruction executions whose kernel parameters were served from the
    /// plan's packed cache (built once at plan time) — the observable that
    /// steady-state frames perform zero kernel-parameter preparation.
    pub params_reused: u64,
    /// Instruction executions that ran the verifier-licensed narrow
    /// (`i32`-lane) accumulation path. Zero unless [`Kernels::Simd`] ran
    /// *and* the plan carried `narrow_acc` range proofs.
    pub narrow_instrs: u64,
    /// Which kernel implementation produced these counters (merged across
    /// executions; [`KernelVariant::Mixed`] when they disagreed).
    pub kernel_variant: KernelVariant,
}

impl ExecStats {
    /// Adds `other`'s counters into `self`.
    pub fn accumulate(&mut self, other: &ExecStats) {
        self.mac3 += other.mac3;
        self.mac1 += other.mac1;
        self.bb_read_bytes += other.bb_read_bytes;
        self.bb_write_bytes += other.bb_write_bytes;
        self.di_bytes += other.di_bytes;
        self.do_bytes += other.do_bytes;
        self.instructions += other.instructions;
        self.planes_allocated += other.planes_allocated;
        self.planes_reused += other.planes_reused;
        self.params_reused += other.params_reused;
        self.narrow_instrs += other.narrow_instrs;
        self.kernel_variant = self.kernel_variant.merge(other.kernel_variant);
    }

    /// The deterministic work counters alone: the pool-recycling and
    /// packed-cache counters (which depend on arena warm-up state and
    /// kernel path, not on the input) are zeroed. This is the subset that
    /// is comparable across differently-warmed workers — e.g. a cold
    /// one-shot run vs a streaming session, or differently sharded
    /// executions of the same frame.
    pub fn work(&self) -> ExecStats {
        ExecStats {
            planes_allocated: 0,
            planes_reused: 0,
            params_reused: 0,
            narrow_instrs: 0,
            kernel_variant: KernelVariant::None,
            ..*self
        }
    }

    /// Evenly attributes a multi-frame accumulation across `frames`
    /// frames (integer division: each counter's per-frame share, with
    /// sub-frame remainders dropped). Pipelined runs interleave bands of
    /// several frames on one pool, so throughput reporting divides the
    /// merged totals back down; `frames == 0` returns the counters
    /// unchanged.
    pub fn per_frame(&self, frames: u64) -> ExecStats {
        if frames == 0 {
            return *self;
        }
        ExecStats {
            mac3: self.mac3 / frames,
            mac1: self.mac1 / frames,
            bb_read_bytes: self.bb_read_bytes / frames,
            bb_write_bytes: self.bb_write_bytes / frames,
            di_bytes: self.di_bytes / frames,
            do_bytes: self.do_bytes / frames,
            instructions: self.instructions / frames,
            planes_allocated: self.planes_allocated / frames,
            planes_reused: self.planes_reused / frames,
            params_reused: self.params_reused / frames,
            narrow_instrs: self.narrow_instrs / frames,
            kernel_variant: self.kernel_variant,
        }
    }

    /// Counters accumulated since `mark`, an earlier snapshot of the same
    /// monotonically growing stream. The variant tag (not a counter) is
    /// carried over from `self`.
    pub fn delta_since(&self, mark: &ExecStats) -> ExecStats {
        ExecStats {
            mac3: self.mac3 - mark.mac3,
            mac1: self.mac1 - mark.mac1,
            bb_read_bytes: self.bb_read_bytes - mark.bb_read_bytes,
            bb_write_bytes: self.bb_write_bytes - mark.bb_write_bytes,
            di_bytes: self.di_bytes - mark.di_bytes,
            do_bytes: self.do_bytes - mark.do_bytes,
            instructions: self.instructions - mark.instructions,
            planes_allocated: self.planes_allocated - mark.planes_allocated,
            planes_reused: self.planes_reused - mark.planes_reused,
            params_reused: self.params_reused - mark.params_reused,
            narrow_instrs: self.narrow_instrs - mark.narrow_instrs,
            kernel_variant: self.kernel_variant,
        }
    }
}

/// Observed value extrema of one instruction from a range-instrumented
/// execution (see [`execute_traced`]). Each field mirrors one bound of
/// the verifier's `InstrRange` prediction; `None` when the instruction
/// produced no values at that stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstrTrace {
    /// Final accumulator extrema: after srcS accumulation and ReLU,
    /// before requantization.
    pub acc: Option<(i64, i64)>,
    /// `ER` only: raw 3×3 expansion accumulator extrema across all
    /// leaves, before the internal ReLU/quantizer.
    pub er_acc3: Option<(i64, i64)>,
    /// Stored destination code extrema after requantization (for `DNX2`,
    /// scanned on the pre-pool grid, a superset of the pooled plane).
    pub dst: Option<(i64, i64)>,
}

/// Per-instruction observed extrema of one traced block execution.
#[derive(Clone, Debug, Default)]
pub struct ExecTrace {
    /// One record per instruction, in program order.
    pub instrs: Vec<InstrTrace>,
}

/// One observed-vs-predicted range violation found by
/// [`ExecTrace::check_against`]: `(instruction, stage, observed,
/// predicted)`.
pub type RangeViolation = (usize, &'static str, (i64, i64), (i64, i64));

impl ExecTrace {
    /// Checks every observed extremum against the verifier's predicted
    /// ranges, returning the first violation.
    pub fn check_against(&self, report: &VerifyReport) -> Option<RangeViolation> {
        for (i, t) in self.instrs.iter().enumerate() {
            let Some(Some(pred)) = report.ranges.get(i) else {
                continue;
            };
            let stages = [
                ("acc", t.acc, Some(pred.acc)),
                ("er_acc3", t.er_acc3, pred.er_acc3),
                ("dst", t.dst, Some(pred.dst)),
            ];
            for (name, observed, predicted) in stages {
                if let (Some(o), Some(p)) = (observed, predicted) {
                    if o.0 < p.0 || o.1 > p.1 {
                        return Some((i, name, o, p));
                    }
                }
            }
        }
        None
    }
}

fn scan_i64(t: &Tensor<i64>) -> Option<(i64, i64)> {
    let s = t.as_slice();
    let (first, rest) = s.split_first()?;
    Some(
        rest.iter()
            .fold((*first, *first), |(lo, hi), &v| (lo.min(v), hi.max(v))),
    )
}

fn scan_i16(t: &Tensor<i16>) -> Option<(i64, i64)> {
    let s = t.as_slice();
    let (first, rest) = s.split_first()?;
    let f = *first as i64;
    Some(
        rest.iter()
            .fold((f, f), |(lo, hi), &v| (lo.min(v as i64), hi.max(v as i64))),
    )
}

fn merge_extrema(slot: &mut Option<(i64, i64)>, obs: Option<(i64, i64)>) {
    if let Some((lo, hi)) = obs {
        *slot = Some(match *slot {
            Some((a, b)) => (a.min(lo), b.max(hi)),
            None => (lo, hi),
        });
    }
}

/// Identity of one pooled 32-channel plane: the logical buffer it lives in
/// plus its group offset — the `(buffer, group)` key the arena recycles
/// storage by.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlaneKey {
    /// A block-buffer plane.
    Bb {
        /// Buffer index.
        id: u8,
        /// 32-channel group inside the buffer.
        group: u8,
    },
    /// A streamed-input plane (post-unshuffle).
    Di {
        /// 32-channel group within the streamed input.
        group: u8,
    },
    /// A streamed-output plane.
    Do {
        /// 32-channel group within the streamed output.
        group: u8,
    },
}

impl From<FeatLoc> for PlaneKey {
    fn from(loc: FeatLoc) -> Self {
        match loc {
            FeatLoc::Bb { id, group } => PlaneKey::Bb { id, group },
            FeatLoc::Di { group } => PlaneKey::Di { group },
            FeatLoc::Do { group } => PlaneKey::Do { group },
        }
    }
}

/// Planning-time record of one plane: where it lives, its shape, and its
/// lifetime in instruction indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlaneInfo {
    /// The `(buffer, group)` the plane occupies.
    pub key: PlaneKey,
    /// Channel count: [`LEAF_CH`] for every plane except post-shuffle
    /// `UPX2` destinations, which carry `out_groups·LEAF_CH/4` channels.
    pub channels: usize,
    /// Spatial height.
    pub height: usize,
    /// Spatial width.
    pub width: usize,
    /// Instruction index that writes the plane; `None` for DI planes,
    /// which are streamed in before execution starts.
    pub born: Option<usize>,
    /// Index of the last instruction that reads the plane;
    /// `program.instructions.len()` marks the output-assembly step (DO
    /// planes). `None` for a plane that is never read.
    pub last_use: Option<usize>,
}

/// Operand plane indices (into `BlockPlan::planes`) of one instruction —
/// or, after mapping through a licensed [`MemoryPlan`], the physical slot
/// of each operand. The executor routes every checkout/read through these
/// so coalesced execution needs no per-access table lookups.
#[derive(Clone, Debug)]
struct InstrSlots {
    /// One entry per gathered source group, in group order.
    src: Vec<usize>,
    /// The srcS operand, when present.
    src_s: Option<usize>,
    /// The destination plane.
    dst: usize,
}

/// Slot routing for one whole program under a licensed [`MemoryPlan`]:
/// where each DI plane streams in, where each instruction's operands
/// live, and where the output assembly reads the DO planes.
#[derive(Clone, Debug)]
struct SlotRoute {
    di: Vec<usize>,
    instr: Vec<InstrSlots>,
    out: Vec<usize>,
}

/// The up-front execution plan for one [`Program`]: a single walk over the
/// instruction stream that validates leaf bookkeeping and operand
/// availability (write-before-read) and computes every plane's shape and
/// lifetime, so that [`execute`] can run check- and allocation-free
/// against a [`PlanePool`].
#[derive(Clone, Debug)]
pub struct BlockPlan<'a> {
    program: &'a Program,
    leafs: &'a [Vec<LeafParams>],
    /// Post-unshuffle DI plane geometry.
    di_groups: usize,
    di_plane_side: usize,
    /// Every plane the program touches: DI planes first, then one entry
    /// per instruction write, in program order.
    planes: Vec<PlaneInfo>,
    /// DO groups assembled into the logical output block.
    out_groups: usize,
    /// Per-instruction packed kernel parameters: weights widened once to
    /// `i32` in tap-major order, biases pre-aligned to the accumulator's
    /// fractional position, zero taps/leaves masked. Built on the plan's
    /// single walk and reused by every frame, so steady-state execution
    /// performs zero kernel-parameter preparation. Each entry also carries
    /// its `narrow_acc` license, stamped from the verifier's interval
    /// analysis at plan time.
    packed: Vec<PackedKernelParams>,
    /// The SIMD tier [`Kernels::Simd`] dispatches to, resolved once at
    /// plan time by runtime feature detection.
    simd: kernels::simd::SimdLevel,
    /// The verifier-licensed coalesced memory layout, stamped at plan
    /// time only when verification found no hard errors (mirroring the
    /// `narrow_acc` license). `None` falls back to the keyed
    /// one-slot-per-`(buffer, group)` layout.
    memplan: Option<MemoryPlan>,
    /// Operand→slot routing derived from `memplan`; present iff the plan
    /// is licensed, absent in the keyed fallback.
    route: Option<SlotRoute>,
}

impl<'a> BlockPlan<'a> {
    /// Plans `program` with the IDU-decoded `leafs` (one vector per
    /// instruction, as produced by the compiler or `PackedParams::unpack`).
    ///
    /// # Errors
    ///
    /// [`ExecError::Leafs`] for leaf-count mismatches,
    /// [`ExecError::MissingPlane`] / [`ExecError::ReadFromDo`] for operands
    /// that are read before any instruction writes them, and
    /// [`ExecError::Shape`] for statically inconsistent plane geometry.
    pub fn new(program: &'a Program, leafs: &'a [Vec<LeafParams>]) -> Result<Self, ExecError> {
        if leafs.len() != program.instructions.len() {
            return Err(ExecError::Leafs(format!(
                "{} leaf sets for {} instructions",
                leafs.len(),
                program.instructions.len()
            )));
        }
        let s = program.input_unshuffle.unwrap_or(1);
        if s == 0 || !program.di_side.is_multiple_of(s) {
            return Err(ExecError::Shape(format!(
                "DI side {} not divisible by unshuffle factor {s}",
                program.di_side
            )));
        }
        let di_plane_side = program.di_side / s;
        let di_groups = (program.di_channels * s * s).div_ceil(LEAF_CH);

        let mut planes: Vec<PlaneInfo> = Vec::new();
        // Latest write per key (index into `planes`).
        let mut live: HashMap<PlaneKey, usize> = HashMap::new();
        for g in 0..di_groups {
            let key = PlaneKey::Di { group: g as u8 };
            live.insert(key, planes.len());
            planes.push(PlaneInfo {
                key,
                channels: LEAF_CH,
                height: di_plane_side,
                width: di_plane_side,
                born: None,
                last_use: None,
            });
        }

        let mark_read = |planes: &mut Vec<PlaneInfo>,
                         live: &HashMap<PlaneKey, usize>,
                         loc: FeatLoc,
                         at: usize,
                         expect_side: Option<usize>|
         -> Result<usize, ExecError> {
            if matches!(loc, FeatLoc::Do { .. }) {
                return Err(ExecError::ReadFromDo);
            }
            let idx = *live
                .get(&PlaneKey::from(loc))
                .ok_or(ExecError::MissingPlane(loc))?;
            let info = &mut planes[idx];
            if let Some(side) = expect_side {
                if info.height != side || info.width != side {
                    return Err(ExecError::Shape(format!(
                        "plane {}x{} vs expected side {side}",
                        info.height, info.width
                    )));
                }
            }
            info.last_use = Some(at);
            Ok(idx)
        };

        // Plane-table indices of every instruction's operands, recorded on
        // the same walk so a licensed memory plan can be turned into
        // direct slot routing without a second resolution pass.
        let mut bindings: Vec<InstrSlots> = Vec::with_capacity(program.instructions.len());

        for (i, (ins, leafset)) in program.instructions.iter().zip(leafs).enumerate() {
            // Structural invariants first, so the executor's `expect`
            // sites on Q-format presence are genuinely unreachable.
            if let Err(e) = ins.check() {
                return Err(ExecError::Leafs(format!("instr {i}: {e}")));
            }
            if ins.src_s.is_some() && ins.q.src_s.is_none() {
                return Err(ExecError::Leafs(format!(
                    "instr {i}: srcS operand without a srcS format"
                )));
            }
            if ins.opcode == Opcode::Er && ins.q.mid.is_none() {
                return Err(ExecError::Leafs(format!(
                    "instr {i}: ER without a mid format"
                )));
            }
            if ins.opcode.has_conv1x1() && ins.q.b1.is_none() {
                return Err(ExecError::Leafs(format!(
                    "instr {i}: 1x1 opcode without a 1x1 bias format"
                )));
            }
            if leafset.len() != ins.leaf_modules() {
                return Err(ExecError::Leafs(format!(
                    "{} leafs but instruction declares {}",
                    leafset.len(),
                    ins.leaf_modules()
                )));
            }
            let mut src_idx = Vec::with_capacity(ins.in_groups);
            for g in 0..ins.in_groups {
                src_idx.push(mark_read(
                    &mut planes,
                    &live,
                    ins.src.offset(g),
                    i,
                    Some(ins.in_size.0),
                )?);
            }
            let srcs_idx = match ins.src_s {
                // Geometry is checked at accumulation time (the srcS crop
                // depends on the destination domain).
                Some(srcs) => Some(mark_read(&mut planes, &live, srcs, i, None)?),
                None => None,
            };
            if matches!(ins.dst, FeatLoc::Di { .. }) {
                return Err(ExecError::Shape("cannot write to DI".into()));
            }
            let key = PlaneKey::from(ins.dst);
            bindings.push(InstrSlots {
                src: src_idx,
                src_s: srcs_idx,
                dst: planes.len(),
            });
            live.insert(key, planes.len());
            planes.push(PlaneInfo {
                key,
                // Post-shuffle UPX2 planes pack out_groups·LEAF_CH pre-
                // shuffle channels into out_groups·LEAF_CH/4 at 2× side.
                channels: if ins.opcode == Opcode::Upx2 {
                    ins.out_groups * LEAF_CH / 4
                } else {
                    LEAF_CH
                },
                height: ins.out_size.1,
                width: ins.out_size.0,
                born: Some(i),
                last_use: None,
            });
        }

        let out_groups = program.do_channels.div_ceil(LEAF_CH);
        let end = program.instructions.len();
        let mut do_idx = Vec::with_capacity(out_groups);
        for g in 0..out_groups {
            let key = PlaneKey::Do { group: g as u8 };
            let idx = *live
                .get(&key)
                .ok_or(ExecError::MissingPlane(FeatLoc::Do { group: g as u8 }))?;
            if planes[idx].height != program.do_side {
                return Err(ExecError::Shape(format!(
                    "DO plane side {} vs {}",
                    planes[idx].height, program.do_side
                )));
            }
            planes[idx].last_use = Some(end);
            do_idx.push(idx);
        }

        let mut packed: Vec<PackedKernelParams> = program
            .instructions
            .iter()
            .zip(leafs)
            .map(|(ins, l)| PackedKernelParams::pack(ins, l))
            .collect();
        // Stamp each instruction's narrow-accumulation license from the
        // verifier's interval analysis: `narrow_acc` proves every
        // convolution-stage accumulator fits `i32`, which licenses the
        // SIMD kernels' 8-wide `i32` path. A report with errors (or an
        // unanalyzable instruction, `ranges[i] == None`) leaves the flag
        // false — no proof, no narrow path.
        let report = ecnn_isa::verify::verify(program, leafs);
        let mut memplan = None;
        if !report.has_errors() {
            for (p, r) in packed.iter_mut().zip(&report.ranges) {
                p.narrow_acc = r.as_ref().is_some_and(|r| r.narrow_acc);
            }
            // Coalesced plane layout, under the same license: only an
            // error-free verification proves no two simultaneously-live
            // planes share a slot. A divergent plane table (the verifier
            // derived a different plane count than this walk) also drops
            // the plan — no proof, no coalescing.
            memplan = MemoryPlan::build(&report).filter(|m| m.plane_slots.len() == planes.len());
        }
        let route = memplan.as_ref().map(|m| SlotRoute {
            di: m.plane_slots[..di_groups].to_vec(),
            instr: bindings
                .iter()
                .map(|b| InstrSlots {
                    src: b.src.iter().map(|&i| m.plane_slots[i]).collect(),
                    src_s: b.src_s.map(|i| m.plane_slots[i]),
                    dst: m.plane_slots[b.dst],
                })
                .collect(),
            out: do_idx.iter().map(|&i| m.plane_slots[i]).collect(),
        });
        Ok(Self {
            program,
            leafs,
            di_groups,
            di_plane_side,
            planes,
            out_groups,
            packed,
            simd: kernels::simd::detect(),
            memplan,
            route,
        })
    }

    /// The planned program.
    pub fn program(&self) -> &'a Program {
        self.program
    }

    /// Every plane the program touches, with shapes and lifetimes: DI
    /// planes first (born `None`), then one entry per instruction write in
    /// program order.
    pub fn planes(&self) -> &[PlaneInfo] {
        &self.planes
    }

    /// Number of 32-channel DI planes streamed in per block.
    pub fn di_groups(&self) -> usize {
        self.di_groups
    }

    /// The per-instruction packed kernel-parameter cache the flat-slice
    /// micro-kernels consume (one entry per instruction, in program
    /// order).
    pub fn packed(&self) -> &[PackedKernelParams] {
        &self.packed
    }

    /// Heap bytes the packed kernel-parameter cache occupies.
    pub fn packed_bytes(&self) -> usize {
        self.packed.iter().map(PackedKernelParams::bytes).sum()
    }

    /// The SIMD tier [`Kernels::Simd`] executions of this plan dispatch
    /// to (resolved once at plan time by runtime feature detection).
    pub fn simd_level(&self) -> kernels::simd::SimdLevel {
        self.simd
    }

    /// How many instructions carry the verifier's narrow-accumulation
    /// (`i32`-safe) range proof.
    pub fn narrow_licensed(&self) -> usize {
        self.packed.iter().filter(|p| p.narrow_acc).count()
    }

    /// Revokes every narrow-accumulation license, forcing
    /// [`Kernels::Simd`] executions onto the wide (`i64`) SIMD path. For
    /// parity tests and benchmarks that isolate the lane-width effect.
    pub fn force_wide(&mut self) {
        for p in &mut self.packed {
            p.narrow_acc = false;
        }
    }

    /// The verifier-licensed coalesced memory layout, when one was proven
    /// at plan time (`None` means executions fall back to the keyed
    /// one-slot-per-`(buffer, group)` layout).
    pub fn memory_plan(&self) -> Option<&MemoryPlan> {
        self.memplan.as_ref()
    }

    /// Whether executions of this plan run coalesced (a licensed
    /// [`MemoryPlan`] routes every plane onto shared physical slots).
    pub fn coalesced(&self) -> bool {
        self.route.is_some()
    }

    /// Revokes the coalesced memory plan, forcing executions onto the
    /// keyed one-slot-per-plane layout. For parity tests, benchmarks
    /// isolating the coalescing effect, and `EngineBuilder::coalesce
    /// (false)`.
    pub fn force_keyed(&mut self) {
        self.memplan = None;
        self.route = None;
    }

    /// Peak plane bytes one block execution of *this* plan needs: the
    /// proven coalesced peak when a [`MemoryPlan`] is licensed, the keyed
    /// [`BlockPlan::peak_plane_bytes`] fallback otherwise. The pool's
    /// observed high-water mark ([`PlanePool::peak_resident_bytes`])
    /// never exceeds this.
    pub fn planned_peak_bytes(&self) -> usize {
        self.memplan
            .as_ref()
            .map_or_else(|| self.peak_plane_bytes(), |m| m.peak_bytes)
    }

    fn di_slot(&self, g: usize) -> Option<usize> {
        self.route.as_ref().map(|r| r.di[g])
    }

    fn src_slots(&self, idx: usize) -> Option<&[usize]> {
        self.route.as_ref().map(|r| r.instr[idx].src.as_slice())
    }

    fn srcs_slot(&self, idx: usize) -> Option<usize> {
        self.route.as_ref().and_then(|r| r.instr[idx].src_s)
    }

    fn dst_slot(&self, idx: usize) -> Option<usize> {
        self.route.as_ref().map(|r| r.instr[idx].dst)
    }

    fn do_slot(&self, g: usize) -> Option<usize> {
        self.route.as_ref().map(|r| r.out[g])
    }

    /// Peak bytes of *keyed* `(buffer, group)` plane storage one block
    /// execution needs. Scratch buffers (the gather input, the `i64`
    /// accumulators, the ER mid plane, the DNX2 pre-pool plane and the
    /// assembled output) are pool-resident too but not counted here — a
    /// warm pool's total footprint is larger, dominated by the 8-byte
    /// accumulator elements.
    pub fn peak_plane_bytes(&self) -> usize {
        // Keys are recycled in place, so the pool's footprint is the max
        // shape ever taken per key.
        let mut peak: HashMap<PlaneKey, usize> = HashMap::new();
        for p in &self.planes {
            let bytes = p.channels * p.height * p.width * std::mem::size_of::<i16>();
            let e = peak.entry(p.key).or_insert(0);
            *e = (*e).max(bytes);
        }
        peak.values().sum()
    }
}

/// The plane storage half of a [`PlanePool`], split out so the executor
/// can borrow it alongside the scratch accumulators. Keyed executions
/// store planes in the `(buffer, group)` map; coalesced executions (a
/// licensed [`MemoryPlan`]) store them in the slot vector instead. The
/// arena tracks a resident-bytes high-water mark across both, so the
/// observed peak can be audited against the planner's proven peak.
#[derive(Debug, Default)]
struct PlaneArena {
    planes: HashMap<PlaneKey, Tensor<i16>>,
    slots: Vec<Option<Tensor<i16>>>,
    resident_bytes: usize,
    peak_resident_bytes: usize,
}

/// A reusable arena of feature planes (keyed by [`PlaneKey`] or, under a
/// licensed [`MemoryPlan`], routed onto shared physical slots) and
/// scratch accumulators. One pool serves one executor worker; after the
/// first block has warmed every buffer to its peak size, [`execute`]
/// performs zero allocations per block. The pool also owns the
/// [`ExecStats`] counters its executions accumulate.
#[derive(Debug, Default)]
pub struct PlanePool {
    arena: PlaneArena,
    /// Gathered (possibly multi-group) input scratch.
    wide: Option<Tensor<i16>>,
    /// Main full-precision accumulator.
    acc_a: Option<Tensor<i64>>,
    /// Secondary accumulator: UPX2 shuffle target / ER per-leaf 3×3 stage.
    acc_b: Option<Tensor<i64>>,
    /// Narrow (`i32`) twin of `acc_a`, used only by verifier-licensed
    /// [`Kernels::Simd`] executions; widened into `acc_a` before the
    /// shared epilogue.
    acc_a32: Option<Tensor<i32>>,
    /// Narrow twin of `acc_b` (ER per-leaf 3×3 stage).
    acc_b32: Option<Tensor<i32>>,
    /// ER requantized expansion plane.
    mid: Option<Tensor<i16>>,
    /// DNX2 pre-pool quantized plane.
    quant: Option<Tensor<i16>>,
    /// Assembled logical output block.
    out: Option<Tensor<i16>>,
    stats: ExecStats,
}

/// Ensures `slot` holds a tensor, recording whether recycling it for
/// `needed` elements keeps its storage (`planes_reused`) or must allocate
/// (`planes_allocated`).
fn ensure_slot<'s, T: Copy + Default>(
    slot: &'s mut Option<Tensor<T>>,
    stats: &mut ExecStats,
    needed: usize,
) -> &'s mut Tensor<T> {
    match slot {
        Some(t) => {
            if t.capacity() < needed {
                stats.planes_allocated += 1;
            } else {
                stats.planes_reused += 1;
            }
        }
        None => {
            stats.planes_allocated += 1;
            *slot = Some(Tensor::zeros(1, 1, 1));
        }
    }
    slot.as_mut().expect("slot filled above")
}

/// [`ensure_slot`] plus an in-place [`Tensor::reset`] to `c×h×w`
/// (zero-filled).
fn ensure<'s, T: Copy + Default>(
    slot: &'s mut Option<Tensor<T>>,
    stats: &mut ExecStats,
    c: usize,
    h: usize,
    w: usize,
) -> &'s mut Tensor<T> {
    let t = ensure_slot(slot, stats, c * h * w);
    t.reset(c, h, w);
    t
}

/// [`ensure`] without the zero-fill — for scratch whose every element the
/// caller is about to overwrite (stale values may survive the reshape).
fn ensure_overwrite<'s, T: Copy + Default>(
    slot: &'s mut Option<Tensor<T>>,
    stats: &mut ExecStats,
    c: usize,
    h: usize,
    w: usize,
) -> &'s mut Tensor<T> {
    let t = ensure_slot(slot, stats, c * h * w);
    t.reset_no_fill(c, h, w);
    t
}

/// Where a plane lives in the arena: a routed physical slot (a licensed
/// coalesced layout) or its `(buffer, group)` key (the keyed fallback).
#[derive(Clone, Copy, Debug)]
enum Place {
    Slot(usize),
    Key(PlaneKey),
}

/// Checks out the pooled plane at `place` with shape `c×h×w`, recycling
/// its storage when capacity allows, and maintaining the arena's
/// resident-bytes high-water mark. `zero` selects whether recycled
/// contents are cleared; pass `false` only when every element will be
/// overwritten.
fn checkout<'m>(
    arena: &'m mut PlaneArena,
    stats: &mut ExecStats,
    place: Place,
    c: usize,
    h: usize,
    w: usize,
    zero: bool,
) -> &'m mut Tensor<i16> {
    let needed = c * h * w;
    let displaced = match place {
        Place::Slot(s) => arena
            .slots
            .get(s)
            .and_then(Option::as_ref)
            .map_or(0, Tensor::len),
        Place::Key(key) => arena.planes.get(&key).map_or(0, Tensor::len),
    };
    arena.resident_bytes = arena.resident_bytes - displaced * std::mem::size_of::<i16>()
        + needed * std::mem::size_of::<i16>();
    arena.peak_resident_bytes = arena.peak_resident_bytes.max(arena.resident_bytes);
    match place {
        Place::Slot(s) => {
            if arena.slots.len() <= s {
                arena.slots.resize_with(s + 1, || None);
            }
            let entry = &mut arena.slots[s];
            match entry {
                Some(t) => {
                    if t.capacity() < needed {
                        stats.planes_allocated += 1;
                    } else {
                        stats.planes_reused += 1;
                    }
                    if zero {
                        t.reset(c, h, w);
                    } else {
                        t.reset_no_fill(c, h, w);
                    }
                    t
                }
                None => {
                    stats.planes_allocated += 1;
                    entry.insert(Tensor::zeros(c, h, w))
                }
            }
        }
        Place::Key(key) => match arena.planes.entry(key) {
            Entry::Occupied(e) => {
                let t = e.into_mut();
                if t.capacity() < needed {
                    stats.planes_allocated += 1;
                } else {
                    stats.planes_reused += 1;
                }
                if zero {
                    t.reset(c, h, w);
                } else {
                    t.reset_no_fill(c, h, w);
                }
                t
            }
            Entry::Vacant(v) => {
                stats.planes_allocated += 1;
                v.insert(Tensor::zeros(c, h, w))
            }
        },
    }
}

/// Reads the pooled plane for `loc` — from `slot` when the plan routes it
/// (coalesced), from the key map otherwise — charging block-buffer read
/// traffic.
fn read_plane<'m>(
    arena: &'m PlaneArena,
    stats: &mut ExecStats,
    loc: FeatLoc,
    slot: Option<usize>,
) -> Result<&'m Tensor<i16>, ExecError> {
    if matches!(loc, FeatLoc::Do { .. }) {
        return Err(ExecError::ReadFromDo);
    }
    let plane = match slot {
        Some(s) => arena.slots.get(s).and_then(Option::as_ref),
        None => arena.planes.get(&PlaneKey::from(loc)),
    }
    .ok_or(ExecError::MissingPlane(loc))?;
    if matches!(loc, FeatLoc::Bb { .. }) {
        stats.bb_read_bytes += plane.len() as u64;
    }
    Ok(plane)
}

impl PlanePool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out the plane for `key` with shape `channels×height×width`
    /// (zero-filled), recycling its storage when capacity allows. Every
    /// key owns disjoint storage: a checked-out plane never aliases
    /// another live plane.
    pub fn checkout(
        &mut self,
        key: PlaneKey,
        channels: usize,
        height: usize,
        width: usize,
    ) -> &mut Tensor<i16> {
        checkout(
            &mut self.arena,
            &mut self.stats,
            Place::Key(key),
            channels,
            height,
            width,
            true,
        )
    }

    /// The plane currently pooled for `key`, if any. Coalesced executions
    /// (a plan with a licensed [`MemoryPlan`]) store planes by slot, not
    /// by key, so this only reflects keyed checkouts.
    pub fn plane(&self, key: PlaneKey) -> Option<&Tensor<i16>> {
        self.arena.planes.get(&key)
    }

    /// Counters accumulated by executions (and checkouts) on this pool.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Number of pooled planes currently resident (keyed planes plus
    /// occupied coalesced slots).
    pub fn resident_planes(&self) -> usize {
        self.arena.planes.len() + self.arena.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Plane bytes currently resident (keyed planes plus occupied
    /// coalesced slots, at their current logical shapes; scratch
    /// accumulators are not counted).
    pub fn resident_bytes(&self) -> usize {
        self.arena.resident_bytes
    }

    /// High-water mark of [`PlanePool::resident_bytes`] over every
    /// checkout this pool has served — the observed counterpart of
    /// `BlockPlan::planned_peak_bytes`, which it provably never exceeds.
    /// Survives [`PlanePool::clear`].
    pub fn peak_resident_bytes(&self) -> usize {
        self.arena.peak_resident_bytes
    }

    /// Drops every pooled buffer (planes, scratch and the assembled
    /// output) while keeping the counters and the resident-bytes
    /// high-water mark.
    pub fn clear(&mut self) {
        self.arena.planes.clear();
        self.arena.slots.clear();
        self.arena.resident_bytes = 0;
        self.wide = None;
        self.acc_a = None;
        self.acc_b = None;
        self.acc_a32 = None;
        self.acc_b32 = None;
        self.mid = None;
        self.quant = None;
        self.out = None;
    }
}

/// Which accumulation kernels [`execute_with`] runs. All three produce
/// bit-identical output blocks on every input.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Kernels {
    /// The flat-slice micro-kernels fed by the plan's packed parameter
    /// cache (interior/border split, zero per-frame prep) — the default
    /// for raw [`execute`] callers.
    #[default]
    Packed,
    /// The kept pre-packing scalar kernels
    /// ([`crate::kernels::reference`]): bit-identical output, used as the
    /// measured perf baseline and the parity-test oracle.
    Reference,
    /// Explicit SIMD micro-kernels ([`crate::kernels::simd`]) over the
    /// same packed layout, dispatched at plan time by runtime feature
    /// detection ([`BlockPlan::simd_level`]); instructions whose plan
    /// entry carries the verifier's `narrow_acc` proof additionally run
    /// the 8-wide `i32` accumulation path.
    Simd,
}

impl Kernels {
    /// Every selectable kernel family, fastest first — the default
    /// search axis of the plan-time autotuner.
    pub const ALL: [Kernels; 3] = [Kernels::Simd, Kernels::Packed, Kernels::Reference];

    /// Stable lowercase name (`"simd"`, `"packed"`, `"reference"`), the
    /// inverse of [`Kernels::parse`] — the serialization token used by
    /// `EngineConfig` records and the `ECNN_KERNELS` override.
    pub fn as_str(self) -> &'static str {
        match self {
            Kernels::Packed => "packed",
            Kernels::Reference => "reference",
            Kernels::Simd => "simd",
        }
    }

    /// Parses a `Kernels` from a case-insensitive name as used by the
    /// `ECNN_KERNELS` env override and `bench_kernels --variant`
    /// (`"packed"`, `"simd"`, `"reference"`).
    pub fn parse(name: &str) -> Option<Kernels> {
        match name.to_ascii_lowercase().as_str() {
            "packed" => Some(Kernels::Packed),
            "simd" => Some(Kernels::Simd),
            "reference" => Some(Kernels::Reference),
            _ => None,
        }
    }

    /// The [`KernelVariant`] tag an execution of this selection reports,
    /// given the plan's resolved SIMD tier.
    pub fn variant(self, level: kernels::simd::SimdLevel) -> KernelVariant {
        use kernels::simd::SimdLevel;
        match self {
            Kernels::Packed => KernelVariant::Packed,
            Kernels::Reference => KernelVariant::Reference,
            Kernels::Simd => match level {
                SimdLevel::Avx2 => KernelVariant::SimdAvx2,
                SimdLevel::Sse2 => KernelVariant::SimdSse2,
                SimdLevel::Neon => KernelVariant::SimdNeon,
                SimdLevel::Scalar => KernelVariant::SimdScalar,
            },
        }
    }
}

/// Executes one planned block on `pool`, returning the pool-owned logical
/// output block (side `program.do_side`), valid until the next execution.
///
/// `input` holds the *logical* input channels (e.g. 3 for RGB) as codes in
/// the program's `di_q` format, with side `program.di_side`.
///
/// # Errors
///
/// See [`ExecError`]. Operand availability and leaf bookkeeping were
/// already validated by [`BlockPlan::new`]; the remaining runtime errors
/// guard data-dependent geometry.
pub fn execute<'p>(
    plan: &BlockPlan<'_>,
    pool: &'p mut PlanePool,
    input: &Tensor<i16>,
) -> Result<&'p Tensor<i16>, ExecError> {
    execute_with(plan, pool, input, Kernels::Packed)
}

/// [`execute`] with an explicit kernel selection. Both paths produce
/// bit-identical output blocks and identical [`ExecStats::work`]
/// counters; only speed (and the non-work cache counters) differ.
///
/// # Errors
///
/// See [`execute`].
pub fn execute_with<'p>(
    plan: &BlockPlan<'_>,
    pool: &'p mut PlanePool,
    input: &Tensor<i16>,
    kernels: Kernels,
) -> Result<&'p Tensor<i16>, ExecError> {
    execute_inner(plan, pool, input, kernels, None)
}

/// [`execute`] on the reference kernels with per-instruction range
/// instrumentation: every accumulator is scanned for its extrema right
/// before requantization (and every `ER` expansion accumulator before its
/// internal ReLU), so the observed ranges can be checked against the
/// static verifier's predicted `InstrRange`s via
/// [`ExecTrace::check_against`].
///
/// # Errors
///
/// See [`execute`].
pub fn execute_traced(
    plan: &BlockPlan<'_>,
    pool: &mut PlanePool,
    input: &Tensor<i16>,
) -> Result<(Tensor<i16>, ExecTrace), ExecError> {
    let mut trace = ExecTrace {
        instrs: vec![InstrTrace::default(); plan.program.instructions.len()],
    };
    let out = execute_inner(
        plan,
        pool,
        input,
        Kernels::Reference,
        Some(&mut trace.instrs),
    )?
    .clone();
    Ok((out, trace))
}

fn execute_inner<'p>(
    plan: &BlockPlan<'_>,
    pool: &'p mut PlanePool,
    input: &Tensor<i16>,
    kernels: Kernels,
    mut traces: Option<&mut [InstrTrace]>,
) -> Result<&'p Tensor<i16>, ExecError> {
    let p = plan.program;
    if input.height() != p.di_side || input.width() != p.di_side {
        return Err(ExecError::Shape(format!(
            "input {}x{} vs DI side {}",
            input.height(),
            input.width(),
            p.di_side
        )));
    }
    if input.channels() != p.di_channels {
        return Err(ExecError::Shape(format!(
            "input channels {} vs {}",
            input.channels(),
            p.di_channels
        )));
    }
    stream_input(plan, pool, input);
    pool.stats.kernel_variant = pool.stats.kernel_variant.merge(kernels.variant(plan.simd));
    for (i, ins) in p.instructions.iter().enumerate() {
        let trace = traces.as_deref_mut().map(|t| &mut t[i]);
        match ins.opcode {
            Opcode::Conv | Opcode::Dnx2 | Opcode::Upx2 => {
                exec_conv3(plan, i, pool, kernels, trace)?
            }
            Opcode::Conv1 => exec_conv1(plan, i, pool, kernels, trace)?,
            Opcode::Er => exec_er(plan, i, pool, kernels, trace)?,
        }
        // Both fast paths consume the plan's packed parameter cache.
        if kernels != Kernels::Reference {
            pool.stats.params_reused += 1;
        }
        pool.stats.instructions += 1;
    }
    assemble_output(plan, pool)
}

/// Cross-checks the simulator's plan against the static verifier's
/// independently derived plane table — the two halves of the
/// differential oracle. Returns one `plan-divergence` diagnostic per
/// disagreement (shape, placement, or lifetime); an empty vector means
/// the two derivations agree exactly.
pub fn crosscheck_plan(plan: &BlockPlan<'_>, report: &VerifyReport) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut diverge = |instr: Option<usize>, detail: String| {
        out.push(Diagnostic {
            code: DiagCode::PlanDivergence,
            severity: DiagCode::PlanDivergence.severity(),
            instr,
            detail,
        });
    };
    let planned = plan.planes();
    if planned.len() != report.planes.len() {
        diverge(
            None,
            format!(
                "plan tracks {} planes, verifier derived {}",
                planned.len(),
                report.planes.len()
            ),
        );
        return out;
    }
    for (info, rec) in planned.iter().zip(&report.planes) {
        if info.key != PlaneKey::from(rec.loc) {
            diverge(
                rec.born,
                format!("plane key {:?} vs verifier {}", info.key, rec.loc),
            );
            continue;
        }
        if (info.channels, info.height, info.width) != (rec.channels, rec.height, rec.width) {
            diverge(
                rec.born,
                format!(
                    "{}: plan shape {}x{}x{} vs verifier {}x{}x{}",
                    rec.loc,
                    info.channels,
                    info.height,
                    info.width,
                    rec.channels,
                    rec.height,
                    rec.width
                ),
            );
        }
        if info.born != rec.born || info.last_use != rec.last_use {
            diverge(
                rec.born,
                format!(
                    "{}: plan lifetime {:?}..{:?} vs verifier {:?}..{:?}",
                    rec.loc, info.born, info.last_use, rec.born, rec.last_use
                ),
            );
        }
    }
    out
}

/// Unpacks the DI stream into pooled 32-channel planes, applying the
/// DI-side unshuffle (DnERNet-12ch) and zero-channel padding in place.
fn stream_input(plan: &BlockPlan<'_>, pool: &mut PlanePool, input: &Tensor<i16>) {
    pool.stats.di_bytes += input.len() as u64;
    let s = plan.program.input_unshuffle.unwrap_or(1);
    let side = plan.di_plane_side;
    let in_ch = input.channels();
    for g in 0..plan.di_groups {
        let plane = checkout(
            &mut pool.arena,
            &mut pool.stats,
            plan.di_slot(g)
                .map_or(Place::Key(PlaneKey::Di { group: g as u8 }), Place::Slot),
            LEAF_CH,
            side,
            side,
            false,
        );
        for c in 0..LEAF_CH {
            let oc = g * LEAF_CH + c;
            let ic = oc / (s * s);
            if ic >= in_ch {
                // Zero-channel padding (the plane is not pre-cleared).
                plane.channel_mut(c).fill(0);
                continue;
            }
            if s == 1 {
                plane.channel_mut(c).copy_from_slice(input.channel(ic));
                continue;
            }
            let rem = oc % (s * s);
            let (dy, dx) = (rem / s, rem % s);
            for y in 0..side {
                let src = input.row(ic, y * s + dy);
                for (d, &v) in plane
                    .row_mut(c, y)
                    .iter_mut()
                    .zip(src[dx..].iter().step_by(s))
                {
                    *d = v;
                }
            }
        }
    }
}

/// Gathers `groups` consecutive planes into the pool's wide scratch,
/// resolving each group through `route` when the plan is coalesced.
fn gather<'m>(
    arena: &PlaneArena,
    wide: &'m mut Option<Tensor<i16>>,
    stats: &mut ExecStats,
    base: FeatLoc,
    groups: usize,
    side: usize,
    route: Option<&[usize]>,
) -> Result<&'m Tensor<i16>, ExecError> {
    let wide = ensure_overwrite(wide, stats, groups * LEAF_CH, side, side);
    for g in 0..groups {
        let plane = read_plane(arena, stats, base.offset(g), route.map(|r| r[g]))?;
        if plane.height() != side || plane.width() != side {
            return Err(ExecError::Shape(format!(
                "plane {}x{} vs expected side {side}",
                plane.height(),
                plane.width()
            )));
        }
        // Groups are consecutive 32-channel slabs: one contiguous copy.
        let px = side * side;
        let base = g * LEAF_CH * px;
        wide.as_mut_slice()[base..base + LEAF_CH * px].copy_from_slice(plane.as_slice());
    }
    Ok(wide)
}

/// Charges write traffic for a plane of `len` elements landing on `key`.
fn count_write(stats: &mut ExecStats, program: &Program, key: PlaneKey, len: usize, px: usize) {
    match key {
        PlaneKey::Bb { .. } => stats.bb_write_bytes += len as u64,
        PlaneKey::Do { group } => {
            // Only logical channels leave the chip.
            stats.do_bytes += len
                .min(LEAF_CH.min(program.do_channels.saturating_sub(group as usize * LEAF_CH)) * px)
                as u64;
        }
        PlaneKey::Di { .. } => unreachable!("plan rejects DI writes"),
    }
}

fn exec_conv3(
    plan: &BlockPlan<'_>,
    idx: usize,
    pool: &mut PlanePool,
    kind: Kernels,
    mut trace: Option<&mut InstrTrace>,
) -> Result<(), ExecError> {
    let program = plan.program;
    let ins = &program.instructions[idx];
    let leafs = plan.leafs[idx].as_slice();
    let input = gather(
        &pool.arena,
        &mut pool.wide,
        &mut pool.stats,
        ins.src,
        ins.in_groups,
        ins.in_size.0,
        plan.src_slots(idx),
    )?;
    let prod_frac = ins.q.w3.frac() as i32 + ins.q.src.frac() as i32;
    // Leaf ordering (see compiler): UPX2 has one leaf per pre-shuffle
    // output plane; CONV/DNX2 have one leaf per input group.
    let out_planes = if ins.opcode == Opcode::Upx2 {
        ins.out_groups
    } else {
        1
    };
    let (cw, chh) = ins.conv_out_size();
    let conv_acc = ensure_overwrite(
        &mut pool.acc_a,
        &mut pool.stats,
        out_planes * LEAF_CH,
        chh,
        cw,
    );
    match kind {
        Kernels::Packed => {
            kernels::conv3_acc_packed(ins, input, &plan.packed[idx].conv3[0], conv_acc);
        }
        Kernels::Simd => {
            let pk = &plan.packed[idx];
            if pk.narrow_acc {
                // Verifier-licensed narrow path: the final per-element
                // conv-stage sum provably fits `i32`, so the wrapping
                // `i32`-lane accumulation recovers it exactly and the
                // widened copy feeds the shared `i64` epilogue.
                let acc32 = ensure_overwrite(
                    &mut pool.acc_a32,
                    &mut pool.stats,
                    out_planes * LEAF_CH,
                    chh,
                    cw,
                );
                kernels::conv3_acc_packed_simd_narrow(ins, input, &pk.conv3[0], acc32, plan.simd);
                kernels::widen_acc(conv_acc, acc32);
                pool.stats.narrow_instrs += 1;
            } else {
                kernels::conv3_acc_packed_simd(ins, input, &pk.conv3[0], conv_acc, plan.simd);
            }
        }
        Kernels::Reference => {
            let weights = |op_: usize, ig: usize| {
                let leaf = if ins.opcode == Opcode::Upx2 {
                    &leafs[op_]
                } else {
                    &leafs[ig]
                };
                leaf.w3.as_slice()
            };
            let b3_frac = ins.q.b3.frac() as i32;
            let biases = |op_: usize| -> Vec<i64> {
                let mut b = vec![0i64; LEAF_CH];
                if ins.opcode == Opcode::Upx2 {
                    for (oc, bv) in b.iter_mut().enumerate() {
                        *bv = align_code(leafs[op_].b3[oc] as i64, b3_frac, prod_frac);
                    }
                } else {
                    for leaf in leafs {
                        for (oc, bv) in b.iter_mut().enumerate() {
                            *bv += align_code(leaf.b3[oc] as i64, b3_frac, prod_frac);
                        }
                    }
                }
                b
            };
            kernels::reference::conv3_acc_into(ins, input, &weights, &biases, out_planes, conv_acc);
        }
    }
    pool.stats.mac3 += (out_planes * ins.in_groups * LEAF_CH * LEAF_CH * 9 * cw * chh) as u64;

    let acc: &mut Tensor<i64> = if ins.opcode == Opcode::Upx2 {
        let shuffled = ensure_slot(&mut pool.acc_b, &mut pool.stats, conv_acc.len());
        conv_acc.pixel_shuffle_into(2, shuffled);
        shuffled
    } else {
        conv_acc
    };
    // srcS accumulation (ADDE) in the destination domain.
    if let Some(srcs) = ins.src_s {
        // INVARIANT: format presence validated by `BlockPlan::new`.
        let sq = ins.q.src_s.expect("plan validated srcS format");
        let plane = read_plane(&pool.arena, &mut pool.stats, srcs, plan.srcs_slot(idx))?;
        check_srcs_domain(acc, plane)?;
        add_aligned(acc, plane, sq.frac() as i32, prod_frac);
    }
    if ins.relu {
        for v in acc.as_mut_slice() {
            if *v < 0 {
                *v = 0;
            }
        }
    }
    if let Some(t) = trace.as_deref_mut() {
        merge_extrema(&mut t.acc, scan_i64(acc));
    }
    // Requantize to the destination format, then Dst Reorder (pooling).
    let dst_key = PlaneKey::from(ins.dst);
    if ins.opcode == Opcode::Dnx2 {
        let (qc, qh, qw) = acc.shape();
        let quantized = ensure_overwrite(&mut pool.quant, &mut pool.stats, qc, qh, qw);
        requantize_into(acc, prod_frac, ins.q.dst, quantized);
        if let Some(t) = trace.as_deref_mut() {
            merge_extrema(&mut t.dst, scan_i16(quantized));
        }
        let factor = ins.pool_factor;
        if qh / factor != ins.out_size.1 || qw / factor != ins.out_size.0 {
            return Err(ExecError::Shape(format!(
                "produced {}x{} vs declared {:?}",
                qw / factor,
                qh / factor,
                ins.out_size
            )));
        }
        let dst = checkout(
            &mut pool.arena,
            &mut pool.stats,
            plan.dst_slot(idx).map_or(Place::Key(dst_key), Place::Slot),
            LEAF_CH,
            ins.out_size.1,
            ins.out_size.0,
            false,
        );
        pool_into(
            quantized,
            ins.pool.expect("DNX2 carries a pool"),
            factor,
            dst,
        );
        let (len, px) = (dst.len(), dst.height() * dst.width());
        count_write(&mut pool.stats, program, dst_key, len, px);
    } else {
        // Post-shuffle UPX2 planes carry out_groups·LEAF_CH/4 channels
        // (8 for a 32→3ch upsampling tail); everything else is LEAF_CH.
        let (ac, ah, aw) = acc.shape();
        if ah != ins.out_size.1 || aw != ins.out_size.0 {
            return Err(ExecError::Shape(format!(
                "produced {aw}x{ah} vs declared {:?}",
                ins.out_size
            )));
        }
        let dst = checkout(
            &mut pool.arena,
            &mut pool.stats,
            plan.dst_slot(idx).map_or(Place::Key(dst_key), Place::Slot),
            ac,
            ins.out_size.1,
            ins.out_size.0,
            false,
        );
        requantize_into(acc, prod_frac, ins.q.dst, dst);
        if let Some(t) = trace {
            merge_extrema(&mut t.dst, scan_i16(dst));
        }
        let (len, px) = (dst.len(), dst.height() * dst.width());
        count_write(&mut pool.stats, program, dst_key, len, px);
    }
    Ok(())
}

fn exec_conv1(
    plan: &BlockPlan<'_>,
    idx: usize,
    pool: &mut PlanePool,
    kind: Kernels,
    mut trace: Option<&mut InstrTrace>,
) -> Result<(), ExecError> {
    let program = plan.program;
    let ins = &program.instructions[idx];
    let leafs = plan.leafs[idx].as_slice();
    let input = gather(
        &pool.arena,
        &mut pool.wide,
        &mut pool.stats,
        ins.src,
        ins.in_groups,
        ins.in_size.0,
        plan.src_slots(idx),
    )?;
    // INVARIANT: format presence validated by `Instruction::check` in
    // `BlockPlan::new` (CONV1 requires the 1x1 formats).
    let w1q = ins.q.w1.expect("plan validated the 1x1 weight format");
    let b1q = ins.q.b1.expect("plan validated the 1x1 bias format");
    let prod_frac = w1q.frac() as i32 + ins.q.src.frac() as i32;
    let side = input.height();
    let acc = ensure_overwrite(&mut pool.acc_a, &mut pool.stats, LEAF_CH, side, side);
    match kind {
        Kernels::Packed => {
            let packed = plan.packed[idx].conv1.as_ref().expect("CONV1 packs a 1x1");
            // Bias fill over row slices, zero columns hoisted to the
            // plan-time compaction.
            kernels::fill_bias(acc, &packed.bias);
            for leaf in 0..packed.leaves {
                kernels::conv1_leaf_acc_packed(packed, leaf, input, leaf * LEAF_CH, acc);
            }
        }
        Kernels::Simd => {
            let pk = &plan.packed[idx];
            let packed = pk.conv1.as_ref().expect("CONV1 packs a 1x1");
            if pk.narrow_acc {
                // Licensed narrow path (see `exec_conv3`).
                let acc32 =
                    ensure_overwrite(&mut pool.acc_a32, &mut pool.stats, LEAF_CH, side, side);
                kernels::fill_bias_narrow(acc32, &packed.bias);
                for leaf in 0..packed.leaves {
                    kernels::conv1_leaf_acc_packed_simd_narrow(
                        packed,
                        leaf,
                        input,
                        leaf * LEAF_CH,
                        acc32,
                        plan.simd,
                    );
                }
                kernels::widen_acc(acc, acc32);
                pool.stats.narrow_instrs += 1;
            } else {
                kernels::fill_bias(acc, &packed.bias);
                for leaf in 0..packed.leaves {
                    kernels::conv1_leaf_acc_packed_simd(
                        packed,
                        leaf,
                        input,
                        leaf * LEAF_CH,
                        acc,
                        plan.simd,
                    );
                }
            }
        }
        Kernels::Reference => {
            for oc in 0..LEAF_CH {
                let mut b = 0i64;
                for leaf in leafs {
                    b += align_code(leaf.b1[oc] as i64, b1q.frac() as i32, prod_frac);
                }
                for y in 0..side {
                    for x in 0..side {
                        *acc.at_mut(oc, y, x) = b;
                    }
                }
            }
            for (ig, leaf) in leafs.iter().enumerate() {
                kernels::reference::conv1_leaf_acc(&leaf.w1, input, ig * LEAF_CH, acc);
            }
        }
    }
    pool.stats.mac1 += (leafs.len() * LEAF_CH * LEAF_CH * side * side) as u64;
    if let Some(srcs) = ins.src_s {
        // INVARIANT: format presence validated by `BlockPlan::new`.
        let sq = ins.q.src_s.expect("plan validated srcS format");
        let plane = read_plane(&pool.arena, &mut pool.stats, srcs, plan.srcs_slot(idx))?;
        check_srcs_domain(acc, plane)?;
        add_aligned(acc, plane, sq.frac() as i32, prod_frac);
    }
    if ins.relu {
        for v in acc.as_mut_slice() {
            if *v < 0 {
                *v = 0;
            }
        }
    }
    if let Some(t) = trace.as_deref_mut() {
        merge_extrema(&mut t.acc, scan_i64(acc));
    }
    let dst_key = PlaneKey::from(ins.dst);
    let dst = checkout(
        &mut pool.arena,
        &mut pool.stats,
        plan.dst_slot(idx).map_or(Place::Key(dst_key), Place::Slot),
        LEAF_CH,
        side,
        side,
        false,
    );
    requantize_into(acc, prod_frac, ins.q.dst, dst);
    if let Some(t) = trace {
        merge_extrema(&mut t.dst, scan_i16(dst));
    }
    let (len, px) = (dst.len(), dst.height() * dst.width());
    count_write(&mut pool.stats, program, dst_key, len, px);
    Ok(())
}

fn exec_er(
    plan: &BlockPlan<'_>,
    idx: usize,
    pool: &mut PlanePool,
    kind: Kernels,
    mut trace: Option<&mut InstrTrace>,
) -> Result<(), ExecError> {
    let program = plan.program;
    let ins = &program.instructions[idx];
    let leafs = plan.leafs[idx].as_slice();
    // INVARIANT: format presence validated by `BlockPlan::new`.
    let midq = ins.q.mid.expect("plan validated the mid format");
    let w1q = ins.q.w1.expect("plan validated the 1x1 weight format");
    let b1q = ins.q.b1.expect("plan validated the 1x1 bias format");
    let prod3 = ins.q.w3.frac() as i32 + ins.q.src.frac() as i32;
    let prod1 = w1q.frac() as i32 + midq.frac() as i32;
    let (cw, chh) = ins.conv_out_size();
    let input = gather(
        &pool.arena,
        &mut pool.wide,
        &mut pool.stats,
        ins.src,
        ins.in_groups,
        ins.in_size.0,
        plan.src_slots(idx),
    )?;
    let packed = &plan.packed[idx];
    if kind == Kernels::Simd && packed.narrow_acc {
        // Licensed narrow path. For ER the verifier's `narrow_acc` proves
        // *both* stages fit `i32`: the per-leaf 3×3 expansion accumulators
        // (which the mid requantizer consumes, so they must be exact, not
        // merely congruent) and the pre-srcS 1×1 reduction accumulator.
        let p1 = packed.conv1.as_ref().expect("ER packs a 1x1");
        {
            let acc1 = ensure_overwrite(&mut pool.acc_a32, &mut pool.stats, LEAF_CH, chh, cw);
            kernels::fill_bias_narrow(acc1, &p1.bias);
        }
        for li in 0..leafs.len() {
            // Expansion plane: CONV3x3 -> ReLU -> quantize to mid format.
            let acc3 = ensure_overwrite(&mut pool.acc_b32, &mut pool.stats, LEAF_CH, chh, cw);
            kernels::conv3_acc_packed_simd_narrow(ins, input, &packed.conv3[li], acc3, plan.simd);
            pool.stats.mac3 += (LEAF_CH * LEAF_CH * 9 * cw * chh) as u64;
            let mid = ensure_overwrite(&mut pool.mid, &mut pool.stats, LEAF_CH, chh, cw);
            for (m, &a) in mid.as_mut_slice().iter_mut().zip(acc3.as_slice()) {
                let v = if a < 0 { 0 } else { a as i64 }; // ER's internal ReLU
                *m = midq.clamp_code(rescale_code(v, prod3, midq.frac() as i32));
            }
            // LCONV1x1: plane's columns accumulate into the 32ch output.
            let acc1 = pool.acc_a32.as_mut().expect("bias-filled above");
            kernels::conv1_leaf_acc_packed_simd_narrow(p1, li, mid, 0, acc1, plan.simd);
        }
        // Widen into the shared `i64` accumulator for the epilogue.
        let acc1 = ensure_overwrite(&mut pool.acc_a, &mut pool.stats, LEAF_CH, chh, cw);
        kernels::widen_acc(acc1, pool.acc_a32.as_ref().expect("bias-filled above"));
        pool.stats.narrow_instrs += 1;
    } else {
        let acc1 = match kind {
            Kernels::Packed | Kernels::Simd => {
                // Pre-aligned 1x1 biases, already summed across leaves.
                let acc1 = ensure_overwrite(&mut pool.acc_a, &mut pool.stats, LEAF_CH, chh, cw);
                let p1 = packed.conv1.as_ref().expect("ER packs a 1x1");
                kernels::fill_bias(acc1, &p1.bias);
                acc1
            }
            Kernels::Reference => {
                let acc1 = ensure(&mut pool.acc_a, &mut pool.stats, LEAF_CH, chh, cw);
                // 1x1 biases (first leaf only carries nonzero values).
                for leaf in leafs {
                    for oc in 0..LEAF_CH {
                        let b = align_code(leaf.b1[oc] as i64, b1q.frac() as i32, prod1);
                        if b != 0 {
                            for y in 0..chh {
                                for x in 0..cw {
                                    *acc1.at_mut(oc, y, x) += b;
                                }
                            }
                        }
                    }
                }
                acc1
            }
        };
        for (li, leaf) in leafs.iter().enumerate() {
            // Expansion plane: CONV3x3 -> ReLU -> quantize to mid format.
            let acc3 = ensure_overwrite(&mut pool.acc_b, &mut pool.stats, LEAF_CH, chh, cw);
            match kind {
                Kernels::Packed => kernels::conv3_acc_packed(ins, input, &packed.conv3[li], acc3),
                Kernels::Simd => {
                    kernels::conv3_acc_packed_simd(ins, input, &packed.conv3[li], acc3, plan.simd)
                }
                Kernels::Reference => {
                    let weights = |_: usize, _: usize| leaf.w3.as_slice();
                    let b3_frac = ins.q.b3.frac() as i32;
                    let biases = |_: usize| -> Vec<i64> {
                        (0..LEAF_CH)
                            .map(|oc| align_code(leaf.b3[oc] as i64, b3_frac, prod3))
                            .collect()
                    };
                    let mut single = Instruction::clone(ins);
                    single.in_groups = 1;
                    // The plane convolves the single 32ch input group.
                    kernels::reference::conv3_acc_into(&single, input, &weights, &biases, 1, acc3);
                }
            }
            pool.stats.mac3 += (LEAF_CH * LEAF_CH * 9 * cw * chh) as u64;
            if let Some(t) = trace.as_deref_mut() {
                merge_extrema(&mut t.er_acc3, scan_i64(acc3));
            }
            let mid = ensure_overwrite(&mut pool.mid, &mut pool.stats, LEAF_CH, chh, cw);
            for (m, &a) in mid.as_mut_slice().iter_mut().zip(acc3.as_slice()) {
                let v = if a < 0 { 0 } else { a }; // ER's internal ReLU
                *m = midq.clamp_code(rescale_code(v, prod3, midq.frac() as i32));
            }
            // LCONV1x1: plane's columns accumulate into the 32ch output.
            match kind {
                Kernels::Packed => {
                    let p1 = packed.conv1.as_ref().expect("ER packs a 1x1");
                    kernels::conv1_leaf_acc_packed(p1, li, mid, 0, acc1);
                }
                Kernels::Simd => {
                    let p1 = packed.conv1.as_ref().expect("ER packs a 1x1");
                    kernels::conv1_leaf_acc_packed_simd(p1, li, mid, 0, acc1, plan.simd);
                }
                Kernels::Reference => kernels::reference::conv1_leaf_acc(&leaf.w1, mid, 0, acc1),
            }
        }
    }
    pool.stats.mac1 += (leafs.len() * LEAF_CH * LEAF_CH * cw * chh) as u64;
    let acc1 = pool.acc_a.as_mut().expect("accumulated above");
    // Module residual via srcS.
    if let Some(srcs) = ins.src_s {
        // INVARIANT: format presence validated by `BlockPlan::new`.
        let sq = ins.q.src_s.expect("plan validated srcS format");
        let plane = read_plane(&pool.arena, &mut pool.stats, srcs, plan.srcs_slot(idx))?;
        check_srcs_domain(acc1, plane)?;
        add_aligned(acc1, plane, sq.frac() as i32, prod1);
    }
    if let Some(t) = trace.as_deref_mut() {
        merge_extrema(&mut t.acc, scan_i64(acc1));
    }
    let dst_key = PlaneKey::from(ins.dst);
    let dst = checkout(
        &mut pool.arena,
        &mut pool.stats,
        plan.dst_slot(idx).map_or(Place::Key(dst_key), Place::Slot),
        LEAF_CH,
        chh,
        cw,
        false,
    );
    requantize_into(acc1, prod1, ins.q.dst, dst);
    if let Some(t) = trace {
        merge_extrema(&mut t.dst, scan_i16(dst));
    }
    let (len, px) = (dst.len(), dst.height() * dst.width());
    count_write(&mut pool.stats, program, dst_key, len, px);
    Ok(())
}

/// Assembles the logical output block from the pooled DO planes.
fn assemble_output<'p>(
    plan: &BlockPlan<'_>,
    pool: &'p mut PlanePool,
) -> Result<&'p Tensor<i16>, ExecError> {
    let program = plan.program;
    // Every (channel, y, x) is written below — the DO groups tile the
    // logical channel range — so stale contents need no clearing.
    let out = ensure_overwrite(
        &mut pool.out,
        &mut pool.stats,
        program.do_channels,
        program.do_side,
        program.do_side,
    );
    for g in 0..plan.out_groups {
        let plane = match plan.do_slot(g) {
            Some(s) => pool.arena.slots.get(s).and_then(Option::as_ref),
            None => pool.arena.planes.get(&PlaneKey::Do { group: g as u8 }),
        }
        .ok_or(ExecError::MissingPlane(FeatLoc::Do { group: g as u8 }))?;
        if plane.height() != program.do_side || plane.width() != program.do_side {
            return Err(ExecError::Shape(format!(
                "DO plane {}x{} vs side {}",
                plane.height(),
                plane.width(),
                program.do_side
            )));
        }
        for c in 0..LEAF_CH {
            let oc = g * LEAF_CH + c;
            if oc >= program.do_channels {
                break;
            }
            out.channel_mut(oc).copy_from_slice(plane.channel(c));
        }
    }
    Ok(out)
}

/// Executes one program over one input block — the plan-then-execute API
/// behind a stateful handle, kept for one-shot callers and tests.
///
/// # Example
///
/// See the crate-level tests and `tests/pipeline.rs` for end-to-end usage;
/// the executor is normally driven by `ecnn-core`'s block pipeline, which
/// holds a [`BlockPlan`] and a [`PlanePool`] per worker instead.
pub struct BlockExecutor<'a> {
    plan: Result<BlockPlan<'a>, ExecError>,
    pool: PlanePool,
}

impl<'a> BlockExecutor<'a> {
    /// Creates an executor for `program` with the IDU-decoded `leafs` (one
    /// vector per instruction, as produced by the compiler or by
    /// `PackedParams::unpack`). Planning errors surface on the first
    /// [`BlockExecutor::run`].
    pub fn new(program: &'a Program, leafs: &'a [Vec<LeafParams>]) -> Self {
        Self {
            plan: BlockPlan::new(program, leafs),
            pool: PlanePool::new(),
        }
    }

    /// Runs the program on one input block.
    ///
    /// `input` holds the *logical* input channels (e.g. 3 for RGB) as codes
    /// in the program's `di_q` format, with side `program.di_side`. Returns
    /// the logical output block (side `program.do_side`).
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn run(&mut self, input: &Tensor<i16>) -> Result<Tensor<i16>, ExecError> {
        match &self.plan {
            Ok(plan) => execute(plan, &mut self.pool, input).cloned(),
            Err(e) => Err(e.clone()),
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ExecStats {
        self.pool.stats()
    }

    /// The execution plan, when planning succeeded.
    pub fn plan(&self) -> Result<&BlockPlan<'a>, &ExecError> {
        self.plan.as_ref()
    }

    /// The executor's plane pool.
    pub fn pool(&self) -> &PlanePool {
        &self.pool
    }
}

/// Guards the srcS accumulation domain: the plane must cover the
/// accumulator spatially (it is center-cropped, never extended) and carry
/// at least the accumulated channel count. Checked before every
/// [`add_aligned`] call so the executor returns a structured error where
/// it used to assert; `ecnn_isa::verify` proves the same property
/// statically (`shape-mismatch`).
fn check_srcs_domain(acc: &Tensor<i64>, plane: &Tensor<i16>) -> Result<(), ExecError> {
    let (ac, ah, aw) = acc.shape();
    let (pc, ph, pw) = plane.shape();
    if ph < ah || pw < aw {
        return Err(ExecError::Shape(format!(
            "srcS plane {pw}x{ph} smaller than the {aw}x{ah} accumulator"
        )));
    }
    if pc < ac.min(LEAF_CH) {
        return Err(ExecError::Shape(format!(
            "srcS carries {pc} channel(s) for a {ac}-channel accumulator"
        )));
    }
    Ok(())
}

/// Adds a quantized plane into an accumulator tensor, center-cropping the
/// plane when it is larger than the accumulator (truncated-pyramid skips).
/// Row-sliced; the common upshift alignment is hoisted to one shift per
/// element with no per-element branch.
///
/// INVARIANT: callers run [`check_srcs_domain`] first, so the domain
/// asserts below are unreachable from public entry points.
fn add_aligned(acc: &mut Tensor<i64>, plane: &Tensor<i16>, plane_frac: i32, acc_frac: i32) {
    let (ac, ah, aw) = acc.shape();
    let (pc, ph, pw) = plane.shape();
    assert!(pc >= ac.min(LEAF_CH), "srcS channel mismatch");
    assert!(ph >= ah && pw >= aw, "srcS smaller than accumulator");
    let oy = (ph - ah) / 2;
    let ox = (pw - aw) / 2;
    let up = acc_frac >= plane_frac;
    let shift = (acc_frac - plane_frac).unsigned_abs();
    let mut add_rows = |dst: &mut [i64], src: &[i16]| {
        if up {
            for (a, &v) in dst.iter_mut().zip(src) {
                *a += (v as i64) << shift;
            }
        } else {
            for (a, &v) in dst.iter_mut().zip(src) {
                *a += align_code(v as i64, plane_frac, acc_frac);
            }
        }
    };
    if (ph, pw) == (ah, aw) {
        for c in 0..ac.min(pc) {
            acc.zip_rows(c, plane, c, &mut add_rows);
        }
    } else {
        for c in 0..ac.min(pc) {
            for y in 0..ah {
                add_rows(acc.row_mut(c, y), &plane.row(c, y + oy)[ox..ox + aw]);
            }
        }
    }
}

/// Requantizes full-precision accumulators at `acc_frac` into `dst`'s
/// codes at format `q` — the datapath's single output rounding. `dst` is
/// already shaped to match `acc`; every element is overwritten.
fn requantize_into(acc: &Tensor<i64>, acc_frac: i32, q: QFormat, dst: &mut Tensor<i16>) {
    debug_assert_eq!(acc.len(), dst.len());
    let dst_frac = q.frac() as i32;
    for (d, &a) in dst.as_mut_slice().iter_mut().zip(acc.as_slice()) {
        *d = q.clamp_code(rescale_code(a, acc_frac, dst_frac));
    }
}

/// Pooling on quantized codes (Dst Reorder) into a pre-shaped destination,
/// one output row at a time: stride pooling samples the source row with a
/// `step_by`, max pooling folds each source row's `factor`-wide windows
/// into the output row.
fn pool_into(t: &Tensor<i16>, kind: PoolKind, factor: usize, dst: &mut Tensor<i16>) {
    let (c, _, _) = t.shape();
    debug_assert_eq!(dst.channels(), c);
    let (dh, dw) = (dst.height(), dst.width());
    for ch in 0..c {
        for y in 0..dh {
            match kind {
                PoolKind::Stride => {
                    let src = t.row(ch, y * factor);
                    for (d, &v) in dst
                        .row_mut(ch, y)
                        .iter_mut()
                        .zip(src.iter().step_by(factor))
                    {
                        *d = v;
                    }
                }
                PoolKind::Max => {
                    let out = dst.row_mut(ch, y);
                    out.fill(i16::MIN);
                    for dy in 0..factor {
                        let src = &t.row(ch, y * factor + dy)[..dw * factor];
                        for (d, window) in out.iter_mut().zip(src.chunks_exact(factor)) {
                            for &v in window {
                                *d = (*d).max(v);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Convenience: quantize a float image block into input codes for
/// [`execute`] / [`BlockExecutor::run`].
pub fn quantize_input(block: &Tensor<f32>, program: &Program) -> Tensor<i16> {
    block.map(|v| program.di_q.quantize(v))
}

/// Convenience: dequantize an output block back to floats.
pub fn dequantize_output(block: &Tensor<i16>, program: &Program) -> Tensor<f32> {
    block.map(|c| program.do_q.dequantize(c))
}

/// Peak MACs available in `cycles` CIU cycles (for utilization reports).
pub fn peak_macs(config: &EcnnConfig, cycles: u64) -> u64 {
    cycles * config.total_multipliers()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnn_isa::compile::compile;
    use ecnn_isa::params::QuantizedModel;
    use ecnn_model::ernet::{ErNetSpec, ErNetTask};
    use ecnn_model::layer::{Activation, Layer, Op};
    use ecnn_model::model::Model;
    use ecnn_tensor::conv::{conv3x3_fixed, FixedConvParams, Padding};
    use ecnn_tensor::SyntheticImage;

    /// Single 3->32 conv: the simulator must agree with the golden fixed
    /// kernel exactly.
    #[test]
    fn single_conv_matches_golden_kernel() {
        let m = Model::new(
            "one-conv",
            3,
            32,
            vec![Layer::new(Op::Conv3x3 {
                in_c: 3,
                out_c: 32,
                act: Activation::None,
            })],
        )
        .unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 16).unwrap();
        let img = SyntheticImage::new(ecnn_tensor::ImageKind::Mixed, 3).rgb(16, 16);
        let input = img.map(|v| qm.input_q.quantize(v));

        let mut ex = BlockExecutor::new(&c.program, &c.leafs);
        let out = ex.run(&input).unwrap();
        assert_eq!(out.shape(), (32, 14, 14));

        // Golden: hardware-padded 32ch input into conv3x3_fixed.
        let p = qm.layers[0].as_ref().unwrap();
        let padded = input.with_channels(32);
        let golden = conv3x3_fixed(
            &padded,
            qm.input_q.frac() as i32,
            &FixedConvParams {
                weights: &p.w3,
                w_format: p.w3_q,
                bias: &p.b3,
                b_format: p.b3_q,
                out_format: p.out_q,
            },
            32,
            Padding::Valid,
        );
        assert_eq!(out, golden);
    }

    #[test]
    fn er_module_residual_is_exact_identity_with_zero_weights() {
        // An ER module with all-zero weights must reduce to the residual:
        // output == center crop of input (requantized).
        let m = Model::new(
            "er-id",
            32,
            32,
            vec![Layer::new(Op::ErModule {
                channels: 32,
                expansion: 2,
            })],
        )
        .unwrap();
        let mut qm = QuantizedModel::uniform(&m);
        {
            let p = qm.layers[0].as_mut().unwrap();
            p.w3.iter_mut().for_each(|w| *w = 0);
            p.w1.iter_mut().for_each(|w| *w = 0);
            p.b3.iter_mut().for_each(|b| *b = 0);
            p.b1.iter_mut().for_each(|b| *b = 0);
            p.out_q = qm.input_q; // same format => exact pass-through
        }
        let c = compile(&qm, 12).unwrap();
        let input = Tensor::from_fn(32, 12, 12, |ch, y, x| ((ch + y * 3 + x) % 200) as i16);
        let mut ex = BlockExecutor::new(&c.program, &c.leafs);
        let out = ex.run(&input).unwrap();
        assert_eq!(out.shape(), (32, 10, 10));
        for ch in 0..32 {
            for y in 0..10 {
                for x in 0..10 {
                    assert_eq!(out.at(ch, y, x), input.at(ch, y + 1, x + 1));
                }
            }
        }
    }

    #[test]
    fn dnernet_runs_end_to_end() {
        let m = ErNetSpec::new(ErNetTask::Dn, 3, 1, 0).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 64).unwrap();
        let img = SyntheticImage::new(ecnn_tensor::ImageKind::Texture, 9).rgb(64, 64);
        let input = quantize_input(&img, &c.program);
        let mut ex = BlockExecutor::new(&c.program, &c.leafs);
        let out = ex.run(&input).unwrap();
        assert_eq!(out.shape(), (3, 52, 52));
        let stats = ex.stats();
        assert_eq!(stats.instructions, 6);
        assert!(stats.mac3 > 0 && stats.mac1 > 0);
        assert!(stats.di_bytes > 0 && stats.do_bytes > 0);
    }

    #[test]
    fn sr2_upsamples_block() {
        let m = ErNetSpec::new(ErNetTask::Sr2, 2, 1, 0).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 32).unwrap();
        // 32 - 2*5 convs at LR = 22 -> x2 = 44 -> tail conv -> 42.
        assert_eq!(c.program.do_side, 42);
        let img = SyntheticImage::new(ecnn_tensor::ImageKind::Smooth, 4).rgb(32, 32);
        let input = quantize_input(&img, &c.program);
        let mut ex = BlockExecutor::new(&c.program, &c.leafs);
        let out = ex.run(&input).unwrap();
        assert_eq!(out.shape(), (3, 42, 42));
    }

    #[test]
    fn dn12_shuffle_path_round_trips_shape() {
        let m = ErNetSpec::new(ErNetTask::Dn12, 2, 1, 0).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 64).unwrap();
        let img = SyntheticImage::new(ecnn_tensor::ImageKind::Mixed, 5).rgb(64, 64);
        let input = quantize_input(&img, &c.program);
        let mut ex = BlockExecutor::new(&c.program, &c.leafs);
        let out = ex.run(&input).unwrap();
        // 64 -> unshuffle 32 -> 5 convs -> 22 -> shuffle -> 44.
        assert_eq!(out.shape(), (3, 44, 44));
    }

    #[test]
    fn unpacked_params_execute_identically() {
        // Executing with Huffman-decoded parameters must match the directly
        // compiled leafs bit-for-bit.
        let m = ErNetSpec::new(ErNetTask::Dn, 2, 2, 1).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 48).unwrap();
        let decoded: Vec<_> = (0..c.program.instructions.len())
            .map(|i| c.packed.unpack(i).unwrap())
            .collect();
        let img = SyntheticImage::new(ecnn_tensor::ImageKind::Edges, 2).rgb(48, 48);
        let input = quantize_input(&img, &c.program);
        let out_a = BlockExecutor::new(&c.program, &c.leafs)
            .run(&input)
            .unwrap();
        let out_b = BlockExecutor::new(&c.program, &decoded)
            .run(&input)
            .unwrap();
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn missing_plane_is_reported() {
        let m = ErNetSpec::new(ErNetTask::Dn, 1, 1, 0).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 32).unwrap();
        // Run with too few leaf sets.
        let mut ex = BlockExecutor::new(&c.program, &c.leafs[..2]);
        let img = SyntheticImage::new(ecnn_tensor::ImageKind::Smooth, 1).rgb(32, 32);
        let input = quantize_input(&img, &c.program);
        assert!(matches!(ex.run(&input), Err(ExecError::Leafs(_))));
    }

    #[test]
    fn wrong_input_shape_is_reported() {
        let m = ErNetSpec::new(ErNetTask::Dn, 1, 1, 0).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 32).unwrap();
        let img = SyntheticImage::new(ecnn_tensor::ImageKind::Smooth, 1).rgb(16, 16);
        let input = quantize_input(&img, &c.program);
        let mut ex = BlockExecutor::new(&c.program, &c.leafs);
        assert!(matches!(ex.run(&input), Err(ExecError::Shape(_))));
    }

    #[test]
    fn plan_computes_shapes_and_lifetimes() {
        let m = ErNetSpec::new(ErNetTask::Dn, 2, 1, 0).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 40).unwrap();
        let plan = BlockPlan::new(&c.program, &c.leafs).unwrap();
        let planes = plan.planes();
        assert_eq!(
            planes.len(),
            plan.di_groups() + c.program.instructions.len()
        );
        // DI planes are streamed in, not written by instructions.
        assert!(planes[..plan.di_groups()].iter().all(|p| p.born.is_none()));
        // Every instruction write records its shape; a read never precedes
        // its write.
        for p in &planes[plan.di_groups()..] {
            let born = p.born.expect("instruction planes have a writer");
            assert_eq!(p.channels, LEAF_CH);
            if let Some(last) = p.last_use {
                assert!(last > born, "lifetime runs forward");
            }
        }
        // The DO plane survives until output assembly.
        let end = c.program.instructions.len();
        assert!(planes
            .iter()
            .any(|p| matches!(p.key, PlaneKey::Do { .. }) && p.last_use == Some(end)));
        assert!(plan.peak_plane_bytes() > 0);
    }

    #[test]
    fn pool_allocates_once_across_blocks() {
        let m = ErNetSpec::new(ErNetTask::Dn, 2, 1, 0).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 40).unwrap();
        let plan = BlockPlan::new(&c.program, &c.leafs).unwrap();
        let mut pool = PlanePool::new();
        let img = SyntheticImage::new(ecnn_tensor::ImageKind::Mixed, 8).rgb(40, 40);
        let input = quantize_input(&img, &c.program);
        execute(&plan, &mut pool, &input).unwrap();
        let warm = pool.stats();
        assert!(warm.planes_allocated > 0, "first block allocates the arena");
        for _ in 0..3 {
            execute(&plan, &mut pool, &input).unwrap();
        }
        let steady = pool.stats().delta_since(&warm);
        assert_eq!(steady.planes_allocated, 0, "warm blocks must not allocate");
        assert!(steady.planes_reused > 0);
        // Three identical warm blocks attribute back to exactly one
        // block's worth of deterministic work.
        let per_block = steady.per_frame(3);
        assert_eq!(per_block.work(), warm.work());
        assert_eq!(steady.per_frame(0), steady, "0 frames: unchanged");
    }

    #[test]
    fn plan_packs_kernel_params_once() {
        let m = ErNetSpec::new(ErNetTask::Dn, 2, 2, 1).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 40).unwrap();
        let plan = BlockPlan::new(&c.program, &c.leafs).unwrap();
        assert_eq!(plan.packed().len(), c.program.instructions.len());
        assert!(plan.packed_bytes() > 0);
        for (ins, packed) in c.program.instructions.iter().zip(plan.packed()) {
            assert_eq!(!packed.conv3.is_empty(), ins.opcode.has_conv3x3());
            assert_eq!(packed.conv1.is_some(), ins.opcode.has_conv1x1());
        }
        // Every execution is served from the packed cache; the reference
        // path never touches it.
        let mut pool = PlanePool::new();
        let img = SyntheticImage::new(ecnn_tensor::ImageKind::Mixed, 4).rgb(40, 40);
        let input = quantize_input(&img, &c.program);
        execute(&plan, &mut pool, &input).unwrap();
        assert_eq!(
            pool.stats().params_reused,
            c.program.instructions.len() as u64
        );
        let mut ref_pool = PlanePool::new();
        execute_with(&plan, &mut ref_pool, &input, Kernels::Reference).unwrap();
        assert_eq!(ref_pool.stats().params_reused, 0);
    }

    #[test]
    fn reference_kernels_match_packed_on_all_opcodes() {
        // Sr4 with unequal body/tail exercises CONV, ER, UPX2 and the
        // srcS/relu epilogues in one program; Dn12 adds DNX2 + unshuffle.
        for (spec, side) in [
            (ErNetSpec::new(ErNetTask::Sr4, 2, 2, 1), 32),
            (ErNetSpec::new(ErNetTask::Dn12, 2, 1, 0), 48),
        ] {
            let m = spec.build().unwrap();
            let qm = QuantizedModel::uniform(&m);
            let c = compile(&qm, side).unwrap();
            let plan = BlockPlan::new(&c.program, &c.leafs).unwrap();
            let img = SyntheticImage::new(ecnn_tensor::ImageKind::Texture, 7).rgb(side, side);
            let input = quantize_input(&img, &c.program);
            let mut fast_pool = PlanePool::new();
            let fast = execute(&plan, &mut fast_pool, &input).unwrap().clone();
            let mut ref_pool = PlanePool::new();
            let reference = execute_with(&plan, &mut ref_pool, &input, Kernels::Reference).unwrap();
            assert_eq!(&fast, reference, "{spec}");
            assert_eq!(fast_pool.stats().work(), ref_pool.stats().work(), "{spec}");
        }
    }

    #[test]
    fn pool_reuse_does_not_leak_state_across_blocks() {
        // A warm pool must produce bit-identical output to a fresh one.
        let m = ErNetSpec::new(ErNetTask::Sr2, 2, 1, 0).build().unwrap();
        let qm = QuantizedModel::uniform(&m);
        let c = compile(&qm, 32).unwrap();
        let a = quantize_input(
            &SyntheticImage::new(ecnn_tensor::ImageKind::Edges, 1).rgb(32, 32),
            &c.program,
        );
        let b = quantize_input(
            &SyntheticImage::new(ecnn_tensor::ImageKind::Texture, 2).rgb(32, 32),
            &c.program,
        );
        let mut warm = BlockExecutor::new(&c.program, &c.leafs);
        warm.run(&a).unwrap();
        let warm_out = warm.run(&b).unwrap();
        let fresh_out = BlockExecutor::new(&c.program, &c.leafs).run(&b).unwrap();
        assert_eq!(warm_out, fresh_out);
    }

    #[test]
    fn checkout_recycles_storage_per_key() {
        let mut pool = PlanePool::new();
        let key = PlaneKey::Bb { id: 0, group: 0 };
        let ptr = pool.checkout(key, LEAF_CH, 10, 10).as_slice().as_ptr();
        // Shrinking reuses the same storage; a different key gets its own.
        let ptr2 = pool.checkout(key, LEAF_CH, 8, 8).as_slice().as_ptr();
        assert_eq!(ptr, ptr2);
        let other = pool
            .checkout(PlaneKey::Bb { id: 1, group: 0 }, LEAF_CH, 8, 8)
            .as_slice()
            .as_ptr();
        assert_ne!(ptr, other);
        let s = pool.stats();
        assert_eq!(s.planes_allocated, 2);
        assert_eq!(s.planes_reused, 1);
        assert_eq!(pool.resident_planes(), 2);
    }
}
